//! Tests that encode the paper's theorems directly.

use parclust::{emst_memogfk, hdbscan_memogfk, Point};
use parclust_mst::prim_dense;
use rand::prelude::*;

fn random_points<const D: usize>(n: usize, seed: u64) -> Vec<Point<D>> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let mut c = [0.0; D];
            for x in c.iter_mut() {
                *x = rng.gen_range(0.0..100.0);
            }
            Point(c)
        })
        .collect()
}

fn brute_core_distances<const D: usize>(pts: &[Point<D>], min_pts: usize) -> Vec<f64> {
    let n = pts.len();
    (0..n)
        .map(|i| {
            let mut d: Vec<f64> = (0..n).map(|j| pts[i].dist(&pts[j])).collect();
            d.sort_by(|a, b| a.partial_cmp(b).unwrap());
            d[min_pts.min(n) - 1]
        })
        .collect()
}

/// Weight of a set of EMST edges when re-weighted by mutual reachability.
fn reweigh_by_dm<const D: usize>(pts: &[Point<D>], cd: &[f64], edges: &[parclust::Edge]) -> f64 {
    edges
        .iter()
        .map(|e| {
            let d = pts[e.u as usize].dist(&pts[e.v as usize]);
            d.max(cd[e.u as usize]).max(cd[e.v as usize])
        })
        .sum()
}

/// Theorem D.1: for minPts ≤ 3, the EMST is an MST of the mutual
/// reachability graph — its d_m-weight equals the HDBSCAN* MST weight.
#[test]
fn theorem_d1_minpts_up_to_three() {
    for seed in 0..10 {
        let pts = random_points::<2>(60, seed);
        let emst = emst_memogfk(&pts);
        for min_pts in 1..=3 {
            let cd = brute_core_distances(&pts, min_pts);
            let emst_as_dm = reweigh_by_dm(&pts, &cd, &emst.edges);
            let hdb = hdbscan_memogfk(&pts, min_pts);
            assert!(
                (emst_as_dm - hdb.total_weight).abs() < 1e-9,
                "seed {seed}, minPts {min_pts}: EMST reweighed {emst_as_dm} vs MST* {}",
                hdb.total_weight
            );
        }
    }
}

/// Appendix D, Figure 11: for minPts = 4 the equivalence can fail. We
/// search a family of small deterministic configurations and require that
/// a counterexample exists (i.e. the theorem's bound is tight).
#[test]
fn minpts_four_counterexample_exists() {
    let mut found = false;
    for seed in 0..200 {
        let pts = random_points::<2>(8, seed);
        let emst = emst_memogfk(&pts);
        let cd = brute_core_distances(&pts, 4);
        let emst_as_dm = reweigh_by_dm(&pts, &cd, &emst.edges);
        let hdb = hdbscan_memogfk(&pts, 4);
        assert!(
            emst_as_dm >= hdb.total_weight - 1e-9,
            "reweighed EMST can never beat the d_m MST"
        );
        if emst_as_dm > hdb.total_weight + 1e-9 {
            found = true;
            break;
        }
    }
    assert!(
        found,
        "expected some 8-point configuration where the EMST is not an MST \
         of the mutual reachability graph at minPts = 4"
    );
}

/// Theorem 3.2 in effect: the improved well-separation still yields an MST
/// of the full mutual reachability graph (checked against the dense Prim
/// oracle over d_m).
#[test]
fn theorem_3_2_combined_separation_is_exact() {
    for seed in 0..5 {
        let pts = random_points::<3>(80, 100 + seed);
        for min_pts in [2, 5, 10] {
            let cd = brute_core_distances(&pts, min_pts);
            let want = prim_dense(pts.len(), 0, |u, v| {
                let d = pts[u as usize].dist(&pts[v as usize]);
                d.max(cd[u as usize]).max(cd[v as usize])
            })
            .total_weight;
            let got = hdbscan_memogfk(&pts, min_pts).total_weight;
            assert!(
                (got - want).abs() < 1e-9,
                "seed {seed}, minPts {min_pts}: {got} vs {want}"
            );
        }
    }
}

/// §2.1: the HDBSCAN* MST at minPts ∈ {1, 2} has exactly the EMST weight
/// under d_m = d (minPts ≤ 2 implies cd(p) ≤ d(p, q) for any q ≠ p).
#[test]
fn minpts_two_mst_weight_equals_reweighed_emst() {
    let pts = random_points::<2>(100, 77);
    let emst = emst_memogfk(&pts);
    let cd = brute_core_distances(&pts, 2);
    let hdb = hdbscan_memogfk(&pts, 2);
    assert!((reweigh_by_dm(&pts, &cd, &emst.edges) - hdb.total_weight).abs() < 1e-9);
    // And at minPts = 1, d_m degenerates to d exactly.
    let hdb1 = hdbscan_memogfk(&pts, 1);
    assert!((hdb1.total_weight - emst.total_weight).abs() < 1e-9);
}
