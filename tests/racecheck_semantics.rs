//! Happens-before race checking over the real stack (requires the
//! `racecheck` feature; see `crates/serve/Cargo.toml`).
//!
//! The vector-clock detector in the rayon shim models the pool's job
//! protocol (publish, execute, settle, scope arrival) and `SnapshotCell`'s
//! publication protocol as explicit release/acquire edges. These tests run
//! the actual EMST / HDBSCAN* pipelines and the serving engine's snapshot
//! machinery under that instrumentation at several pool widths, asserting
//! zero races — i.e. that the shim's `Release`/`Acquire` edges cover every
//! cross-thread hand-off the algorithms perform. A final test seeds a
//! broken `Relaxed`-style publish and asserts the detector reports it with
//! both conflicting access sites.

use std::sync::{Arc, Mutex, MutexGuard};

use parclust::{emst, hdbscan_memogfk, Point};
use parclust_data::{seed_spreader, uniform_fill};
use parclust_serve::{ClusterModel, LabelingSpec, QueryEngine, SnapshotCell};
use rayon::racecheck;

/// The race list is process-global, so every test serializes on this.
fn test_lock() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

fn pool(threads: usize) -> rayon::ThreadPool {
    rayon::ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .expect("pool")
}

#[test]
fn emst_pipeline_is_race_free_across_widths() {
    let _guard = test_lock();
    let pts: Vec<Point<2>> = uniform_fill(2000, 1);
    for threads in [2, 4, 8] {
        racecheck::take_races();
        let t = pool(threads).install(|| emst(&pts));
        assert_eq!(t.edges.len(), pts.len() - 1);
        let races = racecheck::take_races();
        assert!(
            races.is_empty(),
            "EMST raced at {threads} threads: {races:?}"
        );
    }
}

#[test]
fn hdbscan_pipeline_is_race_free_across_widths() {
    let _guard = test_lock();
    let pts: Vec<Point<3>> = seed_spreader(1500, 2);
    for threads in [2, 4, 8] {
        racecheck::take_races();
        let h = pool(threads).install(|| hdbscan_memogfk(&pts, 10));
        assert_eq!(h.edges.len(), pts.len() - 1);
        let races = racecheck::take_races();
        assert!(
            races.is_empty(),
            "HDBSCAN* raced at {threads} threads: {races:?}"
        );
    }
}

#[test]
fn query_engine_label_cache_is_race_free_across_widths() {
    let _guard = test_lock();
    let pts: Vec<Point<2>> = uniform_fill(600, 3);
    let model = Arc::new(ClusterModel::build(&pts, 5, 5));
    for threads in [2, 4, 8] {
        racecheck::take_races();
        let engine = Arc::new(QueryEngine::new(Arc::clone(&model)));
        // Hammer the labeling cache from several foreign threads: cache
        // misses publish through the SnapshotCell, hits read it, and
        // assignment batches fan out through the pool.
        let p = pool(threads);
        let workers: Vec<_> = (0..4)
            .map(|w| {
                let engine = Arc::clone(&engine);
                std::thread::spawn(move || {
                    for i in 0..20 {
                        let eps = 0.05 + 0.01 * ((w * 20 + i) % 7) as f64;
                        let labeling = engine.labeling(LabelingSpec::Cut { eps });
                        assert_eq!(labeling.labels.len(), 600);
                    }
                })
            })
            .collect();
        for h in workers {
            h.join().expect("query worker");
        }
        let queries: Vec<Point<2>> = uniform_fill(200, 4);
        let assigned = p.install(|| {
            engine.assign_batch(
                &queries,
                LabelingSpec::Eom {
                    cluster_selection_epsilon: 0.0,
                },
                f64::INFINITY,
            )
        });
        assert_eq!(assigned.len(), queries.len());
        let races = racecheck::take_races();
        assert!(
            races.is_empty(),
            "engine cache raced at {threads} threads: {races:?}"
        );
    }
}

#[test]
fn snapshot_cell_stress_is_race_free() {
    let _guard = test_lock();
    racecheck::take_races();
    let cell = Arc::new(SnapshotCell::new(0u64));
    let writer = {
        let cell = Arc::clone(&cell);
        std::thread::spawn(move || {
            for i in 1..=200u64 {
                cell.store(i);
            }
        })
    };
    let readers: Vec<_> = (0..4)
        .map(|_| {
            let cell = Arc::clone(&cell);
            std::thread::spawn(move || {
                let mut last = 0u64;
                for _ in 0..2000 {
                    let v = *cell.load();
                    assert!(v >= last, "snapshot went backwards");
                    last = v;
                }
            })
        })
        .collect();
    writer.join().expect("writer");
    for r in readers {
        r.join().expect("reader");
    }
    assert_eq!(*cell.load(), 200);
    let races = racecheck::take_races();
    assert!(races.is_empty(), "snapshot stress raced: {races:?}");
}

/// Seeded negative: a publish without the release edge (what a `Relaxed`
/// version bump / bare pointer swap would be) must be detected, and the
/// report must carry both conflicting access sites.
#[test]
fn seeded_relaxed_publish_is_caught_with_both_sites() {
    let _guard = test_lock();
    racecheck::take_races();
    let cell = Arc::new(SnapshotCell::new(0u64));
    assert_eq!(*cell.load(), 0);
    {
        let cell = Arc::clone(&cell);
        std::thread::spawn(move || cell.store_racy(7))
            .join()
            .expect("racy writer");
    }
    // A fresh thread's first load takes the slow path; `thread::join` is
    // real-but-unmodeled synchronization, so detection is deterministic,
    // not a lucky interleaving.
    let seen = {
        let cell = Arc::clone(&cell);
        std::thread::spawn(move || *cell.load())
            .join()
            .expect("reader")
    };
    assert_eq!(seen, 7, "the mutex still publishes the value itself");
    let races = racecheck::take_races();
    let hit = races
        .iter()
        .find(|r| r.var == "SnapshotCell" && r.first.op == "write" && r.second.op == "read")
        .unwrap_or_else(|| panic!("seeded race not detected: {races:?}"));
    // Both sites, file:line each: the broken publish and the slow-path read.
    assert!(hit.first.location.file().ends_with("snapshot.rs"));
    assert!(hit.second.location.file().ends_with("snapshot.rs"));
    assert_ne!(
        hit.first.location.line(),
        hit.second.location.line(),
        "distinct conflicting sites expected"
    );
}
