//! Determinism across runs and thread counts.
//!
//! The strict `(w, u, v)` edge order makes every result reproducible: the
//! same input must produce bit-identical MSTs and dendrograms regardless of
//! scheduling. These tests re-run the full pipelines inside differently
//! sized rayon pools.

use parclust::{dendrogram_par, emst_memogfk, hdbscan_memogfk, Point};
use parclust_data::seed_spreader;

fn in_pool<T: Send>(threads: usize, f: impl FnOnce() -> T + Send) -> T {
    rayon::ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .expect("pool")
        .install(f)
}

fn edges_key(edges: &[parclust::Edge]) -> Vec<(u64, u32, u32)> {
    edges.iter().map(|e| (e.w.to_bits(), e.u, e.v)).collect()
}

#[test]
fn emst_identical_across_thread_counts() {
    let pts: Vec<Point<3>> = seed_spreader(8000, 5);
    let a = in_pool(1, || emst_memogfk(&pts));
    let b = in_pool(2, || emst_memogfk(&pts));
    let c = in_pool(4, || emst_memogfk(&pts));
    assert_eq!(edges_key(&a.edges), edges_key(&b.edges));
    assert_eq!(edges_key(&a.edges), edges_key(&c.edges));
}

#[test]
fn hdbscan_identical_across_thread_counts() {
    let pts: Vec<Point<2>> = seed_spreader(6000, 6);
    let a = in_pool(1, || hdbscan_memogfk(&pts, 10));
    let b = in_pool(4, || hdbscan_memogfk(&pts, 10));
    assert_eq!(edges_key(&a.edges), edges_key(&b.edges));
    assert_eq!(a.core_distances, b.core_distances);
}

#[test]
fn dendrogram_identical_across_thread_counts() {
    let pts: Vec<Point<2>> = seed_spreader(6000, 7);
    let mst = emst_memogfk(&pts);
    let a = in_pool(1, || dendrogram_par(pts.len(), &mst.edges, 3));
    let b = in_pool(4, || dendrogram_par(pts.len(), &mst.edges, 3));
    assert_eq!(a.left, b.left);
    assert_eq!(a.right, b.right);
    assert_eq!(a.parent, b.parent);
    assert_eq!(a.root, b.root);
}

#[test]
fn repeated_runs_identical_in_same_pool() {
    let pts: Vec<Point<2>> = seed_spreader(5000, 8);
    let a = emst_memogfk(&pts);
    let b = emst_memogfk(&pts);
    assert_eq!(edges_key(&a.edges), edges_key(&b.edges));
    // Stats counters that reflect algorithmic work (not scheduling) match.
    assert_eq!(a.stats.rounds, b.stats.rounds);
    assert_eq!(a.stats.pairs_materialized, b.stats.pairs_materialized);
}
