//! Differential test suite for the serving stack: for randomized model
//! artifacts (proptest-driven sizes, dimensionalities, and minPts), every
//! HTTP endpoint — JSON *and* the binary batch protocol — must return
//! results byte-identical to direct in-process `QueryEngine` calls, across
//! 1/2/4/8 server worker threads. The HTTP transport, the registry
//! routing, the snapshot caches, and the wire codecs must all be invisible
//! to query answers.

use parclust::{Point, NOISE};
use parclust_serve::{
    start, AssignRequest, AssignResponse, Client, ClusterModel, EngineHandle, LabelingSpec,
    ModelRegistry, QueryEngine, ServerConfig,
};
use proptest::prelude::*;
use rand::prelude::*;
use serde_json::Value;
use std::sync::Arc;

/// Clumpy integer-lattice points with jitter: enough structure for real
/// clusters, adversarial duplicates included.
fn clumpy_points<const D: usize>(n: usize, seed: u64) -> Vec<Point<D>> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let mut c = [0.0; D];
            for slot in c.iter_mut() {
                *slot = rng.gen_range(0i32..20) as f64 + rng.gen_range(0u8..4) as f64 * 0.25;
            }
            Point(c)
        })
        .collect()
}

fn signed_labels(v: &Value) -> Vec<i64> {
    v.as_array()
        .expect("labels array")
        .iter()
        .map(|l| l.as_i64().expect("integer label"))
        .collect()
}

fn to_signed(labels: &[u32]) -> Vec<i64> {
    labels
        .iter()
        .map(|&l| if l == NOISE { -1 } else { l as i64 })
        .collect()
}

/// JSON value equality after one render→parse round trip (what a client
/// observes of a server-side `Value`).
fn roundtripped(v: &Value) -> Value {
    serde_json::from_str(&v.to_json_string()).expect("server JSON reparses")
}

/// The differential core: direct engine answers vs every endpoint, one
/// server per requested worker count.
fn check_endpoints_differential<const D: usize>(
    pts: &[Point<D>],
    min_pts: usize,
    min_cluster_size: usize,
    seed: u64,
) {
    let model = Arc::new(ClusterModel::build(pts, min_pts, min_cluster_size));
    let engine = Arc::new(QueryEngine::new(Arc::clone(&model)));
    let registry = Arc::new(ModelRegistry::new());
    registry
        .insert("diff", Arc::new(EngineHandle::new(Arc::clone(&engine))))
        .unwrap();

    // Ground truth, computed once in-process.
    let specs = [
        LabelingSpec::Eom {
            cluster_selection_epsilon: 0.0,
        },
        LabelingSpec::Eom {
            cluster_selection_epsilon: 1.5,
        },
        LabelingSpec::Cut { eps: 2.0 },
        LabelingSpec::CutK { k: 3 },
    ];
    let truths: Vec<_> = specs.iter().map(|&s| engine.labeling(s)).collect();
    let mut rng = StdRng::seed_from_u64(seed);
    let queries: Vec<Point<D>> = (0..10)
        .map(|_| {
            let mut c = [0.0; D];
            for slot in c.iter_mut() {
                *slot = rng.gen_range(-3.0..23.0);
            }
            Point(c)
        })
        .collect();
    let assign_spec = LabelingSpec::Cut { eps: 2.0 };
    let max_dist = 4.0;
    let assign_truth = engine.assign_batch(&queries, assign_spec, max_dist);
    let flat: Vec<f64> = queries.iter().flat_map(|p| p.coords().to_vec()).collect();
    let info_truth = roundtripped(&registry.snapshot().get("diff").unwrap().info());

    for workers in [1usize, 2, 4, 8] {
        let server = start(
            Arc::clone(&registry),
            &ServerConfig {
                addr: "127.0.0.1:0".into(),
                workers,
                pool_threads: 2,
            },
        )
        .expect("start server");
        let mut client = Client::connect(server.addr()).expect("connect");

        // Model info: identical over the legacy and per-model routes.
        for path in ["/model", "/models/diff"] {
            let (status, info) = client.get(path).unwrap();
            assert_eq!(status, 200, "workers={workers} {path}");
            assert_eq!(info, info_truth, "workers={workers} {path}");
        }

        // Labelings over JSON: /cut (eps + k), /eom; legacy and routed.
        for (spec, truth) in specs.iter().zip(&truths) {
            let (path, body) = match *spec {
                LabelingSpec::Cut { eps } => ("cut", serde_json::json!({ "eps": eps })),
                LabelingSpec::CutK { k } => ("cut", serde_json::json!({"k": k as u64})),
                LabelingSpec::Eom {
                    cluster_selection_epsilon,
                } => (
                    "eom",
                    serde_json::json!({"cluster_selection_epsilon": cluster_selection_epsilon}),
                ),
            };
            for prefix in ["", "/models/diff"] {
                let (status, resp) = client.post(&format!("{prefix}/{path}"), &body).unwrap();
                assert_eq!(status, 200, "workers={workers} {prefix}/{path}: {resp}");
                assert_eq!(
                    resp.get("num_clusters").and_then(Value::as_u64),
                    Some(truth.num_clusters as u64)
                );
                assert_eq!(
                    resp.get("noise").and_then(Value::as_u64),
                    Some(truth.num_noise as u64)
                );
                assert_eq!(
                    signed_labels(resp.get("labels").unwrap()),
                    to_signed(&truth.labels),
                    "workers={workers} {prefix}/{path} {spec:?}"
                );
            }
        }

        // Assignment over JSON: labels, neighbors, and bit-exact distances.
        let body = serde_json::json!({
            "points": queries
                .iter()
                .map(|p| p.coords().to_vec())
                .collect::<Vec<_>>(),
            "labeling": serde_json::json!({"eps": 2.0}),
            "max_dist": max_dist,
        });
        for prefix in ["", "/models/diff"] {
            let (status, resp) = client.post(&format!("{prefix}/assign"), &body).unwrap();
            assert_eq!(status, 200, "workers={workers}: {resp}");
            assert_eq!(
                signed_labels(resp.get("labels").unwrap()),
                to_signed(&assign_truth.iter().map(|a| a.label).collect::<Vec<_>>())
            );
            let neighbors: Vec<u64> = resp
                .get("neighbors")
                .and_then(Value::as_array)
                .unwrap()
                .iter()
                .map(|v| v.as_u64().unwrap())
                .collect();
            assert_eq!(
                neighbors,
                assign_truth
                    .iter()
                    .map(|a| a.neighbor as u64)
                    .collect::<Vec<_>>()
            );
            let distances: Vec<f64> = resp
                .get("distances")
                .and_then(Value::as_array)
                .unwrap()
                .iter()
                .map(|v| v.as_f64().unwrap())
                .collect();
            for (got, want) in distances.iter().zip(&assign_truth) {
                assert_eq!(
                    got.to_bits(),
                    want.distance.to_bits(),
                    "JSON distances must round-trip bit-exactly"
                );
            }
        }

        // Assignment over the binary protocol: all three arrays bit-exact.
        let frame = AssignRequest {
            model_id: "diff".into(),
            spec: assign_spec,
            max_dist,
            dims: D as u32,
            coords: flat.clone(),
        }
        .encode();
        for prefix in ["", "/models/diff"] {
            let (status, bytes) = client
                .post_binary(&format!("{prefix}/assign_binary"), &frame)
                .unwrap();
            assert_eq!(
                status,
                200,
                "workers={workers}: {}",
                String::from_utf8_lossy(&bytes)
            );
            let resp = AssignResponse::decode(&bytes).expect("valid response frame");
            assert_eq!(resp.labels.len(), assign_truth.len());
            for (i, want) in assign_truth.iter().enumerate() {
                assert_eq!(resp.labels[i], want.label, "workers={workers} q{i}");
                assert_eq!(resp.neighbors[i], want.neighbor, "workers={workers} q{i}");
                assert_eq!(
                    resp.distances[i].to_bits(),
                    want.distance.to_bits(),
                    "workers={workers} q{i}"
                );
            }
        }

        drop(client);
        server.shutdown();
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn every_endpoint_matches_in_process_engine_2d(
        n in 2usize..120,
        min_pts in 1usize..8,
        min_cluster_size in 2usize..8,
        seed in 0u64..10_000,
    ) {
        let pts = clumpy_points::<2>(n, seed);
        check_endpoints_differential(&pts, min_pts, min_cluster_size, seed ^ 0xd1f);
    }

    #[test]
    fn every_endpoint_matches_in_process_engine_3d(
        n in 2usize..90,
        min_pts in 1usize..6,
        min_cluster_size in 2usize..6,
        seed in 0u64..10_000,
    ) {
        let pts = clumpy_points::<3>(n, seed);
        check_endpoints_differential(&pts, min_pts, min_cluster_size, seed ^ 0x3d);
    }
}

/// Degenerate shapes outside the proptest size envelope: a single-point
/// model must serve identically too.
#[test]
fn single_point_model_differential() {
    check_endpoints_differential(&[Point([4.0, 2.0])], 5, 5, 99);
}
