//! Property-based cross-checks of every algorithm against dense oracles.
//!
//! Strategy: small random point sets (with duplicates and clumping
//! encouraged) in 2 and 3 dimensions; every property compares a parallel
//! WSPD-based implementation against an `O(n^2)` reference.

use parclust::{
    dbscan_star_labels, dendrogram_par, dendrogram_seq, emst_boruvka, emst_delaunay, emst_memogfk,
    emst_naive, hdbscan_gantao, hdbscan_memogfk, reachability_plot, Point, NOISE,
};
use parclust_mst::prim_dense;
use parclust_primitives::unionfind::UnionFind;
use proptest::prelude::*;

/// Points drawn from a small integer-ish grid: plenty of ties, duplicates,
/// and collinear runs to stress degenerate paths.
fn clumpy_points_2d(max_n: usize) -> impl Strategy<Value = Vec<Point<2>>> {
    prop::collection::vec((0i32..40, 0i32..40, 0u8..4), 2..max_n).prop_map(|raw| {
        raw.into_iter()
            .map(|(x, y, jitter)| {
                Point([
                    x as f64 + jitter as f64 * 0.25,
                    y as f64 - jitter as f64 * 0.125,
                ])
            })
            .collect()
    })
}

fn smooth_points_3d(max_n: usize) -> impl Strategy<Value = Vec<Point<3>>> {
    prop::collection::vec((any::<u32>(), any::<u32>(), any::<u32>()), 2..max_n).prop_map(|raw| {
        raw.into_iter()
            .map(|(x, y, z)| {
                Point([
                    (x % 100_000) as f64 / 100.0,
                    (y % 100_000) as f64 / 100.0,
                    (z % 100_000) as f64 / 100.0,
                ])
            })
            .collect()
    })
}

fn emst_oracle<const D: usize>(pts: &[Point<D>]) -> f64 {
    prim_dense(pts.len(), 0, |u, v| pts[u as usize].dist(&pts[v as usize])).total_weight
}

fn cd_oracle<const D: usize>(pts: &[Point<D>], min_pts: usize) -> Vec<f64> {
    let n = pts.len();
    (0..n)
        .map(|i| {
            let mut d: Vec<f64> = (0..n).map(|j| pts[i].dist(&pts[j])).collect();
            d.sort_by(|a, b| a.partial_cmp(b).unwrap());
            d[min_pts.min(n) - 1]
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn emst_drivers_match_oracle_2d(pts in clumpy_points_2d(80)) {
        let want = emst_oracle(&pts);
        let tol = 1e-9 * (1.0 + want);
        prop_assert!((emst_naive(&pts).total_weight - want).abs() < tol);
        prop_assert!((emst_memogfk(&pts).total_weight - want).abs() < tol);
        prop_assert!((emst_boruvka(&pts).total_weight - want).abs() < tol);
        prop_assert!((emst_delaunay(&pts).total_weight - want).abs() < tol);
    }

    #[test]
    fn emst_matches_oracle_3d(pts in smooth_points_3d(60)) {
        let want = emst_oracle(&pts);
        let tol = 1e-9 * (1.0 + want);
        prop_assert!((emst_memogfk(&pts).total_weight - want).abs() < tol);
    }

    #[test]
    fn hdbscan_variants_match_oracle(
        pts in clumpy_points_2d(60),
        min_pts in 1usize..12,
    ) {
        let cd = cd_oracle(&pts, min_pts);
        let want = prim_dense(pts.len(), 0, |u, v| {
            pts[u as usize].dist(&pts[v as usize]).max(cd[u as usize]).max(cd[v as usize])
        }).total_weight;
        let tol = 1e-9 * (1.0 + want);
        prop_assert!((hdbscan_memogfk(&pts, min_pts).total_weight - want).abs() < tol);
        prop_assert!((hdbscan_gantao(&pts, min_pts).total_weight - want).abs() < tol);
    }

    #[test]
    fn dendrogram_par_equals_seq_and_prim_order(pts in smooth_points_3d(50)) {
        let n = pts.len();
        let mst = emst_memogfk(&pts);
        prop_assume!(mst.edges.len() == n - 1);
        let ds = dendrogram_seq(n, &mst.edges, 0);
        let dp = dendrogram_par(n, &mst.edges, 0);
        prop_assert_eq!(&ds.left, &dp.left);
        prop_assert_eq!(&ds.right, &dp.right);
        prop_assert_eq!(&ds.parent, &dp.parent);

        // In-order equals Prim order (smooth coordinates: ties have
        // negligible probability).
        let (order, reach) = reachability_plot(&dp);
        let oracle = prim_dense(n, 0, |u, v| pts[u as usize].dist(&pts[v as usize]));
        prop_assert_eq!(order, oracle.order);
        for i in 1..n {
            prop_assert!((reach[i] - oracle.reachability[i]).abs() < 1e-9);
        }
    }

    #[test]
    fn dbscan_star_matches_definition(
        pts in clumpy_points_2d(60),
        min_pts in 1usize..8,
        eps_scale in 0.05f64..2.0,
    ) {
        let n = pts.len();
        let h = hdbscan_memogfk(&pts, min_pts);
        let d = dendrogram_par(n, &h.edges, 0);
        // Pick eps relative to the data spread so all regimes get hit.
        let eps = eps_scale * 8.0;
        let labels = dbscan_star_labels(&d, &h.core_distances, eps);

        // Oracle DBSCAN* (minPts clamps to n, matching the library's
        // documented core-distance semantics).
        let min_pts = min_pts.min(n);
        let is_core: Vec<bool> = (0..n)
            .map(|i| (0..n).filter(|&j| pts[i].dist(&pts[j]) <= eps).count() >= min_pts)
            .collect();
        let mut uf = UnionFind::new(n);
        for i in 0..n {
            for j in (i + 1)..n {
                if is_core[i] && is_core[j] && pts[i].dist(&pts[j]) <= eps {
                    uf.union(i as u32, j as u32);
                }
            }
        }
        for i in 0..n {
            prop_assert_eq!(labels[i] == NOISE, !is_core[i], "core flag at {}", i);
        }
        for i in 0..n {
            for j in (i + 1)..n {
                if is_core[i] && is_core[j] {
                    prop_assert_eq!(
                        labels[i] == labels[j],
                        uf.same(i as u32, j as u32),
                        "pair ({}, {})", i, j
                    );
                }
            }
        }
    }

    #[test]
    fn mst_edges_satisfy_cycle_property(pts in clumpy_points_2d(40)) {
        // Spot-check the cut/cycle property: for every non-tree pair (u,v),
        // the path between them in the MST has no edge heavier than d(u,v).
        // (Checked via the minimax interpretation: MST path max-edge =
        // minimax distance.)
        let n = pts.len();
        let mst = emst_memogfk(&pts);
        prop_assume!(mst.edges.len() == n - 1);
        // Floyd-Warshall-style minimax over the complete graph.
        let mut minimax = vec![f64::INFINITY; n * n];
        for i in 0..n {
            minimax[i * n + i] = 0.0;
        }
        for i in 0..n {
            for j in 0..n {
                if i != j {
                    minimax[i * n + j] = pts[i].dist(&pts[j]);
                }
            }
        }
        for k in 0..n {
            for i in 0..n {
                for j in 0..n {
                    let via = minimax[i * n + k].max(minimax[k * n + j]);
                    if via < minimax[i * n + j] {
                        minimax[i * n + j] = via;
                    }
                }
            }
        }
        // Every MST edge weight equals the minimax distance between its
        // endpoints.
        for e in &mst.edges {
            let mm = minimax[e.u as usize * n + e.v as usize];
            prop_assert!((e.w - mm).abs() < 1e-9, "edge ({}, {})", e.u, e.v);
        }
    }
}
