//! Differential mutation harness: the dynamic-model contract.
//!
//! For *every* generated mutation sequence — inserts, deletes, mixed
//! batches, any batch granularity, any policy (`Auto`, `AlwaysRebuild`,
//! `ForceMerge`), memo or streaming restream, at 1/2/4/8 threads — the
//! incrementally maintained model must be **bit identical** to a
//! from-scratch HDBSCAN\* build over the surviving live points: same core
//! distances, same ordered dendrogram, same condensed tree and labels.
//!
//! This is the pin that keeps the rebuild-vs-merge cost model an
//! optimization rather than a semantics knob. Point sets are tie-heavy
//! (integer-ish grids with duplicates) on purpose: exact-distance ties are
//! where carried state goes wrong first. The case count honors
//! `PROPTEST_CASES`.

use parclust::{condense_tree, dendrogram_par, hdbscan_memogfk, Point};
use parclust_dyn::{DynConfig, DynamicModel, MutationBatch, MutationPolicy};
use proptest::prelude::*;

fn in_pool<T: Send>(threads: usize, f: impl FnOnce() -> T + Send) -> T {
    rayon::ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .expect("pool")
        .install(f)
}

/// Everything the model publishes, as bits, for exact comparison.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Fingerprint {
    cd: Vec<u64>,
    heights: Vec<u64>,
    left: Vec<u32>,
    right: Vec<u32>,
    edge_u: Vec<u32>,
    edge_v: Vec<u32>,
    cond_parent: Vec<u32>,
    labels: Vec<u32>,
    lambdas: Vec<u64>,
}

fn fingerprint<const D: usize>(m: &DynamicModel<D>) -> Fingerprint {
    let d = m.dendrogram();
    let c = m.condensed();
    Fingerprint {
        cd: m.core_distances().iter().map(|x| x.to_bits()).collect(),
        heights: d.height.iter().map(|x| x.to_bits()).collect(),
        left: d.left.clone(),
        right: d.right.clone(),
        edge_u: d.edge_u.clone(),
        edge_v: d.edge_v.clone(),
        cond_parent: c.parent.clone(),
        labels: c.point_cluster.clone(),
        lambdas: c.point_lambda.iter().map(|x| x.to_bits()).collect(),
    }
}

/// The oracle: the ordinary batch pipeline over the current live points.
fn scratch_fingerprint<const D: usize>(
    pts: &[Point<D>],
    min_pts: usize,
    mcs: usize,
) -> Fingerprint {
    let h = hdbscan_memogfk(pts, min_pts);
    let d = dendrogram_par(pts.len(), &h.edges, 0);
    let c = condense_tree(&d, mcs);
    Fingerprint {
        cd: h.core_distances.iter().map(|x| x.to_bits()).collect(),
        heights: d.height.iter().map(|x| x.to_bits()).collect(),
        left: d.left,
        right: d.right,
        edge_u: d.edge_u,
        edge_v: d.edge_v,
        cond_parent: c.parent,
        labels: c.point_cluster,
        lambdas: c.point_lambda.iter().map(|x| x.to_bits()).collect(),
    }
}

/// Raw generated ops: insert coordinates plus delete seeds that are mapped
/// onto valid live indices at apply time.
type RawOp = (Vec<(i32, i32, u8)>, Vec<u16>);

fn grid_point(x: i32, y: i32, jitter: u8) -> Point<2> {
    // Integer grid plus quantized jitter: many exact duplicates and ties.
    Point([
        x as f64 + jitter as f64 * 0.25,
        y as f64 - jitter as f64 * 0.125,
    ])
}

/// Map delete seeds to distinct live indices, always leaving at least one
/// survivor so the model stays non-empty.
fn resolve_deletes(n: usize, raw: &[u16]) -> Vec<usize> {
    let mut out = std::collections::BTreeSet::new();
    for &r in raw {
        if out.len() + 1 >= n {
            break;
        }
        out.insert(r as usize % n);
    }
    out.into_iter().collect()
}

fn batch_from_raw(n_live: usize, op: &RawOp) -> MutationBatch<2> {
    MutationBatch {
        inserts: op.0.iter().map(|&(x, y, j)| grid_point(x, y, j)).collect(),
        deletes: resolve_deletes(n_live, &op.1),
    }
}

fn ops_strategy(max_ops: usize) -> impl Strategy<Value = Vec<RawOp>> {
    prop::collection::vec(
        (
            prop::collection::vec((0i32..24, 0i32..24, 0u8..4), 0..7),
            prop::collection::vec(any::<u16>(), 0..7),
        ),
        1..max_ops,
    )
}

fn initial_points_strategy(max_n: usize) -> impl Strategy<Value = Vec<Point<2>>> {
    prop::collection::vec((0i32..24, 0i32..24, 0u8..4), 1..max_n).prop_map(|raw| {
        raw.into_iter()
            .map(|(x, y, j)| grid_point(x, y, j))
            .collect()
    })
}

fn config_strategy() -> impl Strategy<Value = DynConfig> {
    (0usize..3, 0usize..600, 0.0f64..1.0).prop_map(|(p, cap, rebuild_fraction)| DynConfig {
        policy: match p {
            0 => MutationPolicy::Auto,
            1 => MutationPolicy::AlwaysRebuild,
            _ => MutationPolicy::ForceMerge,
        },
        rebuild_fraction,
        // Caps below 8 stand in for "no cap": exercise the MemoGFK restream.
        max_live_pairs: if cap < 8 { None } else { Some(cap) },
    })
}

/// Run a whole sequence, checking the model against the oracle after every
/// batch, and return the final fingerprint.
fn run_sequence(
    init: &[Point<2>],
    ops: &[RawOp],
    min_pts: usize,
    mcs: usize,
    cfg: DynConfig,
    check_each_step: bool,
) -> Fingerprint {
    let mut m = DynamicModel::new(init, min_pts, mcs, cfg);
    for (step, op) in ops.iter().enumerate() {
        let batch = batch_from_raw(m.len(), op);
        if batch.is_empty() {
            continue;
        }
        let report = m.apply(&batch).expect("generated batches are valid");
        assert_eq!(report.n, m.len());
        if check_each_step {
            let want = scratch_fingerprint(m.points(), min_pts, mcs);
            assert_eq!(
                fingerprint(&m),
                want,
                "step {step} ({:?}, {} ins / {} del) diverged from scratch",
                cfg.policy,
                report.inserted,
                report.deleted,
            );
        }
    }
    fingerprint(&m)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Core property: after every batch of every generated sequence, the
    /// incremental model equals a from-scratch rebuild, bit for bit —
    /// whatever the policy, threshold, or restream engine.
    #[test]
    fn every_mutation_sequence_matches_scratch(
        init in initial_points_strategy(50),
        ops in ops_strategy(5),
        min_pts in 1usize..8,
        mcs in 2usize..6,
        cfg in config_strategy(),
    ) {
        let last = run_sequence(&init, &ops, min_pts, mcs, cfg, true);
        // Belt and braces: the final state also matches the reference
        // AlwaysRebuild run of the same sequence.
        let reference = run_sequence(
            &init,
            &ops,
            min_pts,
            mcs,
            DynConfig { policy: MutationPolicy::AlwaysRebuild, ..cfg },
            false,
        );
        prop_assert_eq!(last, reference);
    }

    /// Batch granularity is irrelevant: one big batch of inserts equals the
    /// same inserts applied one at a time (both equal scratch).
    #[test]
    fn batch_granularity_is_irrelevant_for_inserts(
        init in initial_points_strategy(40),
        raw_inserts in prop::collection::vec((0i32..24, 0i32..24, 0u8..4), 1..12),
        min_pts in 1usize..6,
        mcs in 2usize..5,
        cfg in config_strategy(),
    ) {
        let inserts: Vec<Point<2>> =
            raw_inserts.iter().map(|&(x, y, j)| grid_point(x, y, j)).collect();
        let mut coarse = DynamicModel::new(&init, min_pts, mcs, cfg);
        coarse
            .apply(&MutationBatch { inserts: inserts.clone(), deletes: vec![] })
            .unwrap();
        let mut fine = DynamicModel::new(&init, min_pts, mcs, cfg);
        for p in &inserts {
            fine.apply(&MutationBatch { inserts: vec![*p], deletes: vec![] })
                .unwrap();
        }
        prop_assert_eq!(fingerprint(&coarse), fingerprint(&fine));
        prop_assert_eq!(
            fingerprint(&coarse),
            scratch_fingerprint(coarse.points(), min_pts, mcs)
        );
    }

    /// The whole sequence is bit-identical at every thread count, and the
    /// 1-thread run equals scratch.
    #[test]
    fn sequences_bit_identical_across_thread_counts(
        init in initial_points_strategy(36),
        ops in ops_strategy(4),
        min_pts in 1usize..6,
        mcs in 2usize..5,
        cfg in config_strategy(),
    ) {
        let baseline =
            in_pool(1, || run_sequence(&init, &ops, min_pts, mcs, cfg, true));
        for threads in [2usize, 4, 8] {
            let run =
                in_pool(threads, || run_sequence(&init, &ops, min_pts, mcs, cfg, false));
            prop_assert_eq!(
                baseline.clone(),
                run,
                "sequence diverged at {} threads",
                threads
            );
        }
    }
}

/// Smooth (tie-free) coordinates exercise the opposite regime from the
/// grids above; a fixed-seed sweep keeps the per-case cost predictable.
#[test]
fn smooth_coordinate_sequences_match_scratch() {
    use rand::prelude::*;
    let mut rng = StdRng::seed_from_u64(0xD1FF);
    for (min_pts, mcs) in [(1usize, 2usize), (4, 3), (7, 5)] {
        let init: Vec<Point<2>> = (0..80)
            .map(|_| Point([rng.gen_range(-50.0..50.0), rng.gen_range(-50.0..50.0)]))
            .collect();
        for policy in [
            MutationPolicy::Auto,
            MutationPolicy::AlwaysRebuild,
            MutationPolicy::ForceMerge,
        ] {
            let cfg = DynConfig {
                policy,
                ..DynConfig::default()
            };
            let mut m = DynamicModel::new(&init, min_pts, mcs, cfg);
            for _ in 0..4 {
                let inserts: Vec<Point<2>> = (0..rng.gen_range(0..6))
                    .map(|_| Point([rng.gen_range(-50.0..50.0), rng.gen_range(-50.0..50.0)]))
                    .collect();
                let raw: Vec<u16> = (0..rng.gen_range(0..5)).map(|_| rng.gen()).collect();
                let deletes = resolve_deletes(m.len(), &raw);
                if inserts.is_empty() && deletes.is_empty() {
                    continue;
                }
                m.apply(&MutationBatch { inserts, deletes }).unwrap();
                assert_eq!(
                    fingerprint(&m),
                    scratch_fingerprint(m.points(), min_pts, mcs),
                    "{policy:?} min_pts={min_pts}"
                );
            }
        }
    }
}
