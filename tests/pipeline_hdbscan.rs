//! End-to-end HDBSCAN* pipelines: both MST variants, the approximate
//! OPTICS, dendrograms, reachability plots, and flat extraction.

use parclust::{
    dbscan_star_labels, dendrogram_par, dendrogram_seq, hdbscan_gantao, hdbscan_memogfk,
    optics_approx, reachability_plot, Point, NOISE,
};
use parclust_data::{gps_like, seed_spreader, sensor_like, uniform_fill};

fn assert_close(a: f64, b: f64, what: &str) {
    assert!(
        (a - b).abs() <= 1e-9 * (1.0 + a.abs().max(b.abs())),
        "{what}: {a} vs {b}"
    );
}

fn variants_agree<const D: usize>(pts: &[Point<D>], min_pts: usize, what: &str) {
    let memo = hdbscan_memogfk(pts, min_pts);
    let gan = hdbscan_gantao(pts, min_pts);
    assert_eq!(memo.edges.len(), pts.len() - 1);
    assert_eq!(gan.edges.len(), pts.len() - 1);
    assert_close(memo.total_weight, gan.total_weight, what);
    // Edge weights respect the mutual reachability lower bound: every
    // incident edge weighs at least the endpoint's core distance.
    for e in &memo.edges {
        let lb = memo.core_distances[e.u as usize].max(memo.core_distances[e.v as usize]);
        assert!(e.w >= lb - 1e-12, "{what}: edge below core distance");
    }
}

#[test]
fn uniform_and_clustered_agree() {
    let pts: Vec<Point<2>> = uniform_fill(3000, 1);
    variants_agree(&pts, 10, "2D-UniformFill");
    let pts: Vec<Point<3>> = seed_spreader(3000, 2);
    variants_agree(&pts, 10, "3D-SS-varden");
}

#[test]
fn skewed_and_high_dimensional_agree() {
    let pts = gps_like(2000, 3);
    variants_agree(&pts, 10, "3D-GeoLife-like");
    let pts: Vec<Point<7>> = sensor_like(1200, 4, 6);
    variants_agree(&pts, 10, "7D-Household-like");
    let pts: Vec<Point<16>> = sensor_like(700, 5, 10);
    variants_agree(&pts, 5, "16D-CHEM-like");
}

#[test]
fn minpts_sweep_is_monotone_in_weight() {
    // d_m is pointwise nondecreasing in minPts, so the MST weight is too.
    let pts: Vec<Point<2>> = seed_spreader(2500, 6);
    let mut prev = 0.0;
    for min_pts in [1, 2, 5, 10, 20, 50] {
        let h = hdbscan_memogfk(&pts, min_pts);
        assert!(
            h.total_weight >= prev - 1e-9,
            "minPts={min_pts}: weight decreased ({} < {prev})",
            h.total_weight
        );
        prev = h.total_weight;
    }
}

#[test]
fn hierarchy_to_clusters_pipeline() {
    // Three well-separated blobs with background noise: DBSCAN* extraction
    // at a sensible ε must find the blobs and flag sparse noise.
    let mut pts: Vec<Point<2>> = Vec::new();
    let mut rng_state = 12345u64;
    let mut next = || {
        rng_state = rng_state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (rng_state >> 11) as f64 / (1u64 << 53) as f64
    };
    for c in 0..3 {
        let (cx, cy) = (c as f64 * 100.0, 0.0);
        for _ in 0..400 {
            pts.push(Point([cx + next() * 4.0, cy + next() * 4.0]));
        }
    }
    for _ in 0..30 {
        pts.push(Point([next() * 300.0, 40.0 + next() * 100.0]));
    }
    let n = pts.len();
    let min_pts = 10;
    let h = hdbscan_memogfk(&pts, min_pts);
    let dend = dendrogram_par(n, &h.edges, 0);
    let labels = dbscan_star_labels(&dend, &h.core_distances, 2.0);

    // The three blobs resolve into exactly three clusters.
    let mut blob_labels = std::collections::HashSet::new();
    for b in 0..3 {
        let l = labels[b * 400 + 5];
        assert_ne!(l, NOISE, "blob {b} core point must not be noise");
        blob_labels.insert(l);
    }
    assert_eq!(blob_labels.len(), 3, "blobs must stay separate at eps=2");
    // Points of the same blob share a label.
    for b in 0..3 {
        let l = labels[b * 400];
        for i in 0..400 {
            assert_eq!(labels[b * 400 + i], l, "blob {b} split");
        }
    }
    // Scattered background is noise.
    let noise_tail = labels[n - 30..].iter().filter(|&&l| l == NOISE).count();
    assert!(
        noise_tail >= 25,
        "scattered points should be noise: {noise_tail}/30"
    );
}

#[test]
fn reachability_plot_matches_between_constructions() {
    let pts: Vec<Point<3>> = seed_spreader(2000, 9);
    let h = hdbscan_memogfk(&pts, 10);
    let ds = dendrogram_seq(pts.len(), &h.edges, 17);
    let dp = dendrogram_par(pts.len(), &h.edges, 17);
    let (os, rs) = reachability_plot(&ds);
    let (op, rp) = reachability_plot(&dp);
    assert_eq!(os, op);
    assert_eq!(rs, rp);
    assert_eq!(os[0], 17);
}

#[test]
fn optics_approx_bounds_and_pair_blowup() {
    let pts: Vec<Point<2>> = uniform_fill(1500, 11);
    let exact = hdbscan_memogfk(&pts, 10);
    for rho in [0.125, 0.5, 2.0] {
        let approx = optics_approx(&pts, 10, rho);
        assert_eq!(approx.edges.len(), pts.len() - 1);
        assert!(
            approx.total_weight <= exact.total_weight * (1.0 + rho) + 1e-9,
            "rho={rho} upper"
        );
        assert!(
            approx.total_weight >= exact.total_weight / (1.0 + rho) - 1e-9,
            "rho={rho} lower"
        );
    }
    // Appendix C's observation: a reasonable rho needs a large separation
    // constant, producing far more pairs than the exact algorithm's s=2.
    let tight = optics_approx(&pts, 10, 0.125);
    assert!(tight.stats.pairs_materialized > exact.stats.pairs_materialized);
}
