//! End-to-end EMST pipelines across all drivers and data families.

use parclust::{
    dendrogram_par, emst_boruvka, emst_delaunay, emst_gfk, emst_memogfk, emst_naive,
    reachability_plot, single_linkage_cut, single_linkage_k, Point,
};
use parclust_data::{gps_like, seed_spreader, sensor_like, uniform_fill};
use parclust_primitives::unionfind::UnionFind;

fn assert_close(a: f64, b: f64, what: &str) {
    assert!(
        (a - b).abs() <= 1e-9 * (1.0 + a.abs().max(b.abs())),
        "{what}: {a} vs {b}"
    );
}

fn check_spanning(n: usize, edges: &[parclust::Edge]) {
    assert_eq!(edges.len(), n - 1);
    let mut uf = UnionFind::new(n);
    for e in edges {
        assert!(e.u != e.v && (e.u as usize) < n && (e.v as usize) < n);
        assert!(e.w.is_finite() && e.w >= 0.0);
        uf.union(e.u, e.v);
    }
    assert_eq!(uf.components(), 1, "edges must span all points");
}

fn drivers_agree<const D: usize>(pts: &[Point<D>], what: &str) -> f64 {
    let memo = emst_memogfk(pts);
    check_spanning(pts.len(), &memo.edges);
    let naive = emst_naive(pts);
    let gfk = emst_gfk(pts);
    let boruvka = emst_boruvka(pts);
    assert_close(
        naive.total_weight,
        memo.total_weight,
        &format!("{what}: naive"),
    );
    assert_close(gfk.total_weight, memo.total_weight, &format!("{what}: gfk"));
    assert_close(
        boruvka.total_weight,
        memo.total_weight,
        &format!("{what}: boruvka"),
    );
    memo.total_weight
}

#[test]
fn uniform_2d_all_drivers_plus_delaunay() {
    let pts: Vec<Point<2>> = uniform_fill(4000, 1);
    let w = drivers_agree(&pts, "2D-UniformFill");
    let del = emst_delaunay(&pts);
    assert_close(del.total_weight, w, "2D-UniformFill: delaunay");
}

#[test]
fn seed_spreader_2d_all_drivers_plus_delaunay() {
    let pts: Vec<Point<2>> = seed_spreader(4000, 2);
    let w = drivers_agree(&pts, "2D-SS-varden");
    let del = emst_delaunay(&pts);
    assert_close(del.total_weight, w, "2D-SS-varden: delaunay");
}

#[test]
fn uniform_5d_and_7d() {
    let pts: Vec<Point<5>> = uniform_fill(2500, 3);
    drivers_agree(&pts, "5D-UniformFill");
    let pts: Vec<Point<7>> = uniform_fill(1500, 4);
    drivers_agree(&pts, "7D-UniformFill");
}

#[test]
fn gps_like_3d() {
    let pts = gps_like(3000, 5);
    drivers_agree(&pts, "3D-GeoLife-like");
}

#[test]
fn sensor_like_10d_and_16d() {
    let pts: Vec<Point<10>> = sensor_like(1200, 6, 8);
    drivers_agree(&pts, "10D-HT-like");
    let pts: Vec<Point<16>> = sensor_like(800, 7, 12);
    drivers_agree(&pts, "16D-CHEM-like");
}

#[test]
fn emst_to_single_linkage_pipeline() {
    // EMST -> ordered dendrogram -> flat clusterings, with invariants the
    // whole way through.
    let pts: Vec<Point<2>> = seed_spreader(6000, 8);
    let n = pts.len();
    let mst = emst_memogfk(&pts);
    let dend = dendrogram_par(n, &mst.edges, 0);

    // Reachability plot visits everything, first bar infinite.
    let (order, reach) = reachability_plot(&dend);
    assert_eq!(order.len(), n);
    assert_eq!(reach[0], f64::INFINITY);
    assert!(reach[1..].iter().all(|r| r.is_finite()));

    // k-cuts produce exactly k clusters for several k.
    for k in [1, 2, 5, 20] {
        let labels = single_linkage_k(&dend, k);
        let distinct: std::collections::HashSet<u32> = labels.iter().copied().collect();
        assert_eq!(distinct.len(), k, "k={k}");
    }

    // Epsilon cut at the max edge weight gives one cluster; below the min
    // edge weight, n clusters.
    let max_w = mst.edges.iter().map(|e| e.w).fold(0.0, f64::max);
    let min_w = mst.edges.iter().map(|e| e.w).fold(f64::INFINITY, f64::min);
    let one = single_linkage_cut(&dend, max_w);
    assert!(one.iter().all(|&l| l == 0));
    let all = single_linkage_cut(&dend, min_w * 0.5);
    let distinct: std::collections::HashSet<u32> = all.iter().copied().collect();
    assert_eq!(distinct.len(), n);
}

#[test]
fn memory_claims_hold_on_clustered_data() {
    // The headline §5 claims, at test scale: MemoGFK materializes far
    // fewer pairs at once than the full WSPD, and GFK computes fewer BCCPs
    // than Naive.
    let pts: Vec<Point<2>> = seed_spreader(20_000, 9);
    let naive = emst_naive(&pts);
    let gfk = emst_gfk(&pts);
    let memo = emst_memogfk(&pts);
    assert!(memo.stats.peak_live_pairs * 2 < naive.stats.peak_live_pairs);
    assert!(gfk.stats.bccp_calls < naive.stats.bccp_calls);
    assert!(memo.stats.peak_pair_bytes < naive.stats.peak_pair_bytes);
}
