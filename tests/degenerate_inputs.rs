//! Degenerate and adversarial inputs through every public entry point:
//! empty/singleton sets, exact duplicates, collinear data, identical
//! points, and tiny `n`.

use parclust::{
    dbscan_star_labels, dendrogram_par, dendrogram_seq, emst, emst_boruvka, emst_delaunay,
    emst_gfk, emst_memogfk, emst_naive, hdbscan_gantao, hdbscan_memogfk, reachability_plot,
    single_linkage_k, Point, NOISE,
};
use parclust_mst::prim_dense;

fn assert_close(a: f64, b: f64, what: &str) {
    assert!((a - b).abs() < 1e-9 * (1.0 + a.abs()), "{what}: {a} vs {b}");
}

#[test]
fn empty_and_singleton() {
    assert!(emst::<2>(&[]).edges.is_empty());
    assert!(emst(&[Point([5.0, 5.0])]).edges.is_empty());
    assert!(hdbscan_memogfk::<2>(&[], 10).edges.is_empty());
    let h = hdbscan_memogfk(&[Point([5.0, 5.0])], 10);
    assert!(h.edges.is_empty());
    assert_eq!(h.core_distances, vec![0.0]);
}

#[test]
fn two_and_three_points() {
    let two = vec![Point([0.0, 0.0]), Point([3.0, 4.0])];
    for (name, got) in [
        ("naive", emst_naive(&two).total_weight),
        ("gfk", emst_gfk(&two).total_weight),
        ("memogfk", emst_memogfk(&two).total_weight),
        ("boruvka", emst_boruvka(&two).total_weight),
        ("delaunay", emst_delaunay(&two).total_weight),
    ] {
        assert_close(got, 5.0, name);
    }
    let three = vec![Point([0.0, 0.0]), Point([1.0, 0.0]), Point([10.0, 0.0])];
    assert_close(emst_memogfk(&three).total_weight, 10.0, "three collinear");
}

#[test]
fn all_points_identical() {
    let pts = vec![Point([7.0, -3.0]); 100];
    for (name, t) in [
        ("naive", emst_naive(&pts)),
        ("gfk", emst_gfk(&pts)),
        ("memogfk", emst_memogfk(&pts)),
        ("boruvka", emst_boruvka(&pts)),
        ("delaunay", emst_delaunay(&pts)),
    ] {
        assert_eq!(t.edges.len(), 99, "{name}");
        assert_close(t.total_weight, 0.0, name);
    }
    // HDBSCAN*: all core distances zero, all edges zero.
    let h = hdbscan_memogfk(&pts, 10);
    assert!(h.core_distances.iter().all(|&c| c == 0.0));
    assert_close(h.total_weight, 0.0, "hdbscan identical");
    // Dendrogram of an all-zero tree still works and labels one cluster.
    let d = dendrogram_par(pts.len(), &h.edges, 0);
    let labels = dbscan_star_labels(&d, &h.core_distances, 0.0);
    assert!(labels.iter().all(|&l| l == 0));
}

#[test]
fn heavy_duplication() {
    // 30 distinct locations, ~170 duplicates.
    let mut pts = Vec::new();
    for i in 0..200 {
        let k = i % 30;
        pts.push(Point([(k % 6) as f64 * 10.0, (k / 6) as f64 * 10.0]));
    }
    let want = prim_dense(pts.len(), 0, |u, v| pts[u as usize].dist(&pts[v as usize]));
    for (name, t) in [
        ("naive", emst_naive(&pts)),
        ("memogfk", emst_memogfk(&pts)),
        ("boruvka", emst_boruvka(&pts)),
        ("delaunay", emst_delaunay(&pts)),
    ] {
        assert_close(t.total_weight, want.total_weight, name);
        assert_eq!(t.edges.len(), pts.len() - 1, "{name}");
    }
    let h = hdbscan_memogfk(&pts, 3);
    let hwant = {
        let cd: Vec<f64> = (0..pts.len())
            .map(|i| {
                let mut d: Vec<f64> = (0..pts.len()).map(|j| pts[i].dist(&pts[j])).collect();
                d.sort_by(|a, b| a.partial_cmp(b).unwrap());
                d[2]
            })
            .collect();
        prim_dense(pts.len(), 0, |u, v| {
            pts[u as usize]
                .dist(&pts[v as usize])
                .max(cd[u as usize])
                .max(cd[v as usize])
        })
        .total_weight
    };
    assert_close(h.total_weight, hwant, "hdbscan duplicated");
}

#[test]
fn collinear_everything() {
    let pts: Vec<Point<2>> = (0..50)
        .map(|i| Point([i as f64 * 2.0, -i as f64]))
        .collect();
    let want = prim_dense(pts.len(), 0, |u, v| pts[u as usize].dist(&pts[v as usize]));
    assert_close(
        emst_memogfk(&pts).total_weight,
        want.total_weight,
        "memogfk",
    );
    assert_close(
        emst_delaunay(&pts).total_weight,
        want.total_weight,
        "delaunay",
    );
    assert_close(
        emst_boruvka(&pts).total_weight,
        want.total_weight,
        "boruvka",
    );
    // Full pipeline over the degenerate tree.
    let mst = emst_memogfk(&pts);
    let d = dendrogram_seq(pts.len(), &mst.edges, 0);
    let (order, _) = reachability_plot(&d);
    assert_eq!(order.len(), pts.len());
    let labels = single_linkage_k(&d, 5);
    let distinct: std::collections::HashSet<u32> = labels.iter().copied().collect();
    assert_eq!(distinct.len(), 5);
}

#[test]
fn min_pts_edge_cases() {
    let pts: Vec<Point<2>> = (0..20).map(|i| Point([i as f64, 0.5 * i as f64])).collect();
    // minPts = n and minPts > n both clamp sensibly.
    for mp in [20, 100] {
        let h = hdbscan_memogfk(&pts, mp);
        assert_eq!(h.edges.len(), 19);
        assert!(h.core_distances.iter().all(|c| c.is_finite()));
    }
    // Both variants agree even in the degenerate regime.
    let a = hdbscan_memogfk(&pts, 20).total_weight;
    let b = hdbscan_gantao(&pts, 20).total_weight;
    assert_close(a, b, "variants at minPts=n");
}

#[test]
fn noise_labeling_extremes() {
    let pts: Vec<Point<2>> = (0..40).map(|i| Point([i as f64, 0.0])).collect();
    let h = hdbscan_memogfk(&pts, 5);
    let d = dendrogram_par(pts.len(), &h.edges, 0);
    // eps below every core distance: everything is noise.
    let all_noise = dbscan_star_labels(&d, &h.core_distances, 1e-9);
    assert!(all_noise.iter().all(|&l| l == NOISE));
    // eps above everything: one cluster, no noise.
    let one = dbscan_star_labels(&d, &h.core_distances, 1e9);
    assert!(one.iter().all(|&l| l == 0));
}
