//! The streaming pipeline's exactness contract.
//!
//! The bounded-memory path (chunked ingestion via `PointSource`, batched
//! WSPD production, streaming Kruskal merges) must be **bit-identical** to
//! the in-memory path: same edges, same weights-by-bits, same core
//! distances — for all three EMST methods, both HDBSCAN\* variants, every
//! batch size, and every thread count. These tests pin that contract the
//! same way `tests/parallel_semantics.rs` pins thread-count determinism.

use parclust::{
    emst_gfk, emst_memogfk, emst_naive, emst_streaming, hdbscan_gantao, hdbscan_gantao_streaming,
    hdbscan_memogfk, hdbscan_streaming, Edge, Point,
};
use parclust_data::{
    collect_points, seed_spreader, uniform_fill, ChunkedReader, ChunkedWriter, SliceSource,
};
use proptest::prelude::*;

fn in_pool<T: Send>(threads: usize, f: impl FnOnce() -> T + Send) -> T {
    rayon::ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .expect("pool")
        .install(f)
}

fn edge_bits(edges: &[Edge]) -> Vec<(u64, u32, u32)> {
    edges.iter().map(|e| (e.w.to_bits(), e.u, e.v)).collect()
}

fn tmp(name: &str) -> std::path::PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!(
        "parclust-stream-test-{}-{name}",
        std::process::id()
    ));
    p
}

#[test]
fn streaming_emst_identical_to_all_in_memory_methods() {
    let pts: Vec<Point<2>> = seed_spreader(3_000, 51);
    let naive = emst_naive(&pts);
    let gfk = emst_gfk(&pts);
    let memo = emst_memogfk(&pts);
    // The in-memory methods agree with each other (pinned elsewhere);
    // streaming must match all three at every batch size.
    for cap in [64usize, 1_000, 1 << 22] {
        let streamed = emst_streaming(&pts, cap);
        assert!(
            streamed.stats.peak_live_pairs <= cap as u64,
            "cap={cap}: peak {} pairs",
            streamed.stats.peak_live_pairs
        );
        for (name, want) in [("naive", &naive), ("gfk", &gfk), ("memogfk", &memo)] {
            assert_eq!(
                edge_bits(&streamed.edges),
                edge_bits(&want.edges),
                "streaming vs {name} at cap={cap}"
            );
            assert_eq!(
                streamed.total_weight.to_bits(),
                want.total_weight.to_bits(),
                "weight vs {name} at cap={cap}"
            );
        }
    }
}

#[test]
fn streaming_hdbscan_identical_to_both_variants() {
    let pts: Vec<Point<3>> = seed_spreader(2_000, 52);
    let min_pts = 10;
    let memo = hdbscan_memogfk(&pts, min_pts);
    let gan = hdbscan_gantao(&pts, min_pts);
    for cap in [128usize, 1 << 20] {
        let s_comb = hdbscan_streaming(&pts, min_pts, cap);
        let s_std = hdbscan_gantao_streaming(&pts, min_pts, cap);
        assert_eq!(
            edge_bits(&s_comb.edges),
            edge_bits(&memo.edges),
            "combined cap={cap}"
        );
        assert_eq!(
            edge_bits(&s_std.edges),
            edge_bits(&gan.edges),
            "standard cap={cap}"
        );
        assert_eq!(s_comb.core_distances, memo.core_distances);
        assert_eq!(s_comb.total_weight.to_bits(), memo.total_weight.to_bits());
    }
}

#[test]
fn streaming_emst_identical_across_thread_counts() {
    let pts: Vec<Point<2>> = uniform_fill(2_500, 53);
    let cap = 512;
    let baseline = in_pool(1, || emst_streaming(&pts, cap));
    assert_eq!(baseline.edges.len(), pts.len() - 1);
    for threads in [2usize, 4, 8] {
        let run = in_pool(threads, || emst_streaming(&pts, cap));
        assert_eq!(
            edge_bits(&baseline.edges),
            edge_bits(&run.edges),
            "streaming EMST differs at {threads} threads"
        );
        assert_eq!(baseline.total_weight.to_bits(), run.total_weight.to_bits());
    }
}

#[test]
fn streaming_hdbscan_identical_across_thread_counts() {
    let pts: Vec<Point<2>> = seed_spreader(2_000, 54);
    let cap = 256;
    let baseline = in_pool(1, || hdbscan_streaming(&pts, 10, cap));
    for threads in [2usize, 4, 8] {
        let run = in_pool(threads, || hdbscan_streaming(&pts, 10, cap));
        assert_eq!(
            edge_bits(&baseline.edges),
            edge_bits(&run.edges),
            "streaming HDBSCAN differs at {threads} threads"
        );
        assert_eq!(baseline.core_distances, run.core_distances);
    }
}

#[test]
fn file_fed_pipeline_equals_generator_fed() {
    // Generator → chunked file → streamed ingestion → clustering must
    // equal running directly on the generator output: ingestion is
    // lossless (f64 bits round-trip through the chunked codec).
    let pts: Vec<Point<3>> = seed_spreader(1_500, 55);
    let path = tmp("pipeline.pcls");
    {
        let mut w = ChunkedWriter::<3, _>::create(&path, 700).unwrap();
        w.push_all(&pts).unwrap();
        assert_eq!(w.finish().unwrap(), pts.len() as u64);
    }
    let from_file = collect_points(&mut ChunkedReader::<3>::open(&path).unwrap()).unwrap();
    std::fs::remove_file(&path).ok();
    assert_eq!(from_file, pts, "chunked ingestion must be bit-lossless");

    let want = hdbscan_memogfk(&pts, 10);
    let got = hdbscan_streaming(&from_file, 10, 1_000);
    assert_eq!(edge_bits(&got.edges), edge_bits(&want.edges));
    assert_eq!(got.core_distances, want.core_distances);
}

fn small_points_2d(max_n: usize) -> impl Strategy<Value = Vec<Point<2>>> {
    prop::collection::vec((0i32..50, 0i32..50, 0u8..4), 0..max_n).prop_map(|raw| {
        raw.into_iter()
            .map(|(x, y, jitter)| {
                Point([
                    x as f64 + jitter as f64 * 0.5,
                    y as f64 - jitter as f64 * 0.25,
                ])
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Chunked round-trips are bit-lossless at every (n, chunk_len)
    /// combination, including n = 0, n = 1, and n not divisible by the
    /// chunk length.
    #[test]
    fn chunked_roundtrip_any_shape(
        pts in small_points_2d(120),
        chunk_len in 1usize..40,
    ) {
        let path = tmp(&format!("prop-{}-{chunk_len}.pcls", pts.len()));
        let mut w = ChunkedWriter::<2, _>::create(&path, chunk_len).unwrap();
        w.push_all(&pts).unwrap();
        prop_assert_eq!(w.finish().unwrap(), pts.len() as u64);
        let back = collect_points(&mut ChunkedReader::<2>::open(&path).unwrap()).unwrap();
        std::fs::remove_file(&path).ok();
        prop_assert_eq!(back, pts);
    }

    /// `PointSource`-fed HDBSCAN* (slice-chunked ingestion + streaming
    /// batches) equals the in-memory run, bit for bit.
    #[test]
    fn source_fed_hdbscan_equals_in_memory(
        pts in small_points_2d(90),
        chunk_len in 1usize..32,
        min_pts in 1usize..8,
        cap in 1usize..2_000,
    ) {
        let mut src = SliceSource::new(&pts, chunk_len);
        let ingested = collect_points(&mut src).unwrap();
        prop_assert_eq!(&ingested, &pts);
        let want = hdbscan_memogfk(&pts, min_pts);
        let got = hdbscan_streaming(&ingested, min_pts, cap);
        prop_assert_eq!(edge_bits(&got.edges), edge_bits(&want.edges));
        prop_assert_eq!(got.core_distances, want.core_distances);
        prop_assert_eq!(got.total_weight.to_bits(), want.total_weight.to_bits());
    }
}
