//! Cross-thread-count determinism of the full pipelines under the pooled
//! executor.
//!
//! The rayon shim's split trees are a function of input length and
//! granularity hints only — never of the worker count — and every consumer
//! of scheduling-dependent intermediate order (e.g. `Collector` output)
//! re-sorts by the strict `(w, u, v)` edge key. Consequence: running the
//! same input inside 1-, 2-, 4-, and 8-thread pools must produce
//! **bit-identical** MST weights, edge sets, core distances, and
//! dendrograms. These tests pin that contract for all three EMST methods
//! and both HDBSCAN\* variants, plus the parallel dendrogram built on top.

use parclust::{
    dendrogram_par, emst_gfk, emst_memogfk, emst_naive, hdbscan_gantao, hdbscan_memogfk,
    Dendrogram, Edge, Point,
};
use parclust_data::{seed_spreader, uniform_fill};

const THREADS: [usize; 4] = [1, 2, 4, 8];

fn in_pool<T: Send>(threads: usize, f: impl FnOnce() -> T + Send) -> T {
    rayon::ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .expect("pool")
        .install(f)
}

/// Bit-exact view of an edge list: weights compared by IEEE-754 bits, not
/// by `==`, so even sub-ulp scheduling differences would be caught.
fn edge_bits(edges: &[Edge]) -> Vec<(u64, u32, u32)> {
    edges.iter().map(|e| (e.w.to_bits(), e.u, e.v)).collect()
}

fn bits(xs: &[f64]) -> Vec<u64> {
    xs.iter().map(|x| x.to_bits()).collect()
}

/// Structural + bit-exact view of a dendrogram.
fn dendrogram_key(d: &Dendrogram) -> (Vec<u32>, Vec<u32>, Vec<u32>, Vec<u64>, Vec<u32>) {
    (
        d.left.clone(),
        d.right.clone(),
        d.parent.clone(),
        bits(&d.height),
        d.edge_u.clone(),
    )
}

fn assert_emst_method_deterministic<const D: usize>(
    pts: &[Point<D>],
    method: fn(&[Point<D>]) -> parclust::Emst,
    name: &str,
) {
    let baseline = in_pool(1, || method(pts));
    assert_eq!(baseline.edges.len(), pts.len() - 1, "{name}: not a tree");
    for threads in &THREADS[1..] {
        let run = in_pool(*threads, || method(pts));
        assert_eq!(
            edge_bits(&baseline.edges),
            edge_bits(&run.edges),
            "{name}: edge set differs at {threads} threads"
        );
        assert_eq!(
            baseline.total_weight.to_bits(),
            run.total_weight.to_bits(),
            "{name}: MST weight differs at {threads} threads"
        );
    }
}

#[test]
fn emst_naive_identical_across_thread_counts() {
    let pts: Vec<Point<2>> = uniform_fill(3_000, 11);
    assert_emst_method_deterministic(&pts, emst_naive, "EMST-Naive/2D");
}

#[test]
fn emst_gfk_identical_across_thread_counts() {
    let pts: Vec<Point<3>> = seed_spreader(4_000, 12);
    assert_emst_method_deterministic(&pts, emst_gfk, "EMST-GFK/3D");
}

#[test]
fn emst_memogfk_identical_across_thread_counts() {
    let pts: Vec<Point<3>> = seed_spreader(5_000, 13);
    assert_emst_method_deterministic(&pts, emst_memogfk, "EMST-MemoGFK/3D");
}

#[test]
fn emst_methods_agree_with_each_other() {
    // The three methods must compute the *same* MST (strict total edge
    // order makes it unique), each inside a multi-worker pool.
    let pts: Vec<Point<2>> = seed_spreader(2_500, 14);
    let naive = in_pool(4, || emst_naive(&pts));
    let gfk = in_pool(4, || emst_gfk(&pts));
    let memo = in_pool(4, || emst_memogfk(&pts));
    assert_eq!(edge_bits(&naive.edges), edge_bits(&gfk.edges));
    assert_eq!(edge_bits(&naive.edges), edge_bits(&memo.edges));
}

#[test]
fn hdbscan_memogfk_identical_across_thread_counts() {
    let pts: Vec<Point<2>> = seed_spreader(4_000, 15);
    let baseline = in_pool(1, || hdbscan_memogfk(&pts, 10));
    for threads in &THREADS[1..] {
        let run = in_pool(*threads, || hdbscan_memogfk(&pts, 10));
        assert_eq!(
            edge_bits(&baseline.edges),
            edge_bits(&run.edges),
            "HDBSCAN-MemoGFK: edges differ at {threads} threads"
        );
        assert_eq!(
            bits(&baseline.core_distances),
            bits(&run.core_distances),
            "HDBSCAN-MemoGFK: core distances differ at {threads} threads"
        );
        assert_eq!(baseline.total_weight.to_bits(), run.total_weight.to_bits());
    }
}

#[test]
fn hdbscan_gantao_identical_across_thread_counts() {
    let pts: Vec<Point<3>> = uniform_fill(3_000, 16);
    let baseline = in_pool(1, || hdbscan_gantao(&pts, 10));
    for threads in &THREADS[1..] {
        let run = in_pool(*threads, || hdbscan_gantao(&pts, 10));
        assert_eq!(
            edge_bits(&baseline.edges),
            edge_bits(&run.edges),
            "HDBSCAN-GanTao: edges differ at {threads} threads"
        );
        assert_eq!(bits(&baseline.core_distances), bits(&run.core_distances));
    }
}

#[test]
fn dendrogram_identical_across_thread_counts() {
    // Full pipeline: HDBSCAN* MST, then the parallel ordered dendrogram —
    // the component whose heavy/light scheduling is most irregular.
    let pts: Vec<Point<2>> = seed_spreader(4_000, 17);
    let baseline = in_pool(1, || {
        let mst = hdbscan_memogfk(&pts, 10);
        dendrogram_par(pts.len(), &mst.edges, 0)
    });
    for threads in &THREADS[1..] {
        let run = in_pool(*threads, || {
            let mst = hdbscan_memogfk(&pts, 10);
            dendrogram_par(pts.len(), &mst.edges, 0)
        });
        assert_eq!(
            dendrogram_key(&baseline),
            dendrogram_key(&run),
            "dendrogram differs at {threads} threads"
        );
    }
}

#[test]
fn emst_identical_under_forced_stealing_churn() {
    // Stealing stress: unrelated scope-spawned jobs keep the workers
    // unevenly busy while the pipeline runs, so join halves are routinely
    // executed by thieves rather than their submitting worker. Because
    // split trees (and `block_size`) depend only on input length and
    // granularity hints — never on which deque a job ran from — the result
    // must still be bit-identical to the single-threaded run.
    let pts: Vec<Point<2>> = seed_spreader(3_000, 19);
    let baseline = in_pool(1, || emst_memogfk(&pts));
    for threads in &THREADS[1..] {
        for round in 0..3u64 {
            let run = in_pool(*threads, || {
                rayon::scope(|s| {
                    // Churn: cheap but nonzero jobs, enough of them to
                    // outnumber the workers and keep the deques hot.
                    for i in 0..64 {
                        s.spawn(move |_| {
                            let mut acc = i as u64 + round;
                            for _ in 0..500 {
                                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(1);
                            }
                            assert_ne!(acc, u64::MAX); // keep the work alive
                        });
                    }
                    emst_memogfk(&pts)
                })
            });
            assert_eq!(
                edge_bits(&baseline.edges),
                edge_bits(&run.edges),
                "EMST-MemoGFK: edges differ under stealing churn at {threads} threads"
            );
            assert_eq!(baseline.total_weight.to_bits(), run.total_weight.to_bits());
        }
    }
}

#[test]
fn results_survive_pool_reuse() {
    // A long-lived pool must give the same answer on every install — no
    // state (thread indices, queue residue) may leak between runs.
    let pts: Vec<Point<2>> = seed_spreader(2_000, 18);
    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(4)
        .build()
        .expect("pool");
    let first = pool.install(|| emst_memogfk(&pts));
    for _ in 0..3 {
        let again = pool.install(|| emst_memogfk(&pts));
        assert_eq!(edge_bits(&first.edges), edge_bits(&again.edges));
    }
}
