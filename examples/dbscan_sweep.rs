//! The HDBSCAN* value proposition: every DBSCAN* clustering, one pass.
//!
//! ```sh
//! cargo run --release --example dbscan_sweep
//! ```
//!
//! The paper's introduction motivates HDBSCAN* by the practical pain of
//! DBSCAN parameter search: "many different values of ε need to be explored
//! in order to find high-quality clusters". This example builds the
//! hierarchy once and then extracts the DBSCAN* clustering for a whole
//! sweep of ε values in milliseconds each, tracing how clusters merge as ε
//! grows.

use parclust::{dbscan_star_labels, dendrogram_par, hdbscan, Point, NOISE};
use parclust_data::seed_spreader;

fn main() {
    let n = 80_000;
    let min_pts = 10;
    let points: Vec<Point<3>> = seed_spreader(n, 1234);
    println!("{n} seed-spreader points in 3D, minPts = {min_pts}");

    let t = std::time::Instant::now();
    let h = hdbscan(&points, min_pts);
    let dend = dendrogram_par(n, &h.edges, 0);
    let build = t.elapsed().as_secs_f64();
    println!("hierarchy built once in {build:.3}s\n");

    // Sweep ε across the range of observed mutual reachability distances.
    let mut ws: Vec<f64> = h.edges.iter().map(|e| e.w).collect();
    ws.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let quantile = |q: f64| ws[((ws.len() - 1) as f64 * q) as usize];

    println!(
        "{:>12} {:>10} {:>12} {:>14}",
        "eps", "clusters", "noise", "extract (ms)"
    );
    for q in [
        0.05, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 0.95, 0.99,
    ] {
        let eps = quantile(q);
        let t = std::time::Instant::now();
        let labels = dbscan_star_labels(&dend, &h.core_distances, eps);
        let ms = t.elapsed().as_secs_f64() * 1e3;
        let noise = labels.iter().filter(|&&l| l == NOISE).count();
        let clusters = labels
            .iter()
            .filter(|&&l| l != NOISE)
            .collect::<std::collections::HashSet<_>>()
            .len();
        println!("{eps:>12.4} {clusters:>10} {noise:>12} {ms:>14.2}");
    }
    println!(
        "\nevery row would have been a full DBSCAN run without the hierarchy \
         (~{build:.3}s each); the sweep reuses one MST + dendrogram instead"
    );
}
