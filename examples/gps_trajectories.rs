//! Clustering skewed GPS-trajectory data with HDBSCAN*.
//!
//! ```sh
//! cargo run --release --example gps_trajectories
//! ```
//!
//! The scenario behind the paper's GeoLife experiments: location traces are
//! *extremely* skewed — dense urban trajectories separated by huge empty
//! spans — which is exactly where density-based hierarchical clustering
//! shines and grid/partition methods struggle. This example builds one
//! HDBSCAN* hierarchy and extracts clusters at several density levels
//! without recomputing anything.

use parclust::{dbscan_star_labels, dendrogram_par, hdbscan, NOISE};
use parclust_data::gps_like;

fn summarize(labels: &[u32], what: &str) {
    let n_noise = labels.iter().filter(|&&l| l == NOISE).count();
    let max_label = labels
        .iter()
        .filter(|&&l| l != NOISE)
        .max()
        .map(|&l| l as usize + 1)
        .unwrap_or(0);
    let mut sizes = vec![0usize; max_label];
    for &l in labels {
        if l != NOISE {
            sizes[l as usize] += 1;
        }
    }
    sizes.sort_unstable_by(|a, b| b.cmp(a));
    let top: Vec<String> = sizes.iter().take(5).map(|s| s.to_string()).collect();
    println!(
        "{what}: {} clusters, {} noise points ({:.1}%), largest: [{}]",
        sizes.iter().filter(|&&s| s > 0).count(),
        n_noise,
        100.0 * n_noise as f64 / labels.len() as f64,
        top.join(", ")
    );
}

fn main() {
    let n = 100_000;
    let points = gps_like(n, 7);
    println!("{n} GPS-like 3D points (heavy-tailed trajectories around 8 metro areas)");

    let min_pts = 10;
    let t = std::time::Instant::now();
    let h = hdbscan(&points, min_pts);
    println!(
        "HDBSCAN* MST in {:.3}s (kd-tree {:.3}s, core distances {:.3}s, \
         wspd {:.3}s, kruskal {:.3}s)",
        t.elapsed().as_secs_f64(),
        h.stats.build_tree,
        h.stats.core_dist,
        h.stats.wspd,
        h.stats.kruskal,
    );

    let t = std::time::Instant::now();
    let dend = dendrogram_par(n, &h.edges, 0);
    println!("ordered dendrogram in {:.3}s", t.elapsed().as_secs_f64());

    // One hierarchy, many density levels: ε is in the data's coordinate
    // units (degrees-ish for the surrogate).
    for eps in [0.005, 0.05, 0.5] {
        let labels = dbscan_star_labels(&dend, &h.core_distances, eps);
        summarize(&labels, &format!("DBSCAN* at eps={eps}"));
    }
}
