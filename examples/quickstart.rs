//! Quickstart: EMST and HDBSCAN* on a small synthetic data set.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```
//!
//! Demonstrates the three core entry points — `emst` (minimum spanning
//! tree), `hdbscan` (mutual-reachability MST + core distances), and the
//! ordered dendrogram with its reachability plot.

use parclust::{dendrogram_par, emst, hdbscan, reachability_plot, Point};
use parclust_data::seed_spreader;

fn main() {
    // 50k clustered points in 2D (Gan–Tao seed-spreader distribution).
    let n = 50_000;
    let points: Vec<Point<2>> = seed_spreader(n, 42);
    println!("generated {n} seed-spreader points in 2D");

    // --- Euclidean minimum spanning tree -------------------------------
    let t = std::time::Instant::now();
    let mst = emst(&points);
    println!(
        "EMST: {} edges, total weight {:.2}, in {:.3}s \
         (tree build {:.3}s, wspd {:.3}s, kruskal {:.3}s, {} rounds)",
        mst.edges.len(),
        mst.total_weight,
        t.elapsed().as_secs_f64(),
        mst.stats.build_tree,
        mst.stats.wspd,
        mst.stats.kruskal,
        mst.stats.rounds,
    );

    // --- HDBSCAN* hierarchy --------------------------------------------
    let min_pts = 10;
    let t = std::time::Instant::now();
    let h = hdbscan(&points, min_pts);
    println!(
        "HDBSCAN* (minPts={min_pts}): MST weight {:.2}, {} BCCP* calls, \
         {} pairs materialized, in {:.3}s",
        h.total_weight,
        h.stats.bccp_calls,
        h.stats.pairs_materialized,
        t.elapsed().as_secs_f64(),
    );

    // --- Ordered dendrogram + reachability plot ------------------------
    let t = std::time::Instant::now();
    let dend = dendrogram_par(n, &h.edges, 0);
    let (order, reach) = reachability_plot(&dend);
    println!(
        "ordered dendrogram built in {:.3}s; root merge height {:.3}",
        t.elapsed().as_secs_f64(),
        dend.node_height(dend.root),
    );

    // The reachability plot's "valleys" are clusters: report the deepest
    // few by looking at long runs under the median reachability value.
    let mut finite: Vec<f64> = reach.iter().copied().filter(|r| r.is_finite()).collect();
    finite.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let median = finite[finite.len() / 2];
    let mut valleys = 0;
    let mut in_valley = false;
    for &r in &reach {
        let below = r < 0.5 * median;
        if below && !in_valley {
            valleys += 1;
        }
        in_valley = below;
    }
    println!(
        "reachability plot: first point {}, median bar {:.3}, ~{} deep valleys (clusters)",
        order[0], median, valleys
    );
}
