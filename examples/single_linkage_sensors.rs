//! Single-linkage clustering of multivariate sensor data via the EMST.
//!
//! ```sh
//! cargo run --release --example single_linkage_sensors
//! ```
//!
//! Gower and Ross (1969): single-linkage clustering is exactly a cut of the
//! EMST's dendrogram. This example clusters 7-dimensional sensor readings
//! (a Household-data surrogate): EMST → ordered dendrogram → cuts into k
//! clusters, reporting the merge heights at which the clustering changes.

use parclust::{dendrogram_par, emst, single_linkage_k, Point};
use parclust_data::sensor_like;

fn main() {
    let n = 60_000;
    let true_clusters = 6;
    let points: Vec<Point<7>> = sensor_like(n, 3, true_clusters);
    println!("{n} sensor-like points in 7D from {true_clusters} latent clusters");

    let t = std::time::Instant::now();
    let mst = emst(&points);
    println!(
        "EMST in {:.3}s ({} MemoGFK rounds, {} BCCP calls, peak {} pairs live)",
        t.elapsed().as_secs_f64(),
        mst.stats.rounds,
        mst.stats.bccp_calls,
        mst.stats.peak_live_pairs,
    );

    let dend = dendrogram_par(n, &mst.edges, 0);

    // The top merge heights tell us where the natural cluster count lies:
    // a large gap between consecutive heights marks a good cut.
    let mut heights = dend.height.clone();
    heights.sort_by(|a, b| b.partial_cmp(a).unwrap());
    println!("top merge heights: {:?}", &heights[..8.min(heights.len())]);
    let mut best_k = 2;
    let mut best_gap = 0.0;
    for k in 2..=12.min(heights.len()) {
        let gap = heights[k - 2] - heights[k - 1];
        if gap > best_gap {
            best_gap = gap;
            best_k = k;
        }
    }
    println!("largest height gap suggests k = {best_k}");

    for k in [2, best_k, true_clusters] {
        let labels = single_linkage_k(&dend, k);
        let mut sizes = vec![0usize; k];
        for &l in &labels {
            sizes[l as usize] += 1;
        }
        sizes.sort_unstable_by(|a, b| b.cmp(a));
        println!("k={k}: cluster sizes {sizes:?}");
    }
}
