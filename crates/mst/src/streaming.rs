//! Streaming MST maintenance over batched candidate edges.
//!
//! [`StreamingForest`] is the sink side of the bounded-memory pipeline: it
//! holds only a minimum spanning forest (≤ `n - 1` edges) and *absorbs*
//! candidate-edge batches by merging each batch with the current forest and
//! re-running one Kruskal pass — the classic semi-streaming MST
//! sparsification. Because every edge weight in this workspace is compared
//! by the strict total key `(w, u, v)`, the MST of any edge set is unique,
//! and the sparsification identity `MST(A ∪ B) = MST(MST(A) ∪ B)` holds
//! *exactly*: the final forest is bit-identical to a single Kruskal over
//! all candidate edges, no matter how the stream was batched or ordered.
//!
//! The forest also maintains per-component maximum edge weights, which lets
//! upstream producers skip whole BCCP computations via the cycle property:
//! if both endpoints of a candidate already sit in one component and the
//! candidate's weight lower bound exceeds that component's maximum forest
//! edge, the candidate closes a cycle on which it is strictly heaviest and
//! can never enter the MST.
//!
//! The batching-invariance guarantee is also what makes the dynamic-model
//! merge path (`crates/dyn`) sound: after an insert/delete batch it
//! restreams the *new* tree's WSPD pairs through a fresh forest rather
//! than patching the old forest's edges, because MST edge *sets* under
//! tied weights depend on which pairs a particular tree decomposition
//! emitted — only the streamed-vs-monolithic identity above is
//! decomposition-independent, carried core distances are not edges.

use parclust_primitives::unionfind::UnionFind;

use crate::{kruskal_batch, Edge};

/// A minimum spanning forest absorbing candidate edges in batches.
pub struct StreamingForest {
    n: usize,
    /// Current forest edges in ascending canonical `(w, u, v)` order.
    edges: Vec<Edge>,
    /// Connectivity of the current forest. Rebuilt per absorb; safe for
    /// concurrent `find_shared` reads between absorbs.
    uf: UnionFind,
    /// `comp_max[r]` = max edge weight in the component rooted at `r`
    /// (`NEG_INFINITY` for singletons). Valid at component roots only.
    comp_max: Vec<f64>,
    batches: u64,
}

impl StreamingForest {
    pub fn new(n: usize) -> Self {
        StreamingForest {
            n,
            edges: Vec::new(),
            uf: UnionFind::new(n),
            comp_max: vec![f64::NEG_INFINITY; n],
            batches: 0,
        }
    }

    /// Vertex count.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Current forest edges, ascending by the canonical key.
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    pub fn len(&self) -> usize {
        self.edges.len()
    }

    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// Number of batches absorbed so far.
    pub fn batches(&self) -> u64 {
        self.batches
    }

    /// Whether the forest currently spans all `n` vertices.
    pub fn is_spanning(&self) -> bool {
        self.n <= 1 || self.uf.components() == 1
    }

    /// Connectivity of the current forest (read-only between absorbs).
    pub fn uf(&self) -> &UnionFind {
        &self.uf
    }

    /// Maximum forest-edge weight within the component rooted at `root`
    /// (`NEG_INFINITY` if the component is a singleton). `root` must be a
    /// current `find_shared` root.
    #[inline]
    pub fn component_max_weight(&self, root: u32) -> f64 {
        self.comp_max[root as usize]
    }

    /// Cycle-property skip test for a candidate whose endpoints are known
    /// to lie in the single component rooted at `root`: a weight lower
    /// bound strictly above that component's max forest edge proves the
    /// candidate is the unique heaviest edge on its cycle.
    #[inline]
    pub fn can_skip_within(&self, root: u32, weight_lower_bound: f64) -> bool {
        weight_lower_bound > self.comp_max[root as usize]
    }

    /// Merge a batch of candidate edges into the forest (one Kruskal pass
    /// over `forest ∪ batch`). The batch is consumed.
    pub fn absorb(&mut self, mut batch: Vec<Edge>) {
        self.batches += 1;
        if batch.is_empty() {
            return;
        }
        let _span = parclust_obs::span!("mst.absorb", edges = batch.len());
        batch.extend_from_slice(&self.edges);
        let mut uf = UnionFind::new(self.n);
        self.edges.clear();
        kruskal_batch(&mut batch, &mut uf, &mut self.edges);
        self.uf = uf;
        for m in self.comp_max.iter_mut() {
            *m = f64::NEG_INFINITY;
        }
        for e in &self.edges {
            let r = self.uf.find_shared(e.u) as usize;
            if e.w > self.comp_max[r] {
                self.comp_max[r] = e.w;
            }
        }
    }

    /// Final forest edges, ascending by the canonical key.
    pub fn into_edges(self) -> Vec<Edge> {
        self.edges
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{kruskal, total_weight};
    use rand::prelude::*;

    fn random_edges(n: usize, m: usize, seed: u64) -> Vec<Edge> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut edges: Vec<Edge> = (0..m)
            .map(|_| {
                let u = rng.gen_range(0..n as u32);
                let mut v = rng.gen_range(0..n as u32);
                while v == u {
                    v = rng.gen_range(0..n as u32);
                }
                Edge::new(u, v, rng.gen_range(0.0..100.0))
            })
            .collect();
        let mut perm: Vec<u32> = (0..n as u32).collect();
        perm.shuffle(&mut rng);
        for w in perm.windows(2) {
            edges.push(Edge::new(w[0], w[1], rng.gen_range(0.0..100.0)));
        }
        edges
    }

    fn edge_bits(edges: &[Edge]) -> Vec<(u64, u32, u32)> {
        edges.iter().map(|e| (e.w.to_bits(), e.u, e.v)).collect()
    }

    #[test]
    fn sparsified_batches_equal_monolithic_kruskal() {
        for seed in 0..4 {
            let n = 300;
            let edges = random_edges(n, 2500, seed);
            let want = kruskal(n, &edges);
            // Arbitrary (non-weight-ordered) batching of varying size.
            for batch_len in [1usize, 17, 256, 10_000] {
                let mut forest = StreamingForest::new(n);
                for chunk in edges.chunks(batch_len) {
                    forest.absorb(chunk.to_vec());
                }
                assert_eq!(
                    edge_bits(&forest.into_edges()),
                    edge_bits(&want),
                    "seed {seed} batch {batch_len}"
                );
            }
        }
    }

    #[test]
    fn batch_order_is_irrelevant() {
        let n = 200;
        let edges = random_edges(n, 1500, 9);
        let want = kruskal(n, &edges);
        let mut shuffled = edges.clone();
        shuffled.shuffle(&mut StdRng::seed_from_u64(1));
        let mut forest = StreamingForest::new(n);
        for chunk in shuffled.chunks(97) {
            forest.absorb(chunk.to_vec());
        }
        assert_eq!(edge_bits(&forest.into_edges()), edge_bits(&want));
    }

    #[test]
    fn spanning_flag_and_component_max() {
        let mut forest = StreamingForest::new(4);
        assert!(!forest.is_spanning());
        forest.absorb(vec![Edge::new(0, 1, 5.0), Edge::new(2, 3, 2.0)]);
        assert!(!forest.is_spanning());
        let r0 = forest.uf().find_shared(0);
        let r2 = forest.uf().find_shared(2);
        assert_eq!(forest.component_max_weight(r0), 5.0);
        assert_eq!(forest.component_max_weight(r2), 2.0);
        // Cycle-property skip: a (0,1)-component candidate with lower
        // bound above 5 can never enter the MST; one at 4 might.
        assert!(forest.can_skip_within(r0, 5.5));
        assert!(!forest.can_skip_within(r0, 4.0));
        forest.absorb(vec![Edge::new(1, 2, 7.0)]);
        assert!(forest.is_spanning());
        let root = forest.uf().find_shared(0);
        assert_eq!(forest.component_max_weight(root), 7.0);
    }

    #[test]
    fn skipped_candidates_never_change_the_mst() {
        // Adversarial check of the cycle-property prune: absorb a stream
        // while *separately* collecting every candidate the prune would
        // have skipped, then verify the full Kruskal (skipped edges
        // included) matches the streamed forest.
        let n = 150;
        let edges = random_edges(n, 1200, 21);
        let mut forest = StreamingForest::new(n);
        let mut fed: Vec<Edge> = Vec::new();
        for chunk in edges.chunks(61) {
            let mut kept = Vec::new();
            for &e in chunk {
                let (ru, rv) = (forest.uf().find_shared(e.u), forest.uf().find_shared(e.v));
                if ru == rv && forest.can_skip_within(ru, e.w) {
                    // Skipped — but still part of the logical edge set.
                    fed.push(e);
                    continue;
                }
                kept.push(e);
                fed.push(e);
            }
            forest.absorb(kept);
        }
        let want = kruskal(n, &fed);
        assert_eq!(edge_bits(forest.edges()), edge_bits(&want));
    }

    #[test]
    fn singleton_and_empty_inputs() {
        let mut forest = StreamingForest::new(0);
        assert!(forest.is_spanning());
        forest.absorb(Vec::new());
        assert!(forest.into_edges().is_empty());

        let mut forest = StreamingForest::new(1);
        assert!(forest.is_spanning());
        forest.absorb(Vec::new());
        assert_eq!(forest.batches(), 1);
        assert!(forest.is_empty());
    }

    #[test]
    fn total_weight_matches_oracle() {
        let n = 120;
        let edges = random_edges(n, 900, 33);
        let mut forest = StreamingForest::new(n);
        for chunk in edges.chunks(50) {
            forest.absorb(chunk.to_vec());
        }
        let got = total_weight(forest.edges());
        let want = total_weight(&kruskal(n, &edges));
        assert!((got - want).abs() < 1e-9);
    }
}
