//! Minimum spanning trees over explicit edge lists.
//!
//! The GFK/MemoGFK drivers (Algorithms 2 and 3) feed *batches* of edges to
//! Kruskal's algorithm, with a union-find structure shared across batches
//! and the invariant that no edge in a later batch is lighter than any edge
//! in an earlier one. [`kruskal_batch`] implements one such round: the batch
//! is sorted in parallel and swept into the shared union-find (the union
//! sweep is `O(batch · α)` and sequential, as in PBBS-style parallel
//! Kruskal implementations — the sort dominates).
//!
//! [`kruskal`], [`boruvka`], and [`prim_dense`] are standalone MST
//! algorithms used as baselines and test oracles.

pub mod streaming;

pub use streaming::StreamingForest;

use parclust_primitives::unionfind::UnionFind;
use rayon::prelude::*;

/// A weighted undirected edge. Ordering is by `(w, u, v)` — the strict total
/// order that makes every MST and dendrogram in this workspace
/// deterministic.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Edge {
    pub u: u32,
    pub v: u32,
    pub w: f64,
}

impl Edge {
    pub fn new(u: u32, v: u32, w: f64) -> Self {
        debug_assert!(!w.is_nan(), "edge weights must not be NaN");
        // Canonical endpoint order.
        if u <= v {
            Edge { u, v, w }
        } else {
            Edge { u: v, v: u, w }
        }
    }

    #[inline]
    pub fn key(&self) -> (f64, u32, u32) {
        (self.w, self.u, self.v)
    }
}

/// Sort edges by the canonical `(w, u, v)` key, in parallel.
pub fn sort_edges(edges: &mut [Edge]) {
    edges.par_sort_unstable_by(|a, b| a.key().partial_cmp(&b.key()).expect("NaN edge weight"));
}

/// One Kruskal round over `batch`, merging into the shared `uf` and
/// appending accepted edges to `out`. The batch is consumed (sorted
/// in place first).
pub fn kruskal_batch(batch: &mut Vec<Edge>, uf: &mut UnionFind, out: &mut Vec<Edge>) {
    sort_edges(batch);
    for e in batch.drain(..) {
        if uf.union(e.u, e.v) {
            out.push(e);
        }
    }
}

/// Kruskal's algorithm from scratch: returns the MST (or minimum spanning
/// forest) edges of a graph on `n` vertices, sorted by the canonical key.
pub fn kruskal(n: usize, edges: &[Edge]) -> Vec<Edge> {
    let mut uf = UnionFind::new(n);
    let mut batch = edges.to_vec();
    let mut out = Vec::with_capacity(n.saturating_sub(1));
    kruskal_batch(&mut batch, &mut uf, &mut out);
    out
}

/// Boruvka's algorithm over an explicit edge list — an independent MST
/// implementation used to cross-check Kruskal in tests and benchmarks.
///
/// Each round finds, in parallel, the lightest incident edge of every
/// component (by the canonical key, which makes the choice unique and the
/// result a well-defined MST even with duplicate weights), then contracts.
pub fn boruvka(n: usize, edges: &[Edge]) -> Vec<Edge> {
    let mut uf = UnionFind::new(n);
    let mut out: Vec<Edge> = Vec::with_capacity(n.saturating_sub(1));
    let mut alive: Vec<Edge> = edges.to_vec();
    while !alive.is_empty() && uf.components() > 1 {
        // Lightest outgoing edge per component root.
        let mut best: Vec<Option<Edge>> = vec![None; n];
        for &e in &alive {
            let (ru, rv) = (uf.find(e.u), uf.find(e.v));
            if ru == rv {
                continue;
            }
            for r in [ru, rv] {
                match &best[r as usize] {
                    Some(b) if b.key() <= e.key() => {}
                    _ => best[r as usize] = Some(e),
                }
            }
        }
        let mut progressed = false;
        for e in best.into_iter().flatten() {
            if uf.union(e.u, e.v) {
                out.push(e);
                progressed = true;
            }
        }
        if !progressed {
            break; // only intra-component edges remain
        }
        // Drop edges that are now internal to a component.
        alive = alive
            .into_par_iter()
            .filter(|e| !uf.same_shared(e.u, e.v))
            .collect();
    }
    sort_edges(&mut out);
    out
}

/// Prim's algorithm on an implicit complete graph with weights given by a
/// closure — the `O(n^2)` oracle for EMST and HDBSCAN\* MST tests, and the
/// reference for reachability-plot semantics (Section 2.1).
///
/// Returns the MST edges *in visit order* together with the attachment
/// weight of each newly visited vertex — exactly the reachability plot when
/// `weight` is the mutual reachability distance.
pub fn prim_dense<F>(n: usize, start: u32, weight: F) -> PrimResult
where
    F: Fn(u32, u32) -> f64,
{
    assert!(n >= 1);
    let mut in_tree = vec![false; n];
    let mut best_w = vec![f64::INFINITY; n];
    let mut best_from = vec![u32::MAX; n];
    let mut order = Vec::with_capacity(n);
    let mut edges = Vec::with_capacity(n - 1);
    let mut reach = Vec::with_capacity(n);

    let mut cur = start;
    in_tree[cur as usize] = true;
    order.push(cur);
    reach.push(f64::INFINITY);
    for _ in 1..n {
        // Relax edges out of `cur`.
        for v in 0..n as u32 {
            if !in_tree[v as usize] {
                let w = weight(cur, v);
                // Tie-break on (w, from, v) for a unique MST.
                if w < best_w[v as usize]
                    || (w == best_w[v as usize] && cur < best_from[v as usize])
                {
                    best_w[v as usize] = w;
                    best_from[v as usize] = cur;
                }
            }
        }
        // Pick the lightest attachment.
        let mut pick = u32::MAX;
        let mut pick_key = (f64::INFINITY, u32::MAX, u32::MAX);
        for v in 0..n as u32 {
            if !in_tree[v as usize] {
                let key = (best_w[v as usize], best_from[v as usize], v);
                if key < pick_key {
                    pick_key = key;
                    pick = v;
                }
            }
        }
        let v = pick;
        in_tree[v as usize] = true;
        order.push(v);
        reach.push(best_w[v as usize]);
        edges.push(Edge::new(best_from[v as usize], v, best_w[v as usize]));
        cur = v;
    }
    let total = edges.iter().map(|e| e.w).sum();
    PrimResult {
        edges,
        order,
        reachability: reach,
        total_weight: total,
    }
}

/// Output of [`prim_dense`].
pub struct PrimResult {
    /// MST edges in the order vertices were attached.
    pub edges: Vec<Edge>,
    /// Vertex visit order (the OPTICS ordering when run on the HDBSCAN\*
    /// MST).
    pub order: Vec<u32>,
    /// Attachment weight per visited vertex (`∞` for the start) — the
    /// reachability plot.
    pub reachability: Vec<f64>,
    pub total_weight: f64,
}

/// Total weight helper.
pub fn total_weight(edges: &[Edge]) -> f64 {
    edges.iter().map(|e| e.w).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::prelude::*;

    fn random_graph(n: usize, m: usize, seed: u64) -> Vec<Edge> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut edges: Vec<Edge> = (0..m)
            .map(|_| {
                let u = rng.gen_range(0..n as u32);
                let mut v = rng.gen_range(0..n as u32);
                while v == u {
                    v = rng.gen_range(0..n as u32);
                }
                Edge::new(u, v, rng.gen_range(0.0..100.0))
            })
            .collect();
        // Ensure connectivity with a random spanning path.
        let mut perm: Vec<u32> = (0..n as u32).collect();
        perm.shuffle(&mut rng);
        for w in perm.windows(2) {
            edges.push(Edge::new(w[0], w[1], rng.gen_range(0.0..100.0)));
        }
        edges
    }

    #[test]
    fn edge_canonical_order() {
        let e = Edge::new(5, 2, 1.0);
        assert_eq!((e.u, e.v), (2, 5));
    }

    #[test]
    fn kruskal_tiny_triangle() {
        let edges = vec![
            Edge::new(0, 1, 1.0),
            Edge::new(1, 2, 2.0),
            Edge::new(0, 2, 3.0),
        ];
        let mst = kruskal(3, &edges);
        assert_eq!(mst.len(), 2);
        assert_eq!(total_weight(&mst), 3.0);
    }

    #[test]
    fn kruskal_matches_boruvka_random() {
        for seed in 0..5 {
            let n = 300;
            let edges = random_graph(n, 2000, seed);
            let k = kruskal(n, &edges);
            let b = boruvka(n, &edges);
            assert_eq!(k.len(), n - 1);
            assert_eq!(b.len(), n - 1);
            assert!(
                (total_weight(&k) - total_weight(&b)).abs() < 1e-9,
                "seed {seed}: kruskal {} vs boruvka {}",
                total_weight(&k),
                total_weight(&b)
            );
        }
    }

    #[test]
    fn kruskal_matches_prim_on_complete_graph() {
        let n = 60;
        let mut rng = StdRng::seed_from_u64(77);
        let coords: Vec<(f64, f64)> = (0..n).map(|_| (rng.gen(), rng.gen())).collect();
        let weight = |u: u32, v: u32| {
            let (a, b) = (coords[u as usize], coords[v as usize]);
            ((a.0 - b.0).powi(2) + (a.1 - b.1).powi(2)).sqrt()
        };
        let mut edges = Vec::new();
        for u in 0..n as u32 {
            for v in (u + 1)..n as u32 {
                edges.push(Edge::new(u, v, weight(u, v)));
            }
        }
        let k = kruskal(n, &edges);
        let p = prim_dense(n, 0, weight);
        assert!((total_weight(&k) - p.total_weight).abs() < 1e-9);
    }

    #[test]
    fn batched_kruskal_equals_monolithic() {
        let n = 500;
        let edges = random_graph(n, 4000, 9);
        let want = kruskal(n, &edges);

        // Feed the same edges in weight-ordered batches of varying size.
        let mut sorted = edges.clone();
        sort_edges(&mut sorted);
        let mut uf = UnionFind::new(n);
        let mut out = Vec::new();
        let mut i = 0;
        let mut batch_len = 1;
        while i < sorted.len() {
            let hi = (i + batch_len).min(sorted.len());
            let mut batch = sorted[i..hi].to_vec();
            kruskal_batch(&mut batch, &mut uf, &mut out);
            i = hi;
            batch_len *= 2;
        }
        assert_eq!(out.len(), want.len());
        assert!((total_weight(&out) - total_weight(&want)).abs() < 1e-9);
    }

    #[test]
    fn forest_on_disconnected_graph() {
        let edges = vec![Edge::new(0, 1, 1.0), Edge::new(2, 3, 2.0)];
        let mst = kruskal(5, &edges);
        assert_eq!(mst.len(), 2, "forest spans the two non-trivial components");
    }

    #[test]
    fn prim_visit_order_is_greedy() {
        // Path weights force the visit order 0,1,2,3.
        let coords: [f64; 4] = [0.0, 1.0, 2.1, 3.3];
        let weight = |u: u32, v: u32| (coords[u as usize] - coords[v as usize]).abs();
        let p = prim_dense(4, 0, weight);
        assert_eq!(p.order, vec![0, 1, 2, 3]);
        assert_eq!(p.reachability[0], f64::INFINITY);
        assert!((p.reachability[1] - 1.0).abs() < 1e-12);
        assert!((p.reachability[2] - 1.1).abs() < 1e-12);
    }

    #[test]
    fn duplicate_weights_still_spanning() {
        let n = 100;
        let mut edges = Vec::new();
        for u in 0..n as u32 {
            for v in (u + 1)..(u + 4).min(n as u32) {
                edges.push(Edge::new(u, v, 1.0)); // all weights equal
            }
        }
        let mst = kruskal(n, &edges);
        assert_eq!(mst.len(), n - 1);
        let b = boruvka(n, &edges);
        assert_eq!(b.len(), n - 1);
    }
}
