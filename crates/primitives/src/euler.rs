//! Euler tours of trees and tree rooting.
//!
//! The Euler tour of a tree is a directed circuit traversing each edge once
//! in each direction (Section 2.2). The dendrogram algorithm of Section 4
//! uses it to compute the unweighted *vertex distances* from the starting
//! vertex `s`: each arc is labeled `+1` going down and `-1` going up, and
//! list ranking over the tour yields the depths. We provide both the Euler
//! tour pipeline and a sequential BFS fallback used for small inputs (the
//! paper's own implementation makes the same simplification).

use rayon::prelude::*;

use crate::listrank::{list_rank, NIL};
use crate::SEQ_CUTOFF;

/// Euler tour of a tree on `n` vertices with `n-1` undirected edges.
///
/// Arc `2e` is `u -> v` and arc `2e+1` is `v -> u` for input edge
/// `e = (u, v)`. `next[a]` is the successor arc in the Euler circuit.
pub struct EulerTour {
    /// Successor arc of each arc in the circuit.
    pub next: Vec<u32>,
    /// An arbitrary outgoing arc per vertex (`NIL` for isolated vertices).
    pub first_out: Vec<u32>,
    /// Arc endpoints `(source, target)`.
    pub arcs: Vec<(u32, u32)>,
}

/// Build an Euler tour. `edges` must form a forest; each tree yields its own
/// circuit.
pub fn euler_tour(n: usize, edges: &[(u32, u32)]) -> EulerTour {
    let m = edges.len();
    let num_arcs = 2 * m;

    // Arc list: arc 2e = (u, v), arc 2e+1 = (v, u).
    let mut arcs: Vec<(u32, u32)> = Vec::with_capacity(num_arcs);
    for &(u, v) in edges {
        arcs.push((u, v));
        arcs.push((v, u));
    }

    // Group arcs by source via counting sort (deterministic order).
    let mut deg = vec![0u32; n];
    for &(u, _) in &arcs {
        deg[u as usize] += 1;
    }
    let mut offset = vec![0u32; n + 1];
    for i in 0..n {
        offset[i + 1] = offset[i] + deg[i];
    }
    let mut slot = offset[..n].to_vec();
    let mut by_source = vec![0u32; num_arcs]; // arc ids grouped by source
    let mut pos_in_list = vec![0u32; num_arcs]; // position of each arc within its source group
    for (a, &(u, _)) in arcs.iter().enumerate() {
        let p = slot[u as usize];
        by_source[p as usize] = a as u32;
        pos_in_list[a] = p - offset[u as usize];
        slot[u as usize] += 1;
    }

    // next(a) for a = (u, v): the arc following twin(a) = (v, u) in v's
    // cyclic adjacency order.
    let next: Vec<u32> = (0..num_arcs)
        .into_par_iter()
        .map(|a| {
            let twin = (a ^ 1) as u32;
            let v = arcs[a].1;
            let d = deg[v as usize];
            let p = pos_in_list[twin as usize];
            let succ = (p + 1) % d;
            by_source[(offset[v as usize] + succ) as usize]
        })
        .collect();

    let first_out: Vec<u32> = (0..n)
        .map(|v| {
            if deg[v] == 0 {
                NIL
            } else {
                by_source[offset[v] as usize]
            }
        })
        .collect();

    EulerTour {
        next,
        first_out,
        arcs,
    }
}

/// Unweighted distance of every vertex from `root` in the tree given by
/// `edges`. Parallel Euler-tour + list-ranking pipeline above the grain
/// size; sequential BFS below it.
pub fn tree_distances(n: usize, edges: &[(u32, u32)], root: u32) -> Vec<u32> {
    assert!(n == 0 || edges.len() + 1 == n, "edges must form a tree");
    if n < 4 * SEQ_CUTOFF {
        return bfs_distances(n, edges, root);
    }
    let tour = euler_tour(n, edges);
    let num_arcs = tour.next.len();

    // Root the circuit at `root`: cut the arc pointing back into the first
    // outgoing arc of the root.
    let start = tour.first_out[root as usize];
    assert_ne!(start, NIL, "root has no incident edge in a tree with n > 1");
    let mut prev = vec![NIL; num_arcs];
    for (a, &nx) in tour.next.iter().enumerate() {
        prev[nx as usize] = a as u32;
    }
    let mut next = tour.next.clone();
    next[prev[start as usize] as usize] = NIL;

    // Pass 1: arc order indices. Suffix counts of 1s give position-from-end.
    let ones = vec![1i64; num_arcs];
    let suffix_counts = list_rank(&next, &ones);
    // index(a) = num_arcs - suffix(a): 0-based position in the rooted tour.
    // Down arc = first traversal of its edge.
    let is_down: Vec<bool> = (0..num_arcs)
        .into_par_iter()
        .map(|a| suffix_counts[a] > suffix_counts[a ^ 1])
        .collect();

    // Pass 2: ±1 suffix sums; depth(v) for down arc a=(u,v) is the inclusive
    // prefix at a, i.e. value(a) - suffix_after(a) = 1 - (suffix(a) - 1)
    // ... computed directly as value(a) - (suffix(a) - value(a)) with total 0.
    let pm: Vec<i64> = is_down
        .par_iter()
        .map(|&d| if d { 1 } else { -1 })
        .collect();
    let suffix_pm = list_rank(&next, &pm);

    let mut dist = vec![0u32; n];
    let dist_ptr = crate::SendPtr(dist.as_mut_ptr());
    (0..num_arcs).into_par_iter().for_each(|a| {
        if is_down[a] {
            let (_, v) = tour.arcs[a];
            // Inclusive prefix = total(=0) - suffix(a) + value(a) = 1 - suffix.
            let depth = 1 - suffix_pm[a];
            debug_assert!(depth >= 1);
            // SAFETY: each vertex v != root has exactly one down arc.
            unsafe { dist_ptr.write(v as usize, depth as u32) };
        }
    });
    dist[root as usize] = 0;
    dist
}

/// Sequential BFS distances (reference implementation and small-input path).
pub fn bfs_distances(n: usize, edges: &[(u32, u32)], root: u32) -> Vec<u32> {
    if n == 0 {
        return Vec::new();
    }
    // CSR adjacency.
    let mut deg = vec![0u32; n];
    for &(u, v) in edges {
        deg[u as usize] += 1;
        deg[v as usize] += 1;
    }
    let mut offset = vec![0u32; n + 1];
    for i in 0..n {
        offset[i + 1] = offset[i] + deg[i];
    }
    let mut slot = offset[..n].to_vec();
    let mut adj = vec![0u32; 2 * edges.len()];
    for &(u, v) in edges {
        adj[slot[u as usize] as usize] = v;
        slot[u as usize] += 1;
        adj[slot[v as usize] as usize] = u;
        slot[v as usize] += 1;
    }
    let mut dist = vec![u32::MAX; n];
    let mut queue = std::collections::VecDeque::new();
    dist[root as usize] = 0;
    queue.push_back(root);
    while let Some(u) = queue.pop_front() {
        let du = dist[u as usize];
        for &v in &adj[offset[u as usize] as usize..offset[u as usize + 1] as usize] {
            if dist[v as usize] == u32::MAX {
                dist[v as usize] = du + 1;
                queue.push_back(v);
            }
        }
    }
    dist
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::prelude::*;

    fn random_tree(n: usize, seed: u64) -> Vec<(u32, u32)> {
        // Random attachment tree.
        let mut rng = StdRng::seed_from_u64(seed);
        (1..n as u32).map(|v| (rng.gen_range(0..v), v)).collect()
    }

    #[test]
    fn euler_tour_is_a_circuit() {
        let edges = random_tree(100, 1);
        let tour = euler_tour(100, &edges);
        let m = tour.next.len();
        // Following next from arc 0 must visit all 2(n-1) arcs exactly once.
        let mut seen = vec![false; m];
        let mut a = 0u32;
        for _ in 0..m {
            assert!(!seen[a as usize], "arc revisited before circuit closed");
            seen[a as usize] = true;
            a = tour.next[a as usize];
        }
        assert_eq!(a, 0, "tour must be a closed circuit");
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn distances_path_graph() {
        let n = 10;
        let edges: Vec<(u32, u32)> = (0..n as u32 - 1).map(|i| (i, i + 1)).collect();
        let d = bfs_distances(n, &edges, 0);
        assert_eq!(d, (0..n as u32).collect::<Vec<_>>());
        let d3 = bfs_distances(n, &edges, 3);
        assert_eq!(d3[0], 3);
        assert_eq!(d3[9], 6);
    }

    #[test]
    fn euler_distances_match_bfs_large() {
        let n = 70_000; // above the parallel threshold
        let edges = random_tree(n, 5);
        let root = 1234u32;
        let via_euler = tree_distances(n, &edges, root);
        let via_bfs = bfs_distances(n, &edges, root);
        assert_eq!(via_euler, via_bfs);
    }

    #[test]
    fn single_vertex() {
        let d = tree_distances(1, &[], 0);
        assert_eq!(d, vec![0]);
    }

    #[test]
    fn star_graph_distances() {
        let n = 50_000;
        let edges: Vec<(u32, u32)> = (1..n as u32).map(|v| (0, v)).collect();
        let d = tree_distances(n, &edges, 0);
        assert_eq!(d[0], 0);
        assert!(d[1..].iter().all(|&x| x == 1));
        // Root at a leaf: center is 1, all other leaves 2.
        let d = tree_distances(n, &edges, 7);
        assert_eq!(d[7], 0);
        assert_eq!(d[0], 1);
        assert_eq!(d[8], 2);
    }
}
