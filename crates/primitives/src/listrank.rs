//! List ranking by pointer jumping.
//!
//! Given a linked list with a value at each node, list ranking computes for
//! each node the sum of values from that node to the end of its list
//! (Section 2.2). We implement the classic pointer-jumping scheme:
//! `O(n log n)` work and `O(log n)` depth with double buffering. The paper's
//! work-efficient `O(n)` variant is not required for correctness and the
//! log factor is off the critical path of every consumer in this codebase
//! (see DESIGN.md §6, substitution 4); small inputs use the sequential path.

use rayon::prelude::*;

use crate::SEQ_CUTOFF;

/// Null successor: marks the end of a list.
pub const NIL: u32 = u32::MAX;

/// For each node `i`, returns `value[i] + value[next[i]] + ...` following
/// `next` pointers until [`NIL`]. `next` must be acyclic.
pub fn list_rank(next: &[u32], value: &[i64]) -> Vec<i64> {
    let n = next.len();
    assert_eq!(n, value.len());
    if n < SEQ_CUTOFF {
        return list_rank_seq(next, value);
    }

    let mut nxt: Vec<u32> = next.to_vec();
    let mut val: Vec<i64> = value.to_vec();
    let mut nxt2: Vec<u32> = vec![0; n];
    let mut val2: Vec<i64> = vec![0; n];

    // ceil(log2(n)) jumping rounds suffice to collapse every pointer chain.
    let rounds = usize::BITS - (n - 1).leading_zeros();
    for _ in 0..rounds {
        nxt2.par_iter_mut()
            .zip(val2.par_iter_mut())
            .enumerate()
            .for_each(|(i, (n2, v2))| {
                let nx = nxt[i];
                if nx == NIL {
                    *n2 = NIL;
                    *v2 = val[i];
                } else {
                    *n2 = nxt[nx as usize];
                    *v2 = val[i] + val[nx as usize];
                }
            });
        std::mem::swap(&mut nxt, &mut nxt2);
        std::mem::swap(&mut val, &mut val2);
    }
    debug_assert!(nxt.iter().all(|&x| x == NIL));
    val
}

/// Sequential reference implementation (also the small-input fast path).
pub fn list_rank_seq(next: &[u32], value: &[i64]) -> Vec<i64> {
    let n = next.len();
    let mut out = vec![0i64; n];
    let mut done = vec![false; n];
    let mut stack: Vec<u32> = Vec::new();
    for start in 0..n as u32 {
        if done[start as usize] {
            continue;
        }
        // Walk to the first resolved node (or list end), then unwind.
        let mut cur = start;
        loop {
            if done[cur as usize] {
                break;
            }
            stack.push(cur);
            let nx = next[cur as usize];
            if nx == NIL {
                break;
            }
            cur = nx;
        }
        while let Some(i) = stack.pop() {
            let nx = next[i as usize];
            out[i as usize] = value[i as usize] + if nx == NIL { 0 } else { out[nx as usize] };
            done[i as usize] = true;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::prelude::*;

    fn random_list(n: usize, seed: u64) -> (Vec<u32>, Vec<i64>) {
        // A single list visiting a random permutation of 0..n.
        let mut rng = StdRng::seed_from_u64(seed);
        let mut perm: Vec<u32> = (0..n as u32).collect();
        perm.shuffle(&mut rng);
        let mut next = vec![NIL; n];
        for w in perm.windows(2) {
            next[w[0] as usize] = w[1];
        }
        let value: Vec<i64> = (0..n).map(|_| rng.gen_range(-10..10)).collect();
        (next, value)
    }

    #[test]
    fn single_chain() {
        // 0 -> 1 -> 2 -> NIL with values 1, 10, 100.
        let next = vec![1, 2, NIL];
        let value = vec![1, 10, 100];
        assert_eq!(list_rank(&next, &value), vec![111, 110, 100]);
    }

    #[test]
    fn multiple_lists() {
        // Two lists: 0->2->NIL and 1->NIL.
        let next = vec![2, NIL, NIL];
        let value = vec![5, 7, 11];
        assert_eq!(list_rank(&next, &value), vec![16, 7, 11]);
    }

    #[test]
    fn parallel_matches_sequential_large() {
        let (next, value) = random_list(50_000, 3);
        assert_eq!(list_rank(&next, &value), list_rank_seq(&next, &value));
    }

    #[test]
    fn position_ranking_gives_suffix_counts() {
        // Value 1 everywhere: rank = distance-to-end + 1.
        let n = 20_000;
        let (next, _) = random_list(n, 9);
        let ones = vec![1i64; n];
        let ranks = list_rank(&next, &ones);
        // Exactly one node of each suffix length 1..=n.
        let mut seen = vec![false; n + 1];
        for &r in &ranks {
            assert!(r >= 1 && r as usize <= n);
            assert!(!seen[r as usize], "duplicate suffix length {r}");
            seen[r as usize] = true;
        }
    }
}
