//! A fast non-cryptographic hasher for hot integer keys.
//!
//! The standard library's SipHash is a poor fit for the per-subproblem
//! vertex maps and BCCP caches on the hot path (see the performance notes in
//! the Rust Performance Book on alternative hashers). This is the classic
//! Fx multiply-rotate hash, implemented locally to avoid an external
//! dependency.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// Multiply-rotate hasher (FxHash algorithm).
#[derive(Default, Clone)]
pub struct FxHasher {
    state: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.state = (self.state.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.state
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }
}

pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// Drop-in `HashMap` with the fast hasher.
pub type FastMap<K, V> = HashMap<K, V, FxBuildHasher>;
/// Drop-in `HashSet` with the fast hasher.
pub type FastSet<K> = HashSet<K, FxBuildHasher>;

/// Convenience constructor with capacity.
pub fn fast_map_with_capacity<K, V>(cap: usize) -> FastMap<K, V> {
    FastMap::with_capacity_and_hasher(cap, FxBuildHasher::default())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_roundtrip() {
        let mut m: FastMap<u64, u64> = FastMap::default();
        for i in 0..10_000u64 {
            m.insert(i * 31, i);
        }
        for i in 0..10_000u64 {
            assert_eq!(m.get(&(i * 31)), Some(&i));
        }
        assert_eq!(m.len(), 10_000);
    }

    #[test]
    fn hash_distributes() {
        // Smoke test: sequential keys should not all collide mod small tables.
        let mut buckets = [0usize; 64];
        for i in 0..64_000u64 {
            let mut h = FxHasher::default();
            h.write_u64(i);
            buckets[(h.finish() % 64) as usize] += 1;
        }
        let max = *buckets.iter().max().unwrap();
        let min = *buckets.iter().min().unwrap();
        assert!(max < min * 3, "poor distribution: min={min} max={max}");
    }

    #[test]
    fn set_basics() {
        let mut s: FastSet<u32> = FastSet::default();
        assert!(s.insert(7));
        assert!(!s.insert(7));
        assert!(s.contains(&7));
    }
}
