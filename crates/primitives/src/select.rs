//! Parallel selection (k-th order statistic).
//!
//! The dendrogram algorithm of Section 4 cannot afford a full sort at every
//! recursion level; the paper uses parallel selection [38] to find the
//! median (or `n/10`-quantile) edge weight. This is a parallel quickselect
//! over `f64` keys: partition counts are computed with parallel pack, and
//! recursion narrows to one side.

use crate::pack::pack;
use rayon::prelude::*;

/// Returns the `k`-th smallest value of `xs` (0-indexed). Panics when `xs`
/// is empty, `k >= xs.len()`, or a NaN is encountered.
pub fn select_kth(xs: &[f64], k: usize) -> f64 {
    assert!(!xs.is_empty(), "select_kth on empty slice");
    assert!(k < xs.len(), "k out of range");
    let mut cur: Vec<f64> = xs.to_vec();
    let mut k = k;
    let mut salt = 0x9e3779b97f4a7c15u64;
    loop {
        if cur.len() <= 4096 {
            let (_, kth, _) = cur.select_nth_unstable_by(k, |a, b| {
                a.partial_cmp(b).expect("NaN in select_kth input")
            });
            return *kth;
        }
        // Median-of-three pseudo-random samples as pivot.
        let n = cur.len();
        let idx = |s: u64| -> usize {
            ((s.wrapping_mul(0xd1342543de82ef95).rotate_left(17)) % n as u64) as usize
        };
        let (a, b, c) = (
            cur[idx(salt)],
            cur[idx(salt ^ 0xabcd)],
            cur[idx(salt ^ 0x1234_5678)],
        );
        salt = salt.wrapping_add(0x9e3779b97f4a7c15);
        let pivot = a.max(b).min(a.min(b).max(c)); // median of a, b, c

        let less = pack(&cur, |&x| x < pivot);
        if k < less.len() {
            cur = less;
            continue;
        }
        let n_eq = cur.par_iter().filter(|&&x| x == pivot).count();
        if k < less.len() + n_eq {
            return pivot;
        }
        k -= less.len() + n_eq;
        cur = pack(&cur, |&x| x > pivot);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::prelude::*;

    fn oracle(xs: &[f64], k: usize) -> f64 {
        let mut v = xs.to_vec();
        v.sort_by(|a, b| a.partial_cmp(b).unwrap());
        v[k]
    }

    #[test]
    fn small_inputs() {
        assert_eq!(select_kth(&[3.0], 0), 3.0);
        assert_eq!(select_kth(&[2.0, 1.0], 0), 1.0);
        assert_eq!(select_kth(&[2.0, 1.0], 1), 2.0);
    }

    #[test]
    fn random_inputs_match_sort() {
        let mut rng = StdRng::seed_from_u64(42);
        for &n in &[100usize, 5000, 60_000] {
            let xs: Vec<f64> = (0..n).map(|_| rng.gen_range(-1e6..1e6)).collect();
            for &k in &[0, n / 10, n / 2, n - 1] {
                assert_eq!(select_kth(&xs, k), oracle(&xs, k), "n={n} k={k}");
            }
        }
    }

    #[test]
    fn many_duplicates() {
        let xs: Vec<f64> = (0..50_000).map(|i| (i % 5) as f64).collect();
        for k in [0, 9_999, 10_000, 25_000, 49_999] {
            assert_eq!(select_kth(&xs, k), oracle(&xs, k), "k={k}");
        }
    }

    #[test]
    fn all_equal() {
        let xs = vec![7.5; 20_000];
        assert_eq!(select_kth(&xs, 19_999), 7.5);
        assert_eq!(select_kth(&xs, 0), 7.5);
    }
}
