//! Parallel semisort.
//!
//! Semisort groups records with equal keys together without ordering the
//! groups (Section 2.2, citing Gu, Shun, Sun, and Blelloch [32]) — the
//! primitive behind the dendrogram algorithm's subproblem grouping. This is
//! a practical two-level implementation of that idea:
//!
//! 1. hash every key and scatter records into `Θ(P²)`-ish buckets by hash
//!    prefix using a blocked counting pass + prefix sums (all parallel);
//! 2. group within each bucket independently (buckets are processed in
//!    parallel; records of one key always land in one bucket).
//!
//! Expected `O(n)` work for the scatter plus `O(B log B)` per bucket for
//! the in-bucket grouping of `B` records — near-linear for the hash-spread
//! buckets the scatter produces, matching the role of the `O(n)` expected
//! work primitive in the paper's analyses.

use rayon::prelude::*;

use crate::scan::scan_exclusive_usize;
use crate::{block_size, SendPtr, SEQ_CUTOFF};

#[inline]
fn hash64(mut k: u64) -> u64 {
    // Murmur3 finalizer.
    k ^= k >> 33;
    k = k.wrapping_mul(0xff51afd7ed558ccd);
    k ^= k >> 33;
    k = k.wrapping_mul(0xc4ceb9fe1a85ec53);
    k ^= k >> 33;
    k
}

/// Group `items` by `key`: returns the reordered items plus the half-open
/// group boundaries. Groups appear in no particular order; *within* a
/// group the original relative order is **not** preserved.
pub fn semisort_by_key<T, F>(items: &[T], key: F) -> (Vec<T>, Vec<std::ops::Range<usize>>)
where
    T: Copy + Send + Sync,
    F: Fn(&T) -> u64 + Sync,
{
    let n = items.len();
    if n < SEQ_CUTOFF {
        return semisort_seq(items, key);
    }

    // Bucket count: enough buckets that per-bucket work is small, few
    // enough that histograms stay cache-resident.
    let nbuckets = (n / 2048).next_power_of_two().clamp(64, 8192);
    let shift = 64 - nbuckets.trailing_zeros();
    let bucket_of = |t: &T| (hash64(key(t)) >> shift) as usize;

    // Pass 1: per-block histograms.
    let bs = block_size(n);
    let nblocks = n.div_ceil(bs);
    let histograms: Vec<Vec<usize>> = items
        .par_chunks(bs)
        .map(|chunk| {
            let mut h = vec![0usize; nbuckets];
            for t in chunk {
                h[bucket_of(t)] += 1;
            }
            h
        })
        .collect();

    // Column-major offsets: for bucket b, blocks write consecutively.
    let mut flat = vec![0usize; nbuckets * nblocks];
    for (blk, h) in histograms.iter().enumerate() {
        for (b, &c) in h.iter().enumerate() {
            flat[b * nblocks + blk] = c;
        }
    }
    let (offsets, total) = scan_exclusive_usize(&flat);
    debug_assert_eq!(total, n);

    // Pass 2: scatter.
    let mut scattered: Vec<T> = Vec::with_capacity(n);
    // SAFETY: capacity is `n`; the (bucket, block) offsets partition
    // [0, n) and the scatter writes each index exactly once. T: Copy.
    #[allow(clippy::uninit_vec)]
    unsafe {
        scattered.set_len(n)
    };
    let out = SendPtr(scattered.as_mut_ptr());
    items.par_chunks(bs).enumerate().for_each(|(blk, chunk)| {
        let mut cursor = vec![0usize; nbuckets];
        for (b, c) in cursor.iter_mut().enumerate() {
            *c = offsets[b * nblocks + blk];
        }
        for t in chunk {
            let b = bucket_of(t);
            // SAFETY: disjoint per (bucket, block) ranges.
            unsafe { out.write(cursor[b], *t) };
            cursor[b] += 1;
        }
    });

    // Bucket extents.
    let bucket_start: Vec<usize> = (0..nbuckets).map(|b| offsets[b * nblocks]).collect();
    let bucket_end = |b: usize| -> usize {
        if b + 1 < nbuckets {
            bucket_start[b + 1]
        } else {
            n
        }
    };

    // Pass 3: group within each bucket in parallel (sort by hashed key so
    // equal keys become adjacent), then emit boundaries.
    let mut ranges_per_bucket: Vec<Vec<std::ops::Range<usize>>> = vec![Vec::new(); nbuckets];
    // Sort each bucket slice in parallel via split_at_mut walking.
    {
        let mut rest: &mut [T] = &mut scattered[..];
        let mut consumed = 0usize;
        let mut slices: Vec<(usize, &mut [T])> = Vec::with_capacity(nbuckets);
        for b in 0..nbuckets {
            let end = bucket_end(b);
            let (s, r) = rest.split_at_mut(end - consumed);
            slices.push((b, s));
            rest = r;
            consumed = end;
        }
        slices
            .into_par_iter()
            .zip(ranges_per_bucket.par_iter_mut())
            .for_each(|((b, slice), ranges)| {
                slice.sort_unstable_by_key(|t| hash64(key(t)));
                let base = bucket_start[b];
                let mut start = 0usize;
                for i in 1..=slice.len() {
                    if i == slice.len() || key(&slice[i]) != key(&slice[start]) {
                        ranges.push(base + start..base + i);
                        start = i;
                    }
                }
            });
    }
    let ranges: Vec<std::ops::Range<usize>> = ranges_per_bucket.into_iter().flatten().collect();
    (scattered, ranges)
}

fn semisort_seq<T, F>(items: &[T], key: F) -> (Vec<T>, Vec<std::ops::Range<usize>>)
where
    T: Copy,
    F: Fn(&T) -> u64,
{
    let mut out = items.to_vec();
    out.sort_by_key(|t| hash64(key(t)));
    let mut ranges = Vec::new();
    let mut start = 0usize;
    for i in 1..=out.len() {
        if i == out.len() || key(&out[i]) != key(&out[start]) {
            ranges.push(start..i);
            start = i;
        }
    }
    (out, ranges)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::prelude::*;
    use std::collections::HashMap;

    fn check_grouping(items: &[(u64, u64)], got: &(Vec<(u64, u64)>, Vec<std::ops::Range<usize>>)) {
        let (sorted, ranges) = got;
        assert_eq!(sorted.len(), items.len());
        // Ranges tile [0, n).
        let mut covered = vec![false; sorted.len()];
        for r in ranges {
            for i in r.clone() {
                assert!(!covered[i]);
                covered[i] = true;
            }
            // One key per range.
            let k = sorted[r.start].0;
            assert!(sorted[r.clone()].iter().all(|t| t.0 == k));
        }
        assert!(covered.iter().all(|&c| c));
        // Every key appears in exactly one range, with the right multiset
        // of values.
        let mut want: HashMap<u64, Vec<u64>> = HashMap::new();
        for &(k, v) in items {
            want.entry(k).or_default().push(v);
        }
        assert_eq!(ranges.len(), want.len(), "one range per distinct key");
        for r in ranges {
            let k = sorted[r.start].0;
            let mut got_vals: Vec<u64> = sorted[r.clone()].iter().map(|t| t.1).collect();
            let mut want_vals = want.remove(&k).expect("duplicate range for key");
            got_vals.sort_unstable();
            want_vals.sort_unstable();
            assert_eq!(got_vals, want_vals);
        }
    }

    #[test]
    fn small_input() {
        let items: Vec<(u64, u64)> = vec![(3, 0), (1, 1), (3, 2), (2, 3), (1, 4)];
        let got = semisort_by_key(&items, |t| t.0);
        check_grouping(&items, &got);
    }

    #[test]
    fn large_parallel_many_duplicates() {
        let mut rng = StdRng::seed_from_u64(1);
        let items: Vec<(u64, u64)> = (0..200_000).map(|i| (rng.gen_range(0..500), i)).collect();
        let got = semisort_by_key(&items, |t| t.0);
        check_grouping(&items, &got);
    }

    #[test]
    fn large_parallel_mostly_unique() {
        let mut rng = StdRng::seed_from_u64(2);
        let items: Vec<(u64, u64)> = (0..150_000).map(|i| (rng.gen(), i)).collect();
        let got = semisort_by_key(&items, |t| t.0);
        check_grouping(&items, &got);
    }

    /// The scatter writes each bucket in input order and all chunking is
    /// width-independent, so the full output (permutation + ranges) must be
    /// identical at every pool width.
    #[test]
    fn identical_across_pool_widths() {
        let mut rng = StdRng::seed_from_u64(7);
        let items: Vec<(u64, u64)> = (0..120_000).map(|i| (rng.gen_range(0..3_000), i)).collect();
        let run = |threads: usize| {
            rayon::ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .expect("pool")
                .install(|| semisort_by_key(&items, |t| t.0))
        };
        let base = run(1);
        check_grouping(&items, &base);
        for threads in [2, 4, 8] {
            assert_eq!(base, run(threads), "semisort differs at {threads} threads");
        }
    }

    #[test]
    fn single_key() {
        let items: Vec<(u64, u64)> = (0..50_000).map(|i| (7, i)).collect();
        let (_, ranges) = semisort_by_key(&items, |t| t.0);
        assert_eq!(ranges.len(), 1);
        assert_eq!(ranges[0], 0..50_000);
    }

    #[test]
    fn empty_input() {
        let items: Vec<(u64, u64)> = Vec::new();
        let (out, ranges) = semisort_by_key(&items, |t| t.0);
        assert!(out.is_empty());
        assert!(ranges.is_empty());
    }
}
