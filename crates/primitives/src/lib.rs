//! Parallel and concurrent primitives substrate.
//!
//! This crate provides the building blocks assumed by the paper's algorithms
//! (Section 2.2, "Parallel Primitives"): prefix sum, filter/pack, split,
//! semisort-style grouping, parallel selection, list ranking, Euler tours,
//! the `WRITE_MIN` priority concurrent write, union-find, and a
//! phase-concurrent hash table.
//!
//! All primitives are implemented on top of [`rayon`]'s work-stealing
//! fork-join runtime, the Rust analogue of the Cilk runtime used by the
//! paper. Each primitive falls back to a sequential implementation below a
//! grain size so that small inputs pay no parallel overhead.

pub mod atomic;
pub mod collector;
pub mod conmap;
pub mod euler;
pub mod hash;
pub mod listrank;
pub mod pack;
pub mod scan;
pub mod select;
pub mod semisort;
pub mod unionfind;

/// Inputs smaller than this are processed sequentially by the parallel
/// primitives; the value balances rayon task overhead against parallelism
/// for typical point-set sizes.
pub const SEQ_CUTOFF: usize = 8192;

/// Chunk size used by blocked two-pass primitives (scan, pack, split).
#[inline]
pub(crate) fn block_size(n: usize) -> usize {
    // Fixed fan-out, deliberately independent of the worker count: chunk
    // boundaries are part of each primitive's deterministic output contract
    // across thread counts. 256 blocks keep every realistic pool busy, and
    // blocks of at least 2048 elements keep the sequential pass dominant.
    (n / 256).max(2048)
}

/// A raw pointer wrapper that lets disjoint-index writes cross rayon task
/// boundaries. Callers must guarantee that concurrent tasks write disjoint
/// indices.
#[derive(Clone, Copy)]
pub struct SendPtr<T>(pub *mut T);
// SAFETY: users uphold the disjoint-index contract documented above, so
// sending the pointer to another task cannot create aliased writes.
unsafe impl<T> Send for SendPtr<T> {}
// SAFETY: same contract — shared copies only ever write disjoint indices.
unsafe impl<T> Sync for SendPtr<T> {}

impl<T> SendPtr<T> {
    /// # Safety
    /// `idx` must be in bounds for the allocation and no other task may
    /// access the same index concurrently.
    #[inline]
    pub unsafe fn write(self, idx: usize, value: T) {
        // SAFETY: bounds and disjointness guaranteed by the caller.
        unsafe { self.0.add(idx).write(value) };
    }
}
