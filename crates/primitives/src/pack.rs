//! Parallel pack (filter) and split.
//!
//! `pack` keeps the elements satisfying a predicate, in order; `split` moves
//! all "true" elements before all "false" elements, stably. Both are the
//! scan-based primitives from Section 2.2 of the paper.

use rayon::prelude::*;

use crate::scan::scan_exclusive_usize;
use crate::{block_size, SendPtr, SEQ_CUTOFF};

/// Parallel filter: returns the elements `x` of `items` with `f(x)` true, in
/// their original order.
pub fn pack<T, F>(items: &[T], f: F) -> Vec<T>
where
    T: Copy + Send + Sync,
    F: Fn(&T) -> bool + Send + Sync,
{
    let n = items.len();
    if n < SEQ_CUTOFF {
        return items.iter().filter(|x| f(x)).copied().collect();
    }
    let bs = block_size(n);
    let counts: Vec<usize> = items
        .par_chunks(bs)
        .map(|chunk| chunk.iter().filter(|x| f(x)).count())
        .collect();
    let (offsets, total) = scan_exclusive_usize(&counts);

    let mut out: Vec<T> = Vec::with_capacity(total);
    // SAFETY: capacity is `total` and the scatter below writes every index
    // exactly once (offsets partition [0, total)); T: Copy, so the
    // uninitialized gap holds no drop obligations in between.
    #[allow(clippy::uninit_vec)]
    unsafe {
        out.set_len(total)
    };
    let out_ptr = SendPtr(out.as_mut_ptr());
    items
        .par_chunks(bs)
        .zip(offsets.par_iter())
        .for_each(|(chunk, &off)| {
            let mut pos = off;
            for x in chunk {
                if f(x) {
                    // SAFETY: blocks write disjoint ranges [off, off+count).
                    unsafe { out_ptr.write(pos, *x) };
                    pos += 1;
                }
            }
        });
    out
}

/// Parallel filter over the index domain `0..n`: returns all `i` (as `u32`)
/// with `f(i)` true, in increasing order. `n` must fit in `u32`.
pub fn pack_indices<F>(n: usize, f: F) -> Vec<u32>
where
    F: Fn(usize) -> bool + Send + Sync,
{
    assert!(n <= u32::MAX as usize, "index domain exceeds u32");
    if n < SEQ_CUTOFF {
        return (0..n).filter(|&i| f(i)).map(|i| i as u32).collect();
    }
    let bs = block_size(n);
    let nblocks = n.div_ceil(bs);
    let counts: Vec<usize> = (0..nblocks)
        .into_par_iter()
        .map(|b| {
            let lo = b * bs;
            let hi = (lo + bs).min(n);
            (lo..hi).filter(|&i| f(i)).count()
        })
        .collect();
    let (offsets, total) = scan_exclusive_usize(&counts);
    let mut out: Vec<u32> = Vec::with_capacity(total);
    // SAFETY: capacity is `total`; the block offsets partition [0, total)
    // and each index is written exactly once below. u32 needs no drop.
    #[allow(clippy::uninit_vec)]
    unsafe {
        out.set_len(total)
    };
    let out_ptr = SendPtr(out.as_mut_ptr());
    (0..nblocks).into_par_iter().for_each(|b| {
        let lo = b * bs;
        let hi = (lo + bs).min(n);
        let mut pos = offsets[b];
        for i in lo..hi {
            if f(i) {
                // SAFETY: blocks write disjoint ranges.
                unsafe { out_ptr.write(pos, i as u32) };
                pos += 1;
            }
        }
    });
    out
}

/// Parallel stable split: returns a vector with all "true" elements first
/// (in order), then all "false" elements (in order), plus the number of
/// "true" elements. This is the `SPLIT` primitive used by Algorithm 2.
pub fn split<T, F>(items: &[T], f: F) -> (Vec<T>, usize)
where
    T: Copy + Send + Sync,
    F: Fn(&T) -> bool + Send + Sync,
{
    let n = items.len();
    if n < SEQ_CUTOFF {
        let mut trues: Vec<T> = Vec::new();
        let mut falses: Vec<T> = Vec::new();
        for x in items {
            if f(x) {
                trues.push(*x);
            } else {
                falses.push(*x);
            }
        }
        let ntrue = trues.len();
        trues.extend_from_slice(&falses);
        return (trues, ntrue);
    }
    let bs = block_size(n);
    let counts: Vec<usize> = items
        .par_chunks(bs)
        .map(|chunk| chunk.iter().filter(|x| f(x)).count())
        .collect();
    let (true_offsets, ntrue) = scan_exclusive_usize(&counts);
    let false_counts: Vec<usize> = items
        .par_chunks(bs)
        .zip(counts.par_iter())
        .map(|(chunk, &c)| chunk.len() - c)
        .collect();
    let (false_offsets, _) = scan_exclusive_usize(&false_counts);

    let mut out: Vec<T> = Vec::with_capacity(n);
    // SAFETY: capacity is `n`; the true/false offset scans partition
    // [0, n) and each index is written exactly once below. T: Copy.
    #[allow(clippy::uninit_vec)]
    unsafe {
        out.set_len(n)
    };
    let out_ptr = SendPtr(out.as_mut_ptr());
    items.par_chunks(bs).enumerate().for_each(|(b, chunk)| {
        let mut tpos = true_offsets[b];
        let mut fpos = ntrue + false_offsets[b];
        for x in chunk {
            if f(x) {
                // SAFETY: each block writes the disjoint true-range
                // [true_offsets[b], true_offsets[b] + count_b).
                unsafe { out_ptr.write(tpos, *x) };
                tpos += 1;
            } else {
                // SAFETY: false destinations live past `ntrue`, disjoint
                // from every true range and between blocks.
                unsafe { out_ptr.write(fpos, *x) };
                fpos += 1;
            }
        }
    });
    (out, ntrue)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_small() {
        let xs = [1, 2, 3, 4, 5, 6];
        assert_eq!(pack(&xs, |&x| x % 2 == 0), vec![2, 4, 6]);
    }

    #[test]
    fn pack_empty_and_none_match() {
        assert_eq!(pack::<i32, _>(&[], |_| true), Vec::<i32>::new());
        assert_eq!(pack(&[1, 3, 5], |&x| x % 2 == 0), Vec::<i32>::new());
    }

    #[test]
    fn pack_large_matches_sequential() {
        let xs: Vec<u64> = (0..120_000).map(|i| (i * 2654435761) % 1000).collect();
        let got = pack(&xs, |&x| x < 250);
        let want: Vec<u64> = xs.iter().copied().filter(|&x| x < 250).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn pack_indices_matches() {
        let n = 100_000;
        let got = pack_indices(n, |i| i % 7 == 3);
        let want: Vec<u32> = (0..n).filter(|i| i % 7 == 3).map(|i| i as u32).collect();
        assert_eq!(got, want);
    }

    /// Adversarial sizes around every boundary (empty, singleton, the
    /// sequential cutoff, block-size multiples ± 1, and a large input),
    /// driven through a real multi-worker pool.
    #[test]
    fn pack_adversarial_sizes_under_pool() {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(4)
            .build()
            .expect("pool");
        pool.install(|| {
            let bs = crate::block_size(crate::SEQ_CUTOFF);
            let sizes = [
                0,
                1,
                2,
                bs - 1,
                bs,
                bs + 1,
                crate::SEQ_CUTOFF - 1,
                crate::SEQ_CUTOFF,
                crate::SEQ_CUTOFF + 1,
                7 * bs - 1,
                7 * bs,
                7 * bs + 1,
                600_000,
            ];
            for n in sizes {
                let xs: Vec<u64> = (0..n as u64).map(|i| (i * 2654435761) % 97).collect();
                let got = pack(&xs, |&x| x % 3 == 0);
                let want: Vec<u64> = xs.iter().copied().filter(|&x| x % 3 == 0).collect();
                assert_eq!(got, want, "pack mismatch at n={n}");

                let got_idx = pack_indices(n, |i| i % 5 == 2);
                let want_idx: Vec<u32> = (0..n).filter(|i| i % 5 == 2).map(|i| i as u32).collect();
                assert_eq!(got_idx, want_idx, "pack_indices mismatch at n={n}");

                let (out, ntrue) = split(&xs, |&x| x & 1 == 0);
                let want_t: Vec<u64> = xs.iter().copied().filter(|&x| x & 1 == 0).collect();
                let want_f: Vec<u64> = xs.iter().copied().filter(|&x| x & 1 == 1).collect();
                assert_eq!(ntrue, want_t.len(), "split count mismatch at n={n}");
                assert_eq!(&out[..ntrue], &want_t[..], "split trues mismatch at n={n}");
                assert_eq!(&out[ntrue..], &want_f[..], "split falses mismatch at n={n}");
            }
        });
    }

    #[test]
    fn split_small_stable() {
        let xs = [5, 2, 7, 1, 8, 3];
        let (out, ntrue) = split(&xs, |&x| x >= 5);
        assert_eq!(ntrue, 3);
        assert_eq!(out, vec![5, 7, 8, 2, 1, 3]);
    }

    #[test]
    fn split_large_matches_sequential() {
        let xs: Vec<u32> = (0..90_000)
            .map(|i| (i as u32).wrapping_mul(48271) % 100)
            .collect();
        let (out, ntrue) = split(&xs, |&x| x & 1 == 0);
        let want_true: Vec<u32> = xs.iter().copied().filter(|&x| x & 1 == 0).collect();
        let want_false: Vec<u32> = xs.iter().copied().filter(|&x| x & 1 == 1).collect();
        assert_eq!(ntrue, want_true.len());
        assert_eq!(&out[..ntrue], &want_true[..]);
        assert_eq!(&out[ntrue..], &want_false[..]);
    }

    #[test]
    fn split_all_true_all_false() {
        let xs = [1, 2, 3];
        let (out, ntrue) = split(&xs, |_| true);
        assert_eq!((out.as_slice(), ntrue), (&[1, 2, 3][..], 3));
        let (out, ntrue) = split(&xs, |_| false);
        assert_eq!((out.as_slice(), ntrue), (&[1, 2, 3][..], 0));
    }
}
