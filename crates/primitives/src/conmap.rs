//! Phase-concurrent open-addressing hash table.
//!
//! The paper assumes a parallel hash table supporting `n` inserts and finds
//! in `O(n)` work and `O(log n)` depth w.h.p. (Section 2.2, citing Gil,
//! Matias, and Vishkin [29]). This is a linear-probing table over `u64`
//! keys and values in the phase-concurrent style: any number of concurrent
//! `insert`s and `get`s may proceed together, with the caveat that a `get`
//! racing an `insert` of the *same* key may miss it (callers use the table
//! as a memoization cache, for which a rare miss only costs a recompute).
//!
//! Used by MemoGFK's cross-round BCCP cache, keyed by the packed kd-node
//! pair with the packed point-index pair as the value.

use std::sync::atomic::{AtomicU64, Ordering};

/// Reserved key indicating an empty slot. Keys must be `< u64::MAX`.
pub const EMPTY_KEY: u64 = u64::MAX;
/// Reserved value indicating "not yet written". Values must be `< u64::MAX`.
pub const NOT_READY: u64 = u64::MAX;

/// Fixed-capacity phase-concurrent hash table from `u64` keys to `u64`
/// values.
pub struct ConMap {
    keys: Vec<AtomicU64>,
    values: Vec<AtomicU64>,
    mask: usize,
}

#[inline]
fn mix(mut k: u64) -> u64 {
    // Murmur3 finalizer: full-avalanche, cheap.
    k ^= k >> 33;
    k = k.wrapping_mul(0xff51afd7ed558ccd);
    k ^= k >> 33;
    k = k.wrapping_mul(0xc4ceb9fe1a85ec53);
    k ^= k >> 33;
    k
}

impl ConMap {
    /// Create a table able to hold at least `n` distinct keys (sized to at
    /// least 2x occupancy so probe sequences stay short).
    pub fn with_capacity(n: usize) -> Self {
        let slots = (2 * n.max(8)).next_power_of_two();
        Self {
            keys: (0..slots).map(|_| AtomicU64::new(EMPTY_KEY)).collect(),
            values: (0..slots).map(|_| AtomicU64::new(NOT_READY)).collect(),
            mask: slots - 1,
        }
    }

    /// Number of slots (not entries).
    pub fn slots(&self) -> usize {
        self.keys.len()
    }

    /// Insert `(key, value)`. If the key is already present the value is
    /// overwritten (our callers only ever write identical values for a given
    /// key, making the race benign). Panics if the table is full.
    pub fn insert(&self, key: u64, value: u64) {
        assert!(
            self.try_insert(key, value),
            "ConMap full: size the table for the expected number of keys"
        );
    }

    /// Insert `(key, value)`, returning `false` if the table is full — used
    /// by callers (e.g. the BCCP cache) for which dropping an entry only
    /// costs a recompute.
    pub fn try_insert(&self, key: u64, value: u64) -> bool {
        debug_assert_ne!(key, EMPTY_KEY, "key sentinel is reserved");
        debug_assert_ne!(value, NOT_READY, "value sentinel is reserved");
        let mut idx = (mix(key) as usize) & self.mask;
        for _ in 0..=self.mask {
            let cur = self.keys[idx].load(Ordering::Acquire);
            if cur == key {
                self.values[idx].store(value, Ordering::Release);
                return true;
            }
            if cur == EMPTY_KEY {
                match self.keys[idx].compare_exchange(
                    EMPTY_KEY,
                    key,
                    Ordering::AcqRel,
                    Ordering::Acquire,
                ) {
                    Ok(_) => {
                        self.values[idx].store(value, Ordering::Release);
                        return true;
                    }
                    Err(actual) if actual == key => {
                        self.values[idx].store(value, Ordering::Release);
                        return true;
                    }
                    Err(_) => { /* lost the slot to a different key; keep probing */ }
                }
            }
            idx = (idx + 1) & self.mask;
        }
        false
    }

    /// Look up `key`. Returns `None` if absent or if a concurrent insert of
    /// this key has not yet published its value.
    pub fn get(&self, key: u64) -> Option<u64> {
        debug_assert_ne!(key, EMPTY_KEY);
        let mut idx = (mix(key) as usize) & self.mask;
        for _ in 0..=self.mask {
            let cur = self.keys[idx].load(Ordering::Acquire);
            if cur == key {
                let v = self.values[idx].load(Ordering::Acquire);
                return (v != NOT_READY).then_some(v);
            }
            if cur == EMPTY_KEY {
                return None;
            }
            idx = (idx + 1) & self.mask;
        }
        None
    }

    /// Iterate over the entries present at a quiescent point (no concurrent
    /// writers).
    pub fn iter_quiescent(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.keys
            .iter()
            .zip(self.values.iter())
            .filter_map(|(k, v)| {
                let k = k.load(Ordering::Relaxed);
                let v = v.load(Ordering::Relaxed);
                (k != EMPTY_KEY && v != NOT_READY).then_some((k, v))
            })
    }
}

/// A growable concurrent map: lock-striped shards over the fast hasher.
/// Used where the key population is unknown up front (e.g. MemoGFK's BCCP
/// cache, whose size is the WSPD pair count — `O(n)` with a
/// dimension-dependent constant that can exceed 100). Per-op locking is
/// amortized by the work each cached value saves.
pub struct ShardedMap {
    shards: Vec<parking_lot::Mutex<crate::hash::FastMap<u64, u64>>>,
    mask: usize,
}

impl ShardedMap {
    pub fn new() -> Self {
        Self::with_shards(64)
    }

    pub fn with_shards(n: usize) -> Self {
        let n = n.next_power_of_two();
        ShardedMap {
            shards: (0..n)
                .map(|_| parking_lot::Mutex::new(crate::hash::FastMap::default()))
                .collect(),
            mask: n - 1,
        }
    }

    #[inline]
    fn shard(&self, key: u64) -> &parking_lot::Mutex<crate::hash::FastMap<u64, u64>> {
        &self.shards[(mix(key) as usize) & self.mask]
    }

    #[inline]
    pub fn get(&self, key: u64) -> Option<u64> {
        self.shard(key).lock().get(&key).copied()
    }

    #[inline]
    pub fn insert(&self, key: u64, value: u64) {
        self.shard(key).lock().insert(key, value);
    }

    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().len()).sum()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Default for ShardedMap {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rayon::prelude::*;
    use std::collections::HashMap;

    #[test]
    fn sharded_map_concurrent_roundtrip() {
        let m = ShardedMap::new();
        (0..100_000u64).into_par_iter().for_each(|i| {
            m.insert(i, i * 3);
        });
        assert_eq!(m.len(), 100_000);
        (0..100_000u64).into_par_iter().for_each(|i| {
            assert_eq!(m.get(i), Some(i * 3));
        });
        assert_eq!(m.get(1_000_001), None);
    }

    #[test]
    fn insert_get_roundtrip() {
        let m = ConMap::with_capacity(1000);
        for i in 0..1000u64 {
            m.insert(i * 7 + 1, i);
        }
        for i in 0..1000u64 {
            assert_eq!(m.get(i * 7 + 1), Some(i));
        }
        assert_eq!(m.get(999_999), None);
    }

    #[test]
    fn overwrite_same_key() {
        let m = ConMap::with_capacity(8);
        m.insert(42, 1);
        m.insert(42, 2);
        assert_eq!(m.get(42), Some(2));
    }

    #[test]
    fn concurrent_inserts_match_hashmap() {
        let n = 200_000u64;
        let m = ConMap::with_capacity(n as usize);
        (0..n).into_par_iter().for_each(|i| {
            // Many duplicate keys, all writing the same value per key.
            let k = mix(i % 50_000);
            m.insert(k, k.wrapping_mul(3) & !(1 << 63));
        });
        let mut want = HashMap::new();
        for i in 0..n {
            let k = mix(i % 50_000);
            want.insert(k, k.wrapping_mul(3) & !(1 << 63));
        }
        let got: HashMap<u64, u64> = m.iter_quiescent().collect();
        assert_eq!(got, want);
    }

    #[test]
    fn concurrent_mixed_insert_get() {
        let n = 100_000u64;
        let m = ConMap::with_capacity(n as usize);
        (0..n).into_par_iter().for_each(|i| {
            let k = i % 10_000 + 1;
            if i % 2 == 0 {
                m.insert(k, k * 2);
            } else if let Some(v) = m.get(k) {
                // Any value observed must be the (unique) published value.
                assert_eq!(v, k * 2);
            }
        });
    }

    /// Scheduling stress under a real worker pool: many threads race
    /// inserts and same-key overwrites through the pooled executor. Any
    /// value observed by a reader must be one that some writer published.
    #[test]
    fn insert_update_races_under_pool() {
        for threads in [2, 4, 8] {
            let pool = rayon::ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .expect("pool");
            pool.install(|| {
                let keys = 5_000u64;
                let m = ConMap::with_capacity(keys as usize);
                // Writers race overwrites of the same key (both values are
                // legal); readers race the writers.
                (0..100_000u64).into_par_iter().for_each(|i| {
                    let k = i % keys + 1;
                    match i % 4 {
                        0 => m.insert(k, k * 2),
                        1 => m.insert(k, k * 2 + 1),
                        _ => {
                            if let Some(v) = m.get(k) {
                                assert!(
                                    v == k * 2 || v == k * 2 + 1,
                                    "torn or foreign value {v} for key {k}"
                                );
                            }
                        }
                    }
                });
                // Quiescent: every key holds one of its two candidates.
                for (k, v) in m.iter_quiescent() {
                    assert!(v == k * 2 || v == k * 2 + 1);
                }
            });
        }
    }

    #[test]
    #[should_panic(expected = "ConMap full")]
    fn panics_when_overfull() {
        let m = ConMap::with_capacity(4);
        for i in 0..64 {
            m.insert(i + 1, i);
        }
    }
}
