//! Parallel prefix sums (scans).
//!
//! The classic blocked two-pass scan: per-block sums are computed in
//! parallel, scanned sequentially (the number of blocks is small), and the
//! block offsets are pushed back down in a second parallel pass. This is the
//! `O(n)` work, `O(log n)` depth primitive of Section 2.2.

use rayon::prelude::*;

use crate::{block_size, SEQ_CUTOFF};

/// Exclusive prefix sum of `input` under an associative `op` with `identity`.
///
/// Returns the output sequence `[id, a1, a1⊕a2, ...]` and the total
/// `a1⊕...⊕an`, matching the paper's definition of *prefix sum*.
pub fn scan_exclusive<T, F>(input: &[T], identity: T, op: F) -> (Vec<T>, T)
where
    T: Copy + Send + Sync,
    F: Fn(T, T) -> T + Send + Sync,
{
    let n = input.len();
    if n < SEQ_CUTOFF {
        let mut out = Vec::with_capacity(n);
        let mut acc = identity;
        for &x in input {
            out.push(acc);
            acc = op(acc, x);
        }
        return (out, acc);
    }

    let bs = block_size(n);

    // Pass 1: per-block totals.
    let mut block_sums: Vec<T> = input
        .par_chunks(bs)
        .map(|chunk| {
            let mut acc = chunk[0];
            for &x in &chunk[1..] {
                acc = op(acc, x);
            }
            acc
        })
        .collect();

    // Sequential scan over the (few) block totals.
    let mut acc = identity;
    for b in block_sums.iter_mut() {
        let next = op(acc, *b);
        *b = acc;
        acc = next;
    }
    let total = acc;

    // Pass 2: rescan each block seeded with its offset.
    let mut out: Vec<T> = Vec::with_capacity(n);
    // SAFETY: capacity is `n` and pass 2 writes every index exactly once
    // (block ranges partition the input); T: Copy, nothing to drop.
    #[allow(clippy::uninit_vec)]
    unsafe {
        out.set_len(n)
    };
    let out_ptr = crate::SendPtr(out.as_mut_ptr());
    input
        .par_chunks(bs)
        .zip(block_sums.par_iter())
        .enumerate()
        .for_each(|(bi, (chunk, &offset))| {
            let base = bi * bs;
            let mut acc = offset;
            for (i, &x) in chunk.iter().enumerate() {
                // SAFETY: each block writes a disjoint index range.
                unsafe { out_ptr.write(base + i, acc) };
                acc = op(acc, x);
            }
        });
    (out, total)
}

/// Exclusive prefix sum over `usize` addition — the common case used by
/// pack/split/grouping.
pub fn scan_exclusive_usize(input: &[usize]) -> (Vec<usize>, usize) {
    scan_exclusive(input, 0usize, |a, b| a + b)
}

/// Inclusive prefix sum under an associative `op`.
pub fn scan_inclusive<T, F>(input: &[T], identity: T, op: F) -> Vec<T>
where
    T: Copy + Send + Sync,
    F: Fn(T, T) -> T + Send + Sync,
{
    let (mut out, _) = scan_exclusive(input, identity, &op);
    for (o, &x) in out.iter_mut().zip(input.iter()) {
        *o = op(*o, x);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exclusive_small() {
        let xs = [3usize, 1, 4, 1, 5];
        let (pre, total) = scan_exclusive_usize(&xs);
        assert_eq!(pre, vec![0, 3, 4, 8, 9]);
        assert_eq!(total, 14);
    }

    #[test]
    fn exclusive_empty() {
        let (pre, total) = scan_exclusive_usize(&[]);
        assert!(pre.is_empty());
        assert_eq!(total, 0);
    }

    #[test]
    fn exclusive_large_matches_sequential() {
        let xs: Vec<usize> = (0..100_000).map(|i| (i * 7919) % 13).collect();
        let (pre, total) = scan_exclusive_usize(&xs);
        let mut acc = 0usize;
        for (i, &x) in xs.iter().enumerate() {
            assert_eq!(pre[i], acc, "mismatch at {i}");
            acc += x;
        }
        assert_eq!(total, acc);
    }

    #[test]
    fn inclusive_matches() {
        let xs: Vec<u64> = (0..50_000).map(|i| i % 17).collect();
        let inc = scan_inclusive(&xs, 0u64, |a, b| a + b);
        let mut acc = 0u64;
        for (i, &x) in xs.iter().enumerate() {
            acc += x;
            assert_eq!(inc[i], acc, "mismatch at {i}");
        }
    }

    /// Adversarial sizes (0, 1, block ± 1, cutoff ± 1, huge) under a real
    /// multi-worker pool; scan results must also be identical across pool
    /// widths (usize addition is exact, so this checks chunk bookkeeping).
    #[test]
    fn scan_adversarial_sizes_under_pool() {
        let bs = crate::block_size(crate::SEQ_CUTOFF);
        let sizes = [
            0,
            1,
            bs - 1,
            bs,
            bs + 1,
            SEQ_CUTOFF - 1,
            SEQ_CUTOFF,
            SEQ_CUTOFF + 1,
            5 * bs + 3,
            500_000,
        ];
        let reference: Vec<(Vec<usize>, usize)> = sizes
            .iter()
            .map(|&n| {
                let xs: Vec<usize> = (0..n).map(|i| (i * 7919) % 31).collect();
                let mut out = Vec::with_capacity(n);
                let mut acc = 0usize;
                for &x in &xs {
                    out.push(acc);
                    acc += x;
                }
                (out, acc)
            })
            .collect();
        for threads in [1, 4] {
            let pool = rayon::ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .expect("pool");
            pool.install(|| {
                for (&n, want) in sizes.iter().zip(&reference) {
                    let xs: Vec<usize> = (0..n).map(|i| (i * 7919) % 31).collect();
                    let (pre, total) = scan_exclusive_usize(&xs);
                    assert_eq!(pre, want.0, "scan mismatch at n={n}, {threads} threads");
                    assert_eq!(total, want.1, "total mismatch at n={n}, {threads} threads");
                }
            });
        }
    }

    #[test]
    fn scan_with_max_operator() {
        let xs: Vec<u32> = vec![2, 9, 4, 7, 1, 9, 11, 0];
        let (pre, total) = scan_exclusive(&xs, 0u32, |a, b| a.max(b));
        assert_eq!(pre, vec![0, 2, 9, 9, 9, 9, 9, 11]);
        assert_eq!(total, 11);
    }
}
