//! Union-find (disjoint sets).
//!
//! Kruskal's algorithm and the dendrogram construction both rely on a
//! union-find structure. Unions are performed in sequential phases (the
//! batched-Kruskal design, see `parclust-mst`), while the *pruning* passes of
//! MemoGFK read component identities concurrently. We therefore store
//! parents in atomics: `find` (with path halving) requires `&mut self`, and
//! `find_shared` is a read-only, compression-free traversal that is safe to
//! call from many threads between union phases.

use std::sync::atomic::{AtomicU32, Ordering};

/// Disjoint-set forest over `0..n` with union by rank and path halving.
#[derive(Debug)]
pub struct UnionFind {
    parent: Vec<AtomicU32>,
    rank: Vec<u8>,
    components: usize,
}

impl UnionFind {
    pub fn new(n: usize) -> Self {
        assert!(
            n < u32::MAX as usize,
            "UnionFind supports < 2^32-1 elements"
        );
        Self {
            parent: (0..n as u32).map(AtomicU32::new).collect(),
            rank: vec![0; n],
            components: n,
        }
    }

    pub fn len(&self) -> usize {
        self.parent.len()
    }

    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Number of components remaining.
    pub fn components(&self) -> usize {
        self.components
    }

    #[inline]
    fn load(&self, i: u32) -> u32 {
        self.parent[i as usize].load(Ordering::Relaxed)
    }

    /// Find with path halving. Requires exclusive access (sequential phase).
    #[inline]
    pub fn find(&mut self, mut x: u32) -> u32 {
        loop {
            let p = self.load(x);
            if p == x {
                return x;
            }
            let gp = self.load(p);
            // Path halving: point x at its grandparent.
            self.parent[x as usize].store(gp, Ordering::Relaxed);
            x = gp;
        }
    }

    /// Read-only find without path compression. Safe to call concurrently
    /// with other `find_shared` calls (but not with `union`).
    #[inline]
    pub fn find_shared(&self, mut x: u32) -> u32 {
        loop {
            let p = self.load(x);
            if p == x {
                return x;
            }
            x = p;
        }
    }

    /// Union the sets of `a` and `b`; returns `false` if already joined.
    pub fn union(&mut self, a: u32, b: u32) -> bool {
        let ra = self.find(a);
        let rb = self.find(b);
        if ra == rb {
            return false;
        }
        let (hi, lo) = if self.rank[ra as usize] >= self.rank[rb as usize] {
            (ra, rb)
        } else {
            (rb, ra)
        };
        self.parent[lo as usize].store(hi, Ordering::Relaxed);
        if self.rank[hi as usize] == self.rank[lo as usize] {
            self.rank[hi as usize] += 1;
        }
        self.components -= 1;
        true
    }

    /// Whether `a` and `b` are currently in the same set (mutable variant
    /// with compression).
    pub fn same(&mut self, a: u32, b: u32) -> bool {
        self.find(a) == self.find(b)
    }

    /// Read-only same-set test, safe concurrently between union phases.
    pub fn same_shared(&self, a: u32, b: u32) -> bool {
        self.find_shared(a) == self.find_shared(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::prelude::*;
    use rayon::prelude::*;

    #[test]
    fn basic_union_find() {
        let mut uf = UnionFind::new(5);
        assert_eq!(uf.components(), 5);
        assert!(uf.union(0, 1));
        assert!(uf.union(3, 4));
        assert!(!uf.union(1, 0));
        assert!(uf.same(0, 1));
        assert!(!uf.same(1, 2));
        assert_eq!(uf.components(), 3);
        assert!(uf.union(1, 4));
        assert!(uf.same(0, 3));
        assert_eq!(uf.components(), 2);
    }

    #[test]
    fn matches_naive_labels() {
        // Oracle: relabel-everything naive DSU.
        let n = 500;
        let mut rng = StdRng::seed_from_u64(7);
        let mut uf = UnionFind::new(n);
        let mut labels: Vec<usize> = (0..n).collect();
        for _ in 0..800 {
            let a = rng.gen_range(0..n);
            let b = rng.gen_range(0..n);
            uf.union(a as u32, b as u32);
            let (la, lb) = (labels[a], labels[b]);
            if la != lb {
                for l in labels.iter_mut() {
                    if *l == lb {
                        *l = la;
                    }
                }
            }
            // Spot-check a few pairs.
            for _ in 0..10 {
                let x = rng.gen_range(0..n);
                let y = rng.gen_range(0..n);
                assert_eq!(uf.same(x as u32, y as u32), labels[x] == labels[y]);
            }
        }
        let distinct: std::collections::HashSet<usize> = labels.iter().copied().collect();
        assert_eq!(uf.components(), distinct.len());
    }

    #[test]
    fn shared_find_consistent_after_unions() {
        let n = 10_000;
        let mut uf = UnionFind::new(n);
        for i in 0..n - 1 {
            if i % 3 != 0 {
                uf.union(i as u32, (i + 1) as u32);
            }
        }
        // Concurrent read-only queries agree with the mutable finder.
        let roots: Vec<u32> = (0..n as u32)
            .into_par_iter()
            .map(|i| uf.find_shared(i))
            .collect();
        let mut uf2 = uf;
        for i in 0..n as u32 {
            assert_eq!(uf2.find(i), uf2.find(roots[i as usize]));
        }
    }
}
