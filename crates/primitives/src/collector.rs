//! Per-thread output collection for irregular parallel producers.
//!
//! Recursive traversals (WSPD construction, MemoGFK pair retrieval) emit
//! results at unpredictable points of a fork-join computation. A
//! [`Collector`] gives every rayon worker its own buffer — pushes are
//! uncontended — and concatenates the buffers at the end. The output order
//! is nondeterministic across threads; consumers that need determinism sort
//! by a canonical key afterwards (all of ours do).

use parking_lot::Mutex;

/// A fixed set of per-worker buffers.
pub struct Collector<T> {
    shards: Vec<Mutex<Vec<T>>>,
}

impl<T> Default for Collector<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> Collector<T> {
    pub fn new() -> Self {
        // One shard per worker plus one for pushes from outside the pool.
        let shards = (0..rayon::current_num_threads() + 1)
            .map(|_| Mutex::new(Vec::new()))
            .collect();
        Collector { shards }
    }

    /// Shard for the calling thread. The modulo guards against being used
    /// from a pool larger than the one present at construction time.
    #[inline]
    fn shard(&self) -> &Mutex<Vec<T>> {
        let i = rayon::current_thread_index().map_or(self.shards.len() - 1, |i| i);
        &self.shards[i % self.shards.len()]
    }

    /// Append `value` to the current worker's buffer.
    #[inline]
    pub fn push(&self, value: T) {
        self.shard().lock().push(value);
    }

    /// Append many values at once.
    pub fn extend<I: IntoIterator<Item = T>>(&self, values: I) {
        self.shard().lock().extend(values);
    }

    /// Total number of collected items.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().len()).sum()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Concatenate all buffers (must be called after producers finish).
    pub fn into_vec(self) -> Vec<T> {
        let mut total = 0;
        let mut bufs: Vec<Vec<T>> = Vec::with_capacity(self.shards.len());
        for shard in self.shards {
            let buf = shard.into_inner();
            total += buf.len();
            bufs.push(buf);
        }
        let mut out = Vec::with_capacity(total);
        for buf in bufs {
            out.extend(buf);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rayon::prelude::*;

    #[test]
    fn collects_everything() {
        let c: Collector<u64> = Collector::new();
        (0..100_000u64).into_par_iter().for_each(|i| c.push(i));
        assert_eq!(c.len(), 100_000);
        let mut out = c.into_vec();
        out.sort_unstable();
        assert_eq!(out, (0..100_000).collect::<Vec<_>>());
    }

    /// Sharding stays sound when pushes come from more ad-hoc OS threads
    /// than the pool has workers: outside-pool threads have no worker index
    /// (they share the overflow shard) and nothing is lost or duplicated.
    #[test]
    fn adhoc_threads_exceeding_pool_width() {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(2)
            .build()
            .expect("pool");
        let c: Collector<u64> = pool.install(Collector::new);
        assert_eq!(c.shards.len(), 2 + 1, "sized by the installing pool");
        std::thread::scope(|s| {
            // 8 ad-hoc threads (4x the pool width) plus the pool itself.
            for t in 0..8u64 {
                let c = &c;
                s.spawn(move || {
                    for i in 0..1_000 {
                        c.push(t * 1_000 + i);
                    }
                });
            }
            pool.install(|| {
                (8_000..20_000u64).into_par_iter().for_each(|i| c.push(i));
            });
        });
        let mut out = c.into_vec();
        out.sort_unstable();
        assert_eq!(out, (0..20_000).collect::<Vec<_>>());
    }

    /// A collector built inside a *small* pool but fed from a *larger* one:
    /// worker indices exceed the shard count and must wrap, not panic.
    #[test]
    fn pushes_from_wider_pool_than_construction() {
        let small = rayon::ThreadPoolBuilder::new()
            .num_threads(1)
            .build()
            .expect("pool");
        let wide = rayon::ThreadPoolBuilder::new()
            .num_threads(8)
            .build()
            .expect("pool");
        let c: Collector<u32> = small.install(Collector::new);
        wide.install(|| {
            (0..50_000u32).into_par_iter().for_each(|i| c.push(i));
        });
        assert_eq!(c.len(), 50_000);
        let mut out = c.into_vec();
        out.sort_unstable();
        assert_eq!(out, (0..50_000).collect::<Vec<_>>());
    }

    #[test]
    fn push_outside_pool() {
        let c: Collector<u32> = Collector::new();
        c.push(1);
        c.extend([2, 3]);
        let mut out = c.into_vec();
        out.sort_unstable();
        assert_eq!(out, vec![1, 2, 3]);
    }
}
