//! Priority concurrent writes (`WRITE_MIN` / `WRITE_MAX`).
//!
//! The paper assumes a priority concurrent write that, under concurrent
//! writers, keeps the smallest value (Section 2.2, citing Shun et al.
//! [57]). We implement it as a compare-and-swap loop over the IEEE-754 bit
//! pattern; comparisons are performed on the `f64` values so the primitive
//! is correct for negative inputs as well.

use std::sync::atomic::{AtomicU64, Ordering};

/// An `f64` cell supporting `write_min`: concurrent writers race and the
/// minimum value wins. Initialized to `+inf`.
#[derive(Debug)]
pub struct AtomicF64Min(AtomicU64);

impl Default for AtomicF64Min {
    fn default() -> Self {
        Self::new(f64::INFINITY)
    }
}

impl AtomicF64Min {
    pub fn new(v: f64) -> Self {
        Self(AtomicU64::new(v.to_bits()))
    }

    /// `WRITE_MIN`: atomically replace the stored value with `v` if `v` is
    /// smaller. Returns `true` if this call lowered the stored value.
    #[inline]
    pub fn write_min(&self, v: f64) -> bool {
        let mut cur = self.0.load(Ordering::Relaxed);
        loop {
            if f64::from_bits(cur) <= v {
                return false;
            }
            match self.0.compare_exchange_weak(
                cur,
                v.to_bits(),
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return true,
                Err(actual) => cur = actual,
            }
        }
    }

    #[inline]
    pub fn load(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }

    /// Unconditional store; only safe to use outside concurrent phases.
    #[inline]
    pub fn store(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }
}

/// An `f64` cell supporting `write_max`. Initialized to `-inf`.
#[derive(Debug)]
pub struct AtomicF64Max(AtomicU64);

impl Default for AtomicF64Max {
    fn default() -> Self {
        Self::new(f64::NEG_INFINITY)
    }
}

impl AtomicF64Max {
    pub fn new(v: f64) -> Self {
        Self(AtomicU64::new(v.to_bits()))
    }

    /// `WRITE_MAX`: atomically replace the stored value with `v` if larger.
    #[inline]
    pub fn write_max(&self, v: f64) -> bool {
        let mut cur = self.0.load(Ordering::Relaxed);
        loop {
            if f64::from_bits(cur) >= v {
                return false;
            }
            match self.0.compare_exchange_weak(
                cur,
                v.to_bits(),
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return true,
                Err(actual) => cur = actual,
            }
        }
    }

    #[inline]
    pub fn load(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

/// `WRITE_MIN` with an attached payload: keeps the payload of the smallest
/// key seen. A lock-free fast path rejects keys that cannot win before
/// falling back to a short spin lock for the update, so the common
/// (losing) writer never contends.
#[derive(Debug)]
pub struct AtomicMinPair<T> {
    key: AtomicF64Min,
    slot: parking_lot::Mutex<(f64, Option<T>)>,
}

impl<T> Default for AtomicMinPair<T> {
    fn default() -> Self {
        Self {
            key: AtomicF64Min::default(),
            slot: parking_lot::Mutex::new((f64::INFINITY, None)),
        }
    }
}

impl<T: Clone> AtomicMinPair<T> {
    /// Record `(key, payload)` if `key` is strictly smaller than the best
    /// key seen so far.
    pub fn write_min(&self, key: f64, payload: T) {
        // Fast reject: the racy read only ever under-reports the chance of
        // winning, never loses a genuine minimum, because the locked section
        // re-checks.
        if key > self.key.load() {
            return;
        }
        let mut slot = self.slot.lock();
        if key < slot.0 {
            *slot = (key, Some(payload));
            self.key.write_min(key);
        }
    }

    /// Returns the smallest `(key, payload)` recorded, if any.
    pub fn get(&self) -> Option<(f64, T)> {
        let slot = self.slot.lock();
        slot.1.clone().map(|p| (slot.0, p))
    }

    pub fn key(&self) -> f64 {
        self.key.load()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rayon::prelude::*;

    #[test]
    fn write_min_sequential() {
        let m = AtomicF64Min::default();
        assert!(m.write_min(3.0));
        assert!(!m.write_min(4.0));
        assert!(m.write_min(1.5));
        assert_eq!(m.load(), 1.5);
    }

    #[test]
    fn write_min_negative_values() {
        let m = AtomicF64Min::default();
        m.write_min(-1.0);
        m.write_min(-3.5);
        m.write_min(2.0);
        assert_eq!(m.load(), -3.5);
    }

    #[test]
    fn write_min_concurrent() {
        let m = AtomicF64Min::default();
        (0..100_000u64).into_par_iter().for_each(|i| {
            m.write_min(((i * 2654435761) % 1_000_003) as f64);
        });
        let want = (0..100_000u64)
            .map(|i| ((i * 2654435761) % 1_000_003) as f64)
            .fold(f64::INFINITY, f64::min);
        assert_eq!(m.load(), want);
    }

    #[test]
    fn write_max_concurrent() {
        let m = AtomicF64Max::default();
        (0..50_000u64).into_par_iter().for_each(|i| {
            m.write_max((i % 9973) as f64);
        });
        assert_eq!(m.load(), 9972.0);
    }

    #[test]
    fn min_pair_keeps_argmin() {
        let m: AtomicMinPair<u64> = AtomicMinPair::default();
        (0..100_000u64).into_par_iter().for_each(|i| {
            let key = ((i * 48271) % 65_537) as f64;
            m.write_min(key, i);
        });
        let (key, payload) = m.get().unwrap();
        assert_eq!(key, (payload * 48271 % 65_537) as f64);
        let want = (0..100_000u64)
            .map(|i| ((i * 48271) % 65_537) as f64)
            .fold(f64::INFINITY, f64::min);
        assert_eq!(key, want);
    }

    #[test]
    fn min_pair_empty() {
        let m: AtomicMinPair<u32> = AtomicMinPair::default();
        assert!(m.get().is_none());
        assert_eq!(m.key(), f64::INFINITY);
    }
}
