//! Concurrency pinning for dynamic models: one mutator thread applies
//! insert batches through a [`DynModelHandle`] while reader threads keep
//! routing queries through registry snapshots. The contract under test is
//! the one the HTTP layer relies on:
//!
//! * readers only ever observe **complete** published versions — never a
//!   half-applied batch (every observed point count is exactly one the
//!   mutation sequence produces, and the handle's labeling agrees with
//!   its point count);
//! * each reader sees point counts advance **monotonically** (publishes
//!   happen under the mutation lock, in version order);
//! * a **held** handle is immutable: later publishes never change what an
//!   old snapshot answers.

use parclust::Point;
use parclust_dyn::DynConfig;
use parclust_serve::dynamic::wrap_artifact_path;
use parclust_serve::{ClusterModel, LabelingSpec, ModelRegistry};
use rand::prelude::*;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

const BASE_N: usize = 60;
const STEPS: usize = 24;
const INSERTS_PER_STEP: usize = 2;
const READERS: usize = 4;

fn blob_points(n: usize, seed: u64) -> Vec<Point<2>> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| Point([rng.gen_range(-5.0..5.0), rng.gen_range(-5.0..5.0)]))
        .collect()
}

fn tmp(name: &str) -> std::path::PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("parclust-dynconc-{}-{name}", std::process::id()));
    p
}

#[test]
fn readers_see_only_complete_monotone_versions_while_a_mutator_runs() {
    let registry = Arc::new(ModelRegistry::new());
    let base = ClusterModel::build(&blob_points(BASE_N, 11), 4, 3);
    let path = tmp("base.pcsm");
    base.save(&path).unwrap();
    let entry = wrap_artifact_path(&path, DynConfig::default()).unwrap();
    std::fs::remove_file(&path).ok();
    registry.insert_dynamic("m", Arc::clone(&entry)).unwrap();

    let spec = LabelingSpec::Eom {
        cluster_selection_epsilon: 0.0,
    };

    // Held-snapshot baseline, captured before any mutation.
    let held = registry.snapshot().get("m").unwrap();
    let held_n = held.num_points();
    let held_labels = held.labeling(spec).labels.clone();
    assert_eq!(held_n, BASE_N);

    let done = AtomicBool::new(false);
    std::thread::scope(|s| {
        // The only writer: insert-only batches, so the live count is
        // strictly increasing and every complete version has a count of
        // the form BASE_N + step * INSERTS_PER_STEP.
        let mutator = {
            let registry = Arc::clone(&registry);
            let entry = Arc::clone(&entry);
            let done = &done;
            s.spawn(move || {
                let mut rng = StdRng::seed_from_u64(0xD7_CAFE);
                for _ in 0..STEPS {
                    let flat: Vec<f64> = (0..INSERTS_PER_STEP * 2)
                        .map(|_| rng.gen_range(-5.0..5.0))
                        .collect();
                    let before = entry.version();
                    entry
                        .mutate(&registry, "m", &flat, &[])
                        .expect("insert batch");
                    assert_eq!(entry.version(), before + 1, "versions bump by one");
                }
                done.store(true, Ordering::Release);
            })
        };

        let readers: Vec<_> = (0..READERS)
            .map(|r| {
                let registry = Arc::clone(&registry);
                let done = &done;
                s.spawn(move || {
                    let mut last_n = 0usize;
                    let mut observed = 0usize;
                    while !done.load(Ordering::Acquire) || observed == 0 {
                        let handle = registry.snapshot().get("m").expect("model stays loaded");
                        let n = handle.num_points();
                        // Complete versions only: the count is one the
                        // insert-only sequence actually produces...
                        assert_eq!(
                            (n - BASE_N) % INSERTS_PER_STEP,
                            0,
                            "reader {r} saw a torn point count {n}"
                        );
                        assert!(n <= BASE_N + STEPS * INSERTS_PER_STEP);
                        // ...and the handle is internally consistent: its
                        // labeling covers exactly its own points.
                        assert_eq!(
                            handle.labeling(spec).labels.len(),
                            n,
                            "reader {r}: labeling and point count disagree"
                        );
                        // Publishes happen in version order, so each
                        // reader's view only moves forward.
                        assert!(n >= last_n, "reader {r} went backwards: {last_n} -> {n}");
                        last_n = n;
                        observed += 1;
                    }
                })
            })
            .collect();

        mutator.join().unwrap();
        for h in readers {
            h.join().unwrap();
        }
    });

    // Every batch landed and was published.
    let final_handle = registry.snapshot().get("m").unwrap();
    assert_eq!(final_handle.num_points(), BASE_N + STEPS * INSERTS_PER_STEP);
    assert_eq!(entry.version(), 1 + STEPS as u64);

    // The snapshot held across all of it is untouched.
    assert_eq!(held.num_points(), held_n);
    assert_eq!(held.labeling(spec).labels, held_labels);
}
