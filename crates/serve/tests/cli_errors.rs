//! Error-path contract for the `serve` and `loadgen` binaries: bad input
//! must produce a one-line diagnostic on stderr and a nonzero exit code,
//! never a panic backtrace. Exit 2 means "the command line was wrong",
//! exit 1 means "the command line was fine but the work failed" (IO,
//! connect, malformed data) — scripts and CI distinguish the two.

use std::process::{Command, Output};

fn run(bin: &str, args: &[&str]) -> Output {
    Command::new(bin)
        .args(args)
        .output()
        .expect("spawn CLI under test")
}

fn stderr(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

/// Every failure in this suite must be a clean diagnostic, not a panic:
/// no unwind chatter on stderr, and the requested exit code.
fn assert_clean_failure(out: &Output, expect_code: i32, needle: &str) {
    let err = stderr(out);
    assert_eq!(
        out.status.code(),
        Some(expect_code),
        "expected exit {expect_code}, got {:?}; stderr:\n{err}",
        out.status.code()
    );
    assert!(err.contains(needle), "stderr missing {needle:?}:\n{err}");
    for marker in ["panicked", "RUST_BACKTRACE", "unwrap", "thread '"] {
        assert!(
            !err.contains(marker),
            "stderr looks like a panic (found {marker:?}):\n{err}"
        );
    }
}

const SERVE: &str = env!("CARGO_BIN_EXE_serve");
const LOADGEN: &str = env!("CARGO_BIN_EXE_loadgen");

#[test]
fn serve_unknown_generator_is_a_usage_error() {
    let out = run(SERVE, &["build", "--gen", "fractal", "--out", "/dev/null"]);
    assert_clean_failure(&out, 2, "unknown generator \"fractal\"");
}

#[test]
fn serve_gps_generator_requires_three_dims() {
    let out = run(
        SERVE,
        &["build", "--gen", "gps", "--dims", "2", "--out", "/dev/null"],
    );
    assert_clean_failure(&out, 2, "--gen gps is 3-dimensional");
}

#[test]
fn serve_unparseable_flag_value_is_a_usage_error() {
    let out = run(SERVE, &["build", "--n", "lots", "--out", "/dev/null"]);
    assert_clean_failure(&out, 2, "invalid value \"lots\" for --n");
}

#[test]
fn serve_unsupported_dims_is_a_usage_error() {
    let out = run(SERVE, &["gen-points", "--dims", "4", "--out", "/dev/null"]);
    assert_clean_failure(&out, 2, "unsupported dimensionality 4");
}

#[test]
fn serve_missing_model_file_is_a_runtime_error() {
    let out = run(
        SERVE,
        &[
            "serve",
            "--model",
            "/nonexistent/model.pcsm",
            "--addr",
            "127.0.0.1:0",
        ],
    );
    assert_clean_failure(&out, 1, "load /nonexistent/model.pcsm");
}

#[test]
fn serve_missing_models_dir_is_a_runtime_error() {
    let out = run(
        SERVE,
        &[
            "serve",
            "--models-dir",
            "/nonexistent-dir",
            "--addr",
            "127.0.0.1:0",
        ],
    );
    assert_clean_failure(&out, 1, "scan /nonexistent-dir");
}

#[test]
fn serve_missing_manifest_is_a_runtime_error() {
    let out = run(
        SERVE,
        &[
            "serve",
            "--manifest",
            "/nonexistent/models.json",
            "--addr",
            "127.0.0.1:0",
        ],
    );
    assert_clean_failure(&out, 1, "manifest /nonexistent/models.json");
}

#[test]
fn serve_query_missing_model_is_a_runtime_error() {
    let out = run(SERVE, &["query", "--model", "/nonexistent/model.pcsm"]);
    assert_clean_failure(&out, 1, "read /nonexistent/model.pcsm");
}

#[test]
fn serve_build_missing_points_file_is_a_runtime_error() {
    let out = run(
        SERVE,
        &[
            "build",
            "--points-file",
            "/nonexistent/points.pcls",
            "--out",
            "/dev/null",
        ],
    );
    assert_clean_failure(&out, 1, "read /nonexistent/points.pcls");
}

#[test]
fn serve_no_subcommand_prints_usage() {
    let out = run(SERVE, &[]);
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr(&out).contains("usage:"));
}

#[test]
fn loadgen_unknown_mix_kind_is_rejected_before_connecting() {
    // Deliberately points at a dead address: validation must fire first.
    let out = run(
        LOADGEN,
        &["--addr", "127.0.0.1:1", "--mix", "cut,frobnicate"],
    );
    assert_clean_failure(&out, 2, "unknown mix kind \"frobnicate\"");
}

#[test]
fn loadgen_empty_mix_is_rejected() {
    let out = run(LOADGEN, &["--addr", "127.0.0.1:1", "--mix", ", ,"]);
    assert_clean_failure(&out, 2, "--mix must name at least one");
}

#[test]
fn loadgen_unparseable_flag_value_is_a_usage_error() {
    let out = run(LOADGEN, &["--connections", "many"]);
    assert_clean_failure(&out, 2, "invalid value \"many\" for --connections");
}

#[test]
fn loadgen_unreachable_server_is_a_runtime_error() {
    // Port 1 is essentially never listening; connect must fail cleanly.
    let out = run(LOADGEN, &["--addr", "127.0.0.1:1", "--requests", "1"]);
    assert_clean_failure(&out, 1, "connect 127.0.0.1:1");
}
