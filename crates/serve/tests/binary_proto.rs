//! Property tests for the binary batch assignment protocol: randomized
//! frames must round-trip encode→decode exactly, and truncated, bit-flipped,
//! or misaddressed frames must be rejected with errors — never panics and
//! never silently wrong decodes (mirroring the PR 3 artifact corruption
//! proptests; the case count honors `PROPTEST_CASES`).

use parclust_serve::{AssignRequest, AssignResponse, LabelingSpec};
use proptest::prelude::*;

fn spec_strategy() -> impl Strategy<Value = LabelingSpec> {
    (0u8..3, 0.0f64..100.0, 0usize..1000).prop_map(|(tag, x, k)| match tag {
        0 => LabelingSpec::Eom {
            cluster_selection_epsilon: x,
        },
        1 => LabelingSpec::Cut { eps: x },
        _ => LabelingSpec::CutK { k },
    })
}

fn request_strategy() -> impl Strategy<Value = AssignRequest> {
    (
        prop::collection::vec(0u8..36, 1..20),
        spec_strategy(),
        0.0f64..1e12,
        1u32..6,
        prop::collection::vec(-1e9f64..1e9, 0..120),
    )
        .prop_map(|(id_raw, spec, max_dist, dims, mut coords)| {
            // Ids from the registry's charset.
            const CHARS: &[u8] = b"abcdefghijklmnopqrstuvwxyz0123456789";
            let model_id: String = id_raw.iter().map(|&i| CHARS[i as usize] as char).collect();
            coords.truncate(coords.len() - coords.len() % dims as usize);
            AssignRequest {
                model_id,
                spec,
                max_dist,
                dims,
                coords,
            }
        })
}

proptest! {
    #[test]
    fn request_roundtrips_exactly(req in request_strategy()) {
        let frame = req.encode();
        let back = AssignRequest::decode(&frame).unwrap();
        prop_assert_eq!(&back, &req);
        // Float equality above is value equality; pin bit equality too
        // (the wire format must not normalize -0.0 or denormals).
        for (a, b) in back.coords.iter().zip(&req.coords) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn response_roundtrips_exactly(
        labels in prop::collection::vec(0u32..50, 0..200),
        seed in 0u64..1000,
    ) {
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(seed);
        let n = labels.len();
        let resp = AssignResponse {
            labels: labels.clone(),
            neighbors: (0..n).map(|_| rng.gen_range(0u32..1_000_000)).collect(),
            distances: (0..n).map(|_| rng.gen_range(-1.0f64..1e9)).collect(),
        };
        let back = AssignResponse::decode(&resp.encode()).unwrap();
        prop_assert_eq!(back, resp);
    }

    #[test]
    fn truncated_request_frames_are_rejected(
        req in request_strategy(),
        cut_frac in 0.0f64..1.0,
    ) {
        let frame = req.encode();
        let cut = ((frame.len() as f64 * cut_frac) as usize).min(frame.len() - 1);
        prop_assert!(AssignRequest::decode(&frame[..cut]).is_err());
    }

    #[test]
    fn bitflipped_request_frames_are_rejected(
        req in request_strategy(),
        pos_frac in 0.0f64..1.0,
        bit in 0u8..8,
    ) {
        let mut frame = req.encode();
        let pos = ((frame.len() as f64 * pos_frac) as usize).min(frame.len() - 1);
        frame[pos] ^= 1 << bit;
        // Any single-bit flip breaks the checksum (or, landing in the
        // checksum itself, the comparison): the decode must fail cleanly.
        prop_assert!(AssignRequest::decode(&frame).is_err());
    }

    #[test]
    fn bitflipped_response_frames_are_rejected(
        n in 0usize..100,
        pos_frac in 0.0f64..1.0,
        bit in 0u8..8,
    ) {
        let resp = AssignResponse {
            labels: vec![1; n],
            neighbors: vec![2; n],
            distances: vec![0.5; n],
        };
        let mut frame = resp.encode();
        let pos = ((frame.len() as f64 * pos_frac) as usize).min(frame.len() - 1);
        frame[pos] ^= 1 << bit;
        prop_assert!(AssignResponse::decode(&frame).is_err());
    }

    #[test]
    fn garbage_is_rejected(bytes in prop::collection::vec(0u8..255, 0..300)) {
        // Random byte soup essentially never carries a valid FNV trailer.
        prop_assert!(AssignRequest::decode(&bytes).is_err());
        prop_assert!(AssignResponse::decode(&bytes).is_err());
    }
}

/// The wrong-model-id rejection lives at the routing layer (the frame
/// itself is valid); pin it over a real socket with randomized ids.
#[test]
fn wrong_model_id_requests_are_rejected_end_to_end() {
    use parclust::Point;
    use parclust_serve::{
        start, Client, ClusterModel, EngineHandle, ModelRegistry, QueryEngine, ServerConfig,
    };
    use std::sync::Arc;

    let pts: Vec<Point<2>> = (0..40)
        .map(|i| Point([(i % 8) as f64, (i / 8) as f64]))
        .collect();
    let registry = Arc::new(ModelRegistry::new());
    registry
        .insert(
            "right",
            Arc::new(EngineHandle::new(Arc::new(QueryEngine::new(Arc::new(
                ClusterModel::build(&pts, 3, 3),
            ))))),
        )
        .unwrap();
    let server = start(Arc::clone(&registry), &ServerConfig::default()).unwrap();
    let mut client = Client::connect(server.addr()).unwrap();
    let make_frame = |id: &str| {
        AssignRequest {
            model_id: id.into(),
            spec: LabelingSpec::CutK { k: 2 },
            max_dist: f64::INFINITY,
            dims: 2,
            coords: vec![1.0, 1.0],
        }
        .encode()
    };
    // Correct id answers; every wrong id (including prefixes/suffixes and
    // an id that exists nowhere) is a 400, and the connection survives.
    let (status, body) = client
        .post_binary("/models/right/assign_binary", &make_frame("right"))
        .unwrap();
    assert_eq!(status, 200, "{}", String::from_utf8_lossy(&body));
    assert_eq!(AssignResponse::decode(&body).unwrap().labels.len(), 1);
    for wrong in ["wrong", "righ", "rightx", "RIGHT", "r"] {
        let (status, _) = client
            .post_binary("/models/right/assign_binary", &make_frame(wrong))
            .unwrap();
        assert_eq!(status, 400, "id {wrong:?} must be rejected");
    }
    // And a valid frame addressed at a model the registry never loaded.
    let (status, _) = client
        .post_binary("/models/ghost/assign_binary", &make_frame("ghost"))
        .unwrap();
    assert_eq!(status, 404);
    drop(client);
    server.shutdown();
}
