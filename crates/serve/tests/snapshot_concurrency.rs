//! Concurrency stress for the snapshot labeling cache: many ad-hoc threads
//! hammer one engine with overlapping `LabelingSpec`s (deliberately more
//! distinct specs than the cache cap, so copy-on-write publishes AND
//! generation resets race with reads). Every answer must be bit-identical
//! to the single-threaded ground truth, and no thread may ever observe a
//! torn snapshot — a cache state that is not one of the writer-linearized
//! publishes.

use parclust::Point;
use parclust_serve::engine::LABELING_CACHE_CAP;
use parclust_serve::{ClusterModel, LabelingSpec, QueryEngine};
use rand::prelude::*;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

fn blobs(per: usize, seed: u64) -> Vec<Point<2>> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut pts = Vec::new();
    for &(cx, cy) in &[(0.0, 0.0), (30.0, 0.0), (0.0, 30.0), (30.0, 30.0)] {
        for _ in 0..per {
            pts.push(Point([
                cx + rng.gen_range(-2.0..2.0),
                cy + rng.gen_range(-2.0..2.0),
            ]));
        }
    }
    pts
}

/// The overlapping spec workload: more distinct specs than the cache cap so
/// the stress run crosses at least one generation reset.
fn spec_pool() -> Vec<LabelingSpec> {
    let mut specs = Vec::new();
    for i in 0..(LABELING_CACHE_CAP + 8) {
        // All distinct (the pool must overflow the 64-entry cap).
        specs.push(match i % 3 {
            0 => LabelingSpec::Cut {
                eps: 0.5 + i as f64 * 0.37,
            },
            1 => LabelingSpec::CutK { k: 1 + i },
            _ => LabelingSpec::Eom {
                cluster_selection_epsilon: i as f64 * 0.8,
            },
        });
    }
    specs
}

#[test]
fn concurrent_overlapping_specs_are_bit_identical_and_snapshots_never_tear() {
    let pts = blobs(50, 31);
    let specs = spec_pool();

    // Single-threaded ground truth from an independent engine.
    let truth_engine = QueryEngine::new(Arc::new(ClusterModel::build(&pts, 5, 6)));
    let truth: Vec<_> = specs.iter().map(|&s| truth_engine.labeling(s)).collect();

    let engine = Arc::new(QueryEngine::new(Arc::new(ClusterModel::build(&pts, 5, 6))));
    let threads = 16;
    let iters = 400;
    let max_generation = Arc::new(AtomicU64::new(0));

    let handles: Vec<_> = (0..threads)
        .map(|t| {
            let engine = Arc::clone(&engine);
            let specs = specs.clone();
            let truth: Vec<Vec<u32>> = truth.iter().map(|l| l.labels.clone()).collect();
            let max_generation = Arc::clone(&max_generation);
            std::thread::spawn(move || {
                let mut rng = StdRng::seed_from_u64(1000 + t as u64);
                let mut last_seen = (0u64, 0usize); // (generation, len)
                for _ in 0..iters {
                    // Overlap heavily on a hot subset, occasionally reach
                    // into the cold tail to force publishes and resets.
                    let idx = if rng.gen_bool(0.8) {
                        rng.gen_range(0..8)
                    } else {
                        rng.gen_range(0..specs.len())
                    };
                    let labeling = engine.labeling(specs[idx]);
                    // Bit-identity with the single-threaded answer.
                    assert_eq!(labeling.spec, specs[idx]);
                    assert_eq!(labeling.labels, truth[idx], "spec {:?}", specs[idx]);

                    // Snapshot tear check: every observable cache state must
                    // be internally consistent and writer-ordered.
                    let snap = engine.cache_snapshot();
                    assert!(
                        snap.entries.len() <= LABELING_CACHE_CAP,
                        "snapshot overgrew the cap"
                    );
                    let mut seen = Vec::new();
                    for (spec, labeling) in &snap.entries {
                        // An entry always pairs a spec with ITS labeling
                        // (a torn publish would break this).
                        assert_eq!(*spec, labeling.spec, "entry/labeling spec mismatch");
                        assert!(!seen.contains(spec), "duplicate spec in one snapshot");
                        seen.push(*spec);
                    }
                    // Publishes are linearized: per-thread observations of
                    // (generation, len) advance lexicographically — within
                    // a generation the entry list is append-only.
                    let now = (snap.generation, snap.entries.len());
                    assert!(
                        now.0 > last_seen.0 || (now.0 == last_seen.0 && now.1 >= last_seen.1),
                        "snapshot went backwards: {last_seen:?} -> {now:?}"
                    );
                    last_seen = now;
                    max_generation.fetch_max(snap.generation, Ordering::Relaxed);
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("stress thread panicked");
    }

    // The workload crossed the cap (otherwise the reset path went untested).
    assert!(
        max_generation.load(Ordering::Relaxed) >= 1,
        "spec pool must overflow the cache at least once"
    );
    // Misses computed each spec at most once per generation: with G
    // generations observed, the computation count can never exceed
    // (G+1) * distinct specs — and must cover at least the distinct hot
    // set. (Exactly-once-per-spec within a generation is the snapshot
    // cell's single-writer guarantee.)
    let generations = engine.cache_snapshot().generation + 1;
    let computed = engine.labelings_computed();
    assert!(
        computed <= generations * specs.len() as u64,
        "{computed} computations across {generations} generations for {} specs",
        specs.len()
    );
}

/// Readers pinned on an old snapshot keep a fully valid view while writers
/// publish past them — immutability of published snapshots under load.
#[test]
fn held_snapshots_stay_valid_across_publishes() {
    let pts = blobs(30, 32);
    let engine = Arc::new(QueryEngine::new(Arc::new(ClusterModel::build(&pts, 4, 5))));
    engine.labeling(LabelingSpec::CutK { k: 2 });
    let pinned = engine.cache_snapshot();
    let pinned_len = pinned.entries.len();
    let pinned_labels: Vec<Vec<u32>> = pinned
        .entries
        .iter()
        .map(|(_, l)| l.labels.clone())
        .collect();

    // Blow through the cap from other threads (two full generations).
    let handles: Vec<_> = (0..4)
        .map(|t| {
            let engine = Arc::clone(&engine);
            std::thread::spawn(move || {
                for i in 0..(2 * LABELING_CACHE_CAP) {
                    engine.labeling(LabelingSpec::Cut {
                        eps: 0.01 + (t * 1000 + i) as f64 * 0.013,
                    });
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }

    // The pinned snapshot is untouched, entry for entry.
    assert_eq!(pinned.entries.len(), pinned_len);
    for ((spec, labeling), want) in pinned.entries.iter().zip(&pinned_labels) {
        assert_eq!(*spec, labeling.spec);
        assert_eq!(&labeling.labels, want);
    }
}
