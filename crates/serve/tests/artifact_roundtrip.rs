//! Property tests for the model artifact: persistence must be invisible to
//! queries (labels and assignment answers identical before/after a
//! save/load round-trip), and corrupt or truncated files must be rejected
//! with errors, never panics or silently wrong models.

use parclust::Point;
use parclust_serve::{ClusterModel, LabelingSpec, QueryEngine};
use proptest::prelude::*;
use rand::prelude::*;
use std::sync::Arc;

fn clumpy_points_2d(max_n: usize) -> impl Strategy<Value = Vec<Point<2>>> {
    prop::collection::vec((0i32..30, 0i32..30, 0u8..4), 1..max_n).prop_map(|raw| {
        raw.into_iter()
            .map(|(x, y, jitter)| {
                Point([
                    x as f64 + jitter as f64 * 0.25,
                    y as f64 - jitter as f64 * 0.125,
                ])
            })
            .collect()
    })
}

fn tmp(tag: &str) -> std::path::PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!(
        "parclust-roundtrip-{}-{tag}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    p
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn queries_identical_across_persistence(
        pts in clumpy_points_2d(120),
        min_pts in 1usize..8,
        seed in 0u64..1000,
    ) {
        let model = ClusterModel::build(&pts, min_pts, 3);
        let path = tmp("prop");
        model.save(&path).unwrap();
        let reloaded = ClusterModel::<2>::load(&path).unwrap();
        std::fs::remove_file(&path).ok();

        let before = QueryEngine::new(Arc::new(model));
        let after = QueryEngine::new(Arc::new(reloaded));
        let specs = [
            LabelingSpec::Eom { cluster_selection_epsilon: 0.0 },
            LabelingSpec::Eom { cluster_selection_epsilon: 2.0 },
            LabelingSpec::Cut { eps: 1.0 },
            LabelingSpec::Cut { eps: 5.5 },
            LabelingSpec::CutK { k: 3 },
        ];
        for spec in specs {
            let a = before.labeling(spec);
            let b = after.labeling(spec);
            prop_assert_eq!(&a.labels, &b.labels, "{:?}", spec);
            prop_assert_eq!(a.num_clusters, b.num_clusters);
        }
        // Out-of-sample assignment answers survive persistence bit-for-bit.
        let mut rng = StdRng::seed_from_u64(seed);
        let queries: Vec<Point<2>> = (0..32)
            .map(|_| Point([rng.gen_range(-5.0..35.0), rng.gen_range(-5.0..35.0)]))
            .collect();
        let spec = LabelingSpec::Eom { cluster_selection_epsilon: 0.0 };
        let got_a = before.assign_batch(&queries, spec, 10.0);
        let got_b = after.assign_batch(&queries, spec, 10.0);
        prop_assert_eq!(got_a, got_b);
    }

    #[test]
    fn truncated_files_are_rejected(
        pts in clumpy_points_2d(60),
        cut_frac in 0.0f64..1.0,
    ) {
        let model = ClusterModel::build(&pts, 3, 3);
        let path = tmp("trunc");
        model.save(&path).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        std::fs::remove_file(&path).ok();
        let cut = ((bytes.len() as f64 * cut_frac) as usize).min(bytes.len() - 1);
        prop_assert!(ClusterModel::<2>::from_bytes(&bytes[..cut]).is_err());
    }

    #[test]
    fn bitflipped_files_are_rejected(
        pts in clumpy_points_2d(60),
        pos_frac in 0.0f64..1.0,
        bit in 0u8..8,
    ) {
        let model = ClusterModel::build(&pts, 3, 3);
        let path = tmp("flip");
        model.save(&path).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        std::fs::remove_file(&path).ok();
        let pos = ((bytes.len() as f64 * pos_frac) as usize).min(bytes.len() - 1);
        bytes[pos] ^= 1 << bit;
        // Any single-bit flip breaks the checksum (or, if it lands in the
        // checksum itself, the comparison) — the load must fail cleanly.
        prop_assert!(ClusterModel::<2>::from_bytes(&bytes).is_err());
    }
}

#[test]
fn empty_file_and_garbage_are_rejected() {
    assert!(ClusterModel::<2>::from_bytes(&[]).is_err());
    assert!(ClusterModel::<2>::from_bytes(b"PCSM").is_err());
    assert!(ClusterModel::<2>::from_bytes(&[0u8; 64]).is_err());
    let garbage: Vec<u8> = (0..255u8).cycle().take(4096).collect();
    assert!(ClusterModel::<2>::from_bytes(&garbage).is_err());
}
