//! HTTP end-to-end coverage for the mutation surface and the admin
//! error paths:
//!
//! * happy path — `/admin/load` with `"dynamic": true`, then
//!   `POST /models/{id}/insert` whose served labeling must equal a
//!   from-scratch model built on the mutated point set, then
//!   `POST /admin/compact` (a rebase, not a semantic change) whose saved
//!   wrapper hot-loads under a new id with identical answers;
//! * error paths — malformed or truncated admin bodies answer
//!   `400` with a JSON `error` field on the wire (regression for the
//!   close-with-unread-data RST race that used to destroy the queued
//!   400 before the peer could read it), and mutation routes distinguish
//!   read-only (400) from unknown (404) models.

use parclust::{Point, NOISE};
use parclust_serve::{
    start, Client, ClusterModel, EngineHandle, LabelingSpec, ModelRegistry, QueryEngine,
    ServerConfig,
};
use rand::prelude::*;
use serde_json::Value;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

fn blob_points(n: usize, seed: u64) -> Vec<Point<2>> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| Point([rng.gen_range(-5.0..5.0), rng.gen_range(-5.0..5.0)]))
        .collect()
}

fn tmp(name: &str) -> std::path::PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("parclust-dynhttp-{}-{name}", std::process::id()));
    p
}

fn start_server(registry: Arc<ModelRegistry>) -> parclust_serve::Server {
    start(
        registry,
        &ServerConfig {
            addr: "127.0.0.1:0".into(),
            workers: 2,
            pool_threads: 1,
        },
    )
    .unwrap()
}

fn signed_labels(v: &Value) -> Vec<i64> {
    v.as_array()
        .expect("labels array")
        .iter()
        .map(|l| l.as_i64().expect("integer label"))
        .collect()
}

fn to_signed(labels: &[u32]) -> Vec<i64> {
    labels
        .iter()
        .map(|&l| if l == NOISE { -1 } else { l as i64 })
        .collect()
}

/// Write `request` raw on a fresh socket, half-close, and collect the
/// server's full answer: `(status, body JSON)`. The server tears these
/// connections down after answering, so EOF delimits the response.
fn raw_roundtrip(addr: std::net::SocketAddr, request: &[u8]) -> (u16, Value) {
    let mut s = TcpStream::connect(addr).unwrap();
    s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    s.write_all(request).unwrap();
    s.shutdown(std::net::Shutdown::Write).unwrap();
    let mut raw = Vec::new();
    s.read_to_end(&mut raw)
        .expect("response survives the close");
    let text = String::from_utf8_lossy(&raw);
    let status: u16 = text
        .strip_prefix("HTTP/1.1 ")
        .and_then(|r| r.get(..3))
        .and_then(|c| c.parse().ok())
        .unwrap_or_else(|| panic!("unparsable status line in {text:?}"));
    let body = text
        .split_once("\r\n\r\n")
        .map(|(_, b)| b)
        .unwrap_or_default();
    let body =
        serde_json::from_str(body).unwrap_or_else(|e| panic!("non-JSON error body {body:?}: {e}"));
    (status, body)
}

#[test]
fn insert_and_compact_over_http_match_a_scratch_build() {
    let pts = blob_points(70, 31);
    let base_path = tmp("base.pcsm");
    ClusterModel::build(&pts, 4, 3).save(&base_path).unwrap();

    let server = start_server(Arc::new(ModelRegistry::new()));
    let mut client = Client::connect(server.addr()).unwrap();

    // Hot-load the artifact as a dynamic model.
    let (status, loaded) = client
        .post(
            "/admin/load",
            &serde_json::json!({
                "id": "live",
                "path": base_path.to_str().unwrap(),
                "dynamic": true,
                "policy": "auto",
            }),
        )
        .unwrap();
    assert_eq!(status, 200, "{loaded}");
    std::fs::remove_file(&base_path).ok();

    // Mutate: drop live index 0, add two points near the data.
    let (status, report) = client
        .post(
            "/models/live/insert",
            &serde_json::json!({
                "points": [[0.25, 0.5], [-1.5, 2.0]],
                "deletes": [0u64],
            }),
        )
        .unwrap();
    assert_eq!(status, 200, "{report}");
    assert_eq!(report.get("version").and_then(Value::as_u64), Some(2));
    assert_eq!(report.get("n").and_then(Value::as_u64), Some(71));

    // The served labeling equals a from-scratch model on the mutated
    // point set (deletes compact first, inserts append).
    let mut expected_pts: Vec<Point<2>> = pts[1..].to_vec();
    expected_pts.push(Point([0.25, 0.5]));
    expected_pts.push(Point([-1.5, 2.0]));
    let scratch = QueryEngine::new(Arc::new(ClusterModel::build(&expected_pts, 4, 3)));
    let want = scratch.labeling(LabelingSpec::Eom {
        cluster_selection_epsilon: 0.0,
    });
    let (status, eom) = client
        .post(
            "/models/live/eom",
            &serde_json::json!({"cluster_selection_epsilon": 0.0}),
        )
        .unwrap();
    assert_eq!(status, 200);
    let served = signed_labels(eom.get("labels").unwrap());
    assert_eq!(served, to_signed(&want.labels));

    // Compaction rebases the journal without changing answers, and the
    // saved wrapper hot-loads under a new id with the same labeling.
    let wrapper_path = tmp("compacted.pcdy");
    let (status, compacted) = client
        .post(
            "/admin/compact",
            &serde_json::json!({
                "id": "live",
                "save_path": wrapper_path.to_str().unwrap(),
            }),
        )
        .unwrap();
    assert_eq!(status, 200, "{compacted}");
    assert_eq!(
        compacted.get("journal_batches").and_then(Value::as_u64),
        Some(0)
    );
    let (status, eom_after) = client
        .post(
            "/models/live/eom",
            &serde_json::json!({"cluster_selection_epsilon": 0.0}),
        )
        .unwrap();
    assert_eq!(status, 200);
    assert_eq!(signed_labels(eom_after.get("labels").unwrap()), served);

    let (status, _) = client
        .post(
            "/admin/load",
            &serde_json::json!({"id": "replayed", "path": wrapper_path.to_str().unwrap()}),
        )
        .unwrap();
    assert_eq!(status, 200);
    std::fs::remove_file(&wrapper_path).ok();
    let (status, eom_replayed) = client
        .post(
            "/models/replayed/eom",
            &serde_json::json!({"cluster_selection_epsilon": 0.0}),
        )
        .unwrap();
    assert_eq!(status, 200);
    assert_eq!(signed_labels(eom_replayed.get("labels").unwrap()), served);

    drop(client);
    server.shutdown();
}

#[test]
fn mutation_routes_distinguish_read_only_from_unknown_models() {
    let registry = Arc::new(ModelRegistry::new());
    let engine = Arc::new(QueryEngine::new(Arc::new(ClusterModel::build(
        &blob_points(40, 32),
        3,
        3,
    ))));
    registry
        .insert("frozen", Arc::new(EngineHandle::new(engine)))
        .unwrap();
    let server = start_server(registry);
    let mut client = Client::connect(server.addr()).unwrap();

    // A model loaded read-only refuses mutations with 400...
    let batch = serde_json::json!({"points": [[1.0, 1.0]]});
    let (status, body) = client.post("/models/frozen/insert", &batch).unwrap();
    assert_eq!(status, 400, "{body}");
    assert!(body.get("error").is_some());
    let (status, _) = client
        .post("/admin/compact", &serde_json::json!({"id": "frozen"}))
        .unwrap();
    assert_eq!(status, 400);

    // ...while an unknown id is 404, and a missing id is 400.
    let (status, _) = client.post("/models/nope/insert", &batch).unwrap();
    assert_eq!(status, 404);
    let (status, _) = client
        .post("/admin/compact", &serde_json::json!({"id": "nope"}))
        .unwrap();
    assert_eq!(status, 404);
    let (status, _) = client
        .post("/admin/compact", &serde_json::json!({}))
        .unwrap();
    assert_eq!(status, 400);

    // Malformed insert payloads are clean 400s too.
    for bad in [
        serde_json::json!({"points": "not an array"}),
        serde_json::json!({"points": [[1.0]]}),
        serde_json::json!({"deletes": [-3i64]}),
        serde_json::json!({}),
    ] {
        let (status, body) = client.post("/models/frozen/insert", &bad).unwrap();
        assert_eq!(status, 400, "{bad} -> {body}");
    }

    drop(client);
    server.shutdown();
}

#[test]
fn malformed_admin_bodies_answer_400_json_not_a_dropped_connection() {
    let server = start_server(Arc::new(ModelRegistry::new()));
    let addr = server.addr();

    // Body that is not JSON at all.
    let garbage = b"{this is not json";
    let req = format!(
        "POST /admin/load HTTP/1.1\r\nHost: t\r\nContent-Type: application/json\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n",
        garbage.len()
    );
    let mut raw = req.into_bytes();
    raw.extend_from_slice(garbage);
    let (status, body) = raw_roundtrip(addr, &raw);
    assert_eq!(status, 400);
    assert!(body.get("error").is_some(), "{body}");

    // Unparsable Content-Length.
    let (status, body) = raw_roundtrip(
        addr,
        b"POST /admin/load HTTP/1.1\r\nHost: t\r\nContent-Length: banana\r\n\r\n",
    );
    assert_eq!(status, 400);
    assert!(body.get("error").is_some(), "{body}");

    // Admin unload with a body missing the required id.
    let mut client = Client::connect(addr).unwrap();
    let (status, body) = client
        .post("/admin/unload", &serde_json::json!({}))
        .unwrap();
    assert_eq!(status, 400);
    assert!(body.get("error").is_some(), "{body}");
    drop(client);

    server.shutdown();
}

#[test]
fn truncated_and_oversized_bodies_still_deliver_the_400() {
    let server = start_server(Arc::new(ModelRegistry::new()));
    let addr = server.addr();

    // Truncated body: the declared length never arrives, the client
    // half-closes, and the 400 must still make it back.
    let (status, body) = raw_roundtrip(
        addr,
        b"POST /admin/load HTTP/1.1\r\nHost: t\r\nContent-Length: 5000\r\n\r\n{\"id\":",
    );
    assert_eq!(status, 400);
    assert!(body.get("error").is_some(), "{body}");

    // Oversized declared body: rejected before reading it. The client
    // keeps streaming payload the server will never parse — without the
    // bounded post-error drain, closing on that unread data sends RST
    // and destroys the queued 400 before the peer can read it.
    let mut s = TcpStream::connect(addr).unwrap();
    s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    s.write_all(b"POST /admin/load HTTP/1.1\r\nHost: t\r\nContent-Length: 999999999999\r\n\r\n")
        .unwrap();
    let chunk = [b'x'; 4096];
    for _ in 0..16 {
        if s.write_all(&chunk).is_err() {
            break; // server already hung up; the response is buffered
        }
    }
    let _ = s.shutdown(std::net::Shutdown::Write);
    let mut raw = Vec::new();
    s.read_to_end(&mut raw)
        .expect("400 survives close with in-flight body");
    let text = String::from_utf8_lossy(&raw);
    assert!(
        text.starts_with("HTTP/1.1 400"),
        "expected a 400 status line, got {text:?}"
    );
    assert!(text.contains("error"), "JSON error body expected: {text:?}");

    server.shutdown();
}
