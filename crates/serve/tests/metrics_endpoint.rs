//! End-to-end test of the `/metrics` observability layer over real
//! sockets: drive a known request mix, scrape, and check the Prometheus
//! families against exact expected counts.

use parclust::Point;
use parclust_serve::{
    start, Client, ClusterModel, EngineHandle, ModelRegistry, QueryEngine, Server, ServerConfig,
};
use rand::prelude::*;
use std::sync::Arc;

fn blob_server() -> Server {
    let mut rng = StdRng::seed_from_u64(11);
    let pts: Vec<Point<2>> = (0..150)
        .map(|_| Point([rng.gen_range(-5.0..5.0), rng.gen_range(-5.0..5.0)]))
        .collect();
    let model = Arc::new(ClusterModel::build(&pts, 5, 10));
    let engine = Arc::new(QueryEngine::new(model));
    let registry = Arc::new(ModelRegistry::new());
    registry
        .insert("blobs", Arc::new(EngineHandle::new(engine)))
        .unwrap();
    start(
        registry,
        &ServerConfig {
            addr: "127.0.0.1:0".into(),
            workers: 2,
            pool_threads: 1,
        },
    )
    .expect("start server")
}

/// Parse one sample's value out of the exposition text by exact line
/// prefix (series name + label set).
fn sample(text: &str, prefix: &str) -> Option<f64> {
    text.lines()
        .find(|l| l.starts_with(prefix) && l.as_bytes().get(prefix.len()) == Some(&b' '))
        .and_then(|l| l[prefix.len() + 1..].trim().parse().ok())
}

#[test]
fn metrics_scrape_reports_exact_counters_and_histograms() {
    let server = blob_server();
    let mut client = Client::connect(server.addr()).unwrap();

    // A fixed mix: 3 healthz, 2 cuts (default-model route), 1 eom via the
    // multi-model route, 1 info.
    for _ in 0..3 {
        assert_eq!(client.get("/healthz").unwrap().0, 200);
    }
    for eps in [1.0, 2.0] {
        let (status, _) = client
            .post(
                "/cut",
                &serde_json::json!({"eps": eps, "include_labels": false}),
            )
            .unwrap();
        assert_eq!(status, 200);
    }
    let (status, _) = client
        .post(
            "/models/blobs/eom",
            &serde_json::json!({"include_labels": false}),
        )
        .unwrap();
    assert_eq!(status, 200);
    assert_eq!(client.get("/models/blobs").unwrap().0, 200);

    let (status, text) = client.get_text("/metrics").unwrap();
    assert_eq!(status, 200);

    // Exact request counters, per (model, route).
    assert_eq!(
        sample(
            &text,
            "parclust_requests_total{model=\"-\",route=\"healthz\"}"
        ),
        Some(3.0)
    );
    assert_eq!(
        sample(
            &text,
            "parclust_requests_total{model=\"blobs\",route=\"cut\"}"
        ),
        Some(2.0)
    );
    assert_eq!(
        sample(
            &text,
            "parclust_requests_total{model=\"blobs\",route=\"eom\"}"
        ),
        Some(1.0)
    );
    assert_eq!(
        sample(
            &text,
            "parclust_requests_total{model=\"blobs\",route=\"info\"}"
        ),
        Some(1.0)
    );
    // Gauges: the only request in flight is the scrape itself (it renders
    // before its own `finish`); one model loaded.
    assert_eq!(sample(&text, "parclust_in_flight_requests"), Some(1.0));
    assert_eq!(sample(&text, "parclust_models_loaded"), Some(1.0));
    assert_eq!(
        sample(&text, "parclust_malformed_requests_total"),
        Some(0.0)
    );
    // Histogram totals match the per-route request counts, and the +Inf
    // bucket equals the count (every observation lands somewhere).
    assert_eq!(
        sample(
            &text,
            "parclust_request_duration_seconds_count{route=\"cut\"}"
        ),
        Some(2.0)
    );
    assert_eq!(
        sample(
            &text,
            "parclust_request_duration_seconds_bucket{route=\"cut\",le=\"+Inf\"}"
        ),
        Some(2.0)
    );
    assert!(
        sample(
            &text,
            "parclust_request_duration_seconds_sum{route=\"cut\"}"
        )
        .unwrap()
            > 0.0
    );
    // Families carry TYPE headers (what Prometheus actually parses).
    for family in [
        "# TYPE parclust_requests_total counter",
        "# TYPE parclust_in_flight_requests gauge",
        "# TYPE parclust_malformed_requests_total counter",
        "# TYPE parclust_request_duration_seconds histogram",
        "# TYPE parclust_models_loaded gauge",
    ] {
        assert!(text.contains(family), "missing {family:?} in:\n{text}");
    }

    // Scrapes are monotone: another request strictly advances its counter
    // and the scrape itself shows up under the metrics route.
    assert_eq!(client.get("/healthz").unwrap().0, 200);
    let (_, text2) = client.get_text("/metrics").unwrap();
    assert_eq!(
        sample(
            &text2,
            "parclust_requests_total{model=\"-\",route=\"healthz\"}"
        ),
        Some(4.0)
    );
    assert_eq!(
        sample(
            &text2,
            "parclust_requests_total{model=\"-\",route=\"metrics\"}"
        ),
        Some(1.0)
    );

    drop(client);
    server.shutdown();
}

#[test]
fn malformed_requests_move_only_the_malformed_counter_labels() {
    let server = blob_server();
    let mut client = Client::connect(server.addr()).unwrap();

    // 4xx answers: bad body on a real route, an unknown route, an unknown
    // model id. Each counts as malformed; the unknown id folds into the
    // "-" model label so junk paths cannot grow metric cardinality.
    let (status, _) = client
        .post("/cut", &serde_json::json!({"eps": "not-a-number"}))
        .unwrap();
    assert_eq!(status, 400);
    assert_eq!(client.get("/no/such/route").unwrap().0, 404);
    let (status, _) = client
        .post(
            "/models/ghost/eom",
            &serde_json::json!({"include_labels": false}),
        )
        .unwrap();
    assert_eq!(status, 404);

    let (_, text) = client.get_text("/metrics").unwrap();
    assert_eq!(
        sample(&text, "parclust_malformed_requests_total"),
        Some(3.0)
    );
    assert_eq!(
        sample(
            &text,
            "parclust_requests_total{model=\"blobs\",route=\"cut\"}"
        ),
        Some(1.0),
        "a 400 on a resolved model still counts under that model"
    );
    assert_eq!(
        sample(
            &text,
            "parclust_requests_total{model=\"-\",route=\"other\"}"
        ),
        Some(1.0)
    );
    assert_eq!(
        sample(&text, "parclust_requests_total{model=\"-\",route=\"eom\"}"),
        Some(1.0)
    );
    assert!(
        !text.contains("model=\"ghost\""),
        "unknown ids must not mint label values:\n{text}"
    );

    drop(client);
    server.shutdown();
}
