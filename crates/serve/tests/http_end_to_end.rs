//! End-to-end test of the serving stack over real sockets: build a model,
//! save + load it, serve it over HTTP, and check every route's answers
//! against direct engine calls.

use parclust::{Point, NOISE};
use parclust_serve::{
    start, AssignRequest, AssignResponse, Client, ClusterModel, EngineHandle, LabelingSpec,
    ModelRegistry, QueryEngine, ServerConfig,
};
use rand::prelude::*;
use serde_json::Value;
use std::sync::Arc;

/// Registry with `engine` as the default model under `id`.
fn single_model_registry<const D: usize>(
    id: &str,
    engine: Arc<QueryEngine<D>>,
) -> Arc<ModelRegistry> {
    let registry = Arc::new(ModelRegistry::new());
    registry
        .insert(id, Arc::new(EngineHandle::new(engine)))
        .unwrap();
    registry
}

fn three_blobs(per: usize, seed: u64) -> Vec<Point<2>> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut pts = Vec::new();
    for &(cx, cy) in &[(0.0, 0.0), (80.0, 0.0), (0.0, 80.0)] {
        for _ in 0..per {
            pts.push(Point([
                cx + rng.gen_range(-2.0..2.0),
                cy + rng.gen_range(-2.0..2.0),
            ]));
        }
    }
    pts
}

fn signed_labels(v: &Value) -> Vec<i64> {
    v.as_array()
        .expect("labels array")
        .iter()
        .map(|l| l.as_i64().expect("integer label"))
        .collect()
}

fn to_signed(labels: &[u32]) -> Vec<i64> {
    labels
        .iter()
        .map(|&l| if l == NOISE { -1 } else { l as i64 })
        .collect()
}

#[test]
fn serves_flat_cuts_eom_and_assignment_over_http() {
    let pts = three_blobs(80, 5);
    let built = ClusterModel::build(&pts, 5, 10);

    // Persist + reload: the server must answer from the loaded artifact.
    let mut path = std::env::temp_dir();
    path.push(format!("parclust-e2e-{}.pcsm", std::process::id()));
    built.save(&path).unwrap();
    let model = Arc::new(ClusterModel::<2>::load(&path).unwrap());
    std::fs::remove_file(&path).ok();

    let engine = Arc::new(QueryEngine::new(Arc::clone(&model)));
    let server = start(
        single_model_registry("blobs", Arc::clone(&engine)),
        &ServerConfig {
            addr: "127.0.0.1:0".into(),
            workers: 3,
            pool_threads: 2,
        },
    )
    .expect("start server");
    let addr = server.addr();

    let mut client = Client::connect(addr).expect("connect");

    // Liveness + metadata.
    let (status, health) = client.get("/healthz").unwrap();
    assert_eq!(status, 200);
    assert_eq!(health.get("status").and_then(Value::as_str), Some("ok"));
    let (status, info) = client.get("/model").unwrap();
    assert_eq!(status, 200);
    assert_eq!(info.get("n").and_then(Value::as_u64), Some(240));
    assert_eq!(info.get("dims").and_then(Value::as_u64), Some(2));
    assert_eq!(info.get("min_pts").and_then(Value::as_u64), Some(5));

    // Flat cut at eps: matches the engine exactly, noise encoded as -1.
    let (status, cut) = client
        .post("/cut", &serde_json::json!({"eps": 20.0}))
        .unwrap();
    assert_eq!(status, 200);
    let want = engine.labeling(LabelingSpec::Cut { eps: 20.0 });
    assert_eq!(cut.get("num_clusters").and_then(Value::as_u64), Some(3));
    assert_eq!(
        signed_labels(cut.get("labels").unwrap()),
        to_signed(&want.labels)
    );

    // Exact-k cut without labels.
    let (status, k2) = client
        .post(
            "/cut",
            &serde_json::json!({"k": 2u64, "include_labels": false}),
        )
        .unwrap();
    assert_eq!(status, 200);
    assert_eq!(k2.get("num_clusters").and_then(Value::as_u64), Some(2));
    assert!(k2.get("labels").is_none());

    // EOM with cluster_selection_epsilon.
    for eps in [0.0, 5.0] {
        let (status, eom) = client
            .post(
                "/eom",
                &serde_json::json!({"cluster_selection_epsilon": eps}),
            )
            .unwrap();
        assert_eq!(status, 200);
        let want = engine.labeling(LabelingSpec::Eom {
            cluster_selection_epsilon: eps,
        });
        assert_eq!(
            eom.get("num_clusters").and_then(Value::as_u64),
            Some(want.num_clusters as u64),
            "eps={eps}"
        );
        assert_eq!(
            signed_labels(eom.get("labels").unwrap()),
            to_signed(&want.labels)
        );
    }

    // Out-of-sample assignment: batch over HTTP equals the engine.
    let queries = [[1.0, -1.0], [79.0, 1.5], [2.0, 81.0], [40.0, 40.0]];
    let body = serde_json::json!({
        "points": queries.as_slice(),
        "max_dist": 15.0,
    });
    let (status, assigned) = client.post("/assign", &body).unwrap();
    assert_eq!(status, 200, "{assigned}");
    let want = engine.assign_batch(
        &queries.map(Point),
        LabelingSpec::Eom {
            cluster_selection_epsilon: 0.0,
        },
        15.0,
    );
    let got = signed_labels(assigned.get("labels").unwrap());
    assert_eq!(
        got,
        to_signed(&want.iter().map(|a| a.label).collect::<Vec<_>>())
    );
    // The three blob queries land in three distinct clusters; the centroid
    // query is farther than max_dist from everything → noise.
    assert_eq!(got[3], -1);
    let mut blob_labels = got[..3].to_vec();
    blob_labels.sort_unstable();
    blob_labels.dedup();
    assert_eq!(blob_labels.len(), 3);

    // Assignment under a cut labeling.
    let (status, under_cut) = client
        .post(
            "/assign",
            &serde_json::json!({
                "points": [[1.0, -1.0]],
                "labeling": serde_json::json!({"eps": 20.0}),
            }),
        )
        .unwrap();
    assert_eq!(status, 200);
    let want = engine.assign_batch(
        &[Point([1.0, -1.0])],
        LabelingSpec::Cut { eps: 20.0 },
        f64::INFINITY,
    );
    assert_eq!(
        signed_labels(under_cut.get("labels").unwrap())[0],
        to_signed(&[want[0].label])[0]
    );

    // Error paths: bad JSON, missing parameters, unknown routes.
    let (status, err) = client
        .post("/cut", &serde_json::json!({"eps": "fast"}))
        .unwrap();
    assert_eq!(status, 400);
    assert!(err.get("error").is_some());
    let (status, _) = client.post("/cut", &serde_json::json!({})).unwrap();
    assert_eq!(status, 400);
    let (status, _) = client
        .post("/assign", &serde_json::json!({"points": [[1.0]]}))
        .unwrap();
    assert_eq!(status, 400, "wrong arity");
    let (status, _) = client.get("/nope").unwrap();
    assert_eq!(status, 404);

    // Concurrent clients on separate connections.
    let handles: Vec<_> = (0..4)
        .map(|i| {
            std::thread::spawn(move || {
                let mut c = Client::connect(addr).expect("connect");
                for j in 0..10 {
                    let eps = 5.0 + ((i * 10 + j) % 7) as f64;
                    let (status, v) = c
                        .post(
                            "/cut",
                            &serde_json::json!({"eps": eps, "include_labels": false}),
                        )
                        .unwrap();
                    assert_eq!(status, 200);
                    assert!(v.get("num_clusters").and_then(Value::as_u64).unwrap() >= 1);
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("client thread");
    }

    drop(client);
    server.shutdown();
}

#[test]
fn malformed_http_is_survivable() {
    let pts = three_blobs(20, 9);
    let engine = Arc::new(QueryEngine::new(Arc::new(ClusterModel::build(&pts, 3, 5))));
    let server = start(
        single_model_registry("m", engine),
        &ServerConfig {
            addr: "127.0.0.1:0".into(),
            workers: 1,
            pool_threads: 1,
        },
    )
    .unwrap();
    let addr = server.addr();
    // Raw garbage on the socket must not take the worker down.
    {
        use std::io::Write;
        let mut s = std::net::TcpStream::connect(addr).unwrap();
        s.write_all(b"NOT HTTP AT ALL\r\n\r\n").unwrap();
    }
    // The server still answers real requests afterwards.
    let mut client = Client::connect(addr).unwrap();
    let (status, _) = client.get("/healthz").unwrap();
    assert_eq!(status, 200);
    drop(client);
    server.shutdown();
}

#[test]
fn multi_model_routing_admin_and_binary_protocol() {
    // Two models of different shapes behind one server.
    let pts_a = three_blobs(60, 21);
    let engine_a = Arc::new(QueryEngine::new(Arc::new(ClusterModel::build(
        &pts_a, 5, 8,
    ))));
    let mut rng = StdRng::seed_from_u64(22);
    let pts_b: Vec<Point<3>> = (0..120)
        .map(|i| {
            let cx = if i % 2 == 0 { 0.0 } else { 40.0 };
            Point([
                cx + rng.gen_range(-1.5..1.5),
                rng.gen_range(-1.5..1.5),
                rng.gen_range(-1.5..1.5),
            ])
        })
        .collect();
    let engine_b = Arc::new(QueryEngine::new(Arc::new(ClusterModel::build(
        &pts_b, 4, 6,
    ))));

    let registry = single_model_registry("flat2d", Arc::clone(&engine_a));
    registry
        .insert("deep3d", Arc::new(EngineHandle::new(Arc::clone(&engine_b))))
        .unwrap();
    let server = start(
        Arc::clone(&registry),
        &ServerConfig {
            addr: "127.0.0.1:0".into(),
            workers: 2,
            pool_threads: 2,
        },
    )
    .unwrap();
    let addr = server.addr();
    let mut client = Client::connect(addr).unwrap();

    // Index lists both models; the first insert is the default.
    let (status, index) = client.get("/models").unwrap();
    assert_eq!(status, 200);
    let models = index.get("models").and_then(Value::as_array).unwrap();
    assert_eq!(models.len(), 2);
    assert_eq!(index.get("default").and_then(Value::as_str), Some("flat2d"));

    // Per-model info routes see distinct shapes.
    let (_, info_a) = client.get("/models/flat2d").unwrap();
    let (_, info_b) = client.get("/models/deep3d").unwrap();
    assert_eq!(info_a.get("dims").and_then(Value::as_u64), Some(2));
    assert_eq!(info_b.get("dims").and_then(Value::as_u64), Some(3));

    // POST straight at a model (no action segment) is an unknown route.
    let (status, _) = client
        .post("/models/deep3d", &serde_json::json!({"eps": 10.0}))
        .unwrap();
    assert_eq!(status, 404);
    // Per-model queries answer from their own engine.
    let (status, cut_b) = client
        .post(
            "/models/deep3d/cut",
            &serde_json::json!({"eps": 10.0, "include_labels": false}),
        )
        .unwrap();
    assert_eq!(status, 200, "{cut_b}");
    let want_b = engine_b.labeling(LabelingSpec::Cut { eps: 10.0 });
    assert_eq!(
        cut_b.get("num_clusters").and_then(Value::as_u64),
        Some(want_b.num_clusters as u64)
    );

    // Unknown model id.
    let (status, _) = client.get("/models/nope").unwrap();
    assert_eq!(status, 404);

    // Binary protocol against the 3D model.
    let queries: Vec<f64> = vec![0.2, 0.1, -0.3, 39.8, 0.4, 0.2, 500.0, 500.0, 500.0];
    let frame = AssignRequest {
        model_id: "deep3d".into(),
        spec: LabelingSpec::Cut { eps: 10.0 },
        max_dist: 20.0,
        dims: 3,
        coords: queries.clone(),
    }
    .encode();
    let (status, body) = client
        .post_binary("/models/deep3d/assign_binary", &frame)
        .unwrap();
    assert_eq!(status, 200, "{}", String::from_utf8_lossy(&body));
    let resp = AssignResponse::decode(&body).unwrap();
    let want = engine_b.assign_batch(
        &[
            Point([0.2, 0.1, -0.3]),
            Point([39.8, 0.4, 0.2]),
            Point([500.0, 500.0, 500.0]),
        ],
        LabelingSpec::Cut { eps: 10.0 },
        20.0,
    );
    for (i, a) in want.iter().enumerate() {
        assert_eq!(resp.labels[i], a.label);
        assert_eq!(resp.neighbors[i], a.neighbor);
        assert_eq!(resp.distances[i].to_bits(), a.distance.to_bits());
    }
    assert_eq!(resp.labels[2], NOISE, "far query exceeds max_dist");

    // Wrong-model-id frames and dimension mismatches are rejected.
    let (status, _) = client
        .post_binary("/models/flat2d/assign_binary", &frame)
        .unwrap();
    assert_eq!(status, 400, "frame for deep3d routed at flat2d");
    let bad_dims = AssignRequest {
        model_id: "flat2d".into(),
        spec: LabelingSpec::CutK { k: 2 },
        max_dist: f64::INFINITY,
        dims: 3,
        coords: vec![0.0, 0.0, 0.0],
    }
    .encode();
    let (status, _) = client
        .post_binary("/models/flat2d/assign_binary", &bad_dims)
        .unwrap();
    assert_eq!(status, 400);
    // Corrupt frames answer 400, not a dropped connection.
    let mut corrupt = frame.clone();
    corrupt[10] ^= 0x40;
    let (status, _) = client
        .post_binary("/models/deep3d/assign_binary", &corrupt)
        .unwrap();
    assert_eq!(status, 400);

    // Admin: persist a model, hot-load it under a new id, flip the
    // default, query it, unload it.
    let mut path = std::env::temp_dir();
    path.push(format!("parclust-admin-{}.pcsm", std::process::id()));
    engine_a.model().save(&path).unwrap();
    let (status, loaded) = client
        .post(
            "/admin/load",
            &serde_json::json!({
                "id": "hot",
                "path": path.to_str().unwrap(),
                "default": true,
            }),
        )
        .unwrap();
    assert_eq!(status, 200, "{loaded}");
    std::fs::remove_file(&path).ok();
    let (_, index) = client.get("/models").unwrap();
    assert_eq!(index.get("default").and_then(Value::as_str), Some("hot"));
    assert_eq!(
        index.get("models").and_then(Value::as_array).unwrap().len(),
        3
    );
    // The legacy routes now resolve to the hot-loaded model.
    let (status, info) = client.get("/model").unwrap();
    assert_eq!(status, 200);
    assert_eq!(info.get("n").and_then(Value::as_u64), Some(180));
    let (status, _) = client
        .post("/admin/unload", &serde_json::json!({"id": "hot"}))
        .unwrap();
    assert_eq!(status, 200);
    let (status, _) = client.get("/models/hot").unwrap();
    assert_eq!(status, 404);
    // Unloading twice is a clean 404.
    let (status, _) = client
        .post("/admin/unload", &serde_json::json!({"id": "hot"}))
        .unwrap();
    assert_eq!(status, 404);
    // Loading a nonexistent path is a clean 400.
    let (status, _) = client
        .post(
            "/admin/load",
            &serde_json::json!({"id": "ghost", "path": "/nonexistent/x.pcsm"}),
        )
        .unwrap();
    assert_eq!(status, 400);

    drop(client);
    server.shutdown();
}
