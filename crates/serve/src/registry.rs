//! Multi-model registry: the server loads N named artifacts, routes
//! queries by model id, and hot-loads/unloads models at runtime without
//! interrupting in-flight queries.
//!
//! [`ClusterModel`] is generic over the point dimension, so the registry
//! type-erases each loaded model behind the object-safe [`ModelHandle`]
//! trait — the HTTP layer and the binary protocol only ever speak flat
//! coordinate slices and dimension-free [`Labeling`]s. The id → handle map
//! itself is an immutable [`RegistrySnapshot`] published through a
//! [`SnapshotCell`]: routing a request is lock-free, and an admin
//! load/unload publishes a new snapshot without stalling readers.
//!
//! Three ways to populate a registry:
//!
//! * [`ModelRegistry::load_path`] — one artifact, explicit id;
//! * [`ModelRegistry::load_dir`] — scan a directory for `*.pcsm`, ids from
//!   file stems;
//! * [`ModelRegistry::load_manifest`] — a JSON manifest pinning ids, paths,
//!   and the default model:
//!   `{"models": [{"id": "a", "path": "a.pcsm"}, ...], "default": "a"}`.

use crate::artifact::{peek_dims, ClusterModel};
use crate::dynamic::DynModelHandle;
use crate::engine::{Assignment, Labeling, LabelingSpec, QueryEngine};
use crate::snapshot::SnapshotCell;
use crate::with_model_dims;
use parclust_geom::Point;
use serde_json::Value;
use std::io;
use std::path::Path;
use std::sync::Arc;

/// Longest accepted model id; ids are also restricted to
/// `[A-Za-z0-9._-]` so they can appear verbatim in URL paths.
pub const MAX_MODEL_ID: usize = 128;

/// Check a model id for the registry's charset/length rules.
pub fn validate_model_id(id: &str) -> Result<(), String> {
    if id.is_empty() || id.len() > MAX_MODEL_ID {
        return Err(format!(
            "model id must be 1..={MAX_MODEL_ID} bytes, got {}",
            id.len()
        ));
    }
    if !id
        .bytes()
        .all(|b| b.is_ascii_alphanumeric() || matches!(b, b'.' | b'_' | b'-'))
    {
        return Err(format!(
            "model id {id:?} holds characters outside [A-Za-z0-9._-]"
        ));
    }
    Ok(())
}

/// A dimension-erased, servable model: everything the HTTP layer needs,
/// object-safe so models of different dimensionality share one registry.
pub trait ModelHandle: Send + Sync {
    /// Point dimensionality of the underlying model.
    fn dims(&self) -> usize;
    /// Number of training points.
    fn num_points(&self) -> usize;
    /// Model metadata as served by `GET /models/{id}`.
    fn info(&self) -> Value;
    /// Compute-or-fetch a labeling (delegates to the engine's snapshot
    /// cache).
    fn labeling(&self, spec: LabelingSpec) -> Arc<Labeling>;
    /// Batched out-of-sample assignment over row-major flat coordinates
    /// (`dims()` per point), fanned out on `pool`. `flat.len()` must be a
    /// multiple of `dims()`.
    fn assign_flat(
        &self,
        flat: &[f64],
        spec: LabelingSpec,
        max_dist: f64,
        pool: &rayon::ThreadPool,
    ) -> Vec<Assignment>;
    /// Labelings computed so far (cache-miss counter, for tests/metrics).
    fn labelings_computed(&self) -> u64;
}

/// [`ModelHandle`] over a [`QueryEngine`] of fixed dimension.
pub struct EngineHandle<const D: usize> {
    engine: Arc<QueryEngine<D>>,
}

impl<const D: usize> EngineHandle<D> {
    pub fn new(engine: Arc<QueryEngine<D>>) -> Self {
        EngineHandle { engine }
    }

    pub fn engine(&self) -> &Arc<QueryEngine<D>> {
        &self.engine
    }
}

impl<const D: usize> ModelHandle for EngineHandle<D> {
    fn dims(&self) -> usize {
        D
    }

    fn num_points(&self) -> usize {
        self.engine.model().len()
    }

    fn info(&self) -> Value {
        let m = self.engine.model();
        let bbox = m.bbox();
        serde_json::json!({
            "n": m.len() as u64,
            "dims": D as u64,
            "min_pts": m.min_pts as u64,
            "min_cluster_size": m.min_cluster_size as u64,
            "condensed_clusters": m.condensed.num_clusters() as u64,
            "format_version": crate::artifact::FORMAT_VERSION,
            "bbox_lo": bbox.lo.coords().to_vec(),
            "bbox_hi": bbox.hi.coords().to_vec(),
        })
    }

    fn labeling(&self, spec: LabelingSpec) -> Arc<Labeling> {
        self.engine.labeling(spec)
    }

    fn assign_flat(
        &self,
        flat: &[f64],
        spec: LabelingSpec,
        max_dist: f64,
        pool: &rayon::ThreadPool,
    ) -> Vec<Assignment> {
        assert_eq!(flat.len() % D, 0, "flat coords must be whole {D}D points");
        let queries: Vec<Point<D>> = flat
            .chunks_exact(D)
            .map(|c| {
                let mut p = [0.0; D];
                p.copy_from_slice(c);
                Point(p)
            })
            .collect();
        pool.install(|| self.engine.assign_batch(&queries, spec, max_dist))
    }

    fn labelings_computed(&self) -> u64 {
        self.engine.labelings_computed()
    }
}

/// Wrap a loaded model in a fresh engine + handle.
pub fn handle_for_model<const D: usize>(model: ClusterModel<D>) -> Arc<dyn ModelHandle> {
    Arc::new(EngineHandle::new(Arc::new(QueryEngine::new(Arc::new(
        model,
    )))))
}

/// One immutable registry state: id-sorted models plus the default id the
/// legacy single-model routes resolve to.
#[derive(Default)]
pub struct RegistrySnapshot {
    /// `(id, handle)`, sorted by id (binary-searchable).
    pub models: Vec<(String, Arc<dyn ModelHandle>)>,
    /// Target of the legacy `/cut`-style routes; always present in
    /// `models` when `Some`.
    pub default_id: Option<String>,
}

impl RegistrySnapshot {
    pub fn get(&self, id: &str) -> Option<Arc<dyn ModelHandle>> {
        self.models
            .binary_search_by(|(mid, _)| mid.as_str().cmp(id))
            .ok()
            .map(|i| Arc::clone(&self.models[i].1))
    }

    pub fn default_handle(&self) -> Option<(&str, Arc<dyn ModelHandle>)> {
        let id = self.default_id.as_deref()?;
        Some((id, self.get(id)?))
    }
}

/// The mutable face: insert/remove publish new [`RegistrySnapshot`]s;
/// lookups are lock-free snapshot reads.
pub struct ModelRegistry {
    snap: SnapshotCell<RegistrySnapshot>,
    /// Mutation-capable side table: ids whose query handles are
    /// republished by a [`DynModelHandle`]. Same copy-on-write discipline
    /// as the model map; the insert/compact routes look dynamics up here
    /// while query traffic keeps resolving through `snap`.
    dynamics: SnapshotCell<Vec<(String, Arc<dyn DynModelHandle>)>>,
}

impl Default for ModelRegistry {
    fn default() -> Self {
        Self::new()
    }
}

impl ModelRegistry {
    pub fn new() -> Self {
        ModelRegistry {
            snap: SnapshotCell::new(RegistrySnapshot::default()),
            dynamics: SnapshotCell::new(Vec::new()),
        }
    }

    /// Current snapshot (route against this; it cannot change underfoot).
    pub fn snapshot(&self) -> Arc<RegistrySnapshot> {
        self.snap.load()
    }

    /// Insert or replace a model. The first inserted model becomes the
    /// default unless one was already chosen.
    pub fn insert(&self, id: &str, handle: Arc<dyn ModelHandle>) -> Result<(), String> {
        validate_model_id(id)?;
        self.snap.update(|cur| {
            let mut models = cur.models.clone();
            match models.binary_search_by(|(mid, _)| mid.as_str().cmp(id)) {
                Ok(i) => models[i].1 = handle,
                Err(i) => models.insert(i, (id.to_string(), handle)),
            }
            let default_id = cur.default_id.clone().or_else(|| Some(id.to_string()));
            (
                Some(Arc::new(RegistrySnapshot { models, default_id })),
                Ok(()),
            )
        })
    }

    /// Register `id` as dynamic and publish its current query handle.
    /// Subsequent mutations through the handle republish `id` themselves.
    pub fn insert_dynamic(&self, id: &str, dh: Arc<dyn DynModelHandle>) -> Result<(), String> {
        validate_model_id(id)?;
        self.insert(id, dh.query_handle())?;
        self.dynamics.update(|cur| {
            let mut list = cur.to_vec();
            match list.binary_search_by(|(mid, _)| mid.as_str().cmp(id)) {
                Ok(i) => list[i].1 = dh,
                Err(i) => list.insert(i, (id.to_string(), dh)),
            }
            (Some(Arc::new(list)), ())
        });
        Ok(())
    }

    /// The mutation handle behind `id`, if it was loaded as dynamic.
    pub fn dynamic(&self, id: &str) -> Option<Arc<dyn DynModelHandle>> {
        let list = self.dynamics.load();
        list.binary_search_by(|(mid, _)| mid.as_str().cmp(id))
            .ok()
            .map(|i| Arc::clone(&list[i].1))
    }

    /// Remove a model; in-flight queries holding its handle finish
    /// unharmed. Removing the default clears (or reassigns) the default to
    /// the first remaining id.
    pub fn remove(&self, id: &str) -> bool {
        self.dynamics.update(
            |cur| match cur.binary_search_by(|(mid, _)| mid.as_str().cmp(id)) {
                Ok(i) => {
                    let mut list = cur.to_vec();
                    list.remove(i);
                    (Some(Arc::new(list)), ())
                }
                Err(_) => (None, ()),
            },
        );
        self.snap.update(|cur| {
            let Ok(i) = cur.models.binary_search_by(|(mid, _)| mid.as_str().cmp(id)) else {
                return (None, false);
            };
            let mut models = cur.models.clone();
            models.remove(i);
            let default_id = match &cur.default_id {
                Some(d) if d == id => models.first().map(|(mid, _)| mid.clone()),
                other => other.clone(),
            };
            (
                Some(Arc::new(RegistrySnapshot { models, default_id })),
                true,
            )
        })
    }

    /// Pin the default model (must already be loaded).
    pub fn set_default(&self, id: &str) -> Result<(), String> {
        self.snap.update(|cur| {
            if cur.get(id).is_none() {
                return (None, Err(format!("no model {id:?} loaded")));
            }
            (
                Some(Arc::new(RegistrySnapshot {
                    models: cur.models.clone(),
                    default_id: Some(id.to_string()),
                })),
                Ok(()),
            )
        })
    }

    /// Load one artifact under `id`, dispatching on the artifact's stored
    /// dimensionality. `"PCDY"` dynamic wrappers register as dynamic
    /// models (journal replayed); plain `"PCSM"` artifacts load read-only.
    pub fn load_path(&self, id: &str, path: &Path) -> io::Result<()> {
        validate_model_id(id).map_err(invalid)?;
        let mut head = [0u8; 4];
        {
            use std::io::Read as _;
            std::fs::File::open(path)?.read_exact(&mut head)?;
        }
        if &head == crate::dynamic::DYN_MAGIC {
            let dh = crate::dynamic::load_dynamic_path(path)?;
            return self.insert_dynamic(id, dh).map_err(invalid);
        }
        let dims = peek_dims(path)?;
        // Guard before the macro: with_model_dims! panics on dimensions the
        // workspace doesn't monomorphize, but a hot-load of a corrupt or
        // foreign artifact must stay a clean error.
        if !crate::SUPPORTED_DIMS.contains(&dims) {
            return Err(invalid(format!(
                "artifact {} has unsupported dimensionality {dims} (supported: {:?})",
                path.display(),
                crate::SUPPORTED_DIMS
            )));
        }
        let handle = with_model_dims!(dims, |D| handle_for_model(ClusterModel::<D>::load(path)?));
        self.insert(id, handle).map_err(invalid)
    }

    /// Scan `dir` for `*.pcsm` artifacts; each loads under its file stem.
    /// Returns the ids loaded (sorted). Files that fail to load abort the
    /// scan with the error.
    pub fn load_dir(&self, dir: &Path) -> io::Result<Vec<String>> {
        let mut entries: Vec<_> = std::fs::read_dir(dir)?
            .collect::<io::Result<Vec<_>>>()?
            .into_iter()
            .map(|e| e.path())
            .filter(|p| p.extension().is_some_and(|x| x == "pcsm"))
            .collect();
        entries.sort();
        let mut ids = Vec::new();
        for path in entries {
            let id = path
                .file_stem()
                .and_then(|s| s.to_str())
                // analyze:allow(hotpath-alloc-in-loop) — admin path: disk loads dwarf these allocations
                .ok_or_else(|| invalid(format!("unusable artifact name {path:?}")))?
                // analyze:allow(hotpath-alloc-in-loop) — admin path: one id per loaded artifact
                .to_string();
            self.load_path(&id, &path)?;
            ids.push(id);
        }
        Ok(ids)
    }

    /// Load models per a JSON manifest. Relative paths resolve against the
    /// manifest's own directory. Format:
    ///
    /// ```json
    /// {"models": [{"id": "geo", "path": "geo.pcsm"}], "default": "geo"}
    /// ```
    pub fn load_manifest(&self, manifest: &Path) -> io::Result<Vec<String>> {
        let text = std::fs::read_to_string(manifest)?;
        let v: Value = serde_json::from_str(&text)
            .map_err(|e| invalid(format!("manifest {}: {e}", manifest.display())))?;
        let base = manifest.parent().unwrap_or(Path::new(""));
        let models = v
            .get("models")
            .and_then(Value::as_array)
            .ok_or_else(|| invalid("manifest must hold a \"models\" array"))?;
        let mut ids = Vec::new();
        for (i, m) in models.iter().enumerate() {
            let id = m
                .get("id")
                .and_then(Value::as_str)
                // analyze:allow(hotpath-alloc-in-loop) — admin path: manifest errors are terminal
                .ok_or_else(|| invalid(format!("models[{i}] missing \"id\"")))?;
            let path = m
                .get("path")
                .and_then(Value::as_str)
                // analyze:allow(hotpath-alloc-in-loop) — admin path: manifest errors are terminal
                .ok_or_else(|| invalid(format!("models[{i}] missing \"path\"")))?;
            self.load_path(id, &base.join(path))?;
            // analyze:allow(hotpath-alloc-in-loop) — admin path: one id per loaded model
            ids.push(id.to_string());
        }
        if let Some(default) = v.get("default").and_then(Value::as_str) {
            self.set_default(default).map_err(invalid)?;
        }
        Ok(ids)
    }
}

fn invalid(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::prelude::*;

    fn blob_model(n: usize, seed: u64) -> ClusterModel<2> {
        let mut rng = StdRng::seed_from_u64(seed);
        let pts: Vec<Point<2>> = (0..n)
            .map(|_| Point([rng.gen_range(-5.0..5.0), rng.gen_range(-5.0..5.0)]))
            .collect();
        ClusterModel::build(&pts, 3, 3)
    }

    fn tmpdir(tag: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("parclust-registry-{}-{tag}", std::process::id()));
        std::fs::create_dir_all(&p).unwrap();
        p
    }

    #[test]
    fn insert_get_remove_and_default_tracking() {
        let reg = ModelRegistry::new();
        assert!(reg.snapshot().default_handle().is_none());
        reg.insert("b", handle_for_model(blob_model(40, 1)))
            .unwrap();
        reg.insert("a", handle_for_model(blob_model(30, 2)))
            .unwrap();
        let snap = reg.snapshot();
        assert_eq!(snap.models.len(), 2);
        assert_eq!(snap.models[0].0, "a", "snapshot is id-sorted");
        // First insert won the default.
        assert_eq!(snap.default_handle().unwrap().0, "b");
        assert_eq!(snap.get("a").unwrap().num_points(), 30);
        assert!(snap.get("missing").is_none());
        reg.set_default("a").unwrap();
        assert!(reg.set_default("missing").is_err());
        // An old snapshot is immutable; removal shows up in new ones only.
        assert!(reg.remove("a"));
        assert!(!reg.remove("a"), "double remove reports absence");
        assert!(snap.get("a").is_some(), "held snapshot unaffected");
        let now = reg.snapshot();
        assert!(now.get("a").is_none());
        // Default fell back to the remaining model.
        assert_eq!(now.default_handle().unwrap().0, "b");
    }

    #[test]
    fn id_validation() {
        let reg = ModelRegistry::new();
        let h = handle_for_model(blob_model(20, 3));
        for bad in ["", "has space", "slash/y", "q?x", &"x".repeat(200)] {
            assert!(reg.insert(bad, Arc::clone(&h)).is_err(), "{bad:?}");
        }
        for good in ["a", "geo-3d", "A.B_c-9"] {
            assert!(reg.insert(good, Arc::clone(&h)).is_ok(), "{good:?}");
        }
    }

    #[test]
    fn dir_scan_and_manifest_loading() {
        let dir = tmpdir("scan");
        blob_model(25, 4).save(&dir.join("alpha.pcsm")).unwrap();
        blob_model(35, 5).save(&dir.join("beta.pcsm")).unwrap();
        std::fs::write(dir.join("notes.txt"), "ignored").unwrap();

        let reg = ModelRegistry::new();
        let ids = reg.load_dir(&dir).unwrap();
        assert_eq!(ids, vec!["alpha".to_string(), "beta".to_string()]);
        let snap = reg.snapshot();
        assert_eq!(snap.get("alpha").unwrap().num_points(), 25);
        assert_eq!(snap.get("beta").unwrap().num_points(), 35);

        // Manifest: explicit ids + default, relative paths.
        std::fs::write(
            dir.join("manifest.json"),
            r#"{"models": [{"id": "one", "path": "alpha.pcsm"},
                           {"id": "two", "path": "beta.pcsm"}],
                "default": "two"}"#,
        )
        .unwrap();
        let reg2 = ModelRegistry::new();
        let ids = reg2.load_manifest(&dir.join("manifest.json")).unwrap();
        assert_eq!(ids, vec!["one".to_string(), "two".to_string()]);
        assert_eq!(reg2.snapshot().default_handle().unwrap().0, "two");
        // Broken manifests error out.
        std::fs::write(dir.join("bad.json"), r#"{"default": "x"}"#).unwrap();
        assert!(reg2.load_manifest(&dir.join("bad.json")).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn handle_assign_flat_matches_engine() {
        let model = Arc::new(blob_model(60, 6));
        let engine = Arc::new(QueryEngine::new(Arc::clone(&model)));
        let handle = EngineHandle::new(Arc::clone(&engine));
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(2)
            .build()
            .unwrap();
        let spec = LabelingSpec::Cut { eps: 2.0 };
        let flat = [0.5, 0.5, -4.0, 4.0, 9.0, 9.0];
        let got = handle.assign_flat(&flat, spec, f64::INFINITY, &pool);
        let queries = [Point([0.5, 0.5]), Point([-4.0, 4.0]), Point([9.0, 9.0])];
        let want = engine.assign_batch(&queries, spec, f64::INFINITY);
        assert_eq!(got, want);
    }
}
