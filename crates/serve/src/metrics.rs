//! Serving metrics: lock-free request counters, an in-flight gauge, and
//! per-route latency histograms, rendered in the Prometheus text
//! exposition format at `GET /metrics`.
//!
//! The record path is lock-free: route labels come from a fixed set (so
//! per-route state is a plain array indexed once per request), per-model
//! counters live behind a [`SnapshotCell`] copy-on-write list (reads are
//! one snapshot load + a linear probe over the handful of loaded models;
//! the writer mutex is touched only the first time a model id is seen),
//! and durations feed [`parclust_obs::Histogram`]s, which are `Relaxed`
//! `fetch_add`s all the way down. Scrape-time rendering takes racy
//! `Relaxed` snapshots — the standard Prometheus contract.
//!
//! Label cardinality is bounded by construction: routes are a fixed
//! 11-entry set, and the model label only takes values the caller
//! resolved against the registry (unknown ids fold into
//! [`NO_MODEL`]), so a scanner probing random paths cannot grow the
//! metric surface.

use crate::snapshot::SnapshotCell;
use parclust_obs::Histogram;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// The fixed route label set. Every request maps to exactly one entry;
/// unrecognized paths fold into `"other"`.
pub const ROUTES: [&str; 11] = [
    "healthz",
    "models",
    "info",
    "cut",
    "eom",
    "assign",
    "assign_binary",
    "insert",
    "admin",
    "metrics",
    "other",
];

/// Model label for requests that do not resolve to a loaded model
/// (index/admin/metrics routes, unknown ids).
pub const NO_MODEL: &str = "-";

/// Index of `label` in [`ROUTES`]; unknown labels map to `"other"`.
pub fn route_index(label: &str) -> usize {
    ROUTES
        .iter()
        .position(|r| *r == label)
        .unwrap_or(ROUTES.len() - 1)
}

/// Per-model request counters, one slot per [`ROUTES`] entry. Shared by
/// `Arc` across snapshot generations so increments survive publishes.
struct RouteCounters {
    counts: [AtomicU64; ROUTES.len()],
}

impl RouteCounters {
    fn new() -> RouteCounters {
        RouteCounters {
            counts: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

/// The server-wide metrics registry. One instance per [`crate::Server`];
/// all connection workers share it behind an `Arc`.
pub struct Metrics {
    /// Requests currently being routed (gauge).
    in_flight: AtomicU64,
    /// Requests answered with a non-2xx status or dropped on a framing
    /// error before routing.
    malformed: AtomicU64,
    /// Request duration histograms, one per [`ROUTES`] entry.
    hist: Vec<Histogram>,
    /// `(model label, counters)` — copy-on-write; the list only grows
    /// (one entry per distinct model label, including [`NO_MODEL`]).
    per_model: SnapshotCell<Vec<(String, Arc<RouteCounters>)>>,
}

impl Default for Metrics {
    fn default() -> Self {
        Metrics::new()
    }
}

impl Metrics {
    pub fn new() -> Metrics {
        Metrics {
            in_flight: AtomicU64::new(0),
            malformed: AtomicU64::new(0),
            hist: (0..ROUTES.len())
                .map(|_| Histogram::latency_default())
                .collect(),
            per_model: SnapshotCell::new(Vec::new()),
        }
    }

    /// Mark a request entering routing. Pair with [`Metrics::finish`].
    pub fn begin(&self) {
        self.in_flight.fetch_add(1, Ordering::Relaxed);
    }

    /// Record a completed request: drops the in-flight gauge, bumps the
    /// `(model, route)` counter, feeds the route's latency histogram, and
    /// counts non-2xx answers as malformed.
    pub fn finish(&self, model: &str, route: usize, status: u16, dur_ns: u64) {
        self.in_flight.fetch_sub(1, Ordering::Relaxed);
        self.counters_for(model).counts[route].fetch_add(1, Ordering::Relaxed);
        self.hist[route].record_ns(dur_ns);
        if !(200..300).contains(&status) {
            self.malformed.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Count a request dropped before routing (framing error, oversized
    /// body): no route label exists yet, only the malformed counter moves.
    pub fn framing_error(&self) {
        self.malformed.fetch_add(1, Ordering::Relaxed);
    }

    /// Current in-flight gauge (tests).
    pub fn in_flight(&self) -> u64 {
        self.in_flight.load(Ordering::Relaxed)
    }

    /// Counter slot for `model`, registering it on first sight. Steady
    /// state is one snapshot load plus a short linear probe.
    fn counters_for(&self, model: &str) -> Arc<RouteCounters> {
        let snap = self.per_model.load();
        if let Some((_, c)) = snap.iter().find(|(m, _)| m == model) {
            return Arc::clone(c);
        }
        // Cold path: first request for this model label.
        self.per_model.update(|cur| {
            if let Some((_, c)) = cur.iter().find(|(m, _)| m == model) {
                return (None, Arc::clone(c)); // lost the registration race
            }
            let mut next = Vec::with_capacity(cur.len() + 1);
            next.extend(cur.iter().cloned());
            let counters = Arc::new(RouteCounters::new());
            next.push((model.to_string(), Arc::clone(&counters)));
            (Some(Arc::new(next)), counters)
        })
    }

    /// Render every family in the Prometheus text exposition format
    /// (version 0.0.4). Zero-count series are omitted, `# TYPE` headers
    /// are not.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::with_capacity(4096);
        out.push_str("# TYPE parclust_requests_total counter\n");
        let models = self.per_model.load();
        for (model, counters) in models.iter() {
            for (i, route) in ROUTES.iter().enumerate() {
                let c = counters.counts[i].load(Ordering::Relaxed);
                if c > 0 {
                    let _ = writeln!(
                        out,
                        "parclust_requests_total{{model=\"{model}\",route=\"{route}\"}} {c}"
                    );
                }
            }
        }
        out.push_str("# TYPE parclust_in_flight_requests gauge\n");
        let _ = writeln!(
            out,
            "parclust_in_flight_requests {}",
            self.in_flight.load(Ordering::Relaxed)
        );
        out.push_str("# TYPE parclust_malformed_requests_total counter\n");
        let _ = writeln!(
            out,
            "parclust_malformed_requests_total {}",
            self.malformed.load(Ordering::Relaxed)
        );
        out.push_str("# TYPE parclust_request_duration_seconds histogram\n");
        for (i, route) in ROUTES.iter().enumerate() {
            let h = &self.hist[i];
            if h.count() == 0 {
                continue;
            }
            let buckets = h.bucket_counts();
            let mut cum = 0u64;
            for (bound_ns, c) in h.bounds().iter().zip(&buckets) {
                cum += c;
                let _ = writeln!(
                    out,
                    "parclust_request_duration_seconds_bucket{{route=\"{route}\",le=\"{}\"}} {cum}",
                    *bound_ns as f64 / 1e9
                );
            }
            cum += buckets.last().copied().unwrap_or(0);
            let _ = writeln!(
                out,
                "parclust_request_duration_seconds_bucket{{route=\"{route}\",le=\"+Inf\"}} {cum}"
            );
            let _ = writeln!(
                out,
                "parclust_request_duration_seconds_sum{{route=\"{route}\"}} {}",
                h.sum_ns() as f64 / 1e9
            );
            let _ = writeln!(
                out,
                "parclust_request_duration_seconds_count{{route=\"{route}\"}} {}",
                h.count()
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn route_indices_cover_the_fixed_set() {
        for (i, r) in ROUTES.iter().enumerate() {
            assert_eq!(route_index(r), i);
        }
        assert_eq!(route_index("no-such-route"), ROUTES.len() - 1);
    }

    #[test]
    fn counters_and_gauge_render_exactly() {
        let m = Metrics::new();
        m.begin();
        m.finish("geo", route_index("cut"), 200, 5_000);
        m.begin();
        m.finish("geo", route_index("cut"), 200, 7_000);
        m.begin();
        m.finish(NO_MODEL, route_index("healthz"), 200, 1_000);
        m.begin();
        m.finish("geo", route_index("assign"), 400, 2_000);
        m.framing_error();
        let text = m.render();
        assert!(text.contains("parclust_requests_total{model=\"geo\",route=\"cut\"} 2"));
        assert!(text.contains("parclust_requests_total{model=\"-\",route=\"healthz\"} 1"));
        assert!(text.contains("parclust_requests_total{model=\"geo\",route=\"assign\"} 1"));
        // One 400 + one framing error.
        assert!(text.contains("parclust_malformed_requests_total 2"));
        assert!(text.contains("parclust_in_flight_requests 0"));
        // Histogram totals for the cut route: two requests, 12 µs total.
        assert!(text.contains("parclust_request_duration_seconds_count{route=\"cut\"} 2"));
        assert!(text.contains("parclust_request_duration_seconds_sum{route=\"cut\"} 0.000012"));
        assert!(
            text.contains("parclust_request_duration_seconds_bucket{route=\"cut\",le=\"+Inf\"} 2")
        );
    }

    #[test]
    fn in_flight_gauge_tracks_begin_finish() {
        let m = Metrics::new();
        m.begin();
        m.begin();
        assert_eq!(m.in_flight(), 2);
        m.finish(NO_MODEL, route_index("models"), 200, 10);
        assert_eq!(m.in_flight(), 1);
        m.finish(NO_MODEL, route_index("models"), 200, 10);
        assert_eq!(m.in_flight(), 0);
    }

    #[test]
    fn model_registration_survives_concurrent_first_sight() {
        let m = std::sync::Arc::new(Metrics::new());
        std::thread::scope(|s| {
            for _ in 0..8 {
                let m = std::sync::Arc::clone(&m);
                s.spawn(move || {
                    for _ in 0..100 {
                        m.begin();
                        m.finish("shared", route_index("eom"), 200, 100);
                    }
                });
            }
        });
        let text = m.render();
        assert!(text.contains("parclust_requests_total{model=\"shared\",route=\"eom\"} 800"));
    }
}
