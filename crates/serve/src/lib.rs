//! # parclust-serve — clustering-model serving
//!
//! The paper's algorithms produce EMSTs and HDBSCAN\* hierarchies as
//! one-shot batch outputs; this crate turns a finished run into a
//! *servable model* for the "heavy traffic from millions of users" north
//! star. Three layers:
//!
//! * [`artifact`] — a versioned binary **model artifact** bundling the
//!   point set, kd-tree, core distances, dendrogram, and condensed tree,
//!   with checksummed save/load round-trip ([`ClusterModel`]);
//! * [`engine`] — a **query engine** answering flat cuts at arbitrary
//!   `eps`/`k`, EOM extraction with `cluster_selection_epsilon`, and
//!   out-of-sample point assignment, with batches fanned out over the
//!   rayon pooled executor ([`QueryEngine`]);
//! * [`http`] — a std-only threaded **HTTP/JSON server** plus the matching
//!   keep-alive client ([`http::start`], [`http::Client`]).
//!
//! Build → save → serve → query:
//!
//! ```
//! use parclust_serve::{ClusterModel, LabelingSpec, QueryEngine};
//! use parclust::Point;
//! use std::sync::Arc;
//!
//! let points: Vec<Point<2>> = (0..100)
//!     .map(|i| Point([(i % 10) as f64, (i / 10) as f64]))
//!     .collect();
//! let model = ClusterModel::build(&points, 5, 5);
//! // model.save(path)? / ClusterModel::load(path)? persist it.
//! let engine = QueryEngine::new(Arc::new(model));
//! let cut = engine.labeling(LabelingSpec::Cut { eps: 2.0 });
//! assert_eq!(cut.num_clusters, 1);
//! let assignment = engine.assign_batch(
//!     &[Point([4.2, 4.8])],
//!     LabelingSpec::Eom { cluster_selection_epsilon: 0.0 },
//!     f64::INFINITY,
//! );
//! assert_eq!(assignment.len(), 1);
//! ```
//!
//! The `serve` binary wraps the same layers as a CLI (`build`, `serve`,
//! `query` subcommands); `loadgen` measures serving throughput over HTTP.
//!
//! Serving is **multi-model**: a [`registry::ModelRegistry`] holds N named
//! models (loaded from a directory scan, a JSON manifest, or hot-loaded at
//! runtime via the admin routes), the HTTP layer routes
//! `/models/{id}/...`, and high-volume assignment can skip JSON entirely
//! via the checksummed binary batch protocol in [`proto`]. Both the
//! labeling cache and the registry publish immutable snapshots through
//! [`snapshot::SnapshotCell`], so the query hot path never takes a lock.
//!
//! Models loaded as **dynamic** ([`dynamic`]) additionally accept batched
//! inserts/deletes (`POST /models/{id}/insert`) and compaction
//! (`POST /admin/compact`): every mutation runs the incremental
//! rebuild-vs-merge pipeline from `parclust-dyn` and republishes a fresh
//! immutable model version through the registry snapshot — readers never
//! block and never observe a partially mutated model.

pub mod artifact;
pub mod dynamic;
pub mod engine;
pub mod http;
pub mod metrics;
pub mod proto;
pub mod registry;
pub mod snapshot;

pub use artifact::{peek_dims, ClusterModel, FORMAT_VERSION};
pub use dynamic::{DynEntry, DynModelHandle, DYN_FORMAT_VERSION, DYN_MAGIC};
pub use engine::{Assignment, LabelCache, Labeling, LabelingSpec, QueryEngine};
pub use http::{start, Client, Server, ServerConfig};
pub use metrics::Metrics;
pub use proto::{AssignRequest, AssignResponse, PROTO_VERSION};
pub use registry::{EngineHandle, ModelHandle, ModelRegistry, RegistrySnapshot};
pub use snapshot::SnapshotCell;

/// Point dimensionalities the serving stack monomorphizes
/// ([`with_model_dims!`] dispatches over exactly these).
pub const SUPPORTED_DIMS: [usize; 6] = [2, 3, 5, 7, 10, 16];

/// Dispatch a runtime artifact dimensionality to a `ClusterModel::<D>`
/// monomorphization. The serving stack supports the workspace's data-set
/// dimensions (2, 3, 5, 7, 10, 16).
#[macro_export]
macro_rules! with_model_dims {
    ($dims:expr, |$d:ident| $body:expr) => {{
        match $dims {
            2 => {
                const $d: usize = 2;
                $body
            }
            3 => {
                const $d: usize = 3;
                $body
            }
            5 => {
                const $d: usize = 5;
                $body
            }
            7 => {
                const $d: usize = 7;
                $body
            }
            10 => {
                const $d: usize = 10;
                $body
            }
            16 => {
                const $d: usize = 16;
                $body
            }
            other => panic!("unsupported model dimensionality {other} (supported: 2,3,5,7,10,16)"),
        }
    }};
}
