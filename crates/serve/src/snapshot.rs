//! Lock-free snapshot publication: the concurrency primitive behind the
//! engine's labeling cache and the model registry.
//!
//! A [`SnapshotCell<T>`] holds an immutable snapshot behind an `Arc`.
//! Writers publish a *new* snapshot under a mutex (copy-on-write); readers
//! on the hot path never touch that mutex — [`SnapshotCell::load`] is one
//! atomic version load plus a thread-local probe. Only when the version
//! has moved (someone published) does a reader fall back to the writer
//! mutex to refresh its thread-local `Arc`.
//!
//! Why not a bare `AtomicPtr` swap? Reclamation: a reader that loads the
//! pointer just before a writer swaps-and-drops would dereference freed
//! memory, and fixing that needs hazard pointers or epochs. Anchoring the
//! current `Arc` in a mutex-guarded slot and caching *validated* clones in
//! TLS gives the same steady-state behavior — readers share no mutable
//! cache line, publishes are globally visible on the next load — with
//! plain `std` and no deferred-reclamation machinery. Memory stays bounded:
//! each thread pins at most one superseded snapshot per cell (until its
//! next load), and the TLS table is capped at [`TLS_CAP`] cells.
//!
//! Correctness of the fast path: the version counter is bumped only while
//! the writer mutex is held, strictly increases, and readers pair every
//! cached `Arc` with the version observed under that same mutex. So
//! `cached.version == version.load()` implies no publish happened since the
//! pair was taken, i.e. the cached `Arc` *is* the current snapshot.

use std::any::Any;
use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Global id source so thread-local entries can tell cells apart (a cell's
/// address can be reused after drop; a monotonically increasing id cannot).
static NEXT_CELL_ID: AtomicU64 = AtomicU64::new(1);

/// Max snapshot cells cached per thread; least-recently-used entries fall
/// off so short-lived cells (tests build many engines) cannot grow TLS
/// without bound. Sized for the serving shape (one cell per loaded model
/// plus the registry): a worker thread serving round-robin traffic over
/// more than ~60 hot models starts thrashing this LRU and its loads
/// degrade to the writer-mutex slow path — still correct, no longer
/// lock-free. Grow this (or key it per cell set) before targeting
/// many-tenant registries past that size.
const TLS_CAP: usize = 64;

thread_local! {
    /// Per-thread cache: `(cell id, version, snapshot)` in LRU order
    /// (front = most recent).
    static SLOTS: RefCell<Vec<(u64, u64, Arc<dyn Any + Send + Sync>)>> =
        const { RefCell::new(Vec::new()) };
}

/// An atomically publishable immutable snapshot. See the module docs for
/// the read/write protocol.
pub struct SnapshotCell<T: Send + Sync + 'static> {
    id: u64,
    /// Bumped (under the writer mutex) on every publish.
    version: AtomicU64,
    /// The authoritative current snapshot; also serializes writers.
    writer: Mutex<Arc<T>>,
    /// Race-detector model of the writer slot: publishes write it,
    /// slow-path loads read it. The TLS fast path is deliberately not
    /// modeled — it only ever returns an `Arc` that was validated against
    /// the version under the writer mutex, so its soundness reduces to the
    /// slow path's.
    #[cfg(feature = "racecheck")]
    rc_data: rayon::racecheck::DataVar,
    /// Race-detector model of the writer mutex's release/acquire edges.
    #[cfg(feature = "racecheck")]
    rc_lock: rayon::racecheck::SyncVar,
    /// Race-detector model of the version counter's Release bump /
    /// Acquire load pairing (the publication edge the fast path relies
    /// on). [`SnapshotCell::store_racy`] skips exactly this release.
    #[cfg(feature = "racecheck")]
    rc_version: rayon::racecheck::SyncVar,
}

impl<T: Send + Sync + 'static> SnapshotCell<T> {
    pub fn new(initial: T) -> Self {
        let cell = SnapshotCell {
            id: NEXT_CELL_ID.fetch_add(1, Ordering::Relaxed),
            version: AtomicU64::new(1),
            // analyze:allow(hotpath-lock) — one-time construction; loads never touch this mutex in steady state
            writer: Mutex::new(Arc::new(initial)),
            #[cfg(feature = "racecheck")]
            rc_data: rayon::racecheck::DataVar::new("SnapshotCell"),
            #[cfg(feature = "racecheck")]
            rc_lock: rayon::racecheck::SyncVar::new(),
            #[cfg(feature = "racecheck")]
            rc_version: rayon::racecheck::SyncVar::new(),
        };
        #[cfg(feature = "racecheck")]
        {
            cell.rc_data.on_write();
            cell.rc_lock.release();
            cell.rc_version.release();
        }
        cell
    }

    /// Current snapshot. Lock-free in steady state (no publish since this
    /// thread's last load): one atomic load + a thread-local probe.
    pub fn load(&self) -> Arc<T> {
        let v = self.version.load(Ordering::Acquire);
        let hit = SLOTS.with(|slots| {
            let mut slots = slots.borrow_mut();
            let i = slots.iter().position(|(id, _, _)| *id == self.id)?;
            if slots[i].1 != v {
                return None;
            }
            if i != 0 {
                let entry = slots.remove(i);
                slots.insert(0, entry);
            }
            Some(Arc::clone(&slots[0].2))
        });
        match hit {
            // The id match guarantees this thread cached the entry from
            // this very cell, so the downcast cannot fail; if it somehow
            // does, refresh from the writer slot instead of panicking the
            // worker.
            Some(any) => any.downcast::<T>().unwrap_or_else(|_| self.load_slow()),
            None => self.load_slow(),
        }
    }

    /// Refresh the thread-local entry from the writer slot.
    fn load_slow(&self) -> Arc<T> {
        let (snap, v) = {
            // analyze:allow(hotpath-lock) — the slow path exists to take this lock; steady-state loads never get here
            let guard = lock_writer(&self.writer);
            #[cfg(feature = "racecheck")]
            {
                self.rc_lock.acquire();
                self.rc_version.acquire();
                self.rc_data.on_read();
            }
            // Read the version while holding the lock: this pairs the Arc
            // with the exact version it was published under.
            let out = (Arc::clone(&guard), self.version.load(Ordering::Acquire));
            // Reader unlock: later writers must be ordered after this read.
            #[cfg(feature = "racecheck")]
            self.rc_lock.release();
            out
        };
        let erased: Arc<dyn Any + Send + Sync> = Arc::clone(&snap) as _;
        SLOTS.with(|slots| {
            let mut slots = slots.borrow_mut();
            slots.retain(|(id, _, _)| *id != self.id);
            slots.insert(0, (self.id, v, erased));
            slots.truncate(TLS_CAP);
        });
        snap
    }

    /// Writer-side read-modify-write. `f` runs under the writer mutex with
    /// the current snapshot; returning `Some(next)` publishes it (readers
    /// see it on their next [`SnapshotCell::load`]), `None` leaves the
    /// current snapshot in place. The second tuple element is passed
    /// through as the return value.
    pub fn update<R>(&self, f: impl FnOnce(&Arc<T>) -> (Option<Arc<T>>, R)) -> R {
        // analyze:allow(hotpath-lock) — writer side; publishes are rare and serialize by design
        let mut guard = lock_writer(&self.writer);
        #[cfg(feature = "racecheck")]
        self.rc_lock.acquire();
        let (next, out) = f(&guard);
        if let Some(next) = next {
            *guard = next;
            #[cfg(feature = "racecheck")]
            {
                self.rc_data.on_write();
                self.rc_version.release();
            }
            self.version.fetch_add(1, Ordering::Release);
        }
        #[cfg(feature = "racecheck")]
        self.rc_lock.release();
        out
    }

    /// Test-only broken publisher: swaps the snapshot and bumps the
    /// version **without** the release edge — what a `Relaxed` publish (or
    /// a bare unsynchronized pointer swap) would do. The detector must
    /// flag the write against any later slow-path read; used by the
    /// seeded-race tests and the CI racecheck self-test.
    #[cfg(feature = "racecheck")]
    pub fn store_racy(&self, next: T) {
        let mut guard = lock_writer(&self.writer);
        // Acquire so the broken write is still ordered after *earlier*
        // publishes (one seeded race, not a cascade), but release nothing.
        self.rc_lock.acquire();
        *guard = Arc::new(next);
        self.rc_data.on_write();
        // analyze:allow(atomics-discipline) — deliberately broken Relaxed publish; the race detector must catch it
        self.version.fetch_add(1, Ordering::Relaxed);
    }

    /// Unconditionally publish `next`.
    pub fn store(&self, next: T) {
        self.update(|_| (Some(Arc::new(next)), ()));
    }
}

/// Lock the writer slot, shrugging off poisoning: `update` mutates the
/// guarded `Arc` only by whole-value assignment *after* the user closure
/// returns, so a panic inside that closure (e.g. a labeling computation
/// blowing up on one request) leaves the previous snapshot intact and
/// must not take the cell down for every later request.
fn lock_writer<T>(writer: &Mutex<Arc<T>>) -> std::sync::MutexGuard<'_, Arc<T>> {
    writer
        // analyze:allow(hotpath-lock) — shared helper for the two slow-path/writer-side lock sites above
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn load_sees_latest_publish() {
        let cell = SnapshotCell::new(0u64);
        assert_eq!(*cell.load(), 0);
        cell.store(7);
        assert_eq!(*cell.load(), 7);
        // Conditional update with pass-through result.
        let seen = cell.update(|cur| (Some(Arc::new(**cur + 1)), **cur));
        assert_eq!(seen, 7);
        assert_eq!(*cell.load(), 8);
        // A no-op update leaves the snapshot alone.
        cell.update(|_| (None, ()));
        assert_eq!(*cell.load(), 8);
    }

    #[test]
    fn repeated_loads_share_the_snapshot() {
        let cell = SnapshotCell::new(vec![1, 2, 3]);
        let a = cell.load();
        let b = cell.load();
        assert!(Arc::ptr_eq(&a, &b), "steady-state loads share one Arc");
        cell.store(vec![4]);
        let c = cell.load();
        assert!(!Arc::ptr_eq(&a, &c));
        assert_eq!(*c, vec![4]);
    }

    #[test]
    fn many_cells_exceeding_tls_cap_stay_correct() {
        let cells: Vec<SnapshotCell<usize>> = (0..3 * TLS_CAP).map(SnapshotCell::new).collect();
        for (i, cell) in cells.iter().enumerate() {
            assert_eq!(*cell.load(), i);
        }
        for (i, cell) in cells.iter().enumerate() {
            cell.store(i + 1000);
        }
        for (i, cell) in cells.iter().enumerate() {
            assert_eq!(*cell.load(), i + 1000, "evicted TLS entries must refill");
        }
    }

    #[test]
    fn panicking_update_does_not_poison_the_cell() {
        let cell = Arc::new(SnapshotCell::new(1u64));
        let c2 = Arc::clone(&cell);
        let _ = std::thread::spawn(move || {
            c2.update(|_| -> (Option<Arc<u64>>, ()) { panic!("computation blew up") })
        })
        .join();
        cell.store(2);
        assert_eq!(*cell.load(), 2, "cell must survive a panicked writer");
    }

    #[test]
    fn cross_thread_publish_is_observed() {
        let cell = Arc::new(SnapshotCell::new(0u64));
        let c2 = Arc::clone(&cell);
        // Warm this thread's TLS, publish from another thread, reload.
        assert_eq!(*cell.load(), 0);
        std::thread::spawn(move || c2.store(42)).join().unwrap();
        assert_eq!(*cell.load(), 42, "stale TLS entry must be refreshed");
    }
}
