//! The query engine: cheap reuse of one expensive hierarchy build.
//!
//! Three query families over a loaded [`ClusterModel`]:
//!
//! * **flat cuts** — single-linkage labelings at an arbitrary distance
//!   `eps` or an exact cluster count `k` ([`LabelingSpec::Cut`],
//!   [`LabelingSpec::CutK`]);
//! * **EOM extraction** — stability-based flat clusters with the
//!   `cluster_selection_epsilon` merge knob ([`LabelingSpec::Eom`]);
//! * **out-of-sample assignment** — label a point the model has never seen
//!   by kNN against the kd-tree plus the nearest-core-distance rule
//!   ([`QueryEngine::assign`]).
//!
//! Labelings are memoized (many requests ask for the same `eps`) in an
//! immutable [`LabelCache`] snapshot published through a
//! [`SnapshotCell`](crate::snapshot::SnapshotCell): the hot read path is
//! lock-free (no global mutex, worker threads never serialize on cache
//! hits), while misses compute-and-publish a copy-on-write successor under
//! the cell's writer lock — so a labeling is computed at most once per
//! distinct spec per cache generation, which
//! [`QueryEngine::labelings_computed`] exposes for regression tests.
//! Batched assignments fan out over the rayon pooled executor — run them
//! inside a `ThreadPool::install` to pick the width.

use crate::artifact::ClusterModel;
use crate::snapshot::SnapshotCell;
use parclust::{count_clusters, extract_eom_eps, single_linkage_cut, single_linkage_k, NOISE};
use parclust_geom::Point;
use rayon::prelude::*;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Which labeling of the training points a query refers to.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LabelingSpec {
    /// EOM extraction with the given `cluster_selection_epsilon`
    /// (0.0 = plain excess-of-mass selection).
    Eom { cluster_selection_epsilon: f64 },
    /// Single-linkage cut at distance `eps`.
    Cut { eps: f64 },
    /// Single-linkage cut into exactly `k` clusters.
    CutK { k: usize },
}

/// A materialized labeling of the training points.
pub struct Labeling {
    pub spec: LabelingSpec,
    /// Per-point labels, [`NOISE`] for noise; consecutive from 0.
    pub labels: Vec<u32>,
    pub num_clusters: usize,
    pub num_noise: usize,
}

/// Result of one out-of-sample assignment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Assignment {
    /// Label under the requested labeling ([`NOISE`] if the nearest core
    /// neighbor is noise or farther than `max_dist`).
    pub label: u32,
    /// Training point the label was taken from.
    pub neighbor: u32,
    /// Mutual reachability distance to that neighbor.
    pub distance: f64,
}

/// Upper bound on memoized labelings; past it the cache resets to a fresh
/// generation (labelings are cheap to recompute, the cache only smooths
/// steady-state traffic).
pub const LABELING_CACHE_CAP: usize = 64;

/// One immutable labeling-cache snapshot. Snapshots are never mutated in
/// place: a miss publishes a *new* `LabelCache` (entries cloned + the new
/// labeling appended, or a fresh generation when the cap is hit), so any
/// snapshot a reader holds is internally consistent forever — there is no
/// observable "partially inserted" state.
#[derive(Clone, Default)]
pub struct LabelCache {
    /// Bumped every time the cap forces a reset; within one generation the
    /// entry list only ever grows (append-only, copy-on-write).
    pub generation: u64,
    pub entries: Vec<(LabelingSpec, Arc<Labeling>)>,
}

impl LabelCache {
    pub fn find(&self, spec: LabelingSpec) -> Option<Arc<Labeling>> {
        self.entries
            .iter()
            .find(|(s, _)| *s == spec)
            .map(|(_, l)| Arc::clone(l))
    }
}

pub struct QueryEngine<const D: usize> {
    model: Arc<ClusterModel<D>>,
    cache: SnapshotCell<LabelCache>,
    /// Labelings actually computed (cache misses); see
    /// [`QueryEngine::labelings_computed`].
    computed: AtomicU64,
}

impl<const D: usize> QueryEngine<D> {
    pub fn new(model: Arc<ClusterModel<D>>) -> Self {
        QueryEngine {
            model,
            cache: SnapshotCell::new(LabelCache::default()),
            computed: AtomicU64::new(0),
        }
    }

    pub fn model(&self) -> &ClusterModel<D> {
        &self.model
    }

    /// Number of labelings computed so far (i.e. cache misses). Repeated
    /// queries for the same spec must not move this counter — pinned by a
    /// regression test.
    pub fn labelings_computed(&self) -> u64 {
        self.computed.load(Ordering::Relaxed)
    }

    /// The current cache snapshot (test/introspection hook; the snapshot is
    /// immutable and safe to inspect while other threads keep querying).
    pub fn cache_snapshot(&self) -> Arc<LabelCache> {
        self.cache.load()
    }

    /// Compute (or fetch from cache) the labeling described by `spec`.
    ///
    /// Hot path (cache hit) is lock-free: one snapshot load + a scan of the
    /// immutable entry list. On a miss the computation runs under the
    /// snapshot cell's writer lock after a re-check, so concurrent requests
    /// for the same new spec compute it exactly once. Trade-off: misses for
    /// *distinct* new specs serialize on that lock (and a reader needing a
    /// slow-path snapshot refresh waits behind an in-flight computation) —
    /// chosen over the old global-mutex design where every *hit* serialized,
    /// and over compute-outside-the-lock, which duplicates work under racing
    /// first requests.
    ///
    /// `Eom`/`Cut` specs with NaN parameters are rejected by the HTTP layer;
    /// at this level NaN would simply never hit the cache.
    pub fn labeling(&self, spec: LabelingSpec) -> Arc<Labeling> {
        if let Some(hit) = self.cache.load().find(spec) {
            return hit;
        }
        self.cache.update(|cur| {
            // Another writer may have published this spec while we waited.
            if let Some(hit) = cur.find(spec) {
                return (None, hit);
            }
            let out = self.compute_labeling(spec);
            let next = if cur.entries.len() >= LABELING_CACHE_CAP {
                LabelCache {
                    generation: cur.generation + 1,
                    entries: vec![(spec, Arc::clone(&out))],
                }
            } else {
                let mut entries = cur.entries.clone();
                entries.push((spec, Arc::clone(&out)));
                LabelCache {
                    generation: cur.generation,
                    entries,
                }
            };
            (Some(Arc::new(next)), out)
        })
    }

    fn compute_labeling(&self, spec: LabelingSpec) -> Arc<Labeling> {
        self.computed.fetch_add(1, Ordering::Relaxed);
        let labels = match spec {
            LabelingSpec::Eom {
                cluster_selection_epsilon,
            } => extract_eom_eps(&self.model.condensed, cluster_selection_epsilon),
            LabelingSpec::Cut { eps } => single_linkage_cut(&self.model.dendrogram, eps),
            LabelingSpec::CutK { k } => single_linkage_k(&self.model.dendrogram, k),
        };
        let num_noise = labels.iter().filter(|&&l| l == NOISE).count();
        let num_clusters = count_clusters(&labels);
        Arc::new(Labeling {
            spec,
            labels,
            num_clusters,
            num_noise,
        })
    }

    /// Core distance of an *unseen* query point, defined as if it were
    /// inserted into the training set: the distance to its `minPts`-th
    /// nearest neighbor counting the query itself — i.e. the
    /// `(minPts − 1)`-th nearest training point (0 when `minPts ≤ 1`).
    /// `knn` must be the sorted result of a kd-tree query with at least
    /// `min(minPts − 1, n)` entries.
    fn query_core_distance(&self, knn: &[(f64, u32)]) -> f64 {
        if self.model.min_pts <= 1 || knn.is_empty() {
            return 0.0;
        }
        let i = (self.model.min_pts - 2).min(knn.len() - 1);
        knn[i].0.sqrt()
    }

    /// Out-of-sample assignment: among the query's `minPts` nearest
    /// training points, pick the one minimizing the mutual reachability
    /// distance `max{d(q,p), cd(q), cd(p)}` (ties toward the earlier
    /// neighbor) and inherit its label under `labeling`; the result is
    /// noise if that distance exceeds `max_dist`.
    pub fn assign(&self, q: &Point<D>, labeling: &Labeling, max_dist: f64) -> Assignment {
        let k = self.model.min_pts.max(1);
        let knn = self.model.tree.knn(q, k);
        debug_assert!(!knn.is_empty(), "models hold at least one point");
        let cd_q = self.query_core_distance(&knn);
        let mut best: Option<(f64, u32)> = None;
        for &(d_sq, id) in &knn {
            let m = d_sq
                .sqrt()
                .max(cd_q)
                .max(self.model.core_distances[id as usize]);
            if best.is_none_or(|(cur, _)| m < cur) {
                best = Some((m, id));
            }
        }
        // Empty kNN cannot happen for a well-formed model (debug-asserted
        // above); degrade to noise instead of panicking a worker if it does.
        let Some((distance, neighbor)) = best else {
            return Assignment {
                label: NOISE,
                neighbor: u32::MAX,
                distance: f64::INFINITY,
            };
        };
        let label = if distance <= max_dist {
            labeling.labels[neighbor as usize]
        } else {
            NOISE
        };
        Assignment {
            label,
            neighbor,
            distance,
        }
    }

    /// Batched [`QueryEngine::assign`], fanned out over the rayon pooled
    /// executor (order-preserving). Call inside `ThreadPool::install` to
    /// control the width.
    pub fn assign_batch(
        &self,
        queries: &[Point<D>],
        spec: LabelingSpec,
        max_dist: f64,
    ) -> Vec<Assignment> {
        let labeling = self.labeling(spec);
        queries
            .par_iter()
            .with_min_len(8)
            .map(|q| self.assign(q, &labeling, max_dist))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::prelude::*;

    fn two_blobs(n_per: usize, seed: u64) -> Vec<Point<2>> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut pts = Vec::new();
        for &(cx, cy) in &[(0.0, 0.0), (60.0, 0.0)] {
            for _ in 0..n_per {
                pts.push(Point([
                    cx + rng.gen_range(-2.0..2.0),
                    cy + rng.gen_range(-2.0..2.0),
                ]));
            }
        }
        pts
    }

    fn engine(pts: &[Point<2>]) -> QueryEngine<2> {
        QueryEngine::new(Arc::new(ClusterModel::build(pts, 5, 10)))
    }

    #[test]
    fn labelings_match_direct_calls_and_cache() {
        let pts = two_blobs(80, 1);
        let e = engine(&pts);
        let eom = e.labeling(LabelingSpec::Eom {
            cluster_selection_epsilon: 0.0,
        });
        assert_eq!(eom.labels, extract_eom_eps(&e.model().condensed, 0.0));
        assert_eq!(eom.num_clusters, 2);
        let cut = e.labeling(LabelingSpec::Cut { eps: 10.0 });
        assert_eq!(cut.labels, single_linkage_cut(&e.model().dendrogram, 10.0));
        assert_eq!(cut.num_clusters, 2);
        let k3 = e.labeling(LabelingSpec::CutK { k: 3 });
        assert_eq!(k3.num_clusters, 3);
        // Second fetch is the same Arc (cache hit).
        let again = e.labeling(LabelingSpec::Cut { eps: 10.0 });
        assert!(Arc::ptr_eq(&cut, &again));
    }

    #[test]
    fn assign_recovers_training_labels() {
        let pts = two_blobs(80, 2);
        let e = engine(&pts);
        let labeling = e.labeling(LabelingSpec::Eom {
            cluster_selection_epsilon: 0.0,
        });
        // Queries near the blob centers inherit the blob labels.
        let a0 = e.assign(&Point([0.5, 0.5]), &labeling, f64::INFINITY);
        let a1 = e.assign(&Point([60.5, -0.5]), &labeling, f64::INFINITY);
        assert_eq!(a0.label, labeling.labels[0]);
        assert_eq!(a1.label, labeling.labels[80]);
        assert_ne!(a0.label, a1.label);
        assert!(a0.distance < 5.0);
        // A faraway query is noise under a finite max_dist but inherits the
        // nearest blob under an infinite one.
        let far = Point([1000.0, 1000.0]);
        assert_eq!(e.assign(&far, &labeling, 50.0).label, NOISE);
        assert_ne!(e.assign(&far, &labeling, f64::INFINITY).label, NOISE);
    }

    #[test]
    fn assign_batch_matches_singles() {
        let pts = two_blobs(60, 3);
        let e = engine(&pts);
        let spec = LabelingSpec::Cut { eps: 10.0 };
        let labeling = e.labeling(spec);
        let mut rng = StdRng::seed_from_u64(7);
        let queries: Vec<Point<2>> = (0..100)
            .map(|_| Point([rng.gen_range(-10.0..70.0), rng.gen_range(-10.0..10.0)]))
            .collect();
        let batch = e.assign_batch(&queries, spec, 25.0);
        for (q, got) in queries.iter().zip(&batch) {
            assert_eq!(*got, e.assign(q, &labeling, 25.0));
        }
    }

    #[test]
    fn single_point_model_queries() {
        let e = QueryEngine::new(Arc::new(ClusterModel::build(&[Point([1.0, 2.0])], 5, 5)));
        let cut = e.labeling(LabelingSpec::Cut { eps: 1.0 });
        assert_eq!(cut.labels, vec![0]);
        let labeling = e.labeling(LabelingSpec::Eom {
            cluster_selection_epsilon: 0.0,
        });
        let a = e.assign(&Point([1.0, 2.0]), &labeling, f64::INFINITY);
        assert_eq!(a.neighbor, 0);
        // The lone training point is noise under EOM, so the query is too.
        assert_eq!(a.label, NOISE);
    }

    #[test]
    fn repeated_queries_hit_the_memoized_labeling() {
        let pts = two_blobs(60, 11);
        let e = engine(&pts);
        assert_eq!(e.labelings_computed(), 0);
        let spec = LabelingSpec::Cut { eps: 7.5 };
        let first = e.labeling(spec);
        assert_eq!(e.labelings_computed(), 1);
        // Many repeats: the computation count must not move (the cache is
        // consulted, not just returning equal results by recomputing).
        for _ in 0..100 {
            let again = e.labeling(spec);
            assert!(Arc::ptr_eq(&first, &again));
        }
        assert_eq!(e.labelings_computed(), 1);
        // Distinct specs each compute exactly once.
        e.labeling(LabelingSpec::CutK { k: 2 });
        e.labeling(LabelingSpec::Eom {
            cluster_selection_epsilon: 0.0,
        });
        e.labeling(LabelingSpec::CutK { k: 2 });
        assert_eq!(e.labelings_computed(), 3);
    }

    #[test]
    fn cache_resets_into_a_new_generation_at_cap() {
        let pts = two_blobs(30, 12);
        let e = engine(&pts);
        for i in 0..LABELING_CACHE_CAP {
            e.labeling(LabelingSpec::CutK { k: i + 1 });
        }
        let full = e.cache_snapshot();
        assert_eq!(full.generation, 0);
        assert_eq!(full.entries.len(), LABELING_CACHE_CAP);
        // One past the cap: new generation, holding only the newcomer.
        e.labeling(LabelingSpec::Cut { eps: 3.25 });
        let reset = e.cache_snapshot();
        assert_eq!(reset.generation, 1);
        assert_eq!(reset.entries.len(), 1);
        assert_eq!(reset.entries[0].0, LabelingSpec::Cut { eps: 3.25 });
        // The pre-reset snapshot is immutable: still fully populated.
        assert_eq!(full.entries.len(), LABELING_CACHE_CAP);
        // A spec evicted by the reset recomputes (counter moves by one).
        let before = e.labelings_computed();
        e.labeling(LabelingSpec::CutK { k: 1 });
        assert_eq!(e.labelings_computed(), before + 1);
    }

    #[test]
    fn duplicate_heavy_model_assigns_consistently() {
        let mut pts = two_blobs(40, 4);
        for i in 0..30 {
            pts.push(pts[i]);
        }
        let e = engine(&pts);
        let spec = LabelingSpec::Eom {
            cluster_selection_epsilon: 0.0,
        };
        let labeling = e.labeling(spec);
        // A query exactly on a duplicated training point stays in its blob.
        let a = e.assign(&pts[0], &labeling, f64::INFINITY);
        assert_eq!(a.label, labeling.labels[0]);
    }
}
