//! The query engine: cheap reuse of one expensive hierarchy build.
//!
//! Three query families over a loaded [`ClusterModel`]:
//!
//! * **flat cuts** — single-linkage labelings at an arbitrary distance
//!   `eps` or an exact cluster count `k` ([`LabelingSpec::Cut`],
//!   [`LabelingSpec::CutK`]);
//! * **EOM extraction** — stability-based flat clusters with the
//!   `cluster_selection_epsilon` merge knob ([`LabelingSpec::Eom`]);
//! * **out-of-sample assignment** — label a point the model has never seen
//!   by kNN against the kd-tree plus the nearest-core-distance rule
//!   ([`QueryEngine::assign`]).
//!
//! Labelings are memoized (many requests ask for the same `eps`), and
//! batched assignments fan out over the rayon pooled executor — run them
//! inside a `ThreadPool::install` to pick the width.

use crate::artifact::ClusterModel;
use parclust::{count_clusters, extract_eom_eps, single_linkage_cut, single_linkage_k, NOISE};
use parclust_geom::Point;
use rayon::prelude::*;
use std::sync::{Arc, Mutex};

/// Which labeling of the training points a query refers to.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LabelingSpec {
    /// EOM extraction with the given `cluster_selection_epsilon`
    /// (0.0 = plain excess-of-mass selection).
    Eom { cluster_selection_epsilon: f64 },
    /// Single-linkage cut at distance `eps`.
    Cut { eps: f64 },
    /// Single-linkage cut into exactly `k` clusters.
    CutK { k: usize },
}

/// A materialized labeling of the training points.
pub struct Labeling {
    pub spec: LabelingSpec,
    /// Per-point labels, [`NOISE`] for noise; consecutive from 0.
    pub labels: Vec<u32>,
    pub num_clusters: usize,
    pub num_noise: usize,
}

/// Result of one out-of-sample assignment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Assignment {
    /// Label under the requested labeling ([`NOISE`] if the nearest core
    /// neighbor is noise or farther than `max_dist`).
    pub label: u32,
    /// Training point the label was taken from.
    pub neighbor: u32,
    /// Mutual reachability distance to that neighbor.
    pub distance: f64,
}

/// Upper bound on memoized labelings; past it the cache resets (labelings
/// are cheap to recompute, the cache only smooths steady-state traffic).
const LABELING_CACHE_CAP: usize = 64;

pub struct QueryEngine<const D: usize> {
    model: Arc<ClusterModel<D>>,
    cache: Mutex<Vec<(LabelingSpec, Arc<Labeling>)>>,
}

impl<const D: usize> QueryEngine<D> {
    pub fn new(model: Arc<ClusterModel<D>>) -> Self {
        QueryEngine {
            model,
            cache: Mutex::new(Vec::new()),
        }
    }

    pub fn model(&self) -> &ClusterModel<D> {
        &self.model
    }

    /// Compute (or fetch from cache) the labeling described by `spec`.
    ///
    /// `Eom`/`Cut` specs with NaN parameters are rejected by the HTTP layer;
    /// at this level NaN would simply never hit the cache.
    pub fn labeling(&self, spec: LabelingSpec) -> Arc<Labeling> {
        if let Some(hit) = self
            .cache
            .lock()
            .unwrap()
            .iter()
            .find(|(s, _)| *s == spec)
            .map(|(_, l)| Arc::clone(l))
        {
            return hit;
        }
        let labels = match spec {
            LabelingSpec::Eom {
                cluster_selection_epsilon,
            } => extract_eom_eps(&self.model.condensed, cluster_selection_epsilon),
            LabelingSpec::Cut { eps } => single_linkage_cut(&self.model.dendrogram, eps),
            LabelingSpec::CutK { k } => single_linkage_k(&self.model.dendrogram, k),
        };
        let num_noise = labels.iter().filter(|&&l| l == NOISE).count();
        let num_clusters = count_clusters(&labels);
        let out = Arc::new(Labeling {
            spec,
            labels,
            num_clusters,
            num_noise,
        });
        let mut cache = self.cache.lock().unwrap();
        if cache.len() >= LABELING_CACHE_CAP {
            cache.clear();
        }
        cache.push((spec, Arc::clone(&out)));
        out
    }

    /// Core distance of an *unseen* query point, defined as if it were
    /// inserted into the training set: the distance to its `minPts`-th
    /// nearest neighbor counting the query itself — i.e. the
    /// `(minPts − 1)`-th nearest training point (0 when `minPts ≤ 1`).
    /// `knn` must be the sorted result of a kd-tree query with at least
    /// `min(minPts − 1, n)` entries.
    fn query_core_distance(&self, knn: &[(f64, u32)]) -> f64 {
        if self.model.min_pts <= 1 || knn.is_empty() {
            return 0.0;
        }
        let i = (self.model.min_pts - 2).min(knn.len() - 1);
        knn[i].0.sqrt()
    }

    /// Out-of-sample assignment: among the query's `minPts` nearest
    /// training points, pick the one minimizing the mutual reachability
    /// distance `max{d(q,p), cd(q), cd(p)}` (ties toward the earlier
    /// neighbor) and inherit its label under `labeling`; the result is
    /// noise if that distance exceeds `max_dist`.
    pub fn assign(&self, q: &Point<D>, labeling: &Labeling, max_dist: f64) -> Assignment {
        let k = self.model.min_pts.max(1);
        let knn = self.model.tree.knn(q, k);
        debug_assert!(!knn.is_empty(), "models hold at least one point");
        let cd_q = self.query_core_distance(&knn);
        let mut best: Option<(f64, u32)> = None;
        for &(d_sq, id) in &knn {
            let m = d_sq
                .sqrt()
                .max(cd_q)
                .max(self.model.core_distances[id as usize]);
            if best.is_none() || m < best.unwrap().0 {
                best = Some((m, id));
            }
        }
        let (distance, neighbor) = best.expect("non-empty kNN");
        let label = if distance <= max_dist {
            labeling.labels[neighbor as usize]
        } else {
            NOISE
        };
        Assignment {
            label,
            neighbor,
            distance,
        }
    }

    /// Batched [`QueryEngine::assign`], fanned out over the rayon pooled
    /// executor (order-preserving). Call inside `ThreadPool::install` to
    /// control the width.
    pub fn assign_batch(
        &self,
        queries: &[Point<D>],
        spec: LabelingSpec,
        max_dist: f64,
    ) -> Vec<Assignment> {
        let labeling = self.labeling(spec);
        queries
            .par_iter()
            .with_min_len(8)
            .map(|q| self.assign(q, &labeling, max_dist))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::prelude::*;

    fn two_blobs(n_per: usize, seed: u64) -> Vec<Point<2>> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut pts = Vec::new();
        for &(cx, cy) in &[(0.0, 0.0), (60.0, 0.0)] {
            for _ in 0..n_per {
                pts.push(Point([
                    cx + rng.gen_range(-2.0..2.0),
                    cy + rng.gen_range(-2.0..2.0),
                ]));
            }
        }
        pts
    }

    fn engine(pts: &[Point<2>]) -> QueryEngine<2> {
        QueryEngine::new(Arc::new(ClusterModel::build(pts, 5, 10)))
    }

    #[test]
    fn labelings_match_direct_calls_and_cache() {
        let pts = two_blobs(80, 1);
        let e = engine(&pts);
        let eom = e.labeling(LabelingSpec::Eom {
            cluster_selection_epsilon: 0.0,
        });
        assert_eq!(eom.labels, extract_eom_eps(&e.model().condensed, 0.0));
        assert_eq!(eom.num_clusters, 2);
        let cut = e.labeling(LabelingSpec::Cut { eps: 10.0 });
        assert_eq!(cut.labels, single_linkage_cut(&e.model().dendrogram, 10.0));
        assert_eq!(cut.num_clusters, 2);
        let k3 = e.labeling(LabelingSpec::CutK { k: 3 });
        assert_eq!(k3.num_clusters, 3);
        // Second fetch is the same Arc (cache hit).
        let again = e.labeling(LabelingSpec::Cut { eps: 10.0 });
        assert!(Arc::ptr_eq(&cut, &again));
    }

    #[test]
    fn assign_recovers_training_labels() {
        let pts = two_blobs(80, 2);
        let e = engine(&pts);
        let labeling = e.labeling(LabelingSpec::Eom {
            cluster_selection_epsilon: 0.0,
        });
        // Queries near the blob centers inherit the blob labels.
        let a0 = e.assign(&Point([0.5, 0.5]), &labeling, f64::INFINITY);
        let a1 = e.assign(&Point([60.5, -0.5]), &labeling, f64::INFINITY);
        assert_eq!(a0.label, labeling.labels[0]);
        assert_eq!(a1.label, labeling.labels[80]);
        assert_ne!(a0.label, a1.label);
        assert!(a0.distance < 5.0);
        // A faraway query is noise under a finite max_dist but inherits the
        // nearest blob under an infinite one.
        let far = Point([1000.0, 1000.0]);
        assert_eq!(e.assign(&far, &labeling, 50.0).label, NOISE);
        assert_ne!(e.assign(&far, &labeling, f64::INFINITY).label, NOISE);
    }

    #[test]
    fn assign_batch_matches_singles() {
        let pts = two_blobs(60, 3);
        let e = engine(&pts);
        let spec = LabelingSpec::Cut { eps: 10.0 };
        let labeling = e.labeling(spec);
        let mut rng = StdRng::seed_from_u64(7);
        let queries: Vec<Point<2>> = (0..100)
            .map(|_| Point([rng.gen_range(-10.0..70.0), rng.gen_range(-10.0..10.0)]))
            .collect();
        let batch = e.assign_batch(&queries, spec, 25.0);
        for (q, got) in queries.iter().zip(&batch) {
            assert_eq!(*got, e.assign(q, &labeling, 25.0));
        }
    }

    #[test]
    fn single_point_model_queries() {
        let e = QueryEngine::new(Arc::new(ClusterModel::build(&[Point([1.0, 2.0])], 5, 5)));
        let cut = e.labeling(LabelingSpec::Cut { eps: 1.0 });
        assert_eq!(cut.labels, vec![0]);
        let labeling = e.labeling(LabelingSpec::Eom {
            cluster_selection_epsilon: 0.0,
        });
        let a = e.assign(&Point([1.0, 2.0]), &labeling, f64::INFINITY);
        assert_eq!(a.neighbor, 0);
        // The lone training point is noise under EOM, so the query is too.
        assert_eq!(a.label, NOISE);
    }

    #[test]
    fn duplicate_heavy_model_assigns_consistently() {
        let mut pts = two_blobs(40, 4);
        for i in 0..30 {
            pts.push(pts[i]);
        }
        let e = engine(&pts);
        let spec = LabelingSpec::Eom {
            cluster_selection_epsilon: 0.0,
        };
        let labeling = e.labeling(spec);
        // A query exactly on a duplicated training point stays in its blob.
        let a = e.assign(&pts[0], &labeling, f64::INFINITY);
        assert_eq!(a.label, labeling.labels[0]);
    }
}
