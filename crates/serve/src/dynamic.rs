//! Dynamic (mutable) models behind the serving layer.
//!
//! A [`DynEntry`] owns a [`parclust_dyn::DynamicModel`] plus the journal
//! needed to persist it, and republishes a fresh read-only query handle
//! through the [`ModelRegistry`]'s snapshot cell after every mutation —
//! readers keep routing lock-free against complete, immutable model
//! versions while `POST /models/{id}/insert` and `POST /admin/compact`
//! mutate behind a per-model mutex.
//!
//! ## Versioned dynamic artifact ("PCDY")
//!
//! The base [`ClusterModel`] artifact stays at `FORMAT_VERSION` 2 — a
//! dynamic model is persisted as a *wrapper* around an ordinary base
//! artifact plus the journal of batches applied since that base was cut
//! (all little-endian):
//!
//! ```text
//! "PCDY" | dyn_version u32 | dims u32
//! policy u8 | rebuild_fraction f64 | max_live_pairs u64   (0 = MemoGFK)
//! model_version u64 | base_version u64
//! base_len u64 | base bytes            (a complete "PCSM" artifact)
//! n_batches u64, per batch: n_inserts u64, coords n·D f64,
//!                           n_deletes u64, live indices u64[]
//! checksum  FNV-1a 64 of every preceding byte
//! ```
//!
//! Loading replays the journal through [`DynamicModel::apply`] — which is
//! bit-identical to a from-scratch build at every step (pinned by
//! `tests/incremental_semantics.rs`) — and cross-checks the final version
//! number. [`DynModelHandle::compact`] rebases: it rebuilds, serializes
//! the current state as the new base, and empties the journal.

use crate::artifact::{fnv1a64, ClusterModel};
use crate::registry::{handle_for_model, ModelHandle, ModelRegistry};
use crate::with_model_dims;
use parclust_data::io::le;
use parclust_dyn::{DynConfig, DynamicModel, MutationBatch, MutationPolicy};
use parclust_geom::Point;
use parclust_kdtree::KdTree;
use serde_json::Value;
use std::io::{self, Read};
use std::path::Path;
use std::sync::{Arc, Mutex};

/// Dynamic-wrapper magic: "ParClust DYnamic".
pub const DYN_MAGIC: &[u8; 4] = b"PCDY";
/// Current dynamic-wrapper format version.
pub const DYN_FORMAT_VERSION: u32 = 1;

fn bad(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

/// Dimension-erased mutable model: what the admin/mutation routes speak.
/// Query traffic never goes through this — every mutation republishes a
/// plain [`ModelHandle`] and readers keep using registry snapshots.
pub trait DynModelHandle: Send + Sync {
    /// Point dimensionality.
    fn dims(&self) -> usize;
    /// Current model version (bumps by one per applied batch).
    fn version(&self) -> u64;
    /// Mutation-facing metadata (merged into `GET /models/{id}` info by
    /// the caller if desired).
    fn info(&self) -> Value;
    /// A read-only query handle over the *current* state.
    fn query_handle(&self) -> Arc<dyn ModelHandle>;
    /// Apply one batch (row-major flat insert coordinates + live delete
    /// indices), journal it, and republish `id` in `registry`. Returns the
    /// apply report as JSON.
    fn mutate(
        &self,
        registry: &ModelRegistry,
        id: &str,
        inserts_flat: &[f64],
        deletes: &[usize],
    ) -> Result<Value, String>;
    /// Force a full rebuild, rebase the journal onto the rebuilt state,
    /// republish, and optionally persist the wrapper to `save_path`.
    fn compact(
        &self,
        registry: &ModelRegistry,
        id: &str,
        save_path: Option<&Path>,
    ) -> Result<Value, String>;
    /// Persist the wrapper (base artifact + journal) to `path`.
    fn save(&self, path: &Path) -> io::Result<()>;
}

struct DynState<const D: usize> {
    model: DynamicModel<D>,
    /// Serialized base artifact (complete "PCSM" bytes) the journal
    /// replays on top of.
    base: Vec<u8>,
    base_version: u64,
    journal: Vec<MutationBatch<D>>,
}

/// A dynamic model of fixed dimension: one mutex around the model and its
/// journal. The registry publish happens while the mutex is held, so
/// published snapshots appear in version order.
pub struct DynEntry<const D: usize> {
    state: Mutex<DynState<D>>,
}

fn policy_byte(p: MutationPolicy) -> u8 {
    match p {
        MutationPolicy::Auto => 0,
        MutationPolicy::AlwaysRebuild => 1,
        MutationPolicy::ForceMerge => 2,
    }
}

fn policy_from_byte(b: u8) -> io::Result<MutationPolicy> {
    match b {
        0 => Ok(MutationPolicy::Auto),
        1 => Ok(MutationPolicy::AlwaysRebuild),
        2 => Ok(MutationPolicy::ForceMerge),
        other => Err(bad(format!("unknown mutation policy byte {other}"))),
    }
}

/// Parse a policy knob as accepted by the admin API.
pub fn policy_from_str(s: &str) -> Result<MutationPolicy, String> {
    match s {
        "auto" => Ok(MutationPolicy::Auto),
        "rebuild" => Ok(MutationPolicy::AlwaysRebuild),
        "merge" => Ok(MutationPolicy::ForceMerge),
        other => Err(format!(
            "unknown policy {other:?} (expected \"auto\", \"rebuild\", or \"merge\")"
        )),
    }
}

fn policy_str(p: MutationPolicy) -> &'static str {
    match p {
        MutationPolicy::Auto => "auto",
        MutationPolicy::AlwaysRebuild => "rebuild",
        MutationPolicy::ForceMerge => "merge",
    }
}

impl<const D: usize> DynEntry<D> {
    /// Wrap a freshly loaded base artifact as a dynamic model at
    /// `base_version` with an empty journal.
    pub fn from_artifact(
        model: ClusterModel<D>,
        base_bytes: Vec<u8>,
        cfg: DynConfig,
    ) -> io::Result<Arc<Self>> {
        let dyn_model = DynamicModel::from_parts(
            model.points,
            model.min_pts,
            model.min_cluster_size,
            cfg,
            model.core_distances,
            model.dendrogram,
            model.condensed,
            1,
        )
        .map_err(bad)?;
        Ok(Arc::new(DynEntry {
            state: Mutex::new(DynState {
                model: dyn_model,
                base: base_bytes,
                base_version: 1,
                journal: Vec::new(),
            }),
        }))
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, DynState<D>> {
        // A panic while holding the lock means a poisoned model; recovering
        // the guard would serve a state of unknown integrity.
        self.state.lock().expect("dynamic model lock poisoned")
    }
}

/// Rebuild a servable [`ClusterModel`] from the dynamic model's current
/// state (the kd-tree is rebuilt: deterministic, and cheap next to the
/// hierarchy work that produced this state).
fn to_cluster_model<const D: usize>(m: &DynamicModel<D>) -> ClusterModel<D> {
    ClusterModel {
        min_pts: m.min_pts(),
        min_cluster_size: m.min_cluster_size(),
        points: m.points().to_vec(),
        tree: KdTree::build(m.points()),
        core_distances: m.core_distances().to_vec(),
        dendrogram: m.dendrogram().clone(),
        condensed: m.condensed().clone(),
    }
}

fn write_wrapper<const D: usize>(state: &DynState<D>) -> io::Result<Vec<u8>> {
    let cfg = state.model.config();
    let mut buf = Vec::new();
    let w = &mut buf;
    w.extend_from_slice(DYN_MAGIC);
    le::write_u32(w, DYN_FORMAT_VERSION)?;
    le::write_u32(w, D as u32)?;
    w.push(policy_byte(cfg.policy));
    le::write_f64(w, cfg.rebuild_fraction)?;
    le::write_u64(w, cfg.max_live_pairs.unwrap_or(0) as u64)?;
    le::write_u64(w, state.model.version())?;
    le::write_u64(w, state.base_version)?;
    le::write_u64(w, state.base.len() as u64)?;
    w.extend_from_slice(&state.base);
    le::write_u64(w, state.journal.len() as u64)?;
    for batch in &state.journal {
        le::write_u64(w, batch.inserts.len() as u64)?;
        for p in &batch.inserts {
            for &c in p.coords() {
                le::write_f64(w, c)?;
            }
        }
        le::write_u64(w, batch.deletes.len() as u64)?;
        for &i in &batch.deletes {
            le::write_u64(w, i as u64)?;
        }
    }
    let sum = fnv1a64(&buf);
    le::write_u64(&mut buf, sum)?;
    Ok(buf)
}

impl<const D: usize> DynModelHandle for DynEntry<D> {
    fn dims(&self) -> usize {
        D
    }

    fn version(&self) -> u64 {
        self.lock().model.version()
    }

    fn info(&self) -> Value {
        let state = self.lock();
        let cfg = state.model.config();
        serde_json::json!({
            "dynamic": true,
            "version": state.model.version(),
            "n": state.model.len() as u64,
            "journal_batches": state.journal.len() as u64,
            "base_version": state.base_version,
            "policy": policy_str(cfg.policy),
            "rebuild_fraction": cfg.rebuild_fraction,
            "max_live_pairs": cfg.max_live_pairs.unwrap_or(0) as u64,
        })
    }

    fn query_handle(&self) -> Arc<dyn ModelHandle> {
        handle_for_model(to_cluster_model(&self.lock().model))
    }

    fn mutate(
        &self,
        registry: &ModelRegistry,
        id: &str,
        inserts_flat: &[f64],
        deletes: &[usize],
    ) -> Result<Value, String> {
        if !inserts_flat.len().is_multiple_of(D) {
            return Err(format!(
                "{} insert coordinates do not split into {D}-dimensional points",
                inserts_flat.len()
            ));
        }
        if inserts_flat.iter().any(|c| !c.is_finite()) {
            return Err("insert coordinates must be finite".to_string());
        }
        let batch = MutationBatch {
            inserts: inserts_flat
                .chunks_exact(D)
                .map(|c| {
                    let mut p = [0.0; D];
                    p.copy_from_slice(c);
                    Point(p)
                })
                .collect(),
            deletes: deletes.to_vec(),
        };
        if batch.is_empty() {
            return Err("empty mutation batch (no inserts, no deletes)".to_string());
        }
        let mut state = self.lock();
        let report = state.model.apply(&batch)?;
        state.journal.push(batch);
        // Publish while still holding the mutation lock: registry snapshots
        // of this id appear in version order.
        registry
            .insert(id, handle_for_model(to_cluster_model(&state.model)))
            .map_err(|e| format!("republish {id:?}: {e}"))?;
        Ok(serde_json::json!({
            "model": id,
            "version": report.version,
            "n": report.n as u64,
            "inserted": report.inserted as u64,
            "deleted": report.deleted as u64,
            "path": report.path.as_str(),
            "recomputed": report.recomputed as u64,
        }))
    }

    fn compact(
        &self,
        registry: &ModelRegistry,
        id: &str,
        save_path: Option<&Path>,
    ) -> Result<Value, String> {
        let mut state = self.lock();
        let report = state.model.rebuild();
        let compacted = to_cluster_model(&state.model);
        state.base = compacted.to_bytes().map_err(|e| format!("rebase: {e}"))?;
        state.base_version = report.version;
        state.journal.clear();
        registry
            .insert(id, handle_for_model(compacted))
            .map_err(|e| format!("republish {id:?}: {e}"))?;
        let saved = match save_path {
            Some(path) => {
                let buf = write_wrapper(&*state).map_err(|e| format!("serialize: {e}"))?;
                std::fs::write(path, buf).map_err(|e| format!("write {path:?}: {e}"))?;
                Value::String(path.display().to_string())
            }
            None => Value::Null,
        };
        Ok(serde_json::json!({
            "model": id,
            "version": report.version,
            "n": report.n as u64,
            "journal_batches": 0u64,
            "saved": saved,
        }))
    }

    fn save(&self, path: &Path) -> io::Result<()> {
        let buf = write_wrapper(&*self.lock())?;
        if let Some(dir) = path.parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir)?;
            }
        }
        std::fs::write(path, buf)
    }
}

/// Parse a dynamic wrapper of known dimension, replaying the journal.
fn from_bytes<const D: usize>(bytes: &[u8]) -> io::Result<Arc<DynEntry<D>>> {
    if bytes.len() < DYN_MAGIC.len() + 8 {
        return Err(bad("dynamic artifact too short"));
    }
    let (payload, tail) = bytes.split_at(bytes.len() - 8);
    let stored = u64::from_le_bytes(tail.try_into().unwrap());
    if fnv1a64(payload) != stored {
        return Err(bad("dynamic artifact checksum mismatch (corrupt file)"));
    }
    let mut r = payload;
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)?;
    if &magic != DYN_MAGIC {
        return Err(bad("bad dynamic artifact magic"));
    }
    let version = le::read_u32(&mut r)?;
    if version != DYN_FORMAT_VERSION {
        return Err(bad(format!(
            "unsupported dynamic artifact version {version} \
             (this build reads {DYN_FORMAT_VERSION})"
        )));
    }
    let dims = le::read_u32(&mut r)?;
    if dims as usize != D {
        return Err(bad(format!(
            "dynamic artifact has {dims} dims, expected {D}"
        )));
    }
    let mut policy = [0u8; 1];
    r.read_exact(&mut policy)?;
    let policy = policy_from_byte(policy[0])?;
    let rebuild_fraction = le::read_f64(&mut r)?;
    if !rebuild_fraction.is_finite() || rebuild_fraction < 0.0 {
        return Err(bad("rebuild_fraction must be finite and non-negative"));
    }
    let cap = le::read_u64(&mut r)? as usize;
    let cfg = DynConfig {
        policy,
        rebuild_fraction,
        max_live_pairs: if cap == 0 { None } else { Some(cap) },
    };
    let model_version = le::read_u64(&mut r)?;
    let base_version = le::read_u64(&mut r)?;
    let base_len = le::read_u64(&mut r)? as usize;
    if base_len > r.len() {
        return Err(bad("dynamic artifact base length overruns the file"));
    }
    let (base, mut r) = r.split_at(base_len);
    let base_model = ClusterModel::<D>::from_bytes(base)?;
    let mut model = DynamicModel::from_parts(
        base_model.points,
        base_model.min_pts,
        base_model.min_cluster_size,
        cfg,
        base_model.core_distances,
        base_model.dendrogram,
        base_model.condensed,
        base_version,
    )
    .map_err(bad)?;
    let n_batches = le::read_u64(&mut r)? as usize;
    let mut journal = Vec::with_capacity(n_batches.min(1 << 16));
    for b in 0..n_batches {
        let n_ins = le::read_u64(&mut r)? as usize;
        let mut inserts = Vec::with_capacity(n_ins.min(1 << 20));
        for _ in 0..n_ins {
            let mut c = [0.0; D];
            for slot in c.iter_mut() {
                *slot = le::read_f64(&mut r)?;
            }
            inserts.push(Point(c));
        }
        let n_del = le::read_u64(&mut r)? as usize;
        let mut deletes = Vec::with_capacity(n_del.min(1 << 20));
        for _ in 0..n_del {
            deletes.push(le::read_u64(&mut r)? as usize);
        }
        let batch = MutationBatch { inserts, deletes };
        model
            .apply(&batch)
            // analyze:allow(hotpath-alloc-in-loop) — load path: replay errors are terminal
            .map_err(|e| bad(format!("journal batch {b} failed to replay: {e}")))?;
        journal.push(batch);
    }
    if model.version() != model_version {
        return Err(bad(format!(
            "journal replay reached version {}, header claims {model_version}",
            model.version()
        )));
    }
    if !r.is_empty() {
        return Err(bad("trailing bytes after dynamic artifact payload"));
    }
    Ok(Arc::new(DynEntry {
        state: Mutex::new(DynState {
            model,
            base: base.to_vec(),
            base_version,
            journal,
        }),
    }))
}

/// Dimensionality of a dynamic wrapper (header peek, offset shared with
/// the base artifact format).
pub fn peek_dyn_dims(bytes: &[u8]) -> io::Result<usize> {
    if bytes.len() < 12 || &bytes[0..4] != DYN_MAGIC {
        return Err(bad("bad dynamic artifact magic"));
    }
    Ok(u32::from_le_bytes(bytes[8..12].try_into().unwrap()) as usize)
}

/// Load a `"PCDY"` dynamic artifact, dispatching on its stored
/// dimensionality.
pub fn load_dynamic_path(path: &Path) -> io::Result<Arc<dyn DynModelHandle>> {
    let bytes = std::fs::read(path)?;
    let dims = peek_dyn_dims(&bytes)?;
    if !crate::SUPPORTED_DIMS.contains(&dims) {
        return Err(bad(format!(
            "dynamic artifact {} has unsupported dimensionality {dims} (supported: {:?})",
            path.display(),
            crate::SUPPORTED_DIMS
        )));
    }
    Ok(with_model_dims!(dims, |D| from_bytes::<D>(&bytes)?))
}

/// Wrap an ordinary `"PCSM"` artifact at `path` as a fresh dynamic model
/// with the given knobs (empty journal, version 1).
pub fn wrap_artifact_path(path: &Path, cfg: DynConfig) -> io::Result<Arc<dyn DynModelHandle>> {
    let bytes = std::fs::read(path)?;
    let dims = crate::artifact::peek_dims(path)?;
    if !crate::SUPPORTED_DIMS.contains(&dims) {
        return Err(bad(format!(
            "artifact {} has unsupported dimensionality {dims} (supported: {:?})",
            path.display(),
            crate::SUPPORTED_DIMS
        )));
    }
    Ok(with_model_dims!(dims, |D| {
        let model = ClusterModel::<D>::from_bytes(&bytes)?;
        DynEntry::<D>::from_artifact(model, bytes, cfg)?
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::prelude::*;

    fn blob_points(n: usize, seed: u64) -> Vec<Point<2>> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| Point([rng.gen_range(-5.0..5.0), rng.gen_range(-5.0..5.0)]))
            .collect()
    }

    fn tmp(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("parclust-dyn-serve-{}-{name}", std::process::id()));
        p
    }

    fn entry_for(pts: &[Point<2>], seed: u64) -> Arc<dyn DynModelHandle> {
        let model = ClusterModel::build(pts, 4, 3);
        let path = tmp(&format!("base-{seed}.pcsm"));
        model.save(&path).unwrap();
        let entry = wrap_artifact_path(&path, DynConfig::default()).unwrap();
        std::fs::remove_file(&path).ok();
        entry
    }

    #[test]
    fn mutate_republishes_and_versions_advance() {
        let registry = ModelRegistry::new();
        let entry = entry_for(&blob_points(60, 1), 1);
        registry.insert("m", entry.query_handle()).unwrap();
        assert_eq!(registry.snapshot().get("m").unwrap().num_points(), 60);
        let report = entry
            .mutate(&registry, "m", &[9.0, 9.0, 9.5, 9.5], &[0])
            .unwrap();
        assert_eq!(report.get("n").and_then(Value::as_u64), Some(61));
        assert_eq!(report.get("version").and_then(Value::as_u64), Some(2));
        assert_eq!(registry.snapshot().get("m").unwrap().num_points(), 61);
        // Empty and malformed batches are rejected without a version bump.
        assert!(entry.mutate(&registry, "m", &[], &[]).is_err());
        assert!(entry.mutate(&registry, "m", &[1.0], &[]).is_err());
        assert!(entry.mutate(&registry, "m", &[f64::NAN, 0.0], &[]).is_err());
        assert_eq!(entry.version(), 2);
    }

    #[test]
    fn wrapper_roundtrips_with_journal_replay() {
        let registry = ModelRegistry::new();
        let entry = entry_for(&blob_points(50, 2), 2);
        registry.insert("m", entry.query_handle()).unwrap();
        entry
            .mutate(&registry, "m", &[8.0, 8.0, 8.25, 8.25, 8.5, 8.5], &[3, 7])
            .unwrap();
        entry.mutate(&registry, "m", &[], &[0, 10]).unwrap();
        let path = tmp("roundtrip.pcdy");
        entry.save(&path).unwrap();
        let back = load_dynamic_path(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(back.dims(), 2);
        assert_eq!(back.version(), entry.version());
        let a = entry.info();
        let b = back.info();
        assert_eq!(a.get("n"), b.get("n"));
        assert_eq!(a.get("journal_batches"), b.get("journal_batches"));
        // The replayed model serves the same labeling.
        let spec = crate::engine::LabelingSpec::Eom {
            cluster_selection_epsilon: 0.0,
        };
        assert_eq!(
            entry.query_handle().labeling(spec).labels,
            back.query_handle().labeling(spec).labels
        );
    }

    #[test]
    fn compact_rebases_and_empties_the_journal() {
        let registry = ModelRegistry::new();
        let entry = entry_for(&blob_points(40, 3), 3);
        registry.insert("m", entry.query_handle()).unwrap();
        entry.mutate(&registry, "m", &[7.0, 7.0], &[]).unwrap();
        let path = tmp("compacted.pcdy");
        let spec = crate::engine::LabelingSpec::Eom {
            cluster_selection_epsilon: 0.0,
        };
        let before = entry.query_handle().labeling(spec).labels.clone();
        let report = entry.compact(&registry, "m", Some(&path)).unwrap();
        assert_eq!(
            report.get("journal_batches").and_then(Value::as_u64),
            Some(0)
        );
        assert_eq!(report.get("version").and_then(Value::as_u64), Some(3));
        // Compaction is a rebase, not a semantic change.
        assert_eq!(entry.query_handle().labeling(spec).labels, before);
        let back = load_dynamic_path(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(back.version(), 3);
        assert_eq!(back.query_handle().labeling(spec).labels, before);
    }

    #[test]
    fn corrupt_wrappers_are_rejected() {
        let entry = entry_for(&blob_points(30, 4), 4);
        let path = tmp("corrupt.pcdy");
        entry.save(&path).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        std::fs::remove_file(&path).ok();
        // Bit flip anywhere → checksum mismatch.
        let mut flipped = bytes.clone();
        flipped[20] ^= 0x10;
        assert!(load_dynamic_path_bytes(&flipped).is_err());
        // Truncation → clean error.
        assert!(load_dynamic_path_bytes(&bytes[..bytes.len() / 2]).is_err());
        // Wrong magic → not a dynamic artifact.
        let mut wrong = bytes.clone();
        wrong[0] = b'X';
        assert!(load_dynamic_path_bytes(&wrong).is_err());
    }

    /// Test shim: run the load path over in-memory bytes.
    fn load_dynamic_path_bytes(bytes: &[u8]) -> io::Result<Arc<dyn DynModelHandle>> {
        let dims = peek_dyn_dims(bytes)?;
        if !crate::SUPPORTED_DIMS.contains(&dims) {
            return Err(bad("unsupported dims"));
        }
        Ok(with_model_dims!(dims, |D| from_bytes::<D>(bytes)?))
    }
}
