//! A std-only threaded HTTP/1.1 front end for the model registry, and the
//! minimal client the load generator and tests drive it with.
//!
//! No network dependencies: `std::net` sockets, the workspace serde shim
//! for JSON. The server runs `workers` connection threads (shared
//! non-blocking listener, keep-alive connections) and fans batched queries
//! out over a dedicated rayon pool of `pool_threads` workers — so request
//! concurrency and data parallelism are tuned independently.
//!
//! Routing is multi-model: every query route exists per-model under
//! `/models/{id}/...`, and the legacy single-model routes serve the
//! registry's *default* model. Admin routes hot-load/unload artifacts.
//!
//! | route | body | answer |
//! |---|---|---|
//! | `GET /healthz` | — | liveness |
//! | `GET /metrics` | — | Prometheus text metrics |
//! | `GET /models` | — | loaded model ids + default |
//! | `GET /models/{id}` (alias `/model`) | — | model metadata |
//! | `POST /models/{id}/cut` (alias `/cut`) | `{"eps": f}` or `{"k": n}` | single-linkage labeling |
//! | `POST /models/{id}/eom` (alias `/eom`) | `{"cluster_selection_epsilon": f?}` | EOM labeling |
//! | `POST /models/{id}/assign` (alias `/assign`) | `{"points": [[..]..], "labeling"?, "max_dist"?}` | out-of-sample labels |
//! | `POST /models/{id}/assign_binary` (alias `/assign_binary`) | [`proto`](crate::proto) request frame | response frame |
//! | `POST /models/{id}/insert` | `{"points"?: [[..]..], "deletes"?: [n..]}` | mutate a dynamic model |
//! | `POST /admin/load` | `{"id": s, "path": s, "default"?: bool, "dynamic"?: bool, ...}` | load an artifact |
//! | `POST /admin/unload` | `{"id": s}` | drop a model |
//! | `POST /admin/compact` | `{"id": s, "save_path"?: s}` | rebuild + rebase a dynamic model |
//!
//! `/admin/load` with `"dynamic": true` wraps a `.pcsm` artifact as a
//! mutable model (optional knobs: `"policy"` of `"auto"`/`"rebuild"`/
//! `"merge"`, `"rebuild_fraction"`, `"max_live_pairs"`); `.pcdy` dynamic
//! wrappers load as dynamic either way. Each `insert` batch applies the
//! incremental pipeline and publishes a new immutable model version —
//! concurrent queries keep reading the version they resolved.
//!
//! JSON labels are integers with noise as `-1`; pass `"include_labels":
//! false` to `/cut` / `/eom` for counts only. `/assign_binary` answers
//! `application/octet-stream` on success and a JSON error otherwise.
//!
//! Every request is observed by the server's [`Metrics`] registry —
//! `GET /metrics` renders per-model/per-route request counters, an
//! in-flight gauge, a malformed-request counter, and per-route latency
//! histograms in the Prometheus text format.

use crate::engine::LabelingSpec;
use crate::metrics::{route_index, Metrics, NO_MODEL};
use crate::proto::{AssignRequest, AssignResponse};
use crate::registry::{ModelHandle, ModelRegistry};
use parclust::NOISE;
use serde_json::Value;
use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Reject request bodies above this size (64 MiB) — bounds memory per
/// connection regardless of what a client claims in Content-Length.
const MAX_BODY: usize = 64 << 20;

#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address, e.g. `127.0.0.1:8077` (port 0 picks an ephemeral one).
    pub addr: String,
    /// Connection worker threads.
    pub workers: usize,
    /// Rayon pool width for batched query fan-out.
    pub pool_threads: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            workers: 4,
            pool_threads: 0, // 0 = rayon default (hardware parallelism)
        }
    }
}

/// A running server; dropping it does NOT stop the workers — call
/// [`Server::shutdown`] (tests) or let the process own it (the binary).
pub struct Server {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    workers: Vec<std::thread::JoinHandle<()>>,
    metrics: Arc<Metrics>,
}

impl Server {
    /// The actually-bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The server's metrics registry (also scraped at `GET /metrics`).
    pub fn metrics(&self) -> &Arc<Metrics> {
        &self.metrics
    }

    /// Signal the workers and join them. In-flight requests finish; idle
    /// keep-alive connections are abandoned to their read timeouts.
    pub fn shutdown(self) {
        self.stop.store(true, Ordering::Release);
        for w in self.workers {
            let _ = w.join();
        }
    }
}

/// Start serving `registry` per `cfg`; returns once the listener is bound.
/// Models can be added/removed afterwards (admin routes or direct registry
/// calls) without restarting.
pub fn start(registry: Arc<ModelRegistry>, cfg: &ServerConfig) -> io::Result<Server> {
    let listener = TcpListener::bind(&cfg.addr)?;
    listener.set_nonblocking(true)?;
    let addr = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let mut builder = rayon::ThreadPoolBuilder::new();
    if cfg.pool_threads > 0 {
        builder = builder.num_threads(cfg.pool_threads);
    }
    let pool = Arc::new(builder.build().map_err(io::Error::other)?);
    let metrics = Arc::new(Metrics::new());
    let workers = (0..cfg.workers.max(1))
        .map(|i| {
            let listener = listener.try_clone()?;
            let registry = Arc::clone(&registry);
            let pool = Arc::clone(&pool);
            let stop = Arc::clone(&stop);
            let metrics = Arc::clone(&metrics);
            std::thread::Builder::new()
                .name(format!("parclust-serve-{i}"))
                .spawn(move || worker_loop(listener, registry, pool, stop, metrics))
        })
        .collect::<io::Result<Vec<_>>>()?;
    Ok(Server {
        addr,
        stop,
        workers,
        metrics,
    })
}

fn worker_loop(
    listener: TcpListener,
    registry: Arc<ModelRegistry>,
    pool: Arc<rayon::ThreadPool>,
    stop: Arc<AtomicBool>,
    metrics: Arc<Metrics>,
) {
    while !stop.load(Ordering::Acquire) {
        match listener.accept() {
            Ok((stream, _)) => {
                // Per-connection errors (resets, malformed framing) only
                // tear down that connection.
                let _ = handle_connection(stream, &registry, &pool, &stop, &metrics);
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(1));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(1)),
        }
    }
}

struct Request {
    method: String,
    path: String,
    keep_alive: bool,
    body: Vec<u8>,
}

/// A response body: JSON (queries, errors), a binary protocol frame, or
/// plain text (the `/metrics` exposition).
enum Body {
    Json(Value),
    Bytes(Vec<u8>),
    Text(String),
}

impl From<Value> for Body {
    fn from(v: Value) -> Body {
        Body::Json(v)
    }
}

fn handle_connection(
    stream: TcpStream,
    registry: &ModelRegistry,
    pool: &rayon::ThreadPool,
    stop: &AtomicBool,
    metrics: &Metrics,
) -> io::Result<()> {
    stream.set_nonblocking(false)?;
    stream.set_read_timeout(Some(Duration::from_secs(30)))?;
    stream.set_nodelay(true)?;
    let mut writer = stream.try_clone()?;
    let mut reader = BufReader::new(stream);
    while !stop.load(Ordering::Acquire) {
        let req = match read_request(&mut reader) {
            Ok(Some(req)) => req,
            Ok(None) => break, // clean EOF between requests
            Err(e) => {
                // Framing error: count it, answer 400 if the peer listens.
                metrics.framing_error();
                let _ = write_response(
                    &mut writer,
                    400,
                    // analyze:allow(hotpath-alloc-in-loop) — cold path: building the 400 body ends the connection
                    &Body::Json(serde_json::json!({"error": format!("{e}")})),
                    false,
                );
                // Closing while the client is still sending (a body we
                // never read, an oversized line) leaves unread data in the
                // socket buffer, which makes the kernel answer with RST —
                // destroying the queued 400 before the peer can read it.
                // Drain a bounded tail first so the error actually arrives.
                drain_request_tail(&mut reader);
                break;
            }
        };
        let keep = req.keep_alive;
        let (route_idx, model_label) = classify(registry, &req);
        metrics.begin();
        let t0 = Instant::now();
        let (status, body) = route(registry, pool, metrics, &req);
        metrics.finish(
            &model_label,
            route_idx,
            status,
            t0.elapsed().as_nanos() as u64,
        );
        write_response(&mut writer, status, &body, keep)?;
        if !keep {
            break;
        }
    }
    Ok(())
}

/// Map a request to its `(route, model)` metric labels. Route labels come
/// from the fixed [`crate::metrics::ROUTES`] set; the model label is the
/// resolved id (the registry default for legacy routes), with unknown ids
/// folded into [`NO_MODEL`] so path scanning cannot grow the metric
/// cardinality.
fn classify(registry: &ModelRegistry, req: &Request) -> (usize, String) {
    let segments: Vec<&str> = req.path.split('/').filter(|s| !s.is_empty()).collect();
    let snapshot = registry.snapshot();
    let known = |id: &str| -> String {
        if snapshot.get(id).is_some() {
            id.to_string()
        } else {
            NO_MODEL.to_string()
        }
    };
    let default_id = || -> String {
        snapshot
            .default_handle()
            .map(|(id, _)| id.to_string())
            .unwrap_or_else(|| NO_MODEL.to_string())
    };
    match (req.method.as_str(), segments.as_slice()) {
        ("GET", ["healthz"]) => (route_index("healthz"), NO_MODEL.to_string()),
        ("GET", ["metrics"]) => (route_index("metrics"), NO_MODEL.to_string()),
        ("GET", ["models"]) => (route_index("models"), NO_MODEL.to_string()),
        ("POST", ["admin", ..]) => (route_index("admin"), NO_MODEL.to_string()),
        ("POST", ["models", id, "insert"]) => (route_index("insert"), known(id)),
        ("GET", ["model"]) => (route_index("info"), default_id()),
        ("GET", ["models", id]) => (route_index("info"), known(id)),
        ("POST", [action @ ("cut" | "eom" | "assign" | "assign_binary")]) => {
            (route_index(action), default_id())
        }
        ("POST", ["models", id, action @ ("cut" | "eom" | "assign" | "assign_binary")]) => {
            (route_index(action), known(id))
        }
        _ => (route_index("other"), NO_MODEL.to_string()),
    }
}

/// After a framing error the connection is torn down; this reads (and
/// discards) what the client is still sending — bounded in bytes and
/// time — so the close sends FIN, not RST, and the 400 written above
/// survives to the peer. Best-effort: any read error just ends the drain.
fn drain_request_tail(reader: &mut BufReader<TcpStream>) {
    const DRAIN_MAX: usize = 256 << 10;
    let _ = reader
        .get_ref()
        .set_read_timeout(Some(Duration::from_millis(200)));
    let mut budget = DRAIN_MAX;
    let mut buf = [0u8; 4096];
    while budget > 0 {
        match reader.read(&mut buf) {
            Ok(0) | Err(_) => break,
            Ok(n) => budget = budget.saturating_sub(n),
        }
    }
}

/// Cap on a single request/header line and on the header count — bounds
/// per-connection memory independently of [`MAX_BODY`] (which only limits
/// declared Content-Length bodies).
const MAX_LINE: usize = 16 << 10;
const MAX_HEADERS: usize = 128;

/// `read_line` with a length cap: a line longer than `MAX_LINE` is an
/// error, not an unbounded allocation. Returns `None` on clean EOF.
fn read_line_limited<R: BufRead>(r: &mut R) -> io::Result<Option<String>> {
    let mut line = String::new();
    let n = r.take(MAX_LINE as u64).read_line(&mut line)?;
    if n == 0 {
        return Ok(None);
    }
    if n == MAX_LINE && !line.ends_with('\n') {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "request line too long",
        ));
    }
    Ok(Some(line))
}

fn read_request<R: BufRead>(r: &mut R) -> io::Result<Option<Request>> {
    let Some(line) = read_line_limited(r)? else {
        return Ok(None);
    };
    let mut parts = line.split_whitespace();
    let method = parts
        .next()
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "empty request line"))?
        .to_string();
    let path = parts
        .next()
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "missing request path"))?
        .to_string();
    let version = parts.next().unwrap_or("HTTP/1.1");
    // HTTP/1.1 defaults to keep-alive; 1.0 to close.
    let mut keep_alive = version.trim() != "HTTP/1.0";
    let mut content_length = 0usize;
    for seen in 0.. {
        if seen >= MAX_HEADERS {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "too many headers",
            ));
        }
        let Some(h) = read_line_limited(r)? else {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "connection closed mid-headers",
            ));
        };
        let h = h.trim();
        if h.is_empty() {
            break;
        }
        if let Some((name, value)) = h.split_once(':') {
            let value = value.trim();
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value.parse().map_err(|_| {
                    io::Error::new(io::ErrorKind::InvalidData, "bad Content-Length")
                })?;
            } else if name.eq_ignore_ascii_case("connection") {
                keep_alive = !value.eq_ignore_ascii_case("close");
            }
        }
    }
    if content_length > MAX_BODY {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "request body too large",
        ));
    }
    let mut body = vec![0u8; content_length];
    r.read_exact(&mut body)?;
    Ok(Some(Request {
        method,
        path,
        keep_alive,
        body,
    }))
}

fn write_response<W: Write>(
    w: &mut W,
    status: u16,
    body: &Body,
    keep_alive: bool,
) -> io::Result<()> {
    let reason = match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        _ => "Internal Server Error",
    };
    let (content_type, payload): (&str, std::borrow::Cow<'_, [u8]>) = match body {
        Body::Json(v) => (
            "application/json",
            std::borrow::Cow::Owned(v.to_json_string().into_bytes()),
        ),
        Body::Bytes(b) => ("application/octet-stream", std::borrow::Cow::Borrowed(b)),
        Body::Text(t) => (
            "text/plain; version=0.0.4; charset=utf-8",
            std::borrow::Cow::Borrowed(t.as_bytes()),
        ),
    };
    write!(
        w,
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: {}\r\n\r\n",
        payload.len(),
        if keep_alive { "keep-alive" } else { "close" },
    )?;
    w.write_all(&payload)?;
    w.flush()
}

// ---------------------------------------------------------------- routing

fn json_err(msg: impl Into<String>) -> Body {
    Body::Json(serde_json::json!({"error": msg.into()}))
}

fn route(
    registry: &ModelRegistry,
    pool: &rayon::ThreadPool,
    metrics: &Metrics,
    req: &Request,
) -> (u16, Body) {
    let segments: Vec<&str> = req.path.split('/').filter(|s| !s.is_empty()).collect();
    let snapshot = registry.snapshot();

    // Resolve `(model id, action)` for both route families; `GET /models`
    // and admin routes are handled before model resolution.
    let resolved: Option<(&str, Option<Arc<dyn ModelHandle>>, &str)> =
        match (req.method.as_str(), segments.as_slice()) {
            ("GET", ["healthz"]) => {
                return (200, Body::Json(serde_json::json!({"status": "ok"})));
            }
            ("GET", ["metrics"]) => {
                use std::fmt::Write as _;
                let mut text = metrics.render();
                // The registry gauge lives here (not in `Metrics`) because
                // only the routing layer holds the registry.
                text.push_str("# TYPE parclust_models_loaded gauge\n");
                let _ = writeln!(text, "parclust_models_loaded {}", snapshot.models.len());
                return (200, Body::Text(text));
            }
            ("GET", ["models"]) => return (200, models_index(&snapshot)),
            ("POST", ["admin", "load"]) => return admin_load(registry, &req.body),
            ("POST", ["admin", "unload"]) => return admin_unload(registry, &req.body),
            ("POST", ["admin", "compact"]) => return admin_compact(registry, &req.body),
            ("POST", ["models", id, "insert"]) => {
                return insert_handler(registry, id, &req.body);
            }
            // Legacy single-model aliases → the default model.
            ("GET", ["model"]) => match snapshot.default_handle() {
                Some((id, h)) => Some((id, Some(h), "info")),
                None => None,
            },
            ("POST", [action @ ("cut" | "eom" | "assign" | "assign_binary")]) => {
                match snapshot.default_handle() {
                    Some((id, h)) => Some((id, Some(h), *action)),
                    None => None,
                }
            }
            ("GET", ["models", id]) => Some((*id, snapshot.get(id), "info")),
            ("POST", ["models", id, action @ ("cut" | "eom" | "assign" | "assign_binary")]) => {
                Some((*id, snapshot.get(id), *action))
            }
            ("GET", _) | ("POST", _) => {
                return (404, json_err("unknown route"));
            }
            _ => return (405, json_err("method not allowed")),
        };
    let Some((id, handle, action)) = resolved else {
        return (404, json_err("no default model loaded"));
    };
    let Some(handle) = handle else {
        return (404, json_err(format!("no model {id:?} loaded")));
    };
    let handle = &*handle;

    let result = match action {
        "info" => Ok(Body::Json(handle.info())),
        "cut" => parse_body(&req.body).and_then(|v| cut_handler(handle, &v)),
        "eom" => parse_body(&req.body).and_then(|v| eom_handler(handle, &v)),
        "assign" => parse_body(&req.body).and_then(|v| assign_handler(handle, pool, &v)),
        "assign_binary" => binary_assign_handler(id, handle, pool, &req.body),
        _ => unreachable!("actions are matched above"),
    };
    match result {
        Ok(body) => (200, body),
        Err(msg) => (400, json_err(msg)),
    }
}

fn models_index(snapshot: &crate::registry::RegistrySnapshot) -> Body {
    let models: Vec<Value> = snapshot
        .models
        .iter()
        .map(|(id, h)| {
            serde_json::json!({
                "id": id.clone(),
                "n": h.num_points() as u64,
                "dims": h.dims() as u64,
            })
        })
        .collect();
    let default = match &snapshot.default_id {
        Some(id) => Value::String(id.clone()),
        None => Value::Null,
    };
    Body::Json(serde_json::json!({
        "models": Value::Array(models),
        "default": default,
    }))
}

fn admin_load(registry: &ModelRegistry, body: &[u8]) -> (u16, Body) {
    let v = match parse_body(body) {
        Ok(v) => v,
        Err(msg) => return (400, json_err(msg)),
    };
    let (Some(id), Some(path)) = (
        v.get("id").and_then(Value::as_str),
        v.get("path").and_then(Value::as_str),
    ) else {
        return (400, json_err("pass \"id\" and \"path\""));
    };
    let load_result = if v.get("dynamic").and_then(Value::as_bool) == Some(true) {
        match dyn_config_from_json(&v) {
            Ok(cfg) => load_dynamic(registry, id, std::path::Path::new(path), cfg),
            Err(msg) => return (400, json_err(msg)),
        }
    } else {
        registry.load_path(id, std::path::Path::new(path))
    };
    if let Err(e) = load_result {
        return (400, json_err(format!("load {path:?}: {e}")));
    }
    if v.get("default").and_then(Value::as_bool) == Some(true) {
        if let Err(e) = registry.set_default(id) {
            return (400, json_err(e));
        }
    }
    (
        200,
        Body::Json(
            serde_json::json!({"loaded": id, "models": registry.snapshot().models.len() as u64}),
        ),
    )
}

fn admin_unload(registry: &ModelRegistry, body: &[u8]) -> (u16, Body) {
    let v = match parse_body(body) {
        Ok(v) => v,
        Err(msg) => return (400, json_err(msg)),
    };
    let Some(id) = v.get("id").and_then(Value::as_str) else {
        return (400, json_err("pass \"id\""));
    };
    if !registry.remove(id) {
        return (404, json_err(format!("no model {id:?} loaded")));
    }
    (
        200,
        Body::Json(
            serde_json::json!({"unloaded": id, "models": registry.snapshot().models.len() as u64}),
        ),
    )
}

/// Parse `[[f64; dims], ...]` into row-major flat coordinates (shared by
/// `/assign` and `/models/{id}/insert`).
fn parse_flat_points(raw: &[Value], dims: usize) -> Result<Vec<f64>, String> {
    let mut flat = Vec::with_capacity(raw.len() * dims);
    for (i, p) in raw.iter().enumerate() {
        let coords = p
            .as_array()
            // analyze:allow(hotpath-alloc-in-loop) — cold path: the message only materializes on a 400
            .ok_or_else(|| format!("points[{i}] must be an array"))?;
        if coords.len() != dims {
            // analyze:allow(hotpath-alloc-in-loop) — cold path: the message only materializes on a 400
            return Err(format!(
                "points[{i}] has {} coordinates, model is {dims}-dimensional",
                coords.len()
            ));
        }
        for c in coords {
            flat.push(finite_f64(c, "coordinate")?);
        }
    }
    Ok(flat)
}

/// Rebuild-vs-merge knobs from an `/admin/load` body.
fn dyn_config_from_json(v: &Value) -> Result<parclust_dyn::DynConfig, String> {
    let mut cfg = parclust_dyn::DynConfig::default();
    if let Some(p) = v.get("policy") {
        let p = p.as_str().ok_or("policy must be a string")?;
        cfg.policy = crate::dynamic::policy_from_str(p)?;
    }
    if let Some(f) = v.get("rebuild_fraction") {
        let f = finite_f64(f, "rebuild_fraction")?;
        if f < 0.0 {
            return Err("rebuild_fraction must be non-negative".to_string());
        }
        cfg.rebuild_fraction = f;
    }
    if let Some(c) = v.get("max_live_pairs") {
        let c = c
            .as_u64()
            .ok_or("max_live_pairs must be a non-negative integer")?;
        cfg.max_live_pairs = if c == 0 { None } else { Some(c as usize) };
    }
    Ok(cfg)
}

/// `/admin/load` with `"dynamic": true`: wrap a base artifact with the
/// requested knobs, or — if the file is already a dynamic wrapper — load
/// it (the wrapper carries its own knobs).
fn load_dynamic(
    registry: &ModelRegistry,
    id: &str,
    path: &std::path::Path,
    cfg: parclust_dyn::DynConfig,
) -> io::Result<()> {
    let mut head = [0u8; 4];
    std::fs::File::open(path)?.read_exact(&mut head)?;
    if &head == crate::dynamic::DYN_MAGIC {
        return registry.load_path(id, path);
    }
    let dh = crate::dynamic::wrap_artifact_path(path, cfg)?;
    registry
        .insert_dynamic(id, dh)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
}

/// Resolve the mutation handle for `id`, distinguishing "not loaded"
/// (404) from "loaded, but read-only" (400).
fn dynamic_handle(
    registry: &ModelRegistry,
    id: &str,
) -> Result<Arc<dyn crate::dynamic::DynModelHandle>, (u16, Body)> {
    match registry.dynamic(id) {
        Some(dh) => Ok(dh),
        None if registry.snapshot().get(id).is_some() => Err((
            400,
            json_err(format!("model {id:?} was not loaded as dynamic")),
        )),
        None => Err((404, json_err(format!("no model {id:?} loaded")))),
    }
}

fn insert_handler(registry: &ModelRegistry, id: &str, body: &[u8]) -> (u16, Body) {
    let dh = match dynamic_handle(registry, id) {
        Ok(dh) => dh,
        Err(resp) => return resp,
    };
    let v = match parse_body(body) {
        Ok(v) => v,
        Err(msg) => return (400, json_err(msg)),
    };
    let flat = match v.get("points") {
        Some(raw) => {
            let Some(raw) = raw.as_array() else {
                return (
                    400,
                    json_err("points must be an array of coordinate arrays"),
                );
            };
            match parse_flat_points(raw, dh.dims()) {
                Ok(flat) => flat,
                Err(msg) => return (400, json_err(msg)),
            }
        }
        None => Vec::new(),
    };
    let mut deletes = Vec::new();
    if let Some(raw) = v.get("deletes") {
        let Some(raw) = raw.as_array() else {
            return (400, json_err("deletes must be an array of live indices"));
        };
        for (i, d) in raw.iter().enumerate() {
            match d.as_u64() {
                Some(x) => deletes.push(x as usize),
                None => {
                    return (
                        400,
                        // analyze:allow(hotpath-alloc-in-loop) — cold path: the message only materializes on a 400
                        json_err(format!("deletes[{i}] must be a non-negative integer")),
                    );
                }
            }
        }
    }
    match dh.mutate(registry, id, &flat, &deletes) {
        Ok(report) => (200, Body::Json(report)),
        Err(msg) => (400, json_err(msg)),
    }
}

fn admin_compact(registry: &ModelRegistry, body: &[u8]) -> (u16, Body) {
    let v = match parse_body(body) {
        Ok(v) => v,
        Err(msg) => return (400, json_err(msg)),
    };
    let Some(id) = v.get("id").and_then(Value::as_str) else {
        return (400, json_err("pass \"id\""));
    };
    let dh = match dynamic_handle(registry, id) {
        Ok(dh) => dh,
        Err(resp) => return resp,
    };
    let save_path = v
        .get("save_path")
        .and_then(Value::as_str)
        .map(std::path::PathBuf::from);
    match dh.compact(registry, id, save_path.as_deref()) {
        Ok(report) => (200, Body::Json(report)),
        Err(msg) => (400, json_err(msg)),
    }
}

fn parse_body(body: &[u8]) -> Result<Value, String> {
    let text = std::str::from_utf8(body).map_err(|_| "body is not UTF-8".to_string())?;
    if text.trim().is_empty() {
        return Ok(Value::Object(Vec::new()));
    }
    serde_json::from_str(text).map_err(|e| format!("{e}"))
}

fn finite_f64(v: &Value, what: &str) -> Result<f64, String> {
    let x = v
        .as_f64()
        .ok_or_else(|| format!("{what} must be a number"))?;
    if x.is_nan() {
        return Err(format!("{what} must not be NaN"));
    }
    Ok(x)
}

/// Signed view of a labeling for JSON: noise renders as -1.
fn labels_json(labels: &[u32]) -> Value {
    Value::Array(
        labels
            .iter()
            .map(|&l| {
                if l == NOISE {
                    Value::Int(-1)
                } else {
                    Value::UInt(l as u64)
                }
            })
            .collect(),
    )
}

fn labeling_response(labeling: &crate::engine::Labeling, include_labels: bool) -> Body {
    let mut fields = vec![
        (
            "num_clusters".to_string(),
            Value::UInt(labeling.num_clusters as u64),
        ),
        ("noise".to_string(), Value::UInt(labeling.num_noise as u64)),
    ];
    if include_labels {
        fields.push(("labels".to_string(), labels_json(&labeling.labels)));
    }
    Body::Json(Value::Object(fields))
}

fn include_labels(v: &Value) -> bool {
    v.get("include_labels")
        .and_then(Value::as_bool)
        .unwrap_or(true)
}

fn cut_handler(handle: &dyn ModelHandle, v: &Value) -> Result<Body, String> {
    let spec = match (v.get("eps"), v.get("k")) {
        (Some(eps), None) => LabelingSpec::Cut {
            eps: finite_f64(eps, "eps")?,
        },
        (None, Some(k)) => LabelingSpec::CutK {
            k: k.as_u64().ok_or("k must be a non-negative integer")? as usize,
        },
        _ => return Err("pass exactly one of \"eps\" or \"k\"".to_string()),
    };
    Ok(labeling_response(&handle.labeling(spec), include_labels(v)))
}

fn eom_handler(handle: &dyn ModelHandle, v: &Value) -> Result<Body, String> {
    let eps = match v.get("cluster_selection_epsilon") {
        Some(e) => {
            let e = finite_f64(e, "cluster_selection_epsilon")?;
            if e < 0.0 {
                return Err("cluster_selection_epsilon must be non-negative".to_string());
            }
            e
        }
        None => 0.0,
    };
    let spec = LabelingSpec::Eom {
        cluster_selection_epsilon: eps,
    };
    Ok(labeling_response(&handle.labeling(spec), include_labels(v)))
}

/// Parse the labeling selector shared by `/assign`: `{"eps": f}`,
/// `{"k": n}`, or `{"cluster_selection_epsilon": f}`; default plain EOM.
fn labeling_spec(v: &Value) -> Result<LabelingSpec, String> {
    let Some(l) = v.get("labeling") else {
        return Ok(LabelingSpec::Eom {
            cluster_selection_epsilon: 0.0,
        });
    };
    if let Some(eps) = l.get("eps") {
        return Ok(LabelingSpec::Cut {
            eps: finite_f64(eps, "labeling.eps")?,
        });
    }
    if let Some(k) = l.get("k") {
        return Ok(LabelingSpec::CutK {
            k: k.as_u64()
                .ok_or("labeling.k must be a non-negative integer")? as usize,
        });
    }
    if let Some(e) = l.get("cluster_selection_epsilon") {
        let e = finite_f64(e, "labeling.cluster_selection_epsilon")?;
        if e < 0.0 {
            return Err("labeling.cluster_selection_epsilon must be non-negative".to_string());
        }
        return Ok(LabelingSpec::Eom {
            cluster_selection_epsilon: e,
        });
    }
    Err("labeling must set one of eps / k / cluster_selection_epsilon".to_string())
}

fn assign_handler(
    handle: &dyn ModelHandle,
    pool: &rayon::ThreadPool,
    v: &Value,
) -> Result<Body, String> {
    let spec = labeling_spec(v)?;
    let max_dist = match v.get("max_dist") {
        Some(md) => {
            let md = finite_f64(md, "max_dist")?;
            if md < 0.0 {
                return Err("max_dist must be non-negative".to_string());
            }
            md
        }
        None => f64::INFINITY,
    };
    let dims = handle.dims();
    let raw = v
        .get("points")
        .and_then(Value::as_array)
        .ok_or("points must be an array of coordinate arrays")?;
    let flat = parse_flat_points(raw, dims)?;
    let assignments = handle.assign_flat(&flat, spec, max_dist, pool);
    let labels: Vec<u32> = assignments.iter().map(|a| a.label).collect();
    let neighbors: Vec<u64> = assignments.iter().map(|a| a.neighbor as u64).collect();
    let distances: Vec<f64> = assignments.iter().map(|a| a.distance).collect();
    Ok(Body::Json(serde_json::json!({
        "labels": labels_json(&labels),
        "neighbors": neighbors,
        "distances": distances,
    })))
}

/// The binary leg: decode a [`proto`](crate::proto) request frame, check it
/// against the routed model (id and dimensionality), assign, answer with an
/// encoded response frame.
fn binary_assign_handler(
    id: &str,
    handle: &dyn ModelHandle,
    pool: &rayon::ThreadPool,
    body: &[u8],
) -> Result<Body, String> {
    let req = AssignRequest::decode(body).map_err(|e| format!("{e}"))?;
    if req.model_id != id {
        return Err(format!(
            "frame addresses model {:?} but was routed at {id:?}",
            req.model_id
        ));
    }
    if req.dims as usize != handle.dims() {
        return Err(format!(
            "frame holds {}-dimensional points, model is {}-dimensional",
            req.dims,
            handle.dims()
        ));
    }
    let assignments = handle.assign_flat(&req.coords, req.spec, req.max_dist, pool);
    let resp = AssignResponse {
        labels: assignments.iter().map(|a| a.label).collect(),
        neighbors: assignments.iter().map(|a| a.neighbor).collect(),
        distances: assignments.iter().map(|a| a.distance).collect(),
    };
    Ok(Body::Bytes(resp.encode()))
}

// ----------------------------------------------------------------- client

/// A keep-alive HTTP client for the server above — used by the load
/// generator, the CI smoke test, and the end-to-end tests. Speaks JSON
/// ([`Client::get`] / [`Client::post`]) and the binary protocol
/// ([`Client::post_binary`]).
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    pub fn connect<A: ToSocketAddrs>(addr: A) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(Duration::from_secs(60)))?;
        let writer = stream.try_clone()?;
        Ok(Client {
            reader: BufReader::new(stream),
            writer,
        })
    }

    pub fn get(&mut self, path: &str) -> io::Result<(u16, Value)> {
        self.request_json("GET", path, None)
    }

    /// GET a path whose response body is plain text (e.g. `/metrics`).
    pub fn get_text(&mut self, path: &str) -> io::Result<(u16, String)> {
        self.send_request("GET", path, "text/plain", &[])?;
        let (status, body) = self.read_response()?;
        let text = String::from_utf8(body)
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "non-UTF-8 body"))?;
        Ok((status, text))
    }

    pub fn post(&mut self, path: &str, body: &Value) -> io::Result<(u16, Value)> {
        self.request_json("POST", path, Some(body))
    }

    /// POST a binary frame; returns the raw response body. On non-200 the
    /// body is the server's JSON error document.
    pub fn post_binary(&mut self, path: &str, frame: &[u8]) -> io::Result<(u16, Vec<u8>)> {
        self.send_request("POST", path, "application/octet-stream", frame)?;
        self.read_response()
    }

    fn request_json(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&Value>,
    ) -> io::Result<(u16, Value)> {
        let payload = body.map(|b| b.to_json_string()).unwrap_or_default();
        self.send_request(method, path, "application/json", payload.as_bytes())?;
        let (status, body) = self.read_response()?;
        let text = String::from_utf8(body)
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "non-UTF-8 body"))?;
        let value = serde_json::from_str(&text)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("{e}")))?;
        Ok((status, value))
    }

    fn send_request(
        &mut self,
        method: &str,
        path: &str,
        content_type: &str,
        payload: &[u8],
    ) -> io::Result<()> {
        write!(
            self.writer,
            "{method} {path} HTTP/1.1\r\nHost: parclust\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: keep-alive\r\n\r\n",
            payload.len(),
        )?;
        self.writer.write_all(payload)?;
        self.writer.flush()
    }

    fn read_response(&mut self) -> io::Result<(u16, Vec<u8>)> {
        let mut status_line = String::new();
        if self.reader.read_line(&mut status_line)? == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed connection",
            ));
        }
        let status: u16 = status_line
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "bad status line"))?;
        let mut content_length = 0usize;
        let mut h = String::new();
        loop {
            h.clear();
            if self.reader.read_line(&mut h)? == 0 {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "connection closed mid-headers",
                ));
            }
            let h = h.trim();
            if h.is_empty() {
                break;
            }
            if let Some((name, value)) = h.split_once(':') {
                if name.eq_ignore_ascii_case("content-length") {
                    content_length = value.trim().parse().map_err(|_| {
                        io::Error::new(io::ErrorKind::InvalidData, "bad Content-Length")
                    })?;
                }
            }
        }
        let mut body = vec![0u8; content_length];
        self.reader.read_exact(&mut body)?;
        Ok((status, body))
    }
}
