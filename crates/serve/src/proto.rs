//! The binary batch assignment protocol: a length-framed, checksummed wire
//! format for high-volume out-of-sample assignment, served alongside JSON
//! (`POST .../assign_binary`) so hot clients stop paying JSON parse and
//! float-format costs. Built on [`parclust_data::io::le`], the same
//! little-endian section codec as the model artifact and the `.pcls`
//! point files.
//!
//! Request frame (all little-endian):
//!
//! ```text
//! "PCAB" | version u32 | id_len u32 | model id (UTF-8)
//! spec tag u8 (0=Eom, 1=Cut, 2=CutK) | param f64 (k as u64 for CutK)
//! max_dist f64 | dims u32 | count u64 | coords count·dims f64
//! checksum u64   — FNV-1a 64 of every preceding byte
//! ```
//!
//! Response frame:
//!
//! ```text
//! "PCAR" | version u32 | count u64
//! labels u32·count ([`NOISE`](parclust::NOISE) encoded as-is)
//! neighbors u32·count | distances f64·count
//! checksum u64   — FNV-1a 64 of every preceding byte
//! ```
//!
//! Decoders are strict: bad magic or version, truncated frames, trailing
//! bytes, bit flips (checksum), NaN parameters/coordinates, and oversized
//! model ids or point counts are all `Err`, never panics — mirroring the
//! artifact loader's corruption contract. The embedded model id lets the
//! server reject a frame routed at the wrong model even when a proxy
//! rewrites paths.

use crate::artifact::fnv1a64;
use crate::engine::LabelingSpec;
use parclust_data::io::le;

/// Request frame magic: "ParClust Assign Batch".
pub const REQ_MAGIC: &[u8; 4] = b"PCAB";
/// Response frame magic: "ParClust Assign Response".
pub const RESP_MAGIC: &[u8; 4] = b"PCAR";
/// Wire version; readers reject anything else.
pub const PROTO_VERSION: u32 = 1;

/// Upper bound on the embedded model id (far above [`crate::registry`]'s
/// own id limit; bounds allocation from a corrupt length field).
pub const MAX_ID_LEN: usize = 4096;
/// Upper bound on points per frame (coords alone would be 256 MiB at 16D;
/// the HTTP layer's body cap rejects such frames earlier anyway).
pub const MAX_POINTS: u64 = 1 << 21;

const TAG_EOM: u8 = 0;
const TAG_CUT: u8 = 1;
const TAG_CUTK: u8 = 2;

/// A decoded batch-assignment request.
#[derive(Debug, Clone, PartialEq)]
pub struct AssignRequest {
    /// Model the client believes it is talking to; the server rejects the
    /// frame if this does not match the routed model.
    pub model_id: String,
    pub spec: LabelingSpec,
    pub max_dist: f64,
    pub dims: u32,
    /// Row-major query coordinates, `dims` per point.
    pub coords: Vec<f64>,
}

/// A decoded batch-assignment response (parallel arrays, request order).
#[derive(Debug, Clone, PartialEq)]
pub struct AssignResponse {
    pub labels: Vec<u32>,
    pub neighbors: Vec<u32>,
    pub distances: Vec<f64>,
}

fn bad(msg: impl Into<String>) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidData, msg.into())
}

fn write_spec(out: &mut Vec<u8>, spec: LabelingSpec) {
    match spec {
        LabelingSpec::Eom {
            cluster_selection_epsilon,
        } => {
            out.push(TAG_EOM);
            le::write_f64(out, cluster_selection_epsilon).unwrap();
        }
        LabelingSpec::Cut { eps } => {
            out.push(TAG_CUT);
            le::write_f64(out, eps).unwrap();
        }
        LabelingSpec::CutK { k } => {
            out.push(TAG_CUTK);
            le::write_u64(out, k as u64).unwrap();
        }
    }
}

fn read_spec(r: &mut &[u8]) -> std::io::Result<LabelingSpec> {
    let mut tag = [0u8; 1];
    std::io::Read::read_exact(r, &mut tag)?;
    let spec = match tag[0] {
        TAG_EOM => {
            let eps = le::read_f64(r)?;
            if eps.is_nan() || eps < 0.0 {
                return Err(bad("cluster_selection_epsilon must be non-negative"));
            }
            LabelingSpec::Eom {
                cluster_selection_epsilon: eps,
            }
        }
        TAG_CUT => {
            let eps = le::read_f64(r)?;
            if eps.is_nan() {
                return Err(bad("cut eps must not be NaN"));
            }
            LabelingSpec::Cut { eps }
        }
        TAG_CUTK => {
            let k = le::read_u64(r)?;
            let k = usize::try_from(k).map_err(|_| bad("cut k overflows usize"))?;
            LabelingSpec::CutK { k }
        }
        other => return Err(bad(format!("unknown labeling-spec tag {other}"))),
    };
    Ok(spec)
}

impl AssignRequest {
    /// Number of query points framed (`coords.len() / dims`).
    pub fn count(&self) -> usize {
        if self.dims == 0 {
            0
        } else {
            self.coords.len() / self.dims as usize
        }
    }

    /// Encode into a checksummed frame.
    pub fn encode(&self) -> Vec<u8> {
        assert!(self.model_id.len() <= MAX_ID_LEN, "model id too long");
        assert!(self.dims > 0, "dims must be positive");
        assert_eq!(
            self.coords.len() % self.dims as usize,
            0,
            "coords must be a whole number of points"
        );
        let mut out = Vec::with_capacity(64 + self.model_id.len() + 8 * self.coords.len());
        out.extend_from_slice(REQ_MAGIC);
        le::write_u32(&mut out, PROTO_VERSION).unwrap();
        le::write_u32(&mut out, self.model_id.len() as u32).unwrap();
        out.extend_from_slice(self.model_id.as_bytes());
        write_spec(&mut out, self.spec);
        le::write_f64(&mut out, self.max_dist).unwrap();
        le::write_u32(&mut out, self.dims).unwrap();
        le::write_u64(&mut out, self.count() as u64).unwrap();
        for &c in &self.coords {
            le::write_f64(&mut out, c).unwrap();
        }
        let sum = fnv1a64(&out);
        le::write_u64(&mut out, sum).unwrap();
        out
    }

    /// Decode and validate a frame produced by [`AssignRequest::encode`].
    pub fn decode(bytes: &[u8]) -> std::io::Result<Self> {
        let payload = checked_payload(bytes, REQ_MAGIC, "assign request")?;
        let mut r = &payload[8..]; // past magic + version
        let id_len = le::read_u32(&mut r)? as usize;
        if id_len > MAX_ID_LEN {
            return Err(bad(format!("model id of {id_len} bytes exceeds cap")));
        }
        if r.len() < id_len {
            return Err(bad("frame truncated inside model id"));
        }
        let model_id = std::str::from_utf8(&r[..id_len])
            .map_err(|_| bad("model id is not UTF-8"))?
            .to_string();
        r = &r[id_len..];
        let spec = read_spec(&mut r)?;
        let max_dist = le::read_f64(&mut r)?;
        if max_dist.is_nan() || max_dist < 0.0 {
            return Err(bad("max_dist must be non-negative"));
        }
        let dims = le::read_u32(&mut r)?;
        if dims == 0 {
            return Err(bad("dims must be positive"));
        }
        let count = le::read_u64(&mut r)?;
        if count > MAX_POINTS {
            return Err(bad(format!("{count} points exceeds the frame cap")));
        }
        let ncoords = count as usize * dims as usize;
        if r.len() != 8 * ncoords {
            return Err(bad(format!(
                "coordinate section holds {} bytes, frame promises {}",
                r.len(),
                8 * ncoords
            )));
        }
        let mut coords = Vec::with_capacity(ncoords);
        for _ in 0..ncoords {
            let c = le::read_f64(&mut r)?;
            if c.is_nan() {
                return Err(bad("coordinate must not be NaN"));
            }
            coords.push(c);
        }
        Ok(AssignRequest {
            model_id,
            spec,
            max_dist,
            dims,
            coords,
        })
    }
}

impl AssignResponse {
    pub fn encode(&self) -> Vec<u8> {
        let n = self.labels.len();
        assert_eq!(self.neighbors.len(), n);
        assert_eq!(self.distances.len(), n);
        let mut out = Vec::with_capacity(24 + 16 * n);
        out.extend_from_slice(RESP_MAGIC);
        le::write_u32(&mut out, PROTO_VERSION).unwrap();
        le::write_u64(&mut out, n as u64).unwrap();
        for &l in &self.labels {
            le::write_u32(&mut out, l).unwrap();
        }
        for &nb in &self.neighbors {
            le::write_u32(&mut out, nb).unwrap();
        }
        for &d in &self.distances {
            le::write_f64(&mut out, d).unwrap();
        }
        let sum = fnv1a64(&out);
        le::write_u64(&mut out, sum).unwrap();
        out
    }

    pub fn decode(bytes: &[u8]) -> std::io::Result<Self> {
        let payload = checked_payload(bytes, RESP_MAGIC, "assign response")?;
        let mut r = &payload[8..];
        let count = le::read_u64(&mut r)?;
        if count > MAX_POINTS {
            return Err(bad(format!("{count} results exceeds the frame cap")));
        }
        let n = count as usize;
        if r.len() != 16 * n {
            return Err(bad("response sections do not match framed count"));
        }
        let mut labels = Vec::with_capacity(n);
        for _ in 0..n {
            labels.push(le::read_u32(&mut r)?);
        }
        let mut neighbors = Vec::with_capacity(n);
        for _ in 0..n {
            neighbors.push(le::read_u32(&mut r)?);
        }
        let mut distances = Vec::with_capacity(n);
        for _ in 0..n {
            distances.push(le::read_f64(&mut r)?);
        }
        Ok(AssignResponse {
            labels,
            neighbors,
            distances,
        })
    }
}

/// Shared frame validation: length floor, trailing checksum, magic,
/// version. Returns the payload (everything before the checksum).
fn checked_payload<'a>(bytes: &'a [u8], magic: &[u8; 4], what: &str) -> std::io::Result<&'a [u8]> {
    if bytes.len() < 4 + 4 + 8 {
        return Err(bad(format!("{what} frame too short")));
    }
    let (payload, tail) = bytes.split_at(bytes.len() - 8);
    let stored = u64::from_le_bytes(tail.try_into().unwrap());
    if fnv1a64(payload) != stored {
        return Err(bad(format!("{what} checksum mismatch (corrupt frame)")));
    }
    if &payload[0..4] != magic {
        return Err(bad(format!("bad {what} magic")));
    }
    let version = u32::from_le_bytes(payload[4..8].try_into().unwrap());
    if version != PROTO_VERSION {
        return Err(bad(format!(
            "unsupported {what} version {version} (this build speaks {PROTO_VERSION})"
        )));
    }
    Ok(payload)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_request() -> AssignRequest {
        AssignRequest {
            model_id: "geo-3d".into(),
            spec: LabelingSpec::Cut { eps: 1.25 },
            max_dist: f64::INFINITY,
            dims: 3,
            coords: vec![0.0, 1.0, 2.0, -3.5, 4.25, 1e-3],
        }
    }

    #[test]
    fn request_roundtrip_all_spec_kinds() {
        for spec in [
            LabelingSpec::Eom {
                cluster_selection_epsilon: 0.5,
            },
            LabelingSpec::Cut { eps: 2.0 },
            LabelingSpec::CutK { k: 9 },
        ] {
            let req = AssignRequest {
                spec,
                ..sample_request()
            };
            let back = AssignRequest::decode(&req.encode()).unwrap();
            assert_eq!(back, req);
            assert_eq!(back.count(), 2);
        }
    }

    #[test]
    fn response_roundtrip() {
        let resp = AssignResponse {
            labels: vec![0, parclust::NOISE, 3],
            neighbors: vec![7, 8, 9],
            distances: vec![0.5, f64::MAX, 1e-300],
        };
        assert_eq!(AssignResponse::decode(&resp.encode()).unwrap(), resp);
    }

    #[test]
    fn empty_batch_roundtrips() {
        let req = AssignRequest {
            coords: Vec::new(),
            ..sample_request()
        };
        let back = AssignRequest::decode(&req.encode()).unwrap();
        assert_eq!(back.count(), 0);
        let resp = AssignResponse {
            labels: vec![],
            neighbors: vec![],
            distances: vec![],
        };
        assert_eq!(AssignResponse::decode(&resp.encode()).unwrap(), resp);
    }

    #[test]
    fn rejects_malformed_frames() {
        let good = sample_request().encode();
        // Truncation at every boundary class.
        for cut in [0, 4, 11, good.len() - 9, good.len() - 1] {
            assert!(
                AssignRequest::decode(&good[..cut]).is_err(),
                "truncated at {cut}"
            );
        }
        // Trailing garbage breaks the checksum.
        let mut long = good.clone();
        long.push(0);
        assert!(AssignRequest::decode(&long).is_err());
        // Wrong magic (checksum recomputed so the magic is what rejects).
        let mut wrong_magic = good.clone();
        wrong_magic[0] = b'X';
        refresh_checksum(&mut wrong_magic);
        assert!(AssignRequest::decode(&wrong_magic).is_err());
        // Future version.
        let mut wrong_version = good.clone();
        wrong_version[4] = 99;
        refresh_checksum(&mut wrong_version);
        assert!(AssignRequest::decode(&wrong_version).is_err());
        // NaN coordinate (valid checksum, rejected by validation).
        let mut nan = sample_request();
        nan.coords[2] = f64::NAN;
        assert!(AssignRequest::decode(&nan.encode()).is_err());
        // NaN / negative parameters.
        for spec in [
            LabelingSpec::Cut { eps: f64::NAN },
            LabelingSpec::Eom {
                cluster_selection_epsilon: -1.0,
            },
        ] {
            let req = AssignRequest {
                spec,
                ..sample_request()
            };
            assert!(AssignRequest::decode(&req.encode()).is_err());
        }
        let mut neg_dist = sample_request();
        neg_dist.max_dist = -2.0;
        assert!(AssignRequest::decode(&neg_dist.encode()).is_err());
    }

    fn refresh_checksum(frame: &mut [u8]) {
        let plen = frame.len() - 8;
        let sum = fnv1a64(&frame[..plen]).to_le_bytes();
        frame[plen..].copy_from_slice(&sum);
    }

    #[test]
    fn any_single_bit_flip_is_rejected() {
        let good = sample_request().encode();
        for pos in (0..good.len()).step_by(7) {
            let mut bytes = good.clone();
            bytes[pos] ^= 0x04;
            assert!(
                AssignRequest::decode(&bytes).is_err(),
                "bit flip at {pos} must not decode cleanly"
            );
        }
    }
}
