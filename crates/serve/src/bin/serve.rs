//! CLI for the serving stack: build a model artifact, serve one or many
//! over HTTP, or query an artifact locally.
//!
//! ```sh
//! serve build --gen varden --dims 2 --n 20000 --out model.pcsm
//! serve build --csv points.csv --dims 3 --minpts 10 --out model.pcsm
//! serve build --points-file points.pcls --max-live-pairs 2000000 --out model.pcsm
//! serve gen-points --gen uniform --dims 3 --n 1000000 --out points.pcls
//! serve serve --model model.pcsm --addr 127.0.0.1:8077 --workers 4 --threads 4
//! serve serve --models-dir artifacts/ --default geo
//! serve serve --manifest models.json
//! serve query --model model.pcsm --eps 2.5
//! serve query --model model.pcsm --eom-eps 1.0
//! ```

use parclust_data::PointSource;
use parclust_serve::{
    with_model_dims, ClusterModel, LabelingSpec, ModelRegistry, QueryEngine, ServerConfig,
};
use std::sync::Arc;

fn usage() -> ! {
    eprintln!(
        "usage:\n  serve build (--csv PATH | --points-file PATH.pcls | \
         --gen uniform|varden|gps|sensor) --dims D \
         [--n N] [--seed S] [--minpts M] [--min-cluster-size C] \
         [--max-live-pairs P] --out PATH\n  \
         serve gen-points --gen uniform|varden|gps|sensor --dims D --n N [--seed S] \
         [--chunk-len C] --out PATH.pcls\n  \
         serve serve (--model PATH [--id NAME])... [--models-dir DIR] \
         [--manifest PATH] [--default ID] [--addr HOST:PORT] [--workers W] [--threads T]\n  \
         serve query --model PATH (--eps F | --k N | --eom-eps F) [--labels]"
    );
    std::process::exit(2);
}

/// Runtime failure (IO, bad data, bind, ...): diagnostic on stderr, exit 1.
/// Malformed command lines go through `bad_arg`/`usage` (exit 2) instead.
fn fail(msg: impl std::fmt::Display) -> ! {
    eprintln!("serve: error: {msg}");
    std::process::exit(1);
}

/// Command-line value we could not make sense of: diagnostic, exit 2.
fn bad_arg(msg: impl std::fmt::Display) -> ! {
    eprintln!("serve: error: {msg}");
    std::process::exit(2);
}

/// Parse a flag's value (or its default), exiting 2 with the offending
/// input on failure instead of panicking.
fn parse_flag<T: std::str::FromStr>(args: &[String], name: &str, default: &str) -> T {
    let raw = flag(args, name).unwrap_or_else(|| default.into());
    raw.parse()
        .unwrap_or_else(|_| bad_arg(format_args!("invalid value {raw:?} for {name}")))
}

/// Reject dimensionalities `with_model_dims!` cannot monomorphize, before
/// the macro's library-level panic can fire.
fn check_dims(dims: usize) -> usize {
    if !matches!(dims, 2 | 3 | 5 | 7 | 10 | 16) {
        bad_arg(format_args!(
            "unsupported dimensionality {dims} (supported: 2,3,5,7,10,16)"
        ));
    }
    dims
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else { usage() };
    let rest = &args[1..];
    match cmd.as_str() {
        "build" => build(rest),
        "gen-points" => gen_points(rest),
        "serve" => serve(rest),
        "query" => query(rest),
        _ => usage(),
    }
}

/// Generator dispatch shared by `build` and `gen-points`.
fn generate<const D: usize>(gen: &str, n: usize, seed: u64) -> Vec<parclust::Point<D>> {
    match gen {
        "uniform" => parclust_data::uniform_fill::<D>(n, seed),
        "varden" => parclust_data::seed_spreader::<D>(n, seed),
        "sensor" => parclust_data::sensor_like::<D>(n, seed, 8),
        "gps" => {
            // gps_like returns Point<3>; the check keeps the coordinate
            // copy below exact for the one legal dims.
            if D != 3 {
                bad_arg(format_args!("--gen gps is 3-dimensional (got --dims {D})"));
            }
            let pts3 = parclust_data::gps_like(n, seed);
            let mut out = Vec::with_capacity(pts3.len());
            for p in pts3 {
                let mut c = [0.0; D];
                for (slot, &v) in c.iter_mut().zip(p.coords().iter()) {
                    *slot = v;
                }
                out.push(parclust::Point(c));
            }
            out
        }
        other => bad_arg(format_args!(
            "unknown generator {other:?} (use uniform, varden, gps, sensor)"
        )),
    }
}

/// Generate a synthetic dataset straight into the chunked `.pcls` format —
/// the feedstock for `build --points-file` (and for CI's streamed-build
/// smoke leg).
fn gen_points(args: &[String]) {
    let out = flag(args, "--out").unwrap_or_else(|| usage());
    let dims: usize = check_dims(parse_flag(args, "--dims", "2"));
    let n: usize = parse_flag(args, "--n", "10000");
    let seed: u64 = parse_flag(args, "--seed", "42");
    let chunk_len: usize = match flag(args, "--chunk-len") {
        Some(_) => parse_flag(args, "--chunk-len", "0"),
        None => parclust_data::DEFAULT_CHUNK_LEN,
    };
    with_model_dims!(dims, |D| {
        let points: Vec<parclust::Point<D>> =
            generate(flag(args, "--gen").as_deref().unwrap_or("uniform"), n, seed);
        parclust_data::write_chunked(std::path::Path::new(&out), &points, chunk_len)
            .unwrap_or_else(|e| fail(format_args!("write {out}: {e}")));
        let bytes = std::fs::metadata(&out).map(|m| m.len()).unwrap_or(0);
        println!(
            "wrote {out} ({} points, {}D, {bytes} bytes)",
            points.len(),
            D
        );
    });
}

fn flag(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1).cloned())
}

fn flag_all(args: &[String], name: &str) -> Vec<String> {
    args.iter()
        .enumerate()
        .filter(|(_, a)| *a == name)
        .filter_map(|(i, _)| args.get(i + 1).cloned())
        .collect()
}

fn has_flag(args: &[String], name: &str) -> bool {
    args.iter().any(|a| a == name)
}

fn build(args: &[String]) {
    let out = flag(args, "--out").unwrap_or_else(|| usage());
    let min_pts: usize = parse_flag(args, "--minpts", "10");
    let min_cluster_size: usize = parse_flag(args, "--min-cluster-size", "10");
    let n: usize = parse_flag(args, "--n", "10000");
    let seed: u64 = parse_flag(args, "--seed", "42");
    let max_live_pairs: Option<usize> =
        flag(args, "--max-live-pairs").map(|_| parse_flag(args, "--max-live-pairs", "0"));
    let csv = flag(args, "--csv");
    let points_file = flag(args, "--points-file");
    // A .pcls file fixes its own dimensionality; otherwise --dims decides.
    let dims: usize = check_dims(match &points_file {
        Some(path) => {
            parclust_data::chunked_header(std::path::Path::new(path))
                .unwrap_or_else(|e| fail(format_args!("read {path}: {e}")))
                .dims as usize
        }
        None => parse_flag(args, "--dims", "2"),
    });
    with_model_dims!(dims, |D| {
        let t0 = std::time::Instant::now();
        let model = if let Some(path) = &points_file {
            // Streamed ingestion: bounded chunks from the .pcls file, and
            // (with --max-live-pairs) bounded WSPD pair batches — the
            // multi-million-point build path.
            let mut src = parclust_data::ChunkedReader::<D>::open(std::path::Path::new(path))
                .unwrap_or_else(|e| fail(format_args!("open {path}: {e}")));
            eprintln!(
                "building model from {path}: {} points, {}D (streamed), minPts={min_pts}, \
                 minClusterSize={min_cluster_size}, maxLivePairs={max_live_pairs:?}",
                src.total(),
                D
            );
            ClusterModel::build_from_source(&mut src, min_pts, min_cluster_size, max_live_pairs)
                .unwrap_or_else(|e| fail(format_args!("build from {path}: {e}")))
        } else {
            let points: Vec<parclust::Point<D>> = if let Some(path) = &csv {
                parclust_data::read_csv(std::path::Path::new(path))
                    .unwrap_or_else(|e| fail(format_args!("read {path}: {e}")))
            } else {
                generate(flag(args, "--gen").as_deref().unwrap_or("varden"), n, seed)
            };
            eprintln!(
                "building model: {} points, {}D, minPts={min_pts}, minClusterSize={min_cluster_size}",
                points.len(),
                D
            );
            // Points are already resident here — build directly instead of
            // round-tripping them through a SliceSource copy.
            ClusterModel::build_with_options(&points, min_pts, min_cluster_size, max_live_pairs)
        };
        eprintln!("built in {:.2}s", t0.elapsed().as_secs_f64());
        model
            .save(std::path::Path::new(&out))
            .unwrap_or_else(|e| fail(format_args!("save {out}: {e}")));
        let bytes = std::fs::metadata(&out).map(|m| m.len()).unwrap_or(0);
        println!(
            "wrote {out} ({bytes} bytes, {} condensed clusters)",
            model.condensed.num_clusters()
        );
    });
}

/// Model id for a bare `--model PATH`: the file stem.
fn id_from_path(path: &str) -> String {
    std::path::Path::new(path)
        .file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or("default")
        .to_string()
}

fn serve(args: &[String]) {
    let addr = flag(args, "--addr").unwrap_or_else(|| "127.0.0.1:8077".into());
    let workers: usize = parse_flag(args, "--workers", "4");
    let pool_threads: usize = parse_flag(args, "--threads", "0");

    let registry = Arc::new(ModelRegistry::new());
    let models = flag_all(args, "--model");
    let ids = flag_all(args, "--id");
    if !ids.is_empty() && ids.len() != models.len() {
        eprintln!("--id must be given once per --model (or not at all)");
        usage();
    }
    for (i, path) in models.iter().enumerate() {
        let id = ids.get(i).cloned().unwrap_or_else(|| id_from_path(path));
        registry
            .load_path(&id, std::path::Path::new(path))
            .unwrap_or_else(|e| fail(format_args!("load {path}: {e}")));
        eprintln!("loaded {path} as {id:?}");
    }
    if let Some(dir) = flag(args, "--models-dir") {
        let ids = registry
            .load_dir(std::path::Path::new(&dir))
            .unwrap_or_else(|e| fail(format_args!("scan {dir}: {e}")));
        eprintln!("loaded {} model(s) from {dir}: {ids:?}", ids.len());
    }
    if let Some(manifest) = flag(args, "--manifest") {
        let ids = registry
            .load_manifest(std::path::Path::new(&manifest))
            .unwrap_or_else(|e| fail(format_args!("manifest {manifest}: {e}")));
        eprintln!(
            "loaded {} model(s) from manifest {manifest}: {ids:?}",
            ids.len()
        );
    }
    if let Some(default) = flag(args, "--default") {
        registry
            .set_default(&default)
            .unwrap_or_else(|e| fail(format_args!("--default: {e}")));
    }
    let snapshot = registry.snapshot();
    if snapshot.models.is_empty() {
        eprintln!("no models loaded (pass --model / --models-dir / --manifest)");
        usage();
    }
    for (id, h) in &snapshot.models {
        eprintln!("  {id}: {} points, {}D", h.num_points(), h.dims());
    }
    eprintln!(
        "default model: {}",
        snapshot.default_id.as_deref().unwrap_or("(none)")
    );
    let server = parclust_serve::start(
        registry,
        &ServerConfig {
            addr,
            workers,
            pool_threads,
        },
    )
    .unwrap_or_else(|e| fail(format_args!("bind: {e}")));
    // Parseable by scripts (CI greps for this line to learn the port).
    println!("listening on {}", server.addr());
    // Serve until killed.
    loop {
        std::thread::sleep(std::time::Duration::from_secs(3600));
    }
}

fn query(args: &[String]) {
    let model_path = flag(args, "--model").unwrap_or_else(|| usage());
    let spec = if flag(args, "--eps").is_some() {
        LabelingSpec::Cut {
            eps: parse_flag(args, "--eps", "0"),
        }
    } else if flag(args, "--k").is_some() {
        LabelingSpec::CutK {
            k: parse_flag(args, "--k", "0"),
        }
    } else if flag(args, "--eom-eps").is_some() {
        LabelingSpec::Eom {
            cluster_selection_epsilon: parse_flag(args, "--eom-eps", "0"),
        }
    } else {
        LabelingSpec::Eom {
            cluster_selection_epsilon: 0.0,
        }
    };
    let dims = check_dims(
        parclust_serve::peek_dims(std::path::Path::new(&model_path))
            .unwrap_or_else(|e| fail(format_args!("read {model_path}: {e}"))),
    );
    with_model_dims!(dims, |D| {
        let model = ClusterModel::<D>::load(std::path::Path::new(&model_path))
            .unwrap_or_else(|e| fail(format_args!("load {model_path}: {e}")));
        let engine = QueryEngine::new(Arc::new(model));
        let labeling = engine.labeling(spec);
        println!(
            "{}",
            serde_json::json!({
                "spec": format!("{spec:?}"),
                "num_clusters": labeling.num_clusters as u64,
                "noise": labeling.num_noise as u64,
            })
            .to_json_string_pretty()
        );
        if has_flag(args, "--labels") {
            let signed: Vec<i64> = labeling
                .labels
                .iter()
                .map(|&l| if l == parclust::NOISE { -1 } else { l as i64 })
                .collect();
            println!("{}", serde_json::to_string(&signed).unwrap());
        }
    });
}
