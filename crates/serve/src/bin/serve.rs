//! CLI for the serving stack: build a model artifact, serve it over HTTP,
//! or query it locally.
//!
//! ```sh
//! serve build --gen varden --dims 2 --n 20000 --out model.pcsm
//! serve build --csv points.csv --dims 3 --minpts 10 --out model.pcsm
//! serve serve --model model.pcsm --addr 127.0.0.1:8077 --workers 4 --threads 4
//! serve query --model model.pcsm --eps 2.5
//! serve query --model model.pcsm --eom-eps 1.0
//! ```

use parclust_serve::{with_model_dims, ClusterModel, LabelingSpec, QueryEngine, ServerConfig};
use std::sync::Arc;

fn usage() -> ! {
    eprintln!(
        "usage:\n  serve build (--csv PATH | --gen uniform|varden|gps|sensor) --dims D \
         [--n N] [--seed S] [--minpts M] [--min-cluster-size C] --out PATH\n  \
         serve serve --model PATH [--addr HOST:PORT] [--workers W] [--threads T]\n  \
         serve query --model PATH (--eps F | --k N | --eom-eps F) [--labels]"
    );
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else { usage() };
    let rest = &args[1..];
    match cmd.as_str() {
        "build" => build(rest),
        "serve" => serve(rest),
        "query" => query(rest),
        _ => usage(),
    }
}

fn flag(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1).cloned())
}

fn has_flag(args: &[String], name: &str) -> bool {
    args.iter().any(|a| a == name)
}

fn build(args: &[String]) {
    let dims: usize = flag(args, "--dims")
        .unwrap_or_else(|| "2".into())
        .parse()
        .expect("--dims D");
    let out = flag(args, "--out").unwrap_or_else(|| usage());
    let min_pts: usize = flag(args, "--minpts")
        .unwrap_or_else(|| "10".into())
        .parse()
        .expect("--minpts N");
    let min_cluster_size: usize = flag(args, "--min-cluster-size")
        .unwrap_or_else(|| "10".into())
        .parse()
        .expect("--min-cluster-size N");
    let n: usize = flag(args, "--n")
        .unwrap_or_else(|| "10000".into())
        .parse()
        .expect("--n N");
    let seed: u64 = flag(args, "--seed")
        .unwrap_or_else(|| "42".into())
        .parse()
        .expect("--seed S");
    let csv = flag(args, "--csv");
    let gen = flag(args, "--gen");
    with_model_dims!(dims, |D| {
        let points: Vec<parclust::Point<D>> = if let Some(path) = &csv {
            parclust_data::read_csv(std::path::Path::new(path)).expect("read csv")
        } else {
            match gen.as_deref().unwrap_or("varden") {
                "uniform" => parclust_data::uniform_fill::<D>(n, seed),
                "varden" => parclust_data::seed_spreader::<D>(n, seed),
                "sensor" => parclust_data::sensor_like::<D>(n, seed, 8),
                "gps" => {
                    // gps_like returns Point<3>; the assert keeps the
                    // coordinate copy below exact for the one legal dims.
                    assert_eq!(D, 3, "--gen gps is 3-dimensional");
                    let pts3 = parclust_data::gps_like(n, seed);
                    let mut out = Vec::with_capacity(pts3.len());
                    for p in pts3 {
                        let mut c = [0.0; D];
                        for (slot, &v) in c.iter_mut().zip(p.coords().iter()) {
                            *slot = v;
                        }
                        out.push(parclust::Point(c));
                    }
                    out
                }
                other => panic!("unknown generator {other}"),
            }
        };
        eprintln!(
            "building model: {} points, {}D, minPts={min_pts}, minClusterSize={min_cluster_size}",
            points.len(),
            D
        );
        let t0 = std::time::Instant::now();
        let model = ClusterModel::build(&points, min_pts, min_cluster_size);
        eprintln!("built in {:.2}s", t0.elapsed().as_secs_f64());
        model.save(std::path::Path::new(&out)).expect("save model");
        let bytes = std::fs::metadata(&out).map(|m| m.len()).unwrap_or(0);
        println!(
            "wrote {out} ({bytes} bytes, {} condensed clusters)",
            model.condensed.num_clusters()
        );
    });
}

fn serve(args: &[String]) {
    let model_path = flag(args, "--model").unwrap_or_else(|| usage());
    let addr = flag(args, "--addr").unwrap_or_else(|| "127.0.0.1:8077".into());
    let workers: usize = flag(args, "--workers")
        .unwrap_or_else(|| "4".into())
        .parse()
        .expect("--workers N");
    let pool_threads: usize = flag(args, "--threads")
        .unwrap_or_else(|| "0".into())
        .parse()
        .expect("--threads N");
    let dims = parclust_serve::peek_dims(std::path::Path::new(&model_path)).expect("peek dims");
    with_model_dims!(dims, |D| {
        let model = ClusterModel::<D>::load(std::path::Path::new(&model_path)).expect("load model");
        eprintln!(
            "loaded {model_path}: {} points, {}D, minPts={}",
            model.len(),
            D,
            model.min_pts
        );
        let engine = Arc::new(QueryEngine::new(Arc::new(model)));
        let server = parclust_serve::start(
            engine,
            &ServerConfig {
                addr,
                workers,
                pool_threads,
            },
        )
        .expect("bind server");
        // Parseable by scripts (CI greps for this line to learn the port).
        println!("listening on {}", server.addr());
        // Serve until killed.
        loop {
            std::thread::sleep(std::time::Duration::from_secs(3600));
        }
    });
}

fn query(args: &[String]) {
    let model_path = flag(args, "--model").unwrap_or_else(|| usage());
    let spec = if let Some(eps) = flag(args, "--eps") {
        LabelingSpec::Cut {
            eps: eps.parse().expect("--eps F"),
        }
    } else if let Some(k) = flag(args, "--k") {
        LabelingSpec::CutK {
            k: k.parse().expect("--k N"),
        }
    } else if let Some(e) = flag(args, "--eom-eps") {
        LabelingSpec::Eom {
            cluster_selection_epsilon: e.parse().expect("--eom-eps F"),
        }
    } else {
        LabelingSpec::Eom {
            cluster_selection_epsilon: 0.0,
        }
    };
    let dims = parclust_serve::peek_dims(std::path::Path::new(&model_path)).expect("peek dims");
    with_model_dims!(dims, |D| {
        let model = ClusterModel::<D>::load(std::path::Path::new(&model_path)).expect("load model");
        let engine = QueryEngine::new(Arc::new(model));
        let labeling = engine.labeling(spec);
        println!(
            "{}",
            serde_json::json!({
                "spec": format!("{spec:?}"),
                "num_clusters": labeling.num_clusters as u64,
                "noise": labeling.num_noise as u64,
            })
            .to_json_string_pretty()
        );
        if has_flag(args, "--labels") {
            let signed: Vec<i64> = labeling
                .labels
                .iter()
                .map(|&l| if l == parclust::NOISE { -1 } else { l as i64 })
                .collect();
            println!("{}", serde_json::to_string(&signed).unwrap());
        }
    });
}
