//! Load generator for the `serve` HTTP server: drives a configurable mix
//! of flat-cut, EOM, and out-of-sample-assignment requests over keep-alive
//! connections and reports throughput/latency as JSON (the serving
//! counterpart of the repro harness's bench reports).
//!
//! `--binary` switches the assignment traffic to the checksummed binary
//! batch protocol (`/assign_binary`); `--model ID` targets one model of a
//! multi-model server instead of the default-model routes.
//!
//! ```sh
//! loadgen --addr 127.0.0.1:8077 --connections 4 --requests 2000 \
//!         --batch 64 --mix cut,eom,assign --out bench_results/serving.json
//! loadgen --addr 127.0.0.1:8077 --model geo --binary --mix assign --batch 512
//! ```

use parclust_obs::Histogram;
use parclust_serve::{AssignRequest, AssignResponse, LabelingSpec};
use rand::prelude::*;
use serde_json::Value;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

#[derive(Clone)]
struct Opts {
    addr: String,
    connections: usize,
    requests: usize,
    batch: usize,
    mix: Vec<String>,
    out: Option<String>,
    seed: u64,
    /// Model id to route at (`/models/{id}/...`); None = legacy default
    /// routes.
    model: Option<String>,
    /// Assignment over the binary protocol instead of JSON.
    binary: bool,
}

fn flag(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1).cloned())
}

/// Runtime failure (connect, malformed server response, IO): diagnostic on
/// stderr, exit 1. Safe to call from worker threads — the whole process
/// should stop, not just the thread.
fn fail(msg: impl std::fmt::Display) -> ! {
    eprintln!("loadgen: error: {msg}");
    std::process::exit(1);
}

/// Command-line value we could not make sense of: diagnostic, exit 2.
fn bad_arg(msg: impl std::fmt::Display) -> ! {
    eprintln!("loadgen: error: {msg}");
    std::process::exit(2);
}

/// Parse a flag's value (or its default), exiting 2 on malformed input.
fn parse_flag<T: std::str::FromStr>(args: &[String], name: &str, default: &str) -> T {
    let raw = flag(args, name).unwrap_or_else(|| default.into());
    raw.parse()
        .unwrap_or_else(|_| bad_arg(format_args!("invalid value {raw:?} for {name}")))
}

fn parse_opts() -> Opts {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        eprintln!(
            "usage: loadgen --addr HOST:PORT [--connections C] [--requests N] \
             [--batch B] [--mix cut,eom,assign] [--model ID] [--binary] \
             [--seed S] [--out PATH]"
        );
        std::process::exit(0);
    }
    let mix: Vec<String> = flag(&args, "--mix")
        .unwrap_or_else(|| "cut,eom,assign".into())
        .split(',')
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .collect();
    // Reject bad mixes here, before any connection is opened, so the error
    // surfaces once on the main thread instead of panicking a worker.
    for kind in &mix {
        if !matches!(kind.as_str(), "cut" | "eom" | "assign") {
            bad_arg(format_args!(
                "unknown mix kind {kind:?} (use cut,eom,assign)"
            ));
        }
    }
    if mix.is_empty() {
        bad_arg("--mix must name at least one of cut,eom,assign");
    }
    Opts {
        addr: flag(&args, "--addr").unwrap_or_else(|| "127.0.0.1:8077".into()),
        connections: parse_flag(&args, "--connections", "4"),
        requests: parse_flag(&args, "--requests", "1000"),
        batch: parse_flag(&args, "--batch", "64"),
        mix,
        out: flag(&args, "--out"),
        seed: parse_flag(&args, "--seed", "42"),
        model: flag(&args, "--model"),
        binary: args.iter().any(|a| a == "--binary"),
    }
}

/// Per-kind latency collection (nanoseconds).
#[derive(Default)]
struct KindStats {
    latencies_ns: Vec<u64>,
}

impl KindStats {
    fn summarize(&mut self) -> Value {
        self.latencies_ns.sort_unstable();
        let n = self.latencies_ns.len();
        if n == 0 {
            return serde_json::json!({"count": 0u64});
        }
        let total: u64 = self.latencies_ns.iter().sum();
        let pct = |p: f64| self.latencies_ns[((n as f64 * p) as usize).min(n - 1)] as f64 / 1e6;
        serde_json::json!({
            "count": n as u64,
            "mean_ms": total as f64 / n as f64 / 1e6,
            "p50_ms": pct(0.50),
            "p95_ms": pct(0.95),
            "max_ms": *self.latencies_ns.last().unwrap() as f64 / 1e6,
        })
    }
}

/// Route prefix for query paths: `/models/{id}` or "" (default model).
fn prefix(model: &Option<String>) -> String {
    match model {
        Some(id) => format!("/models/{id}"),
        None => String::new(),
    }
}

fn main() {
    let opts = parse_opts();
    // One probe connection learns the model shape (dims + bbox + id) so
    // assign queries sample the data's own bounding box and binary frames
    // carry the right model id.
    let mut probe = parclust_serve::Client::connect(&opts.addr)
        .unwrap_or_else(|e| fail(format_args!("connect {}: {e}", opts.addr)));
    let info_path = match &opts.model {
        Some(id) => format!("/models/{id}"),
        None => "/model".to_string(),
    };
    let (status, model) = probe
        .get(&info_path)
        .unwrap_or_else(|e| fail(format_args!("GET {info_path}: {e}")));
    if status != 200 {
        fail(format_args!("GET {info_path} failed ({status}): {model}"));
    }
    // The id binary frames must carry: the routed id, or the server's
    // default when running against the legacy routes.
    let model_id = match &opts.model {
        Some(id) => id.clone(),
        None => {
            let (status, index) = probe
                .get("/models")
                .unwrap_or_else(|e| fail(format_args!("GET /models: {e}")));
            if status != 200 {
                fail(format_args!("GET /models failed ({status}): {index}"));
            }
            index
                .get("default")
                .and_then(Value::as_str)
                .unwrap_or_else(|| fail("server reports no default model (pass --model ID)"))
                .to_string()
        }
    };
    let dims = model
        .get("dims")
        .and_then(Value::as_u64)
        .unwrap_or_else(|| fail(format_args!("malformed model info (no dims): {model}")))
        as usize;
    let n_points = model.get("n").and_then(Value::as_u64).unwrap_or(0);
    let bbox_axis = |key: &str| -> Vec<f64> {
        model
            .get(key)
            .and_then(Value::as_array)
            .unwrap_or_else(|| fail(format_args!("malformed model info (no {key}): {model}")))
            .iter()
            .map(|v| {
                v.as_f64()
                    .unwrap_or_else(|| fail(format_args!("malformed model info ({key}): {model}")))
            })
            .collect()
    };
    let lo: Vec<f64> = bbox_axis("bbox_lo");
    let hi: Vec<f64> = bbox_axis("bbox_hi");
    let diag: f64 = lo
        .iter()
        .zip(&hi)
        .map(|(a, b)| (b - a) * (b - a))
        .sum::<f64>()
        .sqrt()
        .max(1e-9);
    drop(probe);
    eprintln!(
        "loadgen: {} requests over {} connections against {} ({n_points} points, {dims}D, \
         assign protocol: {})",
        opts.requests,
        opts.connections,
        opts.addr,
        if opts.binary { "binary" } else { "json" },
    );

    let next = Arc::new(AtomicUsize::new(0));
    // One lock-free histogram shared by every worker: the same collector
    // the server's /metrics endpoint uses, so the client-side percentiles
    // reported here are directly comparable to a concurrent scrape.
    let hist = Arc::new(Histogram::latency_default());
    let t0 = Instant::now();
    let handles: Vec<_> = (0..opts.connections)
        .map(|c| {
            let opts = opts.clone();
            let next = Arc::clone(&next);
            let hist = Arc::clone(&hist);
            let (lo, hi) = (lo.clone(), hi.clone());
            let model_id = model_id.clone();
            std::thread::spawn(move || {
                let mut client = parclust_serve::Client::connect(&opts.addr)
                    .unwrap_or_else(|e| fail(format_args!("connect {}: {e}", opts.addr)));
                let mut rng = StdRng::seed_from_u64(opts.seed ^ (c as u64) << 32);
                let mut stats: Vec<(String, KindStats)> = opts
                    .mix
                    .iter()
                    .map(|k| (k.clone(), KindStats::default()))
                    .collect();
                let route = prefix(&opts.model);
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= opts.requests {
                        break;
                    }
                    let kind = &opts.mix[i % opts.mix.len()];
                    let ns = match kind.as_str() {
                        // Eight distinct eps levels: the first hit of each
                        // computes, later hits measure cache + transport.
                        "cut" => {
                            let body = serde_json::json!({
                                "eps": diag * 0.002 * (1 + i % 8) as f64,
                                "include_labels": false,
                            });
                            timed_json(&mut client, &format!("{route}/cut"), &body)
                        }
                        "eom" => {
                            let body = serde_json::json!({
                                "cluster_selection_epsilon": diag * 0.004 * (i % 4) as f64,
                                "include_labels": false,
                            });
                            timed_json(&mut client, &format!("{route}/eom"), &body)
                        }
                        "assign" if opts.binary => {
                            let coords: Vec<f64> = (0..opts.batch)
                                .flat_map(|_| {
                                    (0..dims)
                                        .map(|d| rng.gen_range(lo[d]..=hi[d]))
                                        .collect::<Vec<f64>>()
                                })
                                .collect();
                            let frame = AssignRequest {
                                model_id: model_id.clone(),
                                spec: LabelingSpec::Eom {
                                    cluster_selection_epsilon: 0.0,
                                },
                                max_dist: f64::INFINITY,
                                dims: dims as u32,
                                coords,
                            }
                            .encode();
                            let q0 = Instant::now();
                            let (status, body) = client
                                .post_binary(&format!("{route}/assign_binary"), &frame)
                                .unwrap_or_else(|e| {
                                    fail(format_args!("POST {route}/assign_binary: {e}"))
                                });
                            let ns = q0.elapsed().as_nanos() as u64;
                            if status != 200 {
                                fail(format_args!(
                                    "assign_binary failed ({status}): {}",
                                    String::from_utf8_lossy(&body)
                                ));
                            }
                            let resp = AssignResponse::decode(&body).unwrap_or_else(|e| {
                                fail(format_args!("malformed assign_binary response: {e}"))
                            });
                            assert_eq!(resp.labels.len(), opts.batch);
                            ns
                        }
                        "assign" => {
                            let pts: Vec<Value> = (0..opts.batch)
                                .map(|_| {
                                    Value::Array(
                                        (0..dims)
                                            .map(|d| Value::Float(rng.gen_range(lo[d]..=hi[d])))
                                            .collect(),
                                    )
                                })
                                .collect();
                            let body = serde_json::json!({"points": Value::Array(pts)});
                            timed_json(&mut client, &format!("{route}/assign"), &body)
                        }
                        // Unreachable: parse_opts rejects unknown kinds
                        // before any worker starts.
                        other => bad_arg(format_args!(
                            "unknown mix kind {other:?} (use cut,eom,assign)"
                        )),
                    };
                    hist.record_ns(ns);
                    stats
                        .iter_mut()
                        .find(|(k, _)| k == kind)
                        .unwrap()
                        .1
                        .latencies_ns
                        .push(ns);
                }
                stats
            })
        })
        .collect();

    let mut merged: Vec<(String, KindStats)> = opts
        .mix
        .iter()
        .map(|k| (k.clone(), KindStats::default()))
        .collect();
    for h in handles {
        let worker = h
            .join()
            .unwrap_or_else(|_| fail("worker thread panicked (see message above)"));
        for (kind, s) in worker {
            merged
                .iter_mut()
                .find(|(k, _)| *k == kind)
                .unwrap()
                .1
                .latencies_ns
                .extend(s.latencies_ns);
        }
    }
    let wall = t0.elapsed().as_secs_f64();
    let total: usize = merged.iter().map(|(_, s)| s.latencies_ns.len()).sum();
    let rps = total as f64 / wall;
    let assign_requests = merged
        .iter()
        .find(|(k, _)| k == "assign")
        .map(|(_, s)| s.latencies_ns.len())
        .unwrap_or(0);
    let kind_objects: Vec<(String, Value)> = merged
        .iter_mut()
        .map(|(k, s)| (k.clone(), s.summarize()))
        .collect();
    let report = serde_json::json!({
        "experiment": "serving-throughput",
        "addr": opts.addr,
        "model": model_id,
        "model_points": n_points,
        "dims": dims as u64,
        "assign_protocol": if opts.binary { "binary" } else { "json" },
        "connections": opts.connections as u64,
        "requests": total as u64,
        "batch": opts.batch as u64,
        "wall_secs": wall,
        "requests_per_sec": rps,
        "assign_points_per_sec": assign_requests as f64 * opts.batch as f64 / wall,
        // All-kind latency quantiles from the shared histogram:
        // conservative bucket upper bounds, same collector as /metrics.
        "latency_p50_ms": hist.quantile_ms(0.50),
        "latency_p90_ms": hist.quantile_ms(0.90),
        "latency_p99_ms": hist.quantile_ms(0.99),
        "kinds": Value::Object(kind_objects),
    });
    println!("{}", report.to_json_string_pretty());
    if let Some(out) = &opts.out {
        let path = std::path::Path::new(out);
        if let Some(dir) = path.parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir)
                    .unwrap_or_else(|e| fail(format_args!("create {}: {e}", dir.display())));
            }
        }
        std::fs::write(path, report.to_json_string_pretty())
            .unwrap_or_else(|e| fail(format_args!("write {out}: {e}")));
        eprintln!("wrote {out}");
    }
}

/// POST a JSON body and return the elapsed nanoseconds (asserting 200).
fn timed_json(client: &mut parclust_serve::Client, path: &str, body: &Value) -> u64 {
    let q0 = Instant::now();
    let (status, resp) = client
        .post(path, body)
        .unwrap_or_else(|e| fail(format_args!("POST {path}: {e}")));
    let ns = q0.elapsed().as_nanos() as u64;
    if status != 200 {
        fail(format_args!("POST {path} failed ({status}): {resp}"));
    }
    ns
}
