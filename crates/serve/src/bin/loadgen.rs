//! Load generator for the `serve` HTTP server: drives a configurable mix
//! of flat-cut, EOM, and out-of-sample-assignment requests over keep-alive
//! connections and reports throughput/latency as JSON (the serving
//! counterpart of the repro harness's bench reports).
//!
//! `--binary` switches the assignment traffic to the checksummed binary
//! batch protocol (`/assign_binary`); `--model ID` targets one model of a
//! multi-model server instead of the default-model routes.
//!
//! ```sh
//! loadgen --addr 127.0.0.1:8077 --connections 4 --requests 2000 \
//!         --batch 64 --mix cut,eom,assign --out bench_results/serving.json
//! loadgen --addr 127.0.0.1:8077 --model geo --binary --mix assign --batch 512
//! ```

use parclust_serve::{AssignRequest, AssignResponse, LabelingSpec};
use rand::prelude::*;
use serde_json::Value;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

#[derive(Clone)]
struct Opts {
    addr: String,
    connections: usize,
    requests: usize,
    batch: usize,
    mix: Vec<String>,
    out: Option<String>,
    seed: u64,
    /// Model id to route at (`/models/{id}/...`); None = legacy default
    /// routes.
    model: Option<String>,
    /// Assignment over the binary protocol instead of JSON.
    binary: bool,
}

fn flag(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1).cloned())
}

fn parse_opts() -> Opts {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        eprintln!(
            "usage: loadgen --addr HOST:PORT [--connections C] [--requests N] \
             [--batch B] [--mix cut,eom,assign] [--model ID] [--binary] \
             [--seed S] [--out PATH]"
        );
        std::process::exit(0);
    }
    Opts {
        addr: flag(&args, "--addr").unwrap_or_else(|| "127.0.0.1:8077".into()),
        connections: flag(&args, "--connections")
            .unwrap_or_else(|| "4".into())
            .parse()
            .expect("--connections N"),
        requests: flag(&args, "--requests")
            .unwrap_or_else(|| "1000".into())
            .parse()
            .expect("--requests N"),
        batch: flag(&args, "--batch")
            .unwrap_or_else(|| "64".into())
            .parse()
            .expect("--batch N"),
        mix: flag(&args, "--mix")
            .unwrap_or_else(|| "cut,eom,assign".into())
            .split(',')
            .map(|s| s.trim().to_string())
            .collect(),
        out: flag(&args, "--out"),
        seed: flag(&args, "--seed")
            .unwrap_or_else(|| "42".into())
            .parse()
            .expect("--seed S"),
        model: flag(&args, "--model"),
        binary: args.iter().any(|a| a == "--binary"),
    }
}

/// Per-kind latency collection (nanoseconds).
#[derive(Default)]
struct KindStats {
    latencies_ns: Vec<u64>,
}

impl KindStats {
    fn summarize(&mut self) -> Value {
        self.latencies_ns.sort_unstable();
        let n = self.latencies_ns.len();
        if n == 0 {
            return serde_json::json!({"count": 0u64});
        }
        let total: u64 = self.latencies_ns.iter().sum();
        let pct = |p: f64| self.latencies_ns[((n as f64 * p) as usize).min(n - 1)] as f64 / 1e6;
        serde_json::json!({
            "count": n as u64,
            "mean_ms": total as f64 / n as f64 / 1e6,
            "p50_ms": pct(0.50),
            "p95_ms": pct(0.95),
            "max_ms": *self.latencies_ns.last().unwrap() as f64 / 1e6,
        })
    }
}

/// Route prefix for query paths: `/models/{id}` or "" (default model).
fn prefix(model: &Option<String>) -> String {
    match model {
        Some(id) => format!("/models/{id}"),
        None => String::new(),
    }
}

fn main() {
    let opts = parse_opts();
    // One probe connection learns the model shape (dims + bbox + id) so
    // assign queries sample the data's own bounding box and binary frames
    // carry the right model id.
    let mut probe = parclust_serve::Client::connect(&opts.addr).expect("connect");
    let info_path = match &opts.model {
        Some(id) => format!("/models/{id}"),
        None => "/model".to_string(),
    };
    let (status, model) = probe.get(&info_path).expect("GET model info");
    assert_eq!(status, 200, "GET {info_path} failed: {model}");
    // The id binary frames must carry: the routed id, or the server's
    // default when running against the legacy routes.
    let model_id = match &opts.model {
        Some(id) => id.clone(),
        None => {
            let (status, index) = probe.get("/models").expect("GET /models");
            assert_eq!(status, 200, "GET /models failed: {index}");
            index
                .get("default")
                .and_then(Value::as_str)
                .expect("server has a default model")
                .to_string()
        }
    };
    let dims = model.get("dims").and_then(Value::as_u64).expect("dims") as usize;
    let n_points = model.get("n").and_then(Value::as_u64).unwrap_or(0);
    let lo: Vec<f64> = model
        .get("bbox_lo")
        .and_then(Value::as_array)
        .expect("bbox_lo")
        .iter()
        .map(|v| v.as_f64().unwrap())
        .collect();
    let hi: Vec<f64> = model
        .get("bbox_hi")
        .and_then(Value::as_array)
        .expect("bbox_hi")
        .iter()
        .map(|v| v.as_f64().unwrap())
        .collect();
    let diag: f64 = lo
        .iter()
        .zip(&hi)
        .map(|(a, b)| (b - a) * (b - a))
        .sum::<f64>()
        .sqrt()
        .max(1e-9);
    drop(probe);
    eprintln!(
        "loadgen: {} requests over {} connections against {} ({n_points} points, {dims}D, \
         assign protocol: {})",
        opts.requests,
        opts.connections,
        opts.addr,
        if opts.binary { "binary" } else { "json" },
    );

    let next = Arc::new(AtomicUsize::new(0));
    let t0 = Instant::now();
    let handles: Vec<_> = (0..opts.connections)
        .map(|c| {
            let opts = opts.clone();
            let next = Arc::clone(&next);
            let (lo, hi) = (lo.clone(), hi.clone());
            let model_id = model_id.clone();
            std::thread::spawn(move || {
                let mut client =
                    parclust_serve::Client::connect(&opts.addr).expect("connect worker");
                let mut rng = StdRng::seed_from_u64(opts.seed ^ (c as u64) << 32);
                let mut stats: Vec<(String, KindStats)> = opts
                    .mix
                    .iter()
                    .map(|k| (k.clone(), KindStats::default()))
                    .collect();
                let route = prefix(&opts.model);
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= opts.requests {
                        break;
                    }
                    let kind = &opts.mix[i % opts.mix.len()];
                    let ns = match kind.as_str() {
                        // Eight distinct eps levels: the first hit of each
                        // computes, later hits measure cache + transport.
                        "cut" => {
                            let body = serde_json::json!({
                                "eps": diag * 0.002 * (1 + i % 8) as f64,
                                "include_labels": false,
                            });
                            timed_json(&mut client, &format!("{route}/cut"), &body)
                        }
                        "eom" => {
                            let body = serde_json::json!({
                                "cluster_selection_epsilon": diag * 0.004 * (i % 4) as f64,
                                "include_labels": false,
                            });
                            timed_json(&mut client, &format!("{route}/eom"), &body)
                        }
                        "assign" if opts.binary => {
                            let coords: Vec<f64> = (0..opts.batch)
                                .flat_map(|_| {
                                    (0..dims)
                                        .map(|d| rng.gen_range(lo[d]..=hi[d]))
                                        .collect::<Vec<f64>>()
                                })
                                .collect();
                            let frame = AssignRequest {
                                model_id: model_id.clone(),
                                spec: LabelingSpec::Eom {
                                    cluster_selection_epsilon: 0.0,
                                },
                                max_dist: f64::INFINITY,
                                dims: dims as u32,
                                coords,
                            }
                            .encode();
                            let q0 = Instant::now();
                            let (status, body) = client
                                .post_binary(&format!("{route}/assign_binary"), &frame)
                                .expect("binary request");
                            let ns = q0.elapsed().as_nanos() as u64;
                            assert_eq!(
                                status,
                                200,
                                "assign_binary failed: {}",
                                String::from_utf8_lossy(&body)
                            );
                            let resp = AssignResponse::decode(&body).expect("decode response");
                            assert_eq!(resp.labels.len(), opts.batch);
                            ns
                        }
                        "assign" => {
                            let pts: Vec<Value> = (0..opts.batch)
                                .map(|_| {
                                    Value::Array(
                                        (0..dims)
                                            .map(|d| Value::Float(rng.gen_range(lo[d]..=hi[d])))
                                            .collect(),
                                    )
                                })
                                .collect();
                            let body = serde_json::json!({"points": Value::Array(pts)});
                            timed_json(&mut client, &format!("{route}/assign"), &body)
                        }
                        other => panic!("unknown mix kind {other} (use cut,eom,assign)"),
                    };
                    stats
                        .iter_mut()
                        .find(|(k, _)| k == kind)
                        .unwrap()
                        .1
                        .latencies_ns
                        .push(ns);
                }
                stats
            })
        })
        .collect();

    let mut merged: Vec<(String, KindStats)> = opts
        .mix
        .iter()
        .map(|k| (k.clone(), KindStats::default()))
        .collect();
    for h in handles {
        for (kind, s) in h.join().expect("worker panicked") {
            merged
                .iter_mut()
                .find(|(k, _)| *k == kind)
                .unwrap()
                .1
                .latencies_ns
                .extend(s.latencies_ns);
        }
    }
    let wall = t0.elapsed().as_secs_f64();
    let total: usize = merged.iter().map(|(_, s)| s.latencies_ns.len()).sum();
    let rps = total as f64 / wall;
    let assign_requests = merged
        .iter()
        .find(|(k, _)| k == "assign")
        .map(|(_, s)| s.latencies_ns.len())
        .unwrap_or(0);
    let kind_objects: Vec<(String, Value)> = merged
        .iter_mut()
        .map(|(k, s)| (k.clone(), s.summarize()))
        .collect();
    let report = serde_json::json!({
        "experiment": "serving-throughput",
        "addr": opts.addr,
        "model": model_id,
        "model_points": n_points,
        "dims": dims as u64,
        "assign_protocol": if opts.binary { "binary" } else { "json" },
        "connections": opts.connections as u64,
        "requests": total as u64,
        "batch": opts.batch as u64,
        "wall_secs": wall,
        "requests_per_sec": rps,
        "assign_points_per_sec": assign_requests as f64 * opts.batch as f64 / wall,
        "kinds": Value::Object(kind_objects),
    });
    println!("{}", report.to_json_string_pretty());
    if let Some(out) = &opts.out {
        let path = std::path::Path::new(out);
        if let Some(dir) = path.parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir).expect("create out dir");
            }
        }
        std::fs::write(path, report.to_json_string_pretty()).expect("write report");
        eprintln!("wrote {out}");
    }
}

/// POST a JSON body and return the elapsed nanoseconds (asserting 200).
fn timed_json(client: &mut parclust_serve::Client, path: &str, body: &Value) -> u64 {
    let q0 = Instant::now();
    let (status, resp) = client.post(path, body).expect("request");
    let ns = q0.elapsed().as_nanos() as u64;
    assert_eq!(status, 200, "{path} failed: {resp}");
    ns
}
