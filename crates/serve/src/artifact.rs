//! The clustering-model artifact: a versioned little-endian binary format
//! bundling everything a query server needs — the point set, the kd-tree,
//! the per-point core distances, the HDBSCAN\* dendrogram, and the
//! condensed cluster tree — so one expensive hierarchy build can answer
//! arbitrarily many cheap queries across process restarts.
//!
//! Layout (version 2, all little-endian, built on `parclust_data::io::le`):
//!
//! ```text
//! "PCSM" | version u32 | dims u32 | n u64 | min_pts u64 | min_cluster_size u64
//! points           n·D f64            (original order)
//! kd-tree          idx u32[],  arena u64 + per-node {bbox 2·D f64, start,
//!                  end}, leaf bitmap u64 + u64[]   (implicit-BFS flat tree)
//! core distances   f64[]
//! dendrogram       start u32, root u32, edge_u u32[], edge_v u32[],
//!                  height f64[], left u32[], right u32[], parent u32[],
//!                  vertex_dist u32[]
//! condensed tree   parent u32[], birth_lambda f64[], stability f64[],
//!                  size u32[], point_cluster u32[], point_lambda f64[]
//! checksum         FNV-1a 64 of every preceding byte
//! ```
//!
//! Version 2 replaced the per-node `left`/`right` child pointers of
//! version 1 with the implicit-BFS layout: nodes are stored in BFS order
//! and a leaf bitmap drives the child index arithmetic (see
//! `parclust_kdtree`). Version-1 artifacts still load — the reader parses
//! the pointer-shaped arena and re-lays it out via
//! [`KdTree::from_legacy_parts`]; new artifacts are always written as
//! version 2.
//!
//! Versioning contract: the magic and `version` field come first and are
//! checked before anything else is parsed; readers reject unknown versions
//! instead of guessing. Any layout change bumps `FORMAT_VERSION`. The
//! trailing checksum (plus structural validation on load, including
//! [`parclust_kdtree::KdTree::from_parts`]'s invariant walk) turns
//! truncated or bit-flipped files into clean `InvalidData` errors rather
//! than panics or silently wrong query answers.

use parclust::{
    condense_tree, dendrogram_par, hdbscan_memogfk, hdbscan_streaming, CondensedTree, Dendrogram,
    NOISE,
};
use parclust_data::io::{collect_points, le, PointSource};
use parclust_geom::{Aabb, Point};
use parclust_kdtree::{FlatNodes, KdTree, PointerNode};
use std::io::{self, Read, Write};
use std::path::Path;

/// Artifact magic: "ParClust Serving Model".
pub const MAGIC: &[u8; 4] = b"PCSM";
/// Current artifact format version (2: implicit-BFS flat kd-tree).
pub const FORMAT_VERSION: u32 = 2;
/// Oldest artifact format version the reader still migrates on load.
pub const MIN_READ_VERSION: u32 = 1;

fn bad(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

/// FNV-1a 64-bit over `bytes` — cheap, dependency-free corruption check.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// A servable clustering model over `D`-dimensional points.
pub struct ClusterModel<const D: usize> {
    /// `minPts` the hierarchy was built with (also the kNN width used for
    /// out-of-sample core distances).
    pub min_pts: usize,
    /// `min_cluster_size` the condensed tree was built with.
    pub min_cluster_size: usize,
    /// The training points, original order.
    pub points: Vec<Point<D>>,
    /// kd-tree over the points (answers kNN for out-of-sample assignment).
    pub tree: KdTree<D>,
    /// Core distance of every point, original order.
    pub core_distances: Vec<f64>,
    /// HDBSCAN\* ordered dendrogram (flat cuts, reachability).
    pub dendrogram: Dendrogram,
    /// Condensed cluster tree (EOM extraction).
    pub condensed: CondensedTree,
}

impl<const D: usize> ClusterModel<D> {
    /// Run the full batch pipeline (HDBSCAN\* MST → ordered dendrogram →
    /// condensed tree) and package the results as a servable model.
    ///
    /// `min_cluster_size` must be ≥ 2 (condensed-tree requirement) and
    /// `points` non-empty (the kd-tree needs at least one point).
    pub fn build(points: &[Point<D>], min_pts: usize, min_cluster_size: usize) -> Self {
        Self::build_with_options(points, min_pts, min_cluster_size, None)
    }

    /// [`ClusterModel::build`] fed by a [`PointSource`] — the ingestion
    /// path for `.pcls` chunked point files and other streamed inputs.
    ///
    /// The training points themselves end up resident either way (the
    /// artifact stores them, and the kd-tree indexes them), but ingestion
    /// reads bounded chunks instead of one whole-file buffer, and
    /// `max_live_pairs` (when `Some`) routes the hierarchy build through
    /// the bounded-memory streaming HDBSCAN\* pipeline — WSPD pair batches
    /// capped at that many live pairs — instead of MemoGFK's full
    /// materialization. The streaming pipeline is bit-identical to the
    /// in-memory one (pinned by `tests/streaming_semantics.rs`), so models
    /// built either way answer identical queries.
    pub fn build_from_source<S: PointSource<D>>(
        src: &mut S,
        min_pts: usize,
        min_cluster_size: usize,
        max_live_pairs: Option<usize>,
    ) -> io::Result<Self> {
        let points = collect_points(src)?;
        if points.is_empty() {
            return Err(bad("point source yielded zero points"));
        }
        Ok(Self::build_with_options(
            &points,
            min_pts,
            min_cluster_size,
            max_live_pairs,
        ))
    }

    /// [`ClusterModel::build`] with the hierarchy engine exposed: `None`
    /// runs MemoGFK in memory, `Some(cap)` runs the streaming pipeline
    /// with at most `cap` live WSPD pairs. Use this (not a
    /// [`SliceSource`](parclust_data::io::SliceSource) round-trip) when
    /// the points are already resident.
    pub fn build_with_options(
        points: &[Point<D>],
        min_pts: usize,
        min_cluster_size: usize,
        max_live_pairs: Option<usize>,
    ) -> Self {
        assert!(!points.is_empty(), "model needs at least one point");
        let h = match max_live_pairs {
            Some(cap) => hdbscan_streaming(points, min_pts, cap),
            None => hdbscan_memogfk(points, min_pts),
        };
        let dendrogram = dendrogram_par(points.len(), &h.edges, 0);
        let condensed = condense_tree(&dendrogram, min_cluster_size);
        ClusterModel {
            min_pts,
            min_cluster_size,
            points: points.to_vec(),
            tree: KdTree::build(points),
            core_distances: h.core_distances,
            dendrogram,
            condensed,
        }
    }

    /// Number of training points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Bounding box of the training points (the kd-tree root box).
    pub fn bbox(&self) -> Aabb<D> {
        *self.tree.bbox(self.tree.root())
    }

    /// Serialize into `w` (no checksum — [`ClusterModel::save`] appends it).
    fn write_to<W: Write>(&self, w: &mut W) -> io::Result<()> {
        let n = self.points.len();
        w.write_all(MAGIC)?;
        le::write_u32(w, FORMAT_VERSION)?;
        le::write_u32(w, D as u32)?;
        le::write_u64(w, n as u64)?;
        le::write_u64(w, self.min_pts as u64)?;
        le::write_u64(w, self.min_cluster_size as u64)?;
        for p in &self.points {
            for &c in p.coords() {
                le::write_f64(w, c)?;
            }
        }
        // kd-tree: the permuted point copy is reconstructed from points +
        // idx on load, so only idx and the flat BFS arrays are stored.
        le::write_u32_slice(w, &self.tree.idx)?;
        let nodes = self.tree.flat_nodes();
        le::write_u64(w, nodes.bbox.len() as u64)?;
        for id in 0..nodes.bbox.len() {
            for &c in nodes.bbox[id].lo.coords() {
                le::write_f64(w, c)?;
            }
            for &c in nodes.bbox[id].hi.coords() {
                le::write_f64(w, c)?;
            }
            le::write_u32(w, nodes.start[id])?;
            le::write_u32(w, nodes.end[id])?;
        }
        le::write_u64(w, nodes.leaf_words.len() as u64)?;
        for &word in &nodes.leaf_words {
            le::write_u64(w, word)?;
        }
        le::write_f64_slice(w, &self.core_distances)?;
        let d = &self.dendrogram;
        le::write_u32(w, d.start)?;
        le::write_u32(w, d.root)?;
        le::write_u32_slice(w, &d.edge_u)?;
        le::write_u32_slice(w, &d.edge_v)?;
        le::write_f64_slice(w, &d.height)?;
        le::write_u32_slice(w, &d.left)?;
        le::write_u32_slice(w, &d.right)?;
        le::write_u32_slice(w, &d.parent)?;
        le::write_u32_slice(w, &d.vertex_dist)?;
        let ct = &self.condensed;
        le::write_u32_slice(w, &ct.parent)?;
        le::write_f64_slice(w, &ct.birth_lambda)?;
        le::write_f64_slice(w, &ct.stability)?;
        le::write_u32_slice(w, &ct.size)?;
        le::write_u32_slice(w, &ct.point_cluster)?;
        le::write_f64_slice(w, &ct.point_lambda)?;
        Ok(())
    }

    /// Serialize the artifact to bytes (payload + trailing checksum) —
    /// exactly what [`ClusterModel::save`] writes to disk. The dynamic
    /// wrapper format embeds these bytes as its base section.
    pub fn to_bytes(&self) -> io::Result<Vec<u8>> {
        let mut buf = Vec::new();
        self.write_to(&mut buf)?;
        let sum = fnv1a64(&buf);
        le::write_u64(&mut buf, sum)?;
        Ok(buf)
    }

    /// Write the artifact to `path` (payload + trailing checksum).
    pub fn save(&self, path: &Path) -> io::Result<()> {
        let buf = self.to_bytes()?;
        if let Some(dir) = path.parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir)?;
            }
        }
        std::fs::write(path, buf)
    }

    /// Load an artifact written by [`ClusterModel::save`], validating the
    /// magic, version, dimensionality, checksum, and structural invariants.
    pub fn load(path: &Path) -> io::Result<Self> {
        let bytes = std::fs::read(path)?;
        Self::from_bytes(&bytes)
    }

    /// Parse an artifact from bytes (checksum included).
    pub fn from_bytes(bytes: &[u8]) -> io::Result<Self> {
        if bytes.len() < MAGIC.len() + 8 {
            return Err(bad("artifact too short"));
        }
        let (payload, tail) = bytes.split_at(bytes.len() - 8);
        let stored = u64::from_le_bytes(tail.try_into().unwrap());
        if fnv1a64(payload) != stored {
            return Err(bad("artifact checksum mismatch (corrupt file)"));
        }
        let mut r = payload;
        let mut magic = [0u8; 4];
        r.read_exact(&mut magic)?;
        if &magic != MAGIC {
            return Err(bad("bad artifact magic"));
        }
        let version = le::read_u32(&mut r)?;
        if !(MIN_READ_VERSION..=FORMAT_VERSION).contains(&version) {
            return Err(bad(format!(
                "unsupported artifact version {version} \
                 (this build reads {MIN_READ_VERSION}..={FORMAT_VERSION})"
            )));
        }
        let dims = le::read_u32(&mut r)?;
        if dims as usize != D {
            return Err(bad(format!("artifact has {dims} dims, expected {D}")));
        }
        let n = le::read_u64(&mut r)? as usize;
        if n == 0 {
            return Err(bad("artifact holds zero points"));
        }
        let min_pts = le::read_u64(&mut r)? as usize;
        let min_cluster_size = le::read_u64(&mut r)? as usize;
        let mut points = Vec::with_capacity(n.min(1 << 20));
        for _ in 0..n {
            let mut c = [0.0; D];
            for slot in c.iter_mut() {
                *slot = le::read_f64(&mut r)?;
            }
            points.push(Point(c));
        }
        let idx = le::read_u32_vec(&mut r)?;
        if idx.len() != n {
            return Err(bad("kd-tree idx length mismatch"));
        }
        let arena_len = le::read_u64(&mut r)? as usize;
        if arena_len != 2 * n - 1 {
            return Err(bad("kd-tree arena length mismatch"));
        }
        let read_bbox = |r: &mut &[u8]| -> io::Result<Aabb<D>> {
            let mut lo = [0.0; D];
            let mut hi = [0.0; D];
            for slot in lo.iter_mut() {
                *slot = le::read_f64(r)?;
            }
            for slot in hi.iter_mut() {
                *slot = le::read_f64(r)?;
            }
            Ok(Aabb {
                lo: Point(lo),
                hi: Point(hi),
            })
        };
        // Permuted copy: position i holds the point whose original index is
        // idx[i] (validated as a permutation by the tree reassembly).
        let permuted = |idx: &[u32]| -> io::Result<Vec<Point<D>>> {
            idx.iter()
                .map(|&o| {
                    points
                        .get(o as usize)
                        .copied()
                        .ok_or_else(|| bad("kd-tree idx out of range"))
                })
                .collect()
        };
        let tree = if version >= 2 {
            // Implicit-BFS flat arrays: bbox/start/end per node + leaf bitmap.
            let mut nodes = FlatNodes {
                bbox: Vec::with_capacity(arena_len.min(1 << 20)),
                start: Vec::with_capacity(arena_len.min(1 << 20)),
                end: Vec::with_capacity(arena_len.min(1 << 20)),
                leaf_words: Vec::new(),
            };
            for _ in 0..arena_len {
                nodes.bbox.push(read_bbox(&mut r)?);
                nodes.start.push(le::read_u32(&mut r)?);
                nodes.end.push(le::read_u32(&mut r)?);
            }
            let words = le::read_u64(&mut r)? as usize;
            if words != arena_len.div_ceil(64) {
                return Err(bad("kd-tree leaf bitmap length mismatch"));
            }
            nodes.leaf_words.reserve_exact(words);
            for _ in 0..words {
                nodes.leaf_words.push(le::read_u64(&mut r)?);
            }
            KdTree::from_parts(permuted(&idx)?, idx, nodes)
                .map_err(|e| bad(format!("kd-tree validation failed: {e}")))?
        } else {
            // Version 1: pointer-shaped arena; validate and migrate to the
            // flat layout.
            let mut nodes = Vec::with_capacity(arena_len.min(1 << 20));
            for _ in 0..arena_len {
                let bbox = read_bbox(&mut r)?;
                let start = le::read_u32(&mut r)?;
                let end = le::read_u32(&mut r)?;
                let left = le::read_u32(&mut r)?;
                let right = le::read_u32(&mut r)?;
                nodes.push(PointerNode {
                    bbox,
                    start,
                    end,
                    left,
                    right,
                });
            }
            KdTree::from_legacy_parts(permuted(&idx)?, idx, nodes)
                .map_err(|e| bad(format!("kd-tree validation failed: {e}")))?
        };

        let core_distances = le::read_f64_vec(&mut r)?;
        if core_distances.len() != n {
            return Err(bad("core-distance length mismatch"));
        }

        let start = le::read_u32(&mut r)?;
        let root = le::read_u32(&mut r)?;
        let edge_u = le::read_u32_vec(&mut r)?;
        let edge_v = le::read_u32_vec(&mut r)?;
        let height = le::read_f64_vec(&mut r)?;
        let left = le::read_u32_vec(&mut r)?;
        let right = le::read_u32_vec(&mut r)?;
        let parent = le::read_u32_vec(&mut r)?;
        let vertex_dist = le::read_u32_vec(&mut r)?;
        let m = n - 1;
        if edge_u.len() != m
            || edge_v.len() != m
            || height.len() != m
            || left.len() != m
            || right.len() != m
            || parent.len() != 2 * n - 1
            || vertex_dist.len() != n
        {
            return Err(bad("dendrogram section length mismatch"));
        }
        let num_nodes = (2 * n - 1) as u32;
        if root >= num_nodes || start >= n as u32 {
            return Err(bad("dendrogram root/start out of range"));
        }
        if edge_u.iter().chain(&edge_v).any(|&v| v >= n as u32) {
            return Err(bad("dendrogram edge endpoint out of range"));
        }
        if left.iter().chain(&right).any(|&v| v >= num_nodes) {
            return Err(bad("dendrogram child id out of range"));
        }
        let dendrogram = Dendrogram {
            n,
            edge_u,
            edge_v,
            height,
            left,
            right,
            parent,
            root,
            vertex_dist,
            start,
        };

        let ct_parent = le::read_u32_vec(&mut r)?;
        let birth_lambda = le::read_f64_vec(&mut r)?;
        let stability = le::read_f64_vec(&mut r)?;
        let size = le::read_u32_vec(&mut r)?;
        let point_cluster = le::read_u32_vec(&mut r)?;
        let point_lambda = le::read_f64_vec(&mut r)?;
        let k = ct_parent.len();
        if k == 0 {
            return Err(bad("condensed tree must hold the root cluster"));
        }
        if birth_lambda.len() != k || stability.len() != k || size.len() != k {
            return Err(bad("condensed-tree section length mismatch"));
        }
        if point_cluster.len() != n || point_lambda.len() != n {
            return Err(bad("condensed-tree point section length mismatch"));
        }
        if point_cluster.iter().any(|&c| c != NOISE && c as usize >= k) {
            return Err(bad("condensed-tree point cluster out of range"));
        }
        // Parents must precede children (the extraction sweeps rely on it).
        for c in 1..k {
            if ct_parent[c] >= c as u32 {
                return Err(bad("condensed-tree parent order violated"));
            }
        }
        if !r.is_empty() {
            return Err(bad("trailing bytes after artifact payload"));
        }
        let condensed = CondensedTree {
            parent: ct_parent,
            birth_lambda,
            stability,
            size,
            point_cluster,
            point_lambda,
        };
        Ok(ClusterModel {
            min_pts,
            min_cluster_size,
            points,
            tree,
            core_distances,
            dendrogram,
            condensed,
        })
    }
}

/// Read just the header of an artifact and return its dimensionality —
/// lets binaries dispatch to the right `ClusterModel::<D>` monomorphization
/// before paying for a full load.
pub fn peek_dims(path: &Path) -> io::Result<usize> {
    let mut f = std::fs::File::open(path)?;
    let mut head = [0u8; 12];
    f.read_exact(&mut head)?;
    if &head[0..4] != MAGIC {
        return Err(bad("bad artifact magic"));
    }
    let version = u32::from_le_bytes(head[4..8].try_into().unwrap());
    if !(MIN_READ_VERSION..=FORMAT_VERSION).contains(&version) {
        return Err(bad(format!("unsupported artifact version {version}")));
    }
    Ok(u32::from_le_bytes(head[8..12].try_into().unwrap()) as usize)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::prelude::*;

    fn blobs2(n_per: usize, seed: u64) -> Vec<Point<2>> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut pts = Vec::new();
        for &(cx, cy) in &[(0.0, 0.0), (50.0, 0.0)] {
            for _ in 0..n_per {
                pts.push(Point([
                    cx + rng.gen_range(-2.0..2.0),
                    cy + rng.gen_range(-2.0..2.0),
                ]));
            }
        }
        pts
    }

    fn tmp(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("parclust-serve-test-{}-{name}", std::process::id()));
        p
    }

    #[test]
    fn save_load_roundtrip_preserves_everything() {
        let pts = blobs2(120, 1);
        let model = ClusterModel::build(&pts, 5, 10);
        let path = tmp("roundtrip.pcsm");
        model.save(&path).unwrap();
        assert_eq!(peek_dims(&path).unwrap(), 2);
        let back = ClusterModel::<2>::load(&path).unwrap();
        assert_eq!(back.min_pts, 5);
        assert_eq!(back.min_cluster_size, 10);
        assert_eq!(back.points, model.points);
        assert_eq!(back.core_distances, model.core_distances);
        assert_eq!(back.dendrogram.height, model.dendrogram.height);
        assert_eq!(back.dendrogram.left, model.dendrogram.left);
        assert_eq!(back.dendrogram.right, model.dendrogram.right);
        assert_eq!(back.dendrogram.parent, model.dendrogram.parent);
        assert_eq!(back.dendrogram.root, model.dendrogram.root);
        assert_eq!(back.condensed.parent, model.condensed.parent);
        assert_eq!(back.condensed.point_cluster, model.condensed.point_cluster);
        assert_eq!(back.tree.idx, model.tree.idx);
        // The reassembled tree answers identical kNN queries.
        for q in pts.iter().step_by(37) {
            assert_eq!(back.tree.knn(q, 5), model.tree.knn(q, 5));
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn wrong_dims_version_and_magic_are_rejected() {
        let pts = blobs2(40, 2);
        let model = ClusterModel::build(&pts, 3, 5);
        let path = tmp("dims.pcsm");
        model.save(&path).unwrap();
        // Wrong dimensionality at the type level.
        assert!(ClusterModel::<3>::load(&path).is_err());
        let bytes = std::fs::read(&path).unwrap();
        // Corrupt magic.
        let mut bad_magic = bytes.clone();
        bad_magic[0] ^= 0xff;
        assert!(ClusterModel::<2>::from_bytes(&bad_magic).is_err());
        // Unknown version — recompute the checksum so versioning (not the
        // checksum) is what rejects the file.
        let mut bad_version = bytes.clone();
        bad_version[4] = 99;
        let plen = bad_version.len() - 8;
        let sum = fnv1a64(&bad_version[..plen]).to_le_bytes();
        bad_version[plen..].copy_from_slice(&sum);
        let err = match ClusterModel::<2>::from_bytes(&bad_version) {
            Err(e) => e,
            Ok(_) => panic!("unknown version must be rejected"),
        };
        assert!(err.to_string().contains("version"), "{err}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn source_fed_build_matches_in_memory_build() {
        let pts = blobs2(90, 7);
        let base = ClusterModel::build(&pts, 4, 6);
        // Chunked-file source + streaming hierarchy, tiny chunks and pair
        // batches to force many boundaries.
        let path = tmp("source.pcls");
        parclust_data::write_chunked(&path, &pts, 17).unwrap();
        let mut src = parclust_data::ChunkedReader::<2>::open(&path).unwrap();
        let streamed = ClusterModel::build_from_source(&mut src, 4, 6, Some(64)).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(streamed.points, base.points);
        assert_eq!(streamed.core_distances, base.core_distances);
        assert_eq!(streamed.dendrogram.height, base.dendrogram.height);
        assert_eq!(streamed.dendrogram.parent, base.dendrogram.parent);
        assert_eq!(streamed.condensed.parent, base.condensed.parent);
        assert_eq!(
            streamed.condensed.point_cluster,
            base.condensed.point_cluster
        );
        // Empty sources are a clean error, not a kd-tree panic.
        let empty: Vec<Point<2>> = Vec::new();
        let mut src = parclust_data::SliceSource::new(&empty, 8);
        assert!(ClusterModel::<2>::build_from_source(&mut src, 4, 6, None).is_err());
    }

    /// Serialize `model` in the version-1 wire format (pointer-shaped
    /// kd-tree arena), checksum included. The pointer arena is derived from
    /// the flat tree: BFS order is a valid legacy node order (root at 0),
    /// and leaves get `NULL_NODE` children.
    fn v1_bytes(model: &ClusterModel<2>) -> Vec<u8> {
        use parclust_kdtree::NULL_NODE;
        let n = model.points.len();
        let mut buf = Vec::new();
        let w = &mut buf;
        w.extend_from_slice(MAGIC);
        le::write_u32(w, 1).unwrap();
        le::write_u32(w, 2).unwrap();
        le::write_u64(w, n as u64).unwrap();
        le::write_u64(w, model.min_pts as u64).unwrap();
        le::write_u64(w, model.min_cluster_size as u64).unwrap();
        for p in &model.points {
            for &c in p.coords() {
                le::write_f64(w, c).unwrap();
            }
        }
        le::write_u32_slice(w, &model.tree.idx).unwrap();
        let arena_len = model.tree.arena_len();
        le::write_u64(w, arena_len as u64).unwrap();
        for id in 0..arena_len as u32 {
            let bbox = model.tree.bbox(id);
            for &c in bbox.lo.coords() {
                le::write_f64(w, c).unwrap();
            }
            for &c in bbox.hi.coords() {
                le::write_f64(w, c).unwrap();
            }
            le::write_u32(w, model.tree.node_start(id)).unwrap();
            le::write_u32(w, model.tree.node_end(id)).unwrap();
            if model.tree.is_leaf(id) {
                le::write_u32(w, NULL_NODE).unwrap();
                le::write_u32(w, NULL_NODE).unwrap();
            } else {
                let (l, r) = model.tree.children(id);
                le::write_u32(w, l).unwrap();
                le::write_u32(w, r).unwrap();
            }
        }
        le::write_f64_slice(w, &model.core_distances).unwrap();
        let d = &model.dendrogram;
        le::write_u32(w, d.start).unwrap();
        le::write_u32(w, d.root).unwrap();
        le::write_u32_slice(w, &d.edge_u).unwrap();
        le::write_u32_slice(w, &d.edge_v).unwrap();
        le::write_f64_slice(w, &d.height).unwrap();
        le::write_u32_slice(w, &d.left).unwrap();
        le::write_u32_slice(w, &d.right).unwrap();
        le::write_u32_slice(w, &d.parent).unwrap();
        le::write_u32_slice(w, &d.vertex_dist).unwrap();
        let ct = &model.condensed;
        le::write_u32_slice(w, &ct.parent).unwrap();
        le::write_f64_slice(w, &ct.birth_lambda).unwrap();
        le::write_f64_slice(w, &ct.stability).unwrap();
        le::write_u32_slice(w, &ct.size).unwrap();
        le::write_u32_slice(w, &ct.point_cluster).unwrap();
        le::write_f64_slice(w, &ct.point_lambda).unwrap();
        let sum = fnv1a64(&buf);
        le::write_u64(&mut buf, sum).unwrap();
        buf
    }

    #[test]
    fn version1_artifact_migrates_on_load() {
        let pts = blobs2(80, 11);
        let model = ClusterModel::build(&pts, 4, 8);
        let legacy = v1_bytes(&model);
        let back = ClusterModel::<2>::from_bytes(&legacy).unwrap();
        assert_eq!(back.points, model.points);
        assert_eq!(back.tree.idx, model.tree.idx);
        assert_eq!(back.core_distances, model.core_distances);
        assert_eq!(back.dendrogram.parent, model.dendrogram.parent);
        assert_eq!(back.condensed.point_cluster, model.condensed.point_cluster);
        // The migrated tree answers identical queries — BFS relayout of a
        // BFS-ordered arena is the identity, so even node ids line up.
        for q in pts.iter().step_by(13) {
            assert_eq!(back.tree.knn(q, 4), model.tree.knn(q, 4));
        }
        // A v1 arena with a cycle (node pointing at itself) is rejected by
        // the legacy validation walk, not a hang or panic.
        let mut cyclic = v1_bytes(&model);
        let arena_off = 36 + pts.len() * 16 + 8 + pts.len() * 4 + 8;
        let node_bytes = 2 * 2 * 8 + 16; // bbox + start/end/left/right
                                         // Find an internal node and point its left child at itself.
        let root_left = arena_off + node_bytes - 8;
        cyclic[root_left..root_left + 4].copy_from_slice(&0u32.to_le_bytes());
        let plen = cyclic.len() - 8;
        let sum = fnv1a64(&cyclic[..plen]).to_le_bytes();
        cyclic[plen..].copy_from_slice(&sum);
        let err = match ClusterModel::<2>::from_bytes(&cyclic) {
            Err(e) => e,
            Ok(_) => panic!("cyclic v1 arena must be rejected"),
        };
        assert!(err.to_string().contains("kd-tree"), "{err}");
    }

    #[test]
    fn truncation_is_rejected_at_every_prefix() {
        let pts = blobs2(20, 12);
        let model = ClusterModel::build(&pts, 3, 4);
        let mut buf = Vec::new();
        model.write_to(&mut buf).unwrap();
        let sum = fnv1a64(&buf);
        le::write_u64(&mut buf, sum).unwrap();
        assert!(ClusterModel::<2>::from_bytes(&buf).is_ok());
        for cut in (0..buf.len()).step_by(7).chain([buf.len() - 1]) {
            assert!(
                ClusterModel::<2>::from_bytes(&buf[..cut]).is_err(),
                "truncation to {cut} bytes must be rejected"
            );
        }
    }

    #[test]
    fn random_bit_flips_are_rejected() {
        let pts = blobs2(20, 13);
        let model = ClusterModel::build(&pts, 3, 4);
        let mut buf = Vec::new();
        model.write_to(&mut buf).unwrap();
        let sum = fnv1a64(&buf);
        le::write_u64(&mut buf, sum).unwrap();
        let mut rng = StdRng::seed_from_u64(13);
        for _ in 0..64 {
            let byte = rng.gen_range(0..buf.len());
            let bit = 1u8 << rng.gen_range(0..8);
            let mut corrupt = buf.clone();
            corrupt[byte] ^= bit;
            assert!(
                ClusterModel::<2>::from_bytes(&corrupt).is_err(),
                "bit flip at byte {byte} must be rejected"
            );
        }
    }

    #[test]
    fn leaf_bitmap_corruption_fails_structural_validation() {
        // Flip a leaf bit and *recompute the checksum*, so the structural
        // validation in `KdTree::from_parts` (not the checksum) must catch
        // the corruption.
        let pts = blobs2(40, 14);
        let model = ClusterModel::build(&pts, 3, 4);
        let mut buf = Vec::new();
        model.write_to(&mut buf).unwrap();
        let n = pts.len();
        let arena_len = 2 * n - 1;
        let words_off = 36 // header
            + n * 16 // points
            + 8 + n * 4 // idx
            + 8 + arena_len * (2 * 2 * 8 + 8) // arena count + nodes
            + 8; // word count
                 // Root (bit 0 of word 0) is internal for n > 1; marking it a leaf
                 // breaks the leaf-count/child-arithmetic invariants.
        buf[words_off] ^= 1;
        let sum = fnv1a64(&buf);
        le::write_u64(&mut buf, sum).unwrap();
        let err = match ClusterModel::<2>::from_bytes(&buf) {
            Err(e) => e,
            Ok(_) => panic!("corrupt leaf bitmap must be rejected"),
        };
        assert!(err.to_string().contains("kd-tree"), "{err}");
    }

    #[test]
    fn single_point_model_roundtrips() {
        let model = ClusterModel::build(&[Point([3.0, 4.0])], 5, 5);
        let path = tmp("single.pcsm");
        model.save(&path).unwrap();
        let back = ClusterModel::<2>::load(&path).unwrap();
        assert_eq!(back.len(), 1);
        assert!(back.dendrogram.height.is_empty());
        std::fs::remove_file(&path).ok();
    }
}
