//! Synthetic data set generators.
//!
//! The paper evaluates on two synthetic families plus four real data sets:
//!
//! * **UniformFill** — points uniform in a hypercube with side length `√n`
//!   (§5 "Data Sets"); [`uniform_fill`].
//! * **SS-varden** — the seed-spreader generator of Gan and Tao [27]:
//!   a random walk emits points in a local vicinity, periodically
//!   restarting at a new location, producing clusters of varying density
//!   plus uniform noise; [`seed_spreader`].
//! * **GeoLife / Household / HT / CHEM** — real data sets that are not
//!   redistributable here. [`gps_like`] and [`sensor_like`] are surrogates
//!   reproducing the property the paper invokes them for (GeoLife:
//!   "extremely skewed" 3D trajectory data; the sensor sets:
//!   moderate-dimensional correlated clusters). See DESIGN.md,
//!   substitution 2.
//!
//! All generators are deterministic given a seed.

use parclust_geom::Point;
use rand::prelude::*;

/// Uniform points in a hypercube of side `√n` (the paper's UniformFill).
pub fn uniform_fill<const D: usize>(n: usize, seed: u64) -> Vec<Point<D>> {
    let side = (n as f64).sqrt();
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let mut c = [0.0; D];
            for x in c.iter_mut() {
                *x = rng.gen_range(0.0..side);
            }
            Point(c)
        })
        .collect()
}

/// Tuning for [`seed_spreader`], mirroring the shape of Gan–Tao's
/// generator.
#[derive(Debug, Clone, Copy)]
pub struct SeedSpreaderParams {
    /// Points emitted around each walk location before the spreader moves.
    pub c_reset: usize,
    /// Probability of restarting at a fresh random location after a move.
    pub restart_prob: f64,
    /// Base vicinity radius around the spreader.
    pub r_vicinity: f64,
    /// Density variation across restarts (`varden`): each restart scales
    /// the vicinity radius by a factor cycling through `1..=density_levels`.
    pub density_levels: u32,
    /// Fraction of pure-uniform noise points (the paper-following default
    /// is 1e-4).
    pub noise_fraction: f64,
}

impl Default for SeedSpreaderParams {
    fn default() -> Self {
        SeedSpreaderParams {
            c_reset: 100,
            restart_prob: 10.0 / 1e6,
            r_vicinity: 25.0,
            density_levels: 10,
            noise_fraction: 1e-4,
        }
    }
}

/// Seed-spreader data (SS-varden): variable-density clusters produced by a
/// restarting random walk, plus uniform noise. Domain is the hypercube
/// `[0, √n)^D` like UniformFill so the two families are comparable; the
/// vicinity radius scales with the domain so clusters stay far denser than
/// the uniform background at every size.
pub fn seed_spreader<const D: usize>(n: usize, seed: u64) -> Vec<Point<D>> {
    let side = (n as f64).sqrt().max(1.0);
    seed_spreader_with(
        n,
        seed,
        SeedSpreaderParams {
            restart_prob: 10.0 / n.max(2) as f64,
            r_vicinity: 0.005 * side,
            ..SeedSpreaderParams::default()
        },
    )
}

/// [`seed_spreader`] with explicit parameters.
pub fn seed_spreader_with<const D: usize>(
    n: usize,
    seed: u64,
    params: SeedSpreaderParams,
) -> Vec<Point<D>> {
    let side = (n as f64).sqrt().max(1.0);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Vec::with_capacity(n);
    let n_noise = ((n as f64) * params.noise_fraction).round() as usize;
    let n_walk = n - n_noise.min(n);

    let mut density_level = 0u32;
    let mut radius = params.r_vicinity;
    let mut loc = [0.0f64; D];
    let restart = |rng: &mut StdRng, loc: &mut [f64; D], radius: &mut f64, level: &mut u32| {
        for x in loc.iter_mut() {
            *x = rng.gen_range(0.0..side);
        }
        *level = (*level % params.density_levels) + 1;
        *radius = params.r_vicinity * *level as f64;
    };
    restart(&mut rng, &mut loc, &mut radius, &mut density_level);

    let mut emitted_here = 0usize;
    while out.len() < n_walk {
        // Emit a point in the vicinity of the spreader.
        let mut c = loc;
        for x in c.iter_mut() {
            *x += rng.gen_range(-radius..radius);
        }
        out.push(Point(c));
        emitted_here += 1;
        if emitted_here >= params.c_reset {
            emitted_here = 0;
            if rng.gen_bool(params.restart_prob.clamp(0.0, 1.0)) {
                restart(&mut rng, &mut loc, &mut radius, &mut density_level);
            } else {
                // Local move: shift by a couple of radii so clusters form
                // snaking filaments of varying density.
                for x in loc.iter_mut() {
                    *x += rng.gen_range(-2.0 * radius..2.0 * radius);
                }
            }
        }
    }
    for _ in out.len()..n {
        let mut c = [0.0; D];
        for x in c.iter_mut() {
            *x = rng.gen_range(0.0..side);
        }
        out.push(Point(c));
    }
    out
}

/// GeoLife surrogate: extremely skewed 3D "trajectory" data. A heavy-tailed
/// number of points per walker, tiny steps, and a few dense metro areas —
/// reproducing the extreme skew the paper highlights for GeoLife.
pub fn gps_like(n: usize, seed: u64) -> Vec<Point<3>> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Vec::with_capacity(n);
    // A handful of metro centers; walker start points concentrate there.
    let n_centers = 8usize;
    let centers: Vec<[f64; 3]> = (0..n_centers)
        .map(|_| {
            [
                rng.gen_range(-180.0..180.0),
                rng.gen_range(-60.0..60.0),
                rng.gen_range(0.0..50.0),
            ]
        })
        .collect();
    while out.len() < n {
        // Heavy-tailed trajectory length (Pareto-ish).
        let u: f64 = rng.gen_range(1e-4..1.0);
        let len = ((200.0 / u.powf(0.7)) as usize).clamp(1, n - out.len());
        let c = centers[rng.gen_range(0..n_centers)];
        let mut pos = [
            c[0] + rng.gen_range(-0.5..0.5),
            c[1] + rng.gen_range(-0.5..0.5),
            c[2] + rng.gen_range(-5.0..5.0),
        ];
        for _ in 0..len {
            // GPS-noise-sized steps: dense, highly skewed point clouds.
            pos[0] += rng.gen_range(-1e-3..1e-3);
            pos[1] += rng.gen_range(-1e-3..1e-3);
            pos[2] += rng.gen_range(-5e-3..5e-3);
            out.push(Point(pos));
        }
    }
    out.truncate(n);
    out
}

/// Sensor-data surrogate (Household 7D / HT 10D / CHEM 16D): a mixture of
/// anisotropic, correlated Gaussian clusters — moderate-dimensional dense
/// blobs with unequal spreads per dimension.
pub fn sensor_like<const D: usize>(n: usize, seed: u64, clusters: usize) -> Vec<Point<D>> {
    let mut rng = StdRng::seed_from_u64(seed);
    let clusters = clusters.max(1);
    // Per-cluster mean and a random mixing matrix (correlations).
    struct Cluster<const D: usize> {
        mean: [f64; D],
        mix: Vec<[f64; D]>, // rows: D output dims over K latent dims
        weight: f64,
    }
    let latent = D.clamp(2, 4);
    let comps: Vec<Cluster<D>> = (0..clusters)
        .map(|_| {
            let mut mean = [0.0; D];
            for x in mean.iter_mut() {
                *x = rng.gen_range(0.0..1000.0);
            }
            let mix = (0..latent)
                .map(|_| {
                    let mut row = [0.0; D];
                    let scale = 10f64.powf(rng.gen_range(-1.0..1.5));
                    for x in row.iter_mut() {
                        *x = rng.gen_range(-1.0..1.0) * scale;
                    }
                    row
                })
                .collect();
            Cluster {
                mean,
                mix,
                weight: rng.gen_range(0.2..1.0),
            }
        })
        .collect();
    let total_w: f64 = comps.iter().map(|c| c.weight).sum();

    let normal = |rng: &mut StdRng| -> f64 {
        // Box–Muller.
        let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        let u2: f64 = rng.gen_range(0.0..1.0);
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    };

    (0..n)
        .map(|_| {
            let mut pick = rng.gen_range(0.0..total_w);
            let mut ci = 0;
            for (i, c) in comps.iter().enumerate() {
                if pick < c.weight {
                    ci = i;
                    break;
                }
                pick -= c.weight;
            }
            let c = &comps[ci];
            let mut p = c.mean;
            for row in &c.mix {
                let z = normal(&mut rng);
                for d in 0..D {
                    p[d] += z * row[d];
                }
            }
            // Per-dimension measurement noise.
            for x in p.iter_mut() {
                *x += normal(&mut rng) * 0.05;
            }
            Point(p)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_fill_bounds_and_determinism() {
        let a = uniform_fill::<3>(1000, 7);
        let b = uniform_fill::<3>(1000, 7);
        let c = uniform_fill::<3>(1000, 8);
        assert_eq!(a.len(), 1000);
        assert_eq!(a, b, "same seed must reproduce");
        assert_ne!(a, c, "different seeds must differ");
        let side = 1000f64.sqrt();
        for p in &a {
            for d in 0..3 {
                assert!(p[d] >= 0.0 && p[d] < side);
            }
        }
    }

    #[test]
    fn seed_spreader_is_clustered() {
        // Clustered data must have a much smaller mean nearest-neighbor
        // distance than uniform data of the same size/domain (sampled,
        // brute force).
        let n = 4000;
        let uni = uniform_fill::<2>(n, 1);
        let ss = seed_spreader::<2>(n, 1);
        let sample_nn = |pts: &[Point<2>]| -> f64 {
            let mut total = 0.0;
            for i in (0..pts.len()).step_by(40) {
                let mut best = f64::INFINITY;
                for j in 0..pts.len() {
                    if i != j {
                        best = best.min(pts[i].dist_sq(&pts[j]));
                    }
                }
                total += best.sqrt();
            }
            total
        };
        assert!(
            sample_nn(&ss) < 0.5 * sample_nn(&uni),
            "seed spreader should be much denser locally"
        );
    }

    #[test]
    fn seed_spreader_exact_count_with_noise() {
        let pts = seed_spreader::<5>(12_345, 3);
        assert_eq!(pts.len(), 12_345);
    }

    #[test]
    fn gps_like_is_extremely_skewed() {
        let pts = gps_like(20_000, 2);
        assert_eq!(pts.len(), 20_000);
        // Skew check: the median pairwise-sampled distance is tiny compared
        // to the domain span (points concentrate on trajectories).
        let mut rng = StdRng::seed_from_u64(9);
        let mut near = 0;
        let mut total = 0;
        for _ in 0..2000 {
            let i = rng.gen_range(0..pts.len());
            let j = rng.gen_range(0..pts.len());
            if i != j {
                total += 1;
                if pts[i].dist(&pts[j]) < 10.0 {
                    near += 1;
                }
            }
        }
        // Uniform data in this domain would put ~0.2% of sampled pairs
        // within distance 10; the metro-concentrated surrogate puts the
        // same-center mass (≈ 1/8 of pairs) there.
        assert!(
            near * 10 > total,
            "trajectory surrogate should have many near pairs ({near}/{total})"
        );
    }

    #[test]
    fn sensor_like_dimensions_and_determinism() {
        let a = sensor_like::<16>(500, 11, 12);
        assert_eq!(a.len(), 500);
        assert_eq!(a, sensor_like::<16>(500, 11, 12));
        // All coordinates finite.
        assert!(a.iter().all(|p| !p.is_degenerate()));
    }
}
