//! Data sets for `parclust`: synthetic generators mirroring the paper's
//! evaluation inputs, surrogates for its real data sets, and point IO.

pub mod block;
pub mod generators;
pub mod io;

pub use block::{PointBlock, BLOCK_LEN};
pub use generators::{
    gps_like, seed_spreader, seed_spreader_with, sensor_like, uniform_fill, SeedSpreaderParams,
};
pub use io::{
    chunked_header, collect_points, read_binary, read_chunked, read_csv, write_binary,
    write_chunked, write_csv, ChunkedHeader, ChunkedReader, ChunkedWriter, PointSource,
    SliceSource, DEFAULT_CHUNK_LEN,
};
