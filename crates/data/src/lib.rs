//! Data sets for `parclust`: synthetic generators mirroring the paper's
//! evaluation inputs, surrogates for its real data sets, and point IO.

pub mod generators;
pub mod io;

pub use generators::{
    gps_like, seed_spreader, seed_spreader_with, sensor_like, uniform_fill, SeedSpreaderParams,
};
pub use io::{read_binary, read_csv, write_binary, write_csv};
