//! Structure-of-arrays point storage in fixed-size interleaved blocks.
//!
//! `PointBlock<D>` stores `n` points of dimension `D` as blocks of
//! [`BLOCK_LEN`] points each; within a block every dimension occupies a
//! contiguous lane of `BLOCK_LEN` f64s. Coordinate `d` of point `i` lives at
//!
//! ```text
//! data[(i / B) * (D * B)  +  d * B  +  (i % B)]      where B = BLOCK_LEN
//! ```
//!
//! so a distance loop over a contiguous point range walks each lane with
//! stride 1 — the shape rustc/LLVM auto-vectorizes — while a single point is
//! still gatherable in `D` strided loads. The tail of the last block is
//! padded with `+inf` so lane kernels may read (but never use) the padding:
//! any distance computed against padding is `+inf` and loses every
//! comparison.

use parclust_geom::Point;

/// Points per block. One f64 lane of a block is 512 bytes (8 cache lines),
/// large enough to amortize per-block loop overhead and small enough that a
/// whole low-dimensional block stays L1-resident.
pub const BLOCK_LEN: usize = 64;

/// SoA interleaved-block storage for `n` points of dimension `D`.
#[derive(Debug, Clone, PartialEq)]
pub struct PointBlock<const D: usize> {
    data: Vec<f64>,
    len: usize,
}

impl<const D: usize> PointBlock<D> {
    /// Build from a point slice (AoS → SoA transpose).
    pub fn from_points(points: &[Point<D>]) -> Self {
        let len = points.len();
        let blocks = len.div_ceil(BLOCK_LEN);
        let mut data = vec![f64::INFINITY; blocks * D * BLOCK_LEN];
        for (i, p) in points.iter().enumerate() {
            let base = (i / BLOCK_LEN) * (D * BLOCK_LEN) + (i % BLOCK_LEN);
            for (d, &c) in p.0.iter().enumerate() {
                data[base + d * BLOCK_LEN] = c;
            }
        }
        PointBlock { data, len }
    }

    /// Number of stored points (excluding tail padding).
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Coordinate `d` of point `i`.
    #[inline]
    pub fn coord(&self, i: usize, d: usize) -> f64 {
        debug_assert!(i < self.len && d < D);
        self.data[(i / BLOCK_LEN) * (D * BLOCK_LEN) + d * BLOCK_LEN + (i % BLOCK_LEN)]
    }

    /// Gather point `i` back into AoS form.
    #[inline]
    pub fn get(&self, i: usize) -> Point<D> {
        debug_assert!(i < self.len);
        let base = (i / BLOCK_LEN) * (D * BLOCK_LEN) + (i % BLOCK_LEN);
        let mut out = [0.0; D];
        for (d, o) in out.iter_mut().enumerate() {
            *o = self.data[base + d * BLOCK_LEN];
        }
        Point(out)
    }

    /// Rebuild the AoS vector (artifact serialization, tests).
    pub fn to_points(&self) -> Vec<Point<D>> {
        (0..self.len).map(|i| self.get(i)).collect()
    }

    /// The dimension-`d` lane of the block containing point `i`, together
    /// with the offset of `i` inside that lane.
    #[inline]
    fn lane(&self, block: usize, d: usize) -> &[f64] {
        let base = block * (D * BLOCK_LEN) + d * BLOCK_LEN;
        &self.data[base..base + BLOCK_LEN]
    }

    /// Squared distances from query `q` to the `len` consecutive points
    /// starting at `start`, written into `out[..len]`.
    ///
    /// The accumulation order per point is dimension order `d = 0..D`,
    /// matching [`parclust_geom::dist_sq`] exactly, so results are
    /// bit-identical to the scalar gather path.
    pub fn dist_sq_into(&self, q: &Point<D>, start: usize, len: usize, out: &mut [f64]) {
        debug_assert!(start + len <= self.len);
        debug_assert!(out.len() >= len);
        let mut done = 0;
        while done < len {
            let i = start + done;
            let block = i / BLOCK_LEN;
            let off = i % BLOCK_LEN;
            let seg = (BLOCK_LEN - off).min(len - done);
            let out_seg = &mut out[done..done + seg];
            for (d, &qd) in q.0.iter().enumerate() {
                let lane = &self.lane(block, d)[off..off + seg];
                if d == 0 {
                    for (o, &x) in out_seg.iter_mut().zip(lane) {
                        let t = x - qd;
                        *o = t * t;
                    }
                } else {
                    for (o, &x) in out_seg.iter_mut().zip(lane) {
                        let t = x - qd;
                        *o += t * t;
                    }
                }
            }
            done += seg;
        }
    }

    /// Reference scalar implementation of [`Self::dist_sq_into`]: gather
    /// each point to AoS form and take `dist_sq`. Kept for the kernel
    /// micro-bench (speedup denominator) and bit-identity tests.
    pub fn dist_sq_into_scalar(&self, q: &Point<D>, start: usize, len: usize, out: &mut [f64]) {
        debug_assert!(start + len <= self.len);
        for (k, o) in out.iter_mut().enumerate().take(len) {
            *o = parclust_geom::dist_sq(&self.get(start + k), q);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parclust_geom::dist_sq;

    fn sample<const D: usize>(n: usize) -> Vec<Point<D>> {
        // Simple deterministic LCG; values in [0, 1).
        let mut state = 0x9e3779b97f4a7c15u64;
        (0..n)
            .map(|_| {
                let mut c = [0.0; D];
                for v in c.iter_mut() {
                    state = state
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    *v = (state >> 11) as f64 / (1u64 << 53) as f64;
                }
                Point(c)
            })
            .collect()
    }

    #[test]
    fn roundtrip_preserves_points() {
        let pts = sample::<3>(137);
        let block = PointBlock::from_points(&pts);
        assert_eq!(block.len(), 137);
        for (i, p) in pts.iter().enumerate() {
            assert_eq!(&block.get(i), p);
            for d in 0..3 {
                assert_eq!(block.coord(i, d), p.0[d]);
            }
        }
        assert_eq!(block.to_points(), pts);
    }

    #[test]
    fn dist_kernel_bit_identical_to_scalar() {
        let pts = sample::<5>(200);
        let block = PointBlock::from_points(&pts);
        let q = pts[17];
        for (start, len) in [(0usize, 200usize), (3, 61), (60, 10), (63, 2), (128, 72)] {
            let mut lane = vec![0.0; len];
            let mut scal = vec![0.0; len];
            block.dist_sq_into(&q, start, len, &mut lane);
            block.dist_sq_into_scalar(&q, start, len, &mut scal);
            assert_eq!(lane, scal, "range {start}+{len}");
            for (k, &v) in lane.iter().enumerate() {
                assert_eq!(v, dist_sq(&pts[start + k], &q));
            }
        }
    }

    #[test]
    fn tail_padding_is_infinite() {
        let pts = sample::<2>(5);
        let block = PointBlock::from_points(&pts);
        // Internal check via the public kernel: distances beyond len are
        // never produced, but the lane slice the kernel walks is padded.
        let mut out = vec![0.0; 5];
        block.dist_sq_into(&pts[0], 0, 5, &mut out);
        assert_eq!(out[0], 0.0);
        assert!(out[1..].iter().all(|v| v.is_finite()));
    }

    #[test]
    fn empty_block() {
        let block = PointBlock::<4>::from_points(&[]);
        assert!(block.is_empty());
        assert_eq!(block.to_points(), Vec::<Point<4>>::new());
    }
}
