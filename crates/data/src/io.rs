//! Point-set IO: CSV (interoperability), a little-endian binary format
//! (fast reload of generated benchmark inputs), the chunked streaming
//! format ([`ChunkedWriter`]/[`ChunkedReader`]) that feeds multi-million
//! point pipelines without a whole-file buffer, and the low-level
//! little-endian section codec ([`le`]) that downstream binary formats
//! (e.g. `parclust-serve`'s model artifact) build on.
//!
//! The [`PointSource`] trait unifies ingestion: generators (via
//! [`SliceSource`]) and chunked files (via [`ChunkedReader`]) both hand the
//! pipeline bounded chunks of points, so the working set of the ingestion
//! phase is `O(chunk)` regardless of file size.

use parclust_geom::Point;
use std::io::{self, BufRead, BufReader, BufWriter, Read, Seek, SeekFrom, Write};
use std::path::Path;

const MAGIC: &[u8; 4] = b"PCLD";
const VERSION: u32 = 1;

/// Little-endian primitive and slice codec shared by every parclust binary
/// format. Writers are total; readers fail with `InvalidData`/`UnexpectedEof`
/// on malformed input and bound allocations by what the stream can actually
/// supply (a corrupt length prefix never triggers a huge up-front alloc).
pub mod le {
    use std::io::{self, Read, Write};

    /// Cap on a single up-front `Vec` reservation while reading a
    /// length-prefixed section; longer sections grow incrementally so a
    /// corrupted length cannot OOM the reader before hitting EOF.
    const MAX_PREALLOC_BYTES: usize = 1 << 24;

    pub fn write_u32<W: Write>(w: &mut W, v: u32) -> io::Result<()> {
        w.write_all(&v.to_le_bytes())
    }

    pub fn write_u64<W: Write>(w: &mut W, v: u64) -> io::Result<()> {
        w.write_all(&v.to_le_bytes())
    }

    pub fn write_f64<W: Write>(w: &mut W, v: f64) -> io::Result<()> {
        w.write_all(&v.to_le_bytes())
    }

    /// Length-prefixed (`u64`) slice of `u32`.
    pub fn write_u32_slice<W: Write>(w: &mut W, vs: &[u32]) -> io::Result<()> {
        write_u64(w, vs.len() as u64)?;
        for &v in vs {
            write_u32(w, v)?;
        }
        Ok(())
    }

    /// Length-prefixed (`u64`) slice of `f64`.
    pub fn write_f64_slice<W: Write>(w: &mut W, vs: &[f64]) -> io::Result<()> {
        write_u64(w, vs.len() as u64)?;
        for &v in vs {
            write_f64(w, v)?;
        }
        Ok(())
    }

    pub fn read_u32<R: Read>(r: &mut R) -> io::Result<u32> {
        let mut b = [0u8; 4];
        r.read_exact(&mut b)?;
        Ok(u32::from_le_bytes(b))
    }

    pub fn read_u64<R: Read>(r: &mut R) -> io::Result<u64> {
        let mut b = [0u8; 8];
        r.read_exact(&mut b)?;
        Ok(u64::from_le_bytes(b))
    }

    pub fn read_f64<R: Read>(r: &mut R) -> io::Result<f64> {
        let mut b = [0u8; 8];
        r.read_exact(&mut b)?;
        Ok(f64::from_le_bytes(b))
    }

    fn checked_len(len: u64, elem_size: usize) -> io::Result<usize> {
        let len = usize::try_from(len)
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "section length overflow"))?;
        len.checked_mul(elem_size)
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "section length overflow"))?;
        Ok(len)
    }

    /// Read a slice written by [`write_u32_slice`].
    pub fn read_u32_vec<R: Read>(r: &mut R) -> io::Result<Vec<u32>> {
        let len = checked_len(read_u64(r)?, 4)?;
        let mut out = Vec::with_capacity(len.min(MAX_PREALLOC_BYTES / 4));
        for _ in 0..len {
            out.push(read_u32(r)?);
        }
        Ok(out)
    }

    /// Read a slice written by [`write_f64_slice`].
    pub fn read_f64_vec<R: Read>(r: &mut R) -> io::Result<Vec<f64>> {
        let len = checked_len(read_u64(r)?, 8)?;
        let mut out = Vec::with_capacity(len.min(MAX_PREALLOC_BYTES / 8));
        for _ in 0..len {
            out.push(read_f64(r)?);
        }
        Ok(out)
    }
}

/// Write points as CSV, one point per row.
pub fn write_csv<const D: usize>(path: &Path, points: &[Point<D>]) -> io::Result<()> {
    let mut w = BufWriter::new(std::fs::File::create(path)?);
    for p in points {
        for (i, c) in p.coords().iter().enumerate() {
            if i > 0 {
                write!(w, ",")?;
            }
            // {:?} preserves full f64 round-trip precision.
            write!(w, "{c:?}")?;
        }
        writeln!(w)?;
    }
    w.flush()
}

/// Read CSV points; every row must have exactly `D` columns.
pub fn read_csv<const D: usize>(path: &Path) -> io::Result<Vec<Point<D>>> {
    let r = BufReader::new(std::fs::File::open(path)?);
    let mut out = Vec::new();
    let mut line = String::new();
    let mut r = r;
    let mut lineno = 0usize;
    loop {
        line.clear();
        if r.read_line(&mut line)? == 0 {
            break;
        }
        lineno += 1;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let mut c = [0.0; D];
        let mut fields = trimmed.split(',');
        for (d, slot) in c.iter_mut().enumerate() {
            let f = fields.next().ok_or_else(|| {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("line {lineno}: expected {D} fields, got {d}"),
                )
            })?;
            *slot = f.trim().parse::<f64>().map_err(|e| {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("line {lineno}, field {d}: {e}"),
                )
            })?;
        }
        if fields.next().is_some() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("line {lineno}: more than {D} fields"),
            ));
        }
        out.push(Point(c));
    }
    Ok(out)
}

/// Write points in the binary format: `PCLD`, version, dims, count, then
/// little-endian f64 coordinates.
pub fn write_binary<const D: usize>(path: &Path, points: &[Point<D>]) -> io::Result<()> {
    let mut w = BufWriter::new(std::fs::File::create(path)?);
    w.write_all(MAGIC)?;
    le::write_u32(&mut w, VERSION)?;
    le::write_u32(&mut w, D as u32)?;
    le::write_u64(&mut w, points.len() as u64)?;
    for p in points {
        for &c in p.coords() {
            le::write_f64(&mut w, c)?;
        }
    }
    w.flush()
}

/// Read points written by [`write_binary`]; the stored dimensionality must
/// equal `D`.
pub fn read_binary<const D: usize>(path: &Path) -> io::Result<Vec<Point<D>>> {
    let mut r = BufReader::new(std::fs::File::open(path)?);
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "bad magic"));
    }
    let version = le::read_u32(&mut r)?;
    if version != VERSION {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("unsupported version {version}"),
        ));
    }
    let dims = le::read_u32(&mut r)?;
    if dims as usize != D {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("file has {dims} dims, expected {D}"),
        ));
    }
    let count = le::read_u64(&mut r)? as usize;
    let mut out = Vec::with_capacity(count.min(1 << 20));
    for _ in 0..count {
        let mut c = [0.0; D];
        for slot in c.iter_mut() {
            *slot = le::read_f64(&mut r)?;
        }
        out.push(Point(c));
    }
    Ok(out)
}

// --------------------------------------------------------------------
// Chunked streaming format
// --------------------------------------------------------------------

const CHUNK_MAGIC: &[u8; 4] = b"PCLS";
const CHUNK_VERSION: u32 = 1;
/// Byte offset of the `count` header field (patched by
/// [`ChunkedWriter::finish`] once the point count is known).
const COUNT_OFFSET: u64 = 20;
/// Upper bound on `chunk_len` accepted by the reader: bounds the per-chunk
/// allocation a corrupted header can request.
const MAX_CHUNK_LEN: u64 = 1 << 24;

/// Default chunk length for the streaming format: 64Ki points per chunk
/// keeps the ingestion working set in the low megabytes at any dimension.
pub const DEFAULT_CHUNK_LEN: usize = 1 << 16;

/// Incremental FNV-1a (64-bit). The chunked format checksums every chunk
/// byte (not the header, whose `count` field is patched after streaming
/// writes complete); header corruption is instead caught by the strict
/// framing checks.
#[derive(Debug, Clone, Copy)]
pub struct Fnv1a64(u64);

impl Fnv1a64 {
    pub fn new() -> Self {
        Fnv1a64(0xcbf2_9ce4_8422_2325)
    }

    pub fn update(&mut self, bytes: &[u8]) {
        let mut h = self.0;
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        self.0 = h;
    }

    pub fn finish(&self) -> u64 {
        self.0
    }
}

impl Default for Fnv1a64 {
    fn default() -> Self {
        Self::new()
    }
}

/// A bounded-chunk supplier of points: the uniform ingestion interface for
/// generators ([`SliceSource`]) and chunked files ([`ChunkedReader`]).
///
/// `next_chunk` clears `buf`, refills it with at most one chunk of points,
/// and returns the number delivered; `Ok(0)` means the source is exhausted.
/// Reusing one `buf` across calls keeps ingestion memory at `O(chunk)`.
pub trait PointSource<const D: usize> {
    /// Total number of points this source yields across all chunks.
    fn total(&self) -> usize;

    /// Clear and refill `buf` with the next chunk; `Ok(0)` = exhausted.
    fn next_chunk(&mut self, buf: &mut Vec<Point<D>>) -> io::Result<usize>;
}

/// [`PointSource`] over an in-memory slice (e.g. generator output), chunked
/// so generator- and file-fed pipelines exercise identical code paths.
pub struct SliceSource<'a, const D: usize> {
    points: &'a [Point<D>],
    pos: usize,
    chunk_len: usize,
}

impl<'a, const D: usize> SliceSource<'a, D> {
    pub fn new(points: &'a [Point<D>], chunk_len: usize) -> Self {
        assert!(chunk_len >= 1, "chunk_len must be positive");
        SliceSource {
            points,
            pos: 0,
            chunk_len,
        }
    }
}

impl<'a, const D: usize> PointSource<D> for SliceSource<'a, D> {
    fn total(&self) -> usize {
        self.points.len()
    }

    fn next_chunk(&mut self, buf: &mut Vec<Point<D>>) -> io::Result<usize> {
        buf.clear();
        let hi = (self.pos + self.chunk_len).min(self.points.len());
        buf.extend_from_slice(&self.points[self.pos..hi]);
        let n = hi - self.pos;
        self.pos = hi;
        Ok(n)
    }
}

/// Drain a [`PointSource`] into one `Vec`, reusing a single chunk buffer.
/// The up-front reservation is capped in *bytes* (like the readers' slab
/// bounds) so a corrupt header count cannot trigger a huge allocation
/// before any payload is validated.
pub fn collect_points<const D: usize, S: PointSource<D>>(src: &mut S) -> io::Result<Vec<Point<D>>> {
    let prealloc_cap = (1usize << 24) / std::mem::size_of::<Point<D>>().max(1);
    let mut out = Vec::with_capacity(src.total().min(prealloc_cap));
    let mut buf = Vec::new();
    while src.next_chunk(&mut buf)? > 0 {
        out.extend_from_slice(&buf);
    }
    Ok(out)
}

/// Header of a chunked point file, readable without fixing the const
/// dimension (callers dispatch on `dims`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChunkedHeader {
    pub dims: u32,
    pub chunk_len: u64,
    pub count: u64,
}

fn read_chunked_header<R: Read>(r: &mut R) -> io::Result<ChunkedHeader> {
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)?;
    if &magic != CHUNK_MAGIC {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "bad chunked-format magic",
        ));
    }
    let version = le::read_u32(r)?;
    if version != CHUNK_VERSION {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("unsupported chunked-format version {version}"),
        ));
    }
    let dims = le::read_u32(r)?;
    let chunk_len = le::read_u64(r)?;
    if chunk_len == 0 || chunk_len > MAX_CHUNK_LEN {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("chunk length {chunk_len} out of range"),
        ));
    }
    let count = le::read_u64(r)?;
    Ok(ChunkedHeader {
        dims,
        chunk_len,
        count,
    })
}

/// Peek a chunked file's header (dimensionality dispatch for readers that
/// learn `D` at runtime).
pub fn chunked_header(path: &Path) -> io::Result<ChunkedHeader> {
    read_chunked_header(&mut BufReader::new(std::fs::File::open(path)?))
}

/// Streaming writer for the chunked format:
/// `PCLS | version | dims | chunk_len | count` header, then
/// length-prefixed chunks of little-endian coordinates, then a trailing
/// FNV-1a checksum over every chunk byte. Points are pushed one at a time
/// or in slices; nothing beyond one chunk is buffered, so a multi-million
/// point file can be produced straight from a generator.
pub struct ChunkedWriter<const D: usize, W: Write + Seek> {
    w: W,
    chunk_len: usize,
    buf: Vec<Point<D>>,
    scratch: Vec<u8>,
    count: u64,
    sum: Fnv1a64,
}

impl<const D: usize> ChunkedWriter<D, BufWriter<std::fs::File>> {
    /// Create `path` and write the (provisional) header.
    pub fn create(path: &Path, chunk_len: usize) -> io::Result<Self> {
        Self::new(BufWriter::new(std::fs::File::create(path)?), chunk_len)
    }
}

impl<const D: usize, W: Write + Seek> ChunkedWriter<D, W> {
    pub fn new(mut w: W, chunk_len: usize) -> io::Result<Self> {
        assert!(
            chunk_len >= 1 && chunk_len as u64 <= MAX_CHUNK_LEN,
            "chunk_len out of range"
        );
        w.write_all(CHUNK_MAGIC)?;
        le::write_u32(&mut w, CHUNK_VERSION)?;
        le::write_u32(&mut w, D as u32)?;
        le::write_u64(&mut w, chunk_len as u64)?;
        le::write_u64(&mut w, 0)?; // count, patched by finish()
        Ok(ChunkedWriter {
            w,
            chunk_len,
            buf: Vec::with_capacity(chunk_len),
            scratch: Vec::new(),
            count: 0,
            sum: Fnv1a64::new(),
        })
    }

    pub fn push(&mut self, p: Point<D>) -> io::Result<()> {
        self.buf.push(p);
        self.count += 1;
        if self.buf.len() == self.chunk_len {
            self.flush_chunk()?;
        }
        Ok(())
    }

    pub fn push_all(&mut self, pts: &[Point<D>]) -> io::Result<()> {
        for &p in pts {
            self.push(p)?;
        }
        Ok(())
    }

    fn flush_chunk(&mut self) -> io::Result<()> {
        if self.buf.is_empty() {
            return Ok(());
        }
        self.scratch.clear();
        le::write_u64(&mut self.scratch, self.buf.len() as u64)?;
        for p in &self.buf {
            for &c in p.coords() {
                le::write_f64(&mut self.scratch, c)?;
            }
        }
        self.sum.update(&self.scratch);
        self.w.write_all(&self.scratch)?;
        self.buf.clear();
        Ok(())
    }

    /// Flush the final partial chunk, append the checksum trailer, patch
    /// the point count into the header, and return the count.
    pub fn finish(mut self) -> io::Result<u64> {
        self.flush_chunk()?;
        le::write_u64(&mut self.w, self.sum.finish())?;
        self.w.seek(SeekFrom::Start(COUNT_OFFSET))?;
        le::write_u64(&mut self.w, self.count)?;
        self.w.flush()?;
        Ok(self.count)
    }
}

/// Streaming reader for the chunked format; implements [`PointSource`].
///
/// Framing is strict — every chunk must hold exactly
/// `min(chunk_len, remaining)` points — and the trailing checksum is
/// verified *before* the final chunk is handed out, so a truncated or
/// corrupted file can never complete a read.
pub struct ChunkedReader<const D: usize, R: Read = BufReader<std::fs::File>> {
    r: R,
    header: ChunkedHeader,
    remaining: u64,
    sum: Fnv1a64,
    scratch: Vec<u8>,
    verified: bool,
}

impl<const D: usize> ChunkedReader<D> {
    pub fn open(path: &Path) -> io::Result<Self> {
        Self::new(BufReader::new(std::fs::File::open(path)?))
    }
}

impl<const D: usize, R: Read> ChunkedReader<D, R> {
    pub fn new(mut r: R) -> io::Result<Self> {
        let header = read_chunked_header(&mut r)?;
        if header.dims as usize != D {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("file has {} dims, expected {D}", header.dims),
            ));
        }
        Ok(ChunkedReader {
            r,
            header,
            remaining: header.count,
            sum: Fnv1a64::new(),
            scratch: Vec::new(),
            verified: false,
        })
    }

    pub fn header(&self) -> ChunkedHeader {
        self.header
    }

    fn verify_trailer(&mut self) -> io::Result<()> {
        if self.verified {
            return Ok(());
        }
        let stored = le::read_u64(&mut self.r)?;
        if stored != self.sum.finish() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "chunked-file checksum mismatch (corrupt file)",
            ));
        }
        self.verified = true;
        Ok(())
    }
}

impl<const D: usize, R: Read> PointSource<D> for ChunkedReader<D, R> {
    fn total(&self) -> usize {
        self.header.count as usize
    }

    fn next_chunk(&mut self, buf: &mut Vec<Point<D>>) -> io::Result<usize> {
        buf.clear();
        if self.remaining == 0 {
            // Covers count == 0 files too: the trailer must still be
            // present and correct before we report a clean EOF.
            self.verify_trailer()?;
            return Ok(0);
        }
        let expect = self.header.chunk_len.min(self.remaining);
        let mut frame = [0u8; 8];
        self.r.read_exact(&mut frame)?;
        self.sum.update(&frame);
        let got = u64::from_le_bytes(frame);
        if got != expect {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("chunk frames {got} points, expected {expect}"),
            ));
        }
        // Read the payload in bounded slabs (multiples of one point) so a
        // corrupted header can never trigger a huge up-front allocation.
        let stride = D * 8;
        let slab_points = ((1usize << 16) / stride).max(1);
        let mut left = expect as usize;
        buf.reserve(left.min(slab_points));
        while left > 0 {
            let k = left.min(slab_points);
            self.scratch.resize(k * stride, 0);
            self.r.read_exact(&mut self.scratch)?;
            self.sum.update(&self.scratch);
            for chunk in self.scratch.chunks_exact(stride) {
                let mut c = [0.0; D];
                for (slot, b) in c.iter_mut().zip(chunk.chunks_exact(8)) {
                    *slot = f64::from_le_bytes(b.try_into().unwrap());
                }
                buf.push(Point(c));
            }
            left -= k;
        }
        self.remaining -= expect;
        if self.remaining == 0 {
            // Eager verification: fail before the last chunk is consumed.
            self.verify_trailer()?;
        }
        Ok(expect as usize)
    }
}

/// Write a full slice in the chunked format (streaming writes go through
/// [`ChunkedWriter`] directly).
pub fn write_chunked<const D: usize>(
    path: &Path,
    points: &[Point<D>],
    chunk_len: usize,
) -> io::Result<()> {
    let mut w = ChunkedWriter::<D, _>::create(path, chunk_len)?;
    w.push_all(points)?;
    w.finish()?;
    Ok(())
}

/// Read an entire chunked file into memory (tests and small inputs; large
/// pipelines should stream via [`ChunkedReader`] + [`collect_points`]).
pub fn read_chunked<const D: usize>(path: &Path) -> io::Result<Vec<Point<D>>> {
    collect_points(&mut ChunkedReader::<D>::open(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::uniform_fill;

    fn tmp(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("parclust-io-test-{}-{name}", std::process::id()));
        p
    }

    #[test]
    fn csv_roundtrip() {
        let pts = uniform_fill::<3>(100, 1);
        let path = tmp("roundtrip.csv");
        write_csv(&path, &pts).unwrap();
        let back: Vec<Point<3>> = read_csv(&path).unwrap();
        assert_eq!(pts, back);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn csv_rejects_wrong_arity() {
        let path = tmp("bad.csv");
        std::fs::write(&path, "1.0,2.0\n3.0\n").unwrap();
        assert!(read_csv::<2>(&path).is_err());
        std::fs::write(&path, "1.0,2.0,9.0\n").unwrap();
        assert!(read_csv::<2>(&path).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn csv_skips_comments_and_blanks() {
        let path = tmp("comments.csv");
        std::fs::write(&path, "# header\n\n1.0,2.0\n").unwrap();
        let pts: Vec<Point<2>> = read_csv(&path).unwrap();
        assert_eq!(pts, vec![Point([1.0, 2.0])]);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn binary_roundtrip() {
        let pts = uniform_fill::<7>(257, 2);
        let path = tmp("roundtrip.bin");
        write_binary(&path, &pts).unwrap();
        let back: Vec<Point<7>> = read_binary(&path).unwrap();
        assert_eq!(pts, back);
        // Wrong dimensionality is rejected.
        assert!(read_binary::<3>(&path).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn binary_rejects_garbage() {
        let path = tmp("garbage.bin");
        std::fs::write(&path, b"not a parclust file").unwrap();
        assert!(read_binary::<2>(&path).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn le_codec_roundtrip() {
        let mut buf = Vec::new();
        le::write_u32(&mut buf, 7).unwrap();
        le::write_u64(&mut buf, u64::MAX - 3).unwrap();
        le::write_f64(&mut buf, -0.125).unwrap();
        le::write_u32_slice(&mut buf, &[1, 2, u32::MAX]).unwrap();
        le::write_f64_slice(&mut buf, &[f64::INFINITY, 0.5]).unwrap();
        let mut r = buf.as_slice();
        assert_eq!(le::read_u32(&mut r).unwrap(), 7);
        assert_eq!(le::read_u64(&mut r).unwrap(), u64::MAX - 3);
        assert_eq!(le::read_f64(&mut r).unwrap(), -0.125);
        assert_eq!(le::read_u32_vec(&mut r).unwrap(), vec![1, 2, u32::MAX]);
        assert_eq!(le::read_f64_vec(&mut r).unwrap(), vec![f64::INFINITY, 0.5]);
        assert!(r.is_empty(), "everything consumed");
    }

    /// Write `pts` in the chunked format and return the file's bytes.
    fn chunked_bytes<const D: usize>(pts: &[Point<D>], chunk_len: usize) -> Vec<u8> {
        let path = tmp(&format!("chunk-{D}-{chunk_len}-{}.pcls", pts.len()));
        let mut w = ChunkedWriter::<D, _>::create(&path, chunk_len).unwrap();
        w.push_all(pts).unwrap();
        assert_eq!(w.finish().unwrap(), pts.len() as u64);
        let bytes = std::fs::read(&path).unwrap();
        std::fs::remove_file(&path).ok();
        bytes
    }

    #[test]
    fn chunked_roundtrip_boundaries() {
        // n spanning: zero, one, below/equal/above chunk multiples.
        for &(n, chunk) in &[
            (0usize, 4usize),
            (1, 4),
            (3, 4),
            (4, 4),
            (5, 4),
            (257, 64),
            (1024, 64),
        ] {
            let pts = uniform_fill::<3>(n, 5);
            let bytes = chunked_bytes(&pts, chunk);
            let mut r = ChunkedReader::<3, _>::new(bytes.as_slice()).unwrap();
            assert_eq!(r.total(), n);
            let mut got = Vec::new();
            let mut buf = Vec::new();
            loop {
                let k = r.next_chunk(&mut buf).unwrap();
                if k == 0 {
                    break;
                }
                assert!(k <= chunk, "chunk of {k} exceeds cap {chunk}");
                got.extend_from_slice(&buf);
            }
            assert_eq!(got, pts, "n={n} chunk={chunk}");
            // Repeated EOF calls stay Ok(0).
            assert_eq!(r.next_chunk(&mut buf).unwrap(), 0);
        }
    }

    #[test]
    fn chunked_file_roundtrip_and_header_peek() {
        let pts = uniform_fill::<2>(1000, 9);
        let path = tmp("roundtrip.pcls");
        write_chunked(&path, &pts, 33).unwrap();
        let h = chunked_header(&path).unwrap();
        assert_eq!(
            h,
            ChunkedHeader {
                dims: 2,
                chunk_len: 33,
                count: 1000
            }
        );
        assert_eq!(read_chunked::<2>(&path).unwrap(), pts);
        // Wrong dimensionality is rejected at open.
        assert!(ChunkedReader::<3>::open(&path).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn chunked_source_equals_slice_source() {
        let pts = uniform_fill::<5>(513, 3);
        let bytes = chunked_bytes(&pts, 100);
        let mut file_src = ChunkedReader::<5, _>::new(bytes.as_slice()).unwrap();
        let mut slice_src = SliceSource::new(&pts, 100);
        assert_eq!(
            collect_points(&mut file_src).unwrap(),
            collect_points(&mut slice_src).unwrap()
        );
    }

    #[test]
    fn chunked_rejects_truncation() {
        let pts = uniform_fill::<2>(100, 7);
        let bytes = chunked_bytes(&pts, 16);
        // Truncate at many positions: missing trailer, mid-chunk, mid-frame.
        for cut in [bytes.len() - 1, bytes.len() - 8, bytes.len() - 9, 40, 21] {
            // Rejection may happen at open (header cut) or while reading.
            let mut r = match ChunkedReader::<2, _>::new(&bytes[..cut]) {
                Err(_) => continue,
                Ok(r) => r,
            };
            let mut buf = Vec::new();
            let mut err = false;
            for _ in 0..200 {
                match r.next_chunk(&mut buf) {
                    Err(_) => {
                        err = true;
                        break;
                    }
                    Ok(0) => break,
                    Ok(_) => {}
                }
            }
            assert!(err, "truncation at {cut} must not read cleanly");
        }
    }

    #[test]
    fn chunked_rejects_bit_corruption() {
        let pts = uniform_fill::<2>(64, 8);
        let mut bytes = chunked_bytes(&pts, 16);
        // Flip one payload bit (past the 28-byte header).
        let mid = 28 + (bytes.len() - 28 - 8) / 2;
        bytes[mid] ^= 0x10;
        let mut r = ChunkedReader::<2, _>::new(bytes.as_slice()).unwrap();
        let mut buf = Vec::new();
        let mut failed = false;
        for _ in 0..200 {
            match r.next_chunk(&mut buf) {
                Err(_) => {
                    failed = true;
                    break;
                }
                Ok(0) => break,
                Ok(_) => {}
            }
        }
        assert!(failed, "bit flip must fail the checksum before EOF");
    }

    #[test]
    fn chunked_rejects_garbage_and_bad_header() {
        assert!(ChunkedReader::<2, _>::new(&b"not a chunked file"[..]).is_err());
        // Zero chunk_len is rejected.
        let mut bad = Vec::new();
        bad.extend_from_slice(b"PCLS");
        le::write_u32(&mut bad, 1).unwrap();
        le::write_u32(&mut bad, 2).unwrap();
        le::write_u64(&mut bad, 0).unwrap(); // chunk_len = 0
        le::write_u64(&mut bad, 10).unwrap();
        assert!(ChunkedReader::<2, _>::new(bad.as_slice()).is_err());
    }

    #[test]
    fn chunked_empty_file_still_checksummed() {
        let bytes = chunked_bytes::<2>(&[], 8);
        let mut r = ChunkedReader::<2, _>::new(bytes.as_slice()).unwrap();
        let mut buf = Vec::new();
        assert_eq!(r.next_chunk(&mut buf).unwrap(), 0);
        // An empty file missing its trailer is truncated, not empty.
        let mut r = ChunkedReader::<2, _>::new(&bytes[..bytes.len() - 8]).unwrap();
        assert!(r.next_chunk(&mut buf).is_err());
    }

    #[test]
    fn fnv_incremental_matches_one_shot() {
        let data = b"the quick brown fox jumps over the lazy dog";
        let mut a = Fnv1a64::new();
        a.update(data);
        let mut b = Fnv1a64::new();
        for chunk in data.chunks(5) {
            b.update(chunk);
        }
        assert_eq!(a.finish(), b.finish());
        assert_ne!(a.finish(), Fnv1a64::new().finish());
    }

    #[test]
    fn le_codec_rejects_truncation_and_huge_lengths() {
        assert!(le::read_u64(&mut [1u8, 2].as_slice()).is_err());
        // A length prefix promising far more data than the stream holds must
        // error out (not OOM on the reservation).
        let mut buf = Vec::new();
        le::write_u64(&mut buf, u64::MAX / 2).unwrap();
        assert!(le::read_u32_vec(&mut buf.as_slice()).is_err());
        let mut short = Vec::new();
        le::write_u32_slice(&mut short, &[1, 2, 3]).unwrap();
        short.truncate(short.len() - 2);
        assert!(le::read_u32_vec(&mut short.as_slice()).is_err());
    }
}
