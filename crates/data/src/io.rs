//! Point-set IO: CSV (interoperability) and a little-endian binary format
//! (fast reload of generated benchmark inputs), plus the low-level
//! little-endian section codec ([`le`]) that downstream binary formats
//! (e.g. `parclust-serve`'s model artifact) build on.

use parclust_geom::Point;
use std::io::{self, BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

const MAGIC: &[u8; 4] = b"PCLD";
const VERSION: u32 = 1;

/// Little-endian primitive and slice codec shared by every parclust binary
/// format. Writers are total; readers fail with `InvalidData`/`UnexpectedEof`
/// on malformed input and bound allocations by what the stream can actually
/// supply (a corrupt length prefix never triggers a huge up-front alloc).
pub mod le {
    use std::io::{self, Read, Write};

    /// Cap on a single up-front `Vec` reservation while reading a
    /// length-prefixed section; longer sections grow incrementally so a
    /// corrupted length cannot OOM the reader before hitting EOF.
    const MAX_PREALLOC_BYTES: usize = 1 << 24;

    pub fn write_u32<W: Write>(w: &mut W, v: u32) -> io::Result<()> {
        w.write_all(&v.to_le_bytes())
    }

    pub fn write_u64<W: Write>(w: &mut W, v: u64) -> io::Result<()> {
        w.write_all(&v.to_le_bytes())
    }

    pub fn write_f64<W: Write>(w: &mut W, v: f64) -> io::Result<()> {
        w.write_all(&v.to_le_bytes())
    }

    /// Length-prefixed (`u64`) slice of `u32`.
    pub fn write_u32_slice<W: Write>(w: &mut W, vs: &[u32]) -> io::Result<()> {
        write_u64(w, vs.len() as u64)?;
        for &v in vs {
            write_u32(w, v)?;
        }
        Ok(())
    }

    /// Length-prefixed (`u64`) slice of `f64`.
    pub fn write_f64_slice<W: Write>(w: &mut W, vs: &[f64]) -> io::Result<()> {
        write_u64(w, vs.len() as u64)?;
        for &v in vs {
            write_f64(w, v)?;
        }
        Ok(())
    }

    pub fn read_u32<R: Read>(r: &mut R) -> io::Result<u32> {
        let mut b = [0u8; 4];
        r.read_exact(&mut b)?;
        Ok(u32::from_le_bytes(b))
    }

    pub fn read_u64<R: Read>(r: &mut R) -> io::Result<u64> {
        let mut b = [0u8; 8];
        r.read_exact(&mut b)?;
        Ok(u64::from_le_bytes(b))
    }

    pub fn read_f64<R: Read>(r: &mut R) -> io::Result<f64> {
        let mut b = [0u8; 8];
        r.read_exact(&mut b)?;
        Ok(f64::from_le_bytes(b))
    }

    fn checked_len(len: u64, elem_size: usize) -> io::Result<usize> {
        let len = usize::try_from(len)
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "section length overflow"))?;
        len.checked_mul(elem_size)
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "section length overflow"))?;
        Ok(len)
    }

    /// Read a slice written by [`write_u32_slice`].
    pub fn read_u32_vec<R: Read>(r: &mut R) -> io::Result<Vec<u32>> {
        let len = checked_len(read_u64(r)?, 4)?;
        let mut out = Vec::with_capacity(len.min(MAX_PREALLOC_BYTES / 4));
        for _ in 0..len {
            out.push(read_u32(r)?);
        }
        Ok(out)
    }

    /// Read a slice written by [`write_f64_slice`].
    pub fn read_f64_vec<R: Read>(r: &mut R) -> io::Result<Vec<f64>> {
        let len = checked_len(read_u64(r)?, 8)?;
        let mut out = Vec::with_capacity(len.min(MAX_PREALLOC_BYTES / 8));
        for _ in 0..len {
            out.push(read_f64(r)?);
        }
        Ok(out)
    }
}

/// Write points as CSV, one point per row.
pub fn write_csv<const D: usize>(path: &Path, points: &[Point<D>]) -> io::Result<()> {
    let mut w = BufWriter::new(std::fs::File::create(path)?);
    for p in points {
        for (i, c) in p.coords().iter().enumerate() {
            if i > 0 {
                write!(w, ",")?;
            }
            // {:?} preserves full f64 round-trip precision.
            write!(w, "{c:?}")?;
        }
        writeln!(w)?;
    }
    w.flush()
}

/// Read CSV points; every row must have exactly `D` columns.
pub fn read_csv<const D: usize>(path: &Path) -> io::Result<Vec<Point<D>>> {
    let r = BufReader::new(std::fs::File::open(path)?);
    let mut out = Vec::new();
    let mut line = String::new();
    let mut r = r;
    let mut lineno = 0usize;
    loop {
        line.clear();
        if r.read_line(&mut line)? == 0 {
            break;
        }
        lineno += 1;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let mut c = [0.0; D];
        let mut fields = trimmed.split(',');
        for (d, slot) in c.iter_mut().enumerate() {
            let f = fields.next().ok_or_else(|| {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("line {lineno}: expected {D} fields, got {d}"),
                )
            })?;
            *slot = f.trim().parse::<f64>().map_err(|e| {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("line {lineno}, field {d}: {e}"),
                )
            })?;
        }
        if fields.next().is_some() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("line {lineno}: more than {D} fields"),
            ));
        }
        out.push(Point(c));
    }
    Ok(out)
}

/// Write points in the binary format: `PCLD`, version, dims, count, then
/// little-endian f64 coordinates.
pub fn write_binary<const D: usize>(path: &Path, points: &[Point<D>]) -> io::Result<()> {
    let mut w = BufWriter::new(std::fs::File::create(path)?);
    w.write_all(MAGIC)?;
    le::write_u32(&mut w, VERSION)?;
    le::write_u32(&mut w, D as u32)?;
    le::write_u64(&mut w, points.len() as u64)?;
    for p in points {
        for &c in p.coords() {
            le::write_f64(&mut w, c)?;
        }
    }
    w.flush()
}

/// Read points written by [`write_binary`]; the stored dimensionality must
/// equal `D`.
pub fn read_binary<const D: usize>(path: &Path) -> io::Result<Vec<Point<D>>> {
    let mut r = BufReader::new(std::fs::File::open(path)?);
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "bad magic"));
    }
    let version = le::read_u32(&mut r)?;
    if version != VERSION {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("unsupported version {version}"),
        ));
    }
    let dims = le::read_u32(&mut r)?;
    if dims as usize != D {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("file has {dims} dims, expected {D}"),
        ));
    }
    let count = le::read_u64(&mut r)? as usize;
    let mut out = Vec::with_capacity(count.min(1 << 20));
    for _ in 0..count {
        let mut c = [0.0; D];
        for slot in c.iter_mut() {
            *slot = le::read_f64(&mut r)?;
        }
        out.push(Point(c));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::uniform_fill;

    fn tmp(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("parclust-io-test-{}-{name}", std::process::id()));
        p
    }

    #[test]
    fn csv_roundtrip() {
        let pts = uniform_fill::<3>(100, 1);
        let path = tmp("roundtrip.csv");
        write_csv(&path, &pts).unwrap();
        let back: Vec<Point<3>> = read_csv(&path).unwrap();
        assert_eq!(pts, back);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn csv_rejects_wrong_arity() {
        let path = tmp("bad.csv");
        std::fs::write(&path, "1.0,2.0\n3.0\n").unwrap();
        assert!(read_csv::<2>(&path).is_err());
        std::fs::write(&path, "1.0,2.0,9.0\n").unwrap();
        assert!(read_csv::<2>(&path).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn csv_skips_comments_and_blanks() {
        let path = tmp("comments.csv");
        std::fs::write(&path, "# header\n\n1.0,2.0\n").unwrap();
        let pts: Vec<Point<2>> = read_csv(&path).unwrap();
        assert_eq!(pts, vec![Point([1.0, 2.0])]);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn binary_roundtrip() {
        let pts = uniform_fill::<7>(257, 2);
        let path = tmp("roundtrip.bin");
        write_binary(&path, &pts).unwrap();
        let back: Vec<Point<7>> = read_binary(&path).unwrap();
        assert_eq!(pts, back);
        // Wrong dimensionality is rejected.
        assert!(read_binary::<3>(&path).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn binary_rejects_garbage() {
        let path = tmp("garbage.bin");
        std::fs::write(&path, b"not a parclust file").unwrap();
        assert!(read_binary::<2>(&path).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn le_codec_roundtrip() {
        let mut buf = Vec::new();
        le::write_u32(&mut buf, 7).unwrap();
        le::write_u64(&mut buf, u64::MAX - 3).unwrap();
        le::write_f64(&mut buf, -0.125).unwrap();
        le::write_u32_slice(&mut buf, &[1, 2, u32::MAX]).unwrap();
        le::write_f64_slice(&mut buf, &[f64::INFINITY, 0.5]).unwrap();
        let mut r = buf.as_slice();
        assert_eq!(le::read_u32(&mut r).unwrap(), 7);
        assert_eq!(le::read_u64(&mut r).unwrap(), u64::MAX - 3);
        assert_eq!(le::read_f64(&mut r).unwrap(), -0.125);
        assert_eq!(le::read_u32_vec(&mut r).unwrap(), vec![1, 2, u32::MAX]);
        assert_eq!(le::read_f64_vec(&mut r).unwrap(), vec![f64::INFINITY, 0.5]);
        assert!(r.is_empty(), "everything consumed");
    }

    #[test]
    fn le_codec_rejects_truncation_and_huge_lengths() {
        assert!(le::read_u64(&mut [1u8, 2].as_slice()).is_err());
        // A length prefix promising far more data than the stream holds must
        // error out (not OOM on the reservation).
        let mut buf = Vec::new();
        le::write_u64(&mut buf, u64::MAX / 2).unwrap();
        assert!(le::read_u32_vec(&mut buf.as_slice()).is_err());
        let mut short = Vec::new();
        le::write_u32_slice(&mut short, &[1, 2, 3]).unwrap();
        short.truncate(short.len() - 2);
        assert!(le::read_u32_vec(&mut short.as_slice()).is_err());
    }
}
