//! Point-set IO: CSV (interoperability) and a little-endian binary format
//! (fast reload of generated benchmark inputs).

use parclust_geom::Point;
use std::io::{self, BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

const MAGIC: &[u8; 4] = b"PCLD";
const VERSION: u32 = 1;

/// Write points as CSV, one point per row.
pub fn write_csv<const D: usize>(path: &Path, points: &[Point<D>]) -> io::Result<()> {
    let mut w = BufWriter::new(std::fs::File::create(path)?);
    for p in points {
        for (i, c) in p.coords().iter().enumerate() {
            if i > 0 {
                write!(w, ",")?;
            }
            // {:?} preserves full f64 round-trip precision.
            write!(w, "{c:?}")?;
        }
        writeln!(w)?;
    }
    w.flush()
}

/// Read CSV points; every row must have exactly `D` columns.
pub fn read_csv<const D: usize>(path: &Path) -> io::Result<Vec<Point<D>>> {
    let r = BufReader::new(std::fs::File::open(path)?);
    let mut out = Vec::new();
    let mut line = String::new();
    let mut r = r;
    let mut lineno = 0usize;
    loop {
        line.clear();
        if r.read_line(&mut line)? == 0 {
            break;
        }
        lineno += 1;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let mut c = [0.0; D];
        let mut fields = trimmed.split(',');
        for (d, slot) in c.iter_mut().enumerate() {
            let f = fields.next().ok_or_else(|| {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("line {lineno}: expected {D} fields, got {d}"),
                )
            })?;
            *slot = f.trim().parse::<f64>().map_err(|e| {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("line {lineno}, field {d}: {e}"),
                )
            })?;
        }
        if fields.next().is_some() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("line {lineno}: more than {D} fields"),
            ));
        }
        out.push(Point(c));
    }
    Ok(out)
}

/// Write points in the binary format: `PCLD`, version, dims, count, then
/// little-endian f64 coordinates.
pub fn write_binary<const D: usize>(path: &Path, points: &[Point<D>]) -> io::Result<()> {
    let mut w = BufWriter::new(std::fs::File::create(path)?);
    w.write_all(MAGIC)?;
    w.write_all(&VERSION.to_le_bytes())?;
    w.write_all(&(D as u32).to_le_bytes())?;
    w.write_all(&(points.len() as u64).to_le_bytes())?;
    for p in points {
        for c in p.coords() {
            w.write_all(&c.to_le_bytes())?;
        }
    }
    w.flush()
}

/// Read points written by [`write_binary`]; the stored dimensionality must
/// equal `D`.
pub fn read_binary<const D: usize>(path: &Path) -> io::Result<Vec<Point<D>>> {
    let mut r = BufReader::new(std::fs::File::open(path)?);
    let mut head = [0u8; 4 + 4 + 4 + 8];
    r.read_exact(&mut head)?;
    if &head[0..4] != MAGIC {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "bad magic"));
    }
    let version = u32::from_le_bytes(head[4..8].try_into().unwrap());
    if version != VERSION {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("unsupported version {version}"),
        ));
    }
    let dims = u32::from_le_bytes(head[8..12].try_into().unwrap());
    if dims as usize != D {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("file has {dims} dims, expected {D}"),
        ));
    }
    let count = u64::from_le_bytes(head[12..20].try_into().unwrap()) as usize;
    let mut out = Vec::with_capacity(count);
    let mut buf = vec![0u8; D * 8];
    for _ in 0..count {
        r.read_exact(&mut buf)?;
        let mut c = [0.0; D];
        for (d, slot) in c.iter_mut().enumerate() {
            *slot = f64::from_le_bytes(buf[d * 8..d * 8 + 8].try_into().unwrap());
        }
        out.push(Point(c));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::uniform_fill;

    fn tmp(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("parclust-io-test-{}-{name}", std::process::id()));
        p
    }

    #[test]
    fn csv_roundtrip() {
        let pts = uniform_fill::<3>(100, 1);
        let path = tmp("roundtrip.csv");
        write_csv(&path, &pts).unwrap();
        let back: Vec<Point<3>> = read_csv(&path).unwrap();
        assert_eq!(pts, back);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn csv_rejects_wrong_arity() {
        let path = tmp("bad.csv");
        std::fs::write(&path, "1.0,2.0\n3.0\n").unwrap();
        assert!(read_csv::<2>(&path).is_err());
        std::fs::write(&path, "1.0,2.0,9.0\n").unwrap();
        assert!(read_csv::<2>(&path).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn csv_skips_comments_and_blanks() {
        let path = tmp("comments.csv");
        std::fs::write(&path, "# header\n\n1.0,2.0\n").unwrap();
        let pts: Vec<Point<2>> = read_csv(&path).unwrap();
        assert_eq!(pts, vec![Point([1.0, 2.0])]);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn binary_roundtrip() {
        let pts = uniform_fill::<7>(257, 2);
        let path = tmp("roundtrip.bin");
        write_binary(&path, &pts).unwrap();
        let back: Vec<Point<7>> = read_binary(&path).unwrap();
        assert_eq!(pts, back);
        // Wrong dimensionality is rejected.
        assert!(read_binary::<3>(&path).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn binary_rejects_garbage() {
        let path = tmp("garbage.bin");
        std::fs::write(&path, b"not a parclust file").unwrap();
        assert!(read_binary::<2>(&path).is_err());
        std::fs::remove_file(&path).ok();
    }
}
