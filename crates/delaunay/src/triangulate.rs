//! Incremental Bowyer–Watson Delaunay triangulation with ghost triangles.
//!
//! The triangulation is maintained as a topological sphere: finite
//! triangles (counterclockwise) plus one *ghost* triangle per convex-hull
//! edge, whose third vertex is the symbolic point at infinity [`INF`]. The
//! uniform cavity insertion then needs no special hull code: a point's
//! conflict cavity is carved out (finite conflicts = strictly inside the
//! circumcircle, ghost conflicts = strictly outside the hull edge or on
//! it), and the star of the cavity boundary is re-triangulated from the
//! new point.
//!
//! Exact predicates ([`crate::predicates`]) make every branch correct on
//! degenerate inputs (cocircular grids, collinear chains); insertion in
//! Hilbert-curve order keeps the point-location walk near O(1) amortized.
//!
//! The paper uses Delaunay triangulation only as the 2D EMST baseline
//! (Appendix A.1); the triangulation itself is sequential and the MST stage
//! is parallel (DESIGN.md substitution 4).

use parclust_geom::Point;

use crate::predicates::{incircle, orient2d, Sign};

/// The symbolic vertex at infinity completing each hull edge to a ghost
/// triangle.
pub const INF: u32 = u32::MAX;
const NONE: u32 = u32::MAX;

/// A triangle: vertices in counterclockwise cyclic order (`v[2] == INF`
/// for ghosts), `nbr[j]` is the triangle across the edge opposite `v[j]`,
/// i.e. the edge `(v[j+1], v[j+2])`.
#[derive(Debug, Clone, Copy)]
pub struct Tri {
    pub v: [u32; 3],
    pub nbr: [u32; 3],
}

/// A Delaunay triangulation of a 2D point set in general or degenerate
/// position (but with **distinct** points; deduplicate first).
pub struct Triangulation {
    pub points: Vec<Point<2>>,
    tris: Vec<Tri>,
    alive: Vec<bool>,
    free: Vec<u32>,
    hint: u32,
}

/// Why a triangulation could not be built.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TriError {
    /// Fewer than 3 points.
    TooFew,
    /// All points are collinear — no triangle exists.
    Collinear,
}

impl Triangulation {
    /// Build the Delaunay triangulation. Points must be distinct and
    /// finite.
    pub fn build(points: &[Point<2>]) -> Result<Triangulation, TriError> {
        let n = points.len();
        if n < 3 {
            return Err(TriError::TooFew);
        }
        // Seed triangle: the first two distinct points plus the first point
        // not collinear with them.
        let p0 = 0u32;
        let p1 = 1u32;
        let mut p2 = NONE;
        for i in 2..n as u32 {
            if orient2d(points[0].0, points[1].0, points[i as usize].0) != Sign::Zero {
                p2 = i;
                break;
            }
        }
        if p2 == NONE {
            return Err(TriError::Collinear);
        }
        let mut t = Triangulation {
            points: points.to_vec(),
            tris: Vec::with_capacity(2 * n + 8),
            alive: Vec::with_capacity(2 * n + 8),
            free: Vec::new(),
            hint: 0,
        };
        t.init_seed(p0, p1, p2);

        // Remaining points in Hilbert order for walk locality.
        let mut rest: Vec<u32> = (2..n as u32).filter(|&i| i != p2).collect();
        let keys: Vec<u64> = hilbert_keys(points);
        rest.sort_unstable_by_key(|&i| keys[i as usize]);
        for i in rest {
            t.insert(i);
        }
        Ok(t)
    }

    fn init_seed(&mut self, a: u32, b: u32, c: u32) {
        let (a, b, c) = match orient2d(
            self.points[a as usize].0,
            self.points[b as usize].0,
            self.points[c as usize].0,
        ) {
            Sign::Positive => (a, b, c),
            Sign::Negative => (a, c, b),
            Sign::Zero => unreachable!("seed triangle is non-degenerate"),
        };
        // Finite triangle 0 and ghosts for its three hull edges. The ghost
        // across directed hull edge (x → y) is (y, x, INF).
        // Triangle 0: (a, b, c); ghosts: 1 = (b, a, INF), 2 = (c, b, INF),
        // 3 = (a, c, INF).
        self.push_tri(Tri {
            v: [a, b, c],
            nbr: [2, 3, 1], // across (b,c) → ghost 2; across (c,a) → ghost 3; across (a,b) → ghost 1
        });
        self.push_tri(Tri {
            v: [b, a, INF],
            nbr: [3, 2, 0], // across (a,INF) → ghost 3; across (INF,b) → ghost 2; across (b,a) → finite 0
        });
        self.push_tri(Tri {
            v: [c, b, INF],
            nbr: [1, 3, 0],
        });
        self.push_tri(Tri {
            v: [a, c, INF],
            nbr: [2, 1, 0],
        });
        self.hint = 0;
    }

    fn push_tri(&mut self, tri: Tri) -> u32 {
        if let Some(id) = self.free.pop() {
            self.tris[id as usize] = tri;
            self.alive[id as usize] = true;
            id
        } else {
            self.tris.push(tri);
            self.alive.push(true);
            (self.tris.len() - 1) as u32
        }
    }

    #[inline]
    fn is_ghost(&self, t: u32) -> bool {
        self.tris[t as usize].v[2] == INF
    }

    #[inline]
    fn coords(&self, v: u32) -> [f64; 2] {
        self.points[v as usize].0
    }

    /// Does triangle `t` conflict with point `p` (must be carved out when
    /// `p` is inserted)?
    fn conflicts(&self, t: u32, p: [f64; 2]) -> bool {
        let tri = &self.tris[t as usize];
        if tri.v[2] == INF {
            let (u, w) = (self.coords(tri.v[0]), self.coords(tri.v[1]));
            match orient2d(u, w, p) {
                Sign::Positive => true,
                Sign::Negative => false,
                // On the hull line: conflict exactly when on the closed
                // hull edge (otherwise the corner ghost handles it).
                Sign::Zero => within_closed_segment(u, w, p),
            }
        } else {
            incircle(
                self.coords(tri.v[0]),
                self.coords(tri.v[1]),
                self.coords(tri.v[2]),
                p,
            ) == Sign::Positive
        }
    }

    /// Walk from the hint to a triangle conflicting with `p`.
    fn locate(&self, p: [f64; 2], vid: u32) -> u32 {
        let mut t = self.hint;
        let mut prev = NONE;
        // deterministic tie-breaking offset
        let mut step = vid as usize;
        // Termination backstop: the remembering walk terminates on Delaunay
        // triangulations, but a linear scan guarantees progress even if a
        // degenerate configuration defeats it.
        let budget = 8 * self.tris.len() + 64;
        for _ in 0..budget {
            debug_assert!(self.alive[t as usize]);
            if self.is_ghost(t) {
                // Entering a ghost from a finite triangle means p lies
                // strictly beyond that hull edge, which is its conflict
                // condition; a stale ghost hint just hops back inside.
                if self.conflicts(t, p) {
                    return t;
                }
                prev = t;
                t = self.tris[t as usize].nbr[2]; // the finite neighbor
                continue;
            }
            let tri = &self.tris[t as usize];
            let mut moved = false;
            for k in 0..3 {
                let j = (k + step) % 3;
                let (a, b) = (tri.v[(j + 1) % 3], tri.v[(j + 2) % 3]);
                if tri.nbr[j] == prev {
                    continue;
                }
                if orient2d(self.coords(a), self.coords(b), p) == Sign::Negative {
                    prev = t;
                    t = tri.nbr[j];
                    moved = true;
                    break;
                }
            }
            step = step.wrapping_mul(0x9e3779b9).wrapping_add(1);
            if !moved {
                // p is inside (or on the boundary of) this finite triangle.
                debug_assert!(
                    tri.v.iter().all(|&v| self.coords(v) != p),
                    "duplicate point passed to Triangulation::build"
                );
                return t;
            }
        }
        // Backstop: exhaustive scan (never expected; keeps degenerate
        // inputs safe rather than looping).
        (0..self.tris.len() as u32)
            .find(|&t| self.alive[t as usize] && self.conflicts(t, p))
            .expect("some triangle must conflict with a non-duplicate point")
    }

    /// Insert vertex `vid` (Bowyer–Watson cavity insertion).
    fn insert(&mut self, vid: u32) {
        let p = self.coords(vid);
        let seed = self.locate(p, vid);
        debug_assert!(self.conflicts(seed, p), "located triangle must conflict");

        // Grow the conflict cavity by BFS.
        let mut cavity: Vec<u32> = vec![seed];
        let mut in_cavity = std::collections::HashSet::new();
        in_cavity.insert(seed);
        let mut queue = vec![seed];
        while let Some(t) = queue.pop() {
            for j in 0..3 {
                let nb = self.tris[t as usize].nbr[j];
                if !in_cavity.contains(&nb) && self.conflicts(nb, p) {
                    in_cavity.insert(nb);
                    cavity.push(nb);
                    queue.push(nb);
                }
            }
        }

        // Boundary: directed edges (a, b) of cavity triangles whose
        // neighbor survives, with that outside neighbor.
        let mut boundary: Vec<(u32, u32, u32)> = Vec::new(); // (a, b, outside)
        for &t in &cavity {
            let tri = self.tris[t as usize];
            for j in 0..3 {
                if !in_cavity.contains(&tri.nbr[j]) {
                    boundary.push((tri.v[(j + 1) % 3], tri.v[(j + 2) % 3], tri.nbr[j]));
                }
            }
        }

        // Free the cavity.
        for &t in &cavity {
            self.alive[t as usize] = false;
            self.free.push(t);
        }

        // Star the boundary from vid. The boundary directed edges form a
        // single cycle (the cavity is a combinatorial disk), so each vertex
        // occurs exactly once as a first endpoint — `by_first` indexes the
        // new triangles by it.
        let mut by_first: std::collections::HashMap<u32, (u32, u32)> =
            std::collections::HashMap::with_capacity(boundary.len()); // a -> (tri id, b)
        for &(a, b, outside) in &boundary {
            // Vertex cycle (a, b, vid), rotated so INF (only ever a or b)
            // sits at slot 2.
            let v = if a == INF {
                [b, vid, INF]
            } else if b == INF {
                [vid, a, INF]
            } else {
                [a, b, vid]
            };
            let id = self.push_tri(Tri {
                v,
                nbr: [NONE, NONE, NONE],
            });
            // Wire the surviving outside neighbor both ways across (a, b).
            let s_ab = self.slot_of(id, vid); // edge (a, b) is opposite vid
            self.tris[id as usize].nbr[s_ab] = outside;
            let out_tri = &self.tris[outside as usize];
            let s_out = (0..3)
                .find(|&j| (out_tri.v[(j + 1) % 3], out_tri.v[(j + 2) % 3]) == (b, a))
                .expect("outside neighbor must share the reversed edge");
            self.tris[outside as usize].nbr[s_out] = id;
            let prev = by_first.insert(a, (id, b));
            debug_assert!(prev.is_none(), "cavity boundary must be a simple cycle");
        }
        // New-new adjacencies: T_a = (a, b, vid) and T_b = (b, c, vid)
        // share the edge (b, vid) — opposite `a` in T_a, opposite `c` in
        // T_b.
        for &(a, b, _) in &boundary {
            let (id_a, _) = by_first[&a];
            let (id_b, c) = by_first[&b];
            let s = self.slot_of(id_a, a);
            self.tris[id_a as usize].nbr[s] = id_b;
            let s = self.slot_of(id_b, c);
            self.tris[id_b as usize].nbr[s] = id_a;
        }

        self.hint = by_first[&boundary[0].0].0;
    }

    #[inline]
    fn slot_of(&self, t: u32, x: u32) -> usize {
        self.tris[t as usize]
            .v
            .iter()
            .position(|&y| y == x)
            .expect("vertex must belong to triangle")
    }

    /// All finite undirected edges `(u, v)` with `u < v`.
    pub fn edges(&self) -> Vec<(u32, u32)> {
        let mut out = Vec::new();
        for (t, tri) in self.tris.iter().enumerate() {
            if !self.alive[t] || tri.v[2] == INF {
                continue;
            }
            for j in 0..3 {
                let (a, b) = (tri.v[j], tri.v[(j + 1) % 3]);
                out.push((a.min(b), a.max(b)));
            }
        }
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Alive finite triangles (vertex triples, CCW).
    pub fn finite_triangles(&self) -> Vec<[u32; 3]> {
        self.tris
            .iter()
            .enumerate()
            .filter(|(t, tri)| self.alive[*t] && tri.v[2] != INF)
            .map(|(_, tri)| tri.v)
            .collect()
    }

    /// Internal consistency check (used by tests): orientation, mutual
    /// neighbor links, and the local Delaunay property.
    pub fn validate(&self) {
        for (t, tri) in self.tris.iter().enumerate() {
            if !self.alive[t] {
                continue;
            }
            if tri.v[2] != INF {
                assert_eq!(
                    orient2d(
                        self.coords(tri.v[0]),
                        self.coords(tri.v[1]),
                        self.coords(tri.v[2])
                    ),
                    Sign::Positive,
                    "finite triangle {t} must be CCW and non-degenerate"
                );
            }
            for j in 0..3 {
                let nb = tri.nbr[j];
                assert!(self.alive[nb as usize], "dead neighbor");
                let (a, b) = (tri.v[(j + 1) % 3], tri.v[(j + 2) % 3]);
                let ntri = &self.tris[nb as usize];
                let found = (0..3).any(|k| {
                    (ntri.v[(k + 1) % 3], ntri.v[(k + 2) % 3]) == (b, a) && ntri.nbr[k] == t as u32
                });
                assert!(found, "neighbor link of tri {t} edge {j} not mutual");
            }
        }
    }
}

/// Is `p` within the closed segment `[u, w]` (given the three are
/// collinear)?
fn within_closed_segment(u: [f64; 2], w: [f64; 2], p: [f64; 2]) -> bool {
    let lo_x = u[0].min(w[0]);
    let hi_x = u[0].max(w[0]);
    let lo_y = u[1].min(w[1]);
    let hi_y = u[1].max(w[1]);
    lo_x <= p[0] && p[0] <= hi_x && lo_y <= p[1] && p[1] <= hi_y
}

/// Hilbert-curve keys for the points (16-bit quantization per axis) —
/// insertion order with high spatial locality.
fn hilbert_keys(points: &[Point<2>]) -> Vec<u64> {
    let mut lo = [f64::INFINITY; 2];
    let mut hi = [f64::NEG_INFINITY; 2];
    for p in points {
        for d in 0..2 {
            lo[d] = lo[d].min(p[d]);
            hi[d] = hi[d].max(p[d]);
        }
    }
    let span = [(hi[0] - lo[0]).max(1e-300), (hi[1] - lo[1]).max(1e-300)];
    points
        .iter()
        .map(|p| {
            let x = (((p[0] - lo[0]) / span[0]) * 65535.0) as u32;
            let y = (((p[1] - lo[1]) / span[1]) * 65535.0) as u32;
            hilbert_d2(x.min(65535), y.min(65535))
        })
        .collect()
}

/// xy → Hilbert distance for a 2^16 × 2^16 grid.
fn hilbert_d2(mut x: u32, mut y: u32) -> u64 {
    let mut rx: u32;
    let mut ry: u32;
    let mut d: u64 = 0;
    let mut s: u32 = 1 << 15;
    while s > 0 {
        rx = u32::from((x & s) > 0);
        ry = u32::from((y & s) > 0);
        d += (s as u64) * (s as u64) * ((3 * rx) ^ ry) as u64;
        // Rotate quadrant.
        if ry == 0 {
            if rx == 1 {
                x = s.wrapping_sub(1).wrapping_sub(x) & (s.wrapping_mul(2) - 1);
                y = s.wrapping_sub(1).wrapping_sub(y) & (s.wrapping_mul(2) - 1);
            }
            std::mem::swap(&mut x, &mut y);
        }
        s /= 2;
    }
    d
}
