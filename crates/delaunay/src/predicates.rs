//! Exact geometric predicates via floating-point expansions.
//!
//! `orient2d` and `incircle` follow Shewchuk's approach: a fast
//! floating-point evaluation with a rigorous error bound, falling back to
//! an exact evaluation with multi-component expansions when the filter
//! cannot certify the sign. The exact path here is a straightforward
//! expansion-arithmetic evaluation (not Shewchuk's staged adaptive
//! variants): it is hit rarely and only its correctness matters.
//!
//! An *expansion* is a sum of f64 components, ordered by increasing
//! magnitude, nonoverlapping in the sense of Shewchuk (1997) — the sign of
//! the expansion is the sign of its largest (last) component.

/// Sign of a determinant-valued predicate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Sign {
    Negative,
    Zero,
    Positive,
}

impl Sign {
    fn of(x: f64) -> Sign {
        if x > 0.0 {
            Sign::Positive
        } else if x < 0.0 {
            Sign::Negative
        } else {
            Sign::Zero
        }
    }
}

const EPS: f64 = f64::EPSILON / 2.0; // 2^-53, Shewchuk's ε
const CCW_ERR_BOUND: f64 = (3.0 + 16.0 * EPS) * EPS;
const ICC_ERR_BOUND: f64 = (10.0 + 96.0 * EPS) * EPS;

/// Error-free sum: returns `(hi, lo)` with `hi + lo == a + b` exactly.
#[inline]
fn two_sum(a: f64, b: f64) -> (f64, f64) {
    let hi = a + b;
    let bv = hi - a;
    let av = hi - bv;
    let lo = (a - av) + (b - bv);
    (hi, lo)
}

/// Error-free difference.
#[inline]
fn two_diff(a: f64, b: f64) -> (f64, f64) {
    let hi = a - b;
    let bv = a - hi;
    let av = hi + bv;
    let lo = (a - av) + (bv - b);
    (hi, lo)
}

/// Error-free product using fused multiply-add.
#[inline]
fn two_prod(a: f64, b: f64) -> (f64, f64) {
    let hi = a * b;
    let lo = f64::mul_add(a, b, -hi);
    (hi, lo)
}

/// Add two expansions (fast_expansion_sum with zero elimination).
fn exp_sum(e: &[f64], f: &[f64]) -> Vec<f64> {
    if e.is_empty() {
        return f.to_vec();
    }
    if f.is_empty() {
        return e.to_vec();
    }
    let mut h = Vec::with_capacity(e.len() + f.len());
    let (mut i, mut j) = (0usize, 0usize);
    // Merge by magnitude.
    let next = |i: &mut usize, j: &mut usize| -> f64 {
        if *i < e.len() && (*j >= f.len() || e[*i].abs() <= f[*j].abs()) {
            let v = e[*i];
            *i += 1;
            v
        } else {
            let v = f[*j];
            *j += 1;
            v
        }
    };
    let mut q = next(&mut i, &mut j);
    while i < e.len() || j < f.len() {
        let x = next(&mut i, &mut j);
        let (sum, err) = two_sum(q, x);
        if err != 0.0 {
            h.push(err);
        }
        q = sum;
    }
    if q != 0.0 || h.is_empty() {
        h.push(q);
    }
    h
}

/// Scale an expansion by a single f64 (scale_expansion with zero
/// elimination).
fn exp_scale(e: &[f64], b: f64) -> Vec<f64> {
    if b == 0.0 || e.is_empty() {
        return vec![0.0];
    }
    let mut h = Vec::with_capacity(2 * e.len());
    let (mut q, lo) = two_prod(e[0], b);
    if lo != 0.0 {
        h.push(lo);
    }
    for &ei in &e[1..] {
        let (p_hi, p_lo) = two_prod(ei, b);
        let (sum, err) = two_sum(q, p_lo);
        if err != 0.0 {
            h.push(err);
        }
        let (new_q, err2) = two_sum(p_hi, sum);
        if err2 != 0.0 {
            h.push(err2);
        }
        q = new_q;
    }
    if q != 0.0 || h.is_empty() {
        h.push(q);
    }
    h
}

/// Multiply two expansions.
fn exp_mul(e: &[f64], f: &[f64]) -> Vec<f64> {
    let mut acc: Vec<f64> = vec![0.0];
    for &fi in f {
        acc = exp_sum(&acc, &exp_scale(e, fi));
    }
    acc
}

fn exp_neg(e: &[f64]) -> Vec<f64> {
    e.iter().map(|&x| -x).collect()
}

/// Sign of an expansion: sign of its most significant (last) component.
fn exp_sign(e: &[f64]) -> Sign {
    // Zero-eliminated expansions keep at most one zero; scan from the top
    // for robustness.
    for &x in e.iter().rev() {
        if x != 0.0 {
            return Sign::of(x);
        }
    }
    Sign::Zero
}

/// Orientation of the triple `(a, b, c)`:
/// [`Sign::Positive`] if counterclockwise, [`Sign::Negative`] if clockwise,
/// [`Sign::Zero`] if collinear. Exact.
pub fn orient2d(a: [f64; 2], b: [f64; 2], c: [f64; 2]) -> Sign {
    let detleft = (a[0] - c[0]) * (b[1] - c[1]);
    let detright = (a[1] - c[1]) * (b[0] - c[0]);
    let det = detleft - detright;
    let detsum = if detleft > 0.0 && detright > 0.0 {
        detleft + detright
    } else if detleft < 0.0 && detright < 0.0 {
        -(detleft + detright)
    } else {
        // Signs differ (or a zero): the fast value is reliable.
        return Sign::of(det);
    };
    if det.abs() >= CCW_ERR_BOUND * detsum {
        return Sign::of(det);
    }
    orient2d_exact(a, b, c)
}

fn orient2d_exact(a: [f64; 2], b: [f64; 2], c: [f64; 2]) -> Sign {
    // det = (ax - cx)(by - cy) - (ay - cy)(bx - cx), with every difference
    // kept as an exact two-component expansion.
    let acx = {
        let (hi, lo) = two_diff(a[0], c[0]);
        [lo, hi]
    };
    let bcy = {
        let (hi, lo) = two_diff(b[1], c[1]);
        [lo, hi]
    };
    let acy = {
        let (hi, lo) = two_diff(a[1], c[1]);
        [lo, hi]
    };
    let bcx = {
        let (hi, lo) = two_diff(b[0], c[0]);
        [lo, hi]
    };
    let left = exp_mul(&acx, &bcy);
    let right = exp_mul(&acy, &bcx);
    exp_sign(&exp_sum(&left, &exp_neg(&right)))
}

/// Is `d` inside the circumcircle of the counterclockwise triangle
/// `(a, b, c)`? [`Sign::Positive`] = strictly inside, [`Sign::Negative`] =
/// strictly outside, [`Sign::Zero`] = cocircular. Exact.
pub fn incircle(a: [f64; 2], b: [f64; 2], c: [f64; 2], d: [f64; 2]) -> Sign {
    let adx = a[0] - d[0];
    let ady = a[1] - d[1];
    let bdx = b[0] - d[0];
    let bdy = b[1] - d[1];
    let cdx = c[0] - d[0];
    let cdy = c[1] - d[1];

    let bdxcdy = bdx * cdy;
    let cdxbdy = cdx * bdy;
    let alift = adx * adx + ady * ady;
    let cdxady = cdx * ady;
    let adxcdy = adx * cdy;
    let blift = bdx * bdx + bdy * bdy;
    let adxbdy = adx * bdy;
    let bdxady = bdx * ady;
    let clift = cdx * cdx + cdy * cdy;

    let det = alift * (bdxcdy - cdxbdy) + blift * (cdxady - adxcdy) + clift * (adxbdy - bdxady);
    let permanent = (bdxcdy.abs() + cdxbdy.abs()) * alift
        + (cdxady.abs() + adxcdy.abs()) * blift
        + (adxbdy.abs() + bdxady.abs()) * clift;
    if det.abs() > ICC_ERR_BOUND * permanent {
        return Sign::of(det);
    }
    incircle_exact(a, b, c, d)
}

fn incircle_exact(a: [f64; 2], b: [f64; 2], c: [f64; 2], d: [f64; 2]) -> Sign {
    let diff = |x: f64, y: f64| -> Vec<f64> {
        let (hi, lo) = two_diff(x, y);
        vec![lo, hi]
    };
    let adx = diff(a[0], d[0]);
    let ady = diff(a[1], d[1]);
    let bdx = diff(b[0], d[0]);
    let bdy = diff(b[1], d[1]);
    let cdx = diff(c[0], d[0]);
    let cdy = diff(c[1], d[1]);

    let lift = |x: &[f64], y: &[f64]| exp_sum(&exp_mul(x, x), &exp_mul(y, y));
    let alift = lift(&adx, &ady);
    let blift = lift(&bdx, &bdy);
    let clift = lift(&cdx, &cdy);

    let cross = |x1: &[f64], y1: &[f64], x2: &[f64], y2: &[f64]| {
        exp_sum(&exp_mul(x1, y2), &exp_neg(&exp_mul(x2, y1)))
    };
    let bc = cross(&bdx, &bdy, &cdx, &cdy);
    let ca = cross(&cdx, &cdy, &adx, &ady);
    let ab = cross(&adx, &ady, &bdx, &bdy);

    let det = exp_sum(
        &exp_mul(&alift, &bc),
        &exp_sum(&exp_mul(&blift, &ca), &exp_mul(&clift, &ab)),
    );
    exp_sign(&det)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn orient_basic() {
        assert_eq!(orient2d([0.0, 0.0], [1.0, 0.0], [0.0, 1.0]), Sign::Positive);
        assert_eq!(orient2d([0.0, 0.0], [0.0, 1.0], [1.0, 0.0]), Sign::Negative);
        assert_eq!(orient2d([0.0, 0.0], [1.0, 1.0], [2.0, 2.0]), Sign::Zero);
    }

    #[test]
    fn orient_near_degenerate_is_exact() {
        // The classic filter-breaking family: points nearly on a line,
        // perturbed in the last ulp. Compare against an exact rational
        // evaluation done in integers after scaling.
        let a = [12.0, 12.0];
        let base = 0.5;
        for i in 0..64 {
            for j in 0..64 {
                let b = [
                    base + f64::EPSILON * i as f64,
                    base + f64::EPSILON * j as f64,
                ];
                let c = [24.0, 24.0];
                // Exact via i128: coordinates here are all exact multiples
                // of 2^-52 times integers small enough that the scaled
                // cross products stay below i128::MAX.
                let s = 2f64.powi(53);
                let ai = [(a[0] * s) as i128, (a[1] * s) as i128];
                let bi = [(b[0] * s) as i128, (b[1] * s) as i128];
                let ci = [(c[0] * s) as i128, (c[1] * s) as i128];
                let det = (ai[0] - ci[0]) * (bi[1] - ci[1]) - (ai[1] - ci[1]) * (bi[0] - ci[0]);
                let want = if det > 0 {
                    Sign::Positive
                } else if det < 0 {
                    Sign::Negative
                } else {
                    Sign::Zero
                };
                assert_eq!(orient2d(a, b, c), want, "i={i} j={j}");
            }
        }
    }

    #[test]
    fn incircle_basic() {
        let a = [0.0, 0.0];
        let b = [2.0, 0.0];
        let c = [0.0, 2.0];
        assert_eq!(incircle(a, b, c, [0.5, 0.5]), Sign::Positive);
        assert_eq!(incircle(a, b, c, [10.0, 10.0]), Sign::Negative);
        // (2, 2) is cocircular with the right triangle's circumcircle
        // centered at (1,1) with radius sqrt(2).
        assert_eq!(incircle(a, b, c, [2.0, 2.0]), Sign::Zero);
    }

    #[test]
    fn incircle_cocircular_grid() {
        // Unit-square corners are cocircular — exact zero required.
        let a = [0.0, 0.0];
        let b = [1.0, 0.0];
        let c = [1.0, 1.0];
        let d = [0.0, 1.0];
        assert_eq!(incircle(a, b, c, d), Sign::Zero);
        // Perturb by one ulp: strictly inside / outside.
        let eps = f64::EPSILON;
        assert_eq!(incircle(a, b, c, [0.0, 1.0 - eps]), Sign::Positive);
        assert_eq!(incircle(a, b, c, [0.0, 1.0 + eps]), Sign::Negative);
    }

    #[test]
    fn incircle_translation_torture() {
        // Large translations force cancellation in the fast path.
        let t = 1e12;
        let a = [t, t];
        let b = [t + 1.0, t];
        let c = [t + 1.0, t + 1.0];
        let d = [t, t + 1.0];
        assert_eq!(incircle(a, b, c, d), Sign::Zero);
        assert_eq!(incircle(a, b, c, [t + 0.5, t + 0.5]), Sign::Positive);
    }

    #[test]
    fn expansion_sum_exactness() {
        // 1 + 2^-80 cannot be represented in one f64 but an expansion keeps
        // both parts.
        let e = vec![2f64.powi(-80)];
        let f = vec![1.0];
        let s = exp_sum(&e, &f);
        assert_eq!(exp_sign(&s), Sign::Positive);
        let neg = exp_sum(&s, &[-1.0]);
        // Exactly 2^-80 remains.
        let total: f64 = neg.iter().sum();
        assert_eq!(total, 2f64.powi(-80));
    }

    #[test]
    fn expansion_mul_matches_integers() {
        // (2^30 + 1)^2 = 2^60 + 2^31 + 1, exactly representable across
        // expansion components.
        let x = vec![1.0, 2f64.powi(30)];
        let sq = exp_mul(&x, &x);
        // The target is not exact in f64, so compare component sums in
        // integer arithmetic instead.
        let want = 2f64.powi(60) + 2f64.powi(31) + 1.0;
        let got: i128 = sq.iter().map(|&c| c as i128).sum();
        let want_int: i128 = (1i128 << 60) + (1i128 << 31) + 1;
        assert_eq!(got, want_int);
        let _ = want;
    }
}
