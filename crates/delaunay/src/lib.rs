//! 2D Delaunay triangulation and the Delaunay-based EMST (Appendix A.1).
//!
//! Shamos and Hoey [55]: in two dimensions the EMST is a subgraph of the
//! Delaunay triangulation, so an MST over the `O(n)` Delaunay edges yields
//! the EMST. The paper evaluates this as `EMST-Delaunay`, a strong 2D-only
//! baseline (Figure 6a/e, Table 4).
//!
//! * [`predicates`] — exact `orient2d`/`incircle` via floating-point
//!   expansions with an error-bound fast path.
//! * [`triangulate`] — incremental Bowyer–Watson with ghost triangles and
//!   Hilbert-order insertion.
//! * [`emst2d`] — deduplicate, triangulate, then a parallel Kruskal over
//!   the Delaunay edges (collinear inputs fall back to sorting along the
//!   line, where the triangulation does not exist but the EMST does).

pub mod predicates;
pub mod triangulate;

use parclust_geom::Point;
use parclust_mst::{kruskal, Edge};

pub use predicates::{incircle, orient2d, Sign};
pub use triangulate::{TriError, Triangulation, INF};

/// Euclidean MST of 2D points via Delaunay triangulation. Handles
/// duplicates (zero-weight edges onto a representative) and collinear
/// inputs (sorted-chain fallback). Returns edges over the input indices in
/// canonical order.
pub fn emst2d(points: &[Point<2>]) -> Vec<Edge> {
    let n = points.len();
    if n < 2 {
        return Vec::new();
    }

    // Deduplicate exactly equal points; duplicates attach by weight-0
    // edges afterwards.
    let mut rep_of: std::collections::HashMap<(u64, u64), u32> =
        std::collections::HashMap::with_capacity(n);
    let mut distinct: Vec<u32> = Vec::with_capacity(n);
    let mut dup_edges: Vec<Edge> = Vec::new();
    for (i, p) in points.iter().enumerate() {
        let key = (p[0].to_bits(), p[1].to_bits());
        match rep_of.entry(key) {
            std::collections::hash_map::Entry::Occupied(e) => {
                dup_edges.push(Edge::new(*e.get(), i as u32, 0.0));
            }
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert(i as u32);
                distinct.push(i as u32);
            }
        }
    }

    let dpoints: Vec<Point<2>> = distinct.iter().map(|&i| points[i as usize]).collect();
    let mut edges: Vec<Edge> = match Triangulation::build(&dpoints) {
        Ok(tri) => {
            let cand: Vec<Edge> = tri
                .edges()
                .into_iter()
                .map(|(a, b)| {
                    Edge::new(
                        distinct[a as usize],
                        distinct[b as usize],
                        dpoints[a as usize].dist(&dpoints[b as usize]),
                    )
                })
                .collect();
            kruskal(n, &cand)
        }
        Err(TriError::TooFew) | Err(TriError::Collinear) => {
            // Collinear (or just two distinct) points: lexicographic order
            // equals order along the line; connect consecutive points.
            let mut order = distinct.clone();
            order.sort_unstable_by(|&i, &j| {
                let (p, q) = (&points[i as usize], &points[j as usize]);
                (p[0], p[1], i).partial_cmp(&(q[0], q[1], j)).unwrap()
            });
            order
                .windows(2)
                .map(|w| {
                    Edge::new(
                        w[0],
                        w[1],
                        points[w[0] as usize].dist(&points[w[1] as usize]),
                    )
                })
                .collect()
        }
    };
    edges.extend(dup_edges);
    parclust_mst::sort_edges(&mut edges);
    debug_assert_eq!(edges.len(), n - 1);
    edges
}

#[cfg(test)]
mod tests {
    use super::*;
    use parclust_mst::{prim_dense, total_weight};
    use rand::prelude::*;

    fn random_points(n: usize, seed: u64) -> Vec<Point<2>> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| Point([rng.gen_range(-100.0..100.0), rng.gen_range(-100.0..100.0)]))
            .collect()
    }

    /// Brute-force global Delaunay check: no point strictly inside any
    /// finite triangle's circumcircle.
    fn check_delaunay(tri: &Triangulation) {
        tri.validate();
        for t in tri.finite_triangles() {
            let (a, b, c) = (
                tri.points[t[0] as usize].0,
                tri.points[t[1] as usize].0,
                tri.points[t[2] as usize].0,
            );
            for (i, p) in tri.points.iter().enumerate() {
                let i = i as u32;
                if i == t[0] || i == t[1] || i == t[2] {
                    continue;
                }
                assert_ne!(
                    incircle(a, b, c, p.0),
                    Sign::Positive,
                    "point {i} inside circumcircle of {t:?}"
                );
            }
        }
    }

    /// Euler's formula for a triangulated convex region: with n vertices
    /// and h hull vertices, #triangles = 2n - 2 - h.
    fn check_euler(tri: &Triangulation, n: usize) {
        let tris = tri.finite_triangles();
        let edges = tri.edges();
        // Count hull edges: edges on exactly one finite triangle.
        let mut cnt = std::collections::HashMap::new();
        for t in &tris {
            for j in 0..3 {
                let (a, b) = (t[j].min(t[(j + 1) % 3]), t[j].max(t[(j + 1) % 3]));
                *cnt.entry((a, b)).or_insert(0) += 1;
            }
        }
        let h = cnt.values().filter(|&&c| c == 1).count();
        assert_eq!(tris.len(), 2 * n - 2 - h, "Euler formula (triangles)");
        assert_eq!(edges.len(), 3 * n - 3 - h, "Euler formula (edges)");
    }

    #[test]
    fn triangle_of_three() {
        let pts = vec![Point([0.0, 0.0]), Point([1.0, 0.0]), Point([0.0, 1.0])];
        let tri = Triangulation::build(&pts).unwrap();
        check_delaunay(&tri);
        assert_eq!(tri.finite_triangles().len(), 1);
        assert_eq!(tri.edges().len(), 3);
    }

    #[test]
    fn random_small_is_delaunay() {
        for seed in 0..8 {
            let pts = random_points(60, seed);
            let tri = Triangulation::build(&pts).unwrap();
            check_delaunay(&tri);
            check_euler(&tri, pts.len());
        }
    }

    #[test]
    fn random_larger_is_valid() {
        let pts = random_points(5000, 99);
        let tri = Triangulation::build(&pts).unwrap();
        tri.validate();
        check_euler(&tri, pts.len());
    }

    #[test]
    fn grid_cocircular_points() {
        // Every unit square is cocircular: the exact-zero branch is
        // exercised everywhere.
        let mut pts = Vec::new();
        for x in 0..12 {
            for y in 0..12 {
                pts.push(Point([x as f64, y as f64]));
            }
        }
        let tri = Triangulation::build(&pts).unwrap();
        check_delaunay(&tri);
        check_euler(&tri, pts.len());
    }

    #[test]
    fn collinear_chain_plus_apex() {
        // Many collinear points with a single off-line point, in an order
        // that forces on-hull-edge and beyond-chain insertions.
        let mut pts: Vec<Point<2>> = vec![
            Point([0.0, 0.0]),
            Point([10.0, 0.0]),
            Point([5.0, 7.0]), // apex (the seed triangle)
        ];
        for i in 1..10 {
            pts.push(Point([i as f64, 0.0])); // on the hull edge
        }
        pts.push(Point([-3.0, 0.0])); // beyond the chain, collinear
        pts.push(Point([13.0, 0.0])); // beyond the other end
        let tri = Triangulation::build(&pts).unwrap();
        check_delaunay(&tri);
        check_euler(&tri, pts.len());
    }

    #[test]
    fn fully_collinear_is_reported() {
        let pts: Vec<Point<2>> = (0..10).map(|i| Point([i as f64, 2.0 * i as f64])).collect();
        assert!(matches!(
            Triangulation::build(&pts),
            Err(TriError::Collinear)
        ));
    }

    #[test]
    fn emst2d_matches_prim() {
        for seed in 0..5 {
            let pts = random_points(300, seed);
            let edges = emst2d(&pts);
            assert_eq!(edges.len(), 299);
            let want = prim_dense(300, 0, |u, v| pts[u as usize].dist(&pts[v as usize]));
            assert!(
                (total_weight(&edges) - want.total_weight).abs() < 1e-9,
                "seed {seed}"
            );
        }
    }

    #[test]
    fn emst2d_degenerate_inputs() {
        // Collinear.
        let pts: Vec<Point<2>> = (0..20).map(|i| Point([i as f64, 0.0])).collect();
        let edges = emst2d(&pts);
        assert_eq!(edges.len(), 19);
        assert!((total_weight(&edges) - 19.0).abs() < 1e-12);

        // Duplicates.
        let mut pts = random_points(40, 7);
        for i in 0..10 {
            pts.push(pts[i]);
        }
        let edges = emst2d(&pts);
        assert_eq!(edges.len(), pts.len() - 1);
        let want = prim_dense(pts.len(), 0, |u, v| pts[u as usize].dist(&pts[v as usize]));
        assert!((total_weight(&edges) - want.total_weight).abs() < 1e-9);

        // Tiny inputs.
        assert!(emst2d(&[]).is_empty());
        assert!(emst2d(&[Point([1.0, 1.0])]).is_empty());
        assert_eq!(emst2d(&[Point([0.0, 0.0]), Point([0.0, 2.0])]).len(), 1);
    }

    #[test]
    fn emst_is_subset_of_delaunay() {
        // Shamos–Hoey: every EMST edge is a Delaunay edge.
        let pts = random_points(200, 31);
        let tri = Triangulation::build(&pts).unwrap();
        let dedges: std::collections::HashSet<(u32, u32)> = tri.edges().into_iter().collect();
        let mst = emst2d(&pts);
        for e in &mst {
            assert!(
                dedges.contains(&(e.u, e.v)),
                "MST edge ({}, {}) missing from Delaunay",
                e.u,
                e.v
            );
        }
    }

    #[test]
    fn clustered_duplicated_coordinates() {
        // Points sharing x or y coordinates produce many collinear
        // subconfigurations.
        let mut rng = StdRng::seed_from_u64(5);
        let pts: Vec<Point<2>> = (0..400)
            .map(|_| Point([rng.gen_range(0..20) as f64, rng.gen_range(0..20) as f64]))
            .collect();
        let edges = emst2d(&pts);
        assert_eq!(edges.len(), pts.len() - 1);
        let want = prim_dense(pts.len(), 0, |u, v| pts[u as usize].dist(&pts[v as usize]));
        assert!((total_weight(&edges) - want.total_weight).abs() < 1e-9);
    }
}
