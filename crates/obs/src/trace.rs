//! Structured span tracing with per-thread atomic ring buffers.
//!
//! Design constraints, in priority order:
//!
//! 1. **Disabled cost is one branch.** `span!` compiles to a relaxed load
//!    of a global flag; when it is false the returned [`Span`] is inert
//!    and its `Drop` is a second branch. No clocks, no TLS, no locks.
//! 2. **Enabled cost is lock-free.** Each thread owns a ring of
//!    fixed-size event slots made of `AtomicU64` words. Recording is a
//!    handful of `Relaxed` stores plus one `Release` publish of the ring
//!    head; name interning touches a mutex only once per call site ever
//!    (the interned id is cached in a per-site `AtomicU32`).
//! 3. **Never UB, even if misused.** A drain racing with recorders can
//!    observe *torn events* (words from different spans) because slots are
//!    plain atomics, but never undefined behavior. The supported contract
//!    is a quiescent drain (see [`crate::export::drain`]); `repro` drains
//!    once after the timed work completes.
//!
//! Rings keep the newest [`RING_CAP`] events per thread and silently
//! overwrite older ones, which is why instrumentation sits at phase/batch
//! granularity, not per-BCCP-call.

use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// Events retained per thread (newest win). 8192 events × 32 B = 256 KiB.
pub const RING_CAP: usize = 1 << 13;

/// Sentinel for "span has no argument".
pub(crate) const NO_KEY: u32 = u32::MAX;

static ENABLED: AtomicBool = AtomicBool::new(false);

/// Turn span recording on. Idempotent; also pins the trace epoch.
pub fn enable() {
    let _ = epoch();
    ENABLED.store(true, Ordering::Relaxed);
}

/// Turn span recording off. Already-recorded events stay drainable.
pub fn disable() {
    ENABLED.store(false, Ordering::Relaxed);
}

/// Whether spans are currently recorded.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

fn epoch() -> &'static Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    EPOCH.get_or_init(Instant::now)
}

#[inline]
fn now_ns() -> u64 {
    epoch().elapsed().as_nanos() as u64
}

/// The global name interner: index ↔ `&'static str`. Only touched on the
/// first execution of each `span!` call site and during cold drains.
pub(crate) fn names() -> &'static Mutex<Vec<&'static str>> {
    static NAMES: OnceLock<Mutex<Vec<&'static str>>> = OnceLock::new();
    // analyze:allow(hotpath-lock) — interner mutex is constructed once and locked once per call site ever; the id is cached in Site afterwards
    NAMES.get_or_init(|| Mutex::new(Vec::new()))
}

/// Every ring ever registered, in thread-registration order; the index is
/// the Chrome-trace `tid`. Rings outlive their threads so a drain after a
/// pool shut down still sees their events.
pub(crate) fn rings() -> &'static Mutex<Vec<Arc<Ring>>> {
    static RINGS: OnceLock<Mutex<Vec<Arc<Ring>>>> = OnceLock::new();
    // analyze:allow(hotpath-lock) — ring registry is locked once per thread lifetime (registration) and during cold drains only
    RINGS.get_or_init(|| Mutex::new(Vec::new()))
}

/// One span event: 4 atomic words.
/// `w0` = `name_id << 32 | arg_key_id` (`arg_key_id == NO_KEY` ⇒ no arg),
/// `w1` = start ns since epoch, `w2` = duration ns, `w3` = arg value.
pub(crate) struct Slot {
    pub(crate) words: [AtomicU64; 4],
}

/// A per-thread event ring. `head` counts events ever pushed; slot
/// `head % RING_CAP` is overwritten next. Only the owning thread pushes;
/// the `Release` store on `head` publishes the slot words to an
/// `Acquire`-loading drainer.
pub(crate) struct Ring {
    pub(crate) slots: Box<[Slot]>,
    pub(crate) head: AtomicU64,
}

impl Ring {
    fn with_capacity(cap: usize) -> Ring {
        Ring {
            slots: (0..cap)
                .map(|_| Slot {
                    words: [
                        AtomicU64::new(0),
                        AtomicU64::new(0),
                        AtomicU64::new(0),
                        AtomicU64::new(0),
                    ],
                })
                .collect(),
            head: AtomicU64::new(0),
        }
    }

    #[inline]
    fn push(&self, w0: u64, w1: u64, w2: u64, w3: u64) {
        let h = self.head.load(Ordering::Relaxed);
        let slot = &self.slots[h as usize & (self.slots.len() - 1)];
        slot.words[0].store(w0, Ordering::Relaxed);
        slot.words[1].store(w1, Ordering::Relaxed);
        slot.words[2].store(w2, Ordering::Relaxed);
        slot.words[3].store(w3, Ordering::Relaxed);
        self.head.store(h + 1, Ordering::Release);
    }
}

thread_local! {
    static RING: Arc<Ring> = register_ring();
}

fn register_ring() -> Arc<Ring> {
    let ring = Arc::new(Ring::with_capacity(RING_CAP));
    // analyze:allow(hotpath-lock) — one lock per thread lifetime.
    let mut all = rings().lock().unwrap_or_else(|e| e.into_inner());
    all.push(Arc::clone(&ring));
    ring
}

/// A `span!` call site: the static name plus a cached interned id.
/// `u32::MAX` means "not yet interned".
pub struct Site {
    name: &'static str,
    id: AtomicU32,
}

impl Site {
    /// Const constructor so `span!` can embed a `static Site` per site.
    pub const fn new(name: &'static str) -> Site {
        Site {
            name,
            id: AtomicU32::new(u32::MAX),
        }
    }

    #[inline]
    fn id(&self) -> u32 {
        let cached = self.id.load(Ordering::Relaxed);
        if cached != u32::MAX {
            return cached;
        }
        self.intern_slow()
    }

    #[cold]
    fn intern_slow(&self) -> u32 {
        // analyze:allow(hotpath-lock) — runs once per call site ever; every later span hits the relaxed id cache above
        let mut names = names().lock().unwrap_or_else(|e| e.into_inner());
        let idx = match names.iter().position(|n| *n == self.name) {
            Some(i) => i as u32,
            None => {
                names.push(self.name);
                (names.len() - 1) as u32
            }
        };
        self.id.store(idx, Ordering::Relaxed);
        idx
    }
}

/// An in-flight span; records a complete event on drop. Inert (two
/// branches total) when tracing is disabled at creation.
#[must_use = "a span records its duration when dropped; bind it with `let _span = ...`"]
pub struct Span {
    meta: u64,
    start_ns: u64,
    arg_val: u64,
    armed: bool,
}

impl Drop for Span {
    #[inline]
    fn drop(&mut self) {
        if !self.armed {
            return;
        }
        let dur = now_ns().saturating_sub(self.start_ns);
        let (meta, start, val) = (self.meta, self.start_ns, self.arg_val);
        // During thread teardown the TLS ring may already be destroyed;
        // dropping the event beats aborting the process.
        let _ = RING.try_with(|r| r.push(meta, start, dur, val));
    }
}

/// Start a span at a static call site. Prefer the [`span!`] macro, which
/// declares the `Site` statics for you.
#[inline]
pub fn span_at(site: &'static Site, arg: Option<(&'static Site, u64)>) -> Span {
    if !ENABLED.load(Ordering::Relaxed) {
        return Span {
            meta: 0,
            start_ns: 0,
            arg_val: 0,
            armed: false,
        };
    }
    let name = site.id() as u64;
    let (key, val) = match arg {
        Some((k, v)) => (k.id(), v),
        None => (NO_KEY, 0),
    };
    Span {
        meta: name << 32 | key as u64,
        start_ns: now_ns(),
        arg_val: val,
        armed: true,
    }
}

/// Record a timed span over the enclosing scope:
///
/// ```
/// # fn build_tree() {}
/// let _span = parclust_obs::span!("kdtree.build");
/// let _span = parclust_obs::span!("wspd.batch", pairs = 128usize);
/// build_tree();
/// ```
///
/// The optional `key = value` argument is stored as a `u64` and exported
/// into the Chrome-trace `args` object.
#[macro_export]
macro_rules! span {
    ($name:literal) => {{
        static __PARCLUST_SITE: $crate::trace::Site = $crate::trace::Site::new($name);
        $crate::trace::span_at(&__PARCLUST_SITE, ::core::option::Option::None)
    }};
    ($name:literal, $key:ident = $val:expr) => {{
        static __PARCLUST_SITE: $crate::trace::Site = $crate::trace::Site::new($name);
        static __PARCLUST_KEY: $crate::trace::Site =
            $crate::trace::Site::new(::core::stringify!($key));
        $crate::trace::span_at(
            &__PARCLUST_SITE,
            ::core::option::Option::Some((&__PARCLUST_KEY, ($val) as u64)),
        )
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_spans_record_nothing() {
        disable();
        let before: u64 = rings()
            .lock()
            .unwrap()
            .iter()
            .map(|r| r.head.load(Ordering::Acquire))
            .sum();
        {
            let _s = crate::span!("test.disabled");
        }
        let after: u64 = rings()
            .lock()
            .unwrap()
            .iter()
            .map(|r| r.head.load(Ordering::Acquire))
            .sum();
        assert_eq!(before, after);
    }

    #[test]
    fn site_interning_is_idempotent() {
        static S: Site = Site::new("test.intern");
        let a = S.id();
        let b = S.id();
        assert_eq!(a, b);
        assert_eq!(names().lock().unwrap()[a as usize], "test.intern");
        // A second Site with the same name resolves to the same id.
        static S2: Site = Site::new("test.intern");
        assert_eq!(S2.id(), a);
    }

    #[test]
    fn ring_overwrites_oldest() {
        let r = Ring::with_capacity(4);
        for i in 0..6u64 {
            r.push(i, i, i, i);
        }
        assert_eq!(r.head.load(Ordering::Acquire), 6);
        // Newest 4 events are 2..6; event i lands in slot i & (cap - 1).
        for i in 2..6u64 {
            assert_eq!(r.slots[i as usize % 4].words[0].load(Ordering::Relaxed), i);
        }
    }
}
