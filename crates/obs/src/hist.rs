//! Fixed-bucket latency histogram over integer nanoseconds.
//!
//! The bucket layout is chosen at construction and never changes, so the
//! hot path is a binary search over the (immutable) bounds followed by
//! three `Relaxed` `fetch_add`s — no locks, no allocation, and safe to
//! share across any number of recording threads behind an `Arc`.
//!
//! Readers (`/metrics` rendering, quantile estimation) take racy `Relaxed`
//! snapshots: totals may lag in-flight increments by a few events, which
//! is the standard Prometheus contract for lock-free collectors.

use std::sync::atomic::{AtomicU64, Ordering};

/// A concurrent fixed-bucket histogram. Bucket `i` counts observations
/// `v <= bounds[i]` (and `> bounds[i-1]`); one extra overflow bucket
/// counts everything above the last bound, mirroring Prometheus'
/// `le="+Inf"`.
pub struct Histogram {
    bounds: Vec<u64>,
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum_ns: AtomicU64,
}

impl Histogram {
    /// Build a histogram from ascending, deduplicated upper bounds.
    pub fn new(bounds: Vec<u64>) -> Histogram {
        debug_assert!(bounds.windows(2).all(|w| w[0] < w[1]), "bounds ascending");
        let mut buckets = Vec::with_capacity(bounds.len() + 1);
        for _ in 0..=bounds.len() {
            buckets.push(AtomicU64::new(0));
        }
        Histogram {
            bounds,
            buckets,
            count: AtomicU64::new(0),
            sum_ns: AtomicU64::new(0),
        }
    }

    /// The default latency layout: log-spaced (factor 2) bounds from 1 µs
    /// to ~134 s. Covers everything from a cache-hit route handler to a
    /// full clustering rebuild without tuning.
    pub fn latency_default() -> Histogram {
        let mut bounds = Vec::with_capacity(28);
        for k in 0..28u32 {
            bounds.push(1_000u64 << k);
        }
        Histogram::new(bounds)
    }

    /// Record one observation, in nanoseconds. Lock-free; `Relaxed`.
    #[inline]
    pub fn record_ns(&self, ns: u64) {
        let idx = self.bounds.partition_point(|&b| b < ns);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_ns.fetch_add(ns, Ordering::Relaxed);
    }

    /// Total observations recorded.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all observations, in nanoseconds.
    pub fn sum_ns(&self) -> u64 {
        self.sum_ns.load(Ordering::Relaxed)
    }

    /// The bucket upper bounds (exclusive of the implicit overflow bucket).
    pub fn bounds(&self) -> &[u64] {
        &self.bounds
    }

    /// Per-bucket counts, overflow bucket last. Racy snapshot.
    pub fn bucket_counts(&self) -> Vec<u64> {
        let mut out = Vec::with_capacity(self.buckets.len());
        for bucket in &self.buckets {
            out.push(bucket.load(Ordering::Relaxed));
        }
        out
    }

    /// Estimate the `q`-quantile (0.0..=1.0) in nanoseconds as the upper
    /// bound of the bucket containing the target rank — a conservative
    /// (never under-reporting) estimate. Observations in the overflow
    /// bucket saturate to the last finite bound. Returns 0 when empty.
    pub fn quantile_ns(&self, q: f64) -> u64 {
        let count = self.count();
        if count == 0 {
            return 0;
        }
        let target = ((q * count as f64).ceil() as u64).clamp(1, count);
        let mut cum = 0u64;
        for (i, bucket) in self.buckets.iter().enumerate() {
            cum += bucket.load(Ordering::Relaxed);
            if cum >= target {
                return self.bounds.get(i).copied().unwrap_or_else(|| {
                    self.bounds.last().copied().unwrap_or(0) // overflow bucket
                });
            }
        }
        // Racy snapshot undercounted buckets relative to `count`.
        self.bounds.last().copied().unwrap_or(0)
    }

    /// `quantile_ns` converted to milliseconds, for report JSON.
    pub fn quantile_ms(&self, q: f64) -> f64 {
        self.quantile_ns(q) as f64 / 1e6
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn bucket_boundaries_are_le_exact() {
        let h = Histogram::new(vec![10, 100, 1000]);
        h.record_ns(10); // == bound 0 → bucket 0 (le semantics)
        h.record_ns(11); // > bound 0 → bucket 1
        h.record_ns(100); // == bound 1 → bucket 1
        h.record_ns(1000); // == bound 2 → bucket 2
        h.record_ns(1001); // overflow
        h.record_ns(0); // below everything → bucket 0
        assert_eq!(h.bucket_counts(), vec![2, 2, 1, 1]);
        assert_eq!(h.count(), 6);
        assert_eq!(h.sum_ns(), 10 + 11 + 100 + 1000 + 1001);
    }

    #[test]
    fn concurrent_increments_match_serial_truth() {
        let h = Arc::new(Histogram::latency_default());
        let per_thread = 10_000u64;
        let threads = 8u64;
        std::thread::scope(|s| {
            for t in 0..threads {
                let h = Arc::clone(&h);
                s.spawn(move || {
                    for i in 0..per_thread {
                        // Deterministic spread across many buckets.
                        h.record_ns((t * per_thread + i) * 37 + 500);
                    }
                });
            }
        });
        let n = threads * per_thread;
        assert_eq!(h.count(), n);
        let serial_sum: u64 = (0..n).map(|j| j * 37 + 500).sum();
        assert_eq!(h.sum_ns(), serial_sum);
        assert_eq!(h.bucket_counts().iter().sum::<u64>(), n);
    }

    #[test]
    fn quantiles_are_bucket_upper_bounds() {
        let h = Histogram::new(vec![10, 100, 1000]);
        for _ in 0..90 {
            h.record_ns(5); // bucket 0
        }
        for _ in 0..10 {
            h.record_ns(500); // bucket 2
        }
        assert_eq!(h.quantile_ns(0.5), 10);
        assert_eq!(h.quantile_ns(0.90), 10);
        assert_eq!(h.quantile_ns(0.99), 1000);
        assert_eq!(h.quantile_ms(0.99), 1000.0 / 1e6);
        // Empty histogram reports 0, not garbage.
        assert_eq!(Histogram::new(vec![10]).quantile_ns(0.5), 0);
    }

    #[test]
    fn overflow_quantile_saturates_to_last_bound() {
        let h = Histogram::new(vec![10]);
        h.record_ns(1_000_000);
        assert_eq!(h.quantile_ns(0.5), 10);
    }
}
