//! parclust-obs: std-only observability primitives shared by the pipeline,
//! the thread-pool shim's consumers, and the serving stack.
//!
//! Three pieces, all allocation-free on their hot paths:
//!
//! * [`hist::Histogram`] — fixed-bucket, log-spaced latency histogram over
//!   integer nanoseconds. All increments are `Relaxed` on pre-sized atomic
//!   slots, so concurrent recorders never contend on a lock. The same
//!   struct backs the `/metrics` Prometheus exposition and `loadgen`'s
//!   p50/p90/p99 report.
//! * [`trace`] — a lightweight span API (`span!("wspd.batch", pairs = n)`)
//!   recording into per-thread atomic ring buffers. When tracing is
//!   disabled the entire cost of a span is a single relaxed load and
//!   branch.
//! * [`export`] — cold-path drain of the rings into Chrome-trace-format
//!   JSON (`chrome://tracing` / Perfetto `"traceEvents"` shape), used by
//!   `repro --trace out.json`.
//!
//! The crate is dependency-free (std only) so every tier — including the
//! rayon shim's *consumers* — can link it without cycles. The shim itself
//! keeps its own counters (see `rayon::ThreadPool::metrics`) for the same
//! reason.

pub mod export;
pub mod hist;
pub mod trace;

pub use export::{to_chrome_json, TraceEvent};
pub use hist::Histogram;
pub use trace::{Site, Span};
