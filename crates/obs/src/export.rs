//! Cold-path trace drain and Chrome-trace JSON export.
//!
//! The supported drain contract is *quiescent*: stop issuing spans (join
//! or idle your worker threads) before draining, otherwise an event whose
//! ring slot is being overwritten concurrently can read torn — wrong
//! values, never undefined behavior. `repro --trace` drains once after
//! all timed work completes.

use crate::trace::{self, NO_KEY, RING_CAP};
use std::sync::atomic::Ordering;

/// One drained span event. `tid` is the ring (thread) registration index.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    pub name: &'static str,
    pub tid: u32,
    pub ts_ns: u64,
    pub dur_ns: u64,
    pub arg: Option<(&'static str, u64)>,
}

/// Drain every registered ring into a time-sorted event list. Each ring
/// yields its newest `RING_CAP` events (older ones were overwritten).
pub fn drain() -> Vec<TraceEvent> {
    let names = trace::names()
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .clone();
    let rings = trace::rings()
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .clone();
    let mut out = Vec::new();
    for (tid, ring) in rings.iter().enumerate() {
        let head = ring.head.load(Ordering::Acquire);
        let start = head.saturating_sub(RING_CAP as u64);
        for i in start..head {
            let slot = &ring.slots[i as usize & (ring.slots.len() - 1)];
            let w0 = slot.words[0].load(Ordering::Relaxed);
            let name_id = (w0 >> 32) as usize;
            let key_id = w0 as u32;
            let Some(&name) = names.get(name_id) else {
                continue; // torn or pre-enable slot; skip rather than lie
            };
            let arg = if key_id == NO_KEY {
                None
            } else {
                names
                    .get(key_id as usize)
                    .map(|&k| (k, slot.words[3].load(Ordering::Relaxed)))
            };
            out.push(TraceEvent {
                name,
                tid: tid as u32,
                ts_ns: slot.words[1].load(Ordering::Relaxed),
                dur_ns: slot.words[2].load(Ordering::Relaxed),
                arg,
            });
        }
    }
    out.sort_by_key(|e| (e.ts_ns, e.tid, e.dur_ns));
    out
}

/// Render events as Chrome trace format ("X" complete events, timestamps
/// in microseconds), loadable in `chrome://tracing` and Perfetto.
pub fn to_chrome_json(events: &[TraceEvent]) -> String {
    let mut out = String::with_capacity(events.len() * 96 + 64);
    out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
    for (i, e) in events.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"name\":\"");
        escape_into(e.name, &mut out);
        out.push_str("\",\"cat\":\"parclust\",\"ph\":\"X\",\"pid\":1,\"tid\":");
        push_u64(e.tid as u64, &mut out);
        out.push_str(",\"ts\":");
        push_micros(e.ts_ns, &mut out);
        out.push_str(",\"dur\":");
        push_micros(e.dur_ns, &mut out);
        if let Some((key, val)) = e.arg {
            out.push_str(",\"args\":{\"");
            escape_into(key, &mut out);
            out.push_str("\":");
            push_u64(val, &mut out);
            out.push('}');
        }
        out.push('}');
    }
    out.push_str("]}");
    out
}

/// Convenience: drain all rings and render in one call.
pub fn drain_chrome_json() -> String {
    to_chrome_json(&drain())
}

fn push_u64(v: u64, out: &mut String) {
    let mut buf = [0u8; 20];
    let mut i = buf.len();
    let mut v = v;
    loop {
        i -= 1;
        buf[i] = b'0' + (v % 10) as u8;
        v /= 10;
        if v == 0 {
            break;
        }
    }
    for &b in &buf[i..] {
        out.push(b as char);
    }
}

/// Nanoseconds rendered as fractional microseconds (`1234567` → `1234.567`).
fn push_micros(ns: u64, out: &mut String) {
    push_u64(ns / 1_000, out);
    let frac = ns % 1_000;
    out.push('.');
    out.push((b'0' + (frac / 100) as u8) as char);
    out.push((b'0' + (frac / 10 % 10) as u8) as char);
    out.push((b'0' + (frac % 10) as u8) as char);
}

fn escape_into(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                out.push_str("\\u00");
                let b = c as u32;
                out.push(char::from_digit(b >> 4, 16).unwrap_or('0'));
                out.push(char::from_digit(b & 0xf, 16).unwrap_or('0'));
            }
            c => out.push(c),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_drain_in_time_order_with_args() {
        crate::trace::enable();
        {
            let _outer = crate::span!("test.outer");
            let _inner = crate::span!("test.inner", pairs = 42usize);
        }
        crate::trace::disable();
        let events = drain();
        let outer = events.iter().find(|e| e.name == "test.outer").unwrap();
        let inner = events.iter().find(|e| e.name == "test.inner").unwrap();
        assert!(outer.ts_ns <= inner.ts_ns, "outer starts first");
        assert!(outer.dur_ns >= inner.dur_ns, "outer encloses inner");
        assert_eq!(inner.arg, Some(("pairs", 42u64)));
        assert_eq!(outer.arg, None);
        let sorted: Vec<u64> = events.iter().map(|e| e.ts_ns).collect();
        assert!(sorted.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn chrome_json_is_valid_and_complete() {
        let events = vec![
            TraceEvent {
                name: "a.b",
                tid: 0,
                ts_ns: 1_234_567,
                dur_ns: 890,
                arg: Some(("n", 7)),
            },
            TraceEvent {
                name: "weird\"name\\",
                tid: 3,
                ts_ns: 0,
                dur_ns: 0,
                arg: None,
            },
        ];
        let json = to_chrome_json(&events);
        let v: serde_json::Value = serde_json::from_str(&json).expect("valid JSON");
        let evs = v.get("traceEvents").unwrap().as_array().unwrap();
        assert_eq!(evs.len(), 2);
        assert_eq!(evs[0].get("name").unwrap().as_str(), Some("a.b"));
        assert_eq!(evs[0].get("ph").unwrap().as_str(), Some("X"));
        assert_eq!(
            evs[0].get("ts").unwrap().as_f64().unwrap(),
            1234.567,
            "ns → µs"
        );
        assert_eq!(
            evs[0].get("args").unwrap().get("n").unwrap().as_f64(),
            Some(7.0)
        );
        assert_eq!(
            evs[1].get("name").unwrap().as_str(),
            Some("weird\"name\\"),
            "escaping round-trips"
        );
    }

    #[test]
    fn multithreaded_spans_get_distinct_tids() {
        crate::trace::enable();
        std::thread::scope(|s| {
            for _ in 0..2 {
                s.spawn(|| {
                    let _sp = crate::span!("test.mt");
                });
            }
        });
        crate::trace::disable();
        let events = drain();
        let tids: std::collections::BTreeSet<u32> = events
            .iter()
            .filter(|e| e.name == "test.mt")
            .map(|e| e.tid)
            .collect();
        assert!(tids.len() >= 2, "each thread records into its own ring");
    }
}
