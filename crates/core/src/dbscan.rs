//! Direct DBSCAN\* at a fixed ε — the workflow the paper's introduction
//! argues *against* repeating ("many different values of ε need to be
//! explored"), implemented so the repository can quantify that argument:
//! `k` parameter probes cost `k` full clusterings here versus one
//! HDBSCAN\* hierarchy plus `k` ε-cuts
//! ([`crate::dendrogram::dbscan_star_labels`]).
//!
//! Algorithm: parallel core-point test via kd-tree range counting, then
//! component labeling over core points with radius queries (each core
//! point unions with its core neighbors within ε). `O(n · q)` work where
//! `q` is the range-query cost.

use parclust_geom::Point;
use parclust_kdtree::KdTree;
use parclust_primitives::unionfind::UnionFind;
use rayon::prelude::*;

use crate::dendrogram::NOISE;

/// DBSCAN\* labels (Campello et al.'s border-point-free DBSCAN): core
/// points — those with at least `min_pts` neighbors within `eps`,
/// including themselves — cluster by ε-connectivity; everything else is
/// [`NOISE`]. Labels are consecutive from 0.
pub fn dbscan_star_direct<const D: usize>(
    points: &[Point<D>],
    min_pts: usize,
    eps: f64,
) -> Vec<u32> {
    let n = points.len();
    if n == 0 {
        return Vec::new();
    }
    let tree = KdTree::build(points);

    // Parallel core test.
    let is_core: Vec<bool> = points
        .par_iter()
        .map(|p| tree.count_within_radius(p, eps) >= min_pts)
        .collect();

    // Parallel neighbor harvest for core points, then a sequential union
    // sweep (the same batched pattern as parallel Kruskal).
    let neighbor_lists: Vec<(u32, Vec<u32>)> = (0..n as u32)
        .into_par_iter()
        .filter(|&i| is_core[i as usize])
        .map(|i| {
            let nbrs = tree
                .within_radius(&points[i as usize], eps)
                .into_iter()
                .filter(|&j| j > i && is_core[j as usize])
                .collect();
            (i, nbrs)
        })
        .collect();
    let mut uf = UnionFind::new(n);
    for (i, nbrs) in &neighbor_lists {
        for &j in nbrs {
            uf.union(*i, j);
        }
    }

    // Compact labels over core points.
    let mut label_of_root = parclust_primitives::hash::FastMap::default();
    let mut next = 0u32;
    let mut labels = vec![NOISE; n];
    for i in 0..n {
        if is_core[i] {
            let r = uf.find(i as u32);
            let l = *label_of_root.entry(r).or_insert_with(|| {
                let l = next;
                next += 1;
                l
            });
            labels[i] = l;
        }
    }
    labels
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dendrogram::{dbscan_star_labels, dendrogram_par};
    use crate::hdbscan::hdbscan_memogfk;
    use rand::prelude::*;

    fn random_points(n: usize, seed: u64) -> Vec<Point<2>> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| Point([rng.gen_range(0.0..30.0), rng.gen_range(0.0..30.0)]))
            .collect()
    }

    /// Same-partition check up to label renaming.
    fn assert_same_clustering(a: &[u32], b: &[u32]) {
        assert_eq!(a.len(), b.len());
        let mut fwd = std::collections::HashMap::new();
        let mut bwd = std::collections::HashMap::new();
        for (&x, &y) in a.iter().zip(b) {
            assert_eq!(x == NOISE, y == NOISE, "noise sets differ");
            if x == NOISE {
                continue;
            }
            assert_eq!(*fwd.entry(x).or_insert(y), y, "label {x} split");
            assert_eq!(*bwd.entry(y).or_insert(x), x, "label {y} merged");
        }
    }

    #[test]
    fn direct_matches_hierarchy_extraction() {
        // The paper's core equivalence: cutting the HDBSCAN* hierarchy at ε
        // yields exactly DBSCAN* at ε.
        let pts = random_points(600, 1);
        for min_pts in [3, 8] {
            let h = hdbscan_memogfk(&pts, min_pts);
            let dend = dendrogram_par(pts.len(), &h.edges, 0);
            for eps in [0.4, 0.9, 1.8, 5.0] {
                let direct = dbscan_star_direct(&pts, min_pts, eps);
                let via_tree = dbscan_star_labels(&dend, &h.core_distances, eps);
                assert_same_clustering(&direct, &via_tree);
            }
        }
    }

    #[test]
    fn all_noise_and_all_one_cluster() {
        let pts = random_points(100, 2);
        let tiny = dbscan_star_direct(&pts, 5, 1e-9);
        assert!(tiny.iter().all(|&l| l == NOISE));
        let huge = dbscan_star_direct(&pts, 5, 1e9);
        assert!(huge.iter().all(|&l| l == 0));
    }

    #[test]
    fn empty_input() {
        assert!(dbscan_star_direct::<2>(&[], 5, 1.0).is_empty());
    }
}
