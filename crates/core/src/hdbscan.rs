//! HDBSCAN\*: MSTs of the mutual reachability graph (Section 3.2).
//!
//! The HDBSCAN\* hierarchy is computed from an MST of the complete graph
//! weighted by mutual reachability distances
//! `d_m(p, q) = max{cd(p), cd(q), d(p, q)}`, where the core distance
//! `cd(p)` is the distance to `p`'s `minPts`-th nearest neighbor (including
//! itself). Two drivers:
//!
//! * [`hdbscan_gantao`] — the parallelized **exact** Gan–Tao baseline
//!   (§3.2.1): the *standard* geometric well-separation (s = 2) with exact
//!   BCCP\* computations, run through the MemoGFK machinery.
//! * [`hdbscan_memogfk`] — the paper's improved algorithm (§3.2.2): the new
//!   definition of well-separation (geometrically-separated OR
//!   mutually-unreachable), which terminates the WSPD recursion earlier and
//!   materializes asymptotically fewer pairs (`O(n · minPts)` space by
//!   Theorem 3.3).
//!
//! Both return the MST plus the core distances; feed the result to
//! [`crate::dendrogram`] for the cluster hierarchy, reachability plot, and
//! flat extractions.

use parclust_geom::Point;
use parclust_kdtree::KdTree;
use parclust_mst::{total_weight, Edge};
use parclust_wspd::policy::core_distance_annotations;
use parclust_wspd::{MutualReachSep, SepMode};

use crate::drivers::{edges_to_original, wspd_mst_memogfk, wspd_mst_streaming};
use crate::stats::Stats;

/// Which MST engine a HDBSCAN\* driver runs on top of the chosen
/// separation policy.
#[derive(Debug, Clone, Copy)]
enum MstEngine {
    /// MemoGFK (Algorithm 3) — the in-memory default.
    Memo,
    /// Bounded-memory streaming batches of at most this many pairs.
    Streaming(usize),
}

/// MST of the mutual reachability graph plus the quantities needed to build
/// the HDBSCAN\* hierarchy.
#[derive(Debug, Clone)]
pub struct HdbscanMst {
    /// `minPts` used for core distances.
    pub min_pts: usize,
    /// MST edges over original point indices, canonical `(w, u, v)` order;
    /// weights are mutual reachability distances.
    pub edges: Vec<Edge>,
    /// Core distance of every point (original index order) — the weights of
    /// the dendrogram's self-edges.
    pub core_distances: Vec<f64>,
    pub total_weight: f64,
    pub stats: Stats,
}

/// Core distances of all points: distance to the `min_pts`-th nearest
/// neighbor, **including the point itself** (so `min_pts = 1` gives all
/// zeros). `min_pts` larger than the point count clamps to it (every point
/// then has the distance to the farthest point as its core distance).
/// Parallel kNN over a kd-tree.
pub fn core_distances<const D: usize>(points: &[Point<D>], min_pts: usize) -> Vec<f64> {
    if points.is_empty() {
        return Vec::new();
    }
    let tree = KdTree::build(points);
    core_distances_with_tree(&tree, min_pts)
}

fn core_distances_with_tree<const D: usize>(tree: &KdTree<D>, min_pts: usize) -> Vec<f64> {
    let knn = tree.knn_all(min_pts);
    (0..tree.len()).map(|i| knn.kth_dist(i)).collect()
}

fn hdbscan_driver<const D: usize>(
    points: &[Point<D>],
    min_pts: usize,
    mode: SepMode,
    engine: MstEngine,
) -> HdbscanMst {
    hdbscan_driver_with(points, min_pts, mode, engine, None)
}

fn hdbscan_driver_with<const D: usize>(
    points: &[Point<D>],
    min_pts: usize,
    mode: SepMode,
    engine: MstEngine,
    precomputed_cd: Option<&[f64]>,
) -> HdbscanMst {
    assert!(min_pts >= 1, "minPts must be at least 1");
    let t0 = std::time::Instant::now();
    let mut stats = Stats::default();
    let n = points.len();
    if n < 2 {
        stats.total = t0.elapsed().as_secs_f64();
        return HdbscanMst {
            min_pts,
            edges: Vec::new(),
            core_distances: vec![0.0; n],
            total_weight: 0.0,
            stats,
        };
    }

    let tree = Stats::time(&mut stats.build_tree, || KdTree::build(points));

    // Core distances (original order), remapped to permuted positions for
    // the policy, plus the per-node min/max annotations of §3.2.2.
    let cd_orig = match precomputed_cd {
        Some(cd) => {
            assert_eq!(
                cd.len(),
                n,
                "precomputed core distances must cover all points"
            );
            cd.to_vec()
        }
        None => Stats::time(&mut stats.core_dist, || {
            core_distances_with_tree(&tree, min_pts)
        }),
    };
    let (cd_pos, cd_min, cd_max) = Stats::time(&mut stats.core_dist, || {
        let cd_pos: Vec<f64> = tree.idx.iter().map(|&o| cd_orig[o as usize]).collect();
        let (cd_min, cd_max) = core_distance_annotations(&tree, &cd_pos);
        (cd_pos, cd_min, cd_max)
    });

    let policy = MutualReachSep::new(mode, &cd_pos, &cd_min, &cd_max);
    let edges = match engine {
        MstEngine::Memo => wspd_mst_memogfk(&tree, &policy, &mut stats),
        MstEngine::Streaming(cap) => wspd_mst_streaming(&tree, &policy, &mut stats, cap),
    };
    let edges = edges_to_original(&tree, edges);
    stats.total = t0.elapsed().as_secs_f64();
    HdbscanMst {
        min_pts,
        total_weight: total_weight(&edges),
        edges,
        core_distances: cd_orig,
        stats,
    }
}

/// HDBSCAN\* MST via the improved algorithm (§3.2.2): new well-separation,
/// MemoGFK, exact BCCP\*. The paper's recommended method.
pub fn hdbscan_memogfk<const D: usize>(points: &[Point<D>], min_pts: usize) -> HdbscanMst {
    hdbscan_driver(points, min_pts, SepMode::Combined, MstEngine::Memo)
}

/// HDBSCAN\* MST via the parallelized exact Gan–Tao baseline (§3.2.1):
/// standard well-separation, MemoGFK, exact BCCP\*.
pub fn hdbscan_gantao<const D: usize>(points: &[Point<D>], min_pts: usize) -> HdbscanMst {
    hdbscan_driver(points, min_pts, SepMode::Standard, MstEngine::Memo)
}

/// HDBSCAN\* MST via the bounded-memory streaming pipeline (new
/// well-separation of §3.2.2, pair batches of at most `max_batch_pairs`,
/// streaming Kruskal merges). Bit-identical to [`hdbscan_memogfk`] for
/// every batch size — pinned by `tests/streaming_semantics.rs`.
pub fn hdbscan_streaming<const D: usize>(
    points: &[Point<D>],
    min_pts: usize,
    max_batch_pairs: usize,
) -> HdbscanMst {
    hdbscan_driver(
        points,
        min_pts,
        SepMode::Combined,
        MstEngine::Streaming(max_batch_pairs),
    )
}

/// Streaming HDBSCAN\* under the *standard* (Gan–Tao) well-separation —
/// the streamed counterpart of [`hdbscan_gantao`], used to pin that the
/// streaming path is exact for both separation definitions.
pub fn hdbscan_gantao_streaming<const D: usize>(
    points: &[Point<D>],
    min_pts: usize,
    max_batch_pairs: usize,
) -> HdbscanMst {
    hdbscan_driver(
        points,
        min_pts,
        SepMode::Standard,
        MstEngine::Streaming(max_batch_pairs),
    )
}

/// Compute the HDBSCAN\* MST. Alias for [`hdbscan_memogfk`].
pub fn hdbscan<const D: usize>(points: &[Point<D>], min_pts: usize) -> HdbscanMst {
    hdbscan_memogfk(points, min_pts)
}

/// [`hdbscan_memogfk`] with caller-supplied core distances — the
/// incremental-update entry point (`parclust-dyn` reuses the core distances
/// of points a mutation provably cannot affect).
///
/// Contract: `core_distances[i]` must equal, **bit for bit**, the value
/// [`core_distances`](crate::core_distances)`(points, min_pts)[i]` would
/// produce. Core distances are a property of the point *multiset* (the
/// k-th smallest computed squared distance, then one `sqrt`), independent
/// of kd-tree shape or visit order, so values carried over from a previous
/// build satisfy this whenever the mutation left the point's k-NN distance
/// unchanged. Feeding values that violate the contract yields an MST of a
/// different mutual-reachability graph — consistent, but not HDBSCAN\* of
/// `points`.
pub fn hdbscan_memogfk_with_cds<const D: usize>(
    points: &[Point<D>],
    min_pts: usize,
    core_distances: &[f64],
) -> HdbscanMst {
    hdbscan_driver_with(
        points,
        min_pts,
        SepMode::Combined,
        MstEngine::Memo,
        Some(core_distances),
    )
}

/// [`hdbscan_streaming`] with caller-supplied core distances; the same
/// contract as [`hdbscan_memogfk_with_cds`]. Pair batches are capped at
/// `max_batch_pairs` live pairs and merged through the streaming Kruskal
/// forest, so incremental updates inherit the bounded-memory pipeline.
pub fn hdbscan_streaming_with_cds<const D: usize>(
    points: &[Point<D>],
    min_pts: usize,
    max_batch_pairs: usize,
    core_distances: &[f64],
) -> HdbscanMst {
    hdbscan_driver_with(
        points,
        min_pts,
        SepMode::Combined,
        MstEngine::Streaming(max_batch_pairs),
        Some(core_distances),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use parclust_mst::prim_dense;
    use rand::prelude::*;

    fn random_points<const D: usize>(n: usize, seed: u64) -> Vec<Point<D>> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                let mut c = [0.0; D];
                for x in c.iter_mut() {
                    *x = rng.gen_range(-100.0..100.0);
                }
                Point(c)
            })
            .collect()
    }

    pub(crate) fn brute_core_distances<const D: usize>(
        pts: &[Point<D>],
        min_pts: usize,
    ) -> Vec<f64> {
        let n = pts.len();
        (0..n)
            .map(|i| {
                let mut d: Vec<f64> = (0..n).map(|j| pts[i].dist(&pts[j])).collect();
                d.sort_by(|a, b| a.partial_cmp(b).unwrap());
                d[min_pts.min(n) - 1]
            })
            .collect()
    }

    fn oracle_mst_weight<const D: usize>(pts: &[Point<D>], min_pts: usize) -> f64 {
        let cd = brute_core_distances(pts, min_pts);
        prim_dense(pts.len(), 0, |u, v| {
            let d = pts[u as usize].dist(&pts[v as usize]);
            d.max(cd[u as usize]).max(cd[v as usize])
        })
        .total_weight
    }

    fn assert_close(a: f64, b: f64, what: &str) {
        assert!(
            (a - b).abs() <= 1e-9 * (1.0 + a.abs().max(b.abs())),
            "{what}: {a} vs {b}"
        );
    }

    #[test]
    fn core_distances_match_brute_force() {
        let pts = random_points::<3>(200, 3);
        for min_pts in [1, 2, 5, 10] {
            let got = core_distances(&pts, min_pts);
            let want = brute_core_distances(&pts, min_pts);
            for i in 0..pts.len() {
                assert_close(got[i], want[i], &format!("cd[{i}] minPts={min_pts}"));
            }
        }
    }

    #[test]
    fn core_distance_minpts_one_is_zero() {
        let pts = random_points::<2>(50, 4);
        assert!(core_distances(&pts, 1).iter().all(|&c| c == 0.0));
    }

    #[test]
    fn both_variants_match_oracle_2d() {
        for seed in 0..3 {
            let pts = random_points::<2>(180, seed);
            for min_pts in [3, 10] {
                let want = oracle_mst_weight(&pts, min_pts);
                let memo = hdbscan_memogfk(&pts, min_pts);
                let gan = hdbscan_gantao(&pts, min_pts);
                assert_close(memo.total_weight, want, "memogfk");
                assert_close(gan.total_weight, want, "gantao");
                assert_eq!(memo.edges.len(), pts.len() - 1);
                assert_eq!(gan.edges.len(), pts.len() - 1);
            }
        }
    }

    #[test]
    fn both_variants_match_oracle_5d() {
        let pts = random_points::<5>(150, 7);
        let want = oracle_mst_weight(&pts, 10);
        assert_close(hdbscan_memogfk(&pts, 10).total_weight, want, "memogfk 5d");
        assert_close(hdbscan_gantao(&pts, 10).total_weight, want, "gantao 5d");
    }

    #[test]
    fn minpts_one_equals_emst() {
        // §2.1: "the HDBSCAN* MST with minPts = 1 is equivalent to the EMST".
        let pts = random_points::<3>(200, 9);
        let h = hdbscan_memogfk(&pts, 1);
        let e = crate::emst::emst_memogfk(&pts);
        assert_close(h.total_weight, e.total_weight, "minPts=1 vs EMST");
    }

    #[test]
    fn new_separation_materializes_fewer_pairs() {
        // §5: the new definition yields 2.5–10.29x fewer well-separated
        // pairs; at this scale we require strictly fewer.
        let pts = random_points::<2>(2000, 12);
        let memo = hdbscan_memogfk(&pts, 10);
        let gan = hdbscan_gantao(&pts, 10);
        assert!(
            memo.stats.pairs_materialized < gan.stats.pairs_materialized,
            "combined {} vs standard {}",
            memo.stats.pairs_materialized,
            gan.stats.pairs_materialized
        );
    }

    #[test]
    fn hand_computed_line_example() {
        // Collinear points at x = 0, 1, 3, 7.
        let pts: Vec<Point<2>> = [0.0, 1.0, 3.0, 7.0]
            .iter()
            .map(|&x| Point([x, 0.0]))
            .collect();
        // minPts = 2: cd = [1, 1, 2, 4]; d_m(0,1)=1, d_m(1,2)=2, d_m(2,3)=4.
        let h = hdbscan_memogfk(&pts, 2);
        assert_close(h.total_weight, 7.0, "minPts=2 line");
        assert_eq!(h.core_distances, vec![1.0, 1.0, 2.0, 4.0]);
        // minPts = 3: cd = [3, 2, 3, 6]; d_m(0,1) = d_m(1,2) = 3,
        // d_m(2,3) = 6 → MST weight 12.
        let h = hdbscan_memogfk(&pts, 3);
        assert_eq!(h.core_distances, vec![3.0, 2.0, 3.0, 6.0]);
        assert_close(h.total_weight, 12.0, "minPts=3 line");
    }

    #[test]
    fn streaming_variants_match_in_memory_bitwise() {
        let pts = random_points::<2>(500, 41);
        for min_pts in [2usize, 10] {
            let memo = hdbscan_memogfk(&pts, min_pts);
            let gan = hdbscan_gantao(&pts, min_pts);
            for cap in [17usize, 4096] {
                for (got, want, name) in [
                    (hdbscan_streaming(&pts, min_pts, cap), &memo, "combined"),
                    (
                        hdbscan_gantao_streaming(&pts, min_pts, cap),
                        &gan,
                        "standard",
                    ),
                ] {
                    assert_eq!(got.edges.len(), want.edges.len(), "{name} cap={cap}");
                    for (a, b) in got.edges.iter().zip(&want.edges) {
                        assert_eq!(
                            (a.u, a.v, a.w.to_bits()),
                            (b.u, b.v, b.w.to_bits()),
                            "{name} cap={cap}"
                        );
                    }
                    assert_eq!(got.core_distances, want.core_distances);
                }
            }
        }
    }

    #[test]
    fn precomputed_cds_reproduce_the_standard_driver_bitwise() {
        let pts = random_points::<2>(300, 77);
        for min_pts in [1usize, 4, 16] {
            let want = hdbscan_memogfk(&pts, min_pts);
            let cds = core_distances(&pts, min_pts);
            assert_eq!(cds, want.core_distances);
            let memo = hdbscan_memogfk_with_cds(&pts, min_pts, &cds);
            let stream = hdbscan_streaming_with_cds(&pts, min_pts, 23, &cds);
            for got in [&memo, &stream] {
                assert_eq!(got.edges.len(), want.edges.len());
                for (a, b) in got.edges.iter().zip(&want.edges) {
                    assert_eq!((a.u, a.v, a.w.to_bits()), (b.u, b.v, b.w.to_bits()));
                }
                assert_eq!(got.core_distances, want.core_distances);
            }
        }
    }

    #[test]
    fn minpts_larger_than_n_is_degenerate_but_defined() {
        let pts = random_points::<2>(5, 20);
        let h = hdbscan_memogfk(&pts, 50);
        assert_eq!(h.edges.len(), 4);
        // All core distances equal the distance to the farthest point.
        let want = brute_core_distances(&pts, 5);
        for (g, w) in h.core_distances.iter().zip(&want) {
            assert_close(*g, *w, "cd clamp");
        }
    }
}
