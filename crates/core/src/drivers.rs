//! The three WSPD-to-MST drivers of Section 3, generic over a
//! [`SeparationPolicy`].
//!
//! * [`wspd_mst_naive`] — materialize the WSPD, compute every BCCP, run one
//!   big Kruskal (EMST-Naive in §5).
//! * [`wspd_mst_gfk`] — Algorithm 2, parallel GeoFilterKruskal: rounds with
//!   a doubling cardinality threshold `β`, lazy cached BCCPs, batch Kruskal
//!   with a shared union-find, and component filtering.
//! * [`wspd_mst_memogfk`] — Algorithm 3, the memory-optimized GFK: nothing
//!   is materialized up front; each round runs the pruned `GetRho` and
//!   `GetPairs` kd-tree traversals and only materializes pairs whose BCCP
//!   falls in `[ρ_lo, ρ_hi)`.
//!
//! Instantiated with [`parclust_wspd::GeometricSep`] these compute the EMST;
//! with [`parclust_wspd::MutualReachSep`] they compute the HDBSCAN\* MST
//! (Standard mode = the exact Gan–Tao baseline of §3.2.1, Combined mode =
//! the improved algorithm of §3.2.2).
//!
//! All drivers work in *permuted position space* (the kd-tree's point
//! order); callers map endpoints back through `tree.idx`.

use parclust_kdtree::{KdTree, NodeId};
use parclust_mst::{kruskal_batch, Edge, StreamingForest};
use parclust_primitives::atomic::AtomicF64Min;
use parclust_primitives::collector::Collector;
use parclust_primitives::conmap::ShardedMap;
use parclust_primitives::pack::{pack, split};
use parclust_primitives::unionfind::UnionFind;
use parclust_wspd::{
    bccp, wspd_materialize, wspd_stream_batches, wspd_traverse, Bccp, NodePair, SeparationPolicy,
};
use rayon::prelude::*;

use crate::stats::{Counters, Stats};

/// Component annotation value for "points of this node span multiple
/// components".
pub(crate) const MIXED: u32 = u32::MAX;

/// How the cardinality threshold β advances between GFK/MemoGFK rounds.
///
/// The paper doubles β each round ("the exponentially increasing value of
/// β ... is crucial for achieving a low depth bound", §3.1.2), whereas the
/// sequential GeoFilterKruskal of Chatterjee et al. [17] increments it by
/// one. Exposed so the ablation harness can measure exactly what that
/// design choice buys.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BetaSchedule {
    /// β ← 2β (the paper's choice; `O(log n)` rounds).
    Double,
    /// β ← β + 1 (Chatterjee et al.'s sequential schedule; `O(n)` rounds).
    Increment,
}

impl BetaSchedule {
    #[inline]
    fn next(self, beta: usize) -> usize {
        match self {
            BetaSchedule::Double => beta.saturating_mul(2),
            BetaSchedule::Increment => beta + 1,
        }
    }
}

/// Per-node component ids: `comp[v] = r` if every point in node `v` is in
/// union-find component `r`, [`MIXED`] otherwise. Recomputed between Kruskal
/// batches; reads use the concurrent-safe compression-free find.
pub(crate) fn component_annotation<const D: usize>(tree: &KdTree<D>, uf: &UnionFind) -> Vec<u32> {
    #[derive(Clone, Copy)]
    struct Comp(u32);
    impl Default for Comp {
        fn default() -> Self {
            Comp(MIXED)
        }
    }
    let ann = tree.aggregate_bottom_up(
        &|id, _ids| {
            let range = tree.node_range(id);
            let mut c = uf.find_shared(range.start as u32);
            for pos in range.skip(1) {
                if uf.find_shared(pos as u32) != c {
                    c = MIXED;
                    break;
                }
            }
            Comp(c)
        },
        &|a: &Comp, b: &Comp| {
            if a.0 != MIXED && a.0 == b.0 {
                Comp(a.0)
            } else {
                Comp(MIXED)
            }
        },
    );
    ann.into_iter().map(|c| c.0).collect()
}

#[inline]
fn same_component(comp: &[u32], a: NodeId, b: NodeId) -> bool {
    let ca = comp[a as usize];
    ca != MIXED && ca == comp[b as usize]
}

#[inline]
fn pack_pair(a: NodeId, b: NodeId) -> u64 {
    let (lo, hi) = if a < b { (a, b) } else { (b, a) };
    ((lo as u64) << 32) | hi as u64
}

/// EMST-Naive (§5): materialize all pairs, BCCP each, one Kruskal.
pub(crate) fn wspd_mst_naive<const D: usize, P: SeparationPolicy<D>>(
    tree: &KdTree<D>,
    policy: &P,
    stats: &mut Stats,
) -> Vec<Edge> {
    let n = tree.len();
    if n <= 1 {
        return Vec::new();
    }
    let counters = Counters::default();
    let pairs = Stats::time(&mut stats.wspd, || wspd_materialize(tree, policy));
    counters.pairs(pairs.len() as u64);
    stats.peak_live_pairs = pairs.len() as u64;

    // BCCP of every pair forms the candidate edge set (attributed to the
    // wspd phase, as in the paper's decomposition: "kruskal" is the MST
    // stage only).
    let mut edges: Vec<Edge> = Stats::time(&mut stats.wspd, || {
        let _span = parclust_obs::span!("bccp.batch", pairs = pairs.len());
        pairs
            .par_iter()
            .map(|&(a, b)| {
                counters.bccp();
                let r = bccp(tree, policy, a, b);
                Edge::new(r.u, r.v, r.w)
            })
            .collect()
    });
    stats.peak_pair_bytes = (pairs.len() * std::mem::size_of::<(NodeId, NodeId)>()
        + edges.len() * std::mem::size_of::<Edge>()) as u64;
    drop(pairs);

    let mut uf = UnionFind::new(n);
    let mut out = Vec::with_capacity(n - 1);
    Stats::time(&mut stats.kruskal, || {
        let _span = parclust_obs::span!("mst.kruskal", edges = edges.len());
        kruskal_batch(&mut edges, &mut uf, &mut out)
    });
    stats.rounds = 1;
    counters.fold_into(stats);
    out
}

/// A WSPD pair with its cached BCCP (Algorithm 2's working set).
#[derive(Clone, Copy)]
struct GfkPair {
    a: NodeId,
    b: NodeId,
    /// |A| + |B| — the round-splitting cardinality.
    card: u32,
    /// Cached BCCP endpoints/weight; valid iff `has_bccp`.
    u: u32,
    v: u32,
    w: f64,
    has_bccp: bool,
}

/// Parallel GeoFilterKruskal (Algorithm 2).
pub(crate) fn wspd_mst_gfk<const D: usize, P: SeparationPolicy<D>>(
    tree: &KdTree<D>,
    policy: &P,
    stats: &mut Stats,
) -> Vec<Edge> {
    let n = tree.len();
    if n <= 1 {
        return Vec::new();
    }
    let counters = Counters::default();

    // Materialize the WSPD once (the memory cost MemoGFK removes).
    let mut pairs: Vec<GfkPair> = Stats::time(&mut stats.wspd, || {
        wspd_materialize(tree, policy)
            .into_par_iter()
            .map(|(a, b)| GfkPair {
                a,
                b,
                card: (tree.node_size(a) + tree.node_size(b)) as u32,
                u: 0,
                v: 0,
                w: 0.0,
                has_bccp: false,
            })
            .collect()
    });
    counters.pairs(pairs.len() as u64);
    stats.peak_live_pairs = pairs.len() as u64;
    stats.peak_pair_bytes = (pairs.len() * std::mem::size_of::<GfkPair>()) as u64;

    let mut uf = UnionFind::new(n);
    let mut out: Vec<Edge> = Vec::with_capacity(n - 1);
    let mut beta: usize = 2;

    while out.len() + 1 < n && !pairs.is_empty() {
        stats.rounds += 1;
        let round = Stats::time(&mut stats.wspd, || {
            // Line 4: split by cardinality.
            let (arr, n_small) = split(&pairs, |p| (p.card as usize) <= beta);
            let (s_l, s_u) = arr.split_at(n_small);

            // Line 5: ρ_hi = min lower bound over the big pairs.
            let rho_hi = s_u
                .par_iter()
                .map(|p| policy.lower_bound(tree, p.a, p.b))
                .reduce(|| f64::INFINITY, f64::min);

            // Line 6: BCCP the small pairs (cached across rounds).
            let mut s_l: Vec<GfkPair> = s_l.to_vec();
            let _span = parclust_obs::span!("bccp.batch", pairs = s_l.len());
            s_l.par_iter_mut().for_each(|p| {
                if !p.has_bccp {
                    counters.bccp();
                    let r = bccp(tree, policy, p.a, p.b);
                    p.u = r.u;
                    p.v = r.v;
                    p.w = r.w;
                    p.has_bccp = true;
                }
            });
            let (s_l, n_l1) = split(&s_l, |p| p.w <= rho_hi);
            let batch: Vec<Edge> = s_l[..n_l1]
                .par_iter()
                .map(|p| Edge::new(p.u, p.v, p.w))
                .collect();
            // Survivors: S_l2 ∪ S_u, to be component-filtered below.
            let mut rest: Vec<GfkPair> = Vec::with_capacity(s_l.len() - n_l1 + s_u.len());
            rest.extend_from_slice(&s_l[n_l1..]);
            rest.extend_from_slice(s_u);
            (batch, rest)
        });
        let (mut batch, rest) = round;

        // Lines 7–8: Kruskal on the round's edges.
        Stats::time(&mut stats.kruskal, || {
            let _span = parclust_obs::span!("mst.kruskal", edges = batch.len());
            kruskal_batch(&mut batch, &mut uf, &mut out)
        });

        // Line 9: drop pairs already connected in the union-find.
        pairs = Stats::time(&mut stats.wspd, || {
            let comp = component_annotation(tree, &uf);
            pack(&rest, |p| !same_component(&comp, p.a, p.b))
        });

        // Line 10: exponential β growth keeps the round count logarithmic.
        beta = beta.saturating_mul(2);
    }
    counters.fold_into(stats);
    out
}

/// Parallel MemoGFK (Algorithm 3) with the paper's doubling β schedule.
pub(crate) fn wspd_mst_memogfk<const D: usize, P: SeparationPolicy<D>>(
    tree: &KdTree<D>,
    policy: &P,
    stats: &mut Stats,
) -> Vec<Edge> {
    wspd_mst_memogfk_sched(tree, policy, stats, BetaSchedule::Double)
}

/// Parallel MemoGFK with an explicit [`BetaSchedule`] (ablation hook).
pub(crate) fn wspd_mst_memogfk_sched<const D: usize, P: SeparationPolicy<D>>(
    tree: &KdTree<D>,
    policy: &P,
    stats: &mut Stats,
    schedule: BetaSchedule,
) -> Vec<Edge> {
    let n = tree.len();
    if n <= 1 {
        return Vec::new();
    }
    let counters = Counters::default();
    // Cross-round BCCP memoization (§3.1.2: "we cache the BCCP results of
    // pairs to avoid repeated computations"). Keys pack the node pair;
    // values pack the BCCP endpoints — the weight is recomputed from the
    // points, which is cheaper than a second table. Growable: the WSPD
    // pair count is O(n) but with a dimension-dependent constant that can
    // exceed 100, and dropping cache entries makes clustered
    // high-dimensional inputs recompute expensive BCCPs every round.
    let cache = ShardedMap::new();

    let mut uf = UnionFind::new(n);
    let mut out: Vec<Edge> = Vec::with_capacity(n - 1);
    let mut beta: usize = 2;
    let mut rho_lo: f64 = 0.0;
    let mut peak_live: usize = 0;

    while out.len() + 1 < n {
        stats.rounds += 1;
        let comp = Stats::time(&mut stats.wspd, || component_annotation(tree, &uf));

        // GetRho (Algorithm 3, line 4): lower-bound the lightest edge any
        // still-relevant pair of cardinality > β can produce.
        let rho = AtomicF64Min::default();
        Stats::time(&mut stats.wspd, || {
            let _span = parclust_obs::span!("wspd.get_rho", beta = beta);
            wspd_traverse(
                tree,
                policy,
                &|a, b| {
                    same_component(&comp, a, b)
                        || tree.node_size(a) + tree.node_size(b) <= beta
                        || policy.lower_bound(tree, a, b) >= rho.load()
                },
                &|a, b| {
                    rho.write_min(policy.lower_bound(tree, a, b));
                },
            );
        });
        let rho_hi = rho.load();

        // GetPairs (line 5): retrieve pairs whose BCCP lies in [ρ_lo, ρ_hi).
        let edges_c: Collector<Edge> = Collector::new();
        Stats::time(&mut stats.wspd, || {
            let _span = parclust_obs::span!("wspd.get_pairs", beta = beta);
            wspd_traverse(
                tree,
                policy,
                &|a, b| {
                    same_component(&comp, a, b)
                        || policy.upper_bound(tree, a, b) < rho_lo
                        || policy.lower_bound(tree, a, b) >= rho_hi
                },
                &|a, b| {
                    let key = pack_pair(a, b);
                    let r = match cache.get(key) {
                        Some(packed) => {
                            let (u, v) = ((packed >> 32) as u32, packed as u32);
                            let d = tree.dist_between(u, v);
                            Bccp {
                                u,
                                v,
                                w: policy.point_weight(u, v, d),
                            }
                        }
                        None => {
                            counters.bccp();
                            let r = bccp(tree, policy, a, b);
                            cache.insert(key, ((r.u as u64) << 32) | r.v as u64);
                            r
                        }
                    };
                    if r.w >= rho_lo && r.w < rho_hi {
                        edges_c.push(Edge::new(r.u, r.v, r.w));
                    }
                },
            );
        });
        let mut batch = edges_c.into_vec();
        counters.pairs(batch.len() as u64);
        peak_live = peak_live.max(batch.len());

        Stats::time(&mut stats.kruskal, || {
            let _span = parclust_obs::span!("mst.kruskal", edges = batch.len());
            kruskal_batch(&mut batch, &mut uf, &mut out)
        });

        if rho_hi.is_infinite() {
            // No unconnected pair had cardinality > β: this round already
            // retrieved every remaining pair.
            break;
        }
        beta = schedule.next(beta);
        rho_lo = rho_hi;
    }
    stats.peak_live_pairs = peak_live as u64;
    stats.peak_pair_bytes = (peak_live * std::mem::size_of::<Edge>()) as u64;
    counters.fold_into(stats);
    out
}

/// Bounded-memory streaming driver: WSPD pairs are produced in batches of
/// at most `batch_pairs` ([`wspd_stream_batches`]), each batch is BCCP'd in
/// parallel, and the resulting candidate edges are folded into a
/// [`StreamingForest`] — the MST sparsification `MST(A ∪ B) =
/// MST(MST(A) ∪ B)`, exact under the strict `(w, u, v)` edge order. Peak
/// pair memory is `O(batch_pairs)` instead of `O(|WSPD|)`, and the output
/// is bit-identical to the materializing drivers for every batch size.
///
/// Two deterministic prunes keep the BCCP work far below the naive
/// driver's: a pair both of whose nodes lie in one already-connected
/// forest component is skipped outright when its weight lower bound
/// exceeds that component's maximum forest edge (cycle property — the
/// candidate would be the strict maximum on the cycle it closes).
pub(crate) fn wspd_mst_streaming<const D: usize, P: SeparationPolicy<D>>(
    tree: &KdTree<D>,
    policy: &P,
    stats: &mut Stats,
    batch_pairs: usize,
) -> Vec<Edge> {
    let n = tree.len();
    if n <= 1 {
        return Vec::new();
    }
    let cap = batch_pairs.max(1);
    let counters = Counters::default();
    let mut forest = StreamingForest::new(n);
    let mut peak = 0usize;
    wspd_stream_batches(tree, policy, cap, &mut |pairs: &mut Vec<NodePair>| {
        stats.rounds += 1;
        let _batch_span = parclust_obs::span!("wspd.batch", pairs = pairs.len());
        peak = peak.max(pairs.len());
        counters.pairs(pairs.len() as u64);
        // Per-node component annotation against the *current* forest; the
        // prune below only ever skips edges that provably cannot enter
        // the MST, so the result is independent of batching.
        let batch: Vec<Edge> = Stats::time(&mut stats.wspd, || {
            let _span = parclust_obs::span!("bccp.batch", pairs = pairs.len());
            let comp = component_annotation(tree, forest.uf());
            let fref = &forest;
            let candidates: Vec<Option<Edge>> = pairs
                .par_iter()
                .map(|&(a, b)| {
                    let ca = comp[a as usize];
                    if ca != MIXED
                        && ca == comp[b as usize]
                        && fref.can_skip_within(ca, policy.lower_bound(tree, a, b))
                    {
                        return None;
                    }
                    counters.bccp();
                    let r = bccp(tree, policy, a, b);
                    Some(Edge::new(r.u, r.v, r.w))
                })
                .collect();
            candidates.into_iter().flatten().collect()
        });
        Stats::time(&mut stats.kruskal, || forest.absorb(batch));
    });
    stats.peak_live_pairs = peak as u64;
    stats.peak_pair_bytes = (peak
        * (std::mem::size_of::<NodePair>()
            + std::mem::size_of::<Option<Edge>>()
            + std::mem::size_of::<Edge>())) as u64;
    counters.fold_into(stats);
    forest.into_edges()
}

/// Map position-space MST edges back to original point indices and put them
/// in canonical order.
pub(crate) fn edges_to_original<const D: usize>(tree: &KdTree<D>, edges: Vec<Edge>) -> Vec<Edge> {
    let mut out: Vec<Edge> = edges
        .into_iter()
        .map(|e| Edge::new(tree.idx[e.u as usize], tree.idx[e.v as usize], e.w))
        .collect();
    parclust_mst::sort_edges(&mut out);
    out
}
