//! Per-phase timing and memory/work counters.
//!
//! Figure 8 of the paper decomposes running time into build-tree,
//! core-dist, wspd, kruskal, and dendrogram phases; the §5 memory study
//! reports materialized-pair counts. Every driver in this crate fills in a
//! [`Stats`] so the bench harness can regenerate those artifacts.

use serde::Serialize;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Wall-clock seconds per phase plus work/memory counters.
#[derive(Debug, Clone, Default, Serialize)]
pub struct Stats {
    /// kd-tree construction time (s).
    pub build_tree: f64,
    /// k-NN core-distance computation time (s) — HDBSCAN\* only.
    pub core_dist: f64,
    /// WSPD work: full materialization (Naive/GFK) or the sum of the
    /// GetRho/GetPairs traversals across rounds (MemoGFK) (s).
    pub wspd: f64,
    /// Kruskal time across batches, including batch sorting (s).
    pub kruskal: f64,
    /// Ordered dendrogram construction time (s).
    pub dendrogram: f64,
    /// End-to-end time of the driver (s).
    pub total: f64,

    /// Number of GFK/MemoGFK rounds executed.
    pub rounds: u64,
    /// Exact BCCP computations performed (cache misses for MemoGFK).
    pub bccp_calls: u64,
    /// Total well-separated pairs materialized across the run. For the
    /// fully-materializing algorithms this is |WSPD|; for MemoGFK it is the
    /// number of pairs retrieved by GetPairs.
    pub pairs_materialized: u64,
    /// Largest number of pairs live at once — the memory-study metric
    /// (§5 "MemoGFK Memory Usage").
    pub peak_live_pairs: u64,
    /// Approximate peak bytes attributable to materialized pairs.
    pub peak_pair_bytes: u64,
}

impl Stats {
    /// Time `f`, adding the elapsed seconds to the field selected by `slot`.
    pub(crate) fn time<T>(slot: &mut f64, f: impl FnOnce() -> T) -> T {
        let t0 = Instant::now();
        let out = f();
        *slot += t0.elapsed().as_secs_f64();
        out
    }
}

/// Thread-safe counters accumulated during parallel phases and folded into
/// [`Stats`] afterwards.
#[derive(Debug, Default)]
pub(crate) struct Counters {
    pub bccp_calls: AtomicU64,
    pub pairs_materialized: AtomicU64,
}

impl Counters {
    #[inline]
    pub fn bccp(&self) {
        self.bccp_calls.fetch_add(1, Ordering::Relaxed);
    }

    #[inline]
    pub fn pairs(&self, k: u64) {
        self.pairs_materialized.fetch_add(k, Ordering::Relaxed);
    }

    pub fn fold_into(&self, stats: &mut Stats) {
        stats.bccp_calls = self.bccp_calls.load(Ordering::Relaxed);
        stats.pairs_materialized = self.pairs_materialized.load(Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timing_accumulates() {
        let mut slot = 0.0;
        let v = Stats::time(&mut slot, || 42);
        assert_eq!(v, 42);
        assert!(slot >= 0.0);
        let before = slot;
        Stats::time(&mut slot, || {
            std::thread::sleep(std::time::Duration::from_millis(2))
        });
        assert!(slot > before);
    }

    #[test]
    fn counters_fold() {
        let c = Counters::default();
        c.bccp();
        c.bccp();
        c.pairs(5);
        let mut s = Stats::default();
        c.fold_into(&mut s);
        assert_eq!(s.bccp_calls, 2);
        assert_eq!(s.pairs_materialized, 5);
    }
}
