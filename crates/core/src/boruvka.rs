//! kd-tree Boruvka EMST — the Dual-Tree Boruvka baseline.
//!
//! This is our reimplementation of the algorithmic family behind March et
//! al. [43] (`mlpack`'s EMST), which the paper uses as its strongest
//! sequential comparator (Table 3). Each Boruvka round finds, for every
//! component, its lightest outgoing Euclidean edge by running a pruned
//! nearest-foreign-neighbor query from every point:
//!
//! * subtrees entirely inside the query point's component are skipped via
//!   the per-node component annotation (the same annotation the GFK filter
//!   uses);
//! * subtrees further than the point's current best candidate are skipped
//!   via bounding-box distance.
//!
//! Queries run in parallel over all points; candidates combine through
//! `WRITE_MIN` per component; unions are applied sequentially per round.
//! `O(log n)` rounds as components at least halve per round.

use parclust_geom::{dist_sq, Point};
use parclust_kdtree::{KdTree, NodeId};
use parclust_mst::Edge;
use parclust_primitives::atomic::AtomicMinPair;
use parclust_primitives::unionfind::UnionFind;
use rayon::prelude::*;

use crate::drivers::{component_annotation, MIXED};
use crate::stats::Stats;

/// MST in position space via geometric Boruvka.
pub(crate) fn geo_boruvka_mst<const D: usize>(tree: &KdTree<D>, stats: &mut Stats) -> Vec<Edge> {
    let n = tree.len();
    let mut uf = UnionFind::new(n);
    let mut out: Vec<Edge> = Vec::with_capacity(n - 1);

    while out.len() + 1 < n {
        stats.rounds += 1;
        let comp = Stats::time(&mut stats.wspd, || component_annotation(tree, &uf));

        // Lightest outgoing edge candidate per component root.
        let cands: Vec<AtomicMinPair<(u32, u32)>> =
            (0..n).map(|_| AtomicMinPair::default()).collect();
        Stats::time(&mut stats.wspd, || {
            (0..n as u32).into_par_iter().for_each(|p| {
                let me = uf.find_shared(p);
                let q = tree.point(p as usize);
                let mut best = (f64::INFINITY, u32::MAX);
                nearest_foreign(tree, &uf, &comp, tree.root(), p, &q, me, &mut best);
                if best.1 != u32::MAX {
                    cands[me as usize].write_min(best.0, (p, best.1));
                }
            });
        });

        let mut progressed = false;
        Stats::time(&mut stats.kruskal, || {
            for cand in &cands {
                if let Some((d_sq, (u, v))) = cand.get() {
                    if uf.union(u, v) {
                        out.push(Edge::new(u, v, d_sq.sqrt()));
                        progressed = true;
                    }
                }
            }
        });
        if !progressed {
            break; // disconnected input cannot happen for point sets; guard anyway
        }
    }
    out
}

/// Nearest neighbor of `q` (at position `p`) outside component `me`;
/// `best` holds `(dist_sq, position)`.
#[allow(clippy::too_many_arguments)]
fn nearest_foreign<const D: usize>(
    tree: &KdTree<D>,
    uf: &UnionFind,
    comp: &[u32],
    node_id: NodeId,
    p: u32,
    q: &Point<D>,
    me: u32,
    best: &mut (f64, u32),
) {
    let c = comp[node_id as usize];
    if c != MIXED && c == me {
        return; // entire subtree is in our component
    }
    if tree.is_leaf(node_id) {
        for pos in tree.node_start(node_id)..tree.node_end(node_id) {
            if pos == p {
                continue;
            }
            if uf.find_shared(pos) != me {
                let d = dist_sq(q, &tree.point(pos as usize));
                if (d, pos) < *best {
                    *best = (d, pos);
                }
            }
        }
        return;
    }
    let (l, r) = tree.children(node_id);
    let dl = tree.bbox(l).dist_sq_to_point(q);
    let dr = tree.bbox(r).dist_sq_to_point(q);
    let (first, d1, second, d2) = if dl <= dr {
        (l, dl, r, dr)
    } else {
        (r, dr, l, dl)
    };
    if d1 < best.0 || (d1 == best.0 && best.1 == u32::MAX) {
        nearest_foreign(tree, uf, comp, first, p, q, me, best);
    }
    if d2 < best.0 || (d2 == best.0 && best.1 == u32::MAX) {
        nearest_foreign(tree, uf, comp, second, p, q, me, best);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parclust_mst::prim_dense;
    use rand::prelude::*;

    #[test]
    fn boruvka_rounds_are_logarithmic() {
        let mut rng = StdRng::seed_from_u64(3);
        let pts: Vec<Point<2>> = (0..1000)
            .map(|_| Point([rng.gen_range(0.0..100.0), rng.gen_range(0.0..100.0)]))
            .collect();
        let tree = KdTree::build(&pts);
        let mut stats = Stats::default();
        let edges = geo_boruvka_mst(&tree, &mut stats);
        assert_eq!(edges.len(), 999);
        assert!(
            stats.rounds <= 14,
            "Boruvka should halve components every round, took {}",
            stats.rounds
        );
        let want = prim_dense(1000, 0, |u, v| pts[u as usize].dist(&pts[v as usize]));
        let got: f64 = edges.iter().map(|e| e.w).sum();
        assert!((got - want.total_weight).abs() < 1e-9);
    }

    #[test]
    fn handles_duplicate_points() {
        let pts = vec![
            Point([0.0, 0.0]),
            Point([0.0, 0.0]),
            Point([1.0, 0.0]),
            Point([1.0, 0.0]),
        ];
        let tree = KdTree::build(&pts);
        let mut stats = Stats::default();
        let edges = geo_boruvka_mst(&tree, &mut stats);
        assert_eq!(edges.len(), 3);
        let total: f64 = edges.iter().map(|e| e.w).sum();
        assert!((total - 1.0).abs() < 1e-12);
    }
}
