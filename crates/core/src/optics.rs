//! Parallel approximate OPTICS (Appendix C).
//!
//! Gan and Tao's approximate algorithm [28] takes an extra parameter
//! `ρ ≥ 0` and builds a *base graph* instead of computing exact BCCP\*s: a
//! WSPD with separation `s = sqrt(8/ρ)` is materialized, each pair
//! contributes edges according to the sizes of its sides relative to
//! `minPts` (cases (a)–(d) below), and edge weights are
//! `max{cd(u), cd(v), d(u, v)/(1+ρ)}`. The MST of the base graph yields an
//! approximate OPTICS / HDBSCAN\* hierarchy with reachability values within
//! a `(1+ρ)` factor.
//!
//! Following the authors' implementation note, the *representative* of a
//! side is a pseudo-random point of the pair (deterministic per pair here,
//! for reproducibility), and the base graph is fed to the same parallel
//! Kruskal used everywhere else. The graph has `O(n · minPts²)` edges —
//! the space blow-up that motivates the paper's improved exact algorithm.

use parclust_geom::Point;
use parclust_kdtree::KdTree;
use parclust_mst::{kruskal_batch, total_weight, Edge};
use parclust_primitives::collector::Collector;
use parclust_primitives::unionfind::UnionFind;
use parclust_wspd::{wspd_traverse, GeometricSep};

use crate::drivers::edges_to_original;
use crate::hdbscan::HdbscanMst;
use crate::stats::Stats;

/// Approximate OPTICS MST (Appendix C) with approximation parameter `rho`.
///
/// Returns the same [`HdbscanMst`] shape as the exact drivers; weights are
/// approximate mutual reachability distances.
pub fn optics_approx<const D: usize>(points: &[Point<D>], min_pts: usize, rho: f64) -> HdbscanMst {
    assert!(min_pts >= 1, "minPts must be at least 1");
    assert!(rho > 0.0, "rho must be positive");
    let t0 = std::time::Instant::now();
    let mut stats = Stats::default();
    let n = points.len();
    if n < 2 {
        stats.total = t0.elapsed().as_secs_f64();
        return HdbscanMst {
            min_pts,
            edges: Vec::new(),
            core_distances: vec![0.0; n],
            total_weight: 0.0,
            stats,
        };
    }

    let tree = Stats::time(&mut stats.build_tree, || KdTree::build(points));
    let cd_orig = Stats::time(&mut stats.core_dist, || {
        let knn = tree.knn_all(min_pts);
        (0..n).map(|i| knn.kth_dist(i)).collect::<Vec<f64>>()
    });
    let cd_pos: Vec<f64> = tree.idx.iter().map(|&o| cd_orig[o as usize]).collect();

    // Base-graph construction over the s = sqrt(8/ρ) WSPD.
    let policy = GeometricSep::for_optics_rho(rho);
    let weight = |u: u32, v: u32| -> f64 {
        let d = tree.dist_between(u, v);
        (d / (1.0 + rho))
            .max(cd_pos[u as usize])
            .max(cd_pos[v as usize])
    };
    // Deterministic pseudo-random representative of a node's point range.
    let representative = |a: parclust_kdtree::NodeId| -> u32 {
        let (start, end) = (tree.node_start(a), tree.node_end(a));
        let span = end - start;
        let h = (a as u64).wrapping_mul(0x9e3779b97f4a7c15) >> 33;
        start + (h as u32) % span
    };

    let edges_c: Collector<Edge> = Collector::new();
    let pair_count = std::sync::atomic::AtomicU64::new(0);
    Stats::time(&mut stats.wspd, || {
        wspd_traverse(&tree, &policy, &|_, _| false, &|a, b| {
            pair_count.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            let (sa, sb) = (tree.node_size(a), tree.node_size(b));
            // Cases (a)-(d) of Appendix C.
            match (sa >= min_pts, sb >= min_pts) {
                (false, false) => {
                    // (a): all pairs of points between A and B.
                    for u in tree.node_start(a)..tree.node_end(a) {
                        for v in tree.node_start(b)..tree.node_end(b) {
                            edges_c.push(Edge::new(u, v, weight(u, v)));
                        }
                    }
                }
                (true, false) => {
                    // (b): representative of A to all of B.
                    let u = representative(a);
                    for v in tree.node_start(b)..tree.node_end(b) {
                        edges_c.push(Edge::new(u, v, weight(u, v)));
                    }
                }
                (false, true) => {
                    // (c): symmetric.
                    let v = representative(b);
                    for u in tree.node_start(a)..tree.node_end(a) {
                        edges_c.push(Edge::new(u, v, weight(u, v)));
                    }
                }
                (true, true) => {
                    // (d): representatives only.
                    let (u, v) = (representative(a), representative(b));
                    edges_c.push(Edge::new(u, v, weight(u, v)));
                }
            }
        });
    });
    let mut base_edges = edges_c.into_vec();
    stats.pairs_materialized = pair_count.into_inner();
    stats.peak_live_pairs = base_edges.len() as u64;
    stats.peak_pair_bytes = (base_edges.len() * std::mem::size_of::<Edge>()) as u64;
    stats.rounds = 1;

    let mut uf = UnionFind::new(n);
    let mut out = Vec::with_capacity(n - 1);
    Stats::time(&mut stats.kruskal, || {
        kruskal_batch(&mut base_edges, &mut uf, &mut out)
    });
    debug_assert_eq!(out.len(), n - 1, "base graph must be connected");

    let edges = edges_to_original(&tree, out);
    stats.total = t0.elapsed().as_secs_f64();
    HdbscanMst {
        min_pts,
        total_weight: total_weight(&edges),
        edges,
        core_distances: cd_orig,
        stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hdbscan::hdbscan_memogfk;
    use rand::prelude::*;

    fn random_points(n: usize, seed: u64) -> Vec<Point<2>> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| Point([rng.gen_range(0.0..100.0), rng.gen_range(0.0..100.0)]))
            .collect()
    }

    #[test]
    fn spans_all_points() {
        let pts = random_points(300, 1);
        let o = optics_approx(&pts, 10, 0.125);
        assert_eq!(o.edges.len(), 299);
    }

    #[test]
    fn weight_within_rho_factor_of_exact() {
        let pts = random_points(250, 2);
        for rho in [0.125, 0.5] {
            let exact = hdbscan_memogfk(&pts, 10).total_weight;
            let approx = optics_approx(&pts, 10, rho).total_weight;
            // Per-edge weights are within a (1+ρ) factor of the true mutual
            // reachability distances, so the MST totals are too.
            assert!(
                approx <= exact * (1.0 + rho) + 1e-9,
                "rho={rho}: approximate MST above the (1+rho) guarantee ({approx} vs {exact})"
            );
            assert!(
                approx >= exact / (1.0 + rho) - 1e-9,
                "rho={rho}: approximate MST below the (1+rho) guarantee ({approx} vs {exact})"
            );
        }
    }

    #[test]
    fn smaller_rho_needs_more_pairs() {
        // s = sqrt(8/ρ): tighter approximation → larger separation → more
        // well-separated pairs (Figure 10's explanation).
        let pts = random_points(400, 3);
        let tight = optics_approx(&pts, 10, 0.125);
        let loose = optics_approx(&pts, 10, 1.0);
        assert!(
            tight.stats.pairs_materialized > loose.stats.pairs_materialized,
            "tight {} vs loose {}",
            tight.stats.pairs_materialized,
            loose.stats.pairs_materialized
        );
    }

    #[test]
    fn more_edges_than_exact_pairs() {
        // O(minPts^2) edges per pair vs 1 edge per pair for the exact
        // algorithms: the base graph must be much larger.
        let pts = random_points(400, 4);
        let o = optics_approx(&pts, 10, 0.125);
        let exact = hdbscan_memogfk(&pts, 10);
        assert!(o.stats.peak_live_pairs > exact.stats.peak_live_pairs);
    }
}
