//! Euclidean minimum spanning tree drivers (Section 3.1 and §5's method
//! lineup).
//!
//! All drivers return the same tree (up to ties); they differ in work,
//! space, and parallel structure:
//!
//! | Driver | Paper name | Strategy |
//! |---|---|---|
//! | [`emst_naive`] | EMST-Naive | materialize WSPD, BCCP all pairs, one Kruskal |
//! | [`emst_gfk`] | EMST-GFK | Algorithm 2 (materialized pairs, lazy BCCP) |
//! | [`emst_memogfk`] | EMST-MemoGFK | Algorithm 3 (nothing materialized up front) |
//! | [`emst_boruvka`] | Dual-Tree Boruvka baseline [43] | kd-tree Boruvka with component pruning |
//! | [`parclust_delaunay::emst2d`] | EMST-Delaunay | 2D only, Appendix A.1 |
//!
//! [`emst`] is the recommended entry point and aliases [`emst_memogfk`] —
//! the paper's fastest method on every data set.

use parclust_geom::Point;
use parclust_kdtree::KdTree;
use parclust_mst::{total_weight, Edge};
use parclust_wspd::GeometricSep;

use crate::drivers::{edges_to_original, wspd_mst_gfk, wspd_mst_memogfk, wspd_mst_naive};
use crate::stats::Stats;

/// An Euclidean minimum spanning tree (or forest for `n < 2`).
#[derive(Debug, Clone)]
pub struct Emst {
    /// MST edges over original point indices, in canonical `(w, u, v)` order.
    pub edges: Vec<Edge>,
    /// Sum of edge weights.
    pub total_weight: f64,
    /// Phase timings and work/memory counters.
    pub stats: Stats,
}

impl Emst {
    fn from_position_edges<const D: usize>(
        tree: &KdTree<D>,
        edges: Vec<Edge>,
        mut stats: Stats,
        t0: std::time::Instant,
    ) -> Self {
        let edges = edges_to_original(tree, edges);
        stats.total = t0.elapsed().as_secs_f64();
        Emst {
            total_weight: total_weight(&edges),
            edges,
            stats,
        }
    }
}

macro_rules! emst_driver {
    ($(#[$doc:meta])* $name:ident, $driver:path) => {
        $(#[$doc])*
        pub fn $name<const D: usize>(points: &[Point<D>]) -> Emst {
            let t0 = std::time::Instant::now();
            let mut stats = Stats::default();
            if points.len() < 2 {
                stats.total = t0.elapsed().as_secs_f64();
                return Emst {
                    edges: Vec::new(),
                    total_weight: 0.0,
                    stats,
                };
            }
            let tree = Stats::time(&mut stats.build_tree, || KdTree::build(points));
            let policy = GeometricSep::PAPER_DEFAULT;
            let edges = $driver(&tree, &policy, &mut stats);
            Emst::from_position_edges(&tree, edges, stats, t0)
        }
    };
}

emst_driver!(
    /// EMST via the naive WSPD pipeline (§5's EMST-Naive): materialize all
    /// well-separated pairs, compute every BCCP, then run Kruskal once.
    emst_naive,
    wspd_mst_naive
);

emst_driver!(
    /// EMST via parallel GeoFilterKruskal (Algorithm 2).
    emst_gfk,
    wspd_mst_gfk
);

emst_driver!(
    /// EMST via memory-optimized GeoFilterKruskal (Algorithm 3) — the
    /// paper's recommended method.
    emst_memogfk,
    wspd_mst_memogfk
);

/// Compute the Euclidean minimum spanning tree. Alias for [`emst_memogfk`],
/// the method the paper's evaluation found fastest across all data sets and
/// dimensions.
pub fn emst<const D: usize>(points: &[Point<D>]) -> Emst {
    emst_memogfk(points)
}

/// MemoGFK with an explicit β schedule — the ablation of §3.1.2's design
/// note that exponential β growth (vs. Chatterjee et al.'s β + 1) is what
/// keeps the round count logarithmic.
pub fn emst_memogfk_with_schedule<const D: usize>(
    points: &[Point<D>],
    schedule: crate::drivers::BetaSchedule,
) -> Emst {
    let t0 = std::time::Instant::now();
    let mut stats = Stats::default();
    if points.len() < 2 {
        stats.total = t0.elapsed().as_secs_f64();
        return Emst {
            edges: Vec::new(),
            total_weight: 0.0,
            stats,
        };
    }
    let tree = Stats::time(&mut stats.build_tree, || KdTree::build(points));
    let policy = GeometricSep::PAPER_DEFAULT;
    let edges = crate::drivers::wspd_mst_memogfk_sched(&tree, &policy, &mut stats, schedule);
    Emst::from_position_edges(&tree, edges, stats, t0)
}

/// EMST via the bounded-memory streaming pipeline: well-separated pairs
/// are produced in batches of at most `max_batch_pairs` and folded into a
/// streaming Kruskal forest, so peak pair memory is `O(max_batch_pairs)`
/// instead of `O(|WSPD|)`. The result is **bit-identical** to
/// [`emst_naive`]/[`emst_gfk`]/[`emst_memogfk`] for every batch size (MST
/// sparsification under the strict `(w, u, v)` edge order); the contract is
/// pinned by `tests/streaming_semantics.rs`.
pub fn emst_streaming<const D: usize>(points: &[Point<D>], max_batch_pairs: usize) -> Emst {
    let t0 = std::time::Instant::now();
    let mut stats = Stats::default();
    if points.len() < 2 {
        stats.total = t0.elapsed().as_secs_f64();
        return Emst {
            edges: Vec::new(),
            total_weight: 0.0,
            stats,
        };
    }
    let tree = Stats::time(&mut stats.build_tree, || KdTree::build(points));
    let policy = GeometricSep::PAPER_DEFAULT;
    let edges = crate::drivers::wspd_mst_streaming(&tree, &policy, &mut stats, max_batch_pairs);
    Emst::from_position_edges(&tree, edges, stats, t0)
}

/// EMST via Delaunay triangulation (Appendix A.1) — the 2D-only
/// EMST-Delaunay baseline of §5: the EMST is a subgraph of the Delaunay
/// triangulation, so an MST over its `O(n)` edges suffices.
pub fn emst_delaunay(points: &[Point<2>]) -> Emst {
    let t0 = std::time::Instant::now();
    let mut stats = Stats::default();
    let edges = Stats::time(&mut stats.wspd, || parclust_delaunay::emst2d(points));
    stats.total = t0.elapsed().as_secs_f64();
    Emst {
        total_weight: parclust_mst::total_weight(&edges),
        edges,
        stats,
    }
}

/// EMST via kd-tree Boruvka with component pruning — our reimplementation
/// of the Dual-Tree Boruvka baseline the paper compares against (March et
/// al. [43], the `mlpack` comparator of Table 3; see DESIGN.md,
/// substitution 3).
pub fn emst_boruvka<const D: usize>(points: &[Point<D>]) -> Emst {
    let t0 = std::time::Instant::now();
    let mut stats = Stats::default();
    if points.len() < 2 {
        stats.total = t0.elapsed().as_secs_f64();
        return Emst {
            edges: Vec::new(),
            total_weight: 0.0,
            stats,
        };
    }
    let tree = Stats::time(&mut stats.build_tree, || KdTree::build(points));
    let edges = crate::boruvka::geo_boruvka_mst(&tree, &mut stats);
    Emst::from_position_edges(&tree, edges, stats, t0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use parclust_mst::prim_dense;
    use rand::prelude::*;

    fn random_points<const D: usize>(n: usize, seed: u64) -> Vec<Point<D>> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                let mut c = [0.0; D];
                for x in c.iter_mut() {
                    *x = rng.gen_range(-100.0..100.0);
                }
                Point(c)
            })
            .collect()
    }

    fn oracle_weight<const D: usize>(pts: &[Point<D>]) -> f64 {
        prim_dense(pts.len(), 0, |u, v| pts[u as usize].dist(&pts[v as usize])).total_weight
    }

    fn assert_close(a: f64, b: f64, what: &str) {
        assert!(
            (a - b).abs() <= 1e-9 * (1.0 + a.abs().max(b.abs())),
            "{what}: {a} vs {b}"
        );
    }

    #[test]
    fn all_drivers_match_prim_2d() {
        for seed in 0..3 {
            let pts = random_points::<2>(250, seed);
            let want = oracle_weight(&pts);
            assert_close(emst_naive(&pts).total_weight, want, "naive");
            assert_close(emst_gfk(&pts).total_weight, want, "gfk");
            assert_close(emst_memogfk(&pts).total_weight, want, "memogfk");
            assert_close(emst_boruvka(&pts).total_weight, want, "boruvka");
            assert_close(emst_delaunay(&pts).total_weight, want, "delaunay");
        }
    }

    #[test]
    fn all_drivers_match_prim_5d() {
        let pts = random_points::<5>(200, 42);
        let want = oracle_weight(&pts);
        assert_close(emst_naive(&pts).total_weight, want, "naive");
        assert_close(emst_gfk(&pts).total_weight, want, "gfk");
        assert_close(emst_memogfk(&pts).total_weight, want, "memogfk");
        assert_close(emst_boruvka(&pts).total_weight, want, "boruvka");
    }

    #[test]
    fn emst_edge_count_and_spanning() {
        let pts = random_points::<3>(500, 7);
        let t = emst(&pts);
        assert_eq!(t.edges.len(), 499);
        // Spanning: union-find over the edges leaves one component.
        let mut uf = parclust_primitives::unionfind::UnionFind::new(500);
        for e in &t.edges {
            uf.union(e.u, e.v);
        }
        assert_eq!(uf.components(), 1);
    }

    #[test]
    fn tiny_inputs() {
        assert_eq!(emst::<2>(&[]).edges.len(), 0);
        assert_eq!(emst(&[Point([1.0, 1.0])]).edges.len(), 0);
        let two = emst(&[Point([0.0, 0.0]), Point([3.0, 4.0])]);
        assert_eq!(two.edges.len(), 1);
        assert_close(two.total_weight, 5.0, "two points");
    }

    #[test]
    fn duplicates_get_zero_edges() {
        let mut pts = random_points::<2>(50, 9);
        pts.extend_from_slice(&pts.clone()[..10]);
        let want = oracle_weight(&pts);
        let t = emst_memogfk(&pts);
        assert_close(t.total_weight, want, "memogfk with duplicates");
        assert_eq!(t.edges.len(), pts.len() - 1);
        assert!(t.edges.iter().filter(|e| e.w == 0.0).count() >= 10);
    }

    #[test]
    fn memogfk_materializes_fewer_pairs_than_naive() {
        let pts = random_points::<2>(2000, 11);
        let naive = emst_naive(&pts);
        let memo = emst_memogfk(&pts);
        assert!(
            memo.stats.peak_live_pairs < naive.stats.peak_live_pairs,
            "memo {} vs naive {}",
            memo.stats.peak_live_pairs,
            naive.stats.peak_live_pairs
        );
        assert!(memo.stats.rounds > 1);
    }

    #[test]
    fn gfk_computes_fewer_bccps_than_naive() {
        let pts = random_points::<2>(2000, 13);
        let naive = emst_naive(&pts);
        let gfk = emst_gfk(&pts);
        assert!(
            gfk.stats.bccp_calls < naive.stats.bccp_calls,
            "gfk {} vs naive {}",
            gfk.stats.bccp_calls,
            naive.stats.bccp_calls
        );
    }

    #[test]
    fn beta_schedules_agree_on_the_tree() {
        // §3.1.2 ablation hook: the schedule affects rounds, not results.
        use crate::drivers::BetaSchedule;
        let pts = random_points::<2>(400, 23);
        let double = emst_memogfk_with_schedule(&pts, BetaSchedule::Double);
        let increment = emst_memogfk_with_schedule(&pts, BetaSchedule::Increment);
        assert_close(double.total_weight, increment.total_weight, "schedules");
        assert!(
            increment.stats.rounds > double.stats.rounds,
            "incrementing β must take more rounds ({} vs {})",
            increment.stats.rounds,
            double.stats.rounds
        );
    }

    #[test]
    fn streaming_matches_in_memory_bitwise() {
        let pts = random_points::<2>(600, 31);
        let want = emst_memogfk(&pts);
        for cap in [1usize, 64, 100_000] {
            let got = emst_streaming(&pts, cap);
            assert_eq!(got.edges.len(), want.edges.len(), "cap={cap}");
            for (a, b) in got.edges.iter().zip(&want.edges) {
                assert_eq!((a.u, a.v, a.w.to_bits()), (b.u, b.v, b.w.to_bits()));
            }
            assert_eq!(got.total_weight.to_bits(), want.total_weight.to_bits());
        }
    }

    #[test]
    fn streaming_bounds_live_pairs() {
        let pts = random_points::<2>(2000, 37);
        let naive = emst_naive(&pts);
        let cap = 256;
        let streamed = emst_streaming(&pts, cap);
        assert!(
            streamed.stats.peak_live_pairs <= cap as u64,
            "peak {} exceeds cap {cap}",
            streamed.stats.peak_live_pairs
        );
        assert!(streamed.stats.peak_live_pairs < naive.stats.peak_live_pairs);
        assert!(
            streamed.stats.rounds > 1,
            "must have taken multiple batches"
        );
        // The component/cycle prune must save BCCP work vs. the naive
        // driver, which computes one per pair.
        assert!(
            streamed.stats.bccp_calls < naive.stats.bccp_calls,
            "streamed {} vs naive {}",
            streamed.stats.bccp_calls,
            naive.stats.bccp_calls
        );
    }

    #[test]
    fn drivers_agree_exactly_on_edges() {
        // With distinct weights the MST is unique: compare edge sets.
        let pts = random_points::<3>(300, 17);
        let a = emst_naive(&pts).edges;
        let b = emst_memogfk(&pts).edges;
        let c = emst_gfk(&pts).edges;
        assert_eq!(a.len(), b.len());
        for ((x, y), z) in a.iter().zip(&b).zip(&c) {
            assert_eq!((x.u, x.v), (y.u, y.v));
            assert_eq!((x.u, x.v), (z.u, z.v));
        }
    }
}
