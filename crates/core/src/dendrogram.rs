//! Ordered dendrograms and reachability plots (Section 4).
//!
//! Given a weighted spanning tree (an EMST for single-linkage clustering,
//! or an HDBSCAN\* MST), the *ordered dendrogram* for a start vertex `s` is
//! the merge hierarchy whose in-order leaf traversal equals the order in
//! which Prim's algorithm visits the vertices from `s` — i.e. the
//! reachability plot (§4.1).
//!
//! Two constructions, guaranteed to produce *identical* trees:
//!
//! * [`dendrogram_seq`] — the classic bottom-up union-find sweep over
//!   edges in increasing weight order;
//! * [`dendrogram_par`] — the paper's novel top-down divide-and-conquer
//!   (§4.2): split off the heaviest `heavy_fraction · m` edges (the top of
//!   the dendrogram), solve the heavy subproblem and every light-edge
//!   component *in parallel*, and attach the light dendrograms at the
//!   contracted leaves of the heavy dendrogram.
//!
//! Identity of the two results is possible because every edge is ordered by
//! the strict total key `(w, edge id)` and the internal node for edge `e`
//! is always node `n + e` — so the root of any edge subset (the node where
//! a light dendrogram attaches) is known *before* recursing, letting the
//! heavy and light subproblems run concurrently.
//!
//! Child orientation implements §4.1's ordering rule: for the internal node
//! of edge `(u, v)`, the subtree containing the endpoint with the smaller
//! unweighted tree distance from `s` becomes the left child. Distances are
//! computed once, via the parallel Euler-tour + list-ranking pipeline for
//! large inputs (`parclust-primitives::euler`).

use parclust_mst::Edge;
use parclust_primitives::euler::tree_distances;
use parclust_primitives::hash::{fast_map_with_capacity, FastMap};
use parclust_primitives::select::select_kth;
use parclust_primitives::unionfind::UnionFind;
use parclust_primitives::SendPtr;

/// Marker for "no parent" (the root) in [`Dendrogram::parent`] and for
/// "noise" in flat cluster labelings.
pub const NOISE: u32 = u32::MAX;
const NULL: u32 = u32::MAX;

/// A dendrogram over `n` leaves. Node ids: `0..n` are leaves (the input
/// points); `n + e` is the internal node created by input edge `e`.
#[derive(Debug, Clone)]
pub struct Dendrogram {
    pub n: usize,
    /// Endpoints of edge `e` (as given), kept for cuts and extraction.
    pub edge_u: Vec<u32>,
    pub edge_v: Vec<u32>,
    /// Merge height of internal node `n + e` (the weight of edge `e`).
    pub height: Vec<f64>,
    /// Left/right child of internal node `n + e`.
    pub left: Vec<u32>,
    pub right: Vec<u32>,
    /// Parent of every node (length `2n - 1`), [`NOISE`] for the root.
    pub parent: Vec<u32>,
    /// The root node id.
    pub root: u32,
    /// Unweighted tree distance of every vertex from the start vertex.
    pub vertex_dist: Vec<u32>,
    /// The start vertex whose Prim order the dendrogram encodes.
    pub start: u32,
}

impl Dendrogram {
    /// Height of a node: merge height for internal nodes, 0 for leaves.
    #[inline]
    pub fn node_height(&self, node: u32) -> f64 {
        if (node as usize) < self.n {
            0.0
        } else {
            self.height[node as usize - self.n]
        }
    }

    #[inline]
    pub fn is_leaf(&self, node: u32) -> bool {
        (node as usize) < self.n
    }

    /// Number of nodes (2n - 1 for n ≥ 1, 0 for the empty dendrogram).
    pub fn num_nodes(&self) -> usize {
        (2 * self.n).saturating_sub(1)
    }
}

/// Tuning for [`dendrogram_par`].
#[derive(Debug, Clone, Copy)]
pub struct DendrogramParams {
    /// Fraction of edges treated as heavy per level. The paper's theory
    /// permits any constant fraction; its implementation (and our default)
    /// uses 1/10 (§4.2 "Implementation").
    pub heavy_fraction: f64,
    /// Subproblems at or below this edge count run the sequential
    /// construction. The paper switches below `n/2`; we additionally floor
    /// it so tiny inputs skip the machinery entirely.
    pub seq_threshold_fraction: f64,
}

impl Default for DendrogramParams {
    fn default() -> Self {
        DendrogramParams {
            heavy_fraction: 0.1,
            seq_threshold_fraction: 0.5,
        }
    }
}

/// An edge within a subproblem: the global edge id plus its *contracted*
/// endpoints (light components collapse to their representative vertex).
#[derive(Debug, Clone, Copy)]
struct SubEdge {
    id: u32,
    a: u32,
    b: u32,
}

/// Shared output arrays, written at disjoint indices by the parallel
/// subproblems.
struct Out {
    n: usize,
    left: SendPtr<u32>,
    right: SendPtr<u32>,
    parent: SendPtr<u32>,
}
// SAFETY: the three SendPtrs target disjoint per-node slots — every
// subproblem writes only the node ids it owns (see solve_seq/solve_par).
unsafe impl Send for Out {}
// SAFETY: same disjoint-slot argument for shared use across tasks.
unsafe impl Sync for Out {}

/// Sequential ordered dendrogram (the baseline the parallel version must
/// reproduce exactly).
pub fn dendrogram_seq(n: usize, edges: &[Edge], start: u32) -> Dendrogram {
    build_dendrogram(n, edges, start, None)
}

/// Parallel ordered dendrogram (§4.2) with default parameters.
pub fn dendrogram_par(n: usize, edges: &[Edge], start: u32) -> Dendrogram {
    dendrogram_par_with(n, edges, start, DendrogramParams::default())
}

/// Parallel ordered dendrogram with explicit [`DendrogramParams`].
pub fn dendrogram_par_with(
    n: usize,
    edges: &[Edge],
    start: u32,
    params: DendrogramParams,
) -> Dendrogram {
    build_dendrogram(n, edges, start, Some(params))
}

fn build_dendrogram(
    n: usize,
    edges: &[Edge],
    start: u32,
    params: Option<DendrogramParams>,
) -> Dendrogram {
    let _span = parclust_obs::span!("dendrogram.build", n = n);
    if n == 0 {
        // The empty point set has an empty (rootless) dendrogram; every
        // downstream query returns empty labelings. Serving layers hit this
        // when a model is built over a filtered-to-nothing data slice.
        assert!(edges.is_empty(), "empty vertex set cannot have edges");
        return Dendrogram {
            n: 0,
            edge_u: Vec::new(),
            edge_v: Vec::new(),
            height: Vec::new(),
            left: Vec::new(),
            right: Vec::new(),
            parent: Vec::new(),
            root: NULL,
            vertex_dist: Vec::new(),
            start,
        };
    }
    assert_eq!(edges.len(), n - 1, "input must be a spanning tree");
    let m = edges.len();

    let tree_edges: Vec<(u32, u32)> = edges.iter().map(|e| (e.u, e.v)).collect();
    let vertex_dist = tree_distances(n, &tree_edges, start);
    debug_assert!(
        vertex_dist.iter().all(|&d| d != u32::MAX),
        "input edges must form a connected tree"
    );

    let mut d = Dendrogram {
        n,
        edge_u: edges.iter().map(|e| e.u).collect(),
        edge_v: edges.iter().map(|e| e.v).collect(),
        height: edges.iter().map(|e| e.w).collect(),
        left: vec![NULL; m],
        right: vec![NULL; m],
        parent: vec![NULL; 2 * n - 1],
        root: 0,
        vertex_dist,
        start,
    };
    if m == 0 {
        d.root = 0;
        return d;
    }

    let out = Out {
        n,
        left: SendPtr(d.left.as_mut_ptr()),
        right: SendPtr(d.right.as_mut_ptr()),
        parent: SendPtr(d.parent.as_mut_ptr()),
    };
    let sub: Vec<SubEdge> = (0..m as u32)
        .map(|e| SubEdge {
            id: e,
            a: edges[e as usize].u,
            b: edges[e as usize].v,
        })
        .collect();

    let ctx = Ctx {
        heights: &d.height,
        dist: &d.vertex_dist,
        edge_u: &d.edge_u,
        edge_v: &d.edge_v,
        out: &out,
        seq_threshold: params
            .map(|p| ((m as f64 * p.seq_threshold_fraction) as usize).max(512))
            .unwrap_or(usize::MAX),
        heavy_fraction: params.map(|p| p.heavy_fraction).unwrap_or(0.1),
    };
    let root = solve(&ctx, sub, &FastMap::default());
    d.root = root;
    d
}

/// Immutable context threaded through the recursion.
struct Ctx<'a> {
    heights: &'a [f64],
    dist: &'a [u32],
    edge_u: &'a [u32],
    edge_v: &'a [u32],
    out: &'a Out,
    seq_threshold: usize,
    heavy_fraction: f64,
}

impl<'a> Ctx<'a> {
    /// Strict total edge order.
    #[inline]
    fn key(&self, e: u32) -> (f64, u32) {
        (self.heights[e as usize], e)
    }
}

/// Dendrogram node standing for subproblem vertex `v`: its contracted
/// payload if present, otherwise the leaf.
#[inline]
fn payload_of(payload: &FastMap<u32, u32>, v: u32) -> u32 {
    payload.get(&v).copied().unwrap_or(v)
}

/// Root of a dendrogram over `edges`: the internal node of the maximum-key
/// edge. Known without building anything — the trick that decouples the
/// heavy subproblem from its light children.
fn root_of(ctx: &Ctx, edges: &[SubEdge]) -> u32 {
    let top = edges
        .iter()
        .map(|se| se.id)
        .max_by(|&x, &y| ctx.key(x).partial_cmp(&ctx.key(y)).unwrap())
        .expect("non-empty subproblem");
    ctx.out.n as u32 + top
}

/// Build the dendrogram of one subproblem; returns its root node id.
fn solve(ctx: &Ctx, edges: Vec<SubEdge>, payload: &FastMap<u32, u32>) -> u32 {
    if edges.len() <= ctx.seq_threshold {
        return solve_seq(ctx, edges, payload);
    }
    let m = edges.len();
    let n_heavy = ((m as f64 * ctx.heavy_fraction) as usize).clamp(1, m - 1);

    // Partition into the n_heavy heaviest edges and the rest, by the strict
    // (w, id) key: selection on weights plus an id cutoff inside the tie
    // group keeps this O(m) instead of a sort.
    let weights: Vec<f64> = edges.iter().map(|se| ctx.heights[se.id as usize]).collect();
    let wt = select_kth(&weights, m - n_heavy); // smallest key that is heavy
    let n_greater = edges
        .iter()
        .filter(|se| ctx.heights[se.id as usize] > wt)
        .count();
    // Among the tie group (w == wt), the largest ids are heavy.
    let need_ties = n_heavy - n_greater;
    let mut tie_ids: Vec<u32> = edges
        .iter()
        .filter(|se| ctx.heights[se.id as usize] == wt)
        .map(|se| se.id)
        .collect();
    tie_ids.sort_unstable();
    let tie_cut = tie_ids[tie_ids.len() - need_ties]; // ids >= tie_cut are heavy
    let is_heavy = |se: &SubEdge| {
        let w = ctx.heights[se.id as usize];
        w > wt || (w == wt && se.id >= tie_cut)
    };

    let mut heavy: Vec<SubEdge> = Vec::with_capacity(n_heavy);
    let mut light: Vec<SubEdge> = Vec::with_capacity(m - n_heavy);
    for se in edges {
        if is_heavy(&se) {
            heavy.push(se);
        } else {
            light.push(se);
        }
    }
    debug_assert_eq!(heavy.len(), n_heavy);

    // Light-edge connected components (sequential per subproblem, as in the
    // paper's implementation; parallelism comes from solving components
    // concurrently below).
    let mut local: FastMap<u32, u32> = fast_map_with_capacity(2 * light.len());
    let mut vert_of: Vec<u32> = Vec::with_capacity(2 * light.len());
    let local_id = |v: u32, local: &mut FastMap<u32, u32>, vert_of: &mut Vec<u32>| -> u32 {
        *local.entry(v).or_insert_with(|| {
            vert_of.push(v);
            (vert_of.len() - 1) as u32
        })
    };
    let light_locals: Vec<(u32, u32)> = light
        .iter()
        .map(|se| {
            (
                local_id(se.a, &mut local, &mut vert_of),
                local_id(se.b, &mut local, &mut vert_of),
            )
        })
        .collect();
    let mut uf = UnionFind::new(vert_of.len());
    for &(la, lb) in &light_locals {
        uf.union(la, lb);
    }
    // Group light edges by component root.
    let mut comp_edges: FastMap<u32, Vec<SubEdge>> = FastMap::default();
    for (se, &(la, _)) in light.iter().zip(&light_locals) {
        comp_edges.entry(uf.find(la)).or_default().push(*se);
    }
    // Representative (minimum-dist vertex) and attachment payload per
    // component; unique because the component is connected in the tree.
    let mut rep_of_root: FastMap<u32, u32> = FastMap::default();
    for (lv, &gv) in vert_of.iter().enumerate() {
        let r = uf.find(lv as u32);
        let e = rep_of_root.entry(r).or_insert(gv);
        if (ctx.dist[gv as usize], gv) < (ctx.dist[*e as usize], *e) {
            *e = gv;
        }
    }
    // Map: any vertex in a light component -> its representative.
    let mut contract: FastMap<u32, u32> = fast_map_with_capacity(vert_of.len());
    for (lv, &gv) in vert_of.iter().enumerate() {
        contract.insert(gv, rep_of_root[&uf.find(lv as u32)]);
    }

    // The heavy subproblem: contracted endpoints, payload = light roots
    // (precomputed via root_of) or inherited payloads.
    let heavy_edges: Vec<SubEdge> = heavy
        .iter()
        .map(|se| SubEdge {
            id: se.id,
            a: contract.get(&se.a).copied().unwrap_or(se.a),
            b: contract.get(&se.b).copied().unwrap_or(se.b),
        })
        .collect();
    let light_comps: Vec<(u32, Vec<SubEdge>)> = comp_edges
        .into_iter()
        .map(|(r, es)| (rep_of_root[&r], es))
        .collect();

    let mut heavy_payload: FastMap<u32, u32> =
        fast_map_with_capacity(light_comps.len() + payload.len());
    // Inherited payloads survive for vertices that were not contracted (or
    // are representatives standing for themselves in the heavy problem).
    for (&v, &p) in payload.iter() {
        heavy_payload.insert(v, p);
    }
    for (rep, es) in &light_comps {
        heavy_payload.insert(*rep, root_of(ctx, es));
    }

    // Per-component payload restrictions for the light recursions.
    let light_tasks: Vec<(Vec<SubEdge>, FastMap<u32, u32>)> = light_comps
        .into_iter()
        .map(|(_, es)| {
            let mut p = FastMap::default();
            for se in &es {
                for v in [se.a, se.b] {
                    if let Some(&pl) = payload.get(&v) {
                        p.insert(v, pl);
                    }
                }
            }
            (es, p)
        })
        .collect();

    // Solve the heavy subproblem and every light component in parallel.
    rayon::join(
        || solve(ctx, heavy_edges, &heavy_payload),
        || {
            rayon::scope(|s| {
                for (es, p) in light_tasks {
                    s.spawn(move |_| {
                        solve(ctx, es, &p);
                    });
                }
            })
        },
    )
    .0
}

/// Sequential ordered Kruskal sweep over one subproblem.
fn solve_seq(ctx: &Ctx, mut edges: Vec<SubEdge>, payload: &FastMap<u32, u32>) -> u32 {
    let n = ctx.out.n as u32;
    edges.sort_unstable_by(|x, y| ctx.key(x.id).partial_cmp(&ctx.key(y.id)).unwrap());

    // Local vertex indexing.
    let mut local: FastMap<u32, u32> = fast_map_with_capacity(2 * edges.len());
    let mut comp_node: Vec<u32> = Vec::with_capacity(2 * edges.len());
    for se in &edges {
        for v in [se.a, se.b] {
            local.entry(v).or_insert_with(|| {
                comp_node.push(payload_of(payload, v));
                (comp_node.len() - 1) as u32
            });
        }
    }
    let mut uf = UnionFind::new(comp_node.len());
    let mut last = 0u32;
    for se in &edges {
        let (la, lb) = (local[&se.a], local[&se.b]);
        let (ra, rb) = (uf.find(la), uf.find(lb));
        debug_assert_ne!(ra, rb, "spanning tree edges never form cycles");
        let (node_a, node_b) = (comp_node[ra as usize], comp_node[rb as usize]);
        // Ordering rule (§4.1): the side whose original endpoint is closer
        // to the start vertex goes left. `a` is aligned with edge_u.
        let (u, v) = (ctx.edge_u[se.id as usize], ctx.edge_v[se.id as usize]);
        let (l, r) = if ctx.dist[u as usize] < ctx.dist[v as usize] {
            (node_a, node_b)
        } else {
            (node_b, node_a)
        };
        let me = n + se.id;
        // SAFETY: each edge id and each child node is written exactly once
        // across all subproblems (disjoint ownership).
        unsafe {
            ctx.out.left.write(se.id as usize, l);
            ctx.out.right.write(se.id as usize, r);
            ctx.out.parent.write(l as usize, me);
            ctx.out.parent.write(r as usize, me);
        }
        uf.union(ra, rb);
        let root = uf.find(ra);
        comp_node[root as usize] = me;
        last = me;
    }
    last
}

/// In-order traversal of the ordered dendrogram: returns the leaf visit
/// order (the Prim/OPTICS order from `start`) and the reachability value of
/// each visited leaf (`∞` for the first). §2.1 / Theorem 4.2.
pub fn reachability_plot(d: &Dendrogram) -> (Vec<u32>, Vec<f64>) {
    let mut order = Vec::with_capacity(d.n);
    let mut reach = Vec::with_capacity(d.n);
    if d.n == 0 {
        return (order, reach);
    }
    if d.n == 1 {
        return (vec![0], vec![f64::INFINITY]);
    }
    // Iterative in-order traversal (the tree can be a path; recursion would
    // overflow).
    let mut pending = f64::INFINITY;
    let mut stack: Vec<(u32, bool)> = vec![(d.root, false)];
    while let Some((node, expanded)) = stack.pop() {
        if d.is_leaf(node) {
            order.push(node);
            reach.push(pending);
            continue;
        }
        let e = node as usize - d.n;
        if expanded {
            // Between the two subtrees: the merge height is the next leaf's
            // reachability value.
            pending = d.height[e];
            continue;
        }
        stack.push((d.right[e], false));
        stack.push((node, true));
        stack.push((d.left[e], false));
    }
    (order, reach)
}

/// Flat single-linkage clustering: cut the dendrogram at height `eps`
/// (keep merges with height ≤ `eps`). Returns a cluster label per point;
/// labels are consecutive from 0 in order of first appearance.
pub fn single_linkage_cut(d: &Dendrogram, eps: f64) -> Vec<u32> {
    let mut uf = UnionFind::new(d.n);
    for e in 0..d.height.len() {
        if d.height[e] <= eps {
            uf.union(d.edge_u[e], d.edge_v[e]);
        }
    }
    compact_labels(&mut uf, None)
}

/// Flat single-linkage clustering into exactly `k` clusters: remove the
/// `k - 1` heaviest edges (by the canonical `(w, id)` order). `k` is
/// clamped to `1..=n`; the empty dendrogram yields an empty labeling for
/// any `k`.
pub fn single_linkage_k(d: &Dendrogram, k: usize) -> Vec<u32> {
    if d.n == 0 {
        return Vec::new();
    }
    let m = d.height.len();
    let k = k.clamp(1, d.n);
    let mut ids: Vec<u32> = (0..m as u32).collect();
    ids.sort_unstable_by(|&x, &y| {
        (d.height[x as usize], x)
            .partial_cmp(&(d.height[y as usize], y))
            .unwrap()
    });
    let keep = m + 1 - k;
    let mut uf = UnionFind::new(d.n);
    for &e in &ids[..keep] {
        uf.union(d.edge_u[e as usize], d.edge_v[e as usize]);
    }
    compact_labels(&mut uf, None)
}

/// DBSCAN\* labels at radius `eps` from an HDBSCAN\* dendrogram (§2.1):
/// points with core distance > `eps` are noise ([`NOISE`]); the remaining
/// (core) points cluster by mutual-reachability connectivity ≤ `eps`.
pub fn dbscan_star_labels(d: &Dendrogram, core_distances: &[f64], eps: f64) -> Vec<u32> {
    assert_eq!(core_distances.len(), d.n);
    let mut uf = UnionFind::new(d.n);
    for e in 0..d.height.len() {
        if d.height[e] <= eps {
            uf.union(d.edge_u[e], d.edge_v[e]);
        }
    }
    let noise = |i: usize| core_distances[i] > eps;
    compact_labels(&mut uf, Some(&noise))
}

/// Number of distinct clusters in a flat labeling produced by this crate
/// (cuts, DBSCAN\*, EOM): all producers emit labels consecutive from 0
/// with [`NOISE`] for noise, so the count is max label + 1.
pub fn count_clusters(labels: &[u32]) -> usize {
    labels
        .iter()
        .filter(|&&l| l != NOISE)
        .max()
        .map_or(0, |&m| m as usize + 1)
}

/// Map union-find roots to consecutive labels; `noise(i)` forces
/// [`NOISE`].
fn compact_labels(uf: &mut UnionFind, noise: Option<&dyn Fn(usize) -> bool>) -> Vec<u32> {
    let n = uf.len();
    let mut next = 0u32;
    let mut label_of_root: FastMap<u32, u32> = FastMap::default();
    let mut out = vec![NOISE; n];
    for (i, slot) in out.iter_mut().enumerate() {
        if let Some(f) = noise {
            if f(i) {
                continue;
            }
        }
        let r = uf.find(i as u32);
        *slot = *label_of_root.entry(r).or_insert_with(|| {
            let l = next;
            next += 1;
            l
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use parclust_mst::prim_dense;
    use rand::prelude::*;

    fn random_spanning_tree(n: usize, seed: u64) -> Vec<Edge> {
        let mut rng = StdRng::seed_from_u64(seed);
        (1..n as u32)
            .map(|v| Edge::new(rng.gen_range(0..v), v, rng.gen_range(0.1..100.0)))
            .collect()
    }

    fn check_dendrogram_shape(d: &Dendrogram) {
        // Every non-root node has a parent; heights never decrease upward;
        // in-order visits every leaf exactly once.
        let mut seen_parent = 0;
        for node in 0..d.num_nodes() as u32 {
            if node == d.root {
                assert_eq!(d.parent[node as usize], NOISE);
                continue;
            }
            let p = d.parent[node as usize];
            assert_ne!(p, NOISE, "node {node} lacks a parent");
            assert!(
                d.node_height(node) <= d.node_height(p) + 1e-12,
                "height must be monotone toward the root"
            );
            seen_parent += 1;
        }
        assert_eq!(seen_parent, d.num_nodes() - 1);
        let (order, _) = reachability_plot(d);
        let mut seen = vec![false; d.n];
        for &l in &order {
            assert!(!seen[l as usize]);
            seen[l as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
        // Children are consistent with parents.
        for e in 0..d.height.len() {
            let me = (d.n + e) as u32;
            assert_eq!(d.parent[d.left[e] as usize], me);
            assert_eq!(d.parent[d.right[e] as usize], me);
        }
    }

    #[test]
    fn sequential_tiny_chain() {
        // Path 0-1-2 with weights 1, 2: root is edge 1, left subtree is the
        // merge of (0,1).
        let edges = vec![Edge::new(0, 1, 1.0), Edge::new(1, 2, 2.0)];
        let d = dendrogram_seq(3, &edges, 0);
        assert_eq!(d.root, 3 + 1);
        check_dendrogram_shape(&d);
        let (order, reach) = reachability_plot(&d);
        assert_eq!(order, vec![0, 1, 2]);
        assert_eq!(reach[1], 1.0);
        assert_eq!(reach[2], 2.0);
    }

    #[test]
    fn parallel_equals_sequential_random_trees() {
        for seed in 0..5 {
            let n = 3000;
            let edges = random_spanning_tree(n, seed);
            let s = dendrogram_seq(n, &edges, 0);
            // Force the parallel path with a tiny threshold.
            let p = dendrogram_par_with(
                n,
                &edges,
                0,
                DendrogramParams {
                    heavy_fraction: 0.1,
                    seq_threshold_fraction: 0.01,
                },
            );
            assert_eq!(s.root, p.root, "seed {seed}");
            assert_eq!(s.left, p.left, "seed {seed}");
            assert_eq!(s.right, p.right, "seed {seed}");
            assert_eq!(s.parent, p.parent, "seed {seed}");
        }
    }

    #[test]
    fn parallel_equals_sequential_path_tree() {
        // Worst case for the warm-up algorithm in §4.2: a path with
        // increasing weights.
        let n = 5000;
        let edges: Vec<Edge> = (0..n as u32 - 1)
            .map(|i| Edge::new(i, i + 1, i as f64 + 1.0))
            .collect();
        let s = dendrogram_seq(n, &edges, 0);
        let p = dendrogram_par_with(
            n,
            &edges,
            0,
            DendrogramParams {
                heavy_fraction: 0.1,
                seq_threshold_fraction: 0.02,
            },
        );
        assert_eq!(s.left, p.left);
        assert_eq!(s.right, p.right);
        check_dendrogram_shape(&p);
        let (order, _) = reachability_plot(&p);
        assert_eq!(order, (0..n as u32).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_equals_sequential_duplicate_weights() {
        let n = 2000;
        let mut rng = StdRng::seed_from_u64(9);
        let edges: Vec<Edge> = (1..n as u32)
            .map(|v| Edge::new(rng.gen_range(0..v), v, (rng.gen_range(0..5) as f64) + 1.0))
            .collect();
        let s = dendrogram_seq(n, &edges, 42);
        let p = dendrogram_par_with(
            n,
            &edges,
            42,
            DendrogramParams {
                heavy_fraction: 0.1,
                seq_threshold_fraction: 0.01,
            },
        );
        assert_eq!(s.left, p.left);
        assert_eq!(s.right, p.right);
        assert_eq!(s.parent, p.parent);
    }

    #[test]
    fn inorder_matches_prim_on_euclidean_mst() {
        // Theorem 4.2: the in-order traversal is the Prim order, and the
        // leaf heights are the reachability plot.
        use parclust_geom::Point;
        let mut rng = StdRng::seed_from_u64(4);
        let pts: Vec<Point<2>> = (0..120)
            .map(|_| Point([rng.gen_range(0.0..100.0), rng.gen_range(0.0..100.0)]))
            .collect();
        let mst = crate::emst::emst_memogfk(&pts);
        for start in [0u32, 7, 63] {
            let d = dendrogram_par(pts.len(), &mst.edges, start);
            check_dendrogram_shape(&d);
            let (order, reach) = reachability_plot(&d);
            let oracle = prim_dense(pts.len(), start, |u, v| {
                pts[u as usize].dist(&pts[v as usize])
            });
            assert_eq!(order, oracle.order, "start {start}");
            assert_eq!(reach[0], f64::INFINITY);
            for i in 1..reach.len() {
                assert!(
                    (reach[i] - oracle.reachability[i]).abs() < 1e-9,
                    "start {start} pos {i}: {} vs {}",
                    reach[i],
                    oracle.reachability[i]
                );
            }
        }
    }

    #[test]
    fn empty_dendrogram_all_queries() {
        // n = 0 (e.g. a model built over a filtered-to-nothing slice): every
        // construction and query must return empty results, not panic.
        for d in [dendrogram_seq(0, &[], 0), dendrogram_par(0, &[], 0)] {
            assert_eq!(d.num_nodes(), 0);
            let (order, reach) = reachability_plot(&d);
            assert!(order.is_empty() && reach.is_empty());
            assert!(single_linkage_cut(&d, 1.0).is_empty());
            assert!(single_linkage_cut(&d, f64::INFINITY).is_empty());
            for k in [0, 1, 5] {
                assert!(single_linkage_k(&d, k).is_empty());
            }
            assert!(dbscan_star_labels(&d, &[], 0.5).is_empty());
        }
    }

    #[test]
    fn single_vertex_cut_queries() {
        let d = dendrogram_seq(1, &[], 0);
        assert_eq!(single_linkage_cut(&d, 0.0), vec![0]);
        // k beyond n clamps; k = 0 clamps up to 1.
        for k in [0, 1, 7] {
            assert_eq!(single_linkage_k(&d, k), vec![0], "k={k}");
        }
    }

    #[test]
    fn all_duplicate_height_cuts() {
        // Every merge at the same height: cuts and exact-k must stay
        // consistent with the canonical (w, id) tie order.
        let n = 64usize;
        let w = 2.5;
        let edges: Vec<Edge> = (1..n as u32).map(|v| Edge::new(v - 1, v, w)).collect();
        for d in [dendrogram_seq(n, &edges, 0), dendrogram_par(n, &edges, 0)] {
            let all_one = single_linkage_cut(&d, w);
            assert!(all_one.iter().all(|&l| l == 0), "cut at the tie height");
            let singletons = single_linkage_cut(&d, w * 0.999);
            let distinct: std::collections::HashSet<u32> = singletons.iter().copied().collect();
            assert_eq!(distinct.len(), n, "cut below the tie height");
            for k in [1usize, 2, 17, n, n + 5] {
                let labels = single_linkage_k(&d, k);
                let distinct: std::collections::HashSet<u32> = labels.iter().copied().collect();
                assert_eq!(distinct.len(), k.clamp(1, n), "k={k}");
            }
        }
    }

    #[test]
    fn single_vertex_dendrogram() {
        let d = dendrogram_seq(1, &[], 0);
        assert_eq!(d.root, 0);
        let (order, reach) = reachability_plot(&d);
        assert_eq!(order, vec![0]);
        assert_eq!(reach, vec![f64::INFINITY]);
    }

    #[test]
    fn single_linkage_cuts() {
        // Two well-separated pairs: 0-1 (w=1), 2-3 (w=1), bridge 1-2 (w=10).
        let edges = vec![
            Edge::new(0, 1, 1.0),
            Edge::new(2, 3, 1.0),
            Edge::new(1, 2, 10.0),
        ];
        let d = dendrogram_seq(4, &edges, 0);
        let labels = single_linkage_cut(&d, 5.0);
        assert_eq!(labels[0], labels[1]);
        assert_eq!(labels[2], labels[3]);
        assert_ne!(labels[0], labels[2]);
        let one = single_linkage_cut(&d, 20.0);
        assert!(one.iter().all(|&l| l == one[0]));
        let k2 = single_linkage_k(&d, 2);
        assert_eq!(k2[0], k2[1]);
        assert_ne!(k2[1], k2[2]);
        let k4 = single_linkage_k(&d, 4);
        let distinct: std::collections::HashSet<u32> = k4.iter().copied().collect();
        assert_eq!(distinct.len(), 4);
    }

    #[test]
    fn dbscan_star_extraction_matches_definition() {
        use parclust_geom::Point;
        let mut rng = StdRng::seed_from_u64(11);
        // Two blobs plus an outlier.
        let mut pts: Vec<Point<2>> = Vec::new();
        for _ in 0..40 {
            pts.push(Point([rng.gen_range(0.0..1.0), rng.gen_range(0.0..1.0)]));
        }
        for _ in 0..40 {
            pts.push(Point([rng.gen_range(50.0..51.0), rng.gen_range(0.0..1.0)]));
        }
        pts.push(Point([25.0, 25.0]));
        let min_pts = 5;
        let h = crate::hdbscan::hdbscan_memogfk(&pts, min_pts);
        let d = dendrogram_par(pts.len(), &h.edges, 0);
        let eps = 1.0;
        let labels = dbscan_star_labels(&d, &h.core_distances, eps);

        // Brute-force DBSCAN*: core points have >= minPts neighbors within
        // eps (incl. self); clusters are eps-connectivity on core points.
        let n = pts.len();
        let is_core: Vec<bool> = (0..n)
            .map(|i| (0..n).filter(|&j| pts[i].dist(&pts[j]) <= eps).count() >= min_pts)
            .collect();
        let mut uf = UnionFind::new(n);
        for i in 0..n {
            for j in (i + 1)..n {
                if is_core[i] && is_core[j] && pts[i].dist(&pts[j]) <= eps {
                    uf.union(i as u32, j as u32);
                }
            }
        }
        for i in 0..n {
            assert_eq!(
                labels[i] == NOISE,
                !is_core[i],
                "core/noise mismatch at {i}"
            );
        }
        for i in 0..n {
            for j in (i + 1)..n {
                if is_core[i] && is_core[j] {
                    assert_eq!(
                        labels[i] == labels[j],
                        uf.same(i as u32, j as u32),
                        "connectivity mismatch ({i},{j})"
                    );
                }
            }
        }
    }

    #[test]
    fn start_vertex_changes_order_not_structureless() {
        let n = 500;
        let edges = random_spanning_tree(n, 13);
        let d0 = dendrogram_seq(n, &edges, 0);
        let d9 = dendrogram_seq(n, &edges, 9);
        // Same merge heights (the unordered dendrogram is unique), possibly
        // different child orientation.
        assert_eq!(d0.height, d9.height);
        let (o0, _) = reachability_plot(&d0);
        let (o9, _) = reachability_plot(&d9);
        assert_eq!(o0[0], 0);
        assert_eq!(o9[0], 9);
    }
}
