//! Condensed cluster tree and EOM (excess-of-mass) flat extraction.
//!
//! The paper computes the HDBSCAN\* *hierarchy* (dendrogram + reachability
//! plot); turning the hierarchy into a flat clustering is the job of the
//! condensed-tree machinery of Campello et al. [16] (the paper's HDBSCAN\*
//! reference): prune the dendrogram to splits where both sides have at
//! least `min_cluster_size` points, score each surviving cluster by its
//! *stability* (excess of mass in λ = 1/distance space), and select the
//! antichain of clusters maximizing total stability.
//!
//! This module is an extension beyond the paper's evaluated scope, included
//! because a downstream user of an HDBSCAN\* library expects
//! `labels = hdbscan_cluster(points, min_pts, min_cluster_size)` to exist.

use crate::dendrogram::{Dendrogram, NOISE};
use parclust_primitives::hash::FastMap;

/// The condensed cluster tree.
#[derive(Debug, Clone)]
pub struct CondensedTree {
    /// Parent of each condensed cluster ([`NOISE`] for the root cluster).
    pub parent: Vec<u32>,
    /// λ = 1/distance at which each cluster was born (split off).
    pub birth_lambda: Vec<f64>,
    /// Stability score: Σ over member points of (λ_leave − λ_birth).
    pub stability: Vec<f64>,
    /// Number of points that ever belonged to the cluster.
    pub size: Vec<u32>,
    /// For every point: the condensed cluster it last belonged to.
    pub point_cluster: Vec<u32>,
    /// For every point: the λ at which it left that cluster.
    pub point_lambda: Vec<f64>,
}

impl CondensedTree {
    pub fn num_clusters(&self) -> usize {
        self.parent.len()
    }
}

#[inline]
fn lambda_of(height: f64, cap: f64) -> f64 {
    if height > 0.0 {
        (1.0 / height).min(cap)
    } else {
        cap
    }
}

/// Condense a (HDBSCAN\*) dendrogram: clusters survive only while they hold
/// at least `min_cluster_size` points. `min_cluster_size >= 2`.
pub fn condense_tree(d: &Dendrogram, min_cluster_size: usize) -> CondensedTree {
    assert!(min_cluster_size >= 2, "min_cluster_size must be at least 2");
    let n = d.n;
    if n == 0 {
        // Empty dendrogram: just the root cluster, no points.
        return CondensedTree {
            parent: vec![NOISE; 1],
            birth_lambda: vec![0.0],
            stability: vec![0.0],
            size: vec![0],
            point_cluster: Vec::new(),
            point_lambda: Vec::new(),
        };
    }
    // λ cap keeps zero-height merges (duplicate points) finite: one decade
    // above the largest finite split level.
    let min_pos = d
        .height
        .iter()
        .copied()
        .filter(|&h| h > 0.0)
        .fold(f64::INFINITY, f64::min);
    let cap = if min_pos.is_finite() {
        10.0 / min_pos
    } else {
        1.0
    };

    // Subtree sizes: children precede parents in (height, id) order.
    let mut order: Vec<u32> = (0..d.height.len() as u32).collect();
    order.sort_unstable_by(|&x, &y| {
        (d.height[x as usize], x)
            .partial_cmp(&(d.height[y as usize], y))
            .unwrap()
    });
    let mut size = vec![1u32; d.num_nodes()];
    for &e in &order {
        let me = n + e as usize;
        size[me] = size[d.left[e as usize] as usize] + size[d.right[e as usize] as usize];
    }

    let mut ct = CondensedTree {
        parent: vec![NOISE; 1],
        birth_lambda: vec![0.0],
        stability: vec![0.0],
        size: vec![0],
        point_cluster: vec![NOISE; n],
        point_lambda: vec![0.0; n],
    };

    // Enumerate the leaves under `node`, recording their departure from
    // cluster `c` at level `lambda`.
    let record_subtree = |ct: &mut CondensedTree, node: u32, c: u32, lambda: f64| {
        let mut stack = vec![node];
        while let Some(x) = stack.pop() {
            if d.is_leaf(x) {
                ct.point_cluster[x as usize] = c;
                ct.point_lambda[x as usize] = lambda;
                ct.stability[c as usize] += lambda - ct.birth_lambda[c as usize];
                ct.size[c as usize] += 1;
            } else {
                let e = x as usize - n;
                stack.push(d.left[e]);
                stack.push(d.right[e]);
            }
        }
    };

    // Top-down sweep: (dendrogram node, condensed cluster it belongs to).
    let mut stack: Vec<(u32, u32)> = vec![(d.root, 0)];
    while let Some((x, c)) = stack.pop() {
        if d.is_leaf(x) {
            // A cluster has shrunk to one point: it leaves at the λ of the
            // merge that made it a singleton — recorded by its parent split
            // below, so reaching a leaf here only happens for n == 1.
            record_subtree(&mut ct, x, c, cap);
            continue;
        }
        let e = x as usize - n;
        let lambda = lambda_of(d.height[e], cap);
        let (l, r) = (d.left[e], d.right[e]);
        let (sl, sr) = (size[l as usize] as usize, size[r as usize] as usize);
        match (sl >= min_cluster_size, sr >= min_cluster_size) {
            (true, true) => {
                // True split: two new clusters born at this level. Every
                // point of c ends its membership here, so c's stability
                // takes the full (λ − λ_birth) · |c| excess-of-mass term
                // (Campello et al.; the reference implementation's
                // cluster-size rows).
                ct.stability[c as usize] +=
                    (lambda - ct.birth_lambda[c as usize]) * (sl + sr) as f64;
                for child in [l, r] {
                    let id = ct.parent.len() as u32;
                    ct.parent.push(c);
                    ct.birth_lambda.push(lambda);
                    ct.stability.push(0.0);
                    ct.size.push(0);
                    stack.push((child, id));
                }
            }
            (true, false) => {
                // The small right side falls out of c; the left continues.
                record_subtree(&mut ct, r, c, lambda);
                stack.push((l, c));
            }
            (false, true) => {
                record_subtree(&mut ct, l, c, lambda);
                stack.push((r, c));
            }
            (false, false) => {
                // The cluster dissolves entirely at this level.
                record_subtree(&mut ct, l, c, lambda);
                record_subtree(&mut ct, r, c, lambda);
            }
        }
    }
    ct
}

/// EOM cluster selection: pick the antichain of condensed clusters with
/// maximal total stability (the root is never selected, matching the
/// standard `allow_single_cluster = false` behavior). Returns a label per
/// point, [`NOISE`] for unclustered points; labels are consecutive from 0.
pub fn extract_eom(ct: &CondensedTree) -> Vec<u32> {
    extract_eom_eps(ct, 0.0)
}

/// EOM selection with the `cluster_selection_epsilon` post-processing of
/// Malzer & Baum (*A Hybrid Approach To Hierarchical Density-based Cluster
/// Selection*, 2019), as popularized by the reference `hdbscan` library:
/// after stability selection, any chosen cluster born at a distance below
/// `cluster_selection_epsilon` is replaced by its lowest ancestor born at a
/// distance ≥ ε (clusters that only split "inside" ε are merged back
/// together, absorbing the points that separated between the ancestor's
/// birth and ε). `cluster_selection_epsilon = 0` is exactly
/// [`extract_eom`].
pub fn extract_eom_eps(ct: &CondensedTree, cluster_selection_epsilon: f64) -> Vec<u32> {
    assert!(
        cluster_selection_epsilon >= 0.0 && !cluster_selection_epsilon.is_nan(),
        "cluster_selection_epsilon must be non-negative"
    );
    let k = ct.num_clusters();
    // Children lists.
    let mut children: Vec<Vec<u32>> = vec![Vec::new(); k];
    for c in 1..k as u32 {
        children[ct.parent[c as usize] as usize].push(c);
    }
    // Deepest-first order = reverse creation order (children have larger
    // ids than their parents by construction).
    let mut selected = vec![false; k];
    let mut subtree_stability = vec![0.0f64; k];
    for c in (0..k).rev() {
        let child_sum: f64 = children[c]
            .iter()
            .map(|&ch| subtree_stability[ch as usize])
            .sum();
        if children[c].is_empty() {
            selected[c] = c != 0;
            subtree_stability[c] = ct.stability[c];
        } else if ct.stability[c] >= child_sum && c != 0 {
            selected[c] = true;
            subtree_stability[c] = ct.stability[c];
        } else {
            subtree_stability[c] = child_sum.max(if c == 0 { 0.0 } else { ct.stability[c] });
            if c == 0 {
                subtree_stability[c] = child_sum;
            }
        }
    }
    // Unselect descendants of selected clusters (top-down).
    let mut blocked = vec![false; k];
    for c in 0..k {
        if blocked[c] {
            selected[c] = false;
        }
        if selected[c] || blocked[c] {
            for &ch in &children[c] {
                blocked[ch as usize] = true;
            }
        }
    }

    if cluster_selection_epsilon > 0.0 {
        let eps = cluster_selection_epsilon;
        // Birth distance of cluster c is 1/birth_lambda[c]; "born at or
        // above ε" is birth_lambda · ε ≤ 1 (division-free, and λ > 0 for
        // every non-root cluster).
        let born_at_or_above = |c: u32| ct.birth_lambda[c as usize] * eps <= 1.0;
        let chosen: Vec<u32> = (1..k as u32).filter(|&c| selected[c as usize]).collect();
        let mut merged_away = vec![false; k];
        selected.iter_mut().for_each(|s| *s = false);
        for &c in &chosen {
            if merged_away[c as usize] {
                continue;
            }
            if born_at_or_above(c) {
                selected[c as usize] = true;
                continue;
            }
            // Climb to the lowest ancestor born strictly above ε (Malzer &
            // Baum's `traverse_upwards`); stop below the root, which stays
            // unselectable (allow_single_cluster = false).
            let mut cur = c;
            let target = loop {
                let parent = ct.parent[cur as usize];
                if parent == 0 {
                    break cur;
                }
                if ct.birth_lambda[parent as usize] * eps < 1.0 {
                    break parent;
                }
                cur = parent;
            };
            selected[target as usize] = true;
            // Everything under the merged target is absorbed: later chosen
            // leaves inside it must not climb again.
            let mut stack = vec![target];
            while let Some(x) = stack.pop() {
                for &ch in &children[x as usize] {
                    merged_away[ch as usize] = true;
                    stack.push(ch);
                }
            }
        }
    }

    // Label points by their nearest selected ancestor cluster (points whose
    // chain reaches the root without crossing a selected cluster are noise —
    // the same rule as the reference implementation's union-find labeling,
    // whose λ-floor applies only to its `allow_single_cluster` root case,
    // which we do not support).
    let mut label_of: FastMap<u32, u32> = FastMap::default();
    let mut next = 0u32;
    let mut labels = vec![NOISE; ct.point_cluster.len()];
    for (p, &c0) in ct.point_cluster.iter().enumerate() {
        if c0 == NOISE {
            continue;
        }
        let mut c = c0;
        let found = loop {
            if selected[c as usize] {
                break Some(c);
            }
            let up = ct.parent[c as usize];
            if up == NOISE {
                break None;
            }
            c = up;
        };
        if let Some(c) = found {
            let l = *label_of.entry(c).or_insert_with(|| {
                let l = next;
                next += 1;
                l
            });
            labels[p] = l;
        }
    }
    labels
}

/// Convenience: full flat HDBSCAN\* clustering — MST, dendrogram, condensed
/// tree, EOM selection.
pub fn hdbscan_cluster<const D: usize>(
    points: &[parclust_geom::Point<D>],
    min_pts: usize,
    min_cluster_size: usize,
) -> Vec<u32> {
    hdbscan_cluster_eps(points, min_pts, min_cluster_size, 0.0)
}

/// [`hdbscan_cluster`] with a `cluster_selection_epsilon` distance floor
/// (see [`extract_eom_eps`]): clusters that only split below ε are merged
/// back together, which suppresses over-fragmentation of dense regions.
pub fn hdbscan_cluster_eps<const D: usize>(
    points: &[parclust_geom::Point<D>],
    min_pts: usize,
    min_cluster_size: usize,
    cluster_selection_epsilon: f64,
) -> Vec<u32> {
    if points.len() < 2 {
        return vec![NOISE; points.len()];
    }
    let h = crate::hdbscan::hdbscan_memogfk(points, min_pts);
    let d = crate::dendrogram::dendrogram_par(points.len(), &h.edges, 0);
    let ct = condense_tree(&d, min_cluster_size);
    extract_eom_eps(&ct, cluster_selection_epsilon)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dendrogram::dendrogram_par;
    use crate::hdbscan::hdbscan_memogfk;
    use parclust_geom::Point;
    use rand::prelude::*;

    fn blobs(centers: &[(f64, f64)], per: usize, spread: f64, seed: u64) -> Vec<Point<2>> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut pts = Vec::new();
        for &(cx, cy) in centers {
            for _ in 0..per {
                pts.push(Point([
                    cx + rng.gen_range(-spread..spread),
                    cy + rng.gen_range(-spread..spread),
                ]));
            }
        }
        pts
    }

    #[test]
    fn condensed_tree_invariants() {
        let pts = blobs(&[(0.0, 0.0), (100.0, 0.0), (0.0, 100.0)], 60, 2.0, 1);
        let h = hdbscan_memogfk(&pts, 5);
        let d = dendrogram_par(pts.len(), &h.edges, 0);
        let ct = condense_tree(&d, 5);
        // Every point recorded exactly once, in a real cluster.
        assert!(ct.point_cluster.iter().all(|&c| c != NOISE));
        assert_eq!(
            ct.size.iter().map(|&s| s as usize).sum::<usize>(),
            pts.len(),
            "sizes partition the points"
        );
        assert!(ct.stability.iter().all(|&s| s >= -1e-9));
        // Parents precede children.
        for c in 1..ct.num_clusters() as u32 {
            assert!(ct.parent[c as usize] < c);
            assert!(ct.birth_lambda[c as usize] >= ct.birth_lambda[ct.parent[c as usize] as usize]);
        }
    }

    #[test]
    fn eom_recovers_well_separated_blobs() {
        let pts = blobs(&[(0.0, 0.0), (100.0, 0.0), (0.0, 100.0)], 80, 2.0, 2);
        let labels = hdbscan_cluster(&pts, 5, 10);
        // All three blobs get (distinct) labels, virtually nothing is noise.
        let mut blob_label = Vec::new();
        for b in 0..3 {
            let counts = {
                let mut m = std::collections::HashMap::new();
                for i in 0..80 {
                    *m.entry(labels[b * 80 + i]).or_insert(0usize) += 1;
                }
                m
            };
            let (&dominant, &cnt) = counts.iter().max_by_key(|(_, &c)| c).unwrap();
            assert_ne!(dominant, NOISE, "blob {b} mostly noise");
            assert!(cnt >= 80 * 9 / 10, "blob {b} fragmented: {counts:?}");
            blob_label.push(dominant);
        }
        blob_label.dedup();
        assert_eq!(blob_label.len(), 3, "blobs must get distinct labels");
    }

    #[test]
    fn eom_marks_sparse_background_as_noise() {
        let mut pts = blobs(&[(0.0, 0.0), (60.0, 0.0)], 100, 1.5, 3);
        // Scattered background below min_cluster_size: it can never form a
        // surviving condensed cluster of its own, so it must be noise.
        // (A *larger* diffuse region is legitimately a low-density cluster
        // under HDBSCAN* semantics — see the nested-density test.)
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..9 {
            pts.push(Point([
                rng.gen_range(-5000.0..5000.0),
                rng.gen_range(500.0..20_000.0),
            ]));
        }
        let labels = hdbscan_cluster(&pts, 5, 10);
        let noise_in_bg = labels[200..].iter().filter(|&&l| l == NOISE).count();
        assert!(
            noise_in_bg >= 8,
            "background should be noise: {noise_in_bg}/9"
        );
        assert_ne!(labels[0], NOISE);
        assert_ne!(labels[150], NOISE);
        assert_ne!(labels[0], labels[150]);
    }

    #[test]
    fn nested_density_levels() {
        // Two tight blobs inside a broad diffuse cloud around each: EOM
        // prefers the stable dense cores over the transient union.
        let mut pts = Vec::new();
        let mut rng = StdRng::seed_from_u64(4);
        for &cx in &[0.0, 30.0] {
            for _ in 0..100 {
                pts.push(Point([
                    cx + rng.gen_range(-1.0..1.0),
                    rng.gen_range(-1.0..1.0),
                ]));
            }
        }
        let labels = hdbscan_cluster(&pts, 5, 20);
        assert_ne!(labels[0], NOISE);
        assert_ne!(labels[150], NOISE);
        assert_ne!(labels[0], labels[150], "dense cores must separate");
    }

    #[test]
    fn duplicates_do_not_break_condensation() {
        let mut pts = blobs(&[(0.0, 0.0), (50.0, 0.0)], 50, 1.0, 5);
        for i in 0..20 {
            pts.push(pts[i]);
        }
        let labels = hdbscan_cluster(&pts, 5, 10);
        assert_ne!(labels[0], NOISE);
        // Duplicates land with their originals.
        for i in 0..20 {
            assert_eq!(labels[100 + i], labels[i]);
        }
    }

    #[test]
    fn tiny_inputs() {
        assert_eq!(hdbscan_cluster::<2>(&[], 5, 5), Vec::<u32>::new());
        assert_eq!(hdbscan_cluster(&[Point([1.0, 1.0])], 5, 5), vec![NOISE]);
        assert_eq!(hdbscan_cluster_eps::<2>(&[], 5, 5, 1.0), Vec::<u32>::new());
    }

    fn num_clusters(labels: &[u32]) -> usize {
        let mut d: Vec<u32> = labels.iter().copied().filter(|&l| l != NOISE).collect();
        d.sort_unstable();
        d.dedup();
        d.len()
    }

    #[test]
    fn epsilon_zero_is_plain_eom() {
        let pts = blobs(&[(0.0, 0.0), (100.0, 0.0), (0.0, 100.0)], 60, 2.0, 6);
        let h = hdbscan_memogfk(&pts, 5);
        let d = dendrogram_par(pts.len(), &h.edges, 0);
        let ct = condense_tree(&d, 5);
        assert_eq!(extract_eom(&ct), extract_eom_eps(&ct, 0.0));
    }

    #[test]
    fn epsilon_merges_subclusters_split_below_threshold() {
        // Two tight sub-blobs 6 apart, and a third blob far away. EOM at
        // ε = 0 separates the sub-blobs; ε = 10 must merge them (they split
        // at distance ≈ 6 < ε) while keeping the far blob distinct.
        let mut pts = blobs(&[(0.0, 0.0), (6.0, 0.0)], 80, 0.5, 7);
        pts.extend(blobs(&[(200.0, 0.0)], 80, 0.5, 8));
        let plain = hdbscan_cluster(&pts, 5, 10);
        let merged = hdbscan_cluster_eps(&pts, 5, 10, 10.0);
        assert_eq!(num_clusters(&plain), 3, "plain EOM splits the sub-blobs");
        assert_eq!(num_clusters(&merged), 2, "epsilon merges the close pair");
        // The two sub-blobs share one label; the far blob keeps its own.
        assert_eq!(merged[0], merged[90]);
        assert_ne!(merged[0], merged[200]);
        assert_ne!(merged[200], NOISE);
    }

    #[test]
    fn epsilon_below_every_split_is_a_no_op() {
        // When every selected cluster is born at a distance ≥ ε, the
        // epsilon search never climbs and the labeling must be *identical*
        // to plain EOM (the reference implementation's behavior — its
        // λ-floor only applies to allow_single_cluster root labeling).
        let mut pts = blobs(&[(0.0, 0.0), (40.0, 0.0)], 100, 1.0, 9);
        pts.push(Point([20.0, 0.0])); // between the blobs, departs late
        let plain = hdbscan_cluster(&pts, 5, 10);
        let eps = hdbscan_cluster_eps(&pts, 5, 10, 3.0);
        assert_eq!(plain, eps, "blob splits happen far above eps=3");
        assert_ne!(eps[0], NOISE);
        assert_ne!(eps[150], NOISE);
        assert_ne!(eps[0], eps[150], "well-separated blobs stay distinct");
    }

    #[test]
    fn epsilon_huge_merges_everything_reachable() {
        // ε beyond every split distance: every selected cluster climbs to a
        // child of the root, so points cluster by root-child membership.
        let pts = blobs(&[(0.0, 0.0), (30.0, 0.0), (60.0, 0.0)], 60, 1.0, 10);
        let labels = hdbscan_cluster_eps(&pts, 5, 10, 1e6);
        assert!(num_clusters(&labels) <= 2, "climbing stops below the root");
        assert!(labels.iter().any(|&l| l != NOISE));
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn epsilon_rejects_negative() {
        let ct = CondensedTree {
            parent: vec![NOISE],
            birth_lambda: vec![0.0],
            stability: vec![0.0],
            size: vec![0],
            point_cluster: Vec::new(),
            point_lambda: Vec::new(),
        };
        extract_eom_eps(&ct, -1.0);
    }
}
