//! # parclust — parallel EMST and hierarchical spatial clustering
//!
//! A from-scratch Rust implementation of the algorithms in *"Fast Parallel
//! Algorithms for Euclidean Minimum Spanning Tree and Hierarchical Spatial
//! Clustering"* (Wang, Yu, Gu, Shun — SIGMOD 2021):
//!
//! * **EMST** — well-separated pair decomposition + GeoFilterKruskal, with
//!   the paper's MemoGFK memory optimization ([`emst`], [`emst_memogfk`],
//!   [`emst_gfk`], [`emst_naive`], [`emst_boruvka`]).
//! * **HDBSCAN\*** — hierarchical density-based clustering via an MST of
//!   the mutual reachability graph, using the paper's new notion of
//!   well-separation ([`hdbscan_memogfk`], [`hdbscan_gantao`]), plus
//!   approximate OPTICS ([`optics_approx`]).
//! * **Ordered dendrograms** — the paper's parallel top-down
//!   divide-and-conquer construction ([`dendrogram_par`],
//!   [`dendrogram_seq`]), reachability plots, single-linkage clustering,
//!   and flat cluster extraction (ε-cuts and EOM stability).
//!
//! ## Quick start
//!
//! ```
//! use parclust::{emst, Point};
//!
//! let points: Vec<Point<2>> = (0..100)
//!     .map(|i| Point([(i % 10) as f64, (i / 10) as f64]))
//!     .collect();
//! let tree = emst(&points);
//! assert_eq!(tree.edges.len(), 99);
//! ```
//!
//! All algorithms parallelize via rayon; run them inside a configured
//! `rayon::ThreadPool` (`pool.install(|| ...)`) to control the number of
//! threads. Results are bit-identical at every thread count — see
//! `tests/parallel_semantics.rs` for the pinned contract.

pub mod dbscan;
pub mod dendrogram;
pub mod emst;
pub mod extract;
pub mod hdbscan;
pub mod optics;
pub mod stats;

mod boruvka;
mod drivers;

pub use drivers::BetaSchedule;
pub use emst::emst_memogfk_with_schedule;

pub use dbscan::dbscan_star_direct;
pub use dendrogram::{
    count_clusters, dbscan_star_labels, dendrogram_par, dendrogram_par_with, dendrogram_seq,
    reachability_plot, single_linkage_cut, single_linkage_k, Dendrogram, DendrogramParams, NOISE,
};
pub use emst::{
    emst, emst_boruvka, emst_delaunay, emst_gfk, emst_memogfk, emst_naive, emst_streaming, Emst,
};
pub use extract::{
    condense_tree, extract_eom, extract_eom_eps, hdbscan_cluster, hdbscan_cluster_eps,
    CondensedTree,
};
pub use hdbscan::{
    core_distances, hdbscan, hdbscan_gantao, hdbscan_gantao_streaming, hdbscan_memogfk,
    hdbscan_memogfk_with_cds, hdbscan_streaming, hdbscan_streaming_with_cds, HdbscanMst,
};
pub use optics::optics_approx;
pub use stats::Stats;

// Re-export the geometric and edge vocabulary so downstream users need only
// this crate.
pub use parclust_geom::{Aabb, Point};
pub use parclust_mst::Edge;
