//! Shared harness for the reproduction binaries and criterion benches.
//!
//! The paper's evaluation (§5) runs 12 data sets (4 synthetic × sizes, 4
//! real) on a 48-core machine at n up to 24.9M. This harness reproduces the
//! *structure* of every table and figure at a scale configurable for the
//! current machine; `DATASETS` mirrors the paper's lineup with surrogate
//! generators standing in for the non-redistributable real data sets
//! (DESIGN.md, substitution 2).

pub mod gate;
pub mod kernels;
pub mod memory;

use serde::Serialize;
use std::time::Instant;

/// One benchmark data set: a name mirroring the paper's, a dimension, and
/// a baseline point count at `--scale 1.0`.
#[derive(Debug, Clone, Copy)]
pub struct DataSpec {
    pub name: &'static str,
    pub dims: usize,
    pub base_n: usize,
    pub kind: DataKind,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DataKind {
    Uniform,
    SeedSpreader,
    GpsLike,
    SensorLike,
}

/// The paper's 12-data-set lineup (Table 4/5 rows, Figure 6/7 panels),
/// scaled to laptop-class baseline sizes.
pub const DATASETS: &[DataSpec] = &[
    DataSpec {
        name: "2D-UniformFill",
        dims: 2,
        base_n: 100_000,
        kind: DataKind::Uniform,
    },
    DataSpec {
        name: "3D-UniformFill",
        dims: 3,
        base_n: 100_000,
        kind: DataKind::Uniform,
    },
    DataSpec {
        name: "5D-UniformFill",
        dims: 5,
        base_n: 50_000,
        kind: DataKind::Uniform,
    },
    DataSpec {
        name: "7D-UniformFill",
        dims: 7,
        base_n: 25_000,
        kind: DataKind::Uniform,
    },
    DataSpec {
        name: "2D-SS-varden",
        dims: 2,
        base_n: 100_000,
        kind: DataKind::SeedSpreader,
    },
    DataSpec {
        name: "3D-SS-varden",
        dims: 3,
        base_n: 100_000,
        kind: DataKind::SeedSpreader,
    },
    DataSpec {
        name: "5D-SS-varden",
        dims: 5,
        base_n: 50_000,
        kind: DataKind::SeedSpreader,
    },
    DataSpec {
        name: "7D-SS-varden",
        dims: 7,
        base_n: 25_000,
        kind: DataKind::SeedSpreader,
    },
    DataSpec {
        name: "3D-GeoLife-like",
        dims: 3,
        base_n: 150_000,
        kind: DataKind::GpsLike,
    },
    DataSpec {
        name: "7D-Household-like",
        dims: 7,
        base_n: 40_000,
        kind: DataKind::SensorLike,
    },
    DataSpec {
        name: "10D-HT-like",
        dims: 10,
        base_n: 25_000,
        kind: DataKind::SensorLike,
    },
    DataSpec {
        name: "16D-CHEM-like",
        dims: 16,
        base_n: 15_000,
        kind: DataKind::SensorLike,
    },
];

/// Look up a data set by (case-insensitive) name.
pub fn dataset(name: &str) -> Option<&'static DataSpec> {
    DATASETS.iter().find(|d| d.name.eq_ignore_ascii_case(name))
}

/// Generate the points of `spec` at `n` points and hand them, with their
/// concrete dimension, to the visitor macro below. (Rust needs the const
/// dimension at the call site; this macro is the single dispatch point.)
#[macro_export]
macro_rules! with_points {
    ($spec:expr, $n:expr, |$pts:ident| $body:expr) => {{
        use parclust_data::{gps_like, seed_spreader, sensor_like, uniform_fill};
        use $crate::DataKind;
        let spec: &$crate::DataSpec = $spec;
        let n: usize = $n;
        match (spec.kind, spec.dims) {
            (DataKind::Uniform, 2) => {
                let $pts = uniform_fill::<2>(n, 42);
                $body
            }
            (DataKind::Uniform, 3) => {
                let $pts = uniform_fill::<3>(n, 42);
                $body
            }
            (DataKind::Uniform, 5) => {
                let $pts = uniform_fill::<5>(n, 42);
                $body
            }
            (DataKind::Uniform, 7) => {
                let $pts = uniform_fill::<7>(n, 42);
                $body
            }
            (DataKind::SeedSpreader, 2) => {
                let $pts = seed_spreader::<2>(n, 42);
                $body
            }
            (DataKind::SeedSpreader, 3) => {
                let $pts = seed_spreader::<3>(n, 42);
                $body
            }
            (DataKind::SeedSpreader, 5) => {
                let $pts = seed_spreader::<5>(n, 42);
                $body
            }
            (DataKind::SeedSpreader, 7) => {
                let $pts = seed_spreader::<7>(n, 42);
                $body
            }
            (DataKind::GpsLike, 3) => {
                let $pts = gps_like(n, 42);
                $body
            }
            (DataKind::SensorLike, 7) => {
                let $pts = sensor_like::<7>(n, 42, 8);
                $body
            }
            (DataKind::SensorLike, 10) => {
                let $pts = sensor_like::<10>(n, 42, 8);
                $body
            }
            (DataKind::SensorLike, 16) => {
                let $pts = sensor_like::<16>(n, 42, 12);
                $body
            }
            (kind, dims) => unreachable!("no generator for {:?} in {} dims", kind, dims),
        }
    }};
}

/// Best-of-`reps` timing: one pool is built up front (worker spawning never
/// lands inside the timed region) and every repetition is timed — including
/// the first, cold-cache one — with the fastest returned.
pub fn best_time<T: Send>(threads: usize, reps: usize, f: impl FnMut() -> T + Send) -> (T, f64) {
    let (out, secs, _) = best_time_with_metrics(threads, reps, f);
    (out, secs)
}

/// [`best_time`] plus the pool's work-distribution counters (jobs per
/// worker, steal attempts/hits, injector pushes, idle parks) accumulated
/// over *all* repetitions, serialized for a [`ResultRow`]'s `extra` field.
pub fn best_time_with_metrics<T: Send>(
    threads: usize,
    reps: usize,
    mut f: impl FnMut() -> T + Send,
) -> (T, f64, serde_json::Value) {
    assert!(reps >= 1);
    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .expect("thread pool");
    let mut best: Option<(T, f64)> = None;
    for _ in 0..reps {
        let t0 = Instant::now();
        let out = pool.install(&mut f);
        let secs = t0.elapsed().as_secs_f64();
        if best.as_ref().is_none_or(|(_, b)| secs < *b) {
            best = Some((out, secs));
        }
    }
    let (out, secs) = best.unwrap();
    (out, secs, pool_metrics_json(&pool.metrics()))
}

/// Serialize a pool's counters for bench JSON: totals plus the per-worker
/// job split (the work-imbalance signal).
pub fn pool_metrics_json(m: &rayon::PoolMetrics) -> serde_json::Value {
    let jobs_per_worker: Vec<u64> = m.workers.iter().map(|w| w.jobs).collect();
    serde_json::json!({
        "workers": m.workers.len() as u64,
        "jobs": m.total_jobs(),
        "steal_attempts": m.total_steal_attempts(),
        "steal_hits": m.total_steal_hits(),
        "injected": m.injected,
        "parks": m.total_parks(),
        "jobs_per_worker": jobs_per_worker,
    })
}

/// Largest pool width the harness benches at: `PARCLUST_MAX_THREADS` when
/// set to a positive integer (the `repro --threads` flag routes through
/// it), otherwise the hardware parallelism. Oversubscription is allowed —
/// benching 4-thread pools on a smaller machine measures scheduling
/// overhead honestly rather than silently clamping.
pub fn max_threads() -> usize {
    if let Ok(v) = std::env::var("PARCLUST_MAX_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
}

/// The thread counts exercised by the speedup figures: 1, 2, 4, ... up to
/// [`max_threads`] (always including the maximum).
pub fn thread_counts() -> Vec<usize> {
    let max = max_threads();
    let mut ts = vec![1usize];
    let mut t = 2;
    while t < max {
        ts.push(t);
        t *= 2;
    }
    if max > 1 {
        ts.push(max);
    }
    ts.dedup();
    ts
}

/// A generic result row serialized into the JSON report next to the text
/// tables.
#[derive(Debug, Clone, Serialize)]
pub struct ResultRow {
    pub experiment: String,
    pub dataset: String,
    pub method: String,
    pub threads: usize,
    pub n: usize,
    pub seconds: f64,
    #[serde(skip_serializing_if = "Option::is_none")]
    pub extra: Option<serde_json::Value>,
}

/// Collects rows and writes them as pretty JSON at the end of a run.
#[derive(Default)]
pub struct Report {
    pub rows: Vec<ResultRow>,
}

impl Report {
    pub fn push(&mut self, row: ResultRow) {
        self.rows.push(row);
    }

    pub fn write(&self, path: &std::path::Path) -> std::io::Result<()> {
        if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir)?;
        }
        let json = serde_json::to_string_pretty(&self.rows).expect("serializable rows");
        std::fs::write(path, json)
    }
}

/// Format seconds compactly for table cells.
pub fn fmt_secs(s: f64) -> String {
    if s >= 100.0 {
        format!("{s:.0}")
    } else if s >= 1.0 {
        format!("{s:.2}")
    } else {
        format!("{:.1}ms", s * 1e3)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json::Value;

    #[test]
    fn dataset_lookup() {
        assert!(dataset("2D-UniformFill").is_some());
        assert!(dataset("2d-uniformfill").is_some());
        assert!(dataset("nonexistent").is_none());
        assert_eq!(DATASETS.len(), 12, "paper lineup has 12 data sets");
    }

    #[test]
    fn with_points_dispatches_every_spec() {
        for spec in DATASETS {
            let n = 500;
            let got = with_points!(spec, n, |pts| pts.len());
            assert_eq!(got, n, "{}", spec.name);
        }
    }

    #[test]
    fn thread_counts_start_at_one() {
        let ts = thread_counts();
        assert_eq!(ts[0], 1);
        assert!(ts.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn timing_returns_result() {
        let (v, secs) = best_time(1, 2, || 7 * 6);
        assert_eq!(v, 42);
        assert!(secs >= 0.0);
    }

    #[test]
    fn timing_with_metrics_reports_pool_counters() {
        use rayon::prelude::*;
        let (sum, _, pool) = best_time_with_metrics(2, 2, || {
            (0..10_000u64).into_par_iter().with_min_len(16).sum::<u64>()
        });
        assert_eq!(sum, 10_000 * 9_999 / 2);
        assert_eq!(pool.get("workers").and_then(Value::as_u64), Some(2));
        assert!(pool.get("jobs").and_then(Value::as_u64).unwrap() > 0);
        let per_worker: u64 = pool
            .get("jobs_per_worker")
            .and_then(Value::as_array)
            .unwrap()
            .iter()
            .map(|v| v.as_u64().unwrap())
            .sum();
        assert_eq!(
            Some(per_worker),
            pool.get("jobs").and_then(Value::as_u64),
            "per-worker jobs must sum to the total"
        );
        assert!(
            pool.get("steal_attempts").and_then(Value::as_u64)
                >= pool.get("steal_hits").and_then(Value::as_u64)
        );
    }
}
