//! Memory budgeting and measurement for the scale harness.
//!
//! The `repro scale` experiment runs the streaming pipeline under a
//! `--max-memory` bound: [`MemoryBudget`] converts that bound into a WSPD
//! batch capacity (total budget minus the estimated fixed per-point cost,
//! divided by a conservative per-pair working-set estimate), and
//! [`peak_rss_bytes`] reads the process high-water mark so the bench JSON
//! records whether the run actually stayed inside the bound.

/// Conservative estimate of the resident bytes each point costs the
/// pipeline at dimension `dims`: the caller's input `Vec`, the kd-tree's
/// permuted copy + index + node arena (2n − 1 nodes of `16·dims + 16`
/// bytes), union-find, forest edges, and allocator slack.
pub fn fixed_bytes_per_point(dims: usize) -> u64 {
    (48 * dims + 96) as u64
}

/// Conservative per-pair working-set estimate for one streaming batch:
/// the `NodePair`, the `Option<Edge>` candidate slot, the absorbed `Edge`,
/// and sort scratch.
pub const BYTES_PER_PAIR: u64 = 96;

/// Smallest batch capacity the budget will ever hand out — below this the
/// per-batch component-annotation overhead dominates.
pub const MIN_BATCH_PAIRS: usize = 4_096;

/// A total working-set bound (bytes) for a streaming run.
#[derive(Debug, Clone, Copy)]
pub struct MemoryBudget {
    pub bytes: u64,
}

impl MemoryBudget {
    pub fn new(bytes: u64) -> Self {
        MemoryBudget { bytes }
    }

    /// Estimated fixed cost of `n` points at dimension `dims`.
    pub fn fixed_bytes(&self, n: usize, dims: usize) -> u64 {
        n as u64 * fixed_bytes_per_point(dims)
    }

    /// WSPD batch capacity that keeps the streaming working set inside the
    /// budget: `(bytes − fixed) / BYTES_PER_PAIR`, floored at
    /// [`MIN_BATCH_PAIRS`]. A budget smaller than the fixed cost still
    /// returns the floor — the batches stay bounded, but the caller should
    /// surface that the points themselves exceed the bound.
    pub fn batch_cap(&self, n: usize, dims: usize) -> usize {
        let remaining = self.bytes.saturating_sub(self.fixed_bytes(n, dims));
        let cap = (remaining / BYTES_PER_PAIR) as usize;
        cap.clamp(MIN_BATCH_PAIRS, 1 << 26)
    }
}

/// Parse a human byte size: a plain integer is bytes; `K`/`M`/`G` suffixes
/// (case-insensitive, optional trailing `B` or `iB`) scale by powers of
/// 1024; a fractional mantissa is allowed (`1.5G`).
pub fn parse_bytes(s: &str) -> Result<u64, String> {
    let t = s.trim();
    let lower = t.to_ascii_lowercase();
    let (num, mult) = if let Some(p) = lower.strip_suffix("kib").or(lower.strip_suffix("kb")) {
        (p, 1u64 << 10)
    } else if let Some(p) = lower.strip_suffix("mib").or(lower.strip_suffix("mb")) {
        (p, 1 << 20)
    } else if let Some(p) = lower.strip_suffix("gib").or(lower.strip_suffix("gb")) {
        (p, 1 << 30)
    } else if let Some(p) = lower.strip_suffix('k') {
        (p, 1 << 10)
    } else if let Some(p) = lower.strip_suffix('m') {
        (p, 1 << 20)
    } else if let Some(p) = lower.strip_suffix('g') {
        (p, 1 << 30)
    } else if let Some(p) = lower.strip_suffix('b') {
        (p, 1)
    } else {
        (lower.as_str(), 1)
    };
    let num = num.trim();
    let v: f64 = num
        .parse()
        .map_err(|_| format!("cannot parse byte size {s:?}"))?;
    if !(v.is_finite() && v >= 0.0) {
        return Err(format!("byte size {s:?} out of range"));
    }
    Ok((v * mult as f64) as u64)
}

/// Peak resident set size of this process (bytes), from `/proc` on Linux;
/// `None` where the kernel interface is unavailable.
pub fn peak_rss_bytes() -> Option<u64> {
    #[cfg(target_os = "linux")]
    {
        let status = std::fs::read_to_string("/proc/self/status").ok()?;
        for line in status.lines() {
            if let Some(rest) = line.strip_prefix("VmHWM:") {
                let kb: u64 = rest.trim().trim_end_matches("kB").trim().parse().ok()?;
                return Some(kb * 1024);
            }
        }
        None
    }
    #[cfg(not(target_os = "linux"))]
    {
        None
    }
}

/// Format bytes for table cells.
pub fn fmt_bytes(b: u64) -> String {
    const G: f64 = (1u64 << 30) as f64;
    const M: f64 = (1u64 << 20) as f64;
    let x = b as f64;
    if x >= G {
        format!("{:.2}GiB", x / G)
    } else if x >= M {
        format!("{:.1}MiB", x / M)
    } else {
        format!("{b}B")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_sizes() {
        assert_eq!(parse_bytes("123").unwrap(), 123);
        assert_eq!(parse_bytes("1K").unwrap(), 1024);
        assert_eq!(parse_bytes("2m").unwrap(), 2 << 20);
        assert_eq!(parse_bytes("1G").unwrap(), 1 << 30);
        assert_eq!(parse_bytes("1.5G").unwrap(), 3 << 29);
        assert_eq!(parse_bytes("512MiB").unwrap(), 512 << 20);
        assert_eq!(parse_bytes("64kb").unwrap(), 64 << 10);
        assert_eq!(parse_bytes(" 10 ").unwrap(), 10);
        assert!(parse_bytes("lots").is_err());
        assert!(parse_bytes("-1G").is_err());
    }

    #[test]
    fn budget_caps_scale_with_headroom() {
        let n = 2_000_000;
        let tight = MemoryBudget::new(parse_bytes("512M").unwrap());
        let roomy = MemoryBudget::new(parse_bytes("4G").unwrap());
        let c_tight = tight.batch_cap(n, 3);
        let c_roomy = roomy.batch_cap(n, 3);
        assert!(c_tight >= MIN_BATCH_PAIRS);
        assert!(c_roomy > c_tight, "{c_roomy} vs {c_tight}");
        // A budget below the fixed cost still returns the bounded floor.
        let starved = MemoryBudget::new(1);
        assert_eq!(starved.batch_cap(n, 3), MIN_BATCH_PAIRS);
    }

    #[test]
    fn rss_is_readable_on_linux() {
        if cfg!(target_os = "linux") {
            let rss = peak_rss_bytes().expect("VmHWM available");
            assert!(rss > 1 << 20, "a test process uses at least a MiB");
        }
    }

    #[test]
    fn bytes_formatting() {
        assert_eq!(fmt_bytes(100), "100B");
        assert_eq!(fmt_bytes(3 << 20), "3.0MiB");
        assert_eq!(fmt_bytes(1 << 30), "1.00GiB");
    }
}
