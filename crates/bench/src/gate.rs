//! Bench-regression gate: diff a fresh smoke run against a committed
//! baseline and fail on slowdowns beyond a tolerance.
//!
//! Metrics are deliberately restricted to quantities that transfer across
//! machines better than raw seconds: the table2 speedup ratios
//! (dimensionless) and the serving throughputs the roadmap tracks. Raw
//! per-experiment seconds are *not* gated — CI hardware differs from the
//! machine that recorded the baseline. `requests_per_sec` is reported but
//! ungated (latency-bound, noisier than batch throughput).
//!
//! Driven by the `compare_bench` binary; see README "Bench regression
//! gate" for the CI wiring and the override knobs.

use serde_json::Value;

/// Default failure threshold: >25% below baseline fails the gate.
pub const DEFAULT_TOLERANCE: f64 = 0.25;

/// One comparable quantity extracted from a bench JSON file. `gated`
/// metrics fail the gate when they regress; ungated ones are reported
/// only.
#[derive(Debug, Clone, PartialEq)]
pub struct Metric {
    pub key: String,
    pub value: f64,
    pub gated: bool,
}

/// Extract metrics from a `repro.json`-style array of result rows.
pub fn metrics_from_rows(rows: &Value) -> Vec<Metric> {
    let mut out = Vec::new();
    let Some(items) = rows.as_array() else {
        return out;
    };
    for row in items {
        let experiment = row.get("experiment").and_then(Value::as_str).unwrap_or("");
        if experiment != "table2" {
            continue;
        }
        let dataset = row.get("dataset").and_then(Value::as_str).unwrap_or("?");
        let method = row.get("method").and_then(Value::as_str).unwrap_or("?");
        let Some(extra) = row.get("extra") else {
            continue;
        };
        for field in ["self_relative_speedup", "speedup_over_best_seq"] {
            if let Some(v) = extra.get(field).and_then(Value::as_f64) {
                out.push(Metric {
                    key: format!("table2/{dataset}/{method}/{field}"),
                    value: v,
                    gated: true,
                });
            }
        }
    }
    out
}

/// Extract metrics from a `loadgen --out` report, labeled by serving
/// configuration (e.g. `t4` = 4 pool threads).
pub fn metrics_from_loadgen(label: &str, v: &Value) -> Vec<Metric> {
    let mut out = Vec::new();
    if let Some(x) = v.get("assign_points_per_sec").and_then(Value::as_f64) {
        out.push(Metric {
            key: format!("serving/{label}/assign_points_per_sec"),
            value: x,
            gated: true,
        });
    }
    if let Some(x) = v.get("requests_per_sec").and_then(Value::as_f64) {
        out.push(Metric {
            key: format!("serving/{label}/requests_per_sec"),
            value: x,
            gated: false,
        });
    }
    // Latency quantiles are tracked but never gated: they are bucket upper
    // bounds from a log-spaced histogram, so a one-bucket jitter would be a
    // 2x "regression" on an otherwise healthy run.
    for field in ["latency_p50_ms", "latency_p99_ms"] {
        if let Some(x) = v.get(field).and_then(Value::as_f64) {
            out.push(Metric {
                key: format!("serving/{label}/{field}"),
                value: x,
                gated: false,
            });
        }
    }
    out
}

/// Extract metrics from a `kernel_bench --out` report: an object mapping
/// kernel names to `{lane_secs, scalar_secs, speedup_vs_scalar}`. The
/// speedup is dimensionless (same machine, same run, lane vs scalar), so
/// it transfers across hardware and is gated.
pub fn metrics_from_kernels(v: &Value) -> Vec<Metric> {
    let mut out = Vec::new();
    let Some(map) = v.as_object() else {
        return out;
    };
    for (kernel, blob) in map {
        if let Some(s) = blob.get("speedup_vs_scalar").and_then(Value::as_f64) {
            out.push(Metric {
                key: format!("kernels/{kernel}/speedup_vs_scalar"),
                value: s,
                gated: true,
            });
        }
    }
    out
}

/// Extract metrics from a `dyn_bench --out` report: incremental-mutation
/// throughput plus the merge/rebuild path split. Throughput is gated —
/// it is the quantity the rebuild-vs-merge policy exists to protect; the
/// path counts are informational (they describe the workload, and a
/// policy retune should not fail the gate by itself).
pub fn metrics_from_dynamic(v: &Value) -> Vec<Metric> {
    let mut out = Vec::new();
    if let Some(x) = v.get("insert_pts_per_s").and_then(Value::as_f64) {
        out.push(Metric {
            key: "dynamic/insert_pts_per_s".to_string(),
            value: x,
            gated: true,
        });
    }
    for field in ["merge_batches", "rebuild_batches"] {
        if let Some(x) = v.get(field).and_then(Value::as_f64) {
            out.push(Metric {
                key: format!("dynamic/{field}"),
                value: x,
                gated: false,
            });
        }
    }
    out
}

/// Extract every metric from a committed `BENCH_prN.json` baseline:
/// a `rows` array (repro rows), a `serving` object mapping labels to
/// loadgen reports, a `kernels` object of kernel-bench reports, and/or a
/// `dynamic` object holding a dyn-bench report. A bare rows array is also
/// accepted.
pub fn metrics_from_baseline(v: &Value) -> Vec<Metric> {
    let mut out = Vec::new();
    if v.as_array().is_some() {
        out.extend(metrics_from_rows(v));
        return out;
    }
    if let Some(rows) = v.get("rows") {
        out.extend(metrics_from_rows(rows));
    }
    if let Some(serving) = v.get("serving").and_then(Value::as_object) {
        for (label, blob) in serving {
            out.extend(metrics_from_loadgen(label, blob));
        }
    }
    if let Some(kernels) = v.get("kernels") {
        out.extend(metrics_from_kernels(kernels));
    }
    if let Some(dynamic) = v.get("dynamic") {
        out.extend(metrics_from_dynamic(dynamic));
    }
    out
}

/// Assemble a committed-baseline document (the `BENCH_prN.json` shape)
/// from a run's raw inputs: `row_sets` are repro row arrays (concatenated),
/// `serving` maps labels to loadgen reports. The result round-trips through
/// [`metrics_from_baseline`] — CI writes this next to its bench artifacts
/// so refreshing the committed baseline is download-and-commit, not a
/// hand-assembled JSON.
pub fn baseline_json(
    note: &str,
    row_sets: &[Value],
    serving: &[(String, Value)],
    kernels: Option<&Value>,
    dynamic: Option<&Value>,
) -> Value {
    let mut rows = Vec::new();
    for set in row_sets {
        if let Some(items) = set.as_array() {
            rows.extend(items.iter().cloned());
        }
    }
    let mut fields = vec![
        ("note".to_string(), Value::String(note.to_string())),
        ("rows".to_string(), Value::Array(rows)),
        ("serving".to_string(), Value::Object(serving.to_vec())),
    ];
    if let Some(k) = kernels {
        fields.push(("kernels".to_string(), k.clone()));
    }
    if let Some(d) = dynamic {
        fields.push(("dynamic".to_string(), d.clone()));
    }
    Value::Object(fields)
}

/// One baseline-vs-current comparison.
#[derive(Debug, Clone)]
pub struct Comparison {
    pub key: String,
    pub baseline: f64,
    pub current: f64,
    /// `current / baseline`; above 1.0 is an improvement.
    pub ratio: f64,
    pub gated: bool,
    pub regressed: bool,
}

/// Outcome of a gate run.
#[derive(Debug)]
pub struct GateOutcome {
    pub comparisons: Vec<Comparison>,
    /// Gated metrics present on both sides.
    pub shared_gated: usize,
    /// Gated metrics that regressed beyond the tolerance.
    pub failures: usize,
}

impl GateOutcome {
    /// The gate passes only if at least one gated metric was compared and
    /// none regressed — zero shared metrics means the wiring is broken,
    /// which must fail loudly rather than silently green-light.
    pub fn passed(&self) -> bool {
        self.shared_gated > 0 && self.failures == 0
    }
}

/// Compare `current` metrics against `baseline` at the given tolerance:
/// a gated metric regresses when `current < baseline * (1 - tolerance)`.
pub fn compare(baseline: &[Metric], current: &[Metric], tolerance: f64) -> GateOutcome {
    let mut comparisons = Vec::new();
    let mut shared_gated = 0;
    let mut failures = 0;
    for b in baseline {
        let Some(c) = current.iter().find(|c| c.key == b.key) else {
            continue;
        };
        let ratio = if b.value > 0.0 {
            c.value / b.value
        } else {
            f64::INFINITY
        };
        let gated = b.gated && c.gated;
        let regressed = gated && ratio < 1.0 - tolerance;
        if gated {
            shared_gated += 1;
        }
        if regressed {
            failures += 1;
        }
        comparisons.push(Comparison {
            key: b.key.clone(),
            baseline: b.value,
            current: c.value,
            ratio,
            gated,
            regressed,
        });
    }
    GateOutcome {
        comparisons,
        shared_gated,
        failures,
    }
}

/// A cross-label ratio requirement on the *current* run: the numerator
/// label's `assign_points_per_sec` must be at least `min` times the
/// denominator label's. This is how CI enforces "the binary protocol beats
/// the JSON path by ≥1.5×" — a property of one run, unlike the
/// baseline-relative regression gate above.
#[derive(Debug, Clone, PartialEq)]
pub struct RatioCheck {
    pub numerator: String,
    pub denominator: String,
    pub min: f64,
}

impl RatioCheck {
    /// Parse `NUM/DEN=MIN` (e.g. `t4bin/t4=1.5`).
    pub fn parse(spec: &str) -> Result<RatioCheck, String> {
        let (labels, min) = spec
            .split_once('=')
            .ok_or_else(|| format!("ratio spec {spec:?} must be NUM/DEN=MIN"))?;
        let (num, den) = labels
            .split_once('/')
            .ok_or_else(|| format!("ratio spec {spec:?} must be NUM/DEN=MIN"))?;
        let min: f64 = min
            .parse()
            .map_err(|_| format!("ratio minimum {min:?} must be a float"))?;
        if min.is_nan() || min <= 0.0 {
            return Err(format!("ratio minimum must be positive, got {min}"));
        }
        Ok(RatioCheck {
            numerator: num.to_string(),
            denominator: den.to_string(),
            min,
        })
    }

    fn throughput(&self, metrics: &[Metric], label: &str) -> Result<f64, String> {
        let key = format!("serving/{label}/assign_points_per_sec");
        metrics
            .iter()
            .find(|m| m.key == key)
            .map(|m| m.value)
            .ok_or_else(|| format!("metric {key} missing from the current run"))
    }

    /// Evaluate against the current run's metrics; `Ok(ratio)` when the
    /// requirement holds.
    pub fn evaluate(&self, current: &[Metric]) -> Result<f64, String> {
        let num = self.throughput(current, &self.numerator)?;
        let den = self.throughput(current, &self.denominator)?;
        if den <= 0.0 {
            return Err(format!(
                "serving/{}/assign_points_per_sec is {den}, ratio undefined",
                self.denominator
            ));
        }
        let ratio = num / den;
        if ratio < self.min {
            return Err(format!(
                "serving/{} is only {ratio:.2}x serving/{} (minimum {:.2}x)",
                self.numerator, self.denominator, self.min
            ));
        }
        Ok(ratio)
    }
}

/// An absolute floor on a kernel's vectorization speedup in the *current*
/// run: `kernels/NAME/speedup_vs_scalar` must be at least `min`. Unlike
/// the baseline-relative gate this pins a property the tentpole promises
/// outright (the SoA lane kernel beats the scalar gather by ≥ `min`×),
/// so a baseline refresh can never quietly ratchet it away.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelFloor {
    pub kernel: String,
    pub min: f64,
}

impl KernelFloor {
    /// Parse `NAME=MIN` (e.g. `bccp_pair_loop=1.3`).
    pub fn parse(spec: &str) -> Result<KernelFloor, String> {
        let (kernel, min) = spec
            .split_once('=')
            .ok_or_else(|| format!("kernel floor spec {spec:?} must be NAME=MIN"))?;
        let min: f64 = min
            .parse()
            .map_err(|_| format!("kernel floor minimum {min:?} must be a float"))?;
        if min.is_nan() || min <= 0.0 {
            return Err(format!("kernel floor minimum must be positive, got {min}"));
        }
        Ok(KernelFloor {
            kernel: kernel.to_string(),
            min,
        })
    }

    /// Evaluate against the current run's metrics; `Ok(speedup)` when the
    /// floor holds.
    pub fn evaluate(&self, current: &[Metric]) -> Result<f64, String> {
        let key = format!("kernels/{}/speedup_vs_scalar", self.kernel);
        let speedup = current
            .iter()
            .find(|m| m.key == key)
            .map(|m| m.value)
            .ok_or_else(|| format!("metric {key} missing from the current run"))?;
        if speedup < self.min {
            return Err(format!(
                "kernel {} is only {speedup:.2}x the scalar reference (floor {:.2}x)",
                self.kernel, self.min
            ));
        }
        Ok(speedup)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json::json;

    fn table2_row(dataset: &str, method: &str, self_rel: f64, over_best: f64) -> Value {
        json!({
            "experiment": "table2",
            "dataset": dataset,
            "method": method,
            "threads": 4u64,
            "n": 0u64,
            "seconds": 0.0,
            "extra": json!({
                "self_relative_speedup": self_rel,
                "speedup_over_best_seq": over_best,
            })
        })
    }

    #[test]
    fn extracts_table2_metrics_only() {
        let other = json!({"experiment": "table4", "dataset": "ds", "method": "m", "seconds": 9.0});
        let rows = Value::Array(vec![table2_row("ds", "EMST-MemoGFK", 2.0, 1.5), other]);
        let ms = metrics_from_rows(&rows);
        assert_eq!(ms.len(), 2);
        assert!(ms.iter().all(|m| m.gated));
        assert!(ms[0].key.starts_with("table2/ds/EMST-MemoGFK/"));
    }

    #[test]
    fn extracts_loadgen_metrics_with_gating_split() {
        let blob = json!({"requests_per_sec": 10_000.0, "assign_points_per_sec": 200_000.0});
        let ms = metrics_from_loadgen("t4", &blob);
        let assign = ms
            .iter()
            .find(|m| m.key == "serving/t4/assign_points_per_sec")
            .unwrap();
        assert!(assign.gated);
        let rps = ms
            .iter()
            .find(|m| m.key == "serving/t4/requests_per_sec")
            .unwrap();
        assert!(!rps.gated, "latency-bound metric is informational");
    }

    #[test]
    fn loadgen_latency_quantiles_are_tracked_but_ungated() {
        let blob = json!({
            "requests_per_sec": 10_000.0,
            "latency_p50_ms": 1.2,
            "latency_p90_ms": 3.4,
            "latency_p99_ms": 8.0,
        });
        let ms = metrics_from_loadgen("t4", &blob);
        for key in ["serving/t4/latency_p50_ms", "serving/t4/latency_p99_ms"] {
            let m = ms.iter().find(|m| m.key == key).unwrap();
            assert!(!m.gated, "{key} must never gate");
        }
        // p90 is report-only: present in loadgen output, not a baseline
        // metric (keeps the committed baseline schema minimal).
        assert!(!ms.iter().any(|m| m.key.contains("p90")));
        // Reports without quantiles (older baselines) still parse.
        let old = json!({"requests_per_sec": 5_000.0});
        assert_eq!(metrics_from_loadgen("t1", &old).len(), 1);
    }

    #[test]
    fn baseline_combines_rows_and_serving() {
        let baseline = json!({
            "note": "x",
            "rows": Value::Array(vec![table2_row("ds", "m", 2.0, 1.5)]),
            "serving": json!({"t1": json!({"assign_points_per_sec": 1000.0})}),
        });
        let ms = metrics_from_baseline(&baseline);
        assert_eq!(ms.len(), 3);
        assert!(ms
            .iter()
            .any(|m| m.key == "serving/t1/assign_points_per_sec"));
    }

    #[test]
    fn baseline_json_round_trips_through_metrics() {
        // What CI writes as a refresh candidate must yield exactly the
        // metrics the gate would extract from a committed baseline.
        let rows = Value::Array(vec![table2_row("ds", "EMST-MemoGFK", 2.0, 1.5)]);
        let serving = vec![(
            "t4".to_string(),
            json!({"assign_points_per_sec": 1000.0, "requests_per_sec": 10.0}),
        )];
        let kernels = json!({"bccp_pair_loop": json!({"speedup_vs_scalar": 1.7})});
        let dynamic = json!({
            "insert_pts_per_s": 50_000.0,
            "merge_batches": 28.0,
            "rebuild_batches": 4.0,
        });
        let doc = baseline_json(
            "refresh candidate",
            std::slice::from_ref(&rows),
            &serving,
            Some(&kernels),
            Some(&dynamic),
        );
        let mut expected = metrics_from_rows(&rows);
        expected.extend(metrics_from_loadgen("t4", &serving[0].1));
        expected.extend(metrics_from_kernels(&kernels));
        expected.extend(metrics_from_dynamic(&dynamic));
        assert_eq!(metrics_from_baseline(&doc), expected);
        // And it survives an actual serialize/parse cycle.
        let reparsed = crate::gate::tests::reparse(&doc);
        assert_eq!(metrics_from_baseline(&reparsed), expected);
    }

    fn reparse(v: &Value) -> Value {
        serde_json::from_str(&v.to_json_string_pretty()).unwrap()
    }

    #[test]
    fn gate_passes_within_tolerance_and_fails_beyond() {
        let base = vec![Metric {
            key: "k".into(),
            value: 100.0,
            gated: true,
        }];
        let ok = vec![Metric {
            key: "k".into(),
            value: 80.0,
            gated: true,
        }];
        let bad = vec![Metric {
            key: "k".into(),
            value: 74.0,
            gated: true,
        }];
        assert!(compare(&base, &ok, 0.25).passed(), "-20% is inside 25%");
        let out = compare(&base, &bad, 0.25);
        assert!(!out.passed(), "-26% must fail");
        assert_eq!(out.failures, 1);
        // Improvements always pass.
        let better = vec![Metric {
            key: "k".into(),
            value: 500.0,
            gated: true,
        }];
        assert!(compare(&base, &better, 0.25).passed());
    }

    #[test]
    fn gate_fails_with_no_shared_metrics() {
        let base = vec![Metric {
            key: "a".into(),
            value: 1.0,
            gated: true,
        }];
        let cur = vec![Metric {
            key: "b".into(),
            value: 1.0,
            gated: true,
        }];
        let out = compare(&base, &cur, 0.25);
        assert_eq!(out.shared_gated, 0);
        assert!(!out.passed(), "broken wiring must not pass silently");
    }

    #[test]
    fn kernel_metrics_are_gated_speedups() {
        let blob = json!({
            "bccp_pair_loop": json!({
                "lane_secs": 0.01, "scalar_secs": 0.02, "speedup_vs_scalar": 2.0
            }),
            "knn_batch": json!({
                "lane_secs": 0.01, "scalar_secs": 0.015, "speedup_vs_scalar": 1.5
            }),
        });
        let ms = metrics_from_kernels(&blob);
        assert_eq!(ms.len(), 2);
        assert!(ms.iter().all(|m| m.gated));
        assert!(ms
            .iter()
            .any(|m| m.key == "kernels/bccp_pair_loop/speedup_vs_scalar" && m.value == 2.0));
        // A baseline with a kernels section round-trips through the
        // extractor.
        let baseline = json!({"note": "x", "kernels": blob});
        let from_base = metrics_from_baseline(&baseline);
        assert_eq!(from_base, ms);
    }

    #[test]
    fn dynamic_metrics_gate_throughput_only() {
        let blob = json!({
            "insert_pts_per_s": 42_000.0,
            "merge_batches": 30.0,
            "rebuild_batches": 2.0,
            "n_final": 10_000.0,
        });
        let ms = metrics_from_dynamic(&blob);
        let thr = ms
            .iter()
            .find(|m| m.key == "dynamic/insert_pts_per_s")
            .unwrap();
        assert!(thr.gated);
        assert_eq!(thr.value, 42_000.0);
        for key in ["dynamic/merge_batches", "dynamic/rebuild_batches"] {
            let m = ms.iter().find(|m| m.key == key).unwrap();
            assert!(!m.gated, "{key} describes the workload, never gates");
        }
        // n_final is report-only, not a baseline metric.
        assert!(!ms.iter().any(|m| m.key.contains("n_final")));
        // A baseline with a dynamic section round-trips.
        let baseline = json!({"note": "x", "dynamic": blob});
        assert_eq!(metrics_from_baseline(&baseline), ms);
    }

    #[test]
    fn kernel_floor_parse_and_evaluate() {
        let floor = KernelFloor::parse("bccp_pair_loop=1.3").unwrap();
        assert_eq!(
            floor,
            KernelFloor {
                kernel: "bccp_pair_loop".into(),
                min: 1.3
            }
        );
        for bad in ["bccp_pair_loop", "x=notafloat", "x=-2"] {
            assert!(KernelFloor::parse(bad).is_err(), "{bad:?}");
        }
        let metrics = |s: f64| {
            metrics_from_kernels(&json!({
                "bccp_pair_loop": json!({"speedup_vs_scalar": s})
            }))
        };
        assert_eq!(floor.evaluate(&metrics(1.8)).unwrap(), 1.8);
        assert!(floor.evaluate(&metrics(1.1)).is_err(), "1.1x < 1.3x floor");
        // A missing kernel metric fails loudly instead of passing
        // vacuously.
        assert!(floor.evaluate(&[]).is_err());
    }

    #[test]
    fn ratio_check_parse_and_evaluate() {
        let rc = RatioCheck::parse("t4bin/t4=1.5").unwrap();
        assert_eq!(
            rc,
            RatioCheck {
                numerator: "t4bin".into(),
                denominator: "t4".into(),
                min: 1.5
            }
        );
        for bad in ["t4bin/t4", "t4bin=1.5", "a/b=x", "a/b=-1"] {
            assert!(RatioCheck::parse(bad).is_err(), "{bad:?}");
        }
        let metrics = |bin: f64, json: f64| {
            let mut m = metrics_from_loadgen("t4bin", &json!({"assign_points_per_sec": bin}));
            m.extend(metrics_from_loadgen(
                "t4",
                &json!({"assign_points_per_sec": json}),
            ));
            m
        };
        assert_eq!(rc.evaluate(&metrics(300.0, 100.0)).unwrap(), 3.0);
        assert!(rc.evaluate(&metrics(140.0, 100.0)).is_err(), "1.4x < 1.5x");
        // Missing labels fail loudly instead of passing vacuously.
        assert!(rc
            .evaluate(&metrics_from_loadgen(
                "t4",
                &json!({"assign_points_per_sec": 100.0})
            ))
            .is_err());
    }

    #[test]
    fn ungated_metrics_never_fail() {
        let base = vec![
            Metric {
                key: "gated".into(),
                value: 100.0,
                gated: true,
            },
            Metric {
                key: "info".into(),
                value: 100.0,
                gated: false,
            },
        ];
        let cur = vec![
            Metric {
                key: "gated".into(),
                value: 99.0,
                gated: true,
            },
            Metric {
                key: "info".into(),
                value: 1.0,
                gated: false,
            },
        ];
        let out = compare(&base, &cur, 0.25);
        assert!(out.passed(), "a collapsed ungated metric is reported only");
        assert_eq!(out.comparisons.len(), 2);
    }
}
