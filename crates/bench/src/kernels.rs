//! Distance-kernel micro-harness: the SoA lane kernels against the scalar
//! gather reference, in the two access shapes the pipelines actually use.
//!
//! * **BCCP pair loop** — every point of a 64-point side A against a
//!   64-point side B (`BRUTE_FORCE_PRODUCT` geometry), reducing the min
//!   with the same `(u, v)` tie-break as `parclust_wspd::bccp`.
//! * **kNN batch** — one query against consecutive 16-point subtree
//!   segments (`KNN_BATCH` geometry), tracking the running nearest.
//!
//! Both workloads run the lane kernel ([`PointBlock::dist_sq_into`]) and
//! the per-point scalar reference ([`PointBlock::dist_sq_into_scalar`])
//! over identical data, so `scalar_secs / lane_secs` is the vectorization
//! speedup the `kernels` section of the bench JSON records and CI gates
//! (both against the committed baseline and against the absolute
//! `--kernel-floor`).
//!
//! The harness is shared by three consumers: the `kernel_bench` binary
//! (JSON for the gate), the `benches/kernels.rs` criterion bench (local
//! profiling), and the unit tests (the two variants must agree bitwise).

use parclust_data::{uniform_fill, PointBlock, BLOCK_LEN};
use serde_json::{json, Value};
use std::hint::black_box;
use std::time::Instant;

/// Dimensionality the kernel harness runs at. 5-d sits in the middle of
/// the paper's 2–16-d lineup: wide enough that distance math dominates,
/// narrow enough that a lane pass still fits in cache.
pub const KERNEL_DIMS: usize = 5;

/// Points per harness block: 64 BCCP sides of `BLOCK_LEN` points.
pub const KERNEL_POINTS: usize = 64 * BLOCK_LEN;

/// Queries per kNN-batch pass.
const KNN_QUERIES: usize = 64;

/// Candidates per kNN batch call (mirrors `parclust_kdtree::KNN_BATCH`).
const KNN_SEGMENT: usize = 16;

/// Lane and scalar wall times for one kernel workload.
#[derive(Debug, Clone, Copy)]
pub struct KernelTimes {
    pub lane_secs: f64,
    pub scalar_secs: f64,
}

impl KernelTimes {
    /// How much faster the lane kernel is than the scalar reference.
    pub fn speedup_vs_scalar(&self) -> f64 {
        self.scalar_secs / self.lane_secs
    }

    fn to_json(self) -> Value {
        json!({
            "lane_secs": self.lane_secs,
            "scalar_secs": self.scalar_secs,
            "speedup_vs_scalar": self.speedup_vs_scalar(),
        })
    }
}

/// The deterministic point block every kernel pass runs over.
pub fn kernel_block() -> PointBlock<KERNEL_DIMS> {
    PointBlock::from_points(&uniform_fill::<KERNEL_DIMS>(KERNEL_POINTS, 42))
}

/// One BCCP-shaped pass: all (A, B) side pairs of consecutive 64-point
/// ranges, min-reduced like `parclust_wspd::bccp`'s brute-force leaf case.
/// Returns the global min (the sink that keeps the loop honest).
pub fn bccp_pass<const D: usize>(block: &PointBlock<D>, lane: bool) -> f64 {
    let sides = block.len() / BLOCK_LEN;
    let mut buf = [0.0f64; BLOCK_LEN];
    let mut best = f64::INFINITY;
    for a in 0..sides {
        let b = (a + 1) % sides;
        let b_start = b * BLOCK_LEN;
        for u in a * BLOCK_LEN..(a + 1) * BLOCK_LEN {
            let q = block.get(u);
            if lane {
                block.dist_sq_into(&q, b_start, BLOCK_LEN, &mut buf);
            } else {
                block.dist_sq_into_scalar(&q, b_start, BLOCK_LEN, &mut buf);
            }
            for &d_sq in &buf {
                if d_sq < best {
                    best = d_sq;
                }
            }
        }
    }
    best
}

/// One kNN-batch-shaped pass: each query point swept over every 16-point
/// segment of the block, tracking the nearest non-self candidate.
pub fn knn_batch_pass<const D: usize>(block: &PointBlock<D>, lane: bool) -> f64 {
    let mut buf = [0.0f64; KNN_SEGMENT];
    let mut sink = 0.0;
    for qi in 0..KNN_QUERIES {
        let q = block.get(qi * (block.len() / KNN_QUERIES));
        let mut best = f64::INFINITY;
        let mut start = 0;
        while start + KNN_SEGMENT <= block.len() {
            if lane {
                block.dist_sq_into(&q, start, KNN_SEGMENT, &mut buf);
            } else {
                block.dist_sq_into_scalar(&q, start, KNN_SEGMENT, &mut buf);
            }
            for &d_sq in &buf {
                if d_sq > 0.0 && d_sq < best {
                    best = d_sq;
                }
            }
            start += KNN_SEGMENT;
        }
        sink += best;
    }
    sink
}

fn best_of(reps: usize, mut f: impl FnMut() -> f64) -> f64 {
    assert!(reps >= 1);
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t0 = Instant::now();
        black_box(f());
        best = best.min(t0.elapsed().as_secs_f64());
    }
    best
}

/// Time the BCCP pair loop, lane vs scalar, best of `reps`.
pub fn bccp_pair_loop(reps: usize) -> KernelTimes {
    let block = kernel_block();
    KernelTimes {
        lane_secs: best_of(reps, || bccp_pass(&block, true)),
        scalar_secs: best_of(reps, || bccp_pass(&block, false)),
    }
}

/// Time the kNN batch sweep, lane vs scalar, best of `reps`.
pub fn knn_batch(reps: usize) -> KernelTimes {
    let block = kernel_block();
    KernelTimes {
        lane_secs: best_of(reps, || knn_batch_pass(&block, true)),
        scalar_secs: best_of(reps, || knn_batch_pass(&block, false)),
    }
}

/// Run every kernel workload and assemble the `kernels` section of the
/// bench JSON (the shape `gate::metrics_from_kernels` parses).
pub fn kernels_json(reps: usize) -> Value {
    json!({
        "bccp_pair_loop": bccp_pair_loop(reps).to_json(),
        "knn_batch": knn_batch(reps).to_json(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lane_and_scalar_passes_agree_bitwise() {
        let block = kernel_block();
        // The sinks are built purely from kernel outputs, so bit-equal
        // sinks ⇒ the kernels returned bit-equal distances along the
        // reduction path. (Full per-slot equality is pinned in
        // parclust-data's own tests.)
        assert_eq!(bccp_pass(&block, true), bccp_pass(&block, false));
        assert_eq!(knn_batch_pass(&block, true), knn_batch_pass(&block, false));
    }

    #[test]
    fn kernels_json_has_gateable_shape() {
        let v = kernels_json(1);
        for kernel in ["bccp_pair_loop", "knn_batch"] {
            let s = v
                .get(kernel)
                .and_then(|k| k.get("speedup_vs_scalar"))
                .and_then(Value::as_f64)
                .unwrap_or_else(|| panic!("{kernel} must report speedup_vs_scalar"));
            assert!(s.is_finite() && s > 0.0, "{kernel}: {s}");
        }
    }
}
