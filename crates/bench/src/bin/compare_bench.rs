//! CI bench-regression gate: diff a fresh smoke run against the committed
//! baseline and exit nonzero on a >tolerance slowdown in any gated metric.
//!
//! ```sh
//! compare_bench --baseline BENCH_pr5.json \
//!     --rows bench_results/repro.json \
//!     --serving t1=bench_results/serving_t1.json \
//!     --serving t4=bench_results/serving_t4.json \
//!     --serving t4bin=bench_results/serving_t4bin.json \
//!     --min-ratio t4bin/t4=1.5 \
//!     [--tolerance 0.25]
//! ```
//!
//! Gated metrics: table2 speedup ratios, serving assign throughput,
//! kernel vectorization speedups (`--kernels kernels.json`), and
//! incremental-mutation throughput (`--dynamic dyn.json`).
//! `--min-ratio NUM/DEN=MIN` additionally requires the current run's
//! `assign_points_per_sec` under label NUM to be at least MIN× the one
//! under DEN (the binary-vs-JSON protocol gate), and
//! `--kernel-floor NAME=MIN` pins an absolute floor on the current run's
//! `kernels/NAME/speedup_vs_scalar` (e.g. `bccp_pair_loop=1.3`). Override
//! knobs (documented in the README):
//! * `BENCH_GATE_SKIP=1` — skip the gate entirely (emergency landing).
//! * `BENCH_GATE_TOLERANCE=0.4` — widen/narrow the threshold without a
//!   workflow edit; the `--tolerance` flag wins over the env var.
//! * `BENCH_RATIO_MIN=1.2` — override the minimum of every `--min-ratio`.
//! * `BENCH_KERNEL_MIN=1.1` — override the minimum of every
//!   `--kernel-floor`.

use parclust_bench::gate::{
    baseline_json, compare, metrics_from_baseline, metrics_from_dynamic, metrics_from_kernels,
    metrics_from_loadgen, metrics_from_rows, KernelFloor, Metric, RatioCheck, DEFAULT_TOLERANCE,
};

struct Opts {
    baseline: std::path::PathBuf,
    rows: Vec<std::path::PathBuf>,
    serving: Vec<(String, std::path::PathBuf)>,
    kernels: Option<std::path::PathBuf>,
    dynamic: Option<std::path::PathBuf>,
    ratios: Vec<RatioCheck>,
    kernel_floors: Vec<KernelFloor>,
    tolerance: f64,
    /// Where to write this run's inputs re-assembled as a baseline
    /// document (`BENCH_prN.json` shape) — the refresh candidate CI
    /// uploads with its bench artifacts.
    write_baseline: Option<std::path::PathBuf>,
    /// Free-form provenance note embedded in the written baseline.
    note: String,
}

fn parse_args() -> Opts {
    let mut opts = Opts {
        baseline: std::path::PathBuf::new(),
        rows: Vec::new(),
        serving: Vec::new(),
        kernels: None,
        dynamic: None,
        ratios: Vec::new(),
        kernel_floors: Vec::new(),
        tolerance: std::env::var("BENCH_GATE_TOLERANCE")
            .ok()
            .and_then(|v| v.trim().parse().ok())
            .unwrap_or(DEFAULT_TOLERANCE),
        write_baseline: None,
        note: String::new(),
    };
    let mut args = std::env::args().skip(1);
    let mut have_baseline = false;
    while let Some(a) = args.next() {
        match a.as_str() {
            "--baseline" => {
                opts.baseline = args.next().expect("--baseline FILE").into();
                have_baseline = true;
            }
            "--rows" => opts.rows.push(args.next().expect("--rows FILE").into()),
            "--serving" => {
                let spec = args.next().expect("--serving LABEL=FILE");
                let (label, file) = spec
                    .split_once('=')
                    .expect("--serving takes LABEL=FILE (e.g. t4=serving_t4.json)");
                opts.serving.push((label.to_string(), file.into()));
            }
            "--kernels" => {
                opts.kernels = Some(args.next().expect("--kernels FILE").into());
            }
            "--dynamic" => {
                opts.dynamic = Some(args.next().expect("--dynamic FILE").into());
            }
            "--kernel-floor" => {
                let spec = args.next().expect("--kernel-floor NAME=MIN");
                let mut floor = KernelFloor::parse(&spec).unwrap_or_else(|e| panic!("{e}"));
                if let Some(min) = std::env::var("BENCH_KERNEL_MIN")
                    .ok()
                    .and_then(|v| v.trim().parse::<f64>().ok())
                {
                    floor.min = min;
                }
                opts.kernel_floors.push(floor);
            }
            "--min-ratio" => {
                let spec = args.next().expect("--min-ratio NUM/DEN=MIN");
                let mut check = RatioCheck::parse(&spec).unwrap_or_else(|e| panic!("{e}"));
                if let Some(min) = std::env::var("BENCH_RATIO_MIN")
                    .ok()
                    .and_then(|v| v.trim().parse::<f64>().ok())
                {
                    check.min = min;
                }
                opts.ratios.push(check);
            }
            "--tolerance" => {
                opts.tolerance = args
                    .next()
                    .expect("--tolerance F")
                    .parse()
                    .expect("tolerance must be a float")
            }
            "--write-baseline" => {
                opts.write_baseline = Some(args.next().expect("--write-baseline FILE").into());
            }
            "--note" => opts.note = args.next().expect("--note TEXT"),
            "--help" | "-h" => {
                println!(
                    "usage: compare_bench --baseline FILE [--rows FILE]... \
                     [--serving LABEL=FILE]... [--kernels FILE] [--dynamic FILE] \
                     [--min-ratio NUM/DEN=MIN]... [--kernel-floor NAME=MIN]... [--tolerance F] \
                     [--write-baseline FILE [--note TEXT]]"
                );
                std::process::exit(0);
            }
            other => panic!("unknown argument {other:?}"),
        }
    }
    assert!(have_baseline, "--baseline is required");
    assert!(
        (0.0..1.0).contains(&opts.tolerance),
        "tolerance must be in [0, 1)"
    );
    opts
}

fn load_json(path: &std::path::Path) -> serde_json::Value {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()));
    serde_json::from_str(&text).unwrap_or_else(|e| panic!("cannot parse {}: {e}", path.display()))
}

fn main() {
    if std::env::var("BENCH_GATE_SKIP").is_ok_and(|v| v == "1") {
        println!("compare_bench: BENCH_GATE_SKIP=1 — gate skipped");
        return;
    }
    let opts = parse_args();

    let baseline = metrics_from_baseline(&load_json(&opts.baseline));
    let row_sets: Vec<serde_json::Value> = opts.rows.iter().map(|p| load_json(p)).collect();
    let serving_blobs: Vec<(String, serde_json::Value)> = opts
        .serving
        .iter()
        .map(|(label, path)| (label.clone(), load_json(path)))
        .collect();
    let kernels_blob = opts.kernels.as_deref().map(load_json);
    let dynamic_blob = opts.dynamic.as_deref().map(load_json);
    let mut current: Vec<Metric> = Vec::new();
    for rows in &row_sets {
        current.extend(metrics_from_rows(rows));
    }
    for (label, blob) in &serving_blobs {
        current.extend(metrics_from_loadgen(label, blob));
    }
    if let Some(kernels) = &kernels_blob {
        current.extend(metrics_from_kernels(kernels));
    }
    if let Some(dynamic) = &dynamic_blob {
        current.extend(metrics_from_dynamic(dynamic));
    }

    // Write the refresh candidate before gating: a regressed run's numbers
    // are exactly the ones someone debugging the regression wants to see,
    // and committing a candidate is always a deliberate human step.
    if let Some(path) = &opts.write_baseline {
        let doc = baseline_json(
            &opts.note,
            &row_sets,
            &serving_blobs,
            kernels_blob.as_ref(),
            dynamic_blob.as_ref(),
        );
        std::fs::write(path, doc.to_json_string_pretty())
            .unwrap_or_else(|e| panic!("cannot write {}: {e}", path.display()));
        println!("compare_bench: wrote baseline candidate {}", path.display());
    }

    let outcome = compare(&baseline, &current, opts.tolerance);
    println!(
        "bench gate vs {} (tolerance {:.0}%): {} baseline metrics, {} current, {} shared gated",
        opts.baseline.display(),
        opts.tolerance * 100.0,
        baseline.len(),
        current.len(),
        outcome.shared_gated,
    );
    println!(
        "{:<60} {:>14} {:>14} {:>8}  status",
        "metric", "baseline", "current", "ratio"
    );
    for c in &outcome.comparisons {
        let status = if c.regressed {
            "REGRESSED"
        } else if !c.gated {
            "info"
        } else {
            "ok"
        };
        println!(
            "{:<60} {:>14.3} {:>14.3} {:>7.2}x  {status}",
            c.key, c.baseline, c.current, c.ratio
        );
    }
    if outcome.shared_gated == 0 {
        eprintln!(
            "compare_bench: no gated metric is shared between baseline and current \
             — the gate wiring is broken (wrong files or labels?)"
        );
        std::process::exit(1);
    }
    if outcome.failures > 0 {
        eprintln!(
            "compare_bench: {} metric(s) regressed more than {:.0}% below baseline \
             (set BENCH_GATE_TOLERANCE to widen, BENCH_GATE_SKIP=1 to bypass)",
            outcome.failures,
            opts.tolerance * 100.0
        );
        std::process::exit(1);
    }
    let mut ratio_failures = 0;
    for check in &opts.ratios {
        match check.evaluate(&current) {
            Ok(ratio) => println!(
                "ratio {}/{}: {ratio:.2}x (minimum {:.2}x)  ok",
                check.numerator, check.denominator, check.min
            ),
            Err(msg) => {
                eprintln!(
                    "compare_bench: ratio check failed: {msg} \
                     (set BENCH_RATIO_MIN to lower, BENCH_GATE_SKIP=1 to bypass)"
                );
                ratio_failures += 1;
            }
        }
    }
    if ratio_failures > 0 {
        std::process::exit(1);
    }
    let mut floor_failures = 0;
    for floor in &opts.kernel_floors {
        match floor.evaluate(&current) {
            Ok(speedup) => println!(
                "kernel floor {}: {speedup:.2}x vs scalar (floor {:.2}x)  ok",
                floor.kernel, floor.min
            ),
            Err(msg) => {
                eprintln!(
                    "compare_bench: kernel floor failed: {msg} \
                     (set BENCH_KERNEL_MIN to lower, BENCH_GATE_SKIP=1 to bypass)"
                );
                floor_failures += 1;
            }
        }
    }
    if floor_failures > 0 {
        std::process::exit(1);
    }
    println!("compare_bench: gate passed");
}
