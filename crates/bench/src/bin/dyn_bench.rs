//! Incremental-mutation micro-bench for CI: stream insert batches through
//! a [`parclust_dyn::DynamicModel`] under the Auto rebuild-vs-merge
//! policy and emit the `dynamic` JSON section the bench gate consumes.
//!
//! ```sh
//! dyn_bench --out bench_results/dynamic.json \
//!     [--n 4000] [--batches 32] [--batch-size 64] [--min-pts 5] \
//!     [--threads 4] [--seed 42]
//! ```
//!
//! The headline metric is `insert_pts_per_s` — inserted points divided by
//! total apply time — which `compare_bench --dynamic` gates against the
//! committed baseline. The merge/rebuild batch split is reported
//! ungated: it describes how the Auto policy routed this workload, and a
//! deliberate policy retune should show up as a diff here without
//! failing the gate by itself.

use parclust_bench::gate::metrics_from_dynamic;
use parclust_dyn::{DynConfig, DynamicModel, MutationBatch, MutationPath};
use parclust_geom::Point;
use rand::prelude::*;
use std::time::Instant;

struct Opts {
    n: usize,
    batches: usize,
    batch_size: usize,
    min_pts: usize,
    min_cluster_size: usize,
    threads: usize,
    seed: u64,
    out: Option<std::path::PathBuf>,
}

fn parse_args() -> Opts {
    let mut opts = Opts {
        n: 4000,
        batches: 32,
        batch_size: 64,
        min_pts: 5,
        min_cluster_size: 5,
        threads: 0,
        seed: 42,
        out: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let mut usize_arg = |what: &str| -> usize {
            args.next()
                .unwrap_or_else(|| panic!("{what} N"))
                .parse()
                .unwrap_or_else(|_| panic!("{what} takes a non-negative integer"))
        };
        match a.as_str() {
            "--n" => opts.n = usize_arg("--n"),
            "--batches" => opts.batches = usize_arg("--batches"),
            "--batch-size" => opts.batch_size = usize_arg("--batch-size"),
            "--min-pts" => opts.min_pts = usize_arg("--min-pts"),
            "--min-cluster-size" => opts.min_cluster_size = usize_arg("--min-cluster-size"),
            "--threads" => opts.threads = usize_arg("--threads"),
            "--seed" => opts.seed = usize_arg("--seed") as u64,
            "--out" => opts.out = Some(args.next().expect("--out FILE").into()),
            "--help" | "-h" => {
                println!(
                    "usage: dyn_bench [--n N] [--batches N] [--batch-size N] [--min-pts N] \
                     [--min-cluster-size N] [--threads N] [--seed N] [--out FILE]"
                );
                std::process::exit(0);
            }
            other => panic!("unknown argument {other:?}"),
        }
    }
    assert!(opts.n >= opts.min_pts.max(2), "--n too small to cluster");
    assert!(opts.batch_size >= 1, "--batch-size must be at least 1");
    opts
}

fn blob_points(n: usize, rng: &mut StdRng) -> Vec<Point<2>> {
    let centers = [(0.0, 0.0), (60.0, 0.0), (0.0, 60.0), (60.0, 60.0)];
    (0..n)
        .map(|i| {
            let (cx, cy) = centers[i % centers.len()];
            Point([cx + rng.gen_range(-4.0..4.0), cy + rng.gen_range(-4.0..4.0)])
        })
        .collect()
}

fn run(opts: &Opts) -> serde_json::Value {
    let mut rng = StdRng::seed_from_u64(opts.seed);
    let base = blob_points(opts.n, &mut rng);
    let mut model = DynamicModel::new(
        &base,
        opts.min_pts,
        opts.min_cluster_size,
        DynConfig::default(),
    );

    // Pre-generate every batch so the timed loop measures apply() alone.
    let batches: Vec<MutationBatch<2>> = (0..opts.batches)
        .map(|_| MutationBatch {
            inserts: blob_points(opts.batch_size, &mut rng),
            deletes: Vec::new(),
        })
        .collect();

    let mut merge_batches = 0usize;
    let mut rebuild_batches = 0usize;
    let mut recomputed = 0usize;
    let apply_all = |model: &mut DynamicModel<2>,
                     merge: &mut usize,
                     rebuild: &mut usize,
                     recomputed: &mut usize| {
        for batch in &batches {
            let report = model.apply(batch).expect("bench batches are valid");
            match report.path {
                MutationPath::Merge => *merge += 1,
                MutationPath::Rebuild => *rebuild += 1,
            }
            *recomputed += report.recomputed;
        }
    };
    let t0 = Instant::now();
    if opts.threads > 0 {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(opts.threads)
            .build()
            .expect("thread pool");
        pool.install(|| {
            apply_all(
                &mut model,
                &mut merge_batches,
                &mut rebuild_batches,
                &mut recomputed,
            )
        });
    } else {
        apply_all(
            &mut model,
            &mut merge_batches,
            &mut rebuild_batches,
            &mut recomputed,
        );
    }
    let seconds = t0.elapsed().as_secs_f64();

    let inserted = opts.batches * opts.batch_size;
    serde_json::json!({
        "n_initial": opts.n as u64,
        "n_final": model.len() as u64,
        "batches": opts.batches as u64,
        "batch_size": opts.batch_size as u64,
        "min_pts": opts.min_pts as u64,
        "threads": opts.threads as u64,
        "seed": opts.seed,
        "seconds": seconds,
        "insert_pts_per_s": inserted as f64 / seconds.max(1e-12),
        "merge_batches": merge_batches as u64,
        "rebuild_batches": rebuild_batches as u64,
        "recomputed_core_distances": recomputed as u64,
    })
}

fn main() {
    let opts = parse_args();
    let doc = run(&opts);
    let f = |k: &str| {
        doc.get(k)
            .and_then(serde_json::Value::as_f64)
            .unwrap_or(0.0)
    };
    println!(
        "dyn_bench: {} batches of {} inserts over n={} in {:.3}s \
         ({:.0} pts/s; {} merge / {} rebuild)",
        opts.batches,
        opts.batch_size,
        opts.n,
        f("seconds"),
        f("insert_pts_per_s"),
        f("merge_batches"),
        f("rebuild_batches"),
    );
    // Sanity-check the report feeds the gate (catches schema drift here
    // rather than in a green-looking CI run with zero shared metrics).
    assert!(
        metrics_from_dynamic(&doc)
            .iter()
            .any(|m| m.gated && m.key == "dynamic/insert_pts_per_s"),
        "dyn_bench output no longer yields the gated throughput metric"
    );
    let text = doc.to_json_string_pretty();
    match opts.out {
        Some(path) => {
            if let Some(dir) = path.parent() {
                if !dir.as_os_str().is_empty() {
                    std::fs::create_dir_all(dir)
                        .unwrap_or_else(|e| panic!("cannot create {}: {e}", dir.display()));
                }
            }
            std::fs::write(&path, text)
                .unwrap_or_else(|e| panic!("cannot write {}: {e}", path.display()));
            println!("dyn_bench: wrote {}", path.display());
        }
        None => println!("{text}"),
    }
}
