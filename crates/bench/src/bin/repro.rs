//! Reproduction harness: regenerates every table and figure of the paper's
//! evaluation section (§5 + Appendix C/E) at a configurable scale.
//!
//! ```sh
//! cargo run --release -p parclust-bench --bin repro -- all --scale 0.5
//! cargo run --release -p parclust-bench --bin repro -- table2 fig6 --datasets 2D-SS-varden
//! ```
//!
//! Each experiment prints a paper-style text table and appends rows to a
//! JSON report (`bench_results/repro.json`). Absolute numbers are
//! machine-dependent; EXPERIMENTS.md records the paper-vs-measured
//! comparison of the *shapes* (method rankings, ratios, crossovers).

use parclust::{
    condense_tree, count_clusters, dendrogram_par, dendrogram_seq, emst_boruvka, emst_delaunay,
    emst_gfk, emst_memogfk, emst_naive, extract_eom_eps, hdbscan_gantao, hdbscan_memogfk,
    optics_approx, NOISE,
};
use parclust_bench::{
    best_time, best_time_with_metrics, dataset, fmt_secs, thread_counts, with_points, DataSpec,
    Report, ResultRow, DATASETS,
};

struct Opts {
    experiments: Vec<String>,
    scale: f64,
    reps: usize,
    only_datasets: Option<Vec<String>>,
    out_dir: std::path::PathBuf,
    min_pts: usize,
    cluster_eps: Vec<f64>,
    points_file: Option<std::path::PathBuf>,
    max_memory: u64,
    strict_memory: bool,
    /// Write a Chrome-trace JSON of every pipeline span to this path.
    trace: Option<std::path::PathBuf>,
}

fn parse_args() -> Opts {
    let mut opts = Opts {
        experiments: Vec::new(),
        scale: 1.0,
        reps: 1,
        only_datasets: None,
        out_dir: "bench_results".into(),
        min_pts: 10,
        cluster_eps: vec![0.0, 1.0, 5.0],
        points_file: None,
        max_memory: parclust_bench::memory::parse_bytes("2G").unwrap(),
        strict_memory: false,
        trace: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--scale" => opts.scale = args.next().expect("--scale N").parse().expect("float"),
            "--threads" => {
                // Route through the env knob the harness reads so every
                // experiment (tables, figures) sees the same ceiling.
                let t: usize = args.next().expect("--threads N").parse().expect("int");
                assert!(t > 0, "--threads must be positive");
                std::env::set_var("PARCLUST_MAX_THREADS", t.to_string());
            }
            "--reps" => opts.reps = args.next().expect("--reps N").parse().expect("int"),
            "--minpts" => opts.min_pts = args.next().expect("--minpts N").parse().expect("int"),
            "--cluster-eps" => {
                opts.cluster_eps = args
                    .next()
                    .expect("--cluster-eps a,b,c")
                    .split(',')
                    .map(|s| s.trim().parse().expect("float"))
                    .collect();
                assert!(!opts.cluster_eps.is_empty(), "--cluster-eps needs values");
            }
            "--out" => opts.out_dir = args.next().expect("--out DIR").into(),
            "--points-file" => {
                opts.points_file = Some(args.next().expect("--points-file PATH").into())
            }
            "--max-memory" => {
                opts.max_memory =
                    parclust_bench::memory::parse_bytes(&args.next().expect("--max-memory SIZE"))
                        .expect("byte size like 512M or 2G")
            }
            "--strict-memory" => opts.strict_memory = true,
            "--trace" => opts.trace = Some(args.next().expect("--trace PATH").into()),
            "--datasets" => {
                opts.only_datasets = Some(
                    args.next()
                        .expect("--datasets a,b")
                        .split(',')
                        .map(|s| s.to_string())
                        .collect(),
                )
            }
            "--help" | "-h" => {
                println!(
                    "usage: repro [table2|table3|table4|table5|fig6|fig7|fig8|fig9|fig10|memory|minpts|ablation|extract|scale|all]... \
                     [--scale F] [--reps N] [--minpts N] [--threads N] [--cluster-eps a,b,c] [--datasets a,b] [--out DIR] \
                     [--points-file PATH] [--max-memory SIZE] [--strict-memory] [--trace PATH]"
                );
                std::process::exit(0);
            }
            other => opts.experiments.push(other.to_string()),
        }
    }
    if opts.experiments.is_empty() {
        opts.experiments.push("all".to_string());
    }
    opts
}

fn selected(opts: &Opts) -> Vec<&'static DataSpec> {
    DATASETS
        .iter()
        .filter(|d| match &opts.only_datasets {
            None => true,
            Some(names) => names.iter().any(|n| n.eq_ignore_ascii_case(d.name)),
        })
        .collect()
}

fn n_of(spec: &DataSpec, scale: f64) -> usize {
    ((spec.base_n as f64 * scale) as usize).max(256)
}

/// Representative subset for the per-thread-count figures (keep wall time
/// reasonable; `--datasets` overrides).
fn figure_subset(opts: &Opts) -> Vec<&'static DataSpec> {
    let all = selected(opts);
    if opts.only_datasets.is_some() {
        return all;
    }
    [
        "2D-SS-varden",
        "3D-UniformFill",
        "3D-GeoLife-like",
        "7D-Household-like",
    ]
    .iter()
    .filter_map(|n| dataset(n))
    .collect()
}

const EMST_METHODS: &[&str] = &["EMST-Naive", "EMST-GFK", "EMST-MemoGFK", "EMST-Delaunay"];
const HDB_METHODS: &[&str] = &["HDBSCAN-MemoGFK", "HDBSCAN-GanTao"];

/// Run one named EMST method at `threads`; `None` if the method does not
/// apply (Delaunay beyond 2D). The third element is the pool's
/// work-distribution counters for the row's `extra` field.
fn run_emst_method(
    method: &str,
    spec: &DataSpec,
    n: usize,
    threads: usize,
    reps: usize,
) -> Option<(f64, parclust::Stats, serde_json::Value)> {
    if method == "EMST-Delaunay" && spec.dims != 2 {
        return None;
    }
    let (stats, secs, pool) = with_points!(spec, n, |pts| {
        best_time_with_metrics(threads, reps, || match method {
            "EMST-Naive" => emst_naive(&pts).stats,
            "EMST-GFK" => emst_gfk(&pts).stats,
            "EMST-MemoGFK" => emst_memogfk(&pts).stats,
            "EMST-Delaunay" => run_delaunay_erased(&pts),
            "EMST-Boruvka" => emst_boruvka(&pts).stats,
            _ => unreachable!("unknown method {method}"),
        })
    });
    Some((secs, stats, pool))
}

/// Type-erasure helper: reachable for every dimension but only ever called
/// with D == 2 (guarded by the caller).
fn run_delaunay_erased<const D: usize>(pts: &[parclust::Point<D>]) -> parclust::Stats {
    assert_eq!(D, 2, "Delaunay is 2D-only");
    // SAFETY: Point<D> is a plain [f64; D] wrapper; D == 2 checked above.
    let pts2: &[parclust::Point<2>] =
        unsafe { std::slice::from_raw_parts(pts.as_ptr().cast(), pts.len()) };
    emst_delaunay(pts2).stats
}

/// HDBSCAN timing: MST plus ordered dendrogram, per the paper's §5 note
/// ("All HDBSCAN* running times include constructing an MST ... and
/// computing the ordered dendrogram").
fn run_hdbscan_method(
    method: &str,
    spec: &DataSpec,
    n: usize,
    threads: usize,
    reps: usize,
    min_pts: usize,
) -> (f64, parclust::Stats, serde_json::Value) {
    with_points!(spec, n, |pts| {
        let (stats, secs, pool) = best_time_with_metrics(threads, reps, || {
            let mut h = match method {
                "HDBSCAN-MemoGFK" => hdbscan_memogfk(&pts, min_pts),
                "HDBSCAN-GanTao" => hdbscan_gantao(&pts, min_pts),
                "OPTICS-GanTaoApprox" => optics_approx(&pts, min_pts, 0.125),
                _ => unreachable!("unknown method {method}"),
            };
            let t0 = std::time::Instant::now();
            let _ = dendrogram_par(pts.len(), &h.edges, 0);
            h.stats.dendrogram = t0.elapsed().as_secs_f64();
            h.stats.total += h.stats.dendrogram;
            h.stats
        });
        (secs, stats, pool)
    })
}

// --------------------------------------------------------------------
// Experiments
// --------------------------------------------------------------------

/// Tables 4 + 2 (EMST): raw times at 1 thread and max threads, then the
/// derived speedup table.
fn table4_and_2(opts: &Opts, report: &mut Report) {
    let max_t = *thread_counts().last().unwrap();
    println!("\n=== Table 4: EMST running times (1 thread vs {max_t} threads) ===");
    println!(
        "{:<20} {:>11} {:>11} {:>11} {:>11} {:>11} {:>11} {:>11} {:>11}",
        "dataset",
        "Naive-1",
        "Naive-P",
        "GFK-1",
        "GFK-P",
        "MemoG-1",
        "MemoG-P",
        "Delau-1",
        "Delau-P"
    );
    let mut speedups: Vec<(String, String, f64, f64)> = Vec::new();
    for spec in selected(opts) {
        let n = n_of(spec, opts.scale);
        let mut cells: Vec<String> = Vec::new();
        let mut seq_times: Vec<(String, f64)> = Vec::new();
        let mut par_times: Vec<(String, f64)> = Vec::new();
        for method in EMST_METHODS {
            match run_emst_method(method, spec, n, 1, opts.reps) {
                None => {
                    cells.push("-".into());
                    cells.push("-".into());
                }
                Some((t1, _, _)) => {
                    let (tp, _, pool) = run_emst_method(method, spec, n, max_t, opts.reps).unwrap();
                    cells.push(fmt_secs(t1));
                    cells.push(fmt_secs(tp));
                    seq_times.push((method.to_string(), t1));
                    par_times.push((method.to_string(), tp));
                    // Pool counters ride on the parallel row only: the
                    // 1-thread run has nothing to steal.
                    for (threads, secs, pool) in [(1, t1, None), (max_t, tp, Some(pool))] {
                        report.push(ResultRow {
                            experiment: "table4".into(),
                            dataset: spec.name.into(),
                            method: method.to_string(),
                            threads,
                            n,
                            seconds: secs,
                            extra: pool.map(|p| serde_json::json!({ "pool": p })),
                        });
                    }
                }
            }
        }
        println!(
            "{:<20} {:>11} {:>11} {:>11} {:>11} {:>11} {:>11} {:>11} {:>11}",
            spec.name,
            cells[0],
            cells[1],
            cells[2],
            cells[3],
            cells[4],
            cells[5],
            cells.get(6).cloned().unwrap_or_else(|| "-".into()),
            cells.get(7).cloned().unwrap_or_else(|| "-".into()),
        );
        let best_seq = seq_times
            .iter()
            .map(|(_, t)| *t)
            .fold(f64::INFINITY, f64::min);
        for ((m, tp), (_, t1)) in par_times.iter().zip(&seq_times) {
            speedups.push((m.clone(), spec.name.to_string(), best_seq / tp, t1 / tp));
        }
    }
    print_table2("EMST", &speedups, report);
}

fn print_table2(family: &str, speedups: &[(String, String, f64, f64)], report: &mut Report) {
    let max_t = *thread_counts().last().unwrap();
    println!(
        "\n=== Table 2 ({family}): speedups on {max_t} threads \
         (paper: 48 cores with hyper-threading; ranges over data sets) ==="
    );
    println!(
        "{:<20} {:>30} {:>30}",
        "method", "over best sequential", "self-relative"
    );
    let mut methods: Vec<String> = Vec::new();
    for (m, _, _, _) in speedups {
        if !methods.contains(m) {
            methods.push(m.clone());
        }
    }
    for m in methods {
        let rows: Vec<&(String, String, f64, f64)> =
            speedups.iter().filter(|(mm, _, _, _)| *mm == m).collect();
        let (mut lo1, mut hi1, mut sum1) = (f64::INFINITY, 0f64, 0f64);
        let (mut lo2, mut hi2, mut sum2) = (f64::INFINITY, 0f64, 0f64);
        for (_, ds, s1, s2) in rows.iter().copied() {
            lo1 = lo1.min(*s1);
            hi1 = hi1.max(*s1);
            sum1 += s1;
            lo2 = lo2.min(*s2);
            hi2 = hi2.max(*s2);
            sum2 += s2;
            report.push(ResultRow {
                experiment: "table2".into(),
                dataset: ds.clone(),
                method: m.clone(),
                threads: max_t,
                n: 0,
                seconds: 0.0,
                extra: Some(serde_json::json!({
                    "speedup_over_best_seq": s1,
                    "self_relative_speedup": s2,
                })),
            });
        }
        let k = rows.len() as f64;
        println!(
            "{:<20} {:>9.2}-{:<8.2} avg {:>6.2} {:>9.2}-{:<8.2} avg {:>6.2}",
            m,
            lo1,
            hi1,
            sum1 / k,
            lo2,
            hi2,
            sum2 / k
        );
    }
}

/// Table 3: sequential baselines — our Dual-Tree-Boruvka-style baseline
/// (the mlpack stand-in) vs sequential MemoGFK (paper: MemoGFK 0.89–4.17x
/// faster, 2.44x average).
fn table3(opts: &Opts, report: &mut Report) {
    println!("\n=== Table 3: sequential EMST — Boruvka baseline vs MemoGFK (1 thread) ===");
    println!(
        "{:<20} {:>12} {:>12} {:>10}",
        "dataset", "Boruvka(s)", "MemoGFK(s)", "ratio"
    );
    let mut ratios = Vec::new();
    for spec in selected(opts) {
        let n = n_of(spec, opts.scale);
        let (tb, _, _) = run_emst_method("EMST-Boruvka", spec, n, 1, opts.reps).unwrap();
        let (tm, _, _) = run_emst_method("EMST-MemoGFK", spec, n, 1, opts.reps).unwrap();
        let ratio = tb / tm;
        ratios.push(ratio);
        println!(
            "{:<20} {:>12} {:>12} {:>9.2}x",
            spec.name,
            fmt_secs(tb),
            fmt_secs(tm),
            ratio
        );
        for (method, secs) in [("EMST-Boruvka", tb), ("EMST-MemoGFK", tm)] {
            report.push(ResultRow {
                experiment: "table3".into(),
                dataset: spec.name.into(),
                method: method.into(),
                threads: 1,
                n,
                seconds: secs,
                extra: None,
            });
        }
    }
    let avg = ratios.iter().sum::<f64>() / ratios.len().max(1) as f64;
    println!("MemoGFK vs Boruvka baseline: {avg:.2}x average (paper vs mlpack: 2.44x average)");
}

/// Table 5: HDBSCAN* raw times (minPts = 10), both variants, 1 vs P threads.
fn table5(opts: &Opts, report: &mut Report) {
    let max_t = *thread_counts().last().unwrap();
    println!(
        "\n=== Table 5: HDBSCAN* (minPts={}) running times (MST + dendrogram) ===",
        opts.min_pts
    );
    println!(
        "{:<20} {:>12} {:>12} {:>12} {:>12}",
        "dataset", "MemoGFK-1", "MemoGFK-P", "GanTao-1", "GanTao-P"
    );
    let mut speedups: Vec<(String, String, f64, f64)> = Vec::new();
    for spec in selected(opts) {
        let n = n_of(spec, opts.scale);
        let mut cells = Vec::new();
        let mut pairs = Vec::new();
        for method in HDB_METHODS {
            let (t1, _, _) = run_hdbscan_method(method, spec, n, 1, opts.reps, opts.min_pts);
            let (tp, _, pool) = run_hdbscan_method(method, spec, n, max_t, opts.reps, opts.min_pts);
            cells.push(fmt_secs(t1));
            cells.push(fmt_secs(tp));
            pairs.push((method.to_string(), t1, tp));
            for (threads, secs, pool) in [(1, t1, None), (max_t, tp, Some(pool))] {
                report.push(ResultRow {
                    experiment: "table5".into(),
                    dataset: spec.name.into(),
                    method: method.to_string(),
                    threads,
                    n,
                    seconds: secs,
                    extra: pool.map(|p| serde_json::json!({ "pool": p })),
                });
            }
        }
        println!(
            "{:<20} {:>12} {:>12} {:>12} {:>12}",
            spec.name, cells[0], cells[1], cells[2], cells[3]
        );
        let best_seq = pairs
            .iter()
            .map(|(_, t1, _)| *t1)
            .fold(f64::INFINITY, f64::min);
        for (m, t1, tp) in pairs {
            speedups.push((m, spec.name.to_string(), best_seq / tp, t1 / tp));
        }
    }
    print_table2("HDBSCAN*", &speedups, report);
}

/// Figures 6 & 7: speedup vs thread count.
fn figures_6_7(opts: &Opts, report: &mut Report, which: &str) {
    let ts = thread_counts();
    let is_hdb = which == "fig7";
    let methods: Vec<&str> = if is_hdb {
        HDB_METHODS.to_vec()
    } else {
        EMST_METHODS.to_vec()
    };
    println!(
        "\n=== Figure {}: {} speedup over best sequential vs thread count ===",
        if is_hdb { "7" } else { "6" },
        if is_hdb {
            "HDBSCAN* (incl. dendrogram)"
        } else {
            "EMST"
        }
    );
    for spec in figure_subset(opts) {
        let n = n_of(spec, opts.scale);
        let mut times: Vec<(String, Vec<f64>)> = Vec::new();
        for method in &methods {
            let mut series = Vec::new();
            let mut applicable = true;
            for &t in &ts {
                let secs = if is_hdb {
                    run_hdbscan_method(method, spec, n, t, opts.reps, opts.min_pts).0
                } else {
                    match run_emst_method(method, spec, n, t, opts.reps) {
                        Some((secs, _, _)) => secs,
                        None => {
                            applicable = false;
                            break;
                        }
                    }
                };
                series.push(secs);
            }
            if applicable {
                times.push((method.to_string(), series));
            }
        }
        let best_seq = times
            .iter()
            .map(|(_, s)| s[0])
            .fold(f64::INFINITY, f64::min);
        println!(
            "--- {} (n={n}, best sequential {:.3}s) ---",
            spec.name, best_seq
        );
        print!("{:<18}", "threads");
        for &t in &ts {
            print!("{t:>10}");
        }
        println!();
        for (method, series) in &times {
            print!("{method:<18}");
            for (i, secs) in series.iter().enumerate() {
                print!("{:>9.2}x", best_seq / secs);
                report.push(ResultRow {
                    experiment: which.into(),
                    dataset: spec.name.into(),
                    method: method.clone(),
                    threads: ts[i],
                    n,
                    seconds: *secs,
                    extra: Some(serde_json::json!({"speedup": best_seq / secs})),
                });
            }
            println!();
        }
    }
}

/// Figure 8: per-phase decomposition of the parallel running times.
fn fig8(opts: &Opts, report: &mut Report) {
    let max_t = *thread_counts().last().unwrap();
    println!("\n=== Figure 8: phase decomposition at {max_t} threads ===");
    println!(
        "{:<20} {:<18} {:>11} {:>11} {:>11} {:>11} {:>11} {:>11}",
        "dataset", "method", "build-tree", "core-dist", "wspd", "kruskal", "dendrogram", "total"
    );
    for spec in figure_subset(opts) {
        let n = n_of(spec, opts.scale);
        let mut rows: Vec<(String, parclust::Stats)> = Vec::new();
        for method in EMST_METHODS {
            if let Some((_, stats, _)) = run_emst_method(method, spec, n, max_t, opts.reps) {
                rows.push((method.to_string(), stats));
            }
        }
        for method in HDB_METHODS {
            let (_, stats, _) = run_hdbscan_method(method, spec, n, max_t, opts.reps, opts.min_pts);
            rows.push((method.to_string(), stats));
        }
        for (method, s) in rows {
            println!(
                "{:<20} {:<18} {:>11} {:>11} {:>11} {:>11} {:>11} {:>11}",
                spec.name,
                method,
                fmt_secs(s.build_tree),
                fmt_secs(s.core_dist),
                fmt_secs(s.wspd),
                fmt_secs(s.kruskal),
                fmt_secs(s.dendrogram),
                fmt_secs(s.total),
            );
            report.push(ResultRow {
                experiment: "fig8".into(),
                dataset: spec.name.into(),
                method,
                threads: max_t,
                n,
                seconds: s.total,
                extra: Some(serde_json::to_value(&s).unwrap()),
            });
        }
    }
}

/// Figure 9: dendrogram construction — self-relative speedup and time for
/// single-linkage (EMST input) and HDBSCAN* (minPts=10) MSTs.
fn fig9(opts: &Opts, report: &mut Report) {
    let max_t = *thread_counts().last().unwrap();
    println!("\n=== Figure 9: ordered dendrogram speedups ({max_t} threads, self-relative) ===");
    println!(
        "{:<20} {:>16} {:>12} {:>16} {:>12}",
        "dataset", "SLC speedup", "SLC time", "HDB speedup", "HDB time"
    );
    for spec in selected(opts) {
        let n = n_of(spec, opts.scale);
        let (slc, hdb) = with_points!(spec, n, |pts| {
            let mst = emst_memogfk(&pts);
            let h = hdbscan_memogfk(&pts, opts.min_pts);
            let (_, slc1) = best_time(1, opts.reps, || dendrogram_seq(pts.len(), &mst.edges, 0));
            let (_, slcp) = best_time(max_t, opts.reps, || {
                dendrogram_par(pts.len(), &mst.edges, 0)
            });
            let (_, hdb1) = best_time(1, opts.reps, || dendrogram_seq(pts.len(), &h.edges, 0));
            let (_, hdbp) = best_time(max_t, opts.reps, || dendrogram_par(pts.len(), &h.edges, 0));
            ((slc1, slcp), (hdb1, hdbp))
        });
        println!(
            "{:<20} {:>15.2}x {:>12} {:>15.2}x {:>12}",
            spec.name,
            slc.0 / slc.1,
            fmt_secs(slc.1),
            hdb.0 / hdb.1,
            fmt_secs(hdb.1),
        );
        for (method, t1, tp) in [
            ("dendrogram-SLC", slc.0, slc.1),
            ("dendrogram-HDBSCAN", hdb.0, hdb.1),
        ] {
            report.push(ResultRow {
                experiment: "fig9".into(),
                dataset: spec.name.into(),
                method: method.into(),
                threads: max_t,
                n,
                seconds: tp,
                extra: Some(serde_json::json!({"seq_seconds": t1, "speedup": t1 / tp})),
            });
        }
    }
}

/// Figure 10: approximate OPTICS vs the exact HDBSCAN* methods.
fn fig10(opts: &Opts, report: &mut Report) {
    let ts = thread_counts();
    println!("\n=== Figure 10: OPTICS-GanTaoApprox (rho=0.125) vs exact HDBSCAN* ===");
    let specs: Vec<&DataSpec> = ["7D-Household-like", "16D-CHEM-like"]
        .iter()
        .filter_map(|n| dataset(n))
        .collect();
    for spec in specs {
        let n = n_of(spec, opts.scale);
        println!("--- {} (n={n}) ---", spec.name);
        print!("{:<22}", "threads");
        for &t in &ts {
            print!("{t:>12}");
        }
        println!();
        for method in ["HDBSCAN-MemoGFK", "HDBSCAN-GanTao", "OPTICS-GanTaoApprox"] {
            print!("{method:<22}");
            for &t in &ts {
                let (secs, _, _) = run_hdbscan_method(method, spec, n, t, opts.reps, opts.min_pts);
                print!("{:>12}", fmt_secs(secs));
                report.push(ResultRow {
                    experiment: "fig10".into(),
                    dataset: spec.name.into(),
                    method: method.into(),
                    threads: t,
                    n,
                    seconds: secs,
                    extra: None,
                });
            }
            println!();
        }
    }
}

/// Full WSPD sizes under the two HDBSCAN* separation definitions — the
/// paper's "2.5–10.29x fewer well-separated pairs" metric.
fn hdbscan_wspd_sizes<const D: usize>(
    pts: &[parclust::Point<D>],
    min_pts: usize,
) -> (usize, usize) {
    use parclust_kdtree::KdTree;
    use parclust_wspd::policy::core_distance_annotations;
    use parclust_wspd::{wspd_materialize, MutualReachSep, SepMode};
    let tree = KdTree::build(pts);
    let knn = tree.knn_all(min_pts);
    let cd: Vec<f64> = (0..tree.len()).map(|i| knn.kth_dist(i)).collect();
    let cd_pos: Vec<f64> = tree.idx.iter().map(|&o| cd[o as usize]).collect();
    let (cd_min, cd_max) = core_distance_annotations(&tree, &cd_pos);
    let std = wspd_materialize(
        &tree,
        &MutualReachSep::new(SepMode::Standard, &cd_pos, &cd_min, &cd_max),
    )
    .len();
    let comb = wspd_materialize(
        &tree,
        &MutualReachSep::new(SepMode::Combined, &cd_pos, &cd_min, &cd_max),
    )
    .len();
    (std, comb)
}

/// §5 memory study: peak materialized pairs/bytes per method, and the WSPD
/// pair-count ratio of the two HDBSCAN* separation definitions.
fn memory(opts: &Opts, report: &mut Report) {
    println!("\n=== Memory study (§5 'MemoGFK Memory Usage') ===");
    println!(
        "{:<20} {:>13} {:>13} {:>9} {:>13} {:>13} {:>9}",
        "dataset", "full WSPD", "MemoGFK peak", "ratio", "WSPD std", "WSPD new", "sep ratio"
    );
    for spec in selected(opts) {
        let n = n_of(spec, opts.scale);
        let (naive, gfk, memo, wspd_std, wspd_new) = with_points!(spec, n, |pts| {
            let sizes = hdbscan_wspd_sizes(&pts, opts.min_pts);
            (
                emst_naive(&pts).stats,
                emst_gfk(&pts).stats,
                emst_memogfk(&pts).stats,
                sizes.0,
                sizes.1,
            )
        });
        let ratio = naive.peak_live_pairs as f64 / memo.peak_live_pairs.max(1) as f64;
        let sep_ratio = wspd_std as f64 / wspd_new.max(1) as f64;
        println!(
            "{:<20} {:>13} {:>13} {:>8.2}x {:>13} {:>13} {:>8.2}x",
            spec.name,
            naive.peak_live_pairs,
            memo.peak_live_pairs,
            ratio,
            wspd_std,
            wspd_new,
            sep_ratio,
        );
        report.push(ResultRow {
            experiment: "memory".into(),
            dataset: spec.name.into(),
            method: "memory-study".into(),
            threads: 0,
            n,
            seconds: 0.0,
            extra: Some(serde_json::json!({
                "full_wspd_pairs": naive.peak_live_pairs,
                "gfk_peak_pairs": gfk.peak_live_pairs,
                "memogfk_peak_pairs": memo.peak_live_pairs,
                "naive_peak_bytes": naive.peak_pair_bytes,
                "memogfk_peak_bytes": memo.peak_pair_bytes,
                "pair_reduction": ratio,
                "hdbscan_wspd_standard": wspd_std,
                "hdbscan_wspd_combined": wspd_new,
                "separation_pair_ratio": sep_ratio,
            })),
        });
    }
    println!(
        "(paper: MemoGFK reduces memory by up to 10x; the new separation \
         yields 2.5-10.29x fewer pairs)"
    );
}

/// §5 minPts sensitivity: the paper reports "just a moderate increase" for
/// minPts from 10 to 50.
fn minpts(opts: &Opts, report: &mut Report) {
    let max_t = *thread_counts().last().unwrap();
    println!("\n=== minPts sensitivity (HDBSCAN*-MemoGFK, {max_t} threads) ===");
    print!("{:<20}", "dataset");
    let mps = [10usize, 20, 30, 40, 50];
    for mp in mps {
        print!("{:>12}", format!("minPts={mp}"));
    }
    println!();
    for spec in figure_subset(opts) {
        let n = n_of(spec, opts.scale);
        print!("{:<20}", spec.name);
        for mp in mps {
            let (secs, _, _) = run_hdbscan_method("HDBSCAN-MemoGFK", spec, n, max_t, opts.reps, mp);
            print!("{:>12}", fmt_secs(secs));
            report.push(ResultRow {
                experiment: "minpts".into(),
                dataset: spec.name.into(),
                method: format!("minPts={mp}"),
                threads: max_t,
                n,
                seconds: secs,
                extra: None,
            });
        }
        println!();
    }
}

/// β-schedule ablation (§3.1.2): the paper's doubling β vs. Chatterjee et
/// al.'s β + 1. Doubling keeps the round count logarithmic; incrementing
/// pays a full GetRho/GetPairs traversal per unit of β.
fn ablation(opts: &Opts, report: &mut Report) {
    use parclust::{emst_memogfk_with_schedule, BetaSchedule};
    let max_t = *thread_counts().last().unwrap();
    println!("\n=== Ablation: MemoGFK β schedule (doubling vs +1) at {max_t} threads ===");
    println!(
        "{:<20} {:>12} {:>9} {:>12} {:>9} {:>9}",
        "dataset", "double(s)", "rounds", "increment(s)", "rounds", "slowdown"
    );
    for spec in figure_subset(opts) {
        // The incremental schedule needs Θ(max pair cardinality) rounds —
        // that blow-up is exactly what the ablation demonstrates — so cap
        // the input size to keep its running time bounded.
        let n = n_of(spec, opts.scale).min(5000);
        let (d, i) = with_points!(spec, n, |pts| {
            let (sd, td) = best_time(max_t, opts.reps, || {
                emst_memogfk_with_schedule(&pts, BetaSchedule::Double).stats
            });
            let (si, ti) = best_time(max_t, opts.reps, || {
                emst_memogfk_with_schedule(&pts, BetaSchedule::Increment).stats
            });
            ((td, sd.rounds), (ti, si.rounds))
        });
        println!(
            "{:<20} {:>12} {:>9} {:>12} {:>9} {:>8.2}x",
            spec.name,
            fmt_secs(d.0),
            d.1,
            fmt_secs(i.0),
            i.1,
            i.0 / d.0,
        );
        for (method, secs, rounds) in [("beta-double", d.0, d.1), ("beta-increment", i.0, i.1)] {
            report.push(ResultRow {
                experiment: "ablation".into(),
                dataset: spec.name.into(),
                method: method.into(),
                threads: max_t,
                n,
                seconds: secs,
                extra: Some(serde_json::json!({"rounds": rounds})),
            });
        }
    }
}

/// Flat-extraction study (beyond the paper's evaluated scope): EOM cluster
/// selection across `cluster_selection_epsilon` values — cluster/noise
/// counts and extraction time on top of one HDBSCAN* hierarchy per data
/// set. The hierarchy is built once; only the selection sweep is timed.
fn extraction(opts: &Opts, report: &mut Report) {
    println!(
        "\n=== EOM extraction: cluster_selection_epsilon sweep (minPts={}, minClusterSize=10) ===",
        opts.min_pts
    );
    println!(
        "{:<20} {:>12} {:>10} {:>10} {:>12}",
        "dataset", "eps", "clusters", "noise", "extract(s)"
    );
    for spec in figure_subset(opts) {
        let n = n_of(spec, opts.scale);
        with_points!(spec, n, |pts| {
            let h = hdbscan_memogfk(&pts, opts.min_pts);
            let d = dendrogram_par(pts.len(), &h.edges, 0);
            let ct = condense_tree(&d, 10);
            for &eps in &opts.cluster_eps {
                let t0 = std::time::Instant::now();
                let labels = extract_eom_eps(&ct, eps);
                let secs = t0.elapsed().as_secs_f64();
                let noise = labels.iter().filter(|&&l| l == NOISE).count();
                let clusters = count_clusters(&labels);
                println!(
                    "{:<20} {:>12} {:>10} {:>10} {:>12}",
                    spec.name,
                    format!("{eps}"),
                    clusters,
                    noise,
                    fmt_secs(secs)
                );
                report.push(ResultRow {
                    experiment: "extract".into(),
                    dataset: spec.name.into(),
                    method: format!("eom-eps={eps}"),
                    threads: 0,
                    n,
                    seconds: secs,
                    extra: Some(serde_json::json!({
                        "cluster_selection_epsilon": eps,
                        "clusters": clusters as u64,
                        "noise": noise as u64,
                    })),
                });
            }
        });
    }
}

/// Scale experiment (beyond the laptop-class tables): out-of-core
/// ingestion + streaming EMST on a multi-million-point input under a
/// bounded working set, with peak RSS recorded next to the timings.
///
/// Input resolution: `--points-file` (any dimensionality in the chunked
/// `PCLS` format) or, by default, `2M × --scale` generated
/// 3D-GeoLife-like points streamed into a chunked file first — so the run
/// always exercises the file-ingestion path end to end. Explicit-only
/// (not part of `all`): it is sized for the nightly deep leg.
fn scale_experiment(opts: &Opts, report: &mut Report) -> bool {
    use parclust_bench::memory::fmt_bytes;
    use parclust_data::io::{chunked_header, ChunkedWriter};

    println!(
        "\n=== Scale: out-of-core ingestion + streaming EMST (max-memory {}) ===",
        fmt_bytes(opts.max_memory)
    );
    std::fs::create_dir_all(&opts.out_dir).expect("create out dir");
    let (path, generated) = match &opts.points_file {
        Some(p) => (p.clone(), false),
        None => {
            let n = ((2_000_000f64 * opts.scale) as usize).max(10_000);
            let p = opts.out_dir.join("scale_points.pcls");
            let t0 = std::time::Instant::now();
            let pts = parclust_data::gps_like(n, 42);
            let mut w = ChunkedWriter::<3, _>::create(&p, parclust_data::DEFAULT_CHUNK_LEN)
                .expect("create chunked file");
            w.push_all(&pts).expect("write points");
            w.finish().expect("finish chunked file");
            println!(
                "generated {n} 3D GeoLife-like points -> {} ({:.1}s)",
                p.display(),
                t0.elapsed().as_secs_f64()
            );
            (p, true)
        }
    };
    let header = chunked_header(&path).expect("readable chunked header");
    let ok = match header.dims {
        2 => scale_run::<2>(&path, opts, report),
        3 => scale_run::<3>(&path, opts, report),
        5 => scale_run::<5>(&path, opts, report),
        7 => scale_run::<7>(&path, opts, report),
        10 => scale_run::<10>(&path, opts, report),
        16 => scale_run::<16>(&path, opts, report),
        d => panic!("unsupported point-file dimensionality {d}"),
    };
    if generated {
        std::fs::remove_file(&path).ok();
    }
    ok
}

fn scale_run<const D: usize>(path: &std::path::Path, opts: &Opts, report: &mut Report) -> bool {
    use parclust_bench::memory::{fmt_bytes, peak_rss_bytes, MemoryBudget};
    use parclust_data::io::{collect_points, ChunkedReader, PointSource};

    let max_t = *thread_counts().last().unwrap();
    let budget = MemoryBudget::new(opts.max_memory);

    let t0 = std::time::Instant::now();
    let mut reader = ChunkedReader::<D>::open(path).expect("open chunked file");
    let file_total = reader.total();
    let pts = collect_points(&mut reader).expect("stream ingestion");
    let ingest_secs = t0.elapsed().as_secs_f64();
    assert_eq!(pts.len(), file_total, "ingestion must deliver every point");

    let n = pts.len();
    let cap = budget.batch_cap(n, D);
    let fixed = budget.fixed_bytes(n, D);
    if fixed >= opts.max_memory {
        eprintln!(
            "warning: estimated fixed cost {} of {n} points exceeds --max-memory {} — \
             batches stay bounded at the floor, but the bound cannot hold",
            fmt_bytes(fixed),
            fmt_bytes(opts.max_memory)
        );
    }
    println!(
        "streaming EMST: n={n} dims={D} batch-cap={cap} pairs (fixed est. {})",
        fmt_bytes(fixed)
    );

    let (stats, secs, pool) = best_time_with_metrics(max_t, opts.reps, || {
        parclust::emst_streaming(&pts, cap).stats
    });
    let rss = peak_rss_bytes();
    let within = rss.map(|r| r <= opts.max_memory);
    println!(
        "{:<22} {:>10} {:>12} {:>10} {:>12} {:>14} {:>12}",
        "dataset", "ingest(s)", "emst(s)", "batches", "peak pairs", "peak RSS", "in budget"
    );
    println!(
        "{:<22} {:>10.2} {:>12} {:>10} {:>12} {:>14} {:>12}",
        format!("{D}D-file"),
        ingest_secs,
        fmt_secs(secs),
        stats.rounds,
        stats.peak_live_pairs,
        rss.map(fmt_bytes).unwrap_or_else(|| "n/a".into()),
        match within {
            Some(true) => "yes",
            Some(false) => "NO",
            None => "n/a",
        },
    );
    report.push(ResultRow {
        experiment: "scale".into(),
        dataset: format!("{D}D-points-file"),
        method: "EMST-Streaming".into(),
        threads: max_t,
        n,
        seconds: secs,
        extra: Some(serde_json::json!({
            "ingest_seconds": ingest_secs,
            "batch_cap_pairs": cap as u64,
            "batches": stats.rounds,
            "peak_live_pairs": stats.peak_live_pairs,
            "peak_pair_bytes": stats.peak_pair_bytes,
            "bccp_calls": stats.bccp_calls,
            "max_memory_bytes": opts.max_memory,
            "peak_rss_bytes": rss.unwrap_or(0),
            "rss_within_budget": within.unwrap_or(false),
            "pool": pool,
        })),
    });
    if opts.strict_memory {
        match within {
            Some(true) => true,
            Some(false) => {
                eprintln!("scale: peak RSS exceeded --max-memory under --strict-memory — failing");
                false
            }
            None => {
                eprintln!("scale: RSS unavailable on this platform; --strict-memory passes");
                true
            }
        }
    } else {
        true
    }
}

fn main() {
    let opts = parse_args();
    if opts.trace.is_some() {
        // Must precede the first span: enabling pins the trace epoch.
        parclust_obs::trace::enable();
    }
    let run_all = opts.experiments.iter().any(|e| e == "all");
    let want = |name: &str| run_all || opts.experiments.iter().any(|e| e == name);
    println!(
        "repro: scale={} reps={} minPts={} max threads={}",
        opts.scale,
        opts.reps,
        opts.min_pts,
        thread_counts().last().unwrap()
    );

    let mut report = Report::default();
    if want("table4") || want("table2") {
        table4_and_2(&opts, &mut report);
    }
    if want("table3") {
        table3(&opts, &mut report);
    }
    if want("table5") {
        table5(&opts, &mut report);
    }
    if want("fig6") {
        figures_6_7(&opts, &mut report, "fig6");
    }
    if want("fig7") {
        figures_6_7(&opts, &mut report, "fig7");
    }
    if want("fig8") {
        fig8(&opts, &mut report);
    }
    if want("fig9") {
        fig9(&opts, &mut report);
    }
    if want("fig10") {
        fig10(&opts, &mut report);
    }
    if want("memory") {
        memory(&opts, &mut report);
    }
    if want("minpts") {
        minpts(&opts, &mut report);
    }
    if want("ablation") {
        ablation(&opts, &mut report);
    }
    if want("extract") {
        extraction(&opts, &mut report);
    }
    // Explicit-only: multi-million-point streaming run sized for nightly.
    let mut scale_ok = true;
    if opts.experiments.iter().any(|e| e == "scale") {
        scale_ok = scale_experiment(&opts, &mut report);
    }

    let out = opts.out_dir.join("repro.json");
    report.write(&out).expect("write JSON report");
    println!("\nwrote {} rows to {}", report.rows.len(), out.display());

    if let Some(path) = &opts.trace {
        parclust_obs::trace::disable();
        if let Some(dir) = path.parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir).expect("create trace dir");
            }
        }
        let json = parclust_obs::export::drain_chrome_json();
        std::fs::write(path, &json).expect("write trace");
        println!(
            "wrote Chrome trace to {} ({} bytes)",
            path.display(),
            json.len()
        );
    }
    if !scale_ok {
        std::process::exit(1);
    }
}
