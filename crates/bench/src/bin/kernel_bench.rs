//! Distance-kernel micro-bench for CI: run the SoA lane kernels against
//! the scalar gather reference and emit the `kernels` JSON section the
//! bench gate consumes.
//!
//! ```sh
//! kernel_bench --out bench_results/kernels.json [--reps 7]
//! ```
//!
//! The output maps kernel names to `{lane_secs, scalar_secs,
//! speedup_vs_scalar}`; `compare_bench --kernels` gates the speedups
//! against the committed baseline and `--kernel-floor` pins the absolute
//! minimum (CI uses `bccp_pair_loop=1.3`). Speedups are same-machine
//! ratios, so they transfer across CI hardware where raw seconds cannot.

use parclust_bench::kernels::kernels_json;

fn main() {
    let mut out: Option<std::path::PathBuf> = None;
    let mut reps = 7usize;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--out" => out = Some(args.next().expect("--out FILE").into()),
            "--reps" => {
                reps = args
                    .next()
                    .expect("--reps N")
                    .parse()
                    .expect("reps must be a positive integer");
                assert!(reps >= 1, "reps must be at least 1");
            }
            "--help" | "-h" => {
                println!("usage: kernel_bench --out FILE [--reps N]");
                return;
            }
            other => panic!("unknown argument {other:?}"),
        }
    }

    let doc = kernels_json(reps);
    let text = doc.to_json_string_pretty();
    if let Some(map) = doc.as_object() {
        println!(
            "{:<20} {:>12} {:>12} {:>8}",
            "kernel", "lane", "scalar", "speedup"
        );
        for (kernel, blob) in map {
            let f = |k: &str| {
                blob.get(k)
                    .and_then(serde_json::Value::as_f64)
                    .unwrap_or(f64::NAN)
            };
            println!(
                "{kernel:<20} {:>10.2}ms {:>10.2}ms {:>7.2}x",
                f("lane_secs") * 1e3,
                f("scalar_secs") * 1e3,
                f("speedup_vs_scalar"),
            );
        }
    }
    match out {
        Some(path) => {
            if let Some(dir) = path.parent() {
                if !dir.as_os_str().is_empty() {
                    std::fs::create_dir_all(dir)
                        .unwrap_or_else(|e| panic!("cannot create {}: {e}", dir.display()));
                }
            }
            std::fs::write(&path, text)
                .unwrap_or_else(|e| panic!("cannot write {}: {e}", path.display()));
            println!("kernel_bench: wrote {}", path.display());
        }
        None => println!("{text}"),
    }
}
