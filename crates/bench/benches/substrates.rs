//! Criterion benches for the substrate layers: kd-tree build, kNN, WSPD
//! construction under both separation policies, and the parallel
//! primitives.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use parclust_data::{seed_spreader, uniform_fill};
use parclust_geom::Point;
use parclust_kdtree::KdTree;
use parclust_primitives::pack::pack;
use parclust_primitives::scan::scan_exclusive_usize;
use parclust_primitives::select::select_kth;
use parclust_wspd::policy::core_distance_annotations;
use parclust_wspd::{wspd_materialize, GeometricSep, MutualReachSep, SepMode};
use std::time::Duration;

fn bench_kdtree(c: &mut Criterion) {
    let mut g = c.benchmark_group("kdtree");
    g.sample_size(10).measurement_time(Duration::from_secs(5));
    for n in [50_000usize, 200_000] {
        let pts: Vec<Point<3>> = uniform_fill(n, 42);
        g.bench_function(BenchmarkId::new("build_3d", n), |b| {
            b.iter(|| KdTree::build(&pts).len())
        });
    }
    let pts: Vec<Point<3>> = uniform_fill(50_000, 42);
    let tree = KdTree::build(&pts);
    g.bench_function("knn_all_k10_50k", |b| b.iter(|| tree.knn_all(10).k));
    g.finish();
}

fn bench_wspd(c: &mut Criterion) {
    let mut g = c.benchmark_group("wspd");
    g.sample_size(10).measurement_time(Duration::from_secs(5));
    let pts: Vec<Point<2>> = seed_spreader(50_000, 42);
    let tree = KdTree::build(&pts);
    g.bench_function("geometric_s2_50k", |b| {
        b.iter(|| wspd_materialize(&tree, &GeometricSep::PAPER_DEFAULT).len())
    });
    // HDBSCAN separations: standard vs the paper's combined definition.
    let knn = tree.knn_all(10);
    let cd: Vec<f64> = (0..tree.len()).map(|i| knn.kth_dist(i)).collect();
    let cd_pos: Vec<f64> = tree.idx.iter().map(|&o| cd[o as usize]).collect();
    let (cd_min, cd_max) = core_distance_annotations(&tree, &cd_pos);
    g.bench_function("mutual_reach_standard_50k", |b| {
        b.iter(|| {
            let p = MutualReachSep::new(SepMode::Standard, &cd_pos, &cd_min, &cd_max);
            wspd_materialize(&tree, &p).len()
        })
    });
    g.bench_function("mutual_reach_combined_50k", |b| {
        b.iter(|| {
            let p = MutualReachSep::new(SepMode::Combined, &cd_pos, &cd_min, &cd_max);
            wspd_materialize(&tree, &p).len()
        })
    });
    g.finish();
}

fn bench_primitives(c: &mut Criterion) {
    let mut g = c.benchmark_group("primitives_1m");
    g.sample_size(10).measurement_time(Duration::from_secs(5));
    let xs: Vec<usize> = (0..1_000_000).map(|i| i % 17).collect();
    g.bench_function("scan_exclusive", |b| b.iter(|| scan_exclusive_usize(&xs).1));
    let ys: Vec<u64> = (0..1_000_000u64)
        .map(|i| i.wrapping_mul(48271) % 1000)
        .collect();
    g.bench_function("pack_half", |b| b.iter(|| pack(&ys, |&y| y < 500).len()));
    let ws: Vec<f64> = (0..1_000_000u64)
        .map(|i| ((i.wrapping_mul(2654435761)) % 1000003) as f64)
        .collect();
    g.bench_function("select_median", |b| b.iter(|| select_kth(&ws, 500_000)));
    g.finish();
}

criterion_group!(benches, bench_kdtree, bench_wspd, bench_primitives);
criterion_main!(benches);
