//! Criterion benches for the EMST method lineup (the §5 comparison at
//! microbenchmark scale): Naive vs GFK vs MemoGFK vs Delaunay vs Boruvka.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use parclust::{emst_boruvka, emst_delaunay, emst_gfk, emst_memogfk, emst_naive, Point};
use parclust_data::{seed_spreader, uniform_fill};
use std::time::Duration;

fn bench_2d(c: &mut Criterion) {
    let n = 20_000;
    let pts: Vec<Point<2>> = seed_spreader(n, 42);
    let mut g = c.benchmark_group("emst_2d_ssvarden_20k");
    g.sample_size(10).measurement_time(Duration::from_secs(5));
    g.bench_function(BenchmarkId::new("naive", n), |b| {
        b.iter(|| emst_naive(&pts).total_weight)
    });
    g.bench_function(BenchmarkId::new("gfk", n), |b| {
        b.iter(|| emst_gfk(&pts).total_weight)
    });
    g.bench_function(BenchmarkId::new("memogfk", n), |b| {
        b.iter(|| emst_memogfk(&pts).total_weight)
    });
    g.bench_function(BenchmarkId::new("delaunay", n), |b| {
        b.iter(|| emst_delaunay(&pts).total_weight)
    });
    g.bench_function(BenchmarkId::new("boruvka", n), |b| {
        b.iter(|| emst_boruvka(&pts).total_weight)
    });
    g.finish();
}

fn bench_5d(c: &mut Criterion) {
    let n = 10_000;
    let pts: Vec<Point<5>> = uniform_fill(n, 42);
    let mut g = c.benchmark_group("emst_5d_uniform_10k");
    g.sample_size(10).measurement_time(Duration::from_secs(5));
    g.bench_function(BenchmarkId::new("naive", n), |b| {
        b.iter(|| emst_naive(&pts).total_weight)
    });
    g.bench_function(BenchmarkId::new("memogfk", n), |b| {
        b.iter(|| emst_memogfk(&pts).total_weight)
    });
    g.bench_function(BenchmarkId::new("boruvka", n), |b| {
        b.iter(|| emst_boruvka(&pts).total_weight)
    });
    g.finish();
}

fn bench_memogfk_scaling(c: &mut Criterion) {
    let mut g = c.benchmark_group("emst_memogfk_scaling_2d");
    g.sample_size(10).measurement_time(Duration::from_secs(5));
    for n in [10_000usize, 40_000, 160_000] {
        let pts: Vec<Point<2>> = seed_spreader(n, 7);
        g.bench_function(BenchmarkId::from_parameter(n), |b| {
            b.iter(|| emst_memogfk(&pts).total_weight)
        });
    }
    g.finish();
}

criterion_group!(benches, bench_2d, bench_5d, bench_memogfk_scaling);
criterion_main!(benches);
