//! Criterion benches for ordered-dendrogram construction (Figure 9's
//! comparison at microbenchmark scale), plus the downstream consumers
//! (reachability plots and flat cuts) and the heavy-fraction ablation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use parclust::{
    dbscan_star_labels, dendrogram_par, dendrogram_par_with, dendrogram_seq, emst_memogfk,
    hdbscan_memogfk, reachability_plot, single_linkage_k, DendrogramParams, Point,
};
use parclust_data::seed_spreader;
use std::time::Duration;

fn bench_construction(c: &mut Criterion) {
    let n = 100_000;
    let pts: Vec<Point<2>> = seed_spreader(n, 42);
    let slc = emst_memogfk(&pts);
    let hdb = hdbscan_memogfk(&pts, 10);

    let mut g = c.benchmark_group("dendrogram_100k");
    g.sample_size(10).measurement_time(Duration::from_secs(5));
    g.bench_function("seq_single_linkage", |b| {
        b.iter(|| dendrogram_seq(n, &slc.edges, 0).root)
    });
    g.bench_function("par_single_linkage", |b| {
        b.iter(|| dendrogram_par(n, &slc.edges, 0).root)
    });
    g.bench_function("seq_hdbscan_minpts10", |b| {
        b.iter(|| dendrogram_seq(n, &hdb.edges, 0).root)
    });
    g.bench_function("par_hdbscan_minpts10", |b| {
        b.iter(|| dendrogram_par(n, &hdb.edges, 0).root)
    });
    g.finish();
}

fn bench_heavy_fraction_ablation(c: &mut Criterion) {
    // DESIGN.md ablation: the paper fixes the heavy fraction at n/10 after
    // trying alternatives ("we found that using n/10 heavy edges works
    // reasonably well in all cases").
    let n = 100_000;
    let pts: Vec<Point<2>> = seed_spreader(n, 43);
    let mst = emst_memogfk(&pts);
    let mut g = c.benchmark_group("dendrogram_heavy_fraction_100k");
    g.sample_size(10).measurement_time(Duration::from_secs(5));
    for frac in [0.02f64, 0.1, 0.3, 0.5] {
        g.bench_function(BenchmarkId::from_parameter(frac), |b| {
            b.iter(|| {
                dendrogram_par_with(
                    n,
                    &mst.edges,
                    0,
                    DendrogramParams {
                        heavy_fraction: frac,
                        seq_threshold_fraction: 0.5,
                    },
                )
                .root
            })
        });
    }
    g.finish();
}

fn bench_consumers(c: &mut Criterion) {
    let n = 100_000;
    let pts: Vec<Point<2>> = seed_spreader(n, 44);
    let hdb = hdbscan_memogfk(&pts, 10);
    let dend = dendrogram_par(n, &hdb.edges, 0);
    let mut g = c.benchmark_group("dendrogram_consumers_100k");
    g.sample_size(10).measurement_time(Duration::from_secs(5));
    g.bench_function("reachability_plot", |b| {
        b.iter(|| reachability_plot(&dend).0.len())
    });
    g.bench_function("single_linkage_k16", |b| {
        b.iter(|| single_linkage_k(&dend, 16).len())
    });
    g.bench_function("dbscan_star_cut", |b| {
        b.iter(|| dbscan_star_labels(&dend, &hdb.core_distances, 1.0).len())
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_construction,
    bench_heavy_fraction_ablation,
    bench_consumers
);
criterion_main!(benches);
