//! Criterion micro-bench for the SoA distance kernels: the lane kernel
//! ([`parclust_data::PointBlock::dist_sq_into`]) against the scalar gather
//! reference, in the BCCP pair-loop and kNN-batch access shapes. CI's
//! `kernel-bench` leg gates the same workloads through `kernel_bench` /
//! `compare_bench`; this bench is for local profiling of the kernels
//! themselves.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use parclust_bench::kernels::{bccp_pass, kernel_block, knn_batch_pass};
use std::time::Duration;

fn bench_kernels(c: &mut Criterion) {
    let block = kernel_block();
    let mut g = c.benchmark_group("kernels");
    g.sample_size(10).measurement_time(Duration::from_secs(5));
    g.bench_function("bccp_pair_loop/lane", |b| {
        b.iter(|| black_box(bccp_pass(&block, true)))
    });
    g.bench_function("bccp_pair_loop/scalar", |b| {
        b.iter(|| black_box(bccp_pass(&block, false)))
    });
    g.bench_function("knn_batch/lane", |b| {
        b.iter(|| black_box(knn_batch_pass(&block, true)))
    });
    g.bench_function("knn_batch/scalar", |b| {
        b.iter(|| black_box(knn_batch_pass(&block, false)))
    });
    g.finish();
}

criterion_group!(benches, bench_kernels);
criterion_main!(benches);
