//! Criterion benches for the HDBSCAN* lineup: the improved well-separation
//! (MemoGFK) vs the exact Gan–Tao baseline vs approximate OPTICS.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use parclust::{hdbscan_gantao, hdbscan_memogfk, optics_approx, Point};
use parclust_data::{seed_spreader, sensor_like};
use std::time::Duration;

fn bench_2d(c: &mut Criterion) {
    let n = 20_000;
    let min_pts = 10;
    let pts: Vec<Point<2>> = seed_spreader(n, 42);
    let mut g = c.benchmark_group("hdbscan_2d_ssvarden_20k");
    g.sample_size(10).measurement_time(Duration::from_secs(5));
    g.bench_function(BenchmarkId::new("memogfk", n), |b| {
        b.iter(|| hdbscan_memogfk(&pts, min_pts).total_weight)
    });
    g.bench_function(BenchmarkId::new("gantao", n), |b| {
        b.iter(|| hdbscan_gantao(&pts, min_pts).total_weight)
    });
    g.bench_function(BenchmarkId::new("optics_rho0.125", n), |b| {
        b.iter(|| optics_approx(&pts, min_pts, 0.125).total_weight)
    });
    g.finish();
}

fn bench_7d(c: &mut Criterion) {
    let n = 8_000;
    let min_pts = 10;
    let pts: Vec<Point<7>> = sensor_like(n, 42, 8);
    let mut g = c.benchmark_group("hdbscan_7d_sensor_8k");
    g.sample_size(10).measurement_time(Duration::from_secs(5));
    g.bench_function(BenchmarkId::new("memogfk", n), |b| {
        b.iter(|| hdbscan_memogfk(&pts, min_pts).total_weight)
    });
    g.bench_function(BenchmarkId::new("gantao", n), |b| {
        b.iter(|| hdbscan_gantao(&pts, min_pts).total_weight)
    });
    g.finish();
}

fn bench_minpts_sweep(c: &mut Criterion) {
    let n = 20_000;
    let pts: Vec<Point<3>> = seed_spreader(n, 9);
    let mut g = c.benchmark_group("hdbscan_minpts_sweep_3d_20k");
    g.sample_size(10).measurement_time(Duration::from_secs(5));
    for min_pts in [10usize, 30, 50] {
        g.bench_function(BenchmarkId::from_parameter(min_pts), |b| {
            b.iter(|| hdbscan_memogfk(&pts, min_pts).total_weight)
        });
    }
    g.finish();
}

criterion_group!(benches, bench_2d, bench_7d, bench_minpts_sweep);
criterion_main!(benches);
