//! Criterion benches for the serving layer: query-engine throughput on a
//! loaded model — flat cuts, EOM extraction (including the
//! `cluster_selection_epsilon` path), cached labeling fetches, and batched
//! out-of-sample assignment at several pool widths. The HTTP transport is
//! measured separately by the `loadgen` binary; these benches isolate the
//! engine itself.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use parclust::{extract_eom_eps, single_linkage_cut, Point};
use parclust_data::seed_spreader;
use parclust_serve::{ClusterModel, LabelingSpec, QueryEngine};
use rand::prelude::*;
use std::sync::Arc;
use std::time::Duration;

fn model_20k() -> Arc<ClusterModel<2>> {
    let pts: Vec<Point<2>> = seed_spreader(20_000, 42);
    Arc::new(ClusterModel::build(&pts, 10, 10))
}

fn bench_labelings(c: &mut Criterion) {
    let model = model_20k();
    let engine = QueryEngine::new(Arc::clone(&model));
    let mut g = c.benchmark_group("serving_labelings_20k");
    g.sample_size(20).measurement_time(Duration::from_secs(3));
    // Uncached core work (what the first request at a new eps pays).
    g.bench_function("single_linkage_cut_uncached", |b| {
        b.iter(|| single_linkage_cut(&model.dendrogram, 0.5).len())
    });
    g.bench_function("eom_uncached", |b| {
        b.iter(|| extract_eom_eps(&model.condensed, 0.0).len())
    });
    g.bench_function("eom_selection_eps_uncached", |b| {
        b.iter(|| extract_eom_eps(&model.condensed, 1.0).len())
    });
    // Steady-state cached fetch (what repeat requests pay).
    engine.labeling(LabelingSpec::Cut { eps: 0.5 });
    g.bench_function("cut_cached_fetch", |b| {
        b.iter(|| engine.labeling(LabelingSpec::Cut { eps: 0.5 }).num_clusters)
    });
    g.finish();
}

fn bench_assignment(c: &mut Criterion) {
    let model = model_20k();
    let engine = Arc::new(QueryEngine::new(Arc::clone(&model)));
    let bbox = model.bbox();
    let mut rng = StdRng::seed_from_u64(7);
    let queries: Vec<Point<2>> = (0..512)
        .map(|_| {
            Point([
                rng.gen_range(bbox.lo[0]..=bbox.hi[0]),
                rng.gen_range(bbox.lo[1]..=bbox.hi[1]),
            ])
        })
        .collect();
    let spec = LabelingSpec::Eom {
        cluster_selection_epsilon: 0.0,
    };
    // Warm the labeling cache so the bench isolates the kNN + rule work.
    engine.labeling(spec);
    let mut g = c.benchmark_group("serving_assign_512_of_20k");
    g.sample_size(20).measurement_time(Duration::from_secs(3));
    for threads in [1usize, 2, 4] {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .expect("pool");
        g.bench_with_input(
            BenchmarkId::new("assign_batch", threads),
            &threads,
            |b, _| {
                b.iter(|| pool.install(|| engine.assign_batch(&queries, spec, f64::INFINITY).len()))
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench_labelings, bench_assignment);
criterion_main!(benches);
