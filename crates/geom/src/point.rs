//! Const-generic points.

use std::ops::{Index, IndexMut};

/// A point in `D`-dimensional Euclidean space.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Point<const D: usize>(pub [f64; D]);

impl<const D: usize> Default for Point<D> {
    fn default() -> Self {
        Point([0.0; D])
    }
}

impl<const D: usize> Point<D> {
    pub const DIM: usize = D;

    #[inline]
    pub fn new(coords: [f64; D]) -> Self {
        Point(coords)
    }

    /// Build a point from a slice (must have length `D`).
    pub fn from_slice(coords: &[f64]) -> Self {
        let mut p = [0.0; D];
        p.copy_from_slice(coords);
        Point(p)
    }

    #[inline]
    pub fn coords(&self) -> &[f64; D] {
        &self.0
    }

    /// Squared Euclidean distance to `other`.
    #[inline]
    pub fn dist_sq(&self, other: &Self) -> f64 {
        crate::dist_sq(self, other)
    }

    /// Euclidean distance to `other`.
    #[inline]
    pub fn dist(&self, other: &Self) -> f64 {
        crate::dist(self, other)
    }

    /// Component-wise midpoint.
    #[inline]
    pub fn midpoint(&self, other: &Self) -> Self {
        let mut out = [0.0; D];
        for (i, o) in out.iter_mut().enumerate() {
            *o = 0.5 * (self.0[i] + other.0[i]);
        }
        Point(out)
    }

    /// True if any coordinate is NaN or infinite.
    pub fn is_degenerate(&self) -> bool {
        self.0.iter().any(|c| !c.is_finite())
    }
}

impl<const D: usize> Index<usize> for Point<D> {
    type Output = f64;
    #[inline]
    fn index(&self, i: usize) -> &f64 {
        &self.0[i]
    }
}

impl<const D: usize> IndexMut<usize> for Point<D> {
    #[inline]
    fn index_mut(&mut self, i: usize) -> &mut f64 {
        &mut self.0[i]
    }
}

impl<const D: usize> From<[f64; D]> for Point<D> {
    fn from(coords: [f64; D]) -> Self {
        Point(coords)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distances() {
        let a = Point([0.0, 0.0]);
        let b = Point([3.0, 4.0]);
        assert_eq!(a.dist_sq(&b), 25.0);
        assert_eq!(a.dist(&b), 5.0);
        assert_eq!(a.dist(&a), 0.0);
    }

    #[test]
    fn midpoint_and_indexing() {
        let a = Point([1.0, 2.0, 3.0]);
        let b = Point([3.0, 6.0, 9.0]);
        let m = a.midpoint(&b);
        assert_eq!(m, Point([2.0, 4.0, 6.0]));
        assert_eq!(m[2], 6.0);
    }

    #[test]
    fn from_slice_roundtrip() {
        let p: Point<4> = Point::from_slice(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(p.coords(), &[1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn degeneracy() {
        assert!(Point([f64::NAN, 0.0]).is_degenerate());
        assert!(Point([f64::INFINITY, 0.0]).is_degenerate());
        assert!(!Point([1.0, -1.0]).is_degenerate());
    }
}
