//! Geometric foundation for `parclust`.
//!
//! Points are fixed-dimension (`const D: usize`) stack values so that every
//! distance computation compiles to a tight unrolled loop — the paper's
//! algorithms are evaluated at d ∈ {2, 3, 5, 7, 10, 16} and dimension is
//! always known at the call site.

pub mod aabb;
pub mod point;

pub use aabb::Aabb;
pub use point::Point;

/// Squared Euclidean distance; the workhorse used everywhere internal.
#[inline]
pub fn dist_sq<const D: usize>(a: &Point<D>, b: &Point<D>) -> f64 {
    let mut acc = 0.0;
    for i in 0..D {
        let d = a.0[i] - b.0[i];
        acc += d * d;
    }
    acc
}

/// Euclidean distance.
#[inline]
pub fn dist<const D: usize>(a: &Point<D>, b: &Point<D>) -> f64 {
    dist_sq(a, b).sqrt()
}
