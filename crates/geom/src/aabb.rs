//! Axis-aligned bounding boxes and derived bounding balls.
//!
//! kd-tree nodes carry an [`Aabb`]; the WSPD's well-separation test and the
//! MemoGFK weight bounds are phrased on the *bounding spheres* of the boxes
//! (Table 1 of the paper: `d(A,B)` is the minimum distance between bounding
//! spheres, `A_diam` the sphere diameter), so the ball view lives here too.

use crate::point::Point;

/// Axis-aligned bounding box. An *empty* box has `lo > hi` in every
/// dimension and absorbs any point on [`Aabb::extend`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Aabb<const D: usize> {
    pub lo: Point<D>,
    pub hi: Point<D>,
}

impl<const D: usize> Default for Aabb<D> {
    fn default() -> Self {
        Self::empty()
    }
}

impl<const D: usize> Aabb<D> {
    /// The empty box (identity for [`Aabb::merge`]).
    pub fn empty() -> Self {
        Aabb {
            lo: Point([f64::INFINITY; D]),
            hi: Point([f64::NEG_INFINITY; D]),
        }
    }

    pub fn is_empty(&self) -> bool {
        (0..D).any(|i| self.lo[i] > self.hi[i])
    }

    /// Smallest box containing all `points`.
    pub fn from_points(points: &[Point<D>]) -> Self {
        let mut b = Self::empty();
        for p in points {
            b.extend(p);
        }
        b
    }

    /// Grow to contain `p`.
    #[inline]
    pub fn extend(&mut self, p: &Point<D>) {
        for i in 0..D {
            self.lo[i] = self.lo[i].min(p[i]);
            self.hi[i] = self.hi[i].max(p[i]);
        }
    }

    /// Smallest box containing both boxes.
    #[inline]
    pub fn merge(&self, other: &Self) -> Self {
        let mut out = *self;
        for i in 0..D {
            out.lo[i] = out.lo[i].min(other.lo[i]);
            out.hi[i] = out.hi[i].max(other.hi[i]);
        }
        out
    }

    #[inline]
    pub fn contains(&self, p: &Point<D>) -> bool {
        (0..D).all(|i| self.lo[i] <= p[i] && p[i] <= self.hi[i])
    }

    /// Box center = bounding-ball center.
    #[inline]
    pub fn center(&self) -> Point<D> {
        self.lo.midpoint(&self.hi)
    }

    /// Squared length of the box diagonal (= squared bounding-ball diameter).
    #[inline]
    pub fn diag_sq(&self) -> f64 {
        let mut acc = 0.0;
        for i in 0..D {
            let d = self.hi[i] - self.lo[i];
            acc += d * d;
        }
        acc
    }

    /// Bounding-ball diameter (`A_diam` in the paper).
    #[inline]
    pub fn diameter(&self) -> f64 {
        self.diag_sq().sqrt()
    }

    /// Bounding-ball radius.
    #[inline]
    pub fn radius(&self) -> f64 {
        0.5 * self.diameter()
    }

    /// Index of the widest dimension (split dimension for the spatial-median
    /// kd-tree).
    pub fn widest_dim(&self) -> usize {
        let mut best = 0;
        let mut best_w = f64::NEG_INFINITY;
        for i in 0..D {
            let w = self.hi[i] - self.lo[i];
            if w > best_w {
                best_w = w;
                best = i;
            }
        }
        best
    }

    /// Squared minimum distance from `p` to this box (0 if inside).
    #[inline]
    pub fn dist_sq_to_point(&self, p: &Point<D>) -> f64 {
        let mut acc = 0.0;
        for i in 0..D {
            let d = if p[i] < self.lo[i] {
                self.lo[i] - p[i]
            } else if p[i] > self.hi[i] {
                p[i] - self.hi[i]
            } else {
                0.0
            };
            acc += d * d;
        }
        acc
    }

    /// Squared minimum distance between two boxes (0 if overlapping).
    #[inline]
    pub fn min_dist_sq(&self, other: &Self) -> f64 {
        let mut acc = 0.0;
        for i in 0..D {
            let d = if other.hi[i] < self.lo[i] {
                self.lo[i] - other.hi[i]
            } else if other.lo[i] > self.hi[i] {
                other.lo[i] - self.hi[i]
            } else {
                0.0
            };
            acc += d * d;
        }
        acc
    }

    /// Squared maximum distance between any two points of the boxes.
    #[inline]
    pub fn max_dist_sq(&self, other: &Self) -> f64 {
        let mut acc = 0.0;
        for i in 0..D {
            let d = (self.hi[i] - other.lo[i])
                .abs()
                .max((other.hi[i] - self.lo[i]).abs());
            acc += d * d;
        }
        acc
    }

    /// Minimum distance between the bounding *spheres* of the two boxes —
    /// the paper's `d(A, B)` (Table 1). Clamped at zero when the spheres
    /// intersect.
    #[inline]
    pub fn sphere_min_dist(&self, other: &Self) -> f64 {
        let c = crate::dist(&self.center(), &other.center());
        (c - self.radius() - other.radius()).max(0.0)
    }

    /// Maximum distance between the bounding spheres — the `d_max(A, B)`
    /// upper bound used by MemoGFK's pair retrieval (Figure 3).
    #[inline]
    pub fn sphere_max_dist(&self, other: &Self) -> f64 {
        crate::dist(&self.center(), &other.center()) + self.radius() + other.radius()
    }

    /// Callahan–Kosaraju well-separation with separation constant `s`: the
    /// bounding balls, each grown to the larger radius `r`, must be at least
    /// `s * r` apart.
    #[inline]
    pub fn well_separated(&self, other: &Self, s: f64) -> bool {
        let r = self.radius().max(other.radius());
        let gap = crate::dist(&self.center(), &other.center()) - 2.0 * r;
        gap >= s * r
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_box_absorbs() {
        let mut b = Aabb::<2>::empty();
        assert!(b.is_empty());
        b.extend(&Point([1.0, 2.0]));
        assert!(!b.is_empty());
        assert_eq!(b.lo, Point([1.0, 2.0]));
        assert_eq!(b.hi, Point([1.0, 2.0]));
        assert_eq!(b.diameter(), 0.0);
    }

    #[test]
    fn from_points_and_contains() {
        let pts = [Point([0.0, 0.0]), Point([2.0, 1.0]), Point([1.0, 3.0])];
        let b = Aabb::from_points(&pts);
        assert_eq!(b.lo, Point([0.0, 0.0]));
        assert_eq!(b.hi, Point([2.0, 3.0]));
        assert!(b.contains(&Point([1.0, 1.0])));
        assert!(!b.contains(&Point([3.0, 1.0])));
        assert_eq!(b.center(), Point([1.0, 1.5]));
    }

    #[test]
    fn widest_dim_picks_largest_extent() {
        let b = Aabb {
            lo: Point([0.0, 0.0, 0.0]),
            hi: Point([1.0, 5.0, 2.0]),
        };
        assert_eq!(b.widest_dim(), 1);
    }

    #[test]
    fn point_box_distance() {
        let b = Aabb {
            lo: Point([0.0, 0.0]),
            hi: Point([1.0, 1.0]),
        };
        assert_eq!(b.dist_sq_to_point(&Point([0.5, 0.5])), 0.0);
        assert_eq!(b.dist_sq_to_point(&Point([2.0, 0.5])), 1.0);
        assert_eq!(b.dist_sq_to_point(&Point([2.0, 2.0])), 2.0);
    }

    #[test]
    fn box_box_distances() {
        let a = Aabb {
            lo: Point([0.0, 0.0]),
            hi: Point([1.0, 1.0]),
        };
        let b = Aabb {
            lo: Point([3.0, 0.0]),
            hi: Point([4.0, 1.0]),
        };
        assert_eq!(a.min_dist_sq(&b), 4.0);
        assert_eq!(a.max_dist_sq(&b), 16.0 + 1.0);
        // Overlapping boxes: zero min distance.
        let c = Aabb {
            lo: Point([0.5, 0.5]),
            hi: Point([2.0, 2.0]),
        };
        assert_eq!(a.min_dist_sq(&c), 0.0);
    }

    #[test]
    fn sphere_bounds_sandwich_point_distances() {
        // For any points u ∈ A, v ∈ B: sphere_min ≤ d(u,v) ≤ sphere_max.
        let a = Aabb::from_points(&[Point([0.0, 0.0]), Point([1.0, 2.0])]);
        let b = Aabb::from_points(&[Point([5.0, 5.0]), Point([6.0, 4.0])]);
        let pts_a = [Point([0.0, 0.0]), Point([1.0, 2.0]), Point([0.5, 1.7])];
        let pts_b = [Point([5.0, 5.0]), Point([6.0, 4.0]), Point([5.5, 4.2])];
        for u in &pts_a {
            for v in &pts_b {
                let d = u.dist(v);
                assert!(a.sphere_min_dist(&b) <= d + 1e-12);
                assert!(d <= a.sphere_max_dist(&b) + 1e-12);
            }
        }
    }

    #[test]
    fn well_separation_scaling() {
        let a = Aabb::from_points(&[Point([0.0, 0.0]), Point([1.0, 0.0])]);
        let far = Aabb::from_points(&[Point([10.0, 0.0]), Point([11.0, 0.0])]);
        let near = Aabb::from_points(&[Point([1.5, 0.0]), Point([2.5, 0.0])]);
        assert!(a.well_separated(&far, 2.0));
        assert!(!a.well_separated(&near, 2.0));
        // Higher separation constants are strictly harder to satisfy.
        assert!(!a.well_separated(&far, 20.0));
    }

    #[test]
    fn merge_is_union_bound() {
        let a = Aabb::from_points(&[Point([0.0, 0.0])]);
        let b = Aabb::from_points(&[Point([5.0, -1.0])]);
        let m = a.merge(&b);
        assert!(m.contains(&Point([0.0, 0.0])));
        assert!(m.contains(&Point([5.0, -1.0])));
        assert_eq!(m.lo, Point([0.0, -1.0]));
        assert_eq!(m.hi, Point([5.0, 0.0]));
    }
}
