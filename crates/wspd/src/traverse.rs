//! The parallel WSPD traversal (Algorithm 1) with pruning hooks.
//!
//! `WSPD(A)` recurses into both children in parallel and then runs
//! `FindPair(A_left, A_right)`; `FindPair(P, P')` either records a
//! well-separated pair or splits the node with the larger bounding sphere
//! and recurses on both halves in parallel. The `prune` hook is evaluated on
//! every `FindPair` entry — returning `true` abandons the pair *and all of
//! its descendant pairs* — which is exactly the capability MemoGFK's
//! `GetRho`/`GetPairs` passes need (Section 3.1.3).

use parclust_kdtree::{KdTree, NodeId};
use parclust_primitives::collector::Collector;

use crate::policy::SeparationPolicy;

/// A well-separated pair of kd-tree nodes.
pub type NodePair = (NodeId, NodeId);

/// Below this combined size, `FindPair` recursion stays sequential.
const PAIR_GRAIN: usize = 2048;

/// Generalized Algorithm 1. Calls `visit(a, b)` for every well-separated
/// pair under `policy`, skipping any pair subtree for which `prune` returns
/// true. `visit` and `prune` must be thread-safe; `visit` may be called
/// concurrently from many workers.
pub fn wspd_traverse<const D: usize, P, Pr, V>(tree: &KdTree<D>, policy: &P, prune: &Pr, visit: &V)
where
    P: SeparationPolicy<D>,
    Pr: Fn(NodeId, NodeId) -> bool + Sync,
    V: Fn(NodeId, NodeId) + Sync,
{
    if tree.len() > 1 {
        wspd_node(tree, policy, prune, visit, tree.root());
    }
}

fn wspd_node<const D: usize, P, Pr, V>(
    tree: &KdTree<D>,
    policy: &P,
    prune: &Pr,
    visit: &V,
    a: NodeId,
) where
    P: SeparationPolicy<D>,
    Pr: Fn(NodeId, NodeId) -> bool + Sync,
    V: Fn(NodeId, NodeId) + Sync,
{
    if tree.is_leaf(a) {
        return;
    }
    let (l, r) = tree.children(a);
    if tree.node_size(a) >= PAIR_GRAIN {
        rayon::join(
            || wspd_node(tree, policy, prune, visit, l),
            || wspd_node(tree, policy, prune, visit, r),
        );
    } else {
        wspd_node(tree, policy, prune, visit, l);
        wspd_node(tree, policy, prune, visit, r);
    }
    find_pair(tree, policy, prune, visit, l, r);
}

/// Choose which node of a non-well-separated pair to split (Algorithm 1
/// line 8): the one with the larger bounding sphere, breaking diameter
/// ties toward the larger node so a leaf is never chosen while its partner
/// is splittable. Returns `(split, other)`. Shared by the recursive
/// traversal and the streaming batcher — the streamed pair set is only
/// guaranteed to match the materialized one while both use this rule.
pub(crate) fn split_order<const D: usize>(
    tree: &KdTree<D>,
    a: NodeId,
    b: NodeId,
) -> (NodeId, NodeId) {
    let (da, db) = (tree.bbox(a).diag_sq(), tree.bbox(b).diag_sq());
    if da < db || (da == db && tree.node_size(a) < tree.node_size(b)) {
        (b, a)
    } else {
        (a, b)
    }
}

fn find_pair<const D: usize, P, Pr, V>(
    tree: &KdTree<D>,
    policy: &P,
    prune: &Pr,
    visit: &V,
    a: NodeId,
    b: NodeId,
) where
    P: SeparationPolicy<D>,
    Pr: Fn(NodeId, NodeId) -> bool + Sync,
    V: Fn(NodeId, NodeId) + Sync,
{
    if prune(a, b) {
        return;
    }
    if policy.well_separated(tree, a, b) {
        visit(a, b);
        return;
    }
    let (a, b) = split_order(tree, a, b);
    debug_assert!(
        !tree.is_leaf(a),
        "two leaves are always well-separated; cannot split a singleton"
    );
    let (l, r) = tree.children(a);
    if tree.node_size(a) + tree.node_size(b) >= PAIR_GRAIN {
        rayon::join(
            || find_pair(tree, policy, prune, visit, l, b),
            || find_pair(tree, policy, prune, visit, r, b),
        );
    } else {
        find_pair(tree, policy, prune, visit, l, b);
        find_pair(tree, policy, prune, visit, r, b);
    }
}

/// Materialize the full WSPD as a vector of node pairs (canonically sorted
/// so the output is deterministic regardless of scheduling).
pub fn wspd_materialize<const D: usize, P>(tree: &KdTree<D>, policy: &P) -> Vec<NodePair>
where
    P: SeparationPolicy<D>,
{
    let _span = parclust_obs::span!("wspd.materialize", points = tree.len());
    let out: Collector<NodePair> = Collector::new();
    wspd_traverse(tree, policy, &|_, _| false, &|a, b| {
        out.push(if a < b { (a, b) } else { (b, a) });
    });
    let mut pairs = out.into_vec();
    pairs.sort_unstable();
    pairs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::GeometricSep;
    use parclust_geom::Point;
    use rand::prelude::*;

    fn random_points<const D: usize>(n: usize, seed: u64) -> Vec<Point<D>> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                let mut c = [0.0; D];
                for x in c.iter_mut() {
                    *x = rng.gen_range(-100.0..100.0);
                }
                Point(c)
            })
            .collect()
    }

    /// Check the WSPD definition (Section 2.3): every unordered pair of
    /// distinct points appears in the interaction product of exactly one
    /// well-separated pair, and each pair satisfies the policy's predicate.
    fn check_exact_cover<const D: usize>(pts: &[Point<D>], pairs: &[NodePair], tree: &KdTree<D>) {
        let n = pts.len();
        let mut count = vec![0u32; n * n];
        for &(a, b) in pairs {
            assert!(
                tree.bbox(a).well_separated(tree.bbox(b), 2.0),
                "pair must be well-separated"
            );
            for &u in tree.node_point_ids(a) {
                for &v in tree.node_point_ids(b) {
                    assert_ne!(u, v, "pair sides must be disjoint");
                    let (x, y) = (u.min(v) as usize, u.max(v) as usize);
                    count[x * n + y] += 1;
                }
            }
        }
        for i in 0..n {
            for j in (i + 1)..n {
                assert_eq!(
                    count[i * n + j],
                    1,
                    "pair ({i},{j}) covered {} times",
                    count[i * n + j]
                );
            }
        }
    }

    #[test]
    fn exact_cover_2d() {
        let pts = random_points::<2>(128, 1);
        let tree = KdTree::build(&pts);
        let pairs = wspd_materialize(&tree, &GeometricSep::PAPER_DEFAULT);
        check_exact_cover(&pts, &pairs, &tree);
    }

    #[test]
    fn exact_cover_3d() {
        let pts = random_points::<3>(96, 2);
        let tree = KdTree::build(&pts);
        let pairs = wspd_materialize(&tree, &GeometricSep::PAPER_DEFAULT);
        check_exact_cover(&pts, &pairs, &tree);
    }

    #[test]
    fn exact_cover_with_duplicates() {
        let mut pts = random_points::<2>(40, 3);
        for i in 0..24 {
            pts.push(pts[i % 8]);
        }
        let tree = KdTree::build(&pts);
        let pairs = wspd_materialize(&tree, &GeometricSep::PAPER_DEFAULT);
        check_exact_cover(&pts, &pairs, &tree);
    }

    #[test]
    fn linear_pair_count() {
        // |WSPD| = O(n) for constant dimension and s (here: loose factor).
        for &n in &[200usize, 400, 800] {
            let pts = random_points::<2>(n, 7);
            let tree = KdTree::build(&pts);
            let pairs = wspd_materialize(&tree, &GeometricSep::PAPER_DEFAULT);
            assert!(
                pairs.len() < 40 * n,
                "n={n}: {} pairs looks superlinear",
                pairs.len()
            );
        }
    }

    #[test]
    fn singleton_and_pair_inputs() {
        let tree = KdTree::build(&[Point([0.0, 0.0])]);
        assert!(wspd_materialize(&tree, &GeometricSep::PAPER_DEFAULT).is_empty());

        let tree = KdTree::build(&[Point([0.0, 0.0]), Point([1.0, 1.0])]);
        let pairs = wspd_materialize(&tree, &GeometricSep::PAPER_DEFAULT);
        assert_eq!(pairs.len(), 1, "two points form exactly one pair");
    }

    #[test]
    fn prune_hook_skips_subtrees() {
        let pts = random_points::<2>(256, 9);
        let tree = KdTree::build(&pts);
        // Pruning everything yields nothing.
        let c = parclust_primitives::collector::Collector::<NodePair>::new();
        wspd_traverse(
            &tree,
            &GeometricSep::PAPER_DEFAULT,
            &|_, _| true,
            &|a, b| c.push((a, b)),
        );
        assert_eq!(c.len(), 0);
        // Pruning nothing yields the full decomposition.
        let full = wspd_materialize(&tree, &GeometricSep::PAPER_DEFAULT);
        let c2 = parclust_primitives::collector::Collector::<NodePair>::new();
        wspd_traverse(
            &tree,
            &GeometricSep::PAPER_DEFAULT,
            &|_, _| false,
            &|a, b| c2.push(if a < b { (a, b) } else { (b, a) }),
        );
        let mut got = c2.into_vec();
        got.sort_unstable();
        assert_eq!(got, full);
    }

    #[test]
    fn higher_separation_gives_more_pairs() {
        let pts = random_points::<2>(512, 11);
        let tree = KdTree::build(&pts);
        let s2 = wspd_materialize(&tree, &GeometricSep { s: 2.0 }).len();
        let s8 = wspd_materialize(&tree, &GeometricSep { s: 8.0 }).len();
        assert!(
            s8 > s2,
            "s=8 must refine the s=2 decomposition ({s8} vs {s2})"
        );
    }
}
