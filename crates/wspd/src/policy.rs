//! Separation policies: what "well-separated" means and how edge weights
//! and weight bounds are computed.
//!
//! The policy abstraction is the key to sharing one GFK/MemoGFK driver
//! between EMST and both HDBSCAN\* variants: all four differ only in
//! (a) the predicate that terminates the WSPD recursion, and (b) the metric
//! assigned to point pairs and its per-node-pair lower/upper bounds.

use parclust_kdtree::{KdTree, NodeId};

/// A notion of well-separation plus the induced pair metric and bounds.
///
/// Point identifiers passed to [`SeparationPolicy::point_weight`] are
/// *permuted positions* in the kd-tree's point order (the contiguous
/// per-node ranges), not original indices.
pub trait SeparationPolicy<const D: usize>: Sync {
    /// Does the policy consider nodes `a` and `b` well-separated?
    fn well_separated(&self, tree: &KdTree<D>, a: NodeId, b: NodeId) -> bool;

    /// A lower bound on `point_weight(u, v)` over all `u ∈ a, v ∈ b`.
    /// Also valid for every descendant pair of `(a, b)`.
    fn lower_bound(&self, tree: &KdTree<D>, a: NodeId, b: NodeId) -> f64;

    /// An upper bound on the *minimum* weight between `a` and `b` (i.e. on
    /// the BCCP value); any valid upper bound over all pairs qualifies.
    fn upper_bound(&self, tree: &KdTree<D>, a: NodeId, b: NodeId) -> f64;

    /// Weight of the concrete point pair at permuted positions `(u, v)`
    /// whose Euclidean distance is `euclid`.
    fn point_weight(&self, u: u32, v: u32, euclid: f64) -> f64;
}

/// Callahan–Kosaraju geometric well-separation with separation constant `s`,
/// Euclidean weights. `s = 2` throughout the paper; approximate OPTICS uses
/// `s = sqrt(8/ρ)`.
#[derive(Debug, Clone, Copy)]
pub struct GeometricSep {
    pub s: f64,
}

impl GeometricSep {
    pub const PAPER_DEFAULT: GeometricSep = GeometricSep { s: 2.0 };

    /// Appendix C: the separation constant required for `ρ`-approximate
    /// OPTICS.
    pub fn for_optics_rho(rho: f64) -> Self {
        GeometricSep {
            s: (8.0 / rho).sqrt(),
        }
    }
}

impl<const D: usize> SeparationPolicy<D> for GeometricSep {
    #[inline]
    fn well_separated(&self, tree: &KdTree<D>, a: NodeId, b: NodeId) -> bool {
        tree.bbox(a).well_separated(tree.bbox(b), self.s)
    }

    #[inline]
    fn lower_bound(&self, tree: &KdTree<D>, a: NodeId, b: NodeId) -> f64 {
        tree.bbox(a).min_dist_sq(tree.bbox(b)).sqrt()
    }

    #[inline]
    fn upper_bound(&self, tree: &KdTree<D>, a: NodeId, b: NodeId) -> f64 {
        tree.bbox(a).max_dist_sq(tree.bbox(b)).sqrt()
    }

    #[inline]
    fn point_weight(&self, _u: u32, _v: u32, euclid: f64) -> f64 {
        euclid
    }
}

/// Which well-separation predicate a [`MutualReachSep`] uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SepMode {
    /// The original geometric definition (s = 2) — the parallelized exact
    /// Gan–Tao baseline of Section 3.2.1.
    Standard,
    /// The paper's new definition (Section 3.2.2): geometrically-separated
    /// OR mutually-unreachable.
    Combined,
}

/// Mutual-reachability metric over a tree annotated with per-point core
/// distances (`cd`, indexed by permuted position) and per-node min/max core
/// distances (`cd_min`/`cd_max`, indexed by [`NodeId`]).
///
/// The policy is a pure function of `(coordinates, cd)` — it does not care
/// *how* the core distances were produced. The dynamic-model merge path
/// (`crates/dyn`) leans on exactly this: core distances a mutation provably
/// cannot change are carried over from the previous version, the rest are
/// recomputed, and the hierarchy built through this policy is bit-identical
/// to a from-scratch run as long as the `cd` values themselves are.
pub struct MutualReachSep<'a> {
    pub cd: &'a [f64],
    pub cd_min: &'a [f64],
    pub cd_max: &'a [f64],
    pub mode: SepMode,
}

impl<'a> MutualReachSep<'a> {
    pub fn new(mode: SepMode, cd: &'a [f64], cd_min: &'a [f64], cd_max: &'a [f64]) -> Self {
        MutualReachSep {
            cd,
            cd_min,
            cd_max,
            mode,
        }
    }
}

impl<'a, const D: usize> SeparationPolicy<D> for MutualReachSep<'a> {
    fn well_separated(&self, tree: &KdTree<D>, a: NodeId, b: NodeId) -> bool {
        let (ba, bb) = (tree.bbox(a), tree.bbox(b));
        match self.mode {
            SepMode::Standard => ba.well_separated(bb, 2.0),
            SepMode::Combined => {
                // Section 3.2.2, using the sphere-based d(A,B) of Table 1.
                let d = ba.sphere_min_dist(bb);
                let max_diam = ba.diameter().max(bb.diameter());
                let geometrically_separated = d >= max_diam;
                if geometrically_separated {
                    return true;
                }
                let (ai, bi) = (a as usize, b as usize);
                // Mutually-unreachable test of §3.2.2.
                d.max(self.cd_min[ai]).max(self.cd_min[bi])
                    >= max_diam.max(self.cd_max[ai]).max(self.cd_max[bi])
            }
        }
    }

    #[inline]
    fn lower_bound(&self, tree: &KdTree<D>, a: NodeId, b: NodeId) -> f64 {
        let d = tree.bbox(a).min_dist_sq(tree.bbox(b)).sqrt();
        d.max(self.cd_min[a as usize]).max(self.cd_min[b as usize])
    }

    #[inline]
    fn upper_bound(&self, tree: &KdTree<D>, a: NodeId, b: NodeId) -> f64 {
        let d = tree.bbox(a).max_dist_sq(tree.bbox(b)).sqrt();
        d.max(self.cd_max[a as usize]).max(self.cd_max[b as usize])
    }

    #[inline]
    fn point_weight(&self, u: u32, v: u32, euclid: f64) -> f64 {
        // Mutual reachability distance d_m(p, q) = max{cd(p), cd(q), d(p, q)}.
        euclid.max(self.cd[u as usize]).max(self.cd[v as usize])
    }
}

/// Compute per-node `(cd_min, cd_max)` annotations from per-position core
/// distances, bottom-up in parallel.
pub fn core_distance_annotations<const D: usize>(
    tree: &KdTree<D>,
    cd_by_pos: &[f64],
) -> (Vec<f64>, Vec<f64>) {
    #[derive(Clone, Copy)]
    struct MinMax(f64, f64);
    impl Default for MinMax {
        fn default() -> Self {
            MinMax(f64::INFINITY, f64::NEG_INFINITY)
        }
    }
    let agg = tree.aggregate_bottom_up(
        &|id, _ids| {
            let mut mm = MinMax::default();
            for pos in tree.node_range(id) {
                let c = cd_by_pos[pos];
                mm.0 = mm.0.min(c);
                mm.1 = mm.1.max(c);
            }
            mm
        },
        &|x: &MinMax, y: &MinMax| MinMax(x.0.min(y.0), x.1.max(y.1)),
    );
    let cd_min = agg.iter().map(|m| m.0).collect();
    let cd_max = agg.iter().map(|m| m.1).collect();
    (cd_min, cd_max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use parclust_geom::Point;

    fn grid_tree() -> KdTree<2> {
        let pts: Vec<Point<2>> = (0..16)
            .map(|i| Point([(i % 4) as f64, (i / 4) as f64]))
            .collect();
        KdTree::build(&pts)
    }

    #[test]
    fn geometric_bounds_sandwich_bccp() {
        let tree = grid_tree();
        let policy = GeometricSep::PAPER_DEFAULT;
        // Check lower <= actual min distance <= upper for sibling subtrees.
        let (a, b) = tree.children(tree.root());
        let lo = SeparationPolicy::<2>::lower_bound(&policy, &tree, a, b);
        let hi = SeparationPolicy::<2>::upper_bound(&policy, &tree, a, b);
        let mut min_d = f64::INFINITY;
        for p in tree.node_range(a) {
            for q in tree.node_range(b) {
                min_d = min_d.min(tree.point(p).dist(&tree.point(q)));
            }
        }
        assert!(lo <= min_d && min_d <= hi, "lo={lo} min={min_d} hi={hi}");
    }

    #[test]
    fn optics_separation_constant() {
        let p = GeometricSep::for_optics_rho(0.125);
        assert!((p.s - 8.0).abs() < 1e-12);
        let p = GeometricSep::for_optics_rho(2.0);
        assert!((p.s - 2.0).abs() < 1e-12);
    }

    #[test]
    fn mutual_reach_point_weight() {
        let tree = grid_tree();
        let n = tree.len();
        let cd: Vec<f64> = (0..n).map(|i| (i % 3) as f64).collect();
        let (cd_min, cd_max) = core_distance_annotations(&tree, &cd);
        let policy = MutualReachSep::new(SepMode::Combined, &cd, &cd_min, &cd_max);
        // d_m = max of euclid and both core distances.
        assert_eq!(SeparationPolicy::<2>::point_weight(&policy, 0, 1, 0.5), 1.0);
        assert_eq!(SeparationPolicy::<2>::point_weight(&policy, 0, 3, 5.0), 5.0);
        assert_eq!(SeparationPolicy::<2>::point_weight(&policy, 2, 5, 0.1), 2.0);
    }

    #[test]
    fn annotations_cover_subtrees() {
        let tree = grid_tree();
        let n = tree.len();
        let cd: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let (cd_min, cd_max) = core_distance_annotations(&tree, &cd);
        let root = tree.root() as usize;
        assert_eq!(cd_min[root], 0.0);
        assert_eq!(cd_max[root], (n - 1) as f64);
        // Each node's annotation is the min/max over its position range.
        let mut stack = vec![tree.root()];
        while let Some(id) = stack.pop() {
            let want_min = tree
                .node_range(id)
                .map(|p| p as f64)
                .fold(f64::INFINITY, f64::min);
            let want_max = tree
                .node_range(id)
                .map(|p| p as f64)
                .fold(f64::NEG_INFINITY, f64::max);
            assert_eq!(cd_min[id as usize], want_min);
            assert_eq!(cd_max[id as usize], want_max);
            if !tree.is_leaf(id) {
                let (l, r) = tree.children(id);
                stack.push(l);
                stack.push(r);
            }
        }
    }

    #[test]
    fn combined_mode_separates_no_later_than_standard() {
        // With all core distances large and equal, mutual-unreachability
        // makes everything well-separated immediately.
        let tree = grid_tree();
        let n = tree.len();
        let cd = vec![100.0; n];
        let (cd_min, cd_max) = core_distance_annotations(&tree, &cd);
        let combined = MutualReachSep::new(SepMode::Combined, &cd, &cd_min, &cd_max);
        let (rl, rr) = tree.children(tree.root());
        assert!(SeparationPolicy::<2>::well_separated(
            &combined, &tree, rl, rr
        ));
        let standard = MutualReachSep::new(SepMode::Standard, &cd, &cd_min, &cd_max);
        assert!(!SeparationPolicy::<2>::well_separated(
            &standard, &tree, rl, rr
        ));
    }
}
