//! Bichromatic closest pair (BCCP and BCCP\*).
//!
//! Given two kd-tree nodes, find the point pair minimizing the policy
//! metric: Euclidean distance for EMST (BCCP) or mutual reachability
//! distance for HDBSCAN\* (BCCP\*, Section 2.3). Branch-and-bound over the
//! tree structure: descend the larger node first, prune with the policy's
//! node-pair lower bound, and brute-force small leaf blocks — the inner
//! scan runs lane-wise over the SoA point storage so it auto-vectorizes.

use parclust_kdtree::{KdTree, NodeId};

use crate::policy::SeparationPolicy;

/// Result of a BCCP query: permuted point positions `u ∈ A`, `v ∈ B` and
/// the minimized policy weight.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Bccp {
    pub u: u32,
    pub v: u32,
    pub w: f64,
}

/// Pairs with `|A| * |B|` at or below this are brute-forced.
const BRUTE_FORCE_PRODUCT: usize = 64;

/// Exact BCCP between nodes `a` and `b` under `policy`.
///
/// Deterministic: among ties the pair with the lexicographically smallest
/// `(u, v)` position is returned.
pub fn bccp<const D: usize, P: SeparationPolicy<D>>(
    tree: &KdTree<D>,
    policy: &P,
    a: NodeId,
    b: NodeId,
) -> Bccp {
    // Seed with the first-point pair so pruning has a finite bound from the
    // start.
    let (pa, pb) = (tree.node_start(a), tree.node_start(b));
    let seed_d = tree.dist_between(pa, pb);
    let mut best = Bccp {
        u: pa,
        v: pb,
        w: policy.point_weight(pa, pb, seed_d),
    };
    bccp_recurse(tree, policy, a, b, &mut best);
    best
}

fn bccp_recurse<const D: usize, P: SeparationPolicy<D>>(
    tree: &KdTree<D>,
    policy: &P,
    a: NodeId,
    b: NodeId,
    best: &mut Bccp,
) {
    let (sa, sb) = (tree.node_size(a), tree.node_size(b));
    if sa * sb <= BRUTE_FORCE_PRODUCT {
        // Lane-kernel brute force: for each u ∈ A, one vectorized pass over
        // B's contiguous permuted range. `sb <= 64` because `sa >= 1`.
        let b_start = tree.node_start(b) as usize;
        let mut buf = [0.0f64; BRUTE_FORCE_PRODUCT];
        for u in tree.node_start(a)..tree.node_end(a) {
            let pu = tree.point(u as usize);
            tree.coords().dist_sq_into(&pu, b_start, sb, &mut buf);
            for (j, &d_sq) in buf[..sb].iter().enumerate() {
                let v = (b_start + j) as u32;
                let w = policy.point_weight(u, v, d_sq.sqrt());
                if w < best.w || (w == best.w && (u, v) < (best.u, best.v)) {
                    *best = Bccp { u, v, w };
                }
            }
        }
        return;
    }
    // Split the node with the larger diameter (fall back to the larger
    // cardinality for ties) and visit the child pair with the smaller lower
    // bound first — the classic dual-tree descent order.
    let (da, db) = (tree.bbox(a).diag_sq(), tree.bbox(b).diag_sq());
    let split_a = if tree.is_leaf(a) {
        false
    } else if tree.is_leaf(b) {
        true
    } else {
        da > db || (da == db && sa >= sb)
    };
    let candidates = if split_a {
        let (l, r) = tree.children(a);
        [(l, b), (r, b)]
    } else {
        let (l, r) = tree.children(b);
        [(a, l), (a, r)]
    };
    let bounds = candidates.map(|(x, y)| policy.lower_bound(tree, x, y));
    let order = if bounds[0] <= bounds[1] {
        [0, 1]
    } else {
        [1, 0]
    };
    for i in order {
        // The traversal itself is sequential with a fixed descent order, so
        // the result is deterministic; strict pruning is therefore safe.
        if bounds[i] < best.w {
            let (x, y) = candidates[i];
            bccp_recurse(tree, policy, x, y, best);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{core_distance_annotations, GeometricSep, MutualReachSep, SepMode};
    use parclust_geom::Point;
    use rand::prelude::*;

    fn random_points(n: usize, seed: u64) -> Vec<Point<3>> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                Point([
                    rng.gen_range(-50.0..50.0),
                    rng.gen_range(-50.0..50.0),
                    rng.gen_range(-50.0..50.0),
                ])
            })
            .collect()
    }

    #[test]
    fn euclidean_bccp_matches_brute_force() {
        let pts = random_points(400, 21);
        let tree = KdTree::build(&pts);
        let policy = GeometricSep::PAPER_DEFAULT;
        let (rl, rr) = tree.children(tree.root());
        // Test on several internal node pairs.
        let mut pairs = vec![(rl, rr)];
        if !tree.is_leaf(rl) && !tree.is_leaf(rr) {
            let (ll, lr) = tree.children(rl);
            let (rl2, rr2) = tree.children(rr);
            pairs.push((ll, rr2));
            pairs.push((lr, rl2));
        }
        for (a, b) in pairs {
            let got = bccp(&tree, &policy, a, b);
            // Brute force oracle over permuted positions.
            let mut want = f64::INFINITY;
            for u in tree.node_start(a)..tree.node_end(a) {
                for v in tree.node_start(b)..tree.node_end(b) {
                    want = want.min(tree.dist_between(u, v));
                }
            }
            assert_eq!(got.w, want);
            // The returned endpoints realize the weight.
            let realized = tree.dist_between(got.u, got.v);
            assert_eq!(realized, got.w);
            assert!(got.u >= tree.node_start(a) && got.u < tree.node_end(a));
            assert!(got.v >= tree.node_start(b) && got.v < tree.node_end(b));
        }
    }

    #[test]
    fn mutual_reach_bccp_matches_brute_force() {
        let pts = random_points(300, 22);
        let tree = KdTree::build(&pts);
        let n = tree.len();
        let mut rng = StdRng::seed_from_u64(5);
        let cd: Vec<f64> = (0..n).map(|_| rng.gen_range(0.0..40.0)).collect();
        let (cd_min, cd_max) = core_distance_annotations(&tree, &cd);
        let policy = MutualReachSep::new(SepMode::Combined, &cd, &cd_min, &cd_max);
        let (a, b) = tree.children(tree.root());
        let got = bccp(&tree, &policy, a, b);
        let mut want = f64::INFINITY;
        for u in tree.node_start(a)..tree.node_end(a) {
            for v in tree.node_start(b)..tree.node_end(b) {
                let d = tree.dist_between(u, v);
                want = want.min(d.max(cd[u as usize]).max(cd[v as usize]));
            }
        }
        assert_eq!(got.w, want);
    }

    #[test]
    fn bccp_of_singletons() {
        let pts = vec![Point([0.0, 0.0, 0.0]), Point([3.0, 4.0, 0.0])];
        let tree = KdTree::build(&pts);
        let (l, r) = tree.children(tree.root());
        let got = bccp(&tree, &GeometricSep::PAPER_DEFAULT, l, r);
        assert_eq!(got.w, 5.0);
    }

    #[test]
    fn bccp_duplicate_points_zero_weight() {
        let pts = vec![
            Point([1.0, 1.0, 1.0]),
            Point([1.0, 1.0, 1.0]),
            Point([9.0, 9.0, 9.0]),
        ];
        let tree = KdTree::build(&pts);
        // Find the node pair that covers the duplicate pair.
        let (l, r) = tree.children(tree.root());
        let got = bccp(&tree, &GeometricSep::PAPER_DEFAULT, l, r);
        // Whichever split happened, the closest cross pair is >= 0; with the
        // duplicates split apart it is exactly 0.
        let mut best = f64::INFINITY;
        for u in tree.node_range(l) {
            for v in tree.node_range(r) {
                best = best.min(tree.point(u).dist(&tree.point(v)));
            }
        }
        assert_eq!(got.w, best);
    }
}
