//! Bichromatic closest pair (BCCP and BCCP\*).
//!
//! Given two kd-tree nodes, find the point pair minimizing the policy
//! metric: Euclidean distance for EMST (BCCP) or mutual reachability
//! distance for HDBSCAN\* (BCCP\*, Section 2.3). Branch-and-bound over the
//! tree structure: descend the larger node first, prune with the policy's
//! node-pair lower bound, and brute-force small leaf blocks.

use parclust_geom::dist;
use parclust_kdtree::{KdTree, NodeId};

use crate::policy::SeparationPolicy;

/// Result of a BCCP query: permuted point positions `u ∈ A`, `v ∈ B` and
/// the minimized policy weight.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Bccp {
    pub u: u32,
    pub v: u32,
    pub w: f64,
}

/// Pairs with `|A| * |B|` at or below this are brute-forced.
const BRUTE_FORCE_PRODUCT: usize = 64;

/// Exact BCCP between nodes `a` and `b` under `policy`.
///
/// Deterministic: among ties the pair with the lexicographically smallest
/// `(u, v)` position is returned.
pub fn bccp<const D: usize, P: SeparationPolicy<D>>(
    tree: &KdTree<D>,
    policy: &P,
    a: NodeId,
    b: NodeId,
) -> Bccp {
    // Seed with the first-point pair so pruning has a finite bound from the
    // start.
    let (pa, pb) = (tree.node(a).start, tree.node(b).start);
    let seed_d = dist(&tree.points[pa as usize], &tree.points[pb as usize]);
    let mut best = Bccp {
        u: pa,
        v: pb,
        w: policy.point_weight(pa, pb, seed_d),
    };
    bccp_recurse(tree, policy, a, b, &mut best);
    best
}

fn bccp_recurse<const D: usize, P: SeparationPolicy<D>>(
    tree: &KdTree<D>,
    policy: &P,
    a: NodeId,
    b: NodeId,
    best: &mut Bccp,
) {
    let (na, nb) = (tree.node(a), tree.node(b));
    if na.size() * nb.size() <= BRUTE_FORCE_PRODUCT {
        for u in na.start..na.end {
            let pu = &tree.points[u as usize];
            for v in nb.start..nb.end {
                let d = dist(pu, &tree.points[v as usize]);
                let w = policy.point_weight(u, v, d);
                if w < best.w || (w == best.w && (u, v) < (best.u, best.v)) {
                    *best = Bccp { u, v, w };
                }
            }
        }
        return;
    }
    // Split the node with the larger diameter (fall back to the larger
    // cardinality for ties) and visit the child pair with the smaller lower
    // bound first — the classic dual-tree descent order.
    let (da, db) = (na.bbox.diag_sq(), nb.bbox.diag_sq());
    let split_a = if na.is_leaf() {
        false
    } else if nb.is_leaf() {
        true
    } else {
        da > db || (da == db && na.size() >= nb.size())
    };
    let candidates = if split_a {
        [(na.left, b), (na.right, b)]
    } else {
        [(a, nb.left), (a, nb.right)]
    };
    let bounds = candidates.map(|(x, y)| policy.lower_bound(tree, x, y));
    let order = if bounds[0] <= bounds[1] {
        [0, 1]
    } else {
        [1, 0]
    };
    for i in order {
        // The traversal itself is sequential with a fixed descent order, so
        // the result is deterministic; strict pruning is therefore safe.
        if bounds[i] < best.w {
            let (x, y) = candidates[i];
            bccp_recurse(tree, policy, x, y, best);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{core_distance_annotations, GeometricSep, MutualReachSep, SepMode};
    use parclust_geom::Point;
    use rand::prelude::*;

    fn random_points(n: usize, seed: u64) -> Vec<Point<3>> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                Point([
                    rng.gen_range(-50.0..50.0),
                    rng.gen_range(-50.0..50.0),
                    rng.gen_range(-50.0..50.0),
                ])
            })
            .collect()
    }

    #[test]
    fn euclidean_bccp_matches_brute_force() {
        let pts = random_points(400, 21);
        let tree = KdTree::build(&pts);
        let policy = GeometricSep::PAPER_DEFAULT;
        let root = tree.node(tree.root());
        // Test on several internal node pairs.
        let mut pairs = vec![(root.left, root.right)];
        let l = tree.node(root.left);
        let r = tree.node(root.right);
        if !l.is_leaf() && !r.is_leaf() {
            pairs.push((l.left, r.right));
            pairs.push((l.right, r.left));
        }
        for (a, b) in pairs {
            let got = bccp(&tree, &policy, a, b);
            // Brute force oracle over permuted positions.
            let (na, nb) = (tree.node(a), tree.node(b));
            let mut want = f64::INFINITY;
            for u in na.start..na.end {
                for v in nb.start..nb.end {
                    want = want.min(dist(&tree.points[u as usize], &tree.points[v as usize]));
                }
            }
            assert_eq!(got.w, want);
            // The returned endpoints realize the weight.
            let realized = dist(&tree.points[got.u as usize], &tree.points[got.v as usize]);
            assert_eq!(realized, got.w);
            assert!(got.u >= na.start && got.u < na.end);
            assert!(got.v >= nb.start && got.v < nb.end);
        }
    }

    #[test]
    fn mutual_reach_bccp_matches_brute_force() {
        let pts = random_points(300, 22);
        let tree = KdTree::build(&pts);
        let n = tree.len();
        let mut rng = StdRng::seed_from_u64(5);
        let cd: Vec<f64> = (0..n).map(|_| rng.gen_range(0.0..40.0)).collect();
        let (cd_min, cd_max) = core_distance_annotations(&tree, &cd);
        let policy = MutualReachSep::new(SepMode::Combined, &cd, &cd_min, &cd_max);
        let root = tree.node(tree.root());
        let (a, b) = (root.left, root.right);
        let got = bccp(&tree, &policy, a, b);
        let (na, nb) = (tree.node(a), tree.node(b));
        let mut want = f64::INFINITY;
        for u in na.start..na.end {
            for v in nb.start..nb.end {
                let d = dist(&tree.points[u as usize], &tree.points[v as usize]);
                want = want.min(d.max(cd[u as usize]).max(cd[v as usize]));
            }
        }
        assert_eq!(got.w, want);
    }

    #[test]
    fn bccp_of_singletons() {
        let pts = vec![Point([0.0, 0.0, 0.0]), Point([3.0, 4.0, 0.0])];
        let tree = KdTree::build(&pts);
        let root = tree.node(tree.root());
        let got = bccp(&tree, &GeometricSep::PAPER_DEFAULT, root.left, root.right);
        assert_eq!(got.w, 5.0);
    }

    #[test]
    fn bccp_duplicate_points_zero_weight() {
        let pts = vec![
            Point([1.0, 1.0, 1.0]),
            Point([1.0, 1.0, 1.0]),
            Point([9.0, 9.0, 9.0]),
        ];
        let tree = KdTree::build(&pts);
        // Find the node pair that covers the duplicate pair.
        let root = tree.node(tree.root());
        let got = bccp(&tree, &GeometricSep::PAPER_DEFAULT, root.left, root.right);
        // Whichever split happened, the closest cross pair is >= 0; with the
        // duplicates split apart it is exactly 0.
        let mut best = f64::INFINITY;
        for u in tree.node_points(root.left) {
            for v in tree.node_points(root.right) {
                best = best.min(u.dist(v));
            }
        }
        assert_eq!(got.w, best);
    }
}
