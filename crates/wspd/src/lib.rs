//! Well-separated pair decomposition (WSPD) and bichromatic closest pairs.
//!
//! This crate implements Algorithm 1 of the paper — the parallel WSPD over a
//! spatial-median kd-tree — generalized over a [`SeparationPolicy`] so that
//! one traversal serves:
//!
//! * **EMST** — Callahan–Kosaraju geometric well-separation with `s = 2`
//!   ([`policy::GeometricSep`]), Euclidean edge weights;
//! * **HDBSCAN\* (Gan–Tao baseline)** — the same geometric separation but
//!   mutual-reachability weights and bounds
//!   ([`policy::MutualReachSep`] in [`policy::SepMode::Standard`] mode);
//! * **HDBSCAN\* (improved)** — the paper's new notion of well-separation
//!   (Section 3.2.2): *geometrically-separated* OR *mutually-unreachable*
//!   ([`policy::SepMode::Combined`]), which terminates the recursion
//!   earlier and yields asymptotically fewer pairs;
//! * **approximate OPTICS** — geometric separation with
//!   `s = sqrt(8/ρ)` (Appendix C).
//!
//! [`traverse::wspd_traverse`] additionally exposes the pruning hook that
//! MemoGFK's `GetRho`/`GetPairs` passes (Algorithm 3) are built on,
//! [`stream::wspd_stream_batches`] produces the same decomposition in
//! bounded batches for the out-of-core pipeline, and [`bccp`] provides the
//! exact BCCP/BCCP\* branch-and-bound used to turn well-separated pairs
//! into candidate MST edges.

pub mod ann;
pub mod bccp;
pub mod policy;
pub mod stream;
pub mod traverse;

pub use ann::{all_nearest_neighbors, all_nearest_neighbors_by_original};
pub use bccp::{bccp, Bccp};
pub use policy::{GeometricSep, MutualReachSep, SepMode, SeparationPolicy};
pub use stream::wspd_stream_batches;
pub use traverse::{wspd_materialize, wspd_traverse, NodePair};
