//! All-nearest-neighbors from the WSPD.
//!
//! Callahan and Kosaraju's original application of the decomposition
//! [13, 15], and the mechanism behind the candidate-listing step of the
//! paper's Appendix B EMST: if `q` is `p`'s nearest neighbor, the WSPD
//! pair covering `{p, q}` must have `p`'s side a singleton (otherwise a
//! point on `p`'s side would be closer to `p` than anything across the
//! pair). So scanning only the pairs with a singleton side and relaxing
//! the opposite side through a `WRITE_MIN` per point yields all nearest
//! neighbors. The relaxation scan runs block-at-a-time through the SoA
//! lane kernel.
//!
//! This is both a useful public API and an independent cross-check of the
//! WSPD (tests compare against kd-tree kNN with k = 2).

use parclust_data::BLOCK_LEN;
use parclust_kdtree::KdTree;
use parclust_primitives::atomic::AtomicMinPair;

use crate::policy::GeometricSep;
use crate::traverse::wspd_traverse;

/// Nearest neighbor of every point: `(neighbor original id, distance)`.
/// Requires at least two points.
pub fn all_nearest_neighbors<const D: usize>(tree: &KdTree<D>) -> Vec<(u32, f64)> {
    let n = tree.len();
    assert!(n >= 2, "nearest neighbors need at least two points");
    let best: Vec<AtomicMinPair<u32>> = (0..n).map(|_| AtomicMinPair::default()).collect();

    // s = 2 guarantees the singleton-side property: within a
    // well-separated pair, cross distances exceed within-side distances.
    let policy = GeometricSep::PAPER_DEFAULT;
    wspd_traverse(tree, &policy, &|_, _| false, &|a, b| {
        for (single, other) in [(a, b), (b, a)] {
            if tree.node_size(single) != 1 {
                continue;
            }
            let p = tree.node_start(single);
            let pp = tree.point(p as usize);
            // Relax the opposite side one lane-kernel chunk at a time; the
            // write_min calls happen in ascending permuted order, exactly as
            // the old per-point loop did.
            let (start, end) = (
                tree.node_start(other) as usize,
                tree.node_end(other) as usize,
            );
            let mut buf = [0.0f64; BLOCK_LEN];
            let mut q = start;
            while q < end {
                let len = (end - q).min(BLOCK_LEN);
                tree.coords().dist_sq_into(&pp, q, len, &mut buf);
                for (j, &d_sq) in buf[..len].iter().enumerate() {
                    best[p as usize].write_min(d_sq, (q + j) as u32);
                }
                q += len;
            }
        }
    });

    (0..n)
        .map(|p| {
            let (d_sq, q_pos) = best[p]
                .get()
                // analyze:allow(hotpath-unwrap) — WSPD covers all pairs, so every singleton side is hit
                .expect("every point appears as a singleton side in some pair");
            (tree.idx[q_pos as usize], d_sq.sqrt())
        })
        .collect()
}

/// Nearest neighbors indexed by *original* point order.
pub fn all_nearest_neighbors_by_original<const D: usize>(tree: &KdTree<D>) -> Vec<(u32, f64)> {
    let by_pos = all_nearest_neighbors(tree);
    let mut out = vec![(0u32, 0f64); by_pos.len()];
    for (pos, &entry) in by_pos.iter().enumerate() {
        out[tree.idx[pos] as usize] = entry;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use parclust_geom::Point;
    use rand::prelude::*;

    fn random_points<const D: usize>(n: usize, seed: u64) -> Vec<Point<D>> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                let mut c = [0.0; D];
                for x in c.iter_mut() {
                    *x = rng.gen_range(-50.0..50.0);
                }
                Point(c)
            })
            .collect()
    }

    #[test]
    fn matches_knn_2d() {
        let pts = random_points::<2>(700, 1);
        let tree = KdTree::build(&pts);
        let ann = all_nearest_neighbors_by_original(&tree);
        let knn = tree.knn_all(2);
        for i in 0..pts.len() {
            let (ids, ds) = knn.neighbors(i);
            // knn includes self first; the true neighbor is second.
            assert_eq!(ids[0], i as u32);
            assert!(
                (ann[i].1 - ds[1].sqrt()).abs() < 1e-12,
                "point {i}: {} vs {}",
                ann[i].1,
                ds[1].sqrt()
            );
        }
    }

    #[test]
    fn matches_knn_5d() {
        let pts = random_points::<5>(400, 2);
        let tree = KdTree::build(&pts);
        let ann = all_nearest_neighbors_by_original(&tree);
        let knn = tree.knn_all(2);
        for i in 0..pts.len() {
            let (_, ds) = knn.neighbors(i);
            assert!((ann[i].1 - ds[1].sqrt()).abs() < 1e-12, "point {i}");
        }
    }

    #[test]
    fn duplicates_have_zero_neighbors() {
        let mut pts = random_points::<2>(30, 3);
        pts.push(pts[0]);
        let tree = KdTree::build(&pts);
        let ann = all_nearest_neighbors_by_original(&tree);
        assert_eq!(ann[0].1, 0.0);
        assert_eq!(ann[30].1, 0.0);
    }

    #[test]
    fn two_points() {
        let pts = vec![Point([0.0, 0.0]), Point([3.0, 4.0])];
        let tree = KdTree::build(&pts);
        let ann = all_nearest_neighbors_by_original(&tree);
        assert_eq!(ann[0], (1, 5.0));
        assert_eq!(ann[1], (0, 5.0));
    }
}
