//! Streaming (bounded-batch) well-separated pair production.
//!
//! [`wspd_stream_batches`] enumerates exactly the pair set of
//! [`crate::wspd_materialize`] — the same recursion, the same split rule —
//! but never holds more than `cap` pairs at once: whenever the buffer
//! fills, it is handed to the caller's batch callback and cleared. This is
//! the ingestion side of the bounded-memory pipeline: batches flow straight
//! into BCCP computation and streaming Kruskal merges instead of a
//! materialized `Vec` of the whole decomposition.
//!
//! Enumeration is sequential depth-first (deterministic batch boundaries;
//! the expensive per-pair work — BCCP — parallelizes *within* each batch
//! downstream), and each batch arrives canonically ordered the way the
//! traversal discovers pairs. Consumers that need scheduling-independent
//! output re-sort, exactly as they do for the materialized path.

use parclust_kdtree::{KdTree, NodeId};

use crate::policy::SeparationPolicy;
use crate::traverse::NodePair;

/// Enumerate the WSPD of `tree` under `policy`, delivering pairs in batches
/// of at most `cap`. `on_batch` receives a buffer of canonically-ordered
/// (`a < b`) pairs; the buffer is cleared after each call, so callers must
/// consume it before returning.
pub fn wspd_stream_batches<const D: usize, P, F>(
    tree: &KdTree<D>,
    policy: &P,
    cap: usize,
    on_batch: &mut F,
) where
    P: SeparationPolicy<D>,
    F: FnMut(&mut Vec<NodePair>),
{
    assert!(cap >= 1, "batch capacity must be positive");
    let mut buf: Vec<NodePair> = Vec::with_capacity(cap.min(1 << 20));
    if tree.len() > 1 {
        stream_node(tree, policy, cap, &mut buf, on_batch, tree.root());
    }
    if !buf.is_empty() {
        on_batch(&mut buf);
        buf.clear();
    }
}

fn stream_node<const D: usize, P, F>(
    tree: &KdTree<D>,
    policy: &P,
    cap: usize,
    buf: &mut Vec<NodePair>,
    on_batch: &mut F,
    a: NodeId,
) where
    P: SeparationPolicy<D>,
    F: FnMut(&mut Vec<NodePair>),
{
    let node = tree.node(a);
    if node.is_leaf() {
        return;
    }
    let (l, r) = (node.left, node.right);
    stream_node(tree, policy, cap, buf, on_batch, l);
    stream_node(tree, policy, cap, buf, on_batch, r);
    stream_pair(tree, policy, cap, buf, on_batch, l, r);
}

fn stream_pair<const D: usize, P, F>(
    tree: &KdTree<D>,
    policy: &P,
    cap: usize,
    buf: &mut Vec<NodePair>,
    on_batch: &mut F,
    a: NodeId,
    b: NodeId,
) where
    P: SeparationPolicy<D>,
    F: FnMut(&mut Vec<NodePair>),
{
    if policy.well_separated(tree, a, b) {
        buf.push(if a < b { (a, b) } else { (b, a) });
        if buf.len() >= cap {
            on_batch(buf);
            buf.clear();
        }
        return;
    }
    // Same split rule as `traverse::find_pair` (shared helper) so the
    // streamed pair set matches the materialized one exactly.
    let (a, b) = crate::traverse::split_order(tree, a, b);
    let node_a = tree.node(a);
    debug_assert!(
        !node_a.is_leaf(),
        "two leaves are always well-separated; cannot split a singleton"
    );
    let (l, r) = (node_a.left, node_a.right);
    stream_pair(tree, policy, cap, buf, on_batch, l, b);
    stream_pair(tree, policy, cap, buf, on_batch, r, b);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::GeometricSep;
    use crate::traverse::wspd_materialize;
    use parclust_geom::Point;
    use rand::prelude::*;

    fn random_points<const D: usize>(n: usize, seed: u64) -> Vec<Point<D>> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                let mut c = [0.0; D];
                for x in c.iter_mut() {
                    *x = rng.gen_range(-100.0..100.0);
                }
                Point(c)
            })
            .collect()
    }

    fn streamed_union<const D: usize>(tree: &KdTree<D>, cap: usize) -> Vec<NodePair> {
        let mut all = Vec::new();
        let mut batches = 0usize;
        wspd_stream_batches(
            tree,
            &GeometricSep::PAPER_DEFAULT,
            cap,
            &mut |batch: &mut Vec<NodePair>| {
                assert!(!batch.is_empty(), "empty batches are never delivered");
                assert!(
                    batch.len() <= cap,
                    "batch of {} exceeds cap {cap}",
                    batch.len()
                );
                all.extend_from_slice(batch);
                batches += 1;
            },
        );
        // Every batch except possibly the last is exactly full.
        if batches > 1 {
            assert!(all.len() > (batches - 1) * cap - cap, "uneven batching");
        }
        all
    }

    #[test]
    fn batched_union_equals_materialized() {
        let pts = random_points::<2>(400, 1);
        let tree = KdTree::build(&pts);
        let want = wspd_materialize(&tree, &GeometricSep::PAPER_DEFAULT);
        for cap in [1usize, 7, 64, 1000, usize::MAX / 2] {
            let mut got = streamed_union(&tree, cap);
            got.sort_unstable();
            assert_eq!(got, want, "cap={cap}");
        }
    }

    #[test]
    fn batched_union_equals_materialized_3d() {
        let pts = random_points::<3>(256, 2);
        let tree = KdTree::build(&pts);
        let want = wspd_materialize(&tree, &GeometricSep::PAPER_DEFAULT);
        let mut got = streamed_union(&tree, 33);
        got.sort_unstable();
        assert_eq!(got, want);
    }

    #[test]
    fn deterministic_batch_boundaries() {
        let pts = random_points::<2>(300, 3);
        let tree = KdTree::build(&pts);
        let runs: Vec<Vec<Vec<NodePair>>> = (0..2)
            .map(|_| {
                let mut batches = Vec::new();
                wspd_stream_batches(
                    &tree,
                    &GeometricSep::PAPER_DEFAULT,
                    50,
                    &mut |b: &mut Vec<NodePair>| batches.push(b.clone()),
                );
                batches
            })
            .collect();
        assert_eq!(runs[0], runs[1], "batch boundaries must be reproducible");
    }

    #[test]
    fn tiny_inputs_stream_cleanly() {
        let tree = KdTree::build(&[Point([0.0, 0.0])]);
        let mut calls = 0;
        wspd_stream_batches(
            &tree,
            &GeometricSep::PAPER_DEFAULT,
            4,
            &mut |_: &mut Vec<NodePair>| calls += 1,
        );
        assert_eq!(calls, 0, "singleton has no pairs");

        let tree = KdTree::build(&[Point([0.0, 0.0]), Point([1.0, 1.0])]);
        let mut pairs = Vec::new();
        wspd_stream_batches(
            &tree,
            &GeometricSep::PAPER_DEFAULT,
            4,
            &mut |b: &mut Vec<NodePair>| pairs.extend_from_slice(b),
        );
        assert_eq!(pairs.len(), 1);
    }

    #[test]
    fn duplicates_stream_to_full_cover() {
        let mut pts = random_points::<2>(60, 4);
        for i in 0..20 {
            pts.push(pts[i % 6]);
        }
        let tree = KdTree::build(&pts);
        let want = wspd_materialize(&tree, &GeometricSep::PAPER_DEFAULT);
        let mut got = streamed_union(&tree, 13);
        got.sort_unstable();
        assert_eq!(got, want);
    }
}
