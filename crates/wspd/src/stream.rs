//! Streaming (bounded-batch) well-separated pair production.
//!
//! [`wspd_stream_batches`] enumerates exactly the pair set of
//! [`crate::wspd_materialize`] — the same recursion, the same split rule —
//! but never *delivers* more than `cap` pairs at once: batches are handed
//! to the caller's callback and cleared. This is the ingestion side of the
//! bounded-memory pipeline: batches flow straight into BCCP computation and
//! streaming Kruskal merges instead of a materialized `Vec` of the whole
//! decomposition.
//!
//! Production is **parallel but order-deterministic**. The sequential
//! depth-first enumeration defines a canonical pair sequence; the parallel
//! producer splits that recursion into a DFS-ordered list of independent
//! tasks (each task owning one contiguous run of the sequence), enumerates
//! tasks concurrently in waves, and re-concatenates their outputs in task
//! order. Batch boundaries are then fixed `cap`-sized windows of the
//! canonical sequence — *identical* to the sequential batcher's, at every
//! pool width, which is the contract `tests/streaming_semantics.rs` pins.
//! Production of wave `k+1` overlaps with consumption of wave `k` (one
//! `rayon::join`), so the downstream `StreamingForest` merge no longer
//! serializes behind a fully sequential DFS front-end.
//!
//! Each batch arrives canonically ordered the way the traversal discovers
//! pairs. Consumers that need scheduling-independent output re-sort,
//! exactly as they do for the materialized path.

use std::collections::VecDeque;

use parclust_kdtree::{KdTree, NodeId};
use rayon::prelude::*;

use crate::policy::SeparationPolicy;
use crate::traverse::NodePair;

/// Inputs below this size take the sequential path outright; task
/// expansion overhead would dominate.
const PAR_STREAM_CUTOFF: usize = 2048;

/// Producer tasks stop splitting below this combined node size (same scale
/// as the traversal's `PAIR_GRAIN`).
const TASK_GRAIN: usize = 2048;

/// Task-list expansion stops once this many tasks exist; plenty of slack
/// for stealing without flooding tiny tasks. Width-independent on purpose —
/// the task list (hence the canonical sequence) never depends on the pool.
const TASK_TARGET: usize = 256;

/// One contiguous run of the canonical DFS pair sequence.
///
/// Expansion rules (each preserves the task's output, in order):
/// * `Node(a)`, `a` internal → `[Node(l), Node(r), Pair(l, r)]`
///   (mirrors `stream_node`: left subtree, right subtree, cross pairs);
/// * `Node(a)`, `a` leaf → `[]` (a leaf emits nothing);
/// * `Pair(a, b)` not well-separated, `(s, o) = split_order(a, b)` →
///   `[Pair(s.left, o), Pair(s.right, o)]` (mirrors `stream_pair`);
/// * `Pair(a, b)` well-separated → terminal, emits exactly that pair.
#[derive(Clone, Copy)]
enum Task {
    Node(NodeId),
    Pair(NodeId, NodeId),
}

/// Enumerate the WSPD of `tree` under `policy`, delivering pairs in batches
/// of at most `cap`. `on_batch` receives a buffer of canonically-ordered
/// (`a < b`) pairs; the buffer is cleared after each call, so callers must
/// consume it before returning. Batch boundaries depend only on the tree,
/// the policy, and `cap` — never on the worker count.
pub fn wspd_stream_batches<const D: usize, P, F>(
    tree: &KdTree<D>,
    policy: &P,
    cap: usize,
    on_batch: &mut F,
) where
    P: SeparationPolicy<D>,
    F: FnMut(&mut Vec<NodePair>) + Send,
{
    assert!(cap >= 1, "batch capacity must be positive");
    if tree.len() <= 1 {
        return;
    }
    let _span = parclust_obs::span!("wspd.stream", points = tree.len());
    if rayon::current_num_threads() <= 1 || tree.len() < PAR_STREAM_CUTOFF {
        let mut buf: Vec<NodePair> = Vec::with_capacity(cap.min(1 << 20));
        stream_node(tree, policy, cap, &mut buf, on_batch, tree.root());
        if !buf.is_empty() {
            on_batch(&mut buf);
            buf.clear();
        }
        return;
    }
    stream_parallel(tree, policy, cap, on_batch);
}

// ---------------------------------------------------------------------------
// Sequential reference path (defines the canonical sequence).

fn stream_node<const D: usize, P, F>(
    tree: &KdTree<D>,
    policy: &P,
    cap: usize,
    buf: &mut Vec<NodePair>,
    on_batch: &mut F,
    a: NodeId,
) where
    P: SeparationPolicy<D>,
    F: FnMut(&mut Vec<NodePair>),
{
    if tree.is_leaf(a) {
        return;
    }
    let (l, r) = tree.children(a);
    stream_node(tree, policy, cap, buf, on_batch, l);
    stream_node(tree, policy, cap, buf, on_batch, r);
    stream_pair(tree, policy, cap, buf, on_batch, l, r);
}

fn stream_pair<const D: usize, P, F>(
    tree: &KdTree<D>,
    policy: &P,
    cap: usize,
    buf: &mut Vec<NodePair>,
    on_batch: &mut F,
    a: NodeId,
    b: NodeId,
) where
    P: SeparationPolicy<D>,
    F: FnMut(&mut Vec<NodePair>),
{
    if policy.well_separated(tree, a, b) {
        buf.push(if a < b { (a, b) } else { (b, a) });
        if buf.len() >= cap {
            on_batch(buf);
            buf.clear();
        }
        return;
    }
    // Same split rule as `traverse::find_pair` (shared helper) so the
    // streamed pair set matches the materialized one exactly.
    let (a, b) = crate::traverse::split_order(tree, a, b);
    debug_assert!(
        !tree.is_leaf(a),
        "two leaves are always well-separated; cannot split a singleton"
    );
    let (l, r) = tree.children(a);
    stream_pair(tree, policy, cap, buf, on_batch, l, b);
    stream_pair(tree, policy, cap, buf, on_batch, r, b);
}

// ---------------------------------------------------------------------------
// Parallel producer.

fn stream_parallel<const D: usize, P, F>(tree: &KdTree<D>, policy: &P, cap: usize, on_batch: &mut F)
where
    P: SeparationPolicy<D>,
    F: FnMut(&mut Vec<NodePair>) + Send,
{
    let tasks = expand_tasks(tree, policy);
    // Wave size scales with the pool so every worker has a task and a
    // steal target; output is wave-partition-independent, so the width
    // dependence here cannot leak into batch boundaries.
    let wave = rayon::current_num_threads().max(2) * 4;

    let mut pending: VecDeque<NodePair> = VecDeque::new();
    let mut batch: Vec<NodePair> = Vec::with_capacity(cap.min(1 << 20));
    let produce = |chunk: &[Task]| -> Vec<Vec<NodePair>> {
        chunk
            .par_iter()
            .map(|&task| {
                let mut out = Vec::new();
                match task {
                    Task::Node(a) => collect_node(tree, policy, a, &mut out),
                    Task::Pair(a, b) => collect_pair(tree, policy, a, b, &mut out),
                }
                out
            })
            .collect()
    };

    let mut chunks = tasks.chunks(wave);
    let mut current = chunks.next().map(produce);
    while let Some(produced) = current {
        let next_chunk = chunks.next();
        // Overlap: drain wave k into batches (and the consumer) while the
        // pool enumerates wave k+1.
        let ((), next) = rayon::join(
            || {
                for run in produced {
                    pending.extend(run);
                }
                while pending.len() >= cap {
                    batch.extend(pending.drain(..cap));
                    on_batch(&mut batch);
                    batch.clear();
                }
            },
            || next_chunk.map(produce),
        );
        current = next;
    }
    if !pending.is_empty() {
        batch.extend(pending.drain(..));
        on_batch(&mut batch);
        batch.clear();
    }
}

/// Split the canonical DFS recursion into a task list whose concatenated
/// outputs reproduce the sequential pair sequence exactly. Rounds of
/// in-order expansion (see [`Task`]) stop at [`TASK_TARGET`] tasks or when
/// every task is terminal/below [`TASK_GRAIN`].
fn expand_tasks<const D: usize, P>(tree: &KdTree<D>, policy: &P) -> Vec<Task>
where
    P: SeparationPolicy<D>,
{
    let mut tasks = vec![Task::Node(tree.root())];
    loop {
        if tasks.len() >= TASK_TARGET {
            return tasks;
        }
        let mut next = Vec::with_capacity(tasks.len() * 3);
        let mut changed = false;
        for &task in &tasks {
            match task {
                Task::Node(a) => {
                    if tree.is_leaf(a) {
                        changed = true; // drop: a leaf emits nothing
                    } else if tree.node_size(a) < TASK_GRAIN {
                        next.push(task);
                    } else {
                        let (l, r) = tree.children(a);
                        next.push(Task::Node(l));
                        next.push(Task::Node(r));
                        next.push(Task::Pair(l, r));
                        changed = true;
                    }
                }
                Task::Pair(a, b) => {
                    if policy.well_separated(tree, a, b) {
                        next.push(task); // terminal: emits exactly one pair
                    } else if tree.node_size(a) + tree.node_size(b) < TASK_GRAIN {
                        next.push(task);
                    } else {
                        let (s, o) = crate::traverse::split_order(tree, a, b);
                        let (l, r) = tree.children(s);
                        next.push(Task::Pair(l, o));
                        next.push(Task::Pair(r, o));
                        changed = true;
                    }
                }
            }
        }
        tasks = next;
        if !changed {
            return tasks;
        }
    }
}

/// Sequential enumeration of one `Node` task (no cap handling — the drain
/// stage owns batching).
fn collect_node<const D: usize, P>(tree: &KdTree<D>, policy: &P, a: NodeId, out: &mut Vec<NodePair>)
where
    P: SeparationPolicy<D>,
{
    if tree.is_leaf(a) {
        return;
    }
    let (l, r) = tree.children(a);
    collect_node(tree, policy, l, out);
    collect_node(tree, policy, r, out);
    collect_pair(tree, policy, l, r, out);
}

/// Sequential enumeration of one `Pair` task.
fn collect_pair<const D: usize, P>(
    tree: &KdTree<D>,
    policy: &P,
    a: NodeId,
    b: NodeId,
    out: &mut Vec<NodePair>,
) where
    P: SeparationPolicy<D>,
{
    if policy.well_separated(tree, a, b) {
        out.push(if a < b { (a, b) } else { (b, a) });
        return;
    }
    let (a, b) = crate::traverse::split_order(tree, a, b);
    debug_assert!(
        !tree.is_leaf(a),
        "two leaves are always well-separated; cannot split a singleton"
    );
    let (l, r) = tree.children(a);
    collect_pair(tree, policy, l, b, out);
    collect_pair(tree, policy, r, b, out);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::GeometricSep;
    use crate::traverse::wspd_materialize;
    use parclust_geom::Point;
    use rand::prelude::*;

    fn random_points<const D: usize>(n: usize, seed: u64) -> Vec<Point<D>> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                let mut c = [0.0; D];
                for x in c.iter_mut() {
                    *x = rng.gen_range(-100.0..100.0);
                }
                Point(c)
            })
            .collect()
    }

    fn streamed_union<const D: usize>(tree: &KdTree<D>, cap: usize) -> Vec<NodePair> {
        let mut all = Vec::new();
        let mut batches = 0usize;
        wspd_stream_batches(
            tree,
            &GeometricSep::PAPER_DEFAULT,
            cap,
            &mut |batch: &mut Vec<NodePair>| {
                assert!(!batch.is_empty(), "empty batches are never delivered");
                assert!(
                    batch.len() <= cap,
                    "batch of {} exceeds cap {cap}",
                    batch.len()
                );
                all.extend_from_slice(batch);
                batches += 1;
            },
        );
        // Every batch except possibly the last is exactly full.
        if batches > 1 {
            assert!(all.len() > (batches - 1) * cap - cap, "uneven batching");
        }
        all
    }

    #[test]
    fn batched_union_equals_materialized() {
        let pts = random_points::<2>(400, 1);
        let tree = KdTree::build(&pts);
        let want = wspd_materialize(&tree, &GeometricSep::PAPER_DEFAULT);
        for cap in [1usize, 7, 64, 1000, usize::MAX / 2] {
            let mut got = streamed_union(&tree, cap);
            got.sort_unstable();
            assert_eq!(got, want, "cap={cap}");
        }
    }

    #[test]
    fn batched_union_equals_materialized_3d() {
        let pts = random_points::<3>(256, 2);
        let tree = KdTree::build(&pts);
        let want = wspd_materialize(&tree, &GeometricSep::PAPER_DEFAULT);
        let mut got = streamed_union(&tree, 33);
        got.sort_unstable();
        assert_eq!(got, want);
    }

    #[test]
    fn deterministic_batch_boundaries() {
        let pts = random_points::<2>(300, 3);
        let tree = KdTree::build(&pts);
        let runs: Vec<Vec<Vec<NodePair>>> = (0..2)
            .map(|_| {
                let mut batches = Vec::new();
                wspd_stream_batches(
                    &tree,
                    &GeometricSep::PAPER_DEFAULT,
                    50,
                    &mut |b: &mut Vec<NodePair>| batches.push(b.clone()),
                );
                batches
            })
            .collect();
        assert_eq!(runs[0], runs[1], "batch boundaries must be reproducible");
    }

    /// The tentpole contract: the parallel producer (explicit pools of
    /// width 2/4/8, input above `PAR_STREAM_CUTOFF`) must deliver batches
    /// that are element-for-element identical — contents *and* boundaries —
    /// to the width-1 sequential batcher, for caps straddling the wave size.
    #[test]
    fn parallel_batches_identical_to_sequential_across_widths() {
        let pts = random_points::<2>(PAR_STREAM_CUTOFF * 2, 5);
        let tree = KdTree::build(&pts);
        let in_pool = |threads: usize, cap: usize| -> Vec<Vec<NodePair>> {
            rayon::ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .expect("pool")
                .install(|| {
                    let mut batches = Vec::new();
                    wspd_stream_batches(
                        &tree,
                        &GeometricSep::PAPER_DEFAULT,
                        cap,
                        &mut |b: &mut Vec<NodePair>| batches.push(b.clone()),
                    );
                    batches
                })
        };
        for cap in [97usize, 4096] {
            let baseline = in_pool(1, cap);
            assert!(baseline.len() > 1, "want a multi-batch scenario");
            for threads in [2usize, 4, 8] {
                let got = in_pool(threads, cap);
                assert_eq!(
                    got, baseline,
                    "cap={cap}: batches differ at {threads} threads"
                );
            }
        }
    }

    #[test]
    fn tiny_inputs_stream_cleanly() {
        let tree = KdTree::build(&[Point([0.0, 0.0])]);
        let mut calls = 0;
        wspd_stream_batches(
            &tree,
            &GeometricSep::PAPER_DEFAULT,
            4,
            &mut |_: &mut Vec<NodePair>| calls += 1,
        );
        assert_eq!(calls, 0, "singleton has no pairs");

        let tree = KdTree::build(&[Point([0.0, 0.0]), Point([1.0, 1.0])]);
        let mut pairs = Vec::new();
        wspd_stream_batches(
            &tree,
            &GeometricSep::PAPER_DEFAULT,
            4,
            &mut |b: &mut Vec<NodePair>| pairs.extend_from_slice(b),
        );
        assert_eq!(pairs.len(), 1);
    }

    #[test]
    fn duplicates_stream_to_full_cover() {
        let mut pts = random_points::<2>(60, 4);
        for i in 0..20 {
            pts.push(pts[i % 6]);
        }
        let tree = KdTree::build(&pts);
        let want = wspd_materialize(&tree, &GeometricSep::PAPER_DEFAULT);
        let mut got = streamed_union(&tree, 13);
        got.sort_unstable();
        assert_eq!(got, want);
    }
}
