//! # parclust-dyn — incremental insert/delete on HDBSCAN\* models
//!
//! A [`DynamicModel`] holds a live point set plus its HDBSCAN\* hierarchy
//! (core distances → mutual-reachability MST → ordered dendrogram →
//! condensed tree) and applies batched [`MutationBatch`]es of inserts and
//! deletes, keeping the invariant that the published hierarchy is **bit
//! identical** to a from-scratch build over the current live points —
//! pinned for arbitrary mutation interleavings by
//! `tests/incremental_semantics.rs`.
//!
//! ## What is (and is not) reused across a mutation
//!
//! **Core distances are reused; MST edges are not.** The split is forced by
//! how each quantity depends on the kd-tree:
//!
//! * A core distance is a property of the point *multiset*: the `minPts`-th
//!   smallest computed squared distance from the point, then one `sqrt`.
//!   Squared distances are accumulated in dimension order by both the
//!   scalar and the lane kernels, so the value is independent of tree
//!   shape, permutation, and visit order. A mutation at `q` can change
//!   `cd(p)` only if `q`'s distance enters or leaves the k-smallest set:
//!   an insert `b` affects `p` iff `d²(p, b) < cd²(p)` (strict — an exact
//!   tie duplicates the k-th statistic without moving it), a delete `q`
//!   affects `p` iff `d²(p, q) ≤ cd²(p)` (inclusive — removing a tie *at*
//!   the k-th value can raise it). Both predicates are evaluated on the raw
//!   squared distances ([`parclust_kdtree::KdTree::stab_radii_into`]), so
//!   reuse is exact, ties and duplicates included.
//!
//! * MST *edge sets* under the total order `(w, u, v)` are **not**
//!   tree-independent when exact weight ties exist. Counterexample (unit
//!   square): points `p0=(0,0), p1=(0,1)` in one WSPD side and
//!   `q0=(1,0), q1=(1,1)` in the other. The lexicographic MST of the
//!   complete graph keeps two unit cross edges, but any driver that
//!   represents the well-separated pair by a single BCCP edge keeps one
//!   cross edge and closes the square along the far side — same total
//!   weight, different edge set, and *which* edge set appears depends on
//!   how the tree decomposed the square. Merging forest edges harvested
//!   from an old tree into candidates streamed from a new tree can
//!   therefore flip tie outcomes and change the dendrogram bit pattern.
//!   So the merge path restreams all WSPD pair batches of the *new* tree
//!   through a fresh streaming Kruskal forest
//!   ([`parclust_mst::StreamingForest`] via
//!   [`parclust::hdbscan_streaming_with_cds`]) instead of splicing edges
//!   across trees; what it saves is the dominant core-distance phase.
//!
//! ## Rebuild vs merge
//!
//! [`apply`](DynamicModel::apply) stabs the affected neighborhoods and
//! routes by the invalidated fraction: above
//! [`DynConfig::rebuild_fraction`] the carried values would not pay for the
//! stab + selective kNN, so everything is recomputed ("rebuild"); below it,
//! unaffected core distances are carried over and only the affected ∪
//! inserted points are re-queried ("merge"). Because both paths end in the
//! same exact pipeline over the same exact core-distance values, the policy
//! is purely a performance lever — correctness never depends on which path
//! ran. A changed effective `k = min(minPts, n)` (tiny models, or deletes
//! crossing `minPts`) invalidates every carried value, so it forces the
//! rebuild path regardless of policy.

use parclust::{
    condense_tree, dendrogram_par, hdbscan_memogfk_with_cds, hdbscan_streaming_with_cds,
    CondensedTree, Dendrogram, HdbscanMst,
};
use parclust_geom::Point;
use parclust_kdtree::KdTree;
use rayon::prelude::*;

/// How [`DynamicModel::apply`] chooses between its two update paths.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MutationPolicy {
    /// Cost model: merge below [`DynConfig::rebuild_fraction`], rebuild
    /// above it.
    #[default]
    Auto,
    /// Always recompute every core distance (the reference path).
    AlwaysRebuild,
    /// Always carry unaffected core distances, whatever the fraction.
    /// (A changed effective `k` still forces a rebuild — carried values
    /// would be values of a different statistic.)
    ForceMerge,
}

/// Tuning for a [`DynamicModel`]. The defaults match the batch pipeline:
/// in-memory MemoGFK restreams and a 25% invalidation threshold.
#[derive(Debug, Clone, Copy)]
pub struct DynConfig {
    pub policy: MutationPolicy,
    /// `Auto` rebuilds when more than this fraction of the new live set
    /// had its core distance invalidated (affected survivors + inserts).
    pub rebuild_fraction: f64,
    /// `Some(cap)` routes the MST restream through the bounded-memory
    /// streaming pipeline (at most `cap` live WSPD pairs per batch);
    /// `None` uses MemoGFK. Both are bit-identical.
    pub max_live_pairs: Option<usize>,
}

impl Default for DynConfig {
    fn default() -> Self {
        DynConfig {
            policy: MutationPolicy::Auto,
            rebuild_fraction: 0.25,
            max_live_pairs: None,
        }
    }
}

/// One batch of mutations. Deletes name *current live indices* (positions
/// in [`DynamicModel::points`] before this batch); survivors keep their
/// relative order and inserts append after them, so live order stays
/// insertion order compacted by deletions.
#[derive(Debug, Clone, Default)]
pub struct MutationBatch<const D: usize> {
    pub inserts: Vec<Point<D>>,
    pub deletes: Vec<usize>,
}

impl<const D: usize> MutationBatch<D> {
    pub fn is_empty(&self) -> bool {
        self.inserts.is_empty() && self.deletes.is_empty()
    }
}

/// Which path [`DynamicModel::apply`] took.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MutationPath {
    Merge,
    Rebuild,
}

impl MutationPath {
    pub fn as_str(self) -> &'static str {
        match self {
            MutationPath::Merge => "merge",
            MutationPath::Rebuild => "rebuild",
        }
    }
}

/// What one [`DynamicModel::apply`] did.
#[derive(Debug, Clone, Copy)]
pub struct ApplyReport {
    pub path: MutationPath,
    /// Points whose core distance was recomputed (= live size on rebuild).
    pub recomputed: usize,
    pub inserted: usize,
    pub deleted: usize,
    /// Live points after the batch.
    pub n: usize,
    /// Model version after the batch (bumps by one per apply).
    pub version: u64,
}

/// A mutable HDBSCAN\* model: live points plus the exact hierarchy over
/// them, updated in place by [`DynamicModel::apply`].
pub struct DynamicModel<const D: usize> {
    min_pts: usize,
    min_cluster_size: usize,
    cfg: DynConfig,
    version: u64,
    points: Vec<Point<D>>,
    /// Raw squared `minPts`-th-NN distance per live point — the exact
    /// statistic the affected-set predicates compare against.
    cd_sq: Vec<f64>,
    /// `cd_sq.sqrt()` — the core distances the hierarchy is built from.
    core_distances: Vec<f64>,
    dendrogram: Dendrogram,
    condensed: CondensedTree,
}

impl<const D: usize> DynamicModel<D> {
    /// Build a dynamic model from scratch (version 1).
    pub fn new(
        points: &[Point<D>],
        min_pts: usize,
        min_cluster_size: usize,
        cfg: DynConfig,
    ) -> Self {
        assert!(!points.is_empty(), "dynamic model needs at least one point");
        assert!(min_pts >= 1, "minPts must be at least 1");
        let (cd_sq, cd) = full_core_distances(points, min_pts);
        let (dendrogram, condensed) = build_hierarchy(points, min_pts, min_cluster_size, &cd, &cfg);
        DynamicModel {
            min_pts,
            min_cluster_size,
            cfg,
            version: 1,
            points: points.to_vec(),
            cd_sq,
            core_distances: cd,
            dendrogram,
            condensed,
        }
    }

    /// Reassemble a dynamic model from persisted pieces (an artifact's
    /// point set + hierarchy). The raw squared k-NN distances are not
    /// persisted, so they are recomputed here and cross-checked against the
    /// supplied core distances — a mismatch means the pieces were not built
    /// by this pipeline over these points.
    pub fn from_parts(
        points: Vec<Point<D>>,
        min_pts: usize,
        min_cluster_size: usize,
        cfg: DynConfig,
        core_distances: Vec<f64>,
        dendrogram: Dendrogram,
        condensed: CondensedTree,
        version: u64,
    ) -> Result<Self, String> {
        let n = points.len();
        if n == 0 {
            return Err("dynamic model needs at least one point".into());
        }
        if min_pts < 1 {
            return Err("minPts must be at least 1".into());
        }
        if core_distances.len() != n {
            return Err(format!(
                "core-distance length {} does not match {n} points",
                core_distances.len()
            ));
        }
        if dendrogram.n != n || condensed.point_cluster.len() != n {
            return Err("hierarchy does not cover the point set".into());
        }
        if version == 0 {
            return Err("model versions start at 1".into());
        }
        let (cd_sq, cd) = full_core_distances(&points, min_pts);
        if cd != core_distances {
            return Err(
                "supplied core distances disagree with the point set (wrong minPts or \
                 foreign pipeline)"
                    .into(),
            );
        }
        Ok(DynamicModel {
            min_pts,
            min_cluster_size,
            cfg,
            version,
            points,
            cd_sq,
            core_distances,
            dendrogram,
            condensed,
        })
    }

    pub fn len(&self) -> usize {
        self.points.len()
    }

    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    pub fn min_pts(&self) -> usize {
        self.min_pts
    }

    pub fn min_cluster_size(&self) -> usize {
        self.min_cluster_size
    }

    pub fn config(&self) -> &DynConfig {
        &self.cfg
    }

    pub fn version(&self) -> u64 {
        self.version
    }

    /// Live points, insertion order compacted by deletions.
    pub fn points(&self) -> &[Point<D>] {
        &self.points
    }

    pub fn core_distances(&self) -> &[f64] {
        &self.core_distances
    }

    pub fn dendrogram(&self) -> &Dendrogram {
        &self.dendrogram
    }

    pub fn condensed(&self) -> &CondensedTree {
        &self.condensed
    }

    /// Apply one mutation batch: deletes first (by pre-batch live index),
    /// then inserts appended. Errors leave the model untouched.
    pub fn apply(&mut self, batch: &MutationBatch<D>) -> Result<ApplyReport, String> {
        self.apply_inner(batch, false)
    }

    /// Force a full recomputation (the compaction primitive): equivalent to
    /// applying an empty batch down the rebuild path. Bumps the version.
    pub fn rebuild(&mut self) -> ApplyReport {
        self.apply_inner(&MutationBatch::default(), true)
            .expect("empty rebuild batch cannot fail")
    }

    fn apply_inner(
        &mut self,
        batch: &MutationBatch<D>,
        force_rebuild: bool,
    ) -> Result<ApplyReport, String> {
        let n_old = self.points.len();
        let mut deletes = batch.deletes.clone();
        deletes.sort_unstable();
        deletes.dedup();
        if deletes.len() != batch.deletes.len() {
            return Err("duplicate delete indices in batch".into());
        }
        if let Some(&bad) = deletes.iter().find(|&&i| i >= n_old) {
            return Err(format!("delete index {bad} out of range (n = {n_old})"));
        }
        let n_new = n_old - deletes.len() + batch.inserts.len();
        if n_new == 0 {
            return Err("batch would delete every live point".into());
        }

        // Survivors, old→new index map, and the new live order.
        let n_surv = n_old - deletes.len();
        let mut deleted = vec![false; n_old];
        for &i in &deletes {
            deleted[i] = true;
        }
        let mut new_points: Vec<Point<D>> = Vec::with_capacity(n_new);
        let mut carried_cd_sq: Vec<f64> = Vec::with_capacity(n_new);
        let mut carried_cd: Vec<f64> = Vec::with_capacity(n_new);
        for i in 0..n_old {
            if !deleted[i] {
                new_points.push(self.points[i]);
                carried_cd_sq.push(self.cd_sq[i]);
                carried_cd.push(self.core_distances[i]);
            }
        }
        new_points.extend_from_slice(&batch.inserts);

        // A changed effective k makes every carried value a different
        // statistic; only the rebuild path is sound then.
        let k_unchanged = self.min_pts.min(n_old) == self.min_pts.min(n_new);
        let want_merge = !force_rebuild
            && k_unchanged
            && !matches!(self.cfg.policy, MutationPolicy::AlwaysRebuild);

        let (path, recomputed, cd_sq, cd) = if want_merge {
            let tree = KdTree::build(&new_points);
            // Stab radii: survivors carry their old squared core distance;
            // inserts can never be stabbed (they are recomputed anyway).
            let mut radii_sq = carried_cd_sq.clone();
            radii_sq.resize(n_new, f64::NEG_INFINITY);
            let ann = tree.max_radius_sq_annotation(&radii_sq);
            let mut affected = vec![false; n_new];
            for a in affected.iter_mut().skip(n_surv) {
                *a = true;
            }
            let mut hits = Vec::new();
            for b in &batch.inserts {
                // Strict: an insert tying the k-th distance leaves it alone.
                tree.stab_radii_into(b, &radii_sq, &ann, false, &mut hits);
            }
            for &i in &deletes {
                // Inclusive: removing a tie at the k-th distance can raise it.
                tree.stab_radii_into(&self.points[i], &radii_sq, &ann, true, &mut hits);
            }
            for &i in &hits {
                affected[i as usize] = true;
            }
            let recomputed = affected.iter().filter(|&&a| a).count();
            let fraction = recomputed as f64 / n_new as f64;
            let merge = match self.cfg.policy {
                MutationPolicy::ForceMerge => true,
                MutationPolicy::Auto => fraction <= self.cfg.rebuild_fraction,
                MutationPolicy::AlwaysRebuild => unreachable!("filtered above"),
            };
            if merge {
                let mut cd_sq = carried_cd_sq;
                cd_sq.resize(n_new, 0.0);
                let mut cd = carried_cd;
                cd.resize(n_new, 0.0);
                let idx: Vec<usize> = (0..n_new).filter(|&i| affected[i]).collect();
                let fresh: Vec<(usize, f64)> = idx
                    .par_iter()
                    .map(|&i| {
                        let knn = tree.knn(&new_points[i], self.min_pts);
                        // knn clamps k to n internally; the last entry is the
                        // effective-k-th neighbor (self included).
                        (i, knn.last().expect("non-empty tree").0)
                    })
                    .collect();
                for (i, d_sq) in fresh {
                    cd_sq[i] = d_sq;
                    cd[i] = d_sq.sqrt();
                }
                (MutationPath::Merge, recomputed, cd_sq, cd)
            } else {
                let (cd_sq, cd) = full_core_distances(&new_points, self.min_pts);
                (MutationPath::Rebuild, n_new, cd_sq, cd)
            }
        } else {
            let (cd_sq, cd) = full_core_distances(&new_points, self.min_pts);
            (MutationPath::Rebuild, n_new, cd_sq, cd)
        };

        let (dendrogram, condensed) = build_hierarchy(
            &new_points,
            self.min_pts,
            self.min_cluster_size,
            &cd,
            &self.cfg,
        );
        self.points = new_points;
        self.cd_sq = cd_sq;
        self.core_distances = cd;
        self.dendrogram = dendrogram;
        self.condensed = condensed;
        self.version += 1;
        Ok(ApplyReport {
            path,
            recomputed,
            inserted: batch.inserts.len(),
            deleted: deletes.len(),
            n: self.points.len(),
            version: self.version,
        })
    }
}

/// All core distances from one all-points kNN pass: the raw squared k-th
/// distances plus their roots, bitwise what `parclust::core_distances`
/// produces.
fn full_core_distances<const D: usize>(
    points: &[Point<D>],
    min_pts: usize,
) -> (Vec<f64>, Vec<f64>) {
    let tree = KdTree::build(points);
    let knn = tree.knn_all(min_pts);
    let cd_sq: Vec<f64> = (0..points.len()).map(|i| knn.kth_dist_sq(i)).collect();
    let cd: Vec<f64> = cd_sq.iter().map(|d| d.sqrt()).collect();
    (cd_sq, cd)
}

/// MST restream over exact core distances, then dendrogram + condensed
/// tree — the shared tail of both mutation paths, identical to the batch
/// pipeline (`ClusterModel::build` shape).
fn build_hierarchy<const D: usize>(
    points: &[Point<D>],
    min_pts: usize,
    min_cluster_size: usize,
    cd: &[f64],
    cfg: &DynConfig,
) -> (Dendrogram, CondensedTree) {
    let h: HdbscanMst = match cfg.max_live_pairs {
        Some(cap) => hdbscan_streaming_with_cds(points, min_pts, cap, cd),
        None => hdbscan_memogfk_with_cds(points, min_pts, cd),
    };
    let dendrogram = dendrogram_par(points.len(), &h.edges, 0);
    let condensed = condense_tree(&dendrogram, min_cluster_size);
    (dendrogram, condensed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use parclust::hdbscan_memogfk;
    use rand::prelude::*;

    fn scratch<const D: usize>(
        pts: &[Point<D>],
        min_pts: usize,
        mcs: usize,
    ) -> (Vec<f64>, Dendrogram, CondensedTree) {
        let h = hdbscan_memogfk(pts, min_pts);
        let d = dendrogram_par(pts.len(), &h.edges, 0);
        let c = condense_tree(&d, mcs);
        (h.core_distances, d, c)
    }

    fn assert_matches_scratch<const D: usize>(m: &DynamicModel<D>, what: &str) {
        let (cd, d, c) = scratch(m.points(), m.min_pts(), m.min_cluster_size());
        assert_eq!(m.core_distances(), &cd[..], "{what}: core distances");
        let dm = m.dendrogram();
        assert_eq!(dm.height, d.height, "{what}: heights");
        assert_eq!(dm.left, d.left, "{what}: left");
        assert_eq!(dm.right, d.right, "{what}: right");
        assert_eq!(dm.parent, d.parent, "{what}: parent");
        assert_eq!(dm.edge_u, d.edge_u, "{what}: edge_u");
        assert_eq!(dm.edge_v, d.edge_v, "{what}: edge_v");
        let cm = m.condensed();
        assert_eq!(cm.parent, c.parent, "{what}: condensed parent");
        assert_eq!(cm.point_cluster, c.point_cluster, "{what}: labels");
        assert_eq!(cm.point_lambda, c.point_lambda, "{what}: lambdas");
    }

    fn grid_points(n: usize, seed: u64) -> Vec<Point<2>> {
        // Tie-heavy: integer grid coordinates produce many exact-equal
        // distances, the regime where cross-tree edge reuse would break.
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| Point([rng.gen_range(0..12) as f64, rng.gen_range(0..12) as f64]))
            .collect()
    }

    #[test]
    fn inserts_match_scratch_on_tie_heavy_grids() {
        let pts = grid_points(120, 1);
        for policy in [
            MutationPolicy::Auto,
            MutationPolicy::AlwaysRebuild,
            MutationPolicy::ForceMerge,
        ] {
            let cfg = DynConfig {
                policy,
                ..DynConfig::default()
            };
            let mut m = DynamicModel::new(&pts[..100], 4, 4, cfg);
            for chunk in pts[100..].chunks(7) {
                let report = m
                    .apply(&MutationBatch {
                        inserts: chunk.to_vec(),
                        deletes: vec![],
                    })
                    .unwrap();
                assert_eq!(report.inserted, chunk.len());
                assert_matches_scratch(&m, &format!("{policy:?} insert"));
            }
            assert_eq!(m.len(), 120);
        }
    }

    #[test]
    fn deletes_and_mixed_batches_match_scratch() {
        let pts = grid_points(150, 2);
        let cfg = DynConfig {
            policy: MutationPolicy::ForceMerge,
            ..DynConfig::default()
        };
        let mut m = DynamicModel::new(&pts, 5, 3, cfg);
        let report = m
            .apply(&MutationBatch {
                inserts: vec![],
                deletes: vec![0, 7, 149, 33],
            })
            .unwrap();
        assert_eq!(report.deleted, 4);
        assert_eq!(m.len(), 146);
        assert_matches_scratch(&m, "pure delete");
        let report = m
            .apply(&MutationBatch {
                inserts: grid_points(9, 3),
                deletes: vec![2, 100],
            })
            .unwrap();
        assert_eq!((report.inserted, report.deleted, report.n), (9, 2, 153));
        assert_matches_scratch(&m, "mixed batch");
    }

    #[test]
    fn live_order_is_insertion_order_compacted_by_deletes() {
        let pts: Vec<Point<2>> = (0..6).map(|i| Point([i as f64, 0.0])).collect();
        let mut m = DynamicModel::new(&pts, 2, 2, DynConfig::default());
        m.apply(&MutationBatch {
            inserts: vec![Point([10.0, 0.0])],
            deletes: vec![1, 4],
        })
        .unwrap();
        let want = [0.0, 2.0, 3.0, 5.0, 10.0];
        let got: Vec<f64> = m.points().iter().map(|p| p[0]).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn policy_is_only_a_performance_lever() {
        let pts = grid_points(90, 5);
        let batch = MutationBatch {
            inserts: grid_points(11, 6),
            deletes: vec![3, 50, 88],
        };
        let mut results = Vec::new();
        for policy in [
            MutationPolicy::AlwaysRebuild,
            MutationPolicy::ForceMerge,
            MutationPolicy::Auto,
        ] {
            let cfg = DynConfig {
                policy,
                ..DynConfig::default()
            };
            let mut m = DynamicModel::new(&pts, 6, 4, cfg);
            m.apply(&batch).unwrap();
            results.push((
                m.core_distances().to_vec(),
                m.dendrogram().height.clone(),
                m.condensed().point_cluster.clone(),
            ));
        }
        assert_eq!(results[0], results[1]);
        assert_eq!(results[0], results[2]);
    }

    #[test]
    fn auto_routes_small_batches_to_merge_and_avalanches_to_rebuild() {
        let mut rng = StdRng::seed_from_u64(9);
        // Spread-out points so one far-away insert affects almost nobody.
        let pts: Vec<Point<2>> = (0..200)
            .map(|_| Point([rng.gen_range(-500.0..500.0), rng.gen_range(-500.0..500.0)]))
            .collect();
        let mut m = DynamicModel::new(&pts, 3, 3, DynConfig::default());
        let report = m
            .apply(&MutationBatch {
                inserts: vec![Point([10_000.0, 10_000.0])],
                deletes: vec![],
            })
            .unwrap();
        assert_eq!(report.path, MutationPath::Merge);
        assert!(report.recomputed < 10, "recomputed {}", report.recomputed);
        // Deleting most of the set invalidates everything.
        let report = m
            .apply(&MutationBatch {
                inserts: vec![],
                deletes: (0..150).collect(),
            })
            .unwrap();
        assert_eq!(report.path, MutationPath::Rebuild);
        assert_matches_scratch(&m, "after avalanche");
    }

    #[test]
    fn effective_k_change_forces_rebuild_even_under_force_merge() {
        let pts = grid_points(4, 11);
        let cfg = DynConfig {
            policy: MutationPolicy::ForceMerge,
            ..DynConfig::default()
        };
        // minPts = 8 > n: effective k is n and moves with every mutation.
        let mut m = DynamicModel::new(&pts, 8, 2, cfg);
        let report = m
            .apply(&MutationBatch {
                inserts: grid_points(3, 12),
                deletes: vec![],
            })
            .unwrap();
        assert_eq!(report.path, MutationPath::Rebuild);
        assert_matches_scratch(&m, "k-clamp insert");
    }

    #[test]
    fn bad_batches_error_and_leave_the_model_untouched() {
        let pts = grid_points(10, 13);
        let mut m = DynamicModel::new(&pts, 3, 2, DynConfig::default());
        let before = m.core_distances().to_vec();
        assert!(m
            .apply(&MutationBatch {
                inserts: vec![],
                deletes: vec![10],
            })
            .is_err());
        assert!(m
            .apply(&MutationBatch {
                inserts: vec![],
                deletes: vec![1, 1],
            })
            .is_err());
        assert!(m
            .apply(&MutationBatch {
                inserts: vec![],
                deletes: (0..10).collect(),
            })
            .is_err());
        assert_eq!(m.version(), 1);
        assert_eq!(m.core_distances(), &before[..]);
    }

    #[test]
    fn versions_are_monotone_and_rebuild_bumps_them() {
        let pts = grid_points(30, 14);
        let mut m = DynamicModel::new(&pts, 3, 2, DynConfig::default());
        assert_eq!(m.version(), 1);
        m.apply(&MutationBatch {
            inserts: grid_points(2, 15),
            deletes: vec![],
        })
        .unwrap();
        assert_eq!(m.version(), 2);
        let report = m.rebuild();
        assert_eq!(report.path, MutationPath::Rebuild);
        assert_eq!(m.version(), 3);
        assert_matches_scratch(&m, "after compact rebuild");
    }

    #[test]
    fn from_parts_roundtrips_and_rejects_foreign_pieces() {
        let pts = grid_points(60, 16);
        let m = DynamicModel::new(&pts, 4, 3, DynConfig::default());
        let back = DynamicModel::from_parts(
            m.points().to_vec(),
            4,
            3,
            DynConfig::default(),
            m.core_distances().to_vec(),
            m.dendrogram().clone(),
            m.condensed().clone(),
            m.version(),
        )
        .unwrap();
        assert_eq!(back.core_distances(), m.core_distances());
        // Wrong minPts: the recomputed statistic disagrees.
        assert!(DynamicModel::from_parts(
            m.points().to_vec(),
            5,
            3,
            DynConfig::default(),
            m.core_distances().to_vec(),
            m.dendrogram().clone(),
            m.condensed().clone(),
            m.version(),
        )
        .is_err());
    }

    #[test]
    fn streaming_restream_is_bit_identical_to_memo() {
        let pts = grid_points(100, 17);
        let cfg_stream = DynConfig {
            max_live_pairs: Some(37),
            ..DynConfig::default()
        };
        let mut a = DynamicModel::new(&pts, 4, 4, DynConfig::default());
        let mut b = DynamicModel::new(&pts, 4, 4, cfg_stream);
        let batch = MutationBatch {
            inserts: grid_points(8, 18),
            deletes: vec![4, 40],
        };
        a.apply(&batch).unwrap();
        b.apply(&batch).unwrap();
        assert_eq!(a.core_distances(), b.core_distances());
        assert_eq!(a.dendrogram().height, b.dendrogram().height);
        assert_eq!(a.condensed().point_cluster, b.condensed().point_cluster);
    }
}
