//! Parallel spatial-median kd-tree.
//!
//! The tree described in Section 2.3 and used by every algorithm in the
//! paper: nodes split the widest dimension of their bounding box at the
//! spatial midpoint, children are built in parallel, and (per Section 3.1.1)
//! leaves hold exactly one point. Slabs of exact duplicates (which no plane
//! separates) are split by rank instead, so the singleton-leaf invariant —
//! on which the WSPD's exact-pair-cover property rests — holds even for
//! degenerate inputs.
//!
//! # Layout
//!
//! Nodes live in **implicit BFS order** in parallel flat arrays
//! ([`FlatNodes`]): the root is node 0, each BFS level is a contiguous id
//! range, and children are found by *index arithmetic* instead of stored
//! pointers. A leaf bitmap (`leaf_words`, one bit per node) plus a per-word
//! prefix-popcount table gives O(1) rank queries, and the children of the
//! `j`-th internal node (counting internal nodes in BFS order) are nodes
//! `2j + 1` and `2j + 2`:
//!
//! ```text
//! id:        0   1   2   3   4   5   6  ...
//! leaf bit:  0   0   1   0   1   1   1  ...
//! j = id - leaves_before(id)      (rank via bitmap popcount)
//! children(id) = (2j + 1, 2j + 2) (only defined for internal nodes)
//! ```
//!
//! BFS beats the textbook complete-heap layout here because spatial-median
//! splits produce arbitrarily unbalanced trees: heap indexing would blow the
//! array up to `2^depth`, while BFS keeps it at exactly `2n - 1` slots. The
//! point coordinates live in a [`PointBlock`] — structure-of-arrays lanes in
//! fixed-size blocks — so leaf-range distance loops auto-vectorize. Both
//! pieces are position-independent flat arrays, the stepping stone to an
//! mmap-able out-of-core tree.

pub mod knn;
pub mod range;

use parclust_data::PointBlock;
use parclust_geom::{Aabb, Point};
use rayon::prelude::*;

pub use knn::{AllKnn, KnnHeap};

/// Node identifier within a [`KdTree`]: the BFS position.
pub type NodeId = u32;
/// Marker for "no child" in the pointer-shaped scaffolding ([`PointerNode`]).
pub const NULL_NODE: NodeId = u32::MAX;

/// Below this subtree size the build recursion runs sequentially.
const BUILD_GRAIN: usize = 4096;

/// Below this many nodes, a level of [`KdTree::aggregate_bottom_up`] is
/// processed sequentially.
const AGG_GRAIN: usize = 1024;

/// A pointer-shaped kd-tree node covering the permuted point range
/// `start..end`, with explicit child ids (`NULL_NODE` for leaves).
///
/// This is **not** the query-time representation: it exists only as the
/// parallel build's scaffolding arena and as the wire format of version-1
/// serve artifacts ([`KdTree::from_legacy_parts`]). Both paths immediately
/// re-layout into the implicit-BFS [`FlatNodes`] arrays.
#[derive(Debug, Clone, Copy)]
pub struct PointerNode<const D: usize> {
    pub bbox: Aabb<D>,
    pub start: u32,
    pub end: u32,
    pub left: NodeId,
    pub right: NodeId,
}

impl<const D: usize> Default for PointerNode<D> {
    fn default() -> Self {
        PointerNode {
            bbox: Aabb::empty(),
            start: 0,
            end: 0,
            left: NULL_NODE,
            right: NULL_NODE,
        }
    }
}

impl<const D: usize> PointerNode<D> {
    #[inline]
    pub fn is_leaf(&self) -> bool {
        self.left == NULL_NODE
    }

    #[inline]
    pub fn size(&self) -> usize {
        (self.end - self.start) as usize
    }
}

/// The flat per-node storage of a [`KdTree`], BFS-ordered and
/// structure-of-arrays: `bbox[id]`/`start[id]`/`end[id]` describe node `id`,
/// and bit `id` of `leaf_words` marks it as a leaf. Child ids are implicit
/// (see the crate docs) — there are no pointers to chase or to corrupt.
///
/// This is exactly what serve artifacts persist; [`KdTree::from_parts`]
/// validates one of these into a queryable tree.
#[derive(Debug, Clone)]
pub struct FlatNodes<const D: usize> {
    pub bbox: Vec<Aabb<D>>,
    pub start: Vec<u32>,
    pub end: Vec<u32>,
    /// Leaf bitmap: bit `id % 64` of word `id / 64` is set iff `id` is a leaf.
    pub leaf_words: Vec<u64>,
}

/// Per-word prefix popcounts of a leaf bitmap (`table[w]` = leaves strictly
/// before word `w`).
fn leaf_rank_table(words: &[u64]) -> Vec<u32> {
    let mut acc = 0u32;
    words
        .iter()
        .map(|w| {
            let r = acc;
            acc += w.count_ones();
            r
        })
        .collect()
}

/// Number of leaves among nodes `[0, i)`; `i` may equal the node count.
#[inline]
fn rank_at(words: &[u64], table: &[u32], i: u32) -> u32 {
    let w = (i >> 6) as usize;
    if w == words.len() {
        return table.last().copied().unwrap_or(0) + words.last().map_or(0, |x| x.count_ones());
    }
    table[w] + (words[w] & ((1u64 << (i & 63)) - 1)).count_ones()
}

/// Parallel spatial-median kd-tree over a point set.
///
/// The tree owns a *permuted copy* of the input points (SoA blocks, tree
/// order); `idx[i]` maps permuted position `i` back to the original point
/// index.
pub struct KdTree<const D: usize> {
    block: PointBlock<D>,
    pub idx: Vec<u32>,
    nodes: FlatNodes<D>,
    leaf_rank: Vec<u32>,
    /// BFS level boundaries: level `l` is the id range
    /// `level_off[l]..level_off[l + 1]`; the last entry is the node count.
    level_off: Vec<u32>,
    /// Lazily materialized copy of the points in original order.
    pub(crate) original_points: std::sync::OnceLock<Vec<Point<D>>>,
}

impl<const D: usize> KdTree<D> {
    /// Build the tree in parallel. `O(n log n)` work (bounding boxes are
    /// recomputed exactly at every level), polylogarithmic depth. The
    /// pointer-shaped build arena is re-laid-out into BFS order before the
    /// tree is returned.
    pub fn build(input: &[Point<D>]) -> Self {
        let n = input.len();
        assert!(n > 0, "KdTree::build requires at least one point");
        assert!(n < (u32::MAX / 2) as usize, "point count exceeds u32 arena");
        let _span = parclust_obs::span!("kdtree.build", points = n);
        let mut points = input.to_vec();
        let mut idx: Vec<u32> = (0..n as u32).collect();
        let mut arena: Vec<PointerNode<D>> = vec![PointerNode::default(); 2 * n - 1];
        build_recurse(&mut points, &mut idx, &mut arena, 0, 0);
        relayout(points, idx, &arena).expect("freshly built arena is always a valid tree")
    }

    /// Reassemble a tree from previously serialized parts (e.g. a
    /// `parclust-serve` model artifact) without re-running the parallel
    /// build. `points` are the *permuted* points (tree order, AoS — they are
    /// transposed into SoA blocks here), `idx` maps permuted position to
    /// original index, and `nodes` holds the BFS-ordered flat arrays.
    ///
    /// Validates the structural invariants the query paths rely on (array
    /// lengths, the leaf bitmap's consistency with the implicit-BFS child
    /// arithmetic, child ranges partitioning their parent, singleton leaves,
    /// `idx` a permutation); returns `Err` with a description on the first
    /// violation so corrupted artifacts are rejected instead of causing
    /// panics or wrong answers deep inside a traversal.
    pub fn from_parts(
        points: Vec<Point<D>>,
        idx: Vec<u32>,
        nodes: FlatNodes<D>,
    ) -> Result<Self, String> {
        let n = points.len();
        if n == 0 {
            return Err("tree must hold at least one point".into());
        }
        if idx.len() != n {
            return Err(format!("idx length {} != point count {n}", idx.len()));
        }
        let len = 2 * n - 1;
        if nodes.bbox.len() != len || nodes.start.len() != len || nodes.end.len() != len {
            return Err(format!(
                "arena length {}/{}/{} != 2n-1 = {len}",
                nodes.bbox.len(),
                nodes.start.len(),
                nodes.end.len()
            ));
        }
        if nodes.leaf_words.len() != len.div_ceil(64) {
            return Err(format!(
                "leaf bitmap has {} words, expected {}",
                nodes.leaf_words.len(),
                len.div_ceil(64)
            ));
        }
        let tail_bits = len % 64;
        if tail_bits != 0 && nodes.leaf_words[len / 64] >> tail_bits != 0 {
            return Err("leaf bitmap has bits beyond the arena".into());
        }
        let leaves: u32 = nodes.leaf_words.iter().map(|w| w.count_ones()).sum();
        if leaves as usize != n {
            return Err(format!("leaf bitmap marks {leaves} leaves, expected {n}"));
        }
        let mut seen = vec![false; n];
        for &i in &idx {
            match seen.get_mut(i as usize) {
                Some(s) if !*s => *s = true,
                _ => return Err(format!("idx is not a permutation (index {i})")),
            }
        }

        let leaf_rank = leaf_rank_table(&nodes.leaf_words);

        // Derive the BFS level boundaries from the bitmap: each level's
        // internal nodes contribute exactly two children to the next.
        let mut level_off: Vec<u32> = vec![0, 1];
        loop {
            let lvl = level_off.len() - 2;
            let (a, b) = (level_off[lvl], level_off[lvl + 1]);
            let level_leaves = rank_at(&nodes.leaf_words, &leaf_rank, b)
                - rank_at(&nodes.leaf_words, &leaf_rank, a);
            let internal = (b - a) - level_leaves;
            if internal == 0 {
                break;
            }
            let next = b as u64 + 2 * internal as u64;
            if next > len as u64 {
                return Err("leaf bitmap is inconsistent with the arena size".into());
            }
            level_off.push(next as u32);
        }
        if *level_off.last().expect("non-empty") as usize != len {
            return Err("leaf bitmap leaves unreachable trailing nodes".into());
        }

        let tree = KdTree {
            block: PointBlock::from_points(&points),
            idx,
            nodes,
            leaf_rank,
            level_off,
            original_points: std::sync::OnceLock::new(),
        };

        // Per-node structural checks: valid singleton-leaf ranges, children
        // partitioning their parent's range.
        if tree.nodes.start[0] != 0 || tree.nodes.end[0] as usize != n {
            return Err("root range must cover all points".into());
        }
        for id in 0..len as NodeId {
            let (s, e) = (tree.nodes.start[id as usize], tree.nodes.end[id as usize]);
            if s >= e || e as usize > n {
                return Err(format!("node {id} has invalid range {s}..{e}"));
            }
            if tree.is_leaf(id) {
                if e - s != 1 {
                    return Err(format!("leaf {id} covers {} points (must be 1)", e - s));
                }
            } else {
                let (l, r) = tree.children(id);
                if r as usize >= len {
                    return Err(format!("node {id} has out-of-bounds children"));
                }
                if l <= id {
                    return Err(format!("node {id} is its own ancestor (child {l})"));
                }
                let (ls, le) = (tree.nodes.start[l as usize], tree.nodes.end[l as usize]);
                let (rs, re) = (tree.nodes.start[r as usize], tree.nodes.end[r as usize]);
                if ls != s || le != rs || re != e {
                    return Err(format!("children of node {id} do not partition its range"));
                }
            }
        }
        Ok(tree)
    }

    /// Reassemble a tree from a pointer-shaped arena — the version-1 serve
    /// artifact layout (per-node `left`/`right` ids, root at slot 0). The
    /// arena is validated with the same invariant walk the old in-memory
    /// representation used, then re-laid-out into BFS order.
    pub fn from_legacy_parts(
        points: Vec<Point<D>>,
        idx: Vec<u32>,
        nodes: Vec<PointerNode<D>>,
    ) -> Result<Self, String> {
        let n = points.len();
        if n == 0 {
            return Err("tree must hold at least one point".into());
        }
        if idx.len() != n {
            return Err(format!("idx length {} != point count {n}", idx.len()));
        }
        if nodes.len() != 2 * n - 1 {
            return Err(format!(
                "arena length {} != 2n-1 = {}",
                nodes.len(),
                2 * n - 1
            ));
        }
        let mut seen = vec![false; n];
        for &i in &idx {
            match seen.get_mut(i as usize) {
                Some(s) if !*s => *s = true,
                _ => return Err(format!("idx is not a permutation (index {i})")),
            }
        }
        // Walk from the root: every node's range must be inside the parent's
        // and children must partition it; every leaf must be a singleton.
        let mut stack: Vec<NodeId> = vec![0];
        let mut covered = 0usize;
        let mut visited = 0usize;
        while let Some(id) = stack.pop() {
            visited += 1;
            if visited > nodes.len() {
                // A node reachable via two parents (the arena encodes a DAG
                // or cycle, not a tree) revisits slots; bail out rather than
                // looping.
                return Err("arena is not a tree (node visited twice)".into());
            }
            let node = nodes
                .get(id as usize)
                .ok_or_else(|| format!("node id {id} out of arena bounds"))?;
            if node.start >= node.end || node.end as usize > n {
                return Err(format!(
                    "node {id} has invalid range {}..{}",
                    node.start, node.end
                ));
            }
            if node.is_leaf() {
                if node.size() != 1 {
                    return Err(format!(
                        "leaf {id} covers {} points (must be 1)",
                        node.size()
                    ));
                }
                covered += 1;
                continue;
            }
            let (l, r) = (node.left, node.right);
            if l as usize >= nodes.len() || r as usize >= nodes.len() {
                return Err(format!("node {id} has out-of-bounds children"));
            }
            let (ln, rn) = (&nodes[l as usize], &nodes[r as usize]);
            if ln.start != node.start || ln.end != rn.start || rn.end != node.end {
                return Err(format!("children of node {id} do not partition its range"));
            }
            stack.push(l);
            stack.push(r);
        }
        if covered != n {
            return Err(format!("leaves cover {covered} points, expected {n}"));
        }
        relayout(points, idx, &nodes)
    }

    /// The root node: always id 0 in BFS order.
    #[inline]
    pub fn root(&self) -> NodeId {
        0
    }

    /// Is `id` a leaf? One bitmap probe.
    #[inline]
    pub fn is_leaf(&self, id: NodeId) -> bool {
        (self.nodes.leaf_words[(id >> 6) as usize] >> (id & 63)) & 1 == 1
    }

    /// Number of leaves with an id strictly below `id`.
    #[inline]
    fn leaves_before(&self, id: NodeId) -> u32 {
        let w = (id >> 6) as usize;
        self.leaf_rank[w] + (self.nodes.leaf_words[w] & ((1u64 << (id & 63)) - 1)).count_ones()
    }

    /// Children of internal node `id`, by index arithmetic: with `j` the
    /// number of internal nodes before `id` in BFS order, the children sit
    /// at `2j + 1` and `2j + 2`. Must not be called on a leaf.
    #[inline]
    pub fn children(&self, id: NodeId) -> (NodeId, NodeId) {
        debug_assert!(!self.is_leaf(id), "leaves have no children");
        let j = id - self.leaves_before(id);
        (2 * j + 1, 2 * j + 2)
    }

    /// Bounding box of node `id`.
    #[inline]
    pub fn bbox(&self, id: NodeId) -> &Aabb<D> {
        &self.nodes.bbox[id as usize]
    }

    /// First permuted position covered by node `id`.
    #[inline]
    pub fn node_start(&self, id: NodeId) -> u32 {
        self.nodes.start[id as usize]
    }

    /// One past the last permuted position covered by node `id`.
    #[inline]
    pub fn node_end(&self, id: NodeId) -> u32 {
        self.nodes.end[id as usize]
    }

    /// Permuted position range covered by node `id`.
    #[inline]
    pub fn node_range(&self, id: NodeId) -> std::ops::Range<usize> {
        self.nodes.start[id as usize] as usize..self.nodes.end[id as usize] as usize
    }

    /// Number of points covered by node `id`.
    #[inline]
    pub fn node_size(&self, id: NodeId) -> usize {
        (self.nodes.end[id as usize] - self.nodes.start[id as usize]) as usize
    }

    /// Number of points in the tree.
    #[inline]
    pub fn len(&self) -> usize {
        self.block.len()
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.block.is_empty()
    }

    /// Total node count (`2n - 1`).
    #[inline]
    pub fn arena_len(&self) -> usize {
        self.nodes.bbox.len()
    }

    /// Number of BFS levels (tree depth + 1).
    #[inline]
    pub fn num_levels(&self) -> usize {
        self.level_off.len() - 1
    }

    /// The SoA coordinate storage (permuted order) — the input to the
    /// vectorized distance kernels.
    #[inline]
    pub fn coords(&self) -> &PointBlock<D> {
        &self.block
    }

    /// Gather the point at permuted position `pos`.
    #[inline]
    pub fn point(&self, pos: usize) -> Point<D> {
        self.block.get(pos)
    }

    /// Euclidean distance between the points at permuted positions `u`, `v`.
    #[inline]
    pub fn dist_between(&self, u: u32, v: u32) -> f64 {
        self.point(u as usize).dist(&self.point(v as usize))
    }

    /// The flat node arrays (for serialization).
    #[inline]
    pub fn flat_nodes(&self) -> &FlatNodes<D> {
        &self.nodes
    }

    /// Original indices of the points covered by `node`.
    #[inline]
    pub fn node_point_ids(&self, id: NodeId) -> &[u32] {
        &self.idx[self.node_range(id)]
    }

    /// Bottom-up aggregation: computes a value per node from a leaf function
    /// (given the node id and the original indices of its points) and a merge
    /// function, in parallel. The returned vector is indexed by [`NodeId`].
    ///
    /// BFS levels are processed deepest-first; within a level every node is
    /// independent, so the result is bit-identical at every pool width.
    pub fn aggregate_bottom_up<T, L, M>(&self, leaf: &L, merge: &M) -> Vec<T>
    where
        T: Default + Clone + Send + Sync,
        L: Fn(NodeId, &[u32]) -> T + Sync,
        M: Fn(&T, &T) -> T + Sync,
    {
        let len = self.arena_len();
        let mut out: Vec<T> = vec![T::default(); len];
        for lvl in (0..self.num_levels()).rev() {
            let (a, b) = (
                self.level_off[lvl] as usize,
                self.level_off[lvl + 1] as usize,
            );
            // Children of level `lvl` all live at ids >= b: split there so
            // the level being written and the deeper results it reads are
            // disjoint slices.
            let (head, tail) = out.split_at_mut(b);
            let tail: &[T] = tail;
            let compute = |k: usize, slot: &mut T| {
                let id = (a + k) as NodeId;
                *slot = if self.is_leaf(id) {
                    leaf(id, self.node_point_ids(id))
                } else {
                    let (l, r) = self.children(id);
                    merge(&tail[l as usize - b], &tail[r as usize - b])
                };
            };
            let level = &mut head[a..b];
            if level.len() >= AGG_GRAIN {
                level
                    .par_iter_mut()
                    .enumerate()
                    .with_min_len(64)
                    .for_each(|(k, slot)| compute(k, slot));
            } else {
                for (k, slot) in level.iter_mut().enumerate() {
                    compute(k, slot);
                }
            }
        }
        out
    }
}

/// BFS re-layout of a pointer-shaped arena (all slots reachable from slot 0)
/// into the implicit flat representation. `Err` if the arena's reachable
/// node count disagrees with its length — callers validating untrusted input
/// check everything else first.
fn relayout<const D: usize>(
    points: Vec<Point<D>>,
    idx: Vec<u32>,
    arena: &[PointerNode<D>],
) -> Result<KdTree<D>, String> {
    let len = arena.len();
    let mut nodes = FlatNodes {
        bbox: Vec::with_capacity(len),
        start: Vec::with_capacity(len),
        end: Vec::with_capacity(len),
        leaf_words: vec![0u64; len.div_ceil(64)],
    };
    let mut level_off: Vec<u32> = vec![0];
    let mut frontier: Vec<NodeId> = vec![0];
    let mut next: Vec<NodeId> = Vec::new();
    while !frontier.is_empty() {
        for &old in &frontier {
            let node = &arena[old as usize];
            let new_id = nodes.bbox.len();
            if new_id >= len {
                return Err("arena is not a tree (too many reachable nodes)".into());
            }
            nodes.bbox.push(node.bbox);
            nodes.start.push(node.start);
            nodes.end.push(node.end);
            if node.is_leaf() {
                nodes.leaf_words[new_id >> 6] |= 1u64 << (new_id & 63);
            } else {
                next.push(node.left);
                next.push(node.right);
            }
        }
        level_off.push(nodes.bbox.len() as u32);
        std::mem::swap(&mut frontier, &mut next);
        next.clear();
    }
    if nodes.bbox.len() != len {
        return Err(format!(
            "arena has {} unreachable slots",
            len - nodes.bbox.len()
        ));
    }
    let leaf_rank = leaf_rank_table(&nodes.leaf_words);
    Ok(KdTree {
        block: PointBlock::from_points(&points),
        idx,
        nodes,
        leaf_rank,
        level_off,
        original_points: std::sync::OnceLock::new(),
    })
}

/// Recursive parallel build over `points[..]`/`idx[..]` (absolute point
/// offset `point_base`), writing pointer nodes into `nodes[..]` whose slot 0
/// has absolute id `node_base`. A subtree over `k` points owns the
/// contiguous slab of exactly `2k - 1` slots starting at its own id, which
/// keeps the parallel build allocation-free after one upfront `Vec`.
fn build_recurse<const D: usize>(
    points: &mut [Point<D>],
    idx: &mut [u32],
    nodes: &mut [PointerNode<D>],
    point_base: u32,
    node_base: u32,
) {
    let k = points.len();
    debug_assert!(k >= 1);
    let bbox = Aabb::from_points(points);

    if k == 1 {
        nodes[0] = PointerNode {
            bbox,
            start: point_base,
            end: point_base + 1,
            left: NULL_NODE,
            right: NULL_NODE,
        };
        return;
    }

    // Spatial median: split the widest dimension at its midpoint. Degenerate
    // slabs (exact duplicates, or sub-ulp extents where the midpoint equals
    // an endpoint) fall back to a rank split so both sides stay non-empty
    // and every leaf ends up a singleton.
    let mut split = 0;
    if bbox.diag_sq() > 0.0 {
        let dim = bbox.widest_dim();
        let mid = 0.5 * (bbox.lo[dim] + bbox.hi[dim]);
        split = partition_in_place(points, idx, dim, mid);
    }
    if split == 0 || split == k {
        split = k / 2;
    }

    // Left subtree: slab [1, 2*split), right subtree: slab [2*split, 2k-1).
    let left_id = node_base + 1;
    let right_id = node_base + 2 * split as u32;
    nodes[0] = PointerNode {
        bbox,
        start: point_base,
        end: point_base + k as u32,
        left: left_id,
        right: right_id,
    };
    let (lp, rp) = points.split_at_mut(split);
    let (li, ri) = idx.split_at_mut(split);
    let (_, rest) = nodes.split_at_mut(1);
    let (ln, rn) = rest.split_at_mut(2 * split - 1);

    if k >= BUILD_GRAIN {
        rayon::join(
            || build_recurse(lp, li, ln, point_base, left_id),
            || build_recurse(rp, ri, rn, point_base + split as u32, right_id),
        );
    } else {
        build_recurse(lp, li, ln, point_base, left_id);
        build_recurse(rp, ri, rn, point_base + split as u32, right_id);
    }
}

/// Hoare-style in-place partition of `points`/`idx` by `coord[dim] < mid`;
/// returns the number of elements in the "less" prefix.
fn partition_in_place<const D: usize>(
    points: &mut [Point<D>],
    idx: &mut [u32],
    dim: usize,
    mid: f64,
) -> usize {
    let mut i = 0usize;
    let mut j = points.len();
    loop {
        while i < j && points[i][dim] < mid {
            i += 1;
        }
        while i < j && points[j - 1][dim] >= mid {
            j -= 1;
        }
        if i >= j {
            return i;
        }
        points.swap(i, j - 1);
        idx.swap(i, j - 1);
        i += 1;
        j -= 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::prelude::*;

    pub(crate) fn random_points<const D: usize>(n: usize, seed: u64) -> Vec<Point<D>> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                let mut c = [0.0; D];
                for x in c.iter_mut() {
                    *x = rng.gen_range(-100.0..100.0);
                }
                Point(c)
            })
            .collect()
    }

    fn check_tree_invariants<const D: usize>(tree: &KdTree<D>) {
        // Every point covered exactly once by leaves; bboxes contain their
        // points; children partition the parent's range; BFS ids respect
        // level boundaries.
        let n = tree.len();
        assert_eq!(tree.arena_len(), 2 * n - 1);
        let mut covered = vec![false; n];
        let mut stack = vec![tree.root()];
        while let Some(id) = stack.pop() {
            assert!(tree.node_size(id) >= 1);
            for pos in tree.node_range(id) {
                assert!(
                    tree.bbox(id).contains(&tree.point(pos)),
                    "bbox must contain node points"
                );
            }
            if tree.is_leaf(id) {
                assert_eq!(tree.node_size(id), 1, "leaves must be singletons");
                for i in tree.node_range(id) {
                    assert!(!covered[i], "point covered twice");
                    covered[i] = true;
                }
            } else {
                let (l, r) = tree.children(id);
                assert!(
                    l > id && r == l + 1,
                    "children must follow the parent in BFS"
                );
                assert_eq!(tree.node_start(l), tree.node_start(id));
                assert_eq!(tree.node_end(l), tree.node_start(r));
                assert_eq!(tree.node_end(r), tree.node_end(id));
                stack.push(l);
                stack.push(r);
            }
        }
        assert!(covered.iter().all(|&c| c), "all points must be covered");
        // The permutation is a bijection.
        let mut seen = vec![false; n];
        for &i in &tree.idx {
            assert!(!seen[i as usize]);
            seen[i as usize] = true;
        }
        // Level offsets tile the arena and children land one level deeper.
        assert_eq!(tree.level_off[0], 0);
        assert_eq!(*tree.level_off.last().unwrap() as usize, tree.arena_len());
        for lvl in 0..tree.num_levels() {
            for id in tree.level_off[lvl]..tree.level_off[lvl + 1] {
                if !tree.is_leaf(id) {
                    let (l, r) = tree.children(id);
                    assert!(l >= tree.level_off[lvl + 1] && r < tree.level_off[lvl + 2]);
                }
            }
        }
    }

    #[test]
    fn build_single_point() {
        let tree = KdTree::build(&[Point([1.0, 2.0])]);
        assert_eq!(tree.len(), 1);
        assert!(tree.is_leaf(tree.root()));
        check_tree_invariants(&tree);
    }

    #[test]
    fn build_small_2d() {
        let pts = random_points::<2>(100, 1);
        let tree = KdTree::build(&pts);
        check_tree_invariants(&tree);
        // Singleton leaves for distinct points.
        let mut stack = vec![tree.root()];
        while let Some(id) = stack.pop() {
            if tree.is_leaf(id) {
                assert_eq!(tree.node_size(id), 1);
            } else {
                let (l, r) = tree.children(id);
                stack.push(l);
                stack.push(r);
            }
        }
    }

    #[test]
    fn build_large_parallel_3d() {
        let pts = random_points::<3>(50_000, 2);
        let tree = KdTree::build(&pts);
        check_tree_invariants(&tree);
    }

    #[test]
    fn build_with_duplicates() {
        let mut pts = random_points::<2>(50, 3);
        // Inject many exact duplicates.
        for i in 0..40 {
            pts.push(pts[i % 10]);
        }
        let tree = KdTree::build(&pts);
        check_tree_invariants(&tree);
    }

    #[test]
    fn build_all_identical() {
        // Exact duplicates are split by rank: still one point per leaf.
        let pts = vec![Point([3.0, 3.0]); 64];
        let tree = KdTree::build(&pts);
        assert!(!tree.is_leaf(tree.root()));
        assert_eq!(tree.node_size(tree.root()), 64);
        check_tree_invariants(&tree);
    }

    #[test]
    fn build_collinear() {
        let pts: Vec<Point<2>> = (0..500).map(|i| Point([i as f64, 0.0])).collect();
        let tree = KdTree::build(&pts);
        check_tree_invariants(&tree);
    }

    #[test]
    fn aggregate_sizes() {
        let pts = random_points::<2>(10_000, 4);
        let tree = KdTree::build(&pts);
        // Aggregate: subtree point counts.
        let counts = tree.aggregate_bottom_up(&|_, ids| ids.len(), &|a: &usize, b: &usize| a + b);
        assert_eq!(counts[tree.root() as usize], 10_000);
        let mut stack = vec![tree.root()];
        while let Some(id) = stack.pop() {
            assert_eq!(counts[id as usize], tree.node_size(id));
            if !tree.is_leaf(id) {
                let (l, r) = tree.children(id);
                stack.push(l);
                stack.push(r);
            }
        }
    }

    #[test]
    fn from_parts_roundtrips_and_answers_queries() {
        let pts = random_points::<3>(2_000, 8);
        let built = KdTree::build(&pts);
        let permuted: Vec<Point<3>> = (0..built.len()).map(|i| built.point(i)).collect();
        let re = KdTree::from_parts(permuted, built.idx.clone(), built.flat_nodes().clone())
            .expect("valid parts");
        check_tree_invariants(&re);
        // Queries against the reassembled tree match the original.
        for q in pts.iter().step_by(97) {
            assert_eq!(built.knn(q, 5), re.knn(q, 5));
        }
    }

    #[test]
    fn from_parts_rejects_corrupt_arenas() {
        let pts = random_points::<2>(64, 9);
        let t = KdTree::build(&pts);
        let permuted: Vec<Point<2>> = (0..t.len()).map(|i| t.point(i)).collect();
        let nodes = t.flat_nodes().clone();
        // Wrong arena length.
        let mut short = nodes.clone();
        short.bbox.truncate(5);
        short.start.truncate(5);
        short.end.truncate(5);
        assert!(KdTree::from_parts(permuted.clone(), t.idx.clone(), short).is_err());
        // idx not a permutation.
        let mut bad_idx = t.idx.clone();
        bad_idx[0] = bad_idx[1];
        assert!(KdTree::from_parts(permuted.clone(), bad_idx, nodes.clone()).is_err());
        // Child range corruption.
        let mut bad_nodes = nodes.clone();
        let (root_left, _) = t.children(t.root());
        bad_nodes.end[root_left as usize] += 1;
        assert!(KdTree::from_parts(permuted.clone(), t.idx.clone(), bad_nodes).is_err());
        // Leaf bitmap corruption: marking an internal node as a leaf breaks
        // either the leaf count or the child arithmetic.
        let mut bad_bits = nodes.clone();
        bad_bits.leaf_words[0] |= 1; // root of a 64-point tree is internal
        assert!(KdTree::from_parts(permuted.clone(), t.idx.clone(), bad_bits).is_err());
        // All-zero bitmap (no leaves at all).
        let mut no_leaves = nodes.clone();
        no_leaves.leaf_words.iter_mut().for_each(|w| *w = 0);
        assert!(KdTree::from_parts(permuted.clone(), t.idx.clone(), no_leaves).is_err());
        // Empty tree.
        let empty = FlatNodes::<2> {
            bbox: Vec::new(),
            start: Vec::new(),
            end: Vec::new(),
            leaf_words: Vec::new(),
        };
        assert!(KdTree::<2>::from_parts(Vec::new(), Vec::new(), empty).is_err());
    }

    #[test]
    fn legacy_parts_roundtrip_and_rejection() {
        let pts = random_points::<2>(200, 10);
        let t = KdTree::build(&pts);
        // Rebuild a pointer arena in preorder (distinct from the BFS ids) by
        // walking the flat tree, then reassemble through the legacy path.
        let mut arena: Vec<PointerNode<2>> = vec![PointerNode::default(); t.arena_len()];
        let mut next_slot = 0u32;
        fn emit<const D: usize>(
            t: &KdTree<D>,
            id: NodeId,
            arena: &mut Vec<PointerNode<D>>,
            next: &mut u32,
        ) -> u32 {
            let slot = *next;
            *next += 1;
            if t.is_leaf(id) {
                arena[slot as usize] = PointerNode {
                    bbox: *t.bbox(id),
                    start: t.node_start(id),
                    end: t.node_end(id),
                    left: NULL_NODE,
                    right: NULL_NODE,
                };
            } else {
                let (l, r) = t.children(id);
                let ls = emit(t, l, arena, next);
                let rs = emit(t, r, arena, next);
                arena[slot as usize] = PointerNode {
                    bbox: *t.bbox(id),
                    start: t.node_start(id),
                    end: t.node_end(id),
                    left: ls,
                    right: rs,
                };
            }
            slot
        }
        emit(&t, t.root(), &mut arena, &mut next_slot);
        let permuted: Vec<Point<2>> = (0..t.len()).map(|i| t.point(i)).collect();
        let re = KdTree::from_legacy_parts(permuted.clone(), t.idx.clone(), arena.clone())
            .expect("valid legacy arena");
        check_tree_invariants(&re);
        for q in pts.iter().step_by(11) {
            assert_eq!(t.knn(q, 4), re.knn(q, 4));
        }
        // Cycle: root points at itself.
        let mut cyc = arena.clone();
        cyc[0].left = 0;
        assert!(KdTree::from_legacy_parts(permuted.clone(), t.idx.clone(), cyc).is_err());
        // Child range corruption.
        let mut bad = arena.clone();
        let rl = bad[0].left as usize;
        bad[rl].end += 1;
        assert!(KdTree::from_legacy_parts(permuted, t.idx.clone(), bad).is_err());
    }

    #[test]
    fn aggregate_min_coordinate_matches_bbox() {
        let pts = random_points::<3>(30_000, 5);
        let tree = KdTree::build(&pts);
        #[derive(Clone)]
        struct MinX(f64);
        impl Default for MinX {
            fn default() -> Self {
                MinX(f64::INFINITY)
            }
        }
        let mins = tree.aggregate_bottom_up(
            &|id, _| {
                MinX(
                    tree.node_range(id)
                        .map(|pos| tree.point(pos)[0])
                        .fold(f64::INFINITY, f64::min),
                )
            },
            &|a: &MinX, b: &MinX| MinX(a.0.min(b.0)),
        );
        let mut stack = vec![tree.root()];
        while let Some(id) = stack.pop() {
            assert_eq!(mins[id as usize].0, tree.bbox(id).lo[0]);
            if !tree.is_leaf(id) {
                let (l, r) = tree.children(id);
                stack.push(l);
                stack.push(r);
            }
        }
    }
}
